file(REMOVE_RECURSE
  "../bench/llc_baseline"
  "../bench/llc_baseline.pdb"
  "CMakeFiles/llc_baseline.dir/llc_baseline.cc.o"
  "CMakeFiles/llc_baseline.dir/llc_baseline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
