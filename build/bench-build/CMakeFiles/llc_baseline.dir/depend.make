# Empty dependencies file for llc_baseline.
# This may be replaced when dependencies are built.
