file(REMOVE_RECURSE
  "../bench/ablation_detection"
  "../bench/ablation_detection.pdb"
  "CMakeFiles/ablation_detection.dir/ablation_detection.cc.o"
  "CMakeFiles/ablation_detection.dir/ablation_detection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
