# Empty dependencies file for ablation_epc_placement.
# This may be replaced when dependencies are built.
