file(REMOVE_RECURSE
  "../bench/ablation_epc_placement"
  "../bench/ablation_epc_placement.pdb"
  "CMakeFiles/ablation_epc_placement.dir/ablation_epc_placement.cc.o"
  "CMakeFiles/ablation_epc_placement.dir/ablation_epc_placement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_epc_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
