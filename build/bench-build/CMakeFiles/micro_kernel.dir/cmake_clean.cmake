file(REMOVE_RECURSE
  "../bench/micro_kernel"
  "../bench/micro_kernel.pdb"
  "CMakeFiles/micro_kernel.dir/micro_kernel.cc.o"
  "CMakeFiles/micro_kernel.dir/micro_kernel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
