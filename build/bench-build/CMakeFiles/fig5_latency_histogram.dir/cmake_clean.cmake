file(REMOVE_RECURSE
  "../bench/fig5_latency_histogram"
  "../bench/fig5_latency_histogram.pdb"
  "CMakeFiles/fig5_latency_histogram.dir/fig5_latency_histogram.cc.o"
  "CMakeFiles/fig5_latency_histogram.dir/fig5_latency_histogram.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_latency_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
