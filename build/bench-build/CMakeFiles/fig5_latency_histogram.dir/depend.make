# Empty dependencies file for fig5_latency_histogram.
# This may be replaced when dependencies are built.
