file(REMOVE_RECURSE
  "../bench/table_reverse_engineering"
  "../bench/table_reverse_engineering.pdb"
  "CMakeFiles/table_reverse_engineering.dir/table_reverse_engineering.cc.o"
  "CMakeFiles/table_reverse_engineering.dir/table_reverse_engineering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_reverse_engineering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
