# Empty compiler generated dependencies file for table_reverse_engineering.
# This may be replaced when dependencies are built.
