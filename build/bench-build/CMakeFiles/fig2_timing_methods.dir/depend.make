# Empty dependencies file for fig2_timing_methods.
# This may be replaced when dependencies are built.
