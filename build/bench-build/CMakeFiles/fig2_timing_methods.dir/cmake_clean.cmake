file(REMOVE_RECURSE
  "../bench/fig2_timing_methods"
  "../bench/fig2_timing_methods.pdb"
  "CMakeFiles/fig2_timing_methods.dir/fig2_timing_methods.cc.o"
  "CMakeFiles/fig2_timing_methods.dir/fig2_timing_methods.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_timing_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
