file(REMOVE_RECURSE
  "../bench/fig8_noise"
  "../bench/fig8_noise.pdb"
  "CMakeFiles/fig8_noise.dir/fig8_noise.cc.o"
  "CMakeFiles/fig8_noise.dir/fig8_noise.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
