file(REMOVE_RECURSE
  "../bench/ablation_mitigations"
  "../bench/ablation_mitigations.pdb"
  "CMakeFiles/ablation_mitigations.dir/ablation_mitigations.cc.o"
  "CMakeFiles/ablation_mitigations.dir/ablation_mitigations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
