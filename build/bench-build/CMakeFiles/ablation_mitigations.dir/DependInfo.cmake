
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_mitigations.cc" "bench-build/CMakeFiles/ablation_mitigations.dir/ablation_mitigations.cc.o" "gcc" "bench-build/CMakeFiles/ablation_mitigations.dir/ablation_mitigations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/meecc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/meecc_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/meecc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mee/CMakeFiles/meecc_mee.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/meecc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/meecc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/meecc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/meecc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
