# Empty dependencies file for fig6_channel_traces.
# This may be replaced when dependencies are built.
