file(REMOVE_RECURSE
  "../bench/fig6_channel_traces"
  "../bench/fig6_channel_traces.pdb"
  "CMakeFiles/fig6_channel_traces.dir/fig6_channel_traces.cc.o"
  "CMakeFiles/fig6_channel_traces.dir/fig6_channel_traces.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_channel_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
