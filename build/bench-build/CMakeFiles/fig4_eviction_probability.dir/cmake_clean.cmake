file(REMOVE_RECURSE
  "../bench/fig4_eviction_probability"
  "../bench/fig4_eviction_probability.pdb"
  "CMakeFiles/fig4_eviction_probability.dir/fig4_eviction_probability.cc.o"
  "CMakeFiles/fig4_eviction_probability.dir/fig4_eviction_probability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_eviction_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
