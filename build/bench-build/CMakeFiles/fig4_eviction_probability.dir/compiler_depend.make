# Empty compiler generated dependencies file for fig4_eviction_probability.
# This may be replaced when dependencies are built.
