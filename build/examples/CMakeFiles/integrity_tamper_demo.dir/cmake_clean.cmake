file(REMOVE_RECURSE
  "CMakeFiles/integrity_tamper_demo.dir/integrity_tamper_demo.cpp.o"
  "CMakeFiles/integrity_tamper_demo.dir/integrity_tamper_demo.cpp.o.d"
  "integrity_tamper_demo"
  "integrity_tamper_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrity_tamper_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
