# Empty dependencies file for integrity_tamper_demo.
# This may be replaced when dependencies are built.
