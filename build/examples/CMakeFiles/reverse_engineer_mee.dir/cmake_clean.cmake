file(REMOVE_RECURSE
  "CMakeFiles/reverse_engineer_mee.dir/reverse_engineer_mee.cpp.o"
  "CMakeFiles/reverse_engineer_mee.dir/reverse_engineer_mee.cpp.o.d"
  "reverse_engineer_mee"
  "reverse_engineer_mee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_engineer_mee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
