# Empty compiler generated dependencies file for reverse_engineer_mee.
# This may be replaced when dependencies are built.
