# Empty compiler generated dependencies file for reliable_exfiltration.
# This may be replaced when dependencies are built.
