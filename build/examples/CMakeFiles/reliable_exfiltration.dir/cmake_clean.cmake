file(REMOVE_RECURSE
  "CMakeFiles/reliable_exfiltration.dir/reliable_exfiltration.cpp.o"
  "CMakeFiles/reliable_exfiltration.dir/reliable_exfiltration.cpp.o.d"
  "reliable_exfiltration"
  "reliable_exfiltration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_exfiltration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
