file(REMOVE_RECURSE
  "CMakeFiles/covert_channel_demo.dir/covert_channel_demo.cpp.o"
  "CMakeFiles/covert_channel_demo.dir/covert_channel_demo.cpp.o.d"
  "covert_channel_demo"
  "covert_channel_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covert_channel_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
