# Empty dependencies file for meecc_sgx.
# This may be replaced when dependencies are built.
