file(REMOVE_RECURSE
  "CMakeFiles/meecc_sgx.dir/enclave.cc.o"
  "CMakeFiles/meecc_sgx.dir/enclave.cc.o.d"
  "libmeecc_sgx.a"
  "libmeecc_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meecc_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
