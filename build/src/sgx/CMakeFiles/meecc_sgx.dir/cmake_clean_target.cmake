file(REMOVE_RECURSE
  "libmeecc_sgx.a"
)
