file(REMOVE_RECURSE
  "CMakeFiles/meecc_sim.dir/actor.cc.o"
  "CMakeFiles/meecc_sim.dir/actor.cc.o.d"
  "CMakeFiles/meecc_sim.dir/des.cc.o"
  "CMakeFiles/meecc_sim.dir/des.cc.o.d"
  "CMakeFiles/meecc_sim.dir/noise.cc.o"
  "CMakeFiles/meecc_sim.dir/noise.cc.o.d"
  "CMakeFiles/meecc_sim.dir/system.cc.o"
  "CMakeFiles/meecc_sim.dir/system.cc.o.d"
  "libmeecc_sim.a"
  "libmeecc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meecc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
