file(REMOVE_RECURSE
  "libmeecc_sim.a"
)
