# Empty compiler generated dependencies file for meecc_sim.
# This may be replaced when dependencies are built.
