file(REMOVE_RECURSE
  "CMakeFiles/meecc_common.dir/chart.cc.o"
  "CMakeFiles/meecc_common.dir/chart.cc.o.d"
  "CMakeFiles/meecc_common.dir/histogram.cc.o"
  "CMakeFiles/meecc_common.dir/histogram.cc.o.d"
  "CMakeFiles/meecc_common.dir/rng.cc.o"
  "CMakeFiles/meecc_common.dir/rng.cc.o.d"
  "CMakeFiles/meecc_common.dir/stats.cc.o"
  "CMakeFiles/meecc_common.dir/stats.cc.o.d"
  "CMakeFiles/meecc_common.dir/table.cc.o"
  "CMakeFiles/meecc_common.dir/table.cc.o.d"
  "libmeecc_common.a"
  "libmeecc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meecc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
