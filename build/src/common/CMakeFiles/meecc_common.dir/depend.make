# Empty dependencies file for meecc_common.
# This may be replaced when dependencies are built.
