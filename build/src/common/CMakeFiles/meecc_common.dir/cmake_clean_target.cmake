file(REMOVE_RECURSE
  "libmeecc_common.a"
)
