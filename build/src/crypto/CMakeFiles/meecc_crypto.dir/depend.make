# Empty dependencies file for meecc_crypto.
# This may be replaced when dependencies are built.
