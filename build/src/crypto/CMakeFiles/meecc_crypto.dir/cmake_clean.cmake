file(REMOVE_RECURSE
  "CMakeFiles/meecc_crypto.dir/aes128.cc.o"
  "CMakeFiles/meecc_crypto.dir/aes128.cc.o.d"
  "CMakeFiles/meecc_crypto.dir/line_cipher.cc.o"
  "CMakeFiles/meecc_crypto.dir/line_cipher.cc.o.d"
  "CMakeFiles/meecc_crypto.dir/mac.cc.o"
  "CMakeFiles/meecc_crypto.dir/mac.cc.o.d"
  "CMakeFiles/meecc_crypto.dir/multilinear_mac.cc.o"
  "CMakeFiles/meecc_crypto.dir/multilinear_mac.cc.o.d"
  "libmeecc_crypto.a"
  "libmeecc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meecc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
