file(REMOVE_RECURSE
  "libmeecc_crypto.a"
)
