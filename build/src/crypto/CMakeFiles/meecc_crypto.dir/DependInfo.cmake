
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cc" "src/crypto/CMakeFiles/meecc_crypto.dir/aes128.cc.o" "gcc" "src/crypto/CMakeFiles/meecc_crypto.dir/aes128.cc.o.d"
  "/root/repo/src/crypto/line_cipher.cc" "src/crypto/CMakeFiles/meecc_crypto.dir/line_cipher.cc.o" "gcc" "src/crypto/CMakeFiles/meecc_crypto.dir/line_cipher.cc.o.d"
  "/root/repo/src/crypto/mac.cc" "src/crypto/CMakeFiles/meecc_crypto.dir/mac.cc.o" "gcc" "src/crypto/CMakeFiles/meecc_crypto.dir/mac.cc.o.d"
  "/root/repo/src/crypto/multilinear_mac.cc" "src/crypto/CMakeFiles/meecc_crypto.dir/multilinear_mac.cc.o" "gcc" "src/crypto/CMakeFiles/meecc_crypto.dir/multilinear_mac.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/meecc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
