file(REMOVE_RECURSE
  "libmeecc_mem.a"
)
