# Empty compiler generated dependencies file for meecc_mem.
# This may be replaced when dependencies are built.
