file(REMOVE_RECURSE
  "CMakeFiles/meecc_mem.dir/address_map.cc.o"
  "CMakeFiles/meecc_mem.dir/address_map.cc.o.d"
  "CMakeFiles/meecc_mem.dir/dram.cc.o"
  "CMakeFiles/meecc_mem.dir/dram.cc.o.d"
  "CMakeFiles/meecc_mem.dir/frame_allocator.cc.o"
  "CMakeFiles/meecc_mem.dir/frame_allocator.cc.o.d"
  "CMakeFiles/meecc_mem.dir/page_table.cc.o"
  "CMakeFiles/meecc_mem.dir/page_table.cc.o.d"
  "CMakeFiles/meecc_mem.dir/physical_memory.cc.o"
  "CMakeFiles/meecc_mem.dir/physical_memory.cc.o.d"
  "libmeecc_mem.a"
  "libmeecc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meecc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
