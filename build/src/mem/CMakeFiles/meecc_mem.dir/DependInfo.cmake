
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cc" "src/mem/CMakeFiles/meecc_mem.dir/address_map.cc.o" "gcc" "src/mem/CMakeFiles/meecc_mem.dir/address_map.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/meecc_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/meecc_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/frame_allocator.cc" "src/mem/CMakeFiles/meecc_mem.dir/frame_allocator.cc.o" "gcc" "src/mem/CMakeFiles/meecc_mem.dir/frame_allocator.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/meecc_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/meecc_mem.dir/page_table.cc.o.d"
  "/root/repo/src/mem/physical_memory.cc" "src/mem/CMakeFiles/meecc_mem.dir/physical_memory.cc.o" "gcc" "src/mem/CMakeFiles/meecc_mem.dir/physical_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/meecc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
