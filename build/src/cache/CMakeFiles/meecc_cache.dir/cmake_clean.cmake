file(REMOVE_RECURSE
  "CMakeFiles/meecc_cache.dir/geometry.cc.o"
  "CMakeFiles/meecc_cache.dir/geometry.cc.o.d"
  "CMakeFiles/meecc_cache.dir/hierarchy.cc.o"
  "CMakeFiles/meecc_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/meecc_cache.dir/replacement.cc.o"
  "CMakeFiles/meecc_cache.dir/replacement.cc.o.d"
  "CMakeFiles/meecc_cache.dir/set_assoc_cache.cc.o"
  "CMakeFiles/meecc_cache.dir/set_assoc_cache.cc.o.d"
  "libmeecc_cache.a"
  "libmeecc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meecc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
