file(REMOVE_RECURSE
  "libmeecc_cache.a"
)
