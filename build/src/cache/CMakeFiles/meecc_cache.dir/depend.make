# Empty dependencies file for meecc_cache.
# This may be replaced when dependencies are built.
