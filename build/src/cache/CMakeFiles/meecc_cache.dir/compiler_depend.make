# Empty compiler generated dependencies file for meecc_cache.
# This may be replaced when dependencies are built.
