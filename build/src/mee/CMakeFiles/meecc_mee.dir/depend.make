# Empty dependencies file for meecc_mee.
# This may be replaced when dependencies are built.
