
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mee/engine.cc" "src/mee/CMakeFiles/meecc_mee.dir/engine.cc.o" "gcc" "src/mee/CMakeFiles/meecc_mee.dir/engine.cc.o.d"
  "/root/repo/src/mee/node_codec.cc" "src/mee/CMakeFiles/meecc_mee.dir/node_codec.cc.o" "gcc" "src/mee/CMakeFiles/meecc_mee.dir/node_codec.cc.o.d"
  "/root/repo/src/mee/tree_geometry.cc" "src/mee/CMakeFiles/meecc_mee.dir/tree_geometry.cc.o" "gcc" "src/mee/CMakeFiles/meecc_mee.dir/tree_geometry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/meecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/meecc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/meecc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/meecc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
