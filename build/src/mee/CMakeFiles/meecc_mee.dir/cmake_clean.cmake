file(REMOVE_RECURSE
  "CMakeFiles/meecc_mee.dir/engine.cc.o"
  "CMakeFiles/meecc_mee.dir/engine.cc.o.d"
  "CMakeFiles/meecc_mee.dir/node_codec.cc.o"
  "CMakeFiles/meecc_mee.dir/node_codec.cc.o.d"
  "CMakeFiles/meecc_mee.dir/tree_geometry.cc.o"
  "CMakeFiles/meecc_mee.dir/tree_geometry.cc.o.d"
  "libmeecc_mee.a"
  "libmeecc_mee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meecc_mee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
