file(REMOVE_RECURSE
  "libmeecc_mee.a"
)
