# Empty dependencies file for meecc_channel.
# This may be replaced when dependencies are built.
