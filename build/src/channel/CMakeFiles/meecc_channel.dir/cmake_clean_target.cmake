file(REMOVE_RECURSE
  "libmeecc_channel.a"
)
