
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/candidates.cc" "src/channel/CMakeFiles/meecc_channel.dir/candidates.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/candidates.cc.o.d"
  "/root/repo/src/channel/capacity_probe.cc" "src/channel/CMakeFiles/meecc_channel.dir/capacity_probe.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/capacity_probe.cc.o.d"
  "/root/repo/src/channel/classify.cc" "src/channel/CMakeFiles/meecc_channel.dir/classify.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/classify.cc.o.d"
  "/root/repo/src/channel/covert_channel.cc" "src/channel/CMakeFiles/meecc_channel.dir/covert_channel.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/covert_channel.cc.o.d"
  "/root/repo/src/channel/detector.cc" "src/channel/CMakeFiles/meecc_channel.dir/detector.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/detector.cc.o.d"
  "/root/repo/src/channel/eviction_set.cc" "src/channel/CMakeFiles/meecc_channel.dir/eviction_set.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/eviction_set.cc.o.d"
  "/root/repo/src/channel/latency_survey.cc" "src/channel/CMakeFiles/meecc_channel.dir/latency_survey.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/latency_survey.cc.o.d"
  "/root/repo/src/channel/llc_baseline.cc" "src/channel/CMakeFiles/meecc_channel.dir/llc_baseline.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/llc_baseline.cc.o.d"
  "/root/repo/src/channel/mitigation.cc" "src/channel/CMakeFiles/meecc_channel.dir/mitigation.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/mitigation.cc.o.d"
  "/root/repo/src/channel/prime_probe.cc" "src/channel/CMakeFiles/meecc_channel.dir/prime_probe.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/prime_probe.cc.o.d"
  "/root/repo/src/channel/testbed.cc" "src/channel/CMakeFiles/meecc_channel.dir/testbed.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/testbed.cc.o.d"
  "/root/repo/src/channel/timing_study.cc" "src/channel/CMakeFiles/meecc_channel.dir/timing_study.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/timing_study.cc.o.d"
  "/root/repo/src/channel/transport.cc" "src/channel/CMakeFiles/meecc_channel.dir/transport.cc.o" "gcc" "src/channel/CMakeFiles/meecc_channel.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/meecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/meecc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/meecc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mee/CMakeFiles/meecc_mee.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/meecc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/meecc_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/meecc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
