file(REMOVE_RECURSE
  "CMakeFiles/meecc_channel.dir/candidates.cc.o"
  "CMakeFiles/meecc_channel.dir/candidates.cc.o.d"
  "CMakeFiles/meecc_channel.dir/capacity_probe.cc.o"
  "CMakeFiles/meecc_channel.dir/capacity_probe.cc.o.d"
  "CMakeFiles/meecc_channel.dir/classify.cc.o"
  "CMakeFiles/meecc_channel.dir/classify.cc.o.d"
  "CMakeFiles/meecc_channel.dir/covert_channel.cc.o"
  "CMakeFiles/meecc_channel.dir/covert_channel.cc.o.d"
  "CMakeFiles/meecc_channel.dir/detector.cc.o"
  "CMakeFiles/meecc_channel.dir/detector.cc.o.d"
  "CMakeFiles/meecc_channel.dir/eviction_set.cc.o"
  "CMakeFiles/meecc_channel.dir/eviction_set.cc.o.d"
  "CMakeFiles/meecc_channel.dir/latency_survey.cc.o"
  "CMakeFiles/meecc_channel.dir/latency_survey.cc.o.d"
  "CMakeFiles/meecc_channel.dir/llc_baseline.cc.o"
  "CMakeFiles/meecc_channel.dir/llc_baseline.cc.o.d"
  "CMakeFiles/meecc_channel.dir/mitigation.cc.o"
  "CMakeFiles/meecc_channel.dir/mitigation.cc.o.d"
  "CMakeFiles/meecc_channel.dir/prime_probe.cc.o"
  "CMakeFiles/meecc_channel.dir/prime_probe.cc.o.d"
  "CMakeFiles/meecc_channel.dir/testbed.cc.o"
  "CMakeFiles/meecc_channel.dir/testbed.cc.o.d"
  "CMakeFiles/meecc_channel.dir/timing_study.cc.o"
  "CMakeFiles/meecc_channel.dir/timing_study.cc.o.d"
  "CMakeFiles/meecc_channel.dir/transport.cc.o"
  "CMakeFiles/meecc_channel.dir/transport.cc.o.d"
  "libmeecc_channel.a"
  "libmeecc_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meecc_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
