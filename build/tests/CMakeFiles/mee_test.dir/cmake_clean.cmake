file(REMOVE_RECURSE
  "CMakeFiles/mee_test.dir/mee_test.cc.o"
  "CMakeFiles/mee_test.dir/mee_test.cc.o.d"
  "mee_test"
  "mee_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mee_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
