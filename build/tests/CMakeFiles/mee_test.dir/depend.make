# Empty dependencies file for mee_test.
# This may be replaced when dependencies are built.
