# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mem_test "/root/repo/build/tests/mem_test")
set_tests_properties(mem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cache_test "/root/repo/build/tests/cache_test")
set_tests_properties(cache_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(crypto_test "/root/repo/build/tests/crypto_test")
set_tests_properties(crypto_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mee_test "/root/repo/build/tests/mee_test")
set_tests_properties(mee_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sgx_test "/root/repo/build/tests/sgx_test")
set_tests_properties(sgx_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(channel_test "/root/repo/build/tests/channel_test")
set_tests_properties(channel_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(transport_test "/root/repo/build/tests/transport_test")
set_tests_properties(transport_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extension_test "/root/repo/build/tests/extension_test")
set_tests_properties(extension_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;meecc_test;/root/repo/tests/CMakeLists.txt;0;")
