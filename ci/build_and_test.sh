#!/usr/bin/env bash
# CI entry point: build the plain and sanitized (ASan+UBSan) configurations,
# run the test suite in both — unit-labelled tests first so cheap component
# breakage fails fast, then the integration/property tiers — and finally
# smoke the experiment runtime's determinism contract (bit-identical JSONL,
# counters included, at --jobs 1 vs --jobs 4).
#
# Diagnostics for upload-on-failure land in $ROOT/ci-artifacts (golden-trace
# diff, counters JSONL); build trees also leave obs_artifacts/ dirs behind.
set -euo pipefail

# Usage: build_and_test.sh [all|hardened|perf|nosimd]
#   all       (default) plain + sanitized builds, full suite, determinism smoke
#   hardened  warnings-hardened configuration only (-Wall -Wextra -Wshadow
#             -Werror); runs as its own CI job so shadowing regressions fail
#             without holding up the main matrix
#   perf      Release build; runs the crypto/scheduler micro-kernels and
#             `meecc_bench perf --check` (fails if the ttable AES backend is
#             not at least 2x the reference), leaving BENCH_hotpath.json in
#             $ROOT/ci-artifacts for upload
#   nosimd    -DMEECC_NO_SIMD=ON build (portable scalar tag probe); runs the
#             unit and golden-trace tiers so the scalar cache-probe path
#             proves the same golden traces as the SIMD one
STAGE="${1:-all}"

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
ARTIFACTS="$ROOT/ci-artifacts"
mkdir -p "$ARTIFACTS"

collect_artifacts() {
  # Golden-trace mismatch dumps live under <build>/obs_artifacts.
  local dir
  for dir in "$ROOT"/build-ci-*/obs_artifacts; do
    [ -d "$dir" ] && cp -r "$dir" "$ARTIFACTS/$(basename "$(dirname "$dir")")-obs" || true
  done
}
trap collect_artifacts EXIT

build_and_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$ROOT" "$@"
  cmake --build "$dir" -j "$JOBS"
  # Unit tier first: fails fast on single-component breakage.
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L unit
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -LE unit
}

if [ "$STAGE" = "hardened" ]; then
  echo "=== hardened build (-Wall -Wextra -Wshadow -Werror) ==="
  build_and_test "$ROOT/build-ci-hardened" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_WERROR=ON -DMEECC_HARDENED=ON
  echo "CI OK (hardened)"
  exit 0
elif [ "$STAGE" = "perf" ]; then
  echo "=== perf smoke (Release hot-path timings) ==="
  DIR="$ROOT/build-ci-perf"
  cmake -B "$DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release -DMEECC_WERROR=ON
  cmake --build "$DIR" -j "$JOBS" --target meecc_bench micro_kernel
  # Micro-kernels (crypto + scheduler): a quick pass so obviously broken
  # kernels fail before the tracked suite runs.
  "$DIR/bench/micro_kernel" \
    --benchmark_filter='BM_(AesEncryptBlock|LineEncrypt|MultilinearTag|SchedulerDispatch|SchedulerChurn)' \
    --benchmark_min_time=0.05
  # The tracked suite: BENCH_hotpath.json is the uploadable baseline;
  # --check enforces ttable >= 2x reference AES and that snapshot-reuse
  # sweep results are byte-identical to fresh ones; --compare fails the
  # stage when any kernel regresses >15% against the committed baseline.
  "$DIR/bench/meecc_bench" perf --out "$ARTIFACTS/BENCH_hotpath.json" --check \
    --compare "$ROOT/BENCH_hotpath.json"
  echo "CI OK (perf)"
  exit 0
elif [ "$STAGE" = "nosimd" ]; then
  echo "=== scalar-probe build (-DMEECC_NO_SIMD=ON) ==="
  DIR="$ROOT/build-ci-nosimd"
  cmake -B "$DIR" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_WERROR=ON -DMEECC_NO_SIMD=ON
  cmake --build "$DIR" -j "$JOBS"
  # Unit tier plus the golden traces: byte-identical traces from the scalar
  # find_slot path is the gate that SIMD never changed behavior.
  ctest --test-dir "$DIR" --output-on-failure -j "$JOBS" -L unit
  "$DIR/tests/golden_trace_test"
  echo "CI OK (nosimd)"
  exit 0
elif [ "$STAGE" != "all" ]; then
  echo "unknown stage '$STAGE' (expected: all, hardened, perf, nosimd)" >&2
  exit 2
fi

echo "=== plain build (warnings are errors) ==="
build_and_test "$ROOT/build-ci-plain" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_WERROR=ON

echo "=== sanitized build (ASan+UBSan) ==="
build_and_test "$ROOT/build-ci-asan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_SANITIZE=ON

echo "=== sanitized observability pass ==="
# The obs hot paths (counter handles, trace emission) get an explicit
# sanitized run: UB here would silently skew every experiment's metrics.
"$ROOT/build-ci-asan/tests/obs_test"

echo "=== runtime determinism smoke (counters ride in the JSONL) ==="
BENCH="$ROOT/build-ci-plain/bench/meecc_bench"
"$BENCH" run fig7_window_sweep --set bits=96 --seeds 4 --jobs 4 \
  --json "$ARTIFACTS/counters-j4.jsonl" --quiet > /dev/null
"$BENCH" run fig7_window_sweep --set bits=96 --seeds 4 --jobs 1 \
  --json "$ARTIFACTS/counters-j1.jsonl" --quiet > /dev/null
cmp "$ARTIFACTS/counters-j1.jsonl" "$ARTIFACTS/counters-j4.jsonl"
grep -q '"counters":{' "$ARTIFACTS/counters-j1.jsonl"
echo "jobs=1 and jobs=4 JSONL bit-identical ($(wc -l < "$ARTIFACTS/counters-j1.jsonl") trials, counters included)"

"$BENCH" list
rm -f "$ARTIFACTS/counters-j1.jsonl" "$ARTIFACTS/counters-j4.jsonl"
echo "CI OK"
