#!/usr/bin/env bash
# CI entry point: build the plain and sanitized (ASan+UBSan) configurations,
# run the full test suite in both, then smoke the experiment runtime's
# determinism contract (bit-identical JSONL at --jobs 1 vs --jobs 4).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

build_and_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$ROOT" "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "=== plain build (warnings are errors) ==="
build_and_test "$ROOT/build-ci-plain" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_WERROR=ON

echo "=== sanitized build (ASan+UBSan) ==="
build_and_test "$ROOT/build-ci-asan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_SANITIZE=ON

echo "=== runtime determinism smoke ==="
BENCH="$ROOT/build-ci-plain/bench/meecc_bench"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
"$BENCH" run fig7_window_sweep --set bits=96 --seeds 4 --jobs 4 \
  --json "$TMP/j4.jsonl" --quiet > /dev/null
"$BENCH" run fig7_window_sweep --set bits=96 --seeds 4 --jobs 1 \
  --json "$TMP/j1.jsonl" --quiet > /dev/null
cmp "$TMP/j1.jsonl" "$TMP/j4.jsonl"
echo "jobs=1 and jobs=4 JSONL bit-identical ($(wc -l < "$TMP/j1.jsonl") trials)"

"$BENCH" list
echo "CI OK"
