#!/usr/bin/env bash
# CI entry point: build the plain and sanitized (ASan+UBSan) configurations,
# run the test suite in both — unit-labelled tests first so cheap component
# breakage fails fast, then the integration/property tiers — and finally
# smoke the experiment runtime's determinism contract (bit-identical JSONL,
# counters included, at --jobs 1 vs --jobs 4).
#
# Diagnostics for upload-on-failure land in $ROOT/ci-artifacts (golden-trace
# diff, counters JSONL); build trees also leave obs_artifacts/ dirs behind.
set -euo pipefail

# Usage: build_and_test.sh [all|hardened|perf|nosimd|shard|tsan]
#   all       (default) plain + sanitized builds, full suite, determinism smoke
#   hardened  warnings-hardened configuration only (-Wall -Wextra -Wshadow
#             -Werror); runs as its own CI job so shadowing regressions fail
#             without holding up the main matrix
#   perf      Release build; runs the crypto/scheduler micro-kernels and
#             `meecc_bench perf --check` (fails if the ttable AES backend is
#             not at least 2x the reference, if the campaign macro-benchmark's
#             recycled and fresh sweeps diverge, or if recycling allocates
#             more than 10% of the fresh path's allocations per trial),
#             leaving BENCH_hotpath.json in $ROOT/ci-artifacts for upload
#   nosimd    -DMEECC_NO_SIMD=ON build (portable scalar tag probe); runs the
#             unit and golden-trace tiers so the scalar cache-probe path
#             proves the same golden traces as the SIMD one
#   shard     sharded-campaign fabric end to end: run a small sweep as three
#             shards (one killed mid-run via --stop-after and resumed),
#             merge, and diff against the unsharded JSONL; then rerun the
#             sweep purely from the on-disk setup store the shards left
#             behind. Shard manifests land in $ROOT/ci-artifacts on failure.
#             Streaming is the shard-mode default; the stage also reruns the
#             sweep --no-streaming and as a streaming plain run, cmp'ing both
#             against the same reference bytes.
#   tsan      -DMEECC_SANITIZE=thread build; runs the parallel suites that
#             hammer the lock-free MPSC queue, the committer pipeline, and
#             the atomic bed-pool stats, so every data race on the per-trial
#             result path fails CI instead of corrupting a campaign
STAGE="${1:-all}"

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
ARTIFACTS="$ROOT/ci-artifacts"
mkdir -p "$ARTIFACTS"

collect_artifacts() {
  # Golden-trace mismatch dumps live under <build>/obs_artifacts.
  local dir
  for dir in "$ROOT"/build-ci-*/obs_artifacts; do
    [ -d "$dir" ] && cp -r "$dir" "$ARTIFACTS/$(basename "$(dirname "$dir")")-obs" || true
  done
  # Shard manifests describe exactly what each campaign shard committed;
  # the shard stage deletes its campaign dir on success, so these only
  # survive (and upload) when the stage failed.
  if [ -d "$ROOT/build-ci-shard/campaign" ]; then
    mkdir -p "$ARTIFACTS/shard-campaign"
    cp "$ROOT"/build-ci-shard/campaign/*.manifest.json \
      "$ARTIFACTS/shard-campaign/" 2> /dev/null || true
  fi
}
trap collect_artifacts EXIT

build_and_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$ROOT" "$@"
  cmake --build "$dir" -j "$JOBS"
  # Unit tier first: fails fast on single-component breakage.
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L unit
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -LE unit
}

if [ "$STAGE" = "hardened" ]; then
  echo "=== hardened build (-Wall -Wextra -Wshadow -Werror) ==="
  build_and_test "$ROOT/build-ci-hardened" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_WERROR=ON -DMEECC_HARDENED=ON
  echo "CI OK (hardened)"
  exit 0
elif [ "$STAGE" = "perf" ]; then
  echo "=== perf smoke (Release hot-path timings) ==="
  DIR="$ROOT/build-ci-perf"
  cmake -B "$DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release -DMEECC_WERROR=ON
  cmake --build "$DIR" -j "$JOBS" --target meecc_bench micro_kernel
  # Micro-kernels (crypto + scheduler): a quick pass so obviously broken
  # kernels fail before the tracked suite runs.
  "$DIR/bench/micro_kernel" \
    --benchmark_filter='BM_(AesEncryptBlock|LineEncrypt|MultilinearTag|SchedulerDispatch|SchedulerChurn)' \
    --benchmark_min_time=0.05
  # The tracked suite: BENCH_hotpath.json is the uploadable baseline;
  # --check enforces ttable >= 2x reference AES, that snapshot-reuse and
  # bed-recycling sweep results are byte-identical to fresh ones, and that
  # the campaign macro-benchmark's recycled path allocates <= 10% of the
  # fresh path's allocations per trial; --compare fails the stage when any
  # tracked kernel regresses >15% against the committed baseline (timing
  # kernels on CPU-time clocks, the campaign on allocation counts — the
  # only campaign metric stable enough on shared CI runners to gate on;
  # throughput stays in the JSON's "campaign" section for humans).
  "$DIR/bench/meecc_bench" perf --out "$ARTIFACTS/BENCH_hotpath.json" --check \
    --compare "$ROOT/BENCH_hotpath.json"
  echo "CI OK (perf)"
  exit 0
elif [ "$STAGE" = "nosimd" ]; then
  echo "=== scalar-probe build (-DMEECC_NO_SIMD=ON) ==="
  DIR="$ROOT/build-ci-nosimd"
  cmake -B "$DIR" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_WERROR=ON -DMEECC_NO_SIMD=ON
  cmake --build "$DIR" -j "$JOBS"
  # Unit tier plus the golden traces: byte-identical traces from the scalar
  # find_slot path is the gate that SIMD never changed behavior. The
  # serialize round-trip rides along so snapshot wire bytes are proven
  # backend-invariant on the scalar path too.
  ctest --test-dir "$DIR" --output-on-failure -j "$JOBS" -L unit
  "$DIR/tests/golden_trace_test"
  "$DIR/tests/serialize_test"
  echo "CI OK (nosimd)"
  exit 0
elif [ "$STAGE" = "shard" ]; then
  echo "=== sharded campaign fabric (kill, resume, merge, setup store) ==="
  DIR="$ROOT/build-ci-shard"
  cmake -B "$DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_WERROR=ON
  cmake --build "$DIR" -j "$JOBS" --target meecc_bench
  BENCH="$DIR/bench/meecc_bench"
  CAMPAIGN="$DIR/campaign"
  STORE="$DIR/setup-store"
  rm -rf "$CAMPAIGN" "$STORE"
  # mitigations is the sweep with a setup_key, so the shards genuinely
  # exercise the snapshot serialization path through the on-disk store.
  # No --quiet: the "setup reuse" stderr line is asserted on below.
  SWEEP=(run mitigations --seeds 3)

  echo "--- unsharded reference (6 trials) ---"
  "$BENCH" "${SWEEP[@]}" --jobs 4 --json "$DIR/reference.jsonl" > /dev/null

  echo "--- shards 1/3 and 3/3 to completion, 2/3 killed after one trial ---"
  "$BENCH" "${SWEEP[@]}" --jobs 1 --setup-store "$STORE" \
    --shard 1/3 --dir "$CAMPAIGN"
  "$BENCH" "${SWEEP[@]}" --jobs 4 --setup-store "$STORE" \
    --shard 3/3 --dir "$CAMPAIGN"
  "$BENCH" "${SWEEP[@]}" --jobs 1 --setup-store "$STORE" \
    --shard 2/3 --dir "$CAMPAIGN" --stop-after 1

  echo "--- merge must refuse the partial campaign ---"
  if "$BENCH" merge --dir "$CAMPAIGN" --json "$DIR/merged.jsonl" 2> /dev/null; then
    echo "merge accepted a campaign with an incomplete shard" >&2
    exit 1
  fi

  echo "--- resume the killed shard from its manifest watermark ---"
  "$BENCH" "${SWEEP[@]}" --jobs 4 --setup-store "$STORE" \
    --shard 2/3 --dir "$CAMPAIGN" --resume

  echo "--- merge and diff against the unsharded JSONL ---"
  "$BENCH" merge --dir "$CAMPAIGN" --json "$DIR/merged.jsonl"
  cmp "$DIR/reference.jsonl" "$DIR/merged.jsonl"
  echo "merged 3 shards byte-identical to the unsharded run"

  echo "--- streaming plain run matches the in-memory reference ---"
  # Same sweep through the bounded-memory path: records dropped after
  # commit, bytes out of the JsonlResultStream. Must be the same bytes.
  "$BENCH" "${SWEEP[@]}" --jobs 4 --setup-store "$STORE" --streaming \
    --json "$DIR/streaming.jsonl" > /dev/null
  cmp "$DIR/reference.jsonl" "$DIR/streaming.jsonl"

  echo "--- --no-streaming shards merge to the same bytes ---"
  # Shard mode defaults to streaming, so the campaign above already ran
  # that way; this covers the other side of the streaming axis.
  CAMPAIGN2="$DIR/campaign-nostream"
  rm -rf "$CAMPAIGN2"
  "$BENCH" "${SWEEP[@]}" --jobs 4 --setup-store "$STORE" --no-streaming \
    --shard 1/2 --dir "$CAMPAIGN2"
  "$BENCH" "${SWEEP[@]}" --jobs 1 --setup-store "$STORE" --no-streaming \
    --shard 2/2 --dir "$CAMPAIGN2"
  "$BENCH" merge --dir "$CAMPAIGN2" --json "$DIR/merged-nostream.jsonl"
  cmp "$DIR/reference.jsonl" "$DIR/merged-nostream.jsonl"
  rm -rf "$CAMPAIGN2"
  echo "streaming on/off both reproduce the reference byte for byte"

  echo "--- unsharded rerun served entirely from the shards' setup store ---"
  SETUP_LINE=$("$BENCH" "${SWEEP[@]}" --jobs 4 --setup-store "$STORE" \
    --json "$DIR/from-store.jsonl" 2>&1 | grep 'setup reuse' || true)
  echo "$SETUP_LINE"
  case "$SETUP_LINE" in
    *"0 built"*) ;;
    *)
      echo "expected every warm setup to come off disk, got: '$SETUP_LINE'" >&2
      exit 1
      ;;
  esac
  cmp "$DIR/reference.jsonl" "$DIR/from-store.jsonl"
  echo "disk-loaded snapshots reproduce the reference byte for byte"

  rm -rf "$CAMPAIGN"  # keep manifests out of the artifact upload on success
  echo "CI OK (shard)"
  exit 0
elif [ "$STAGE" = "tsan" ]; then
  echo "=== thread-sanitized build (lock-free result pipeline) ==="
  DIR="$ROOT/build-ci-tsan"
  cmake -B "$DIR" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_SANITIZE=thread
  cmake --build "$DIR" -j "$JOBS" \
    --target mpsc_queue_test runtime_test campaign_test snapshot_test
  # The parallel suites that drive the MPSC queue, the committer pipeline,
  # and the atomic bed-pool stats hard enough for TSan to see every
  # producer/consumer pairing on the per-trial result path.
  "$DIR/tests/mpsc_queue_test"
  "$DIR/tests/runtime_test"
  "$DIR/tests/campaign_test"
  "$DIR/tests/snapshot_test" --gtest_filter='Runner.*:BedPool.*'
  echo "CI OK (tsan)"
  exit 0
elif [ "$STAGE" != "all" ]; then
  echo "unknown stage '$STAGE' (expected: all, hardened, perf, nosimd, shard, tsan)" >&2
  exit 2
fi

echo "=== plain build (warnings are errors) ==="
build_and_test "$ROOT/build-ci-plain" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_WERROR=ON

echo "=== sanitized build (ASan+UBSan) ==="
build_and_test "$ROOT/build-ci-asan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMEECC_SANITIZE=ON

echo "=== sanitized observability pass ==="
# The obs hot paths (counter handles, trace emission) get an explicit
# sanitized run: UB here would silently skew every experiment's metrics.
"$ROOT/build-ci-asan/tests/obs_test"

echo "=== runtime determinism smoke (counters ride in the JSONL) ==="
BENCH="$ROOT/build-ci-plain/bench/meecc_bench"
"$BENCH" run fig7_window_sweep --set bits=96 --seeds 4 --jobs 4 \
  --json "$ARTIFACTS/counters-j4.jsonl" --quiet > /dev/null
"$BENCH" run fig7_window_sweep --set bits=96 --seeds 4 --jobs 1 \
  --json "$ARTIFACTS/counters-j1.jsonl" --quiet > /dev/null
cmp "$ARTIFACTS/counters-j1.jsonl" "$ARTIFACTS/counters-j4.jsonl"
grep -q '"counters":{' "$ARTIFACTS/counters-j1.jsonl"
echo "jobs=1 and jobs=4 JSONL bit-identical ($(wc -l < "$ARTIFACTS/counters-j1.jsonl") trials, counters included)"

"$BENCH" list
rm -f "$ARTIFACTS/counters-j1.jsonl" "$ARTIFACTS/counters-j4.jsonl"
echo "CI OK"
