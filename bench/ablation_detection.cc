// Beyond-paper ablation: performance-counter detection (§5.5's cited
// defense direction [1][4], adapted to the MEE).
//
// Two findings this bench demonstrates:
//  1. the channel is STEALTHY under the classic miss-ratio heuristic —
//     the trojan's eviction pass is almost all versions HITS — but cannot
//     hide its per-set eviction concentration;
//  2. the crude counters cost false positives: an innocent co-tenant
//     streaming integrity-tree data trips the same alarm.
#include <cstdio>

#include "bench_util.h"
#include "channel/covert_channel.h"
#include "channel/detector.h"
#include "channel/testbed.h"
#include "common/table.h"
#include "sim/noise.h"

namespace {

meecc::channel::TestBedConfig bed_config(std::uint64_t seed) {
  auto config = meecc::channel::default_testbed_config(seed);
  config.system.mee.functional_crypto = false;
  return config;
}

}  // namespace

int main() {
  using namespace meecc;
  benchutil::banner("Detecting the channel with MEE performance counters",
                    "beyond-paper ablation; paper section 5.5 refs [1][4]");

  Table table({"workload", "flagged", "by miss ratio", "by set concentration",
               "suspicious epochs"});

  {  // the covert channel itself
    channel::TestBed bed(bed_config(500));
    const auto setup =
        channel::setup_covert_channel(bed, channel::ChannelConfig{});
    channel::Detector detector(bed, channel::DetectorConfig{});
    detector.start();
    (void)channel::transfer_covert_channel(bed, channel::ChannelConfig{},
                                           channel::random_bits(256, 1),
                                           setup);
    const auto report = detector.stop();
    table.add("MEE covert channel", report.flagged ? "YES" : "no",
              report.flagged_by_miss_ratio ? "yes" : "no",
              report.flagged_by_concentration ? "yes" : "no",
              report.suspicious_epochs);
  }

  {  // locality-friendly enclave workload
    channel::TestBed bed(bed_config(501));
    channel::Detector detector(bed, channel::DetectorConfig{});
    detector.start();
    bed.scheduler().spawn(sim::mee_stride_walker(
        bed.spy(), sim::StrideWalkerConfig{.base = bed.spy_enclave().base(),
                                           .bytes = bed.spy_enclave().size(),
                                           .stride = 64,
                                           .gap = 600}));
    bed.scheduler().run_until(4'000'000);
    const auto report = detector.stop();
    table.add("legit 64B-stride enclave", report.flagged ? "YES" : "no",
              report.flagged_by_miss_ratio ? "yes" : "no",
              report.flagged_by_concentration ? "yes" : "no",
              report.suspicious_epochs);
  }

  {  // innocent streaming co-tenant — the false positive
    channel::TestBed bed(bed_config(502));
    channel::Detector detector(bed, channel::DetectorConfig{});
    detector.start();
    bed.scheduler().spawn(sim::mee_stride_walker(
        bed.spy(), sim::StrideWalkerConfig{.base = bed.spy_enclave().base(),
                                           .bytes = bed.spy_enclave().size(),
                                           .stride = 4096,
                                           .gap = 600}));
    bed.scheduler().run_until(4'000'000);
    const auto report = detector.stop();
    table.add("legit 4KB-stride streaming", report.flagged ? "YES" : "no",
              report.flagged_by_miss_ratio ? "yes" : "no",
              report.flagged_by_concentration ? "yes" : "no",
              report.suspicious_epochs);
  }

  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "takeaways: (1) the trojan's eviction pass is mostly versions HITS, so\n"
      "the classic miss-ratio heuristic misses the channel entirely; only\n"
      "the per-set eviction concentration exposes it. (2) the miss-ratio\n"
      "rule false-positives on any integrity-data-streaming co-tenant —\n"
      "the detection/usability tension the paper's mitigation section\n"
      "alludes to.\n");
  std::printf("\nCSV\n%s", table.to_csv().c_str());
  return 0;
}
