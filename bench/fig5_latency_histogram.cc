// Fig. 5: latency distribution of protected-region main-memory accesses by
// stride. Paper peaks: versions hit ≈ 480 cycles, then L0/L1/L2 hits ~65
// cycles apart, root ≈ 750; hit↔miss gap ≥ ~300 cycles.
#include <cstdio>

#include "bench_util.h"
#include "channel/latency_survey.h"
#include "channel/testbed.h"
#include "common/chart.h"
#include "common/table.h"
#include "mee/levels.h"

int main() {
  using namespace meecc;
  benchutil::banner("Protected-region access latency by stride",
                    "Fig. 5, paper section 5.1");

  channel::TestBedConfig bed_config = channel::default_testbed_config(55);
  bed_config.system.address_map.epc_size = 64ull << 20;
  bed_config.trojan_enclave_bytes = 32ull << 20;  // room for 256 KB strides
  bed_config.system.mee.functional_crypto = false;
  channel::TestBed bed(bed_config);

  channel::LatencySurveyConfig config;
  config.samples_per_stride = 2500;
  const auto result = channel::run_latency_survey(bed, config);

  for (const auto& series : result.series) {
    std::printf("--- stride %llu B (mean %.0f cycles) ---\n",
                static_cast<unsigned long long>(series.stride),
                series.latency.mean());
    std::printf("%s\n", render_histogram(series.histogram, 50).c_str());
  }

  Table by_level({"MEE-cache stop level", "samples", "mean latency (cyc)",
                  "stddev", "paper peak"});
  const char* paper_peaks[5] = {"~480", "~545", "~610", "~675", "~750"};
  for (std::size_t level = 0; level < 5; ++level) {
    const auto& stats = result.per_level[level];
    if (stats.count() == 0) continue;
    by_level.add(to_string(static_cast<mee::Level>(level)), stats.count(),
                 static_cast<long long>(stats.mean()),
                 static_cast<long long>(stats.stddev()), paper_peaks[level]);
  }
  std::printf("%s\n", by_level.to_text().c_str());

  Table mix({"stride", "versions", "L0", "L1", "L2", "root"});
  for (const auto& series : result.series) {
    mix.add(series.stride, series.stop_counts[0], series.stop_counts[1],
            series.stop_counts[2], series.stop_counts[3],
            series.stop_counts[4]);
  }
  std::printf("stop-level mix per stride (paper: 64B/512B -> versions/L0;\n"
              "4KB/32KB -> L1/L2; 256KB -> root):\n%s\n",
              mix.to_text().c_str());

  const double hit = result.per_level[0].mean();
  const double root = result.per_level[4].count()
                          ? result.per_level[4].mean()
                          : 0.0;
  if (root > 0)
    std::printf("versions-hit vs root gap: %.0f cycles (paper: >= ~300)\n",
                root - hit);
  std::printf("\nCSV\n%s", by_level.to_csv().c_str());
  return 0;
}
