// Fig. 4: eviction probability vs candidate-set size, 100 trials per size.
// Paper: probability rises with N and reaches 100% at 64 addresses, giving
// MEE cache capacity = 64 × (16 × 64 B) = 64 KB.
#include <cstdio>

#include "bench_util.h"
#include "channel/capacity_probe.h"
#include "channel/testbed.h"
#include "common/chart.h"
#include "common/table.h"

int main() {
  using namespace meecc;
  benchutil::banner("MEE cache capacity probe", "Fig. 4, paper section 4.1");

  channel::TestBedConfig bed_config = channel::default_testbed_config(41);
  bed_config.system.mee.functional_crypto = false;
  channel::TestBed bed(bed_config);

  channel::CapacityProbeConfig config;
  config.trials = 100;
  const auto result = channel::run_capacity_probe(bed, config);

  Table table({"candidate addresses", "evictions/100", "probability"});
  std::vector<std::string> labels;
  std::vector<double> values;
  for (const auto& point : result.points) {
    table.add(point.candidates, point.evictions, point.probability);
    labels.push_back(std::to_string(point.candidates));
    values.push_back(point.probability);
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("%s\n", render_bar_chart(labels, values).c_str());

  std::printf("saturation knee:        %llu addresses (paper: 64)\n",
              static_cast<unsigned long long>(result.knee));
  std::printf("estimated capacity:     %llu KB (paper: 64 KB)\n",
              static_cast<unsigned long long>(result.estimated_capacity_bytes /
                                              1024));
  std::printf("\nCSV\n%s", table.to_csv().c_str());
  return 0;
}
