// Fig. 8: channel robustness while the trojan sends a 128-bit '100100…'
// sequence under four environments. Paper: (a) no noise → 1 error bit,
// (b) cache/memory stress → minimal impact, (c)/(d) MEE-cache noise
// (512 B / 4 KB stride co-tenant) → 4-5 error bits.
#include <cstdio>

#include "bench_util.h"
#include "channel/covert_channel.h"
#include "channel/testbed.h"
#include "common/chart.h"
#include "common/table.h"

int main() {
  using namespace meecc;
  benchutil::banner("Noise robustness, 128-bit '100100...' sequence",
                    "Fig. 8 (a)-(d), paper section 5.4");

  const auto payload = channel::pattern_100100(128);
  const channel::NoiseEnv envs[] = {
      channel::NoiseEnv::kNone, channel::NoiseEnv::kMemoryStress,
      channel::NoiseEnv::kMeeStride512, channel::NoiseEnv::kMeeStride4K};
  const char* paper_notes[] = {"1 error bit", "minimal impact", "4-5 errors",
                               "4-5 errors"};

  Table table({"environment", "bit errors /128", "error rate", "paper"});
  int row = 0;
  for (const auto env : envs) {
    channel::TestBedConfig bed_config =
        channel::default_testbed_config(800 + row);
    bed_config.system.mee.functional_crypto = false;
    bed_config.noise = env;
    bed_config.noise_autostart = false;  // co-tenant arrives mid-transfer
    channel::TestBed bed(bed_config);

    const auto result =
        channel::run_covert_channel(bed, channel::ChannelConfig{}, payload);

    std::printf("(%c) %s — probe trace (errors show as misplaced levels):\n",
                static_cast<char>('a' + row),
                std::string(to_string(env)).c_str());
    std::printf("%s\n", render_series(result.probe_times, 10, 96).c_str());

    char err[32];
    std::snprintf(err, sizeof err, "%.3f", result.error_rate);
    table.add(to_string(env), result.bit_errors, err, paper_notes[row]);
    ++row;
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("\nCSV\n%s", table.to_csv().c_str());
  return 0;
}
