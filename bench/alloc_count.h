// Process-wide heap-allocation counter for the campaign macro-benchmark.
// bench/alloc_count.cc replaces the global allocation functions in the
// meecc_bench binary (libraries are unaffected — replacement happens at
// link time, per [replacement.functions]) so the suite can report
// allocations/trial and CI can assert the recycled trial path allocates a
// small fraction of what fresh forks do.
#pragma once

#include <cstdint>

namespace meecc::bench {

/// Number of operator-new calls (all forms) since process start. Take a
/// delta around a timed region; frees are not counted.
std::uint64_t allocation_count();

}  // namespace meecc::bench
