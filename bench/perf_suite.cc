#include "perf_suite.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <ostream>
#include <sstream>
#include <utility>

#include "channel/covert_channel.h"
#include "channel/testbed.h"
#include "common/rng.h"
#include "crypto/aes_backend.h"
#include "crypto/line_cipher.h"
#include "crypto/multilinear_mac.h"
#include "mee/engine.h"
#include "mem/address_map.h"
#include "mem/physical_memory.h"
#include "sim/des.h"

namespace meecc::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// Compiler barrier so timed results are not dead-code-eliminated.
template <typename T>
inline void keep(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Times `run(iters)` (which must perform `iters` operations), growing
/// `iters` until the wall time passes `min_seconds`, and returns ns per
/// operation. Monotonic clock, single measurement at the final size — the
/// suite tracks order-of-magnitude regressions, not microseconds.
double ns_per_op(const std::function<void(std::uint64_t)>& run,
                 double min_seconds = 0.05, std::uint64_t start_iters = 64) {
  std::uint64_t iters = start_iters;
  for (;;) {
    const auto start = Clock::now();
    run(iters);
    const double sec =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (sec >= min_seconds) return sec * 1e9 / static_cast<double>(iters);
    iters = sec <= 1e-9
                ? iters * 32
                : static_cast<std::uint64_t>(static_cast<double>(iters) *
                                             min_seconds * 1.4 / sec) +
                      1;
  }
}

sim::Process ticker(sim::Scheduler& scheduler, std::uint64_t events) {
  for (std::uint64_t i = 0; i < events; ++i)
    co_await sim::WakeAt{scheduler, scheduler.now() + 1};
}

sim::Process one_shot(sim::Scheduler& scheduler) {
  co_await sim::WakeAt{scheduler, scheduler.now() + 1};
}

crypto::Key128 bench_key() {
  return crypto::Key128{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
}

struct QuickstartResult {
  std::uint64_t walks = 0;
  double wall_seconds = 0.0;
  double walks_per_sec = 0.0;
  double bits_per_sec = 0.0;
};

/// End-to-end: the quickstart covert-channel scenario (eviction-set build +
/// transmission), using the default "auto" backend and pad cache — the
/// configuration experiments actually run under.
QuickstartResult run_quickstart() {
  channel::TestBed bed(channel::default_testbed_config(1));
  const auto payload = channel::alternating_bits(16);
  const auto start = Clock::now();
  const auto result =
      channel::run_covert_channel(bed, channel::ChannelConfig{}, payload);
  QuickstartResult out;
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  const auto stats = bed.system().mee().stats();
  out.walks = stats.reads + stats.writes;
  out.walks_per_sec = static_cast<double>(out.walks) / out.wall_seconds;
  out.bits_per_sec =
      static_cast<double>(result.received.size()) / out.wall_seconds;
  keep(result.monitor_found);
  return out;
}

void write_json(std::ostream& os,
                const std::vector<std::pair<std::string, double>>& kernels,
                const std::vector<std::pair<std::string, double>>& speedups,
                const QuickstartResult& quickstart, bool checked,
                bool check_passed) {
  os << "{\n  \"schema\": \"meecc.bench.hotpath.v1\",\n  \"kernels_ns_per_op\": {";
  bool first = true;
  for (const auto& [name, ns] : kernels) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << ns;
    first = false;
  }
  os << "\n  },\n  \"speedup\": {";
  first = true;
  for (const auto& [name, ratio] : speedups) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << ratio;
    first = false;
  }
  os << "\n  },\n  \"quickstart\": {\n"
     << "    \"walks\": " << quickstart.walks << ",\n"
     << "    \"wall_seconds\": " << quickstart.wall_seconds << ",\n"
     << "    \"walks_per_sec\": " << quickstart.walks_per_sec << ",\n"
     << "    \"bits_per_sec\": " << quickstart.bits_per_sec << "\n  }";
  if (checked)
    os << ",\n  \"check\": {\n    \"ttable_speedup_min\": 2.0,\n"
       << "    \"passed\": " << (check_passed ? "true" : "false") << "\n  }";
  os << "\n}\n";
}

}  // namespace

int run_perf_suite(const std::string& out_path, bool check) {
  std::vector<std::pair<std::string, double>> kernels;
  const auto record = [&](const std::string& name, double ns) {
    kernels.emplace_back(name, ns);
    std::fprintf(stderr, "  %-28s %12.1f ns/op\n", name.c_str(), ns);
  };

  // --- AES block, one entry per backend this CPU can run ------------------
  double reference_ns = 0.0, ttable_ns = 0.0;
  std::vector<std::pair<std::string, double>> speedups;
  for (const std::string& name : crypto::aes_backend_names()) {
    if (name == crypto::kAutoBackend || !crypto::aes_backend_available(name))
      continue;
    const auto aes = crypto::make_aes_backend(name, bench_key());
    const double ns = ns_per_op([&](std::uint64_t iters) {
      crypto::Block block{};
      for (std::uint64_t i = 0; i < iters; ++i) block = aes->encrypt(block);
      keep(block);
    });
    record("aes_block." + name, ns);
    if (name == "reference") reference_ns = ns;
    if (name == "ttable") ttable_ns = ns;
    if (name != "reference" && reference_ns > 0.0)
      speedups.emplace_back("aes_block." + name + "_vs_reference",
                            reference_ns / ns);
  }

  // --- line encrypt: keystream cache cold (fresh nonce) vs hot ------------
  {
    const crypto::LineCipher cipher(bench_key());
    record("line_encrypt.cold", ns_per_op([&](std::uint64_t iters) {
             crypto::LineData line{};
             for (std::uint64_t i = 0; i < iters; ++i)
               line = cipher.encrypt(line, 0x1000, i + 1);
             keep(line);
           }));
    record("line_encrypt.hot", ns_per_op([&](std::uint64_t iters) {
             crypto::LineData line{};
             for (std::uint64_t i = 0; i < iters; ++i)
               line = cipher.encrypt(line, 0x1000, 1);
             keep(line);
           }));
  }

  // --- multilinear MAC tag: pad cache cold vs hot -------------------------
  {
    const crypto::MultilinearMac mac(bench_key());
    record("mac_tag.cold", ns_per_op([&](std::uint64_t iters) {
             const crypto::LineData line{};
             std::uint64_t acc = 0;
             for (std::uint64_t i = 0; i < iters; ++i)
               acc ^= mac.tag(0x40, i + 1, line);
             keep(acc);
           }));
    record("mac_tag.hot", ns_per_op([&](std::uint64_t iters) {
             const crypto::LineData line{};
             std::uint64_t acc = 0;
             for (std::uint64_t i = 0; i < iters; ++i)
               acc ^= mac.tag(0x40, 1, line);
             keep(acc);
           }));
  }

  // --- MEE tree walk: cold (full walk to root) vs versions hit ------------
  {
    const mem::AddressMap map(
        mem::AddressMapConfig{.general_size = 1 << 20, .epc_size = 4 << 20});
    mem::PhysicalMemory memory;
    mee::MeeEngine engine(map, memory, mee::MeeConfig{}, Rng(1));
    const PhysAddr addr = map.protected_data().base;
    record("mee_walk.cold", ns_per_op(
                                [&](std::uint64_t iters) {
                                  for (std::uint64_t i = 0; i < iters; ++i) {
                                    engine.mutable_cache().flush_all();
                                    keep(engine.read_line(CoreId{0}, addr));
                                  }
                                },
                                /*min_seconds=*/0.05, /*start_iters=*/16));
    engine.read_line(CoreId{0}, addr);  // warm
    record("mee_walk.hot", ns_per_op([&](std::uint64_t iters) {
             for (std::uint64_t i = 0; i < iters; ++i)
               keep(engine.read_line(CoreId{0}, addr));
           }));
  }

  // --- scheduler: per-event dispatch and spawn/complete churn -------------
  record("scheduler.dispatch", ns_per_op([](std::uint64_t iters) {
           sim::Scheduler scheduler;
           scheduler.spawn(ticker(scheduler, iters));
           scheduler.run_to_completion();
         }));
  record("scheduler.churn", ns_per_op([](std::uint64_t iters) {
           sim::Scheduler scheduler;
           for (std::uint64_t i = 0; i < iters; ++i)
             scheduler.spawn(one_shot(scheduler));
           scheduler.run_to_completion();
         }));

  // --- end to end ---------------------------------------------------------
  std::fprintf(stderr, "  quickstart end-to-end...\n");
  const QuickstartResult quickstart = run_quickstart();
  std::fprintf(stderr, "  %-28s %12.0f walks/sec (%llu walks in %.2fs)\n",
               "quickstart.e2e", quickstart.walks_per_sec,
               static_cast<unsigned long long>(quickstart.walks),
               quickstart.wall_seconds);

  bool check_passed = true;
  if (check) {
    const double speedup =
        ttable_ns > 0.0 && reference_ns > 0.0 ? reference_ns / ttable_ns : 0.0;
    check_passed = speedup >= 2.0;
    std::fprintf(stderr, "check: ttable %.1fx reference (needs >= 2.0x): %s\n",
                 speedup, check_passed ? "ok" : "FAIL");
  }

  std::ostringstream json;
  write_json(json, kernels, speedups, quickstart, check, check_passed);
  if (out_path == "-") {
    std::cout << json.str();
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", out_path.c_str());
      return 1;
    }
    out << json.str();
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return check_passed ? 0 : 1;
}

}  // namespace meecc::bench
