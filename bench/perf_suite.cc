#include "perf_suite.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "cache/geometry.h"
#include "cache/set_assoc_cache.h"
#include "cache/tag_probe.h"
#include "channel/covert_channel.h"
#include "channel/testbed.h"
#include "common/rng.h"
#include "crypto/aes_backend.h"
#include "crypto/line_cipher.h"
#include "crypto/multilinear_mac.h"
#include "mee/engine.h"
#include "mem/address_map.h"
#include "mem/physical_memory.h"
#include "runtime/registry.h"
#include "runtime/runner.h"
#include "runtime/sink.h"
#include "runtime/sweep.h"
#include "sim/des.h"

namespace meecc::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// Compiler barrier so timed results are not dead-code-eliminated.
template <typename T>
inline void keep(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Times `run(iters)` (which must perform `iters` operations), growing
/// `iters` until the wall time passes `min_seconds`, then re-times that
/// final size several times and returns the best repetition's ns per
/// operation. The minimum is the standard contention filter: scheduler
/// preemption and frequency dips only ever add time, so the fastest
/// repetition is the closest view of the kernel itself — without it, a
/// busy host trips the --compare gate on code that didn't change.
double ns_per_op(const std::function<void(std::uint64_t)>& run,
                 double min_seconds = 0.05, std::uint64_t start_iters = 64) {
  constexpr int kRepetitions = 5;
  std::uint64_t iters = start_iters;
  double sec = 0;
  for (;;) {
    const auto start = Clock::now();
    run(iters);
    sec = std::chrono::duration<double>(Clock::now() - start).count();
    if (sec >= min_seconds) break;
    iters = sec <= 1e-9
                ? iters * 32
                : static_cast<std::uint64_t>(static_cast<double>(iters) *
                                             min_seconds * 1.4 / sec) +
                      1;
  }
  double best = sec;
  for (int rep = 1; rep < kRepetitions; ++rep) {
    const auto start = Clock::now();
    run(iters);
    best = std::min(
        best, std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best * 1e9 / static_cast<double>(iters);
}

sim::Process ticker(sim::Scheduler& scheduler, std::uint64_t events) {
  for (std::uint64_t i = 0; i < events; ++i)
    co_await sim::WakeAt{scheduler, scheduler.now() + 1};
}

sim::Process one_shot(sim::Scheduler& scheduler) {
  co_await sim::WakeAt{scheduler, scheduler.now() + 1};
}

crypto::Key128 bench_key() {
  return crypto::Key128{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
}

struct QuickstartResult {
  std::uint64_t walks = 0;
  double wall_seconds = 0.0;
  double walks_per_sec = 0.0;
  double bits_per_sec = 0.0;
};

/// End-to-end: the quickstart covert-channel scenario (eviction-set build +
/// transmission), using the default "auto" backend and pad cache — the
/// configuration experiments actually run under.
QuickstartResult run_quickstart() {
  channel::TestBed bed(channel::default_testbed_config(1));
  const auto payload = channel::alternating_bits(16);
  const auto start = Clock::now();
  const auto result =
      channel::run_covert_channel(bed, channel::ChannelConfig{}, payload);
  QuickstartResult out;
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  const auto stats = bed.system().mee().stats();
  out.walks = stats.reads + stats.writes;
  out.walks_per_sec = static_cast<double>(out.walks) / out.wall_seconds;
  out.bits_per_sec =
      static_cast<double>(result.received.size()) / out.wall_seconds;
  keep(result.monitor_found);
  return out;
}

/// The fresh-vs-snapshot sweep benchmark: a setup-heavy mitigations sweep
/// (8 payload-bits points x 4 seeds; only the measure phase varies per
/// point, so snapshot reuse shares one Algorithm-1 setup per seed).
struct SweepBenchResult {
  std::size_t trials = 0;
  std::size_t shared_setups = 0;  ///< distinct warm states under reuse
  double fresh_seconds = 0.0;
  double snapshot_seconds = 0.0;
  double speedup = 0.0;
  /// Byte equality of the two runs' JSONL record streams — snapshot reuse
  /// must not change any result.
  bool identical_results = false;
};

SweepBenchResult run_sweep_bench() {
  const runtime::Experiment& experiment = runtime::get_experiment("mitigations");
  runtime::SweepSpec spec;
  spec.sets = {{"mee.cache.indexing", "modulo"}, {"setup_attempts", "1"}};
  spec.axes = {{"bits", {"16", "24", "32", "40", "48", "56", "64", "72"}}};
  spec.seeds = 4;
  const auto trials = runtime::expand_sweep(experiment, spec);

  // jobs=1: wall-clock contrast between the modes, undiluted by pool
  // scheduling noise. Results are jobs-independent either way.
  runtime::RunnerConfig config;
  config.jobs = 1;
  const auto timed = [&](bool reuse, std::vector<runtime::TrialRecord>* out,
                         runtime::SetupStats* stats) {
    config.reuse_setup = reuse;
    const auto start = Clock::now();
    *out = runtime::run_trials(experiment, trials, config, stats);
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  SweepBenchResult result;
  result.trials = trials.size();
  std::vector<runtime::TrialRecord> fresh_records, snapshot_records;
  runtime::SetupStats fresh_stats, snapshot_stats;
  result.fresh_seconds = timed(false, &fresh_records, &fresh_stats);
  result.snapshot_seconds = timed(true, &snapshot_records, &snapshot_stats);
  result.shared_setups = snapshot_stats.builds;
  result.speedup = result.snapshot_seconds > 0.0
                       ? result.fresh_seconds / result.snapshot_seconds
                       : 0.0;
  std::ostringstream fresh_jsonl, snapshot_jsonl;
  runtime::write_jsonl(fresh_jsonl, fresh_records);
  runtime::write_jsonl(snapshot_jsonl, snapshot_records);
  result.identical_results = fresh_jsonl.str() == snapshot_jsonl.str();
  return result;
}

/// Pulls the name -> ns pairs out of a baseline report's
/// "kernels_ns_per_op" object. Minimal scan, matched to write_json's
/// output shape.
std::vector<std::pair<std::string, double>> parse_baseline_kernels(
    const std::string& text) {
  std::vector<std::pair<std::string, double>> kernels;
  const auto section = text.find("\"kernels_ns_per_op\"");
  if (section == std::string::npos) return kernels;
  auto pos = text.find('{', section);
  const auto end = text.find('}', pos);
  if (pos == std::string::npos || end == std::string::npos) return kernels;
  while (true) {
    const auto name_start = text.find('"', pos + 1);
    if (name_start == std::string::npos || name_start > end) break;
    const auto name_end = text.find('"', name_start + 1);
    const auto colon = text.find(':', name_end);
    if (name_end == std::string::npos || colon == std::string::npos ||
        colon > end)
      break;
    kernels.emplace_back(
        text.substr(name_start + 1, name_end - name_start - 1),
        std::strtod(text.c_str() + colon + 1, nullptr));
    pos = text.find(',', colon);
    if (pos == std::string::npos || pos > end) break;
  }
  return kernels;
}

/// Per-kernel delta report against a baseline file. Returns false when any
/// kernel regressed by more than 15%; getting faster (or kernels appearing
/// or disappearing — backend availability differs across hosts) never
/// fails.
bool compare_with_baseline(
    const std::vector<std::pair<std::string, double>>& kernels,
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline '%s'\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto baseline = parse_baseline_kernels(buffer.str());
  if (baseline.empty()) {
    std::fprintf(stderr, "no kernels_ns_per_op in baseline '%s'\n",
                 path.c_str());
    return false;
  }
  constexpr double kTolerance = 0.15;
  bool ok = true;
  std::size_t unbaselined = 0;
  std::fprintf(stderr, "compare vs %s (tolerance +%.0f%%):\n", path.c_str(),
               kTolerance * 100.0);
  for (const auto& [name, ns] : kernels) {
    double base = 0.0;
    for (const auto& [base_name, base_ns] : baseline)
      if (base_name == name) base = base_ns;
    if (base <= 0.0) {
      // Warn, don't fail: a kernel with no baseline entry has nothing to
      // regress against, but the gap should be visible so the baseline
      // gets regenerated rather than silently drifting out of date.
      std::fprintf(stderr,
                   "  %-28s %12.1f ns/op  WARNING: not in baseline\n",
                   name.c_str(), ns);
      ++unbaselined;
      continue;
    }
    const double delta = (ns - base) / base * 100.0;
    const bool slow = delta > kTolerance * 100.0;
    std::fprintf(stderr, "  %-28s %12.1f ns/op  %+7.1f%%%s\n", name.c_str(),
                 ns, delta, slow ? "  REGRESSION" : "");
    if (slow) ok = false;
  }
  if (unbaselined > 0)
    std::fprintf(stderr,
                 "warning: %zu kernel%s missing from '%s' — regenerate the "
                 "baseline with `meecc_bench perf --out %s` to cover %s\n",
                 unbaselined, unbaselined == 1 ? "" : "s", path.c_str(),
                 path.c_str(), unbaselined == 1 ? "it" : "them");
  for (const auto& [name, base_ns] : baseline) {
    bool present = false;
    for (const auto& [current_name, ns] : kernels)
      if (current_name == name) present = true;
    if (!present)
      std::fprintf(stderr, "  %-28s (baseline %.1f ns/op, not run here)\n",
                   name.c_str(), base_ns);
  }
  std::fprintf(stderr, "compare: %s\n", ok ? "ok" : "FAIL");
  return ok;
}

void write_json(std::ostream& os,
                const std::vector<std::pair<std::string, double>>& kernels,
                const std::vector<std::pair<std::string, double>>& speedups,
                const QuickstartResult& quickstart,
                const SweepBenchResult* sweep, bool checked,
                bool check_passed) {
  os << "{\n  \"schema\": \"meecc.bench.hotpath.v1\",\n  \"kernels_ns_per_op\": {";
  bool first = true;
  for (const auto& [name, ns] : kernels) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << ns;
    first = false;
  }
  os << "\n  },\n  \"speedup\": {";
  first = true;
  for (const auto& [name, ratio] : speedups) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << ratio;
    first = false;
  }
  os << "\n  },\n  \"quickstart\": {\n"
     << "    \"walks\": " << quickstart.walks << ",\n"
     << "    \"wall_seconds\": " << quickstart.wall_seconds << ",\n"
     << "    \"walks_per_sec\": " << quickstart.walks_per_sec << ",\n"
     << "    \"bits_per_sec\": " << quickstart.bits_per_sec << "\n  }";
  if (sweep != nullptr)
    os << ",\n  \"sweep\": {\n"
       << "    \"experiment\": \"mitigations\",\n"
       << "    \"trials\": " << sweep->trials << ",\n"
       << "    \"shared_setups\": " << sweep->shared_setups << ",\n"
       << "    \"fresh_seconds\": " << sweep->fresh_seconds << ",\n"
       << "    \"snapshot_seconds\": " << sweep->snapshot_seconds << ",\n"
       << "    \"speedup\": " << sweep->speedup << ",\n"
       << "    \"identical_results\": "
       << (sweep->identical_results ? "true" : "false") << "\n  }";
  if (checked)
    os << ",\n  \"check\": {\n    \"ttable_speedup_min\": 2.0,\n"
       << "    \"passed\": " << (check_passed ? "true" : "false") << "\n  }";
  os << "\n}\n";
}

}  // namespace

int run_perf_suite(const PerfOptions& options) {
  std::vector<std::pair<std::string, double>> kernels;
  const auto record = [&](const std::string& name, double ns) {
    kernels.emplace_back(name, ns);
    std::fprintf(stderr, "  %-28s %12.1f ns/op\n", name.c_str(), ns);
  };

  // --- AES block, one entry per backend this CPU can run ------------------
  double reference_ns = 0.0, ttable_ns = 0.0;
  std::vector<std::pair<std::string, double>> speedups;
  for (const std::string& name : crypto::aes_backend_names()) {
    if (name == crypto::kAutoBackend || !crypto::aes_backend_available(name))
      continue;
    const auto aes = crypto::make_aes_backend(name, bench_key());
    const double ns = ns_per_op([&](std::uint64_t iters) {
      crypto::Block block{};
      for (std::uint64_t i = 0; i < iters; ++i) block = aes->encrypt(block);
      keep(block);
    });
    record("aes_block." + name, ns);
    if (name == "reference") reference_ns = ns;
    if (name == "ttable") ttable_ns = ns;
    if (name != "reference" && reference_ns > 0.0)
      speedups.emplace_back("aes_block." + name + "_vs_reference",
                            reference_ns / ns);
  }

  // --- multi-block AES: pipelined encrypt_blocks, ns per block ------------
  // x8 is the depth the batched MEE walk and the keystream path feed the
  // backend; on AES-NI the rounds pipeline across the independent blocks,
  // so ns/block should land well under the single-block figure.
  if (crypto::aes_backend_available("aesni")) {
    const auto aes = crypto::make_aes_backend("aesni", bench_key());
    record("aes_block.aesni_x8", ns_per_op([&](std::uint64_t iters) {
             crypto::Block blocks[8]{};
             for (std::uint64_t i = 0; i < iters; i += 8)
               aes->encrypt_blocks(blocks, blocks, 8);
             keep(blocks[7]);
           }));
  }

  // --- line encrypt: keystream cache cold (fresh nonce) vs hot ------------
  {
    const crypto::LineCipher cipher(bench_key());
    record("line_encrypt.cold", ns_per_op([&](std::uint64_t iters) {
             crypto::LineData line{};
             for (std::uint64_t i = 0; i < iters; ++i)
               line = cipher.encrypt(line, 0x1000, i + 1);
             keep(line);
           }));
    record("line_encrypt.hot", ns_per_op([&](std::uint64_t iters) {
             crypto::LineData line{};
             for (std::uint64_t i = 0; i < iters; ++i)
               line = cipher.encrypt(line, 0x1000, 1);
             keep(line);
           }));
  }

  // --- cache probe: one SIMD find_slot over a full set's tag row ----------
  {
    const auto geometry = cache::mee_cache_geometry();
    cache::SetAssocCache cache(geometry, cache::ReplacementKind::kTreePlru,
                               Rng(7));
    // Fill one set so every probe scans a full row; alternate a resident
    // and a non-resident tag so hit and miss paths both stay exercised.
    std::vector<PhysAddr> resident;
    for (std::uint32_t w = 0; w < geometry.ways; ++w) {
      const PhysAddr a = geometry.line_address(w + 1, 0);
      cache.fill(a);
      resident.push_back(a);
    }
    const PhysAddr absent = geometry.line_address(geometry.ways + 1, 0);
    std::fprintf(stderr, "  (tag probe: %s)\n", cache::detail::tag_probe_name());
    record("set.find_slot", ns_per_op([&](std::uint64_t iters) {
             std::uint64_t acc = 0;
             for (std::uint64_t i = 0; i < iters; ++i) {
               const PhysAddr probe =
                   (i & 1) ? absent : resident[(i >> 1) % resident.size()];
               acc += cache.contains(probe);
             }
             keep(acc);
           }));
  }

  // --- multilinear MAC tag: pad cache cold vs hot -------------------------
  {
    const crypto::MultilinearMac mac(bench_key());
    record("mac_tag.cold", ns_per_op([&](std::uint64_t iters) {
             const crypto::LineData line{};
             std::uint64_t acc = 0;
             for (std::uint64_t i = 0; i < iters; ++i)
               acc ^= mac.tag(0x40, i + 1, line);
             keep(acc);
           }));
    record("mac_tag.hot", ns_per_op([&](std::uint64_t iters) {
             const crypto::LineData line{};
             std::uint64_t acc = 0;
             for (std::uint64_t i = 0; i < iters; ++i)
               acc ^= mac.tag(0x40, 1, line);
             keep(acc);
           }));
  }

  // --- MEE tree walk: cold (full walk to root) vs versions hit ------------
  // Cold runs the serial per-node verify loop (the reference path);
  // `mee_walk.batched` is the same workload with the batched walk, so the
  // pair is a direct A/B of the multi-block MAC pipeline.
  {
    const mem::AddressMap map(
        mem::AddressMapConfig{.general_size = 1 << 20, .epc_size = 4 << 20});
    mem::PhysicalMemory memory;
    mee::MeeConfig serial_config;
    serial_config.batched_walks = false;
    mee::MeeEngine engine(map, memory, serial_config, Rng(1));
    const PhysAddr addr = map.protected_data().base;
    record("mee_walk.cold", ns_per_op(
                                [&](std::uint64_t iters) {
                                  for (std::uint64_t i = 0; i < iters; ++i) {
                                    engine.mutable_cache().flush_all();
                                    keep(engine.read_line(CoreId{0}, addr));
                                  }
                                },
                                /*min_seconds=*/0.05, /*start_iters=*/16));
    engine.read_line(CoreId{0}, addr);  // warm
    record("mee_walk.hot", ns_per_op([&](std::uint64_t iters) {
             for (std::uint64_t i = 0; i < iters; ++i)
               keep(engine.read_line(CoreId{0}, addr));
           }));

    mem::PhysicalMemory batched_memory;
    mee::MeeEngine batched(map, batched_memory, mee::MeeConfig{}, Rng(1));
    record("mee_walk.batched",
           ns_per_op(
               [&](std::uint64_t iters) {
                 for (std::uint64_t i = 0; i < iters; ++i) {
                   batched.mutable_cache().flush_all();
                   keep(batched.read_line(CoreId{0}, addr));
                 }
               },
               /*min_seconds=*/0.05, /*start_iters=*/16));
  }

  // --- scheduler: per-event dispatch and spawn/complete churn -------------
  record("scheduler.dispatch", ns_per_op([](std::uint64_t iters) {
           sim::Scheduler scheduler;
           scheduler.spawn(ticker(scheduler, iters));
           scheduler.run_to_completion();
         }));
  record("scheduler.churn", ns_per_op([](std::uint64_t iters) {
           sim::Scheduler scheduler;
           // Ambient arena: spawn-time frames recycle through the
           // scheduler's size-class freelists instead of the global heap.
           sim::FrameArena::Scope scope(&scheduler.arena());
           for (std::uint64_t i = 0; i < iters; ++i)
             scheduler.spawn(one_shot(scheduler));
           scheduler.run_to_completion();
         }));
  // Many agents sharing every timestamp: each cycle is one epoch of 64
  // same-time events drained from a flat bucket, the shape the epoch
  // scheduler exists for (dispatch above is its worst case — one event per
  // distinct timestamp).
  record("scheduler.epoch_drain", ns_per_op([](std::uint64_t iters) {
           sim::Scheduler scheduler;
           sim::FrameArena::Scope scope(&scheduler.arena());
           constexpr std::uint64_t kAgents = 64;
           const std::uint64_t rounds = iters / kAgents + 1;
           for (std::uint64_t a = 0; a < kAgents; ++a)
             scheduler.spawn(ticker(scheduler, rounds));
           scheduler.run_to_completion();
         }));

  // --- end to end ---------------------------------------------------------
  std::fprintf(stderr, "  quickstart end-to-end...\n");
  const QuickstartResult quickstart = run_quickstart();
  std::fprintf(stderr, "  %-28s %12.0f walks/sec (%llu walks in %.2fs)\n",
               "quickstart.e2e", quickstart.walks_per_sec,
               static_cast<unsigned long long>(quickstart.walks),
               quickstart.wall_seconds);

  // --- sweep: fresh vs snapshot/fork setup reuse --------------------------
  SweepBenchResult sweep;
  if (options.run_sweep) {
    std::fprintf(stderr, "  sweep fresh-vs-snapshot...\n");
    sweep = run_sweep_bench();
    std::fprintf(stderr,
                 "  %-28s fresh %.2fs, snapshot %.2fs (%.1fx, %zu setups for "
                 "%zu trials), results %s\n",
                 "sweep.mitigations", sweep.fresh_seconds,
                 sweep.snapshot_seconds, sweep.speedup, sweep.shared_setups,
                 sweep.trials,
                 sweep.identical_results ? "identical" : "DIFFERENT");
  }

  bool check_passed = true;
  if (options.check) {
    const double speedup =
        ttable_ns > 0.0 && reference_ns > 0.0 ? reference_ns / ttable_ns : 0.0;
    check_passed = speedup >= 2.0;
    std::fprintf(stderr, "check: ttable %.1fx reference (needs >= 2.0x): %s\n",
                 speedup, check_passed ? "ok" : "FAIL");
    if (options.run_sweep && !sweep.identical_results) {
      std::fprintf(stderr,
                   "check: snapshot-reuse results differ from fresh: FAIL\n");
      check_passed = false;
    }
  }
  if (!options.compare_path.empty() &&
      !compare_with_baseline(kernels, options.compare_path))
    check_passed = false;

  std::ostringstream json;
  write_json(json, kernels, speedups, quickstart,
             options.run_sweep ? &sweep : nullptr, options.check,
             check_passed);
  if (options.out_path == "-") {
    std::cout << json.str();
  } else {
    std::ofstream out(options.out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   options.out_path.c_str());
      return 1;
    }
    out << json.str();
    std::fprintf(stderr, "wrote %s\n", options.out_path.c_str());
  }
  return check_passed ? 0 : 1;
}

}  // namespace meecc::bench
