#include "perf_suite.h"

#include "alloc_count.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <functional>
#include <iostream>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "cache/geometry.h"
#include "cache/set_assoc_cache.h"
#include "cache/tag_probe.h"
#include "channel/covert_channel.h"
#include "channel/testbed.h"
#include "common/proc_rss.h"
#include "common/rng.h"
#include "crypto/aes_backend.h"
#include "crypto/line_cipher.h"
#include "crypto/multilinear_mac.h"
#include "mee/engine.h"
#include "mem/address_map.h"
#include "mem/physical_memory.h"
#include "runtime/registry.h"
#include "runtime/runner.h"
#include "runtime/sink.h"
#include "runtime/sweep.h"
#include "sim/des.h"

namespace meecc::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// Compiler barrier so timed results are not dead-code-eliminated.
template <typename T>
inline void keep(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Times `run(iters)` (which must perform `iters` operations), growing
/// `iters` until the wall time passes `min_seconds`, then re-times that
/// final size several times and returns the best repetition's ns per
/// operation. Repetitions are timed with process CPU time, not wall time:
/// on a small shared host (single-vCPU CI runners especially) steal and
/// preemption inflate wall clocks by tens of percent in bursts longer
/// than any repetition, which trips the --compare gate on code that
/// didn't change; CPU time only counts cycles this process ran. The
/// minimum over repetitions then filters what CPU time cannot (migration
/// cost, cold caches, frequency dips — these only ever add time).
double ns_per_op(const std::function<void(std::uint64_t)>& run,
                 double min_seconds = 0.05, std::uint64_t start_iters = 64) {
  constexpr int kRepetitions = 7;
  const auto cpu_seconds = [](const std::function<void()>& f) {
    timespec c0{}, c1{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c0);
    f();
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c1);
    return static_cast<double>(c1.tv_sec - c0.tv_sec) +
           1e-9 * static_cast<double>(c1.tv_nsec - c0.tv_nsec);
  };
  std::uint64_t iters = start_iters;
  double sec = 0;
  for (;;) {
    sec = cpu_seconds([&] { run(iters); });
    if (sec >= min_seconds) break;
    iters = sec <= 1e-9
                ? iters * 32
                : static_cast<std::uint64_t>(static_cast<double>(iters) *
                                             min_seconds * 1.4 / sec) +
                      1;
  }
  double best = sec;
  for (int rep = 1; rep < kRepetitions; ++rep)
    best = std::min(best, cpu_seconds([&] { run(iters); }));
  return best * 1e9 / static_cast<double>(iters);
}

sim::Process ticker(sim::Scheduler& scheduler, std::uint64_t events) {
  for (std::uint64_t i = 0; i < events; ++i)
    co_await sim::WakeAt{scheduler, scheduler.now() + 1};
}

sim::Process one_shot(sim::Scheduler& scheduler) {
  co_await sim::WakeAt{scheduler, scheduler.now() + 1};
}

crypto::Key128 bench_key() {
  return crypto::Key128{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
}

struct QuickstartResult {
  std::uint64_t walks = 0;
  double wall_seconds = 0.0;
  double walks_per_sec = 0.0;
  double bits_per_sec = 0.0;
};

/// End-to-end: the quickstart covert-channel scenario (eviction-set build +
/// transmission), using the default "auto" backend and pad cache — the
/// configuration experiments actually run under.
QuickstartResult run_quickstart() {
  channel::TestBed bed(channel::default_testbed_config(1));
  const auto payload = channel::alternating_bits(16);
  const auto start = Clock::now();
  const auto result =
      channel::run_covert_channel(bed, channel::ChannelConfig{}, payload);
  QuickstartResult out;
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  const auto stats = bed.system().mee().stats();
  out.walks = stats.reads + stats.writes;
  out.walks_per_sec = static_cast<double>(out.walks) / out.wall_seconds;
  out.bits_per_sec =
      static_cast<double>(result.received.size()) / out.wall_seconds;
  keep(result.monitor_found);
  return out;
}

/// The fresh-vs-snapshot sweep benchmark: a setup-heavy mitigations sweep
/// (8 payload-bits points x 4 seeds; only the measure phase varies per
/// point, so snapshot reuse shares one Algorithm-1 setup per seed).
struct SweepBenchResult {
  std::size_t trials = 0;
  std::size_t shared_setups = 0;  ///< distinct warm states under reuse
  double fresh_seconds = 0.0;
  double snapshot_seconds = 0.0;
  double speedup = 0.0;
  /// Byte equality of the two runs' JSONL record streams — snapshot reuse
  /// must not change any result.
  bool identical_results = false;
};

SweepBenchResult run_sweep_bench() {
  const runtime::Experiment& experiment = runtime::get_experiment("mitigations");
  runtime::SweepSpec spec;
  spec.sets = {{"mee.cache.indexing", "modulo"}, {"setup_attempts", "1"}};
  spec.axes = {{"bits", {"16", "24", "32", "40", "48", "56", "64", "72"}}};
  spec.seeds = 4;
  const auto trials = runtime::expand_sweep(experiment, spec);

  // jobs=1: wall-clock contrast between the modes, undiluted by pool
  // scheduling noise. Results are jobs-independent either way.
  runtime::RunnerConfig config;
  config.jobs = 1;
  const auto timed = [&](bool reuse, std::vector<runtime::TrialRecord>* out,
                         runtime::SetupStats* stats) {
    config.reuse_setup = reuse;
    const auto start = Clock::now();
    *out = runtime::run_trials(experiment, trials, config, stats);
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  SweepBenchResult result;
  result.trials = trials.size();
  std::vector<runtime::TrialRecord> fresh_records, snapshot_records;
  runtime::SetupStats fresh_stats, snapshot_stats;
  result.fresh_seconds = timed(false, &fresh_records, &fresh_stats);
  result.snapshot_seconds = timed(true, &snapshot_records, &snapshot_stats);
  result.shared_setups = snapshot_stats.builds;
  result.speedup = result.snapshot_seconds > 0.0
                       ? result.fresh_seconds / result.snapshot_seconds
                       : 0.0;
  std::ostringstream fresh_jsonl, snapshot_jsonl;
  runtime::write_jsonl(fresh_jsonl, fresh_records);
  runtime::write_jsonl(snapshot_jsonl, snapshot_records);
  result.identical_results = fresh_jsonl.str() == snapshot_jsonl.str();
  return result;
}

/// The campaign macro-benchmark: the trial-throughput engine, measured at
/// the margin. One campaign = a mitigations payload grid over shared
/// Algorithm-1 setups; the engine's cost is what one MORE trial on a warm
/// campaign costs (the fork/run/emit cycle), so the benchmark runs a base
/// grid and an extended grid over identical setups and differences them —
/// Algorithm-1 builds and first-use pool forks cancel exactly. Both modes
/// reuse setups; the A/B is config.recycle_systems: fresh System forks per
/// trial versus restoring snapshots in place into pooled TestBeds. Wall
/// time is min-based best-of-5 (contention only ever adds time);
/// allocation counts come from the binary's interposed operator new
/// (bench/alloc_count.cc) and are deterministic.
struct CampaignBenchResult {
  std::size_t trials = 0;          ///< extended-grid size (the marginal
                                   ///< window is trials - base_trials)
  std::size_t base_trials = 0;
  std::size_t shared_setups = 0;   ///< distinct warm states (Algorithm 1 runs)
  double recycled_ns_per_trial = 0.0;  ///< marginal, best-of-5
  double fresh_ns_per_trial = 0.0;
  double recycled_trials_per_sec = 0.0;
  double fresh_trials_per_sec = 0.0;
  double speedup = 0.0;            ///< fresh / recycled marginal cost
  double recycled_allocs_per_trial = 0.0;  ///< marginal, deterministic
  double fresh_allocs_per_trial = 0.0;
  double peak_rss_mb = 0.0;        ///< process VmHWM after both modes ran
  /// Byte equality of the two modes' extended-grid JSONL record streams —
  /// recycling must not change any result.
  bool identical_results = false;
};

/// The campaign/scaling benchmark grid: payload bits are measure-phase
/// locals, so every grid point shares the one warm setup — the shape that
/// exposes per-trial cost, not setup cost.
///
/// The measure payload is deliberately light (4-7 payload bits, 8 KiB /
/// 100-sample legit workload instead of the 192-bit / 256 KiB / 3000
/// defaults): at the default sizes a trial spends ~1.6 ms inside
/// measure_legit_workload plus ~1 ms transferring bits — channel-
/// simulation physics that is byte-identical in every mode and would
/// drown the engine being benchmarked. The heavy-payload path is covered
/// by the sweep section; these sections isolate trial turnaround.
std::vector<runtime::TrialSpec> mitigations_grid(std::size_t points) {
  const runtime::Experiment& experiment =
      runtime::get_experiment("mitigations");
  runtime::SweepSpec spec;
  spec.sets = {{"mee.cache.indexing", "modulo"},
               {"setup_attempts", "1"},
               {"legit_bytes", "8192"},
               {"legit_samples", "100"}};
  std::vector<std::string> bits;
  for (std::size_t i = 0; i < points; ++i)
    bits.push_back(std::to_string(4 + i));
  spec.axes = {{"bits", bits}};
  spec.seeds = 1;
  return runtime::expand_sweep(experiment, spec);
}

/// Tiles `base` to `copies` total repetitions. A throughput benchmark
/// needs identical-cost trials, not distinct specs, and the base grid
/// stays a strict prefix of the tiled grid — same setups, same first-use
/// forks, so base-vs-full differencing cancels them exactly.
std::vector<runtime::TrialSpec> tile_grid(
    const std::vector<runtime::TrialSpec>& base, int copies) {
  std::vector<runtime::TrialSpec> full = base;
  for (int copy = 1; copy < copies; ++copy)
    full.insert(full.end(), base.begin(), base.end());
  return full;
}

CampaignBenchResult run_campaign_bench() {
  const runtime::Experiment& experiment =
      runtime::get_experiment("mitigations");
  // A 256-trial marginal window over the tiled 4-point base grid: a
  // recycled trial is down to ~0.1-0.3 ms, so the window must be wide
  // enough that run-to-run noise in the (cancelling) ~70 ms Algorithm-1
  // setup cost cannot swamp the signal.
  const auto base_trials = mitigations_grid(4);
  const auto full_trials = tile_grid(base_trials, 65);

  // jobs=1 for an undiluted wall-clock contrast (results are
  // jobs-independent either way; the recycled pool is per-worker).
  runtime::RunnerConfig config;
  config.jobs = 1;
  config.reuse_setup = true;

  constexpr int kRepetitions = 5;
  struct ModeCost {
    double ns_per_trial = 0.0;
    double allocs_per_trial = 0.0;
  };
  const std::size_t window = full_trials.size() - base_trials.size();
  const auto timed = [&](bool recycle, std::vector<runtime::TrialRecord>* out,
                         runtime::SetupStats* stats) {
    config.recycle_systems = recycle;
    const auto one = [&](const std::vector<runtime::TrialSpec>& trials,
                         double* seconds, double* allocs) {
      double best = 0.0;
      std::uint64_t alloc_delta = 0;
      for (int rep = 0; rep < kRepetitions; ++rep) {
        *stats = {};
        const std::uint64_t allocs_before = allocation_count();
        // Process CPU time, not wall time: the campaign runs jobs=1 in an
        // otherwise idle process, so CPU time IS the work done, and unlike
        // wall time it is immune to preemption on small shared CI hosts —
        // a single-vCPU runner with background load inflates wall-clock
        // marginals by 2-3x while CPU time stays put.
        timespec c0, c1;
        clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c0);
        *out = runtime::run_trials(experiment, trials, config, stats);
        clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c1);
        const double sec = static_cast<double>(c1.tv_sec - c0.tv_sec) +
                           1e-9 * static_cast<double>(c1.tv_nsec - c0.tv_nsec);
        if (rep == 0 || sec < best) best = sec;
        // Deterministic workload: any repetition's count is THE count.
        alloc_delta = allocation_count() - allocs_before;
      }
      *seconds = best;
      *allocs = static_cast<double>(alloc_delta);
    };
    double base_seconds = 0.0, base_allocs = 0.0;
    double full_seconds = 0.0, full_allocs = 0.0;
    one(base_trials, &base_seconds, &base_allocs);
    one(full_trials, &full_seconds, &full_allocs);
    ModeCost cost;
    cost.ns_per_trial = (full_seconds - base_seconds) * 1e9 /
                        static_cast<double>(window);
    cost.allocs_per_trial =
        (full_allocs - base_allocs) / static_cast<double>(window);
    return cost;
  };

  CampaignBenchResult result;
  result.trials = full_trials.size();
  result.base_trials = base_trials.size();
  std::vector<runtime::TrialRecord> recycled_records, fresh_records;
  runtime::SetupStats recycled_stats, fresh_stats;
  const ModeCost recycled = timed(true, &recycled_records, &recycled_stats);
  const ModeCost fresh = timed(false, &fresh_records, &fresh_stats);
  result.shared_setups = recycled_stats.builds;
  result.recycled_ns_per_trial = recycled.ns_per_trial;
  result.fresh_ns_per_trial = fresh.ns_per_trial;
  result.recycled_allocs_per_trial = recycled.allocs_per_trial;
  result.fresh_allocs_per_trial = fresh.allocs_per_trial;
  const auto per_sec = [](double ns) { return ns > 0.0 ? 1e9 / ns : 0.0; };
  result.recycled_trials_per_sec = per_sec(recycled.ns_per_trial);
  result.fresh_trials_per_sec = per_sec(fresh.ns_per_trial);
  result.speedup = recycled.ns_per_trial > 0.0
                       ? fresh.ns_per_trial / recycled.ns_per_trial
                       : 0.0;
  result.peak_rss_mb = peak_rss_mb();
  std::ostringstream recycled_jsonl, fresh_jsonl;
  runtime::write_jsonl(recycled_jsonl, recycled_records);
  runtime::write_jsonl(fresh_jsonl, fresh_records);
  result.identical_results = recycled_jsonl.str() == fresh_jsonl.str();
  return result;
}

/// The strong-scaling section: streaming-mode campaign throughput at
/// several --jobs values, measured at the margin like the campaign
/// benchmark (base grid vs tiled grid, setup costs cancel). Wall clock,
/// not CPU time — a scaling curve IS elapsed time across threads — so
/// throughput and efficiency are report-only on shared hosts (the PR 7/9
/// clock lesson); the deterministic jobs=1 streaming allocations/trial
/// figure is the gateable output and joins the tracked kernels.
struct ScalingPoint {
  unsigned jobs = 0;
  double trials_per_sec = 0.0;  ///< marginal streaming throughput
  double efficiency = 0.0;      ///< trials_per_sec / (jobs * jobs=1 rate)
};

struct ScalingBenchResult {
  std::size_t trials = 0;
  std::size_t base_trials = 0;
  std::size_t shared_setups = 0;
  double streaming_allocs_per_trial = 0.0;  ///< jobs=1 marginal, deterministic
  std::vector<ScalingPoint> points;
};

ScalingBenchResult run_scaling_bench() {
  const runtime::Experiment& experiment =
      runtime::get_experiment("mitigations");
  const auto base_trials = mitigations_grid(4);
  const auto full_trials = tile_grid(base_trials, 65);
  const std::size_t window = full_trials.size() - base_trials.size();

  // Commit sink that swallows lines: the section measures the runner's
  // encode/queue/commit pipeline, not the disk.
  struct DiscardStream final : runtime::ResultStream {
    void commit(std::size_t, const std::string*, std::size_t) override {}
  };
  DiscardStream discard;

  runtime::RunnerConfig config;
  config.reuse_setup = true;
  config.recycle_systems = true;
  config.keep_records = false;
  config.stream = &discard;

  ScalingBenchResult result;
  result.trials = full_trials.size();
  result.base_trials = base_trials.size();

  // Allocations/trial of the streaming path, at jobs=1 where the count is
  // deterministic (the parallel count depends on thread interleaving; the
  // inline pipeline runs the same encode/commit code minus the queue).
  {
    config.jobs = 1;
    runtime::SetupStats stats;
    const auto allocs = [&](const std::vector<runtime::TrialSpec>& trials) {
      const std::uint64_t before = allocation_count();
      runtime::run_trials(experiment, trials, config, &stats);
      return allocation_count() - before;
    };
    const std::uint64_t base_allocs = allocs(base_trials);
    const std::uint64_t full_allocs = allocs(full_trials);
    result.shared_setups = stats.builds;
    result.streaming_allocs_per_trial =
        static_cast<double>(full_allocs - base_allocs) /
        static_cast<double>(window);
  }

  std::vector<unsigned> job_counts = {1, 2, 4};
  if (const unsigned hw = std::thread::hardware_concurrency(); hw > 0)
    job_counts.push_back(hw);
  std::sort(job_counts.begin(), job_counts.end());
  job_counts.erase(std::unique(job_counts.begin(), job_counts.end()),
                   job_counts.end());

  // Best-of-3 per grid: the minimum filters scheduler/steal noise, which
  // only ever adds wall time.
  constexpr int kRepetitions = 3;
  const auto wall_best = [&](const std::vector<runtime::TrialSpec>& trials) {
    double best = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto start = Clock::now();
      runtime::run_trials(experiment, trials, config);
      const double sec =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (rep == 0 || sec < best) best = sec;
    }
    return best;
  };

  double jobs1_rate = 0.0;
  for (const unsigned jobs : job_counts) {
    config.jobs = jobs;
    const double base_sec = wall_best(base_trials);
    const double full_sec = wall_best(full_trials);
    const double marginal = full_sec - base_sec;
    ScalingPoint point;
    point.jobs = jobs;
    point.trials_per_sec =
        marginal > 0.0 ? static_cast<double>(window) / marginal : 0.0;
    if (jobs == 1) jobs1_rate = point.trials_per_sec;
    point.efficiency =
        jobs1_rate > 0.0
            ? point.trials_per_sec / (static_cast<double>(jobs) * jobs1_rate)
            : 0.0;
    result.points.push_back(point);
  }
  return result;
}

/// Pulls the name -> ns pairs out of a baseline report's
/// "kernels_ns_per_op" object. Minimal scan, matched to write_json's
/// output shape.
std::vector<std::pair<std::string, double>> parse_baseline_kernels(
    const std::string& text) {
  std::vector<std::pair<std::string, double>> kernels;
  const auto section = text.find("\"kernels_ns_per_op\"");
  if (section == std::string::npos) return kernels;
  auto pos = text.find('{', section);
  const auto end = text.find('}', pos);
  if (pos == std::string::npos || end == std::string::npos) return kernels;
  while (true) {
    const auto name_start = text.find('"', pos + 1);
    if (name_start == std::string::npos || name_start > end) break;
    const auto name_end = text.find('"', name_start + 1);
    const auto colon = text.find(':', name_end);
    if (name_end == std::string::npos || colon == std::string::npos ||
        colon > end)
      break;
    kernels.emplace_back(
        text.substr(name_start + 1, name_end - name_start - 1),
        std::strtod(text.c_str() + colon + 1, nullptr));
    pos = text.find(',', colon);
    if (pos == std::string::npos || pos > end) break;
  }
  return kernels;
}

/// Per-kernel delta report against a baseline file. Returns false when any
/// kernel regressed by more than 15%; getting faster (or kernels appearing
/// or disappearing — backend availability differs across hosts) never
/// fails.
bool compare_with_baseline(
    const std::vector<std::pair<std::string, double>>& kernels,
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline '%s'\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto baseline = parse_baseline_kernels(buffer.str());
  if (baseline.empty()) {
    std::fprintf(stderr, "no kernels_ns_per_op in baseline '%s'\n",
                 path.c_str());
    return false;
  }
  constexpr double kTolerance = 0.15;
  bool ok = true;
  std::size_t unbaselined = 0;
  std::size_t compared = 0, regressed = 0;
  std::fprintf(stderr, "compare vs %s (tolerance +%.0f%%):\n", path.c_str(),
               kTolerance * 100.0);
  for (const auto& [name, ns] : kernels) {
    double base = 0.0;
    for (const auto& [base_name, base_ns] : baseline)
      if (base_name == name) base = base_ns;
    if (base <= 0.0) {
      // Warn, don't fail: a kernel with no baseline entry has nothing to
      // regress against, but the gap should be visible so the baseline
      // gets regenerated rather than silently drifting out of date.
      std::fprintf(stderr,
                   "  %-28s %12.1f ns/op  WARNING: not in baseline\n",
                   name.c_str(), ns);
      ++unbaselined;
      continue;
    }
    const double delta = (ns - base) / base * 100.0;
    const bool slow = delta > kTolerance * 100.0;
    std::fprintf(stderr, "  %-28s %12.1f ns/op  %+7.1f%%%s\n", name.c_str(),
                 ns, delta, slow ? "  REGRESSION" : "");
    ++compared;
    if (slow) {
      ok = false;
      ++regressed;
    }
  }
  // One kernel regressing points at a code change; half the suite
  // regressing at once points at the host (burstable VMs throttle for
  // minutes after sustained load, and CPU-time clocks can't hide the
  // frequency dip). Still a FAIL — a global slowdown could be real — but
  // say so, so CI triage starts with a rerun instead of a bisect.
  if (regressed * 2 >= compared && regressed > 1)
    std::fprintf(stderr,
                 "note: %zu of %zu kernels regressed together — likely a "
                 "throttled/contended host rather than a code regression; "
                 "rerun on a quiet machine before bisecting\n",
                 regressed, compared);
  if (unbaselined > 0)
    std::fprintf(stderr,
                 "warning: %zu kernel%s missing from '%s' — regenerate the "
                 "baseline with `meecc_bench perf --out %s` to cover %s\n",
                 unbaselined, unbaselined == 1 ? "" : "s", path.c_str(),
                 path.c_str(), unbaselined == 1 ? "it" : "them");
  std::size_t baseline_only = 0;
  for (const auto& [name, base_ns] : baseline) {
    bool present = false;
    for (const auto& [current_name, ns] : kernels)
      if (current_name == name) present = true;
    if (!present) {
      std::fprintf(stderr, "  %-28s (baseline %.1f ns/op, not run here)\n",
                   name.c_str(), base_ns);
      ++baseline_only;
    }
  }
  // The one line worth scrolling to in a CI log: how much of the suite the
  // comparison actually covered, so skipped or missing kernels (baseline
  // drift after adding a section) are visible at a glance.
  std::fprintf(stderr,
               "compare summary: %zu compared, %zu regressed, %zu missing "
               "from baseline, %zu in baseline but not run — %s\n",
               compared, regressed, unbaselined, baseline_only,
               ok ? "ok" : "FAIL");
  return ok;
}

void write_json(std::ostream& os,
                const std::vector<std::pair<std::string, double>>& kernels,
                const std::vector<std::pair<std::string, double>>& speedups,
                const QuickstartResult& quickstart,
                const SweepBenchResult* sweep,
                const CampaignBenchResult* campaign,
                const ScalingBenchResult* scaling, bool checked,
                bool check_passed) {
  os << "{\n  \"schema\": \"meecc.bench.hotpath.v1\",\n  \"kernels_ns_per_op\": {";
  bool first = true;
  for (const auto& [name, ns] : kernels) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << ns;
    first = false;
  }
  os << "\n  },\n  \"speedup\": {";
  first = true;
  for (const auto& [name, ratio] : speedups) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << ratio;
    first = false;
  }
  os << "\n  },\n  \"quickstart\": {\n"
     << "    \"walks\": " << quickstart.walks << ",\n"
     << "    \"wall_seconds\": " << quickstart.wall_seconds << ",\n"
     << "    \"walks_per_sec\": " << quickstart.walks_per_sec << ",\n"
     << "    \"bits_per_sec\": " << quickstart.bits_per_sec << "\n  }";
  if (sweep != nullptr)
    os << ",\n  \"sweep\": {\n"
       << "    \"experiment\": \"mitigations\",\n"
       << "    \"trials\": " << sweep->trials << ",\n"
       << "    \"shared_setups\": " << sweep->shared_setups << ",\n"
       << "    \"fresh_seconds\": " << sweep->fresh_seconds << ",\n"
       << "    \"snapshot_seconds\": " << sweep->snapshot_seconds << ",\n"
       << "    \"speedup\": " << sweep->speedup << ",\n"
       << "    \"identical_results\": "
       << (sweep->identical_results ? "true" : "false") << "\n  }";
  if (campaign != nullptr)
    os << ",\n  \"campaign\": {\n"
       << "    \"experiment\": \"mitigations\",\n"
       << "    \"trials\": " << campaign->trials << ",\n"
       << "    \"base_trials\": " << campaign->base_trials << ",\n"
       << "    \"shared_setups\": " << campaign->shared_setups << ",\n"
       << "    \"recycled_ns_per_trial\": " << campaign->recycled_ns_per_trial
       << ",\n"
       << "    \"fresh_ns_per_trial\": " << campaign->fresh_ns_per_trial
       << ",\n"
       << "    \"recycled_trials_per_sec\": "
       << campaign->recycled_trials_per_sec << ",\n"
       << "    \"fresh_trials_per_sec\": " << campaign->fresh_trials_per_sec
       << ",\n"
       << "    \"speedup\": " << campaign->speedup << ",\n"
       << "    \"recycled_allocs_per_trial\": "
       << campaign->recycled_allocs_per_trial << ",\n"
       << "    \"fresh_allocs_per_trial\": "
       << campaign->fresh_allocs_per_trial << ",\n"
       << "    \"peak_rss_mb\": " << campaign->peak_rss_mb << ",\n"
       << "    \"identical_results\": "
       << (campaign->identical_results ? "true" : "false") << "\n  }";
  if (scaling != nullptr) {
    os << ",\n  \"scaling\": {\n"
       << "    \"experiment\": \"mitigations\",\n"
       << "    \"trials\": " << scaling->trials << ",\n"
       << "    \"base_trials\": " << scaling->base_trials << ",\n"
       << "    \"shared_setups\": " << scaling->shared_setups << ",\n"
       << "    \"streaming_allocs_per_trial\": "
       << scaling->streaming_allocs_per_trial << ",\n"
       << "    \"points\": [";
    bool first_point = true;
    for (const ScalingPoint& point : scaling->points) {
      os << (first_point ? "\n" : ",\n")
         << "      {\"jobs\": " << point.jobs
         << ", \"trials_per_sec\": " << point.trials_per_sec
         << ", \"efficiency\": " << point.efficiency << "}";
      first_point = false;
    }
    os << "\n    ]\n  }";
  }
  if (checked)
    os << ",\n  \"check\": {\n    \"ttable_speedup_min\": 2.0,\n"
       << "    \"passed\": " << (check_passed ? "true" : "false") << "\n  }";
  os << "\n}\n";
}

}  // namespace

int run_perf_suite(const PerfOptions& options) {
  std::vector<std::pair<std::string, double>> kernels;
  // Min-merge across passes (below): the same kernel re-recorded keeps its
  // best time, so one clean window anywhere in the run settles its value.
  const auto record = [&](const std::string& name, double ns) {
    std::fprintf(stderr, "  %-28s %12.1f ns/op\n", name.c_str(), ns);
    for (auto& [existing, best] : kernels)
      if (existing == name) {
        best = std::min(best, ns);
        return;
      }
    kernels.emplace_back(name, ns);
  };

  // The whole kernel list runs several times and each kernel keeps its
  // per-pass minimum. ns_per_op's min-of-reps filters noise shorter than
  // one repetition, but a host-noise burst (CPU steal, a frequency dip on
  // a shared runner) outlasting a kernel's back-to-back repetitions
  // inflates all of them at once; observed bursts are shorter than a full
  // pass over the list, so spacing a kernel's chances a pass apart lets
  // min-merge recover the true floor.
  constexpr int kKernelPasses = 3;
  const auto collect_kernels = [&] {
  // --- AES block, one entry per backend this CPU can run ------------------
  for (const std::string& name : crypto::aes_backend_names()) {
    if (name == crypto::kAutoBackend || !crypto::aes_backend_available(name))
      continue;
    const auto aes = crypto::make_aes_backend(name, bench_key());
    record("aes_block." + name, ns_per_op([&](std::uint64_t iters) {
             crypto::Block block{};
             for (std::uint64_t i = 0; i < iters; ++i)
               block = aes->encrypt(block);
             keep(block);
           }));
  }

  // --- multi-block AES: pipelined encrypt_blocks, ns per block ------------
  // x8 is the depth the batched MEE walk and the keystream path feed the
  // backend; on AES-NI the rounds pipeline across the independent blocks,
  // so ns/block should land well under the single-block figure.
  if (crypto::aes_backend_available("aesni")) {
    const auto aes = crypto::make_aes_backend("aesni", bench_key());
    record("aes_block.aesni_x8", ns_per_op([&](std::uint64_t iters) {
             crypto::Block blocks[8]{};
             for (std::uint64_t i = 0; i < iters; i += 8)
               aes->encrypt_blocks(blocks, blocks, 8);
             keep(blocks[7]);
           }));
  }

  // --- line encrypt: keystream cache cold (fresh nonce) vs hot ------------
  {
    const crypto::LineCipher cipher(bench_key());
    record("line_encrypt.cold", ns_per_op([&](std::uint64_t iters) {
             crypto::LineData line{};
             for (std::uint64_t i = 0; i < iters; ++i)
               line = cipher.encrypt(line, 0x1000, i + 1);
             keep(line);
           }));
    record("line_encrypt.hot", ns_per_op([&](std::uint64_t iters) {
             crypto::LineData line{};
             for (std::uint64_t i = 0; i < iters; ++i)
               line = cipher.encrypt(line, 0x1000, 1);
             keep(line);
           }));
  }

  // --- cache probe: one SIMD find_slot over a full set's tag row ----------
  {
    const auto geometry = cache::mee_cache_geometry();
    cache::SetAssocCache cache(geometry, cache::ReplacementKind::kTreePlru,
                               Rng(7));
    // Fill one set so every probe scans a full row; alternate a resident
    // and a non-resident tag so hit and miss paths both stay exercised.
    std::vector<PhysAddr> resident;
    for (std::uint32_t w = 0; w < geometry.ways; ++w) {
      const PhysAddr a = geometry.line_address(w + 1, 0);
      cache.fill(a);
      resident.push_back(a);
    }
    const PhysAddr absent = geometry.line_address(geometry.ways + 1, 0);
    std::fprintf(stderr, "  (tag probe: %s)\n", cache::detail::tag_probe_name());
    record("set.find_slot", ns_per_op([&](std::uint64_t iters) {
             std::uint64_t acc = 0;
             for (std::uint64_t i = 0; i < iters; ++i) {
               const PhysAddr probe =
                   (i & 1) ? absent : resident[(i >> 1) % resident.size()];
               acc += cache.contains(probe);
             }
             keep(acc);
           }));
  }

  // --- multilinear MAC tag: pad cache cold vs hot -------------------------
  {
    const crypto::MultilinearMac mac(bench_key());
    record("mac_tag.cold", ns_per_op([&](std::uint64_t iters) {
             const crypto::LineData line{};
             std::uint64_t acc = 0;
             for (std::uint64_t i = 0; i < iters; ++i)
               acc ^= mac.tag(0x40, i + 1, line);
             keep(acc);
           }));
    record("mac_tag.hot", ns_per_op([&](std::uint64_t iters) {
             const crypto::LineData line{};
             std::uint64_t acc = 0;
             for (std::uint64_t i = 0; i < iters; ++i)
               acc ^= mac.tag(0x40, 1, line);
             keep(acc);
           }));
  }

  // --- batched MAC verify: the walk's per-level checks, isolated ----------
  // One iteration = the four per-level MAC checks of a cold walk, with the
  // pad cache off so every check derives its pad. Serial pays one AES-block
  // latency per level; batched derives all four pads through one
  // encrypt_blocks() call. This pair isolates the batched-encrypt fraction
  // that the full mee_walk kernels dilute with walk bookkeeping, so the
  // gate catches the pipeline regressing even when mee_walk noise hides it.
  {
    crypto::MultilinearMac batch_mac(bench_key());
    batch_mac.set_pad_cache_enabled(false);
    constexpr std::size_t kLevels = 4;
    crypto::LineData lines[kLevels];
    crypto::MacRequest requests[kLevels];
    for (std::size_t i = 0; i < kLevels; ++i) {
      lines[i].fill(static_cast<std::uint8_t>(i + 1));
      const std::uint64_t addr = 0x1000 + 0x40 * i;
      requests[i] = {addr, i + 1, lines[i],
                     batch_mac.tag(addr, i + 1, lines[i])};
    }
    record("mac_verify.serial", ns_per_op([&](std::uint64_t iters) {
             std::uint64_t acc = 0;
             for (std::uint64_t i = 0; i < iters; ++i)
               for (const crypto::MacRequest& r : requests)
                 acc += batch_mac.verify(r.address, r.version, r.data,
                                         r.expected_tag);
             keep(acc);
           }));
    record("mac_verify.batched", ns_per_op([&](std::uint64_t iters) {
             std::uint64_t acc = 0;
             for (std::uint64_t i = 0; i < iters; ++i)
               acc += batch_mac.verify_batch(requests, kLevels);
             keep(acc);
           }));
  }

  // --- MEE tree walk: cold (full walk to root) vs versions hit ------------
  // The cold/batched pair is a direct A/B of the multi-block MAC pipeline.
  // Two kernel conditions make the A/B honest (see DESIGN.md §6): the chunk
  // is written once so every tree level carries a real MAC (a never-written
  // chunk is all genesis nodes — zero MAC requests, nothing to batch), and
  // the pad cache is off so each iteration's verify actually derives pads
  // (the pad cache survives flush_all(), so with it on every walk after the
  // first is all pad hits and both paths measure only walk bookkeeping).
  {
    const mem::AddressMap map(
        mem::AddressMapConfig{.general_size = 1 << 20, .epc_size = 4 << 20});
    mem::PhysicalMemory memory;
    mee::MeeConfig serial_config;
    serial_config.batched_walks = false;
    serial_config.pad_cache = false;
    mee::MeeEngine engine(map, memory, serial_config, Rng(1));
    const PhysAddr addr = map.protected_data().base;
    engine.write_line(CoreId{0}, addr, mem::Line{});  // materialize the MACs
    record("mee_walk.cold", ns_per_op(
                                [&](std::uint64_t iters) {
                                  for (std::uint64_t i = 0; i < iters; ++i) {
                                    engine.mutable_cache().flush_all();
                                    keep(engine.read_line(CoreId{0}, addr));
                                  }
                                },
                                /*min_seconds=*/0.05, /*start_iters=*/16));
    engine.read_line(CoreId{0}, addr);  // warm
    record("mee_walk.hot", ns_per_op([&](std::uint64_t iters) {
             for (std::uint64_t i = 0; i < iters; ++i)
               keep(engine.read_line(CoreId{0}, addr));
           }));

    mem::PhysicalMemory batched_memory;
    mee::MeeConfig batched_config;
    batched_config.pad_cache = false;
    mee::MeeEngine batched(map, batched_memory, batched_config, Rng(1));
    batched.write_line(CoreId{0}, addr, mem::Line{});
    record("mee_walk.batched",
           ns_per_op(
               [&](std::uint64_t iters) {
                 for (std::uint64_t i = 0; i < iters; ++i) {
                   batched.mutable_cache().flush_all();
                   keep(batched.read_line(CoreId{0}, addr));
                 }
               },
               /*min_seconds=*/0.05, /*start_iters=*/16));
  }

  // --- scheduler: per-event dispatch and spawn/complete churn -------------
  record("scheduler.dispatch", ns_per_op([](std::uint64_t iters) {
           sim::Scheduler scheduler;
           scheduler.spawn(ticker(scheduler, iters));
           scheduler.run_to_completion();
         }));
  record("scheduler.churn", ns_per_op([](std::uint64_t iters) {
           sim::Scheduler scheduler;
           // Ambient arena: spawn-time frames recycle through the
           // scheduler's size-class freelists instead of the global heap.
           sim::FrameArena::Scope scope(&scheduler.arena());
           for (std::uint64_t i = 0; i < iters; ++i)
             scheduler.spawn(one_shot(scheduler));
           scheduler.run_to_completion();
         }));
  // Many agents sharing every timestamp: each cycle is one epoch of 64
  // same-time events drained from a flat bucket, the shape the epoch
  // scheduler exists for (dispatch above is its worst case — one event per
  // distinct timestamp).
  record("scheduler.epoch_drain", ns_per_op([](std::uint64_t iters) {
           sim::Scheduler scheduler;
           sim::FrameArena::Scope scope(&scheduler.arena());
           constexpr std::uint64_t kAgents = 64;
           const std::uint64_t rounds = iters / kAgents + 1;
           for (std::uint64_t a = 0; a < kAgents; ++a)
             scheduler.spawn(ticker(scheduler, rounds));
           scheduler.run_to_completion();
         }));
  };  // collect_kernels

  for (int pass = 0; pass < kKernelPasses; ++pass) {
    if (pass > 0) std::fprintf(stderr, "  --- pass %d (min-merged) ---\n",
                               pass + 1);
    collect_kernels();
  }

  // Speedup ratios and the --check threshold read the merged minima, so
  // both operands come from the same (cleanest-window) estimator.
  double reference_ns = 0.0, ttable_ns = 0.0;
  for (const auto& [name, ns] : kernels) {
    if (name == "aes_block.reference") reference_ns = ns;
    if (name == "aes_block.ttable") ttable_ns = ns;
  }
  std::vector<std::pair<std::string, double>> speedups;
  for (const auto& [name, ns] : kernels)
    if (name.rfind("aes_block.", 0) == 0 && name != "aes_block.reference" &&
        name != "aes_block.aesni_x8" && reference_ns > 0.0 && ns > 0.0)
      speedups.emplace_back(name + "_vs_reference", reference_ns / ns);

  // --- end to end ---------------------------------------------------------
  std::fprintf(stderr, "  quickstart end-to-end...\n");
  const QuickstartResult quickstart = run_quickstart();
  std::fprintf(stderr, "  %-28s %12.0f walks/sec (%llu walks in %.2fs)\n",
               "quickstart.e2e", quickstart.walks_per_sec,
               static_cast<unsigned long long>(quickstart.walks),
               quickstart.wall_seconds);

  // --- sweep: fresh vs snapshot/fork setup reuse --------------------------
  SweepBenchResult sweep;
  if (options.run_sweep) {
    std::fprintf(stderr, "  sweep fresh-vs-snapshot...\n");
    sweep = run_sweep_bench();
    std::fprintf(stderr,
                 "  %-28s fresh %.2fs, snapshot %.2fs (%.1fx, %zu setups for "
                 "%zu trials), results %s\n",
                 "sweep.mitigations", sweep.fresh_seconds,
                 sweep.snapshot_seconds, sweep.speedup, sweep.shared_setups,
                 sweep.trials,
                 sweep.identical_results ? "identical" : "DIFFERENT");
  }

  // --- campaign: trial throughput, recycled vs fresh System forks ---------
  CampaignBenchResult campaign;
  if (options.run_campaign) {
    std::fprintf(stderr, "  campaign recycled-vs-fresh...\n");
    campaign = run_campaign_bench();
    std::fprintf(stderr,
                 "  %-28s %.1f trials/sec recycled, %.1f fresh (%.1fx "
                 "marginal, %zu-trial window, %zu setups), results %s\n",
                 "campaign.mitigations", campaign.recycled_trials_per_sec,
                 campaign.fresh_trials_per_sec, campaign.speedup,
                 campaign.trials - campaign.base_trials,
                 campaign.shared_setups,
                 campaign.identical_results ? "identical" : "DIFFERENT");
    std::fprintf(stderr,
                 "  %-28s %.0f allocs/trial recycled, %.0f fresh; peak RSS "
                 "%.1f MiB\n",
                 "", campaign.recycled_allocs_per_trial,
                 campaign.fresh_allocs_per_trial, campaign.peak_rss_mb);
    // The --compare gate tracks the campaign through its allocation counts,
    // not its wall time: the deterministic workload makes allocs/trial
    // byte-stable across runs and hosts (wall time on a small shared CI
    // box is not), and a de-pooled buffer or leaky bed pool moves the
    // count by far more than the 15% tolerance. The comparator is a
    // smaller-is-better scalar check, so the entries ride alongside the
    // ns kernels; throughput itself is tracked in the "campaign" section.
    kernels.emplace_back("campaign.allocs_per_trial",
                         campaign.recycled_allocs_per_trial);
    kernels.emplace_back("campaign.allocs_per_trial_fresh",
                         campaign.fresh_allocs_per_trial);
  }

  // --- scaling: streaming-mode throughput vs --jobs -----------------------
  ScalingBenchResult scaling;
  if (options.run_scaling) {
    std::fprintf(stderr, "  campaign strong scaling (streaming mode)...\n");
    scaling = run_scaling_bench();
    bool first_point = true;
    for (const ScalingPoint& point : scaling.points) {
      std::fprintf(stderr,
                   "  %-28s jobs=%-3u %10.1f trials/sec  efficiency %4.2f\n",
                   first_point ? "scaling.mitigations" : "", point.jobs,
                   point.trials_per_sec, point.efficiency);
      first_point = false;
    }
    std::fprintf(stderr,
                 "  %-28s %.0f allocs/trial streaming (jobs=1 marginal)\n",
                 "", scaling.streaming_allocs_per_trial);
    kernels.emplace_back("campaign.allocs_per_trial_streaming",
                         scaling.streaming_allocs_per_trial);
  }

  bool check_passed = true;
  if (options.check) {
    const double speedup =
        ttable_ns > 0.0 && reference_ns > 0.0 ? reference_ns / ttable_ns : 0.0;
    check_passed = speedup >= 2.0;
    std::fprintf(stderr, "check: ttable %.1fx reference (needs >= 2.0x): %s\n",
                 speedup, check_passed ? "ok" : "FAIL");
    if (options.run_sweep && !sweep.identical_results) {
      std::fprintf(stderr,
                   "check: snapshot-reuse results differ from fresh: FAIL\n");
      check_passed = false;
    }
    if (options.run_campaign) {
      if (!campaign.identical_results) {
        std::fprintf(stderr,
                     "check: recycled-fork results differ from fresh: FAIL\n");
        check_passed = false;
      }
      // The zero-allocation result path plus pooled beds must keep the
      // recycled trial cycle at a small fraction of fresh-fork allocation
      // traffic; a leaky pool or a de-pooled buffer shows up here.
      const bool allocs_ok = campaign.recycled_allocs_per_trial <=
                             0.10 * campaign.fresh_allocs_per_trial;
      std::fprintf(stderr,
                   "check: campaign allocs/trial recycled %.0f vs fresh %.0f "
                   "(needs <= 10%%): %s\n",
                   campaign.recycled_allocs_per_trial,
                   campaign.fresh_allocs_per_trial, allocs_ok ? "ok" : "FAIL");
      if (!allocs_ok) check_passed = false;
    }
    if (options.run_scaling && options.run_campaign) {
      // Streaming swaps record retention for worker-side encoding; the
      // exchange-through-the-queue contract must keep the per-trial
      // allocation count in the recycled in-memory path's regime. Both
      // figures are deterministic jobs=1 marginals, so the bound is tight:
      // 10% headroom plus a small absolute slack for the pipeline's
      // fixed-size warmup objects amortized over the window.
      const bool streaming_ok =
          scaling.streaming_allocs_per_trial <=
          1.10 * campaign.recycled_allocs_per_trial + 8.0;
      std::fprintf(stderr,
                   "check: streaming allocs/trial %.1f vs recycled %.1f "
                   "(needs <= 1.1x + 8): %s\n",
                   scaling.streaming_allocs_per_trial,
                   campaign.recycled_allocs_per_trial,
                   streaming_ok ? "ok" : "FAIL");
      if (!streaming_ok) check_passed = false;
    }
  }
  if (!options.compare_path.empty() &&
      !compare_with_baseline(kernels, options.compare_path))
    check_passed = false;

  std::ostringstream json;
  write_json(json, kernels, speedups, quickstart,
             options.run_sweep ? &sweep : nullptr,
             options.run_campaign ? &campaign : nullptr,
             options.run_scaling ? &scaling : nullptr, options.check,
             check_passed);
  if (options.out_path == "-") {
    std::cout << json.str();
  } else {
    std::ofstream out(options.out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   options.out_path.c_str());
      return 1;
    }
    out << json.str();
    std::fprintf(stderr, "wrote %s\n", options.out_path.c_str());
  }
  return check_passed ? 0 : 1;
}

}  // namespace meecc::bench
