// Beyond-paper ablation: how much does the attack depend on the SGX
// driver's contiguous EPC allocation?
//
// The paper's Fig. 4 arithmetic (knee exactly at 64 → 64 KB) leans on
// 4 KB-stride candidates cycling deterministically through 8 alias groups —
// which contiguous enclave builds provide. This bench fragments the EPC and
// re-runs everything. Empirical answer: nothing that matters breaks. The
// capacity knee survives because a warm MEE cache is effectively always
// full, so saturation tracks insertion count rather than the alias-group
// geometry; Algorithm 1 and the channel are timing-driven from the start.
#include <cstdio>

#include "bench_util.h"
#include "channel/capacity_probe.h"
#include "common/check.h"
#include "channel/covert_channel.h"
#include "channel/testbed.h"
#include "common/table.h"

namespace {

meecc::channel::TestBedConfig bed_config(std::uint64_t seed,
                                         meecc::mem::EpcPlacement placement) {
  auto config = meecc::channel::default_testbed_config(seed);
  config.system.mee.functional_crypto = false;
  config.system.epc_placement = placement;
  return config;
}

}  // namespace

int main() {
  using namespace meecc;
  benchutil::banner("EPC placement sensitivity",
                    "beyond-paper ablation; paper section 4.1 assumption");

  Table table({"EPC placement", "Fig.4 p(evict) @64", "capacity knee",
               "Algorithm 1 ways", "channel error rate"});

  for (const auto placement :
       {mem::EpcPlacement::kContiguous, mem::EpcPlacement::kRandomized}) {
    const bool contiguous = placement == mem::EpcPlacement::kContiguous;
    channel::TestBed bed(bed_config(contiguous ? 600 : 601, placement));

    channel::CapacityProbeConfig cap_config;
    cap_config.trials = 60;
    const auto capacity = channel::run_capacity_probe(bed, cap_config);
    const double p64 = capacity.points.back().probability;

    double error_rate = 1.0;
    std::uint32_t ways = 0;
    const char* channel_note;
    try {
      const auto result = channel::run_covert_channel(
          bed, channel::ChannelConfig{}, channel::random_bits(192, 3));
      error_rate = result.error_rate;
      ways = result.eviction.associativity();
      channel_note = "works";
    } catch (const meecc::CheckFailure&) {
      channel_note = "setup failed";
    }

    char p64s[32], errs[32];
    std::snprintf(p64s, sizeof p64s, "%.2f", p64);
    std::snprintf(errs, sizeof errs, "%.3f (%s)", error_rate, channel_note);
    table.add(contiguous ? "contiguous (SGX driver)" : "randomized (fragmented)",
              p64s,
              capacity.knee ? std::to_string(capacity.knee) : "none",
              ways, errs);
  }

  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "reading: the attack does NOT depend on the SGX driver's contiguous\n"
      "EPC allocation. The Fig. 4 saturation persists (a warm MEE cache is\n"
      "always full, so every trial's insertions displace someone), and the\n"
      "eviction-set recovery plus the channel are timing-driven — a defender\n"
      "cannot break this attack by fragmenting enclave memory.\n");
  std::printf("\nCSV\n%s", table.to_csv().c_str());
  return 0;
}
