// §4 headline result: the MEE cache organization, recovered purely from
// timing. Paper: 64 KB, 8-way set-associative, 128 sets (64 B lines).
#include <cstdio>

#include "bench_util.h"
#include "channel/capacity_probe.h"
#include "channel/eviction_set.h"
#include "channel/testbed.h"
#include "common/table.h"

int main() {
  using namespace meecc;
  benchutil::banner("Reverse engineering the MEE cache organization",
                    "paper section 4 (capacity: 4.1, associativity: 4.2)");

  channel::TestBedConfig bed_config = channel::default_testbed_config(4242);
  bed_config.system.mee.functional_crypto = false;
  channel::TestBed bed(bed_config);

  channel::CapacityProbeConfig cap_config;
  cap_config.trials = 100;
  const auto capacity = channel::run_capacity_probe(bed, cap_config);

  channel::EvictionSetConfig ev_config;
  const auto eviction = channel::find_eviction_set(bed, ev_config);

  const std::uint64_t capacity_bytes = capacity.estimated_capacity_bytes;
  const std::uint32_t ways = eviction.associativity();
  const std::uint64_t sets = ways ? capacity_bytes / (ways * 64) : 0;

  Table table({"property", "recovered", "paper", "method"});
  table.add("line size", "64 B", "64 B", "known from [5]");
  table.add("capacity",
            std::to_string(capacity_bytes / 1024) + " KB", "64 KB",
            "Fig. 4 eviction-probability knee");
  table.add("associativity", ways, "8", "Algorithm 1 eviction set size");
  table.add("sets", sets, "128", "capacity / (ways x 64 B)");
  std::printf("%s\n", table.to_text().c_str());

  std::printf("Algorithm 1 internals: index set %zu addresses, "
              "test address %s, eviction set %zu addresses\n",
              eviction.index_set.size(),
              eviction.found_test_address ? "found" : "NOT FOUND",
              eviction.eviction_set.size());
  std::printf("\nCSV\n%s", table.to_csv().c_str());
  return 0;
}
