// The `meecc_bench perf` subcommand: a dependency-free (no google-benchmark)
// hot-path timing suite that emits BENCH_hotpath.json — the tracked perf
// baseline CI compares against. Kernels cover every layer the covert-channel
// experiments stress: raw AES blocks per backend, line encryption and MAC
// tagging with the keystream/pad cache cold and hot, MEE tree walks,
// scheduler dispatch, and the end-to-end quickstart scenario (walks/sec).
// A `sweep` section times a setup-heavy mitigations sweep fresh vs with
// snapshot/fork setup reuse and records the speedup plus a byte-level
// equality check of the two result sets.
#pragma once

#include <string>

namespace meecc::bench {

struct PerfOptions {
  std::string out_path = "BENCH_hotpath.json";  ///< "-" = stdout
  /// Enforce the tracked expectations (ttable at least 2x faster than
  /// reference AES; snapshot-reuse results identical to fresh) and make
  /// the exit code nonzero when they fail.
  bool check = false;
  /// Baseline BENCH_hotpath.json to diff against: prints per-kernel deltas
  /// and fails (nonzero exit) when any kernel is more than 15% slower than
  /// the baseline. Getting faster never fails. Empty = no comparison.
  std::string compare_path;
  /// Run the fresh-vs-snapshot sweep benchmark (the slowest section;
  /// --no-sweep skips it for quick kernel-only runs).
  bool run_sweep = true;
  /// Run the campaign macro-benchmark: trial throughput (recycled vs fresh
  /// System forks), allocations/trial, peak RSS over a mitigations payload
  /// grid. --no-campaign skips it. Under --check the recycled mode must
  /// produce byte-identical results and allocate <= 10% of fresh per trial.
  bool run_campaign = true;
  /// Run the strong-scaling section: streaming-mode campaign throughput and
  /// parallel efficiency at jobs in {1, 2, 4, hw}. Throughput/efficiency
  /// are report-only (wall clocks are not gateable on shared hosts — the
  /// PR 7/9 clock lesson); the deterministic streaming allocations/trial
  /// figure joins the tracked kernels and the --check gate. --no-scaling
  /// skips it.
  bool run_scaling = true;
};

/// Runs the suite. The caller must have registered the builtin experiments
/// (the sweep section runs the "mitigations" experiment). Returns a process
/// exit code.
int run_perf_suite(const PerfOptions& options);

}  // namespace meecc::bench
