// The `meecc_bench perf` subcommand: a dependency-free (no google-benchmark)
// hot-path timing suite that emits BENCH_hotpath.json — the tracked perf
// baseline CI compares against. Kernels cover every layer the covert-channel
// experiments stress: raw AES blocks per backend, line encryption and MAC
// tagging with the keystream/pad cache cold and hot, MEE tree walks,
// scheduler dispatch, and the end-to-end quickstart scenario (walks/sec).
#pragma once

#include <string>
#include <vector>

namespace meecc::bench {

/// Runs the suite. `out_path` receives the JSON report ("-" = stdout);
/// `check` additionally enforces the tracked expectations (ttable at least
/// 2x faster than reference AES) and makes the exit code nonzero when they
/// fail. Returns a process exit code.
int run_perf_suite(const std::string& out_path, bool check);

}  // namespace meecc::bench
