// Replaceable global allocation functions ([new.delete]) that count every
// heap allocation the meecc_bench process makes. The counter backs the
// campaign macro-benchmark's allocations/trial metric; it must see every
// path (arrays, nothrow, over-aligned), so all replaceable forms funnel
// through the two counted helpers below. Deallocation is pass-through —
// frees never allocate and are not part of the metric.
#include "alloc_count.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded != 0 ? rounded : alignment);
}

}  // namespace

namespace meecc::bench {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace meecc::bench

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(alignment)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(alignment)))
    return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
