// Shared helpers for the figure-regeneration binaries.
#pragma once

#include <cstdio>
#include <string>

namespace meecc::benchutil {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

}  // namespace meecc::benchutil
