// Context baseline: the classic LLC Prime+Probe covert channel the paper
// compares against (refs [7], [9]). Higher bit rate and near error-free —
// but it needs hugepage-grade physical knowledge, works outside enclaves,
// and is the channel existing defenses (and non-inclusive LLCs) target.
#include <cstdio>

#include "bench_util.h"
#include "channel/covert_channel.h"
#include "channel/llc_baseline.h"
#include "channel/testbed.h"
#include "common/table.h"

int main() {
  using namespace meecc;
  benchutil::banner("LLC Prime+Probe baseline vs the MEE channel",
                    "paper sections 1-2 context, refs [7][9]");

  const auto payload = channel::random_bits(512, 3);

  channel::TestBedConfig llc_bed_config = channel::default_testbed_config(90);
  llc_bed_config.system.mee.functional_crypto = false;
  channel::TestBed llc_bed(llc_bed_config);
  const auto llc =
      channel::run_llc_baseline(llc_bed, channel::LlcChannelConfig{}, payload);

  channel::TestBedConfig mee_bed_config = channel::default_testbed_config(91);
  mee_bed_config.system.mee.functional_crypto = false;
  channel::TestBed mee_bed(mee_bed_config);
  const auto mee =
      channel::run_covert_channel(mee_bed, channel::ChannelConfig{}, payload);

  Table table({"channel", "bit rate (KBps)", "error rate", "needs hugepages",
               "works in SGX", "defeated by non-inclusive LLC"});
  char llc_rate[32], llc_err[32], mee_rate[32], mee_err[32];
  std::snprintf(llc_rate, sizeof llc_rate, "%.1f", llc.kilobytes_per_second);
  std::snprintf(llc_err, sizeof llc_err, "%.3f", llc.error_rate);
  std::snprintf(mee_rate, sizeof mee_rate, "%.1f", mee.kilobytes_per_second);
  std::snprintf(mee_err, sizeof mee_err, "%.3f", mee.error_rate);
  table.add("LLC Prime+Probe [7,9]", llc_rate, llc_err, "yes", "no", "yes");
  table.add("MEE cache (this paper)", mee_rate, mee_err, "no", "yes", "no");
  std::printf("%s\n", table.to_text().c_str());

  std::printf("shape check: LLC channel is faster (paper: other attacks show\n"
              "higher bit rate) but the MEE channel works where LLC attacks\n"
              "are blocked — the paper's motivation.\n");
  return 0;
}
