// §5.5 ablation: way-partitioning the MEE cache by requesting core.
// The paper notes LLC defenses do not transfer directly because the
// integrity tree is shared. We quantify both sides: the partition does stop
// the direct eviction channel, but it halves effective associativity for
// every tenant (legit-workload cost) — and it cannot attribute shared tree
// nodes to tenants, the structural problem the paper points at.
#include <cstdio>

#include "bench_util.h"
#include "channel/covert_channel.h"
#include "channel/mitigation.h"
#include "channel/testbed.h"
#include "common/check.h"
#include "common/table.h"
#include "mee/levels.h"

int main() {
  using namespace meecc;
  benchutil::banner("Mitigation ablation: way-partitioned MEE cache",
                    "paper section 5.5");

  const auto payload = channel::alternating_bits(192);

  auto make_bed = [&](std::uint64_t seed, bool partitioned) {
    channel::TestBedConfig config = channel::default_testbed_config(seed);
    config.system.mee.functional_crypto = false;
    auto bed = std::make_unique<channel::TestBed>(config);
    if (partitioned)
      bed->system().mee().set_partition(channel::make_way_partition(8));
    return bed;
  };

  // -- security: does the channel still work? ------------------------------
  double baseline_error = 0.0, partitioned_error = 1.0;
  const char* partitioned_outcome = "blocked at setup";
  {
    auto bed = make_bed(100, false);
    baseline_error =
        channel::run_covert_channel(*bed, channel::ChannelConfig{}, payload)
            .error_rate;
  }
  try {
    auto bed = make_bed(101, true);
    partitioned_error =
        channel::run_covert_channel(*bed, channel::ChannelConfig{}, payload)
            .error_rate;
    partitioned_outcome = "transfer garbled";
  } catch (const CheckFailure&) {
    // Discovery/Algorithm 1 could not even establish the channel.
  }

  // -- cost: legit workload under partitioning -----------------------------
  auto baseline_bed = make_bed(102, false);
  const auto legit_base =
      channel::measure_legit_workload(*baseline_bed, 256 * 1024, 3000);
  auto part_bed = make_bed(102, true);
  const auto legit_part =
      channel::measure_legit_workload(*part_bed, 256 * 1024, 3000);

  Table table({"configuration", "channel error rate", "outcome",
               "legit versions-hit rate", "legit mean latency (cyc)"});
  char b_err[32], p_err[32], b_hit[32], p_hit[32], b_lat[32], p_lat[32];
  std::snprintf(b_err, sizeof b_err, "%.3f", baseline_error);
  if (partitioned_error > 0.999)
    std::snprintf(p_err, sizeof p_err, "n/a");
  else
    std::snprintf(p_err, sizeof p_err, "%.3f", partitioned_error);
  std::snprintf(b_hit, sizeof b_hit, "%.3f", legit_base.versions_hit_rate);
  std::snprintf(p_hit, sizeof p_hit, "%.3f", legit_part.versions_hit_rate);
  std::snprintf(b_lat, sizeof b_lat, "%.0f", legit_base.mean_protected_latency);
  std::snprintf(p_lat, sizeof p_lat, "%.0f", legit_part.mean_protected_latency);
  table.add("shared MEE cache (hardware)", b_err, "channel works", b_hit, b_lat);
  table.add("way-partitioned by core", p_err, partitioned_outcome, p_hit, p_lat);
  std::printf("%s\n", table.to_text().c_str());

  std::printf(
      "caveats the paper raises (section 5.5): per-USER partitioning cannot\n"
      "attribute shared integrity-tree nodes (upper levels cover many\n"
      "tenants' pages), per-core masks break under migration, and the\n"
      "halved associativity taxes every enclave all the time.\n");
  return 0;
}
