// Fig. 2 / §3 challenge 4: the three ways to measure time on an SGX machine,
// and what each costs. Paper: OCALL ≈ 8,000–15,000 cycles per reading;
// hyperthread shared clock ≈ 50 cycles; rdtsc faults in enclave mode.
#include <cstdio>

#include "bench_util.h"
#include "channel/testbed.h"
#include "channel/timing_study.h"
#include "common/table.h"

int main() {
  using namespace meecc;
  benchutil::banner("Timing methods inside SGX",
                    "Fig. 2 (a)-(c), paper section 3 challenge 4");

  channel::TestBedConfig bed_config = channel::default_testbed_config(2024);
  bed_config.system.mee.functional_crypto = false;
  channel::TestBed bed(bed_config);

  channel::TimingStudyConfig config;
  config.samples = 400;
  const auto result = channel::run_timing_study(bed, config);

  std::printf("rdtsc in enclave mode: %s (paper: SGX v1 faults it)\n\n",
              result.rdtsc_faults_in_enclave ? "FAULTS" : "allowed");

  Table table({"timer", "mode", "overhead mean (cyc)", "overhead min",
               "overhead max", "paper"});
  auto add = [&](const char* name, const char* mode,
                 const channel::TimerSeries& s, const char* paper) {
    table.add(name, mode, static_cast<long long>(s.overhead.mean()),
              static_cast<long long>(s.overhead.min()),
              static_cast<long long>(s.overhead.max()), paper);
  };
  add("rdtsc (native)", "non-enclave", result.native, "~0 (baseline)");
  add("OCALL rdtsc", "enclave", result.ocall, "8000-15000");
  add("hyperthread shared clock", "enclave", result.shared_clock, "~50");
  std::printf("%s\n", table.to_text().c_str());

  std::printf("conclusion: only the shared clock (c) resolves the ~300-cycle\n"
              "versions hit/miss gap from enclave mode, as the paper argues.\n");
  std::printf("\nCSV\n%s", table.to_csv().c_str());
  return 0;
}
