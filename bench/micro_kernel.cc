// google-benchmark microbenchmarks of the simulator's hot kernels — useful
// when tuning experiment runtimes (the figure benches simulate hundreds of
// thousands of MEE walks).
#include <benchmark/benchmark.h>

#include <string>

#include "cache/set_assoc_cache.h"
#include "channel/covert_channel.h"
#include "channel/testbed.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/aes_backend.h"
#include "crypto/line_cipher.h"
#include "crypto/mac.h"
#include "crypto/multilinear_mac.h"
#include "mee/engine.h"
#include "mem/address_map.h"
#include "mem/physical_memory.h"
#include "sim/des.h"

namespace {

using namespace meecc;

// Registered once per runnable backend from main() (the set depends on the
// host CPU): BM_AesEncryptBlock/reference, /ttable, /aesni.
void BM_AesEncryptBlock(benchmark::State& state, const std::string& backend) {
  const auto aes = crypto::make_aes_backend(backend, crypto::Key128{1, 2, 3, 4});
  crypto::Block block{};
  for (auto _ : state) {
    block = aes->encrypt(block);
    benchmark::DoNotOptimize(block);
  }
}

// Arg(0): fresh nonce each iteration (keystream cache misses).
// Arg(1): fixed nonce (keystream cache hits — the AES disappears).
void BM_LineEncrypt(benchmark::State& state) {
  const crypto::LineCipher cipher(crypto::Key128{5, 6, 7, 8});
  const bool hot = state.range(0) != 0;
  crypto::LineData line{};
  std::uint64_t version = 0;
  for (auto _ : state) {
    line = cipher.encrypt(line, 0x1000, hot ? 1 : ++version);
    benchmark::DoNotOptimize(line);
  }
}
BENCHMARK(BM_LineEncrypt)->Arg(0)->Arg(1);

void BM_MacTag(benchmark::State& state) {
  const crypto::MacFunction mac(crypto::Key128{9, 10, 11, 12});
  crypto::LineData line{};
  std::uint64_t version = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.tag(0x40, ++version, line));
  }
}
BENCHMARK(BM_MacTag);

// Same cold/hot split for the multilinear MAC's (address, version) pad.
void BM_MultilinearTag(benchmark::State& state) {
  const crypto::MultilinearMac mac(crypto::Key128{9, 10, 11, 12});
  const bool hot = state.range(0) != 0;
  crypto::LineData line{};
  std::uint64_t version = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.tag(0x40, hot ? 1 : ++version, line));
  }
}
BENCHMARK(BM_MultilinearTag)->Arg(0)->Arg(1);

void BM_CacheAccess(benchmark::State& state) {
  cache::SetAssocCache cache(cache::mee_cache_geometry(),
                             cache::ReplacementKind::kTreePlru, Rng(1));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(PhysAddr{rng.next_below(1 << 22) * 64}));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_MeeReadVersionsHit(benchmark::State& state) {
  const mem::AddressMap map(
      mem::AddressMapConfig{.general_size = 1 << 20, .epc_size = 4 << 20});
  mem::PhysicalMemory memory;
  mee::MeeConfig config;
  config.functional_crypto = state.range(0) != 0;
  mee::MeeEngine engine(map, memory, config, Rng(1));
  const PhysAddr addr = map.protected_data().base;
  engine.read_line(CoreId{0}, addr);  // warm the path
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.read_line(CoreId{0}, addr));
  }
}
BENCHMARK(BM_MeeReadVersionsHit)->Arg(0)->Arg(1);

void BM_MeeColdWalk(benchmark::State& state) {
  const mem::AddressMap map(
      mem::AddressMapConfig{.general_size = 1 << 20, .epc_size = 4 << 20});
  mem::PhysicalMemory memory;
  mee::MeeConfig config;
  config.functional_crypto = state.range(0) != 0;
  mee::MeeEngine engine(map, memory, config, Rng(1));
  const PhysAddr addr = map.protected_data().base;
  for (auto _ : state) {
    engine.mutable_cache().flush_all();
    benchmark::DoNotOptimize(engine.read_line(CoreId{0}, addr));
  }
}
BENCHMARK(BM_MeeColdWalk)->Arg(0)->Arg(1);

sim::Process bench_ticker(sim::Scheduler& scheduler, std::uint64_t events) {
  for (std::uint64_t i = 0; i < events; ++i)
    co_await sim::WakeAt{scheduler, scheduler.now() + 1};
}

sim::Process bench_one_shot(sim::Scheduler& scheduler) {
  co_await sim::WakeAt{scheduler, scheduler.now() + 1};
}

// Per-event dispatch cost of a single long-lived agent.
void BM_SchedulerDispatch(benchmark::State& state) {
  const std::uint64_t events = 4096;
  for (auto _ : state) {
    sim::Scheduler scheduler;
    scheduler.spawn(bench_ticker(scheduler, events));
    scheduler.run_to_completion();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SchedulerDispatch);

// Spawn-to-reap lifecycle cost: many short-lived agents. With the old
// owned_-scanning dispatch this was quadratic in the agent count.
void BM_SchedulerChurn(benchmark::State& state) {
  const auto agents = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler scheduler;
    for (std::uint64_t i = 0; i < agents; ++i)
      scheduler.spawn(bench_one_shot(scheduler));
    scheduler.run_to_completion();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(agents));
}
BENCHMARK(BM_SchedulerChurn)->Arg(256)->Arg(4096);

// End-to-end: the full quickstart covert-channel scenario.
void BM_QuickstartEndToEnd(benchmark::State& state) {
  std::uint64_t walks = 0;
  for (auto _ : state) {
    channel::TestBed bed(channel::default_testbed_config(1));
    const auto payload = channel::alternating_bits(8);
    const auto result =
        channel::run_covert_channel(bed, channel::ChannelConfig{}, payload);
    benchmark::DoNotOptimize(result.monitor_found);
    const auto stats = bed.system().mee().stats();
    walks += stats.reads + stats.writes;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(walks));
  state.SetLabel("items = MEE walks");
}
BENCHMARK(BM_QuickstartEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : crypto::aes_backend_names()) {
    if (name == crypto::kAutoBackend || !crypto::aes_backend_available(name))
      continue;
    benchmark::RegisterBenchmark(("BM_AesEncryptBlock/" + name).c_str(),
                                 BM_AesEncryptBlock, name);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
