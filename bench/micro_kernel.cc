// google-benchmark microbenchmarks of the simulator's hot kernels — useful
// when tuning experiment runtimes (the figure benches simulate hundreds of
// thousands of MEE walks).
#include <benchmark/benchmark.h>

#include "cache/set_assoc_cache.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/line_cipher.h"
#include "crypto/mac.h"
#include "mee/engine.h"
#include "mem/address_map.h"
#include "mem/physical_memory.h"

namespace {

using namespace meecc;

void BM_Aes128EncryptBlock(benchmark::State& state) {
  const crypto::Aes128 aes(crypto::Key128{1, 2, 3, 4});
  crypto::Block block{};
  for (auto _ : state) {
    block = aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_Aes128EncryptBlock);

void BM_LineEncrypt(benchmark::State& state) {
  const crypto::LineCipher cipher(crypto::Key128{5, 6, 7, 8});
  crypto::LineData line{};
  std::uint64_t version = 0;
  for (auto _ : state) {
    line = cipher.encrypt(line, 0x1000, ++version);
    benchmark::DoNotOptimize(line);
  }
}
BENCHMARK(BM_LineEncrypt);

void BM_MacTag(benchmark::State& state) {
  const crypto::MacFunction mac(crypto::Key128{9, 10, 11, 12});
  crypto::LineData line{};
  std::uint64_t version = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.tag(0x40, ++version, line));
  }
}
BENCHMARK(BM_MacTag);

void BM_CacheAccess(benchmark::State& state) {
  cache::SetAssocCache cache(cache::mee_cache_geometry(),
                             cache::ReplacementKind::kTreePlru, Rng(1));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(PhysAddr{rng.next_below(1 << 22) * 64}));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_MeeReadVersionsHit(benchmark::State& state) {
  const mem::AddressMap map(
      mem::AddressMapConfig{.general_size = 1 << 20, .epc_size = 4 << 20});
  mem::PhysicalMemory memory;
  mee::MeeConfig config;
  config.functional_crypto = state.range(0) != 0;
  mee::MeeEngine engine(map, memory, config, Rng(1));
  const PhysAddr addr = map.protected_data().base;
  engine.read_line(CoreId{0}, addr);  // warm the path
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.read_line(CoreId{0}, addr));
  }
}
BENCHMARK(BM_MeeReadVersionsHit)->Arg(0)->Arg(1);

void BM_MeeColdWalk(benchmark::State& state) {
  const mem::AddressMap map(
      mem::AddressMapConfig{.general_size = 1 << 20, .epc_size = 4 << 20});
  mem::PhysicalMemory memory;
  mee::MeeConfig config;
  config.functional_crypto = state.range(0) != 0;
  mee::MeeEngine engine(map, memory, config, Rng(1));
  const PhysAddr addr = map.protected_data().base;
  for (auto _ : state) {
    engine.mutable_cache().flush_all();
    benchmark::DoNotOptimize(engine.read_line(CoreId{0}, addr));
  }
}
BENCHMARK(BM_MeeColdWalk)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
