// meecc_bench: the single driver for every registered experiment.
//
//   meecc_bench list
//   meecc_bench describe <experiment>
//   meecc_bench params
//   meecc_bench run <experiment> [--set k=v]... [--sweep k=a,b,c]...
//                   [--seeds N] [--seed BASE] [--jobs N] [--json PATH]
//                   [--counters] [--trace PATH] [--trace-chrome PATH]
//                   [--trace-sample N] [--artifacts] [--quiet]
//
// `run` expands the declarative sweep into the cross-product of trials,
// executes them on a worker pool (one simulator per trial — results are
// bit-identical at any --jobs value), prints the summary table, and with
// --json writes one JSON line per trial ("-" for stdout). --counters prints
// the merged observability counters of the whole sweep; --trace streams
// every simulator trace event as JSONL (--trace-chrome: Chrome trace_event
// JSON for chrome://tracing / Perfetto). Traced parallel sweeps buffer each
// trial's events and write them in trial order — byte-identical at any
// --jobs value.
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <cinttypes>
#include <optional>

#include "cache/policy.h"
#include "cache/replacement.h"
#include "common/table.h"
#include "perf_suite.h"
#include "obs/trace.h"
#include "runtime/campaign.h"
#include "runtime/experiments.h"
#include "runtime/params.h"
#include "runtime/registry.h"
#include "runtime/runner.h"
#include "runtime/setup_store.h"
#include "runtime/sink.h"
#include "runtime/sweep.h"

namespace {

using namespace meecc;

int usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: meecc_bench <command> ...\n"
      "  list                      registered experiments\n"
      "  describe <experiment>     parameters, defaults, shared config keys\n"
      "  params                    every --set/--sweep config key + the\n"
      "                            registered cache policy names\n"
      "  run <experiment> [options]\n"
      "      --set key=value       pin a parameter (overrides default sweeps)\n"
      "      --sweep key=a,b,c     sweep a parameter axis (cross-product)\n"
      "      --seeds N             seeds per parameter combination (default 1)\n"
      "      --seed BASE           base seed (default 42; seed s = BASE+s)\n"
      "      --jobs N              worker threads (default 1; 0 = all cores)\n"
      "      --json PATH           JSONL results, one line per trial ('-' = "
      "stdout)\n"
      "      --counters            print the sweep's merged counter table\n"
      "      --trace PATH          trace events as JSONL (parallel trials are\n"
      "                            buffered and written in trial order)\n"
      "      --trace-chrome PATH   trace events as Chrome trace_event JSON\n"
      "      --trace-sample N      keep every Nth trace event (default 1)\n"
      "      --no-reuse-setup      rebuild warm setup state for every trial\n"
      "                            instead of snapshot/fork sharing\n"
      "      --no-recycle-systems  construct a fresh System per trial instead\n"
      "                            of rewinding a per-worker recycled one\n"
      "      --setup-store DIR     on-disk warm-setup cache shared across\n"
      "                            processes and shards\n"
      "      --shard i/N           run only shard i of N (contiguous trial\n"
      "                            range); writes shard JSONL + manifest\n"
      "                            into --dir instead of --json\n"
      "      --dir DIR             campaign directory (required with --shard)\n"
      "      --resume              continue a partial shard from its\n"
      "                            manifest watermark\n"
      "      --stop-after K        commit at most K trials this invocation,\n"
      "                            then exit (deterministic kill for tests)\n"
      "      --streaming           stream each trial's JSONL line as it\n"
      "                            commits and drop the record — peak memory\n"
      "                            stays flat at any trial count (requires\n"
      "                            --json; the default for --shard runs)\n"
      "      --no-streaming        keep every record in memory (enables the\n"
      "                            summary table for --shard runs)\n"
      "      --artifacts           print per-trial charts/tables even for "
      "sweeps\n"
      "      --quiet               no per-trial progress on stderr\n"
      "  merge --dir DIR [--json PATH]\n"
      "                            validate every shard of the campaign in\n"
      "                            DIR and emit the merged JSONL (default\n"
      "                            stdout) — byte-identical to the\n"
      "                            unsharded --json stream\n"
      "  perf [options]            host hot-path timing suite\n"
      "      --out PATH            JSON report (default BENCH_hotpath.json,\n"
      "                            '-' = stdout)\n"
      "      --check               fail unless ttable AES is >= 2x faster\n"
      "                            than the reference backend and snapshot\n"
      "                            reuse reproduces fresh results exactly\n"
      "      --compare PATH        diff kernels against a baseline report;\n"
      "                            fail if any is >15%% slower\n"
      "      --no-sweep            skip the fresh-vs-snapshot sweep section\n"
      "      --no-campaign         skip the campaign macro-benchmark\n"
      "                            (recycled-vs-fresh trial throughput)\n"
      "      --no-scaling          skip the strong-scaling section\n"
      "                            (streaming campaign throughput vs --jobs)\n");
  return out == stdout ? 0 : 2;
}

int cmd_perf(const std::vector<std::string>& args) {
  bench::PerfOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out") {
      if (i + 1 >= args.size())
        throw runtime::ParamError("--out needs an argument");
      options.out_path = args[++i];
    } else if (args[i] == "--check") {
      options.check = true;
    } else if (args[i] == "--compare") {
      if (i + 1 >= args.size())
        throw runtime::ParamError("--compare needs an argument");
      options.compare_path = args[++i];
    } else if (args[i] == "--no-sweep") {
      options.run_sweep = false;
    } else if (args[i] == "--no-campaign") {
      options.run_campaign = false;
    } else if (args[i] == "--no-scaling") {
      options.run_scaling = false;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", args[i].c_str());
      return usage(stderr);
    }
  }
  return bench::run_perf_suite(options);
}

int cmd_list() {
  Table table({"experiment", "reproduces", "default trials", "description"});
  for (const runtime::Experiment* e : runtime::all_experiments()) {
    const auto trials = runtime::expand_sweep(*e, runtime::SweepSpec{});
    table.add(e->name, e->paper_ref, trials.size(), e->description);
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

void print_policy_names(std::FILE* out) {
  Table policies({"policy slot", "registered names"});
  policies.add("mee.cache.indexing / llc.indexing",
               joined(cache::indexing_policy_names()));
  policies.add("mee.cache.replacement / llc.replacement",
               joined(cache::replacement_names()));
  policies.add("mee.cache.fill", joined(cache::fill_policy_names()));
  std::fprintf(out, "cache policy registries:\n%s",
               policies.to_text().c_str());
}

int cmd_params() {
  Table config({"config key", "meaning"});
  for (const auto& doc : runtime::config_key_docs()) config.add(doc.key, doc.doc);
  std::printf(
      "shared config keys — every one accepts --set key=value and\n"
      "--sweep key=a,b,c on any experiment:\n%s\n",
      config.to_text().c_str());
  print_policy_names(stdout);
  return 0;
}

int cmd_describe(const std::string& name) {
  const runtime::Experiment& e = runtime::get_experiment(name);
  std::printf("%s — %s\nreproduces: %s\n\n", e.name.c_str(),
              e.description.c_str(), e.paper_ref.c_str());
  if (!e.default_params.empty()) {
    Table params({"parameter", "default"});
    for (const auto& [key, value] : e.default_params) params.add(key, value);
    std::printf("experiment parameters:\n%s\n", params.to_text().c_str());
  }
  if (!e.default_sweeps.empty()) {
    Table sweeps({"default sweep axis", "values"});
    for (const auto& [key, values] : e.default_sweeps) sweeps.add(key, values);
    std::printf("%s\n", sweeps.to_text().c_str());
  }
  Table config({"shared config key", "meaning"});
  for (const auto& doc : runtime::config_key_docs())
    config.add(doc.key, doc.doc);
  std::printf("shared config keys (all experiments):\n%s\n",
              config.to_text().c_str());
  print_policy_names(stdout);
  return 0;
}

void print_setup_stats(const runtime::SetupStats& stats) {
  if (stats.builds + stats.memory_hits + stats.disk_hits == 0) return;
  std::fprintf(stderr,
               "setup reuse: %" PRIu64 " built, %" PRIu64 " memory hit%s, %" PRIu64
               " disk hit%s\n",
               stats.builds, stats.memory_hits,
               stats.memory_hits == 1 ? "" : "s", stats.disk_hits,
               stats.disk_hits == 1 ? "" : "s");
}

int cmd_merge(const std::vector<std::string>& args) {
  std::string dir, json_path = "-";
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size())
        throw runtime::ParamError(args[i] + " needs an argument");
      return args[++i];
    };
    if (args[i] == "--dir") {
      dir = value();
    } else if (args[i] == "--json") {
      json_path = value();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", args[i].c_str());
      return usage(stderr);
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "merge needs --dir DIR\n");
    return 2;
  }
  runtime::MergeResult merged;
  if (json_path == "-") {
    merged = runtime::merge_campaign(dir, std::cout);
    std::cout.flush();
  } else {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   json_path.c_str());
      return 1;
    }
    merged = runtime::merge_campaign(dir, out);
  }
  std::fprintf(stderr,
               "merged %u shard%s, %zu trial%s (campaign %016" PRIx64 ")\n",
               merged.shard_count, merged.shard_count == 1 ? "" : "s",
               merged.trials, merged.trials == 1 ? "" : "s", merged.hash);
  return 0;
}

int cmd_run(const std::string& name, const std::vector<std::string>& args) {
  const runtime::Experiment& experiment = runtime::get_experiment(name);

  runtime::SweepSpec sweep;
  unsigned jobs = 1;
  std::string json_path, trace_path, trace_chrome_path;
  std::string shard_text, campaign_dir, setup_store_dir;
  std::uint64_t trace_sample = 1, stop_after = 0;
  bool quiet = false, force_artifacts = false, show_counters = false;
  bool reuse_setup = true, recycle_systems = true, resume = false;
  bool streaming = false, streaming_set = false;
  const std::vector<std::string> rest =
      runtime::parse_sweep_args(args, &sweep);
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= rest.size())
        throw runtime::ParamError(arg + " needs an argument");
      return rest[++i];
    };
    if (arg == "--jobs") {
      jobs = static_cast<unsigned>(runtime::parse_u64("--jobs", value()));
    } else if (arg == "--json") {
      json_path = value();
    } else if (arg == "--counters") {
      show_counters = true;
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--trace-chrome") {
      trace_chrome_path = value();
    } else if (arg == "--trace-sample") {
      trace_sample = runtime::parse_u64("--trace-sample", value());
      if (trace_sample == 0) trace_sample = 1;
    } else if (arg == "--no-reuse-setup") {
      reuse_setup = false;
    } else if (arg == "--reuse-setup") {
      reuse_setup = true;
    } else if (arg == "--no-recycle-systems") {
      recycle_systems = false;
    } else if (arg == "--recycle-systems") {
      recycle_systems = true;
    } else if (arg == "--setup-store") {
      setup_store_dir = value();
    } else if (arg == "--shard") {
      shard_text = value();
    } else if (arg == "--dir") {
      campaign_dir = value();
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--stop-after") {
      stop_after = runtime::parse_u64("--stop-after", value());
    } else if (arg == "--streaming") {
      streaming = true;
      streaming_set = true;
    } else if (arg == "--no-streaming") {
      streaming = false;
      streaming_set = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--artifacts") {
      force_artifacts = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(stderr);
    }
  }

  if (!shard_text.empty()) {
    if (campaign_dir.empty()) {
      std::fprintf(stderr, "--shard needs --dir DIR\n");
      return 2;
    }
    if (!json_path.empty() || !trace_path.empty() ||
        !trace_chrome_path.empty()) {
      std::fprintf(stderr,
                   "--shard writes the campaign directory; --json and "
                   "--trace do not apply (use 'merge')\n");
      return 2;
    }
  } else if (resume || stop_after != 0 || !campaign_dir.empty()) {
    std::fprintf(stderr, "--dir/--resume/--stop-after require --shard i/N\n");
    return 2;
  }

  // Campaigns default to bounded memory (the shard JSONL is the output
  // either way); plain runs keep records unless asked, since the summary
  // table and --counters read them.
  if (!streaming_set) streaming = !shard_text.empty();
  if (streaming && shard_text.empty()) {
    if (json_path.empty()) {
      std::fprintf(stderr,
                   "--streaming emits results as JSONL only; it needs "
                   "--json PATH ('-' for stdout)\n");
      return 2;
    }
    if (show_counters || force_artifacts) {
      std::fprintf(stderr,
                   "--counters/--artifacts need in-memory records; drop "
                   "them or use --no-streaming\n");
      return 2;
    }
  }

  const std::vector<runtime::TrialSpec> trials =
      runtime::expand_sweep(experiment, sweep);
  const std::vector<std::string> columns =
      runtime::swept_keys(experiment, sweep);

  if (!quiet)
    std::fprintf(stderr, "%s: %zu trial%s, %u job%s\n",
                 experiment.name.c_str(), trials.size(),
                 trials.size() == 1 ? "" : "s", jobs == 0 ? 0 : jobs,
                 jobs == 1 ? "" : "s");
  // Trace plumbing: file stream → (JSONL or Chrome) sink → optional
  // sampling decimator. The runner buffers per-trial events and replays
  // them in trial order, so traced sweeps still parallelize.
  std::ofstream trace_out;
  std::unique_ptr<obs::TraceSink> trace_sink;
  std::unique_ptr<obs::SamplingSink> sampler;
  if (!trace_path.empty() && !trace_chrome_path.empty()) {
    std::fprintf(stderr, "--trace and --trace-chrome are exclusive\n");
    return 2;
  }
  if (!trace_path.empty() || !trace_chrome_path.empty()) {
    const std::string& path =
        trace_path.empty() ? trace_chrome_path : trace_path;
    trace_out.open(path);
    if (!trace_out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
      return 1;
    }
    if (trace_path.empty())
      trace_sink = std::make_unique<obs::ChromeTraceSink>(trace_out);
    else
      trace_sink = std::make_unique<obs::JsonlTraceSink>(trace_out);
  }

  std::size_t completed = 0, progress_total = trials.size();
  runtime::RunnerConfig runner;
  runner.jobs = jobs;
  runner.reuse_setup = reuse_setup;
  runner.recycle_systems = recycle_systems;
  std::optional<runtime::SetupStore> setup_store;
  if (!setup_store_dir.empty()) {
    setup_store.emplace(setup_store_dir,
                        runtime::setup_store_config_hash(experiment.name));
    runner.setup_store = &*setup_store;
  }
  if (trace_sink) {
    if (trace_sample > 1)
      sampler = std::make_unique<obs::SamplingSink>(*trace_sink, trace_sample);
    runner.trace_sink = sampler ? static_cast<obs::TraceSink*>(sampler.get())
                                : trace_sink.get();
  }
  if (!quiet) {
    runner.on_trial = [&](const runtime::TrialRecord& record) {
      ++completed;
      std::string brief;
      for (const std::string& key : columns) {
        const auto v = runtime::find_param(record.spec.params, key);
        if (v) brief += ' ' + key + '=' + std::string(*v);
      }
      std::fprintf(stderr, "[%zu/%zu] trial %zu seed %llu%s: %s\n", completed,
                   progress_total, record.spec.trial_index,
                   static_cast<unsigned long long>(record.spec.seed),
                   brief.c_str(),
                   record.ok ? "ok" : record.error.c_str());
    };
  }

  if (!shard_text.empty()) {
    runtime::CampaignShardOptions options;
    options.shard = runtime::parse_shard(shard_text);
    options.directory = campaign_dir;
    options.resume = resume;
    options.stop_after = stop_after;
    options.streaming = streaming;
    options.runner = runner;
    progress_total = runtime::shard_range(trials.size(), options.shard).size();
    const runtime::CampaignShardResult shard =
        runtime::run_campaign_shard(experiment, trials, options);
    if (!quiet) {
      print_setup_stats(shard.setup_stats);
      std::fprintf(
          stderr, "shard %u/%u: %zu/%zu trials committed%s%s\n",
          options.shard.index, options.shard.count, shard.manifest.committed,
          shard.manifest.trial_end - shard.manifest.trial_begin,
          shard.resumed_from != 0 ? " (resumed)" : "",
          shard.manifest.complete() ? "" : " — rerun with --resume to finish");
    }
    if (!streaming)
      std::printf(
          "%s",
          runtime::summary_table(shard.records, columns).to_text().c_str());
    return shard.failures != 0 ? 1 : 0;
  }

  if (streaming) {
    std::ofstream json_file;
    std::ostream* json_out = &std::cout;
    if (json_path != "-") {
      json_file.open(json_path, std::ios::binary);
      if (!json_file) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     json_path.c_str());
        return 1;
      }
      json_out = &json_file;
    }
    runtime::JsonlResultStream stream(*json_out);
    std::size_t failures = 0;
    const auto progress = runner.on_trial;
    runner.on_trial = [&](const runtime::TrialRecord& record) {
      if (!record.ok) ++failures;
      if (progress) progress(record);
    };
    runner.stream = &stream;
    runner.keep_records = false;
    runtime::SetupStats setup_stats;
    runtime::run_trials(experiment, trials, runner, &setup_stats);
    if (runner.trace_sink) runner.trace_sink->flush();
    json_out->flush();
    if (!*json_out) {
      std::fprintf(stderr, "write to '%s' failed\n", json_path.c_str());
      return 1;
    }
    if (!quiet) {
      print_setup_stats(setup_stats);
      std::fprintf(stderr, "streamed %zu trial%s to %s (%zu failed)\n",
                   trials.size(), trials.size() == 1 ? "" : "s",
                   json_path == "-" ? "stdout" : json_path.c_str(), failures);
    }
    return failures != 0 ? 1 : 0;
  }

  runtime::SetupStats setup_stats;
  const std::vector<runtime::TrialRecord> records =
      runtime::run_trials(experiment, trials, runner, &setup_stats);
  if (runner.trace_sink) runner.trace_sink->flush();
  if (!quiet) print_setup_stats(setup_stats);

  // With --json - the JSONL stream owns stdout; human output moves to stderr.
  std::FILE* human = json_path == "-" ? stderr : stdout;
  if (force_artifacts || records.size() == 1) {
    for (const auto& record : records)
      if (record.ok && !record.result.artifact_text.empty())
        std::fprintf(human, "%s\n", record.result.artifact_text.c_str());
  }
  std::fprintf(human, "%s",
               runtime::summary_table(records, columns).to_text().c_str());
  if (show_counters) {
    const auto merged = runtime::merge_counters(records);
    std::fprintf(human, "\nmerged counters (%zu trial%s):\n%s",
                 records.size(), records.size() == 1 ? "" : "s",
                 runtime::counters_table(merged).to_text().c_str());
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      runtime::write_jsonl(std::cout, records);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     json_path.c_str());
        return 1;
      }
      runtime::write_jsonl(out, records);
      if (!quiet)
        std::fprintf(stderr, "wrote %zu JSONL record%s to %s\n",
                     records.size(), records.size() == 1 ? "" : "s",
                     json_path.c_str());
    }
  }

  for (const auto& record : records)
    if (!record.ok) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  runtime::register_builtin_experiments();
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage(stderr);
    if (args[0] == "help" || args[0] == "--help" || args[0] == "-h")
      return usage(stdout);
    if (args[0] == "list") return cmd_list();
    if (args[0] == "params") return cmd_params();
    if (args[0] == "describe") {
      if (args.size() != 2) return usage(stderr);
      return cmd_describe(args[1]);
    }
    if (args[0] == "run") {
      if (args.size() < 2) return usage(stderr);
      return cmd_run(args[1], {args.begin() + 2, args.end()});
    }
    if (args[0] == "merge") return cmd_merge({args.begin() + 1, args.end()});
    if (args[0] == "perf") return cmd_perf({args.begin() + 1, args.end()});
    std::fprintf(stderr, "unknown command '%s'\n", args[0].c_str());
    return usage(stderr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "meecc_bench: %s\n", e.what());
    return 2;
  }
}
