// Fig. 7: bit rate vs error rate as the timing window varies.
// Paper: bit rate = clock/(window·8); error explodes below ~9,000-cycle
// windows (a '1' costs ~9,000 cycles to send); best point 35 KBps @ 1.7%
// error at a 15,000-cycle window.
#include <cstdio>

#include "bench_util.h"
#include "channel/covert_channel.h"
#include "channel/testbed.h"
#include "common/table.h"

int main() {
  using namespace meecc;
  benchutil::banner("Bit rate / error rate vs timing window",
                    "Fig. 7, paper section 5.4");

  const Cycles windows[] = {5000, 7500, 10000, 15000, 20000, 25000, 30000};
  const std::size_t bits = 1500;

  Table table({"window (cyc)", "bit rate (KBps)", "error rate", "bit errors",
               "paper"});
  const char* paper_notes[] = {"unusable (<9000)", "~34% (<9000)",
                               "~5.2%",           "1.7% (best)",
                               "low",             "low",
                               "low"};

  int row = 0;
  for (const Cycles window : windows) {
    channel::TestBedConfig bed_config =
        channel::default_testbed_config(700 + row);
    bed_config.system.mee.functional_crypto = false;
    channel::TestBed bed(bed_config);

    channel::ChannelConfig config;
    config.window = window;
    const auto payload = channel::random_bits(bits, 7000 + row);
    const auto result = channel::run_covert_channel(bed, config, payload);

    char rate[32], err[32];
    std::snprintf(rate, sizeof rate, "%.1f", result.kilobytes_per_second);
    std::snprintf(err, sizeof err, "%.3f", result.error_rate);
    table.add(window, rate, err, result.bit_errors, paper_notes[row]);
    ++row;
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("trojan's '1' costs ~9000 cycles (16 access+flush pairs), so\n"
              "windows below that overrun into the next bit — the error\n"
              "cliff between 10000 and 7500 in both the paper and here.\n");
  std::printf("\nCSV\n%s", table.to_csv().c_str());
  return 0;
}
