// Fig. 6: per-bit probe-time traces while the trojan sends '0101…'.
// (a) Prime+Probe on the MEE cache: probe ≈ 3,500–4,200 cycles, levels
//     indistinguishable — communication fails.
// (b) This work: '0' ≈ versions-hit latency, '1' several hundred cycles
//     higher — clean separation.
#include <cstdio>

#include "bench_util.h"
#include "channel/covert_channel.h"
#include "channel/prime_probe.h"
#include "channel/testbed.h"
#include "common/chart.h"
#include <algorithm>
#include <vector>

#include "common/stats.h"

int main() {
  using namespace meecc;
  benchutil::banner("Covert channel traces: Prime+Probe vs this work",
                    "Fig. 6 (a)/(b), paper sections 5.2-5.3");

  // 160 bits for stable error statistics; traces plot the first 32.
  const auto payload = channel::alternating_bits(160);
  const auto head = [](const std::vector<double>& v) {
    return std::vector<double>(v.begin(),
                               v.begin() + std::min<std::size_t>(32, v.size()));
  };

  {
    channel::TestBedConfig config = channel::default_testbed_config(61);
    config.system.mee.functional_crypto = false;
    channel::TestBed bed(config);
    const auto result =
        channel::run_prime_probe_baseline(bed, channel::PrimeProbeConfig{},
                                          payload);
    RunningStats stats;
    for (double t : result.probe_times) stats.add(t);
    std::printf("(a) Prime+Probe on the MEE cache, trojan sends 0101...\n");
    std::printf("%s", render_series(head(result.probe_times), 12, 64).c_str());
    std::printf("probe time: mean %.0f, min %.0f, max %.0f cycles "
                "(paper: ~3500-4200)\n",
                stats.mean(), stats.min(), stats.max());
    std::printf("bit errors: %zu / %zu (error rate %.2f — fails, as in the "
                "paper)\n\n",
                result.bit_errors, result.sent.size(), result.error_rate);
  }

  {
    channel::TestBedConfig config = channel::default_testbed_config(62);
    config.system.mee.functional_crypto = false;
    channel::TestBed bed(config);
    const auto result =
        channel::run_covert_channel(bed, channel::ChannelConfig{}, payload);
    std::printf("(b) this work (trojan holds the eviction set, spy probes "
                "one way)\n");
    std::printf("%s", render_series(head(result.probe_times), 12, 64).c_str());
    double hit = 0, miss = 0;
    int hits = 0, misses = 0;
    for (std::size_t i = 0; i < payload.size(); ++i) {
      if (payload[i] == 0) {
        hit += result.probe_times[i];
        ++hits;
      } else {
        miss += result.probe_times[i];
        ++misses;
      }
    }
    std::printf("'0' probes: mean %.0f cycles (paper: ~480+timer)\n",
                hits ? hit / hits : 0.0);
    std::printf("'1' probes: mean %.0f cycles (paper: ~750+timer)\n",
                misses ? miss / misses : 0.0);
    std::printf("bit errors: %zu / %zu (error rate %.3f)\n",
                result.bit_errors, result.sent.size(), result.error_rate);
  }
  return 0;
}
