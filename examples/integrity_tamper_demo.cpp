// The substrate is a real (functional) MEE, not a timing stub: protected
// lines in simulated DRAM are AES-CTR ciphertext, and the counter tree
// really authenticates them. This demo shows what SGX's memory protection
// guarantees — and that our simulated DRAM attacker is caught.
//
//   $ ./integrity_tamper_demo
#include <cstdio>

#include "common/rng.h"
#include "mem/address_map.h"
#include "mem/physical_memory.h"
#include "mee/engine.h"

int main() {
  using namespace meecc;

  const mem::AddressMap map(
      mem::AddressMapConfig{.general_size = 4ull << 20, .epc_size = 4ull << 20});
  mem::PhysicalMemory memory;
  mee::MeeEngine engine(map, memory, mee::MeeConfig{}, Rng(99));
  const CoreId core{0};
  const PhysAddr secret_addr = map.protected_data().base + 0x4'2000;

  // 1. An enclave stores a secret.
  mem::Line secret{};
  const char* text = "enclave secret: launch code 0000";
  for (std::size_t i = 0; text[i] && i < secret.size(); ++i)
    secret[i] = static_cast<std::uint8_t>(text[i]);
  engine.write_line(core, secret_addr, secret);
  std::printf("[enclave] stored: \"%s\"\n", text);

  // 2. What an untrusted-DRAM attacker sees: ciphertext.
  const mem::Line raw = memory.read_line(secret_addr);
  std::printf("[DRAM]    first 16 ciphertext bytes: ");
  for (int i = 0; i < 16; ++i) std::printf("%02x", raw[i]);
  std::printf("  (version counter = %llu)\n",
              static_cast<unsigned long long>(
                  engine.version_counter(secret_addr)));

  // 3. Reading through the MEE decrypts and verifies.
  mem::Line readback;
  engine.read_line(core, secret_addr, &readback);
  std::printf("[enclave] readback ok: \"%.32s\"\n",
              reinterpret_cast<const char*>(readback.data()));

  // 4. The DRAM attacker flips one ciphertext bit...
  engine.mutable_cache().flush_all();  // let the cached path age out first
  mem::Line tampered = raw;
  tampered[0] ^= 0x01;
  memory.write_line(secret_addr, tampered);
  try {
    engine.read_line(core, secret_addr, &readback);
    std::printf("[enclave] TAMPER MISSED — this must not happen\n");
    return 1;
  } catch (const mee::TamperDetected& e) {
    std::printf("[MEE]     tamper detected: %s\n", e.what());
  }
  memory.write_line(secret_addr, raw);  // restore

  // 5. ...then tries a replay: roll the versions node back to an old state.
  const auto chunk = engine.geometry().chunk_of(secret_addr);
  const auto ver_addr = engine.geometry().versions_line_addr(chunk);
  const auto old_versions = memory.read_line(ver_addr);
  engine.write_line(core, secret_addr, secret);  // moves the tree forward
  engine.mutable_cache().flush_all();
  memory.write_line(ver_addr, old_versions);     // replay old counters
  try {
    engine.read_line(core, secret_addr, &readback);
    std::printf("[enclave] REPLAY MISSED — this must not happen\n");
    return 1;
  } catch (const mee::TamperDetected& e) {
    std::printf("[MEE]     replay detected: %s\n", e.what());
  }

  std::printf("\nintegrity and freshness hold — and it is exactly this\n"
              "machinery (the versions/L0/L1/L2 walk + MEE cache) whose\n"
              "timing the covert channel exploits.\n");
  return 0;
}
