// Reliable exfiltration (extension): the paper measures the RAW channel
// ("without any error handling"); a deployed attack wraps it in coding. This
// demo leaks a 32-byte key through the MEE cache while a noisy co-tenant
// hammers the MEE — Hamming(7,4) + interleaving + repetition + ARQ deliver
// it intact.
//
//   $ ./reliable_exfiltration
#include <cstdio>
#include <string>
#include <vector>

#include "channel/covert_channel.h"
#include "channel/testbed.h"
#include "channel/transport.h"

int main() {
  using namespace meecc;

  channel::TestBedConfig config = channel::default_testbed_config(77);
  config.system.mee.functional_crypto = false;
  config.noise = channel::NoiseEnv::kMeeStride512;  // hostile conditions
  config.noise_autostart = false;
  channel::TestBed bed(config);

  std::printf("[setup] Algorithm 1 + monitor discovery (quiet period)...\n");
  const auto setup = channel::setup_covert_channel(bed, channel::ChannelConfig{});
  std::printf("[setup] eviction set: %u addresses\n",
              setup.eviction.associativity());

  bed.start_noise();
  std::printf("[noise] co-tenant starts streaming integrity-tree data\n");

  std::vector<std::uint8_t> key;
  for (const char c : std::string("0f1e2d3c4b5a69788796a5b4c3d2e1f0"))
    key.push_back(static_cast<std::uint8_t>(c));

  channel::TransportConfig transport;
  transport.repetition = 3;   // ~3% raw BER needs the inner repetition code
  transport.max_attempts = 4;

  const auto result = channel::run_reliable_transfer(
      bed, channel::ChannelConfig{}, key, setup, transport);

  std::printf("[spy]   raw bit errors (last attempt): %zu\n",
              result.raw_bit_errors);
  std::printf("[spy]   Hamming corrections applied:   %zu\n",
              result.corrected_bits);
  std::printf("[spy]   transmissions (ARQ):           %d\n", result.attempts);
  std::printf("[spy]   delivered intact:              %s\n",
              result.delivered ? "YES (CRC verified)" : "NO");
  std::printf("[spy]   key: %.*s\n", static_cast<int>(result.payload.size()),
              reinterpret_cast<const char*>(result.payload.data()));
  std::printf("[rate]  raw channel %.1f KBps -> payload %.1f KBps net of\n"
              "        Hamming(7,4) x repetition-3 x %d attempt(s)\n",
              result.channel.kilobytes_per_second,
              result.payload_kilobytes_per_second, result.attempts);
  return result.delivered ? 0 : 1;
}
