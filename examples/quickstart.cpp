// Quickstart: build the simulated SGX machine, set up the MEE-cache covert
// channel end to end (Algorithm 1 + monitor discovery + Algorithm 2), and
// transfer 64 bits.
//
//   $ ./quickstart
#include <cstdio>

#include "channel/covert_channel.h"
#include "channel/testbed.h"

int main() {
  using namespace meecc;

  // A 4-core Skylake-like machine with SGX: 32 MB EPC, MEE cache in front of
  // the protected region. Crypto is fully functional (AES-CTR + MAC tree).
  channel::TestBed bed(channel::default_testbed_config(/*seed=*/1));

  // Transfer 64 alternating bits through the MEE cache with the paper's
  // default 15,000-cycle timing window.
  channel::ChannelConfig config;
  const auto payload = channel::alternating_bits(64);
  const auto result = channel::run_covert_channel(bed, config, payload);

  std::printf("eviction set (Algorithm 1): %u addresses -> %u-way cache\n",
              result.eviction.associativity(), result.eviction.associativity());
  std::printf("monitor address: 0x%llx\n",
              static_cast<unsigned long long>(result.monitor.raw));
  std::printf("sent     : ");
  for (auto b : result.sent) std::printf("%d", b);
  std::printf("\nreceived : ");
  for (auto b : result.received) std::printf("%d", b);
  std::printf("\nbit errors: %zu / %zu (%.1f%%)\n", result.bit_errors,
              result.sent.size(), 100.0 * result.error_rate);
  std::printf("bit rate  : %.1f KBps at %.1f GHz (paper: 35 KBps)\n",
              result.kilobytes_per_second, bed.config().system.clock_ghz);
  return result.error_rate < 0.2 ? 0 : 1;
}
