// Leak an ASCII secret from a trojan enclave to a spy enclave through the
// MEE cache — the paper's threat model (§2.3) end to end: the trojan sits in
// the victim's environment, encodes the secret as window-timed evictions,
// and the spy on another physical core decodes it from versions hit/miss
// timing, without shared memory and without leaving enclave mode.
//
//   $ ./covert_channel_demo "attack at dawn"
#include <cstdio>
#include <string>
#include <vector>

#include "channel/covert_channel.h"
#include "channel/testbed.h"

namespace {

std::vector<std::uint8_t> to_bits(const std::string& text) {
  std::vector<std::uint8_t> bits;
  bits.reserve(text.size() * 8);
  for (const char c : text)
    for (int bit = 7; bit >= 0; --bit)
      bits.push_back(static_cast<std::uint8_t>((c >> bit) & 1));
  return bits;
}

std::string from_bits(const std::vector<std::uint8_t>& bits) {
  std::string text;
  for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
    char c = 0;
    for (int bit = 0; bit < 8; ++bit)
      c = static_cast<char>((c << 1) | bits[i + bit]);
    text.push_back((c >= 32 && c < 127) ? c : '?');
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace meecc;
  const std::string secret =
      argc > 1 ? argv[1] : "SGX key material: 0xDEADBEEF";

  channel::TestBedConfig config = channel::default_testbed_config(13);
  config.system.mee.functional_crypto = false;  // timing demo, fast path
  channel::TestBed bed(config);

  const auto bits = to_bits(secret);
  std::printf("trojan encodes %zu bytes (%zu bits) of secret...\n",
              secret.size(), bits.size());

  const auto result =
      channel::run_covert_channel(bed, channel::ChannelConfig{}, bits);

  const std::string leaked = from_bits(result.received);
  std::printf("spy decoded  : \"%s\"\n", leaked.c_str());
  std::printf("original     : \"%s\"\n", secret.c_str());
  std::printf("bit errors   : %zu / %zu (%.2f%%), %.1f KBps\n",
              result.bit_errors, bits.size(), 100.0 * result.error_rate,
              result.kilobytes_per_second);
  std::printf("\n(the paper reports 1.7%% raw bit errors; real attacks add\n"
              "error-correcting codes on top — none are applied here.)\n");
  return 0;
}
