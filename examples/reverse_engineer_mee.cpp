// Reverse engineering the MEE cache from inside an enclave, as in paper §4:
// capacity from the eviction-probability knee (Fig. 4), associativity from
// Algorithm 1, and the latency landscape (Fig. 5) the attack decodes.
//
//   $ ./reverse_engineer_mee
#include <cstdio>

#include "channel/capacity_probe.h"
#include "channel/eviction_set.h"
#include "channel/latency_survey.h"
#include "channel/testbed.h"
#include "common/chart.h"

int main() {
  using namespace meecc;

  channel::TestBedConfig bed_config = channel::default_testbed_config(7);
  bed_config.system.mee.functional_crypto = false;  // timing-only run
  channel::TestBed bed(bed_config);

  std::printf("[1/3] capacity probe (Fig. 4)...\n");
  channel::CapacityProbeConfig cap_config;
  cap_config.trials = 50;
  const auto capacity = channel::run_capacity_probe(bed, cap_config);
  for (const auto& point : capacity.points)
    std::printf("  %2llu candidates -> eviction probability %.2f\n",
                static_cast<unsigned long long>(point.candidates),
                point.probability);
  std::printf("  => capacity ~ %llu KB\n\n",
              static_cast<unsigned long long>(
                  capacity.estimated_capacity_bytes / 1024));

  std::printf("[2/3] Algorithm 1: eviction address set...\n");
  const auto eviction = channel::find_eviction_set(bed,
                                                   channel::EvictionSetConfig{});
  std::printf("  index set: %zu addresses, eviction set: %zu addresses\n",
              eviction.index_set.size(), eviction.eviction_set.size());
  std::printf("  => associativity = %u ways\n\n", eviction.associativity());

  std::printf("[3/3] latency landscape (Fig. 5, 64B vs 4KB stride)...\n");
  channel::LatencySurveyConfig survey_config;
  survey_config.strides = {64, 4096};
  survey_config.samples_per_stride = 1200;
  const auto survey = channel::run_latency_survey(bed, survey_config);
  for (const auto& series : survey.series) {
    std::printf("  stride %5llu B: mean %.0f cycles\n",
                static_cast<unsigned long long>(series.stride),
                series.latency.mean());
  }

  const auto sets =
      capacity.estimated_capacity_bytes / (eviction.associativity() * 64);
  std::printf("\nrecovered MEE cache: %llu KB, %u-way, %llu sets, 64 B lines\n",
              static_cast<unsigned long long>(
                  capacity.estimated_capacity_bytes / 1024),
              eviction.associativity(),
              static_cast<unsigned long long>(sets));
  std::printf("paper (i7-6700K):    64 KB, 8-way, 128 sets, 64 B lines\n");
  return 0;
}
