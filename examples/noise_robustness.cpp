// How the channel degrades under co-tenant load (paper §5.4, Fig. 8):
// cache/memory stress barely matters (it never touches the MEE cache),
// while a co-tenant enclave streaming integrity-tree data through the MEE
// cache costs real bit errors.
//
//   $ ./noise_robustness
#include <cstdio>

#include "channel/covert_channel.h"
#include "channel/testbed.h"

int main() {
  using namespace meecc;
  const auto payload = channel::pattern_100100(128);

  const channel::NoiseEnv envs[] = {
      channel::NoiseEnv::kNone, channel::NoiseEnv::kMemoryStress,
      channel::NoiseEnv::kMeeStride512, channel::NoiseEnv::kMeeStride4K};

  std::printf("%-28s %-14s %s\n", "environment", "errors /128", "error rate");
  int seed = 300;
  for (const auto env : envs) {
    channel::TestBedConfig config = channel::default_testbed_config(seed++);
    config.system.mee.functional_crypto = false;
    config.noise = env;
    config.noise_autostart = false;  // co-tenant load arrives mid-transfer
    channel::TestBed bed(config);
    const auto result =
        channel::run_covert_channel(bed, channel::ChannelConfig{}, payload);
    std::printf("%-28s %-14zu %.3f\n",
                std::string(to_string(env)).c_str(), result.bit_errors,
                result.error_rate);
  }
  std::printf("\npaper Fig. 8: no-noise/memory-noise ~1 error bit;\n"
              "MEE-cache noise (512B/4KB stride) ~4-5 error bits.\n");
  return 0;
}
