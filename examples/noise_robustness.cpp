// How the channel degrades under co-tenant load (paper §5.4, Fig. 8) —
// driven through the experiment runtime instead of a hand-rolled loop.
// This is the programmatic embedding the `meecc_bench run fig8_noise` CLI
// wraps: look up the registered experiment, expand its declarative sweep,
// run the trials through the parallel runner, render the results.
//
//   $ ./noise_robustness
#include <cstdio>

#include "runtime/experiments.h"
#include "runtime/registry.h"
#include "runtime/runner.h"
#include "runtime/sink.h"
#include "runtime/sweep.h"

int main() {
  using namespace meecc;
  runtime::register_builtin_experiments();
  const runtime::Experiment& fig8 =
      runtime::get_experiment("fig8_noise");

  // The experiment's default sweep is the paper's four environments
  // (noise=none,stress,mee512,mee4k); two seeds per environment.
  runtime::SweepSpec sweep;
  sweep.seeds = 2;
  sweep.base_seed = 300;
  const auto trials = runtime::expand_sweep(fig8, sweep);

  runtime::RunnerConfig runner;
  runner.jobs = 2;
  const auto records = runtime::run_trials(fig8, trials, runner);

  const auto columns = runtime::swept_keys(fig8, sweep);
  std::printf("%s\n",
              runtime::summary_table(records, columns).to_text().c_str());
  std::printf("paper Fig. 8: no-noise/memory-noise ~1 error bit;\n"
              "MEE-cache noise (512B/4KB stride) ~4-5 error bits.\n");

  for (const auto& record : records)
    if (!record.ok) return 1;
  return 0;
}
