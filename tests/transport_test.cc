#include <gtest/gtest.h>

#include "channel/transport.h"
#include "common/check.h"
#include "common/rng.h"

namespace meecc::channel {
namespace {

// --------------------------------------------------------------- Hamming --

TEST(Hamming74, RoundTripAllNibbles) {
  for (std::uint8_t nibble = 0; nibble < 16; ++nibble) {
    const auto decoded = hamming74_decode(hamming74_encode(nibble));
    EXPECT_EQ(decoded.nibble, nibble);
    EXPECT_FALSE(decoded.corrected);
  }
}

class HammingSingleError : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(AllBitPositions, HammingSingleError,
                         ::testing::Range(0, 7));

TEST_P(HammingSingleError, EverySingleFlipIsCorrected) {
  const int flipped_bit = GetParam();
  for (std::uint8_t nibble = 0; nibble < 16; ++nibble) {
    const std::uint8_t code = hamming74_encode(nibble);
    const auto corrupted = static_cast<std::uint8_t>(code ^ (1u << flipped_bit));
    const auto decoded = hamming74_decode(corrupted);
    EXPECT_EQ(decoded.nibble, nibble)
        << "nibble " << int(nibble) << " bit " << flipped_bit;
    EXPECT_TRUE(decoded.corrected);
  }
}

TEST(Hamming74, CodewordsDifferInAtLeastThreeBits) {
  // Minimum distance 3 is what makes single-error correction sound.
  for (std::uint8_t a = 0; a < 16; ++a) {
    for (std::uint8_t b = static_cast<std::uint8_t>(a + 1); b < 16; ++b) {
      const auto diff = static_cast<unsigned>(hamming74_encode(a) ^
                                              hamming74_encode(b));
      EXPECT_GE(std::popcount(diff), 3) << int(a) << " vs " << int(b);
    }
  }
}

TEST(Hamming74, RejectsOutOfRangeNibble) {
  EXPECT_THROW(hamming74_encode(16), CheckFailure);
}

// ----------------------------------------------------------- interleaver --

TEST(Interleaver, RoundTrip) {
  Rng rng(1);
  for (const std::size_t depth : {1u, 2u, 7u, 16u}) {
    std::vector<std::uint8_t> bits(depth * 11);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_below(2));
    EXPECT_EQ(deinterleave(interleave(bits, depth), depth), bits);
  }
}

TEST(Interleaver, SpreadsBursts) {
  // A burst of `depth` consecutive channel errors must land in `depth`
  // DIFFERENT rows after deinterleaving — at most one flip per codeword row.
  const std::size_t depth = 8;
  const std::size_t width = 14;
  std::vector<std::uint8_t> bits(depth * width, 0);
  auto wire = interleave(bits, depth);
  for (std::size_t i = 40; i < 40 + depth; ++i) wire[i] ^= 1;  // burst
  const auto received = deinterleave(wire, depth);

  for (std::size_t row = 0; row < depth; ++row) {
    int flips = 0;
    for (std::size_t col = 0; col < width; ++col)
      flips += received[row * width + col];
    EXPECT_LE(flips, 1) << "row " << row;
  }
}

TEST(Interleaver, RejectsNonMultipleLength) {
  EXPECT_THROW(interleave(std::vector<std::uint8_t>(10), 3), CheckFailure);
}

// ------------------------------------------------------------------- CRC --

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
  const std::vector<std::uint8_t> check = {'1', '2', '3', '4', '5',
                                           '6', '7', '8', '9'};
  EXPECT_EQ(crc16(check), 0x29B1);
}

TEST(Crc16, DetectsAnySingleByteChange) {
  Rng rng(2);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
  const auto original = crc16(data);
  for (int trial = 0; trial < 32; ++trial) {
    auto copy = data;
    copy[rng.next_below(copy.size())] ^= static_cast<std::uint8_t>(
        1 + rng.next_below(255));
    EXPECT_NE(crc16(copy), original);
  }
}

// --------------------------------------------------------------- framing --

std::vector<std::uint8_t> bytes_of(const char* text) {
  std::vector<std::uint8_t> out;
  for (const char* p = text; *p; ++p)
    out.push_back(static_cast<std::uint8_t>(*p));
  return out;
}

TEST(Framing, CleanRoundTrip) {
  const auto message = bytes_of("MEE covert channel");
  const auto bits = encode_message(message);
  const auto decoded = decode_message(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->crc_ok);
  EXPECT_EQ(decoded->payload, message);
  EXPECT_EQ(decoded->corrected_bits, 0u);
}

TEST(Framing, EmptyMessageRoundTrips) {
  const auto bits = encode_message({});
  const auto decoded = decode_message(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->crc_ok);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Framing, OverheadIsSevenFourthsPlusHeader) {
  const auto message = std::vector<std::uint8_t>(100, 0xA5);
  const auto bits = encode_message(message);
  // (2 len + 100 payload + 2 crc) bytes × 2 nibbles × 7 bits, padded to the
  // interleave depth.
  const std::size_t raw = 104 * 2 * 7;
  EXPECT_GE(bits.size(), raw);
  EXPECT_LT(bits.size(), raw + 16);
}

class FramingErrors : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ScatteredErrorCounts, FramingErrors,
                         ::testing::Values(1, 2, 5, 10));

TEST_P(FramingErrors, OnePerCodewordErrorsAreAllCorrected) {
  // Construct flips that land in DISTINCT codewords by working in the
  // deinterleaved stream domain (codeword k, bit j) and mapping back to
  // wire positions through the interleaver permutation.
  const TransportConfig config;
  const auto message = bytes_of("counter tree covert channel payload");
  const auto bits = encode_message(message, config);
  const std::size_t width = bits.size() / config.interleave_depth;

  auto corrupted = bits;
  Rng rng(3 + GetParam());
  for (int e = 0; e < GetParam(); ++e) {
    const std::size_t stream_index =
        static_cast<std::size_t>(e) * 14 + rng.next_below(7);
    const std::size_t row = stream_index / width;
    const std::size_t col = stream_index % width;
    corrupted[col * config.interleave_depth + row] ^= 1;
  }

  const auto decoded = decode_message(corrupted, config);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->crc_ok);
  EXPECT_EQ(decoded->payload, message);
  EXPECT_EQ(decoded->corrected_bits, static_cast<std::size_t>(GetParam()));
}

TEST(Framing, BurstWithinDepthIsCorrected) {
  TransportConfig config;
  config.interleave_depth = 16;
  const auto message = bytes_of("burst resilience check, quite long payload");
  const auto bits = encode_message(message, config);
  auto corrupted = bits;
  for (std::size_t i = 100; i < 100 + config.interleave_depth; ++i)
    corrupted[i] ^= 1;  // 16-bit burst → ≤1 flip per codeword
  const auto decoded = decode_message(corrupted, config);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->crc_ok);
  EXPECT_EQ(decoded->payload, message);
}

TEST(Framing, HeavyCorruptionFailsCrcNotCrash) {
  const auto message = bytes_of("x");
  auto bits = encode_message(message);
  Rng rng(9);
  for (auto& b : bits)
    if (rng.chance(0.4)) b ^= 1;
  const auto decoded = decode_message(bits);
  if (decoded.has_value()) {
    EXPECT_FALSE(decoded->crc_ok && decoded->payload == message);
  }
}

TEST(Framing, RepetitionRoundTripAndHeavyNoise) {
  TransportConfig config;
  config.repetition = 3;
  const auto message = bytes_of("repetition-coded payload");
  const auto bits = encode_message(message, config);
  EXPECT_EQ(bits.size() % 3, 0u);

  // Clean round trip.
  auto decoded = decode_message(bits, config);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->crc_ok);
  EXPECT_EQ(decoded->payload, message);

  // 3% random flips — fatal for Hamming alone, fine with majority-of-3.
  Rng rng(7);
  auto corrupted = bits;
  for (auto& b : corrupted)
    if (rng.chance(0.03)) b ^= 1;
  decoded = decode_message(corrupted, config);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->crc_ok);
  EXPECT_EQ(decoded->payload, message);
}

TEST(Framing, TruncatedStreamReturnsNullopt) {
  const auto bits = encode_message(bytes_of("hello"));
  const std::vector<std::uint8_t> truncated(bits.begin(), bits.begin() + 32);
  EXPECT_EQ(decode_message(truncated), std::nullopt);
  EXPECT_EQ(decode_message({}), std::nullopt);
}

}  // namespace
}  // namespace meecc::channel
