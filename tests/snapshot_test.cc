// Snapshot/fork trial execution: fork-vs-fresh equivalence, fork
// independence, RNG fork-order replay, scheduler cancel semantics, the
// coroutine frame arena, and the runner's setup cache + buffered tracing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cache/hierarchy.h"
#include "channel/covert_channel.h"
#include "channel/mitigation.h"
#include "channel/testbed.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/aes_backend.h"
#include "obs/counters.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "runtime/bed_pool.h"
#include "runtime/campaign.h"
#include "runtime/experiment.h"
#include "runtime/experiments.h"
#include "runtime/registry.h"
#include "runtime/runner.h"
#include "runtime/setup_cache.h"
#include "runtime/sink.h"
#include "runtime/sweep.h"
#include "sim/des.h"
#include "sim/frame_arena.h"
#include "sim/system.h"

namespace meecc {
namespace {

// ---------------------------------------------------------------------------
// System-level fork: RNG stream replay.

TEST(SystemFork, ReplaysRngForkOrder) {
  sim::SystemConfig config;
  config.seed = 7;
  sim::System original(config);
  const sim::SystemSnapshot snap = original.snapshot();
  auto forked = sim::System::fork(config, snap);

  // Every subsequent per-agent stream must come out identical, in order:
  // a fork that consumed extra draws during construction would diverge on
  // the first stream, one that desynchronized later on a later stream.
  for (int stream = 0; stream < 4; ++stream) {
    Rng a = original.fork_rng();
    Rng b = forked->fork_rng();
    for (int draw = 0; draw < 8; ++draw)
      EXPECT_EQ(a.next_u64(), b.next_u64())
          << "stream " << stream << " draw " << draw;
  }
}

// ---------------------------------------------------------------------------
// Registry capture/restore.

TEST(RegistryState, RestoreRewindsPostCaptureActivity) {
  obs::Registry registry;
  obs::Counter early = registry.counter("test", "early");
  early.inc(2);
  const obs::Registry::State state = registry.capture();

  obs::Counter late = registry.counter("test", "late");
  late.inc(5);
  early.inc();

  registry.restore(state);
  EXPECT_EQ(early.value(), 2u);
  // A slot registered after the capture is zeroed, not left dangling at its
  // pre-restore value — otherwise a forked machine would inherit counts
  // from whichever trial happened to run on the donor registry first.
  EXPECT_EQ(late.value(), 0u);
  EXPECT_EQ(obs::snapshot_value(registry.snapshot(), "test.early"), 2u);
  EXPECT_EQ(obs::snapshot_value(registry.snapshot(), "test.late"), 0u);
}

// ---------------------------------------------------------------------------
// FrameArena.

TEST(FrameArena, AmbientScopeRecyclesBlocks) {
  sim::FrameArena arena;
  {
    sim::FrameArena::Scope scope(&arena);
    void* first = sim::FrameArena::allocate_ambient(64);
    ASSERT_NE(first, nullptr);
    EXPECT_GT(arena.bytes_reserved(), 0u);
    EXPECT_EQ(arena.free_blocks(), 0u);

    sim::FrameArena::deallocate(first);
    EXPECT_EQ(arena.free_blocks(), 1u);

    // Same size class -> the freed block is handed straight back.
    void* second = sim::FrameArena::allocate_ambient(64);
    EXPECT_EQ(second, first);
    EXPECT_EQ(arena.free_blocks(), 0u);

    // Oversize blocks bypass the arena even with a scope installed.
    void* big = sim::FrameArena::allocate_ambient(64 * 1024);
    ASSERT_NE(big, nullptr);
    sim::FrameArena::deallocate(big);
    EXPECT_EQ(arena.free_blocks(), 0u);

    sim::FrameArena::deallocate(second);
    EXPECT_EQ(arena.free_blocks(), 1u);
  }
  arena.reset();
  EXPECT_EQ(arena.free_blocks(), 0u);

  // No ambient arena: plain heap round-trip through the same entry points.
  void* heap_block = sim::FrameArena::allocate_ambient(128);
  ASSERT_NE(heap_block, nullptr);
  sim::FrameArena::deallocate(heap_block);
}

sim::Process ticker(sim::Scheduler& sched, int& ticks, int steps) {
  for (int i = 0; i < steps; ++i) {
    co_await sim::WakeAt{sched, sched.now() + 10};
    ++ticks;
  }
}

TEST(FrameArena, SchedulerFramesLandInItsArena) {
  sim::Scheduler sched;
  int ticks = 0;
  {
    sim::FrameArena::Scope scope(&sched.arena());
    sched.spawn(ticker(sched, ticks, 3));
  }
  EXPECT_GT(sched.arena().bytes_reserved(), 0u);
  sched.run_to_completion();
  EXPECT_EQ(ticks, 3);
  // The finished agent's frame was parked for reuse, not returned to malloc.
  EXPECT_GT(sched.arena().free_blocks(), 0u);
}

// ---------------------------------------------------------------------------
// Scheduler cancel.

TEST(SchedulerCancel, RemovesAgentAndPreservesSiblings) {
  sim::Scheduler sched;
  int cancelled_ticks = 0;
  int surviving_ticks = 0;
  sim::ProcessHandle doomed = sched.spawn(ticker(sched, cancelled_ticks, 100));
  sched.spawn(ticker(sched, surviving_ticks, 5));
  EXPECT_EQ(sched.live_processes(), 2u);

  EXPECT_TRUE(sched.cancel(doomed));
  EXPECT_FALSE(sched.cancel(doomed));  // stale handle is refused
  EXPECT_EQ(sched.live_processes(), 1u);

  sched.run_to_completion();
  EXPECT_EQ(cancelled_ticks, 0);  // its queued events were drained too
  EXPECT_EQ(surviving_ticks, 5);
  EXPECT_EQ(sched.live_processes(), 0u);
  EXPECT_TRUE(sched.idle());
}

TEST(SchedulerCancel, StaleAfterCompletionIsRefused) {
  sim::Scheduler sched;
  int ticks = 0;
  sim::ProcessHandle handle = sched.spawn(ticker(sched, ticks, 1));
  sched.run_to_completion();
  EXPECT_EQ(ticks, 1);
  EXPECT_FALSE(sched.cancel(handle));
  EXPECT_FALSE(sched.cancel(sim::ProcessHandle{}));  // null handle
}

// ---------------------------------------------------------------------------
// TestBed fork: observational equivalence and independence.

TEST(TestBedFork, MatchesFreshExecution) {
  channel::TestBedConfig config = channel::default_testbed_config(1234);
  config.noise = channel::NoiseEnv::kMeeStride512;
  config.noise_autostart = false;
  const channel::ChannelConfig channel_config;
  const auto payload = channel::alternating_bits(12);

  // Donor: warm up (Algorithm 1 + monitor discovery), snapshot at the
  // quiesce boundary, then keep running as the "fresh" reference.
  channel::TestBed donor(config);
  const channel::ChannelSetup setup =
      channel::setup_covert_channel(donor, channel_config);
  ASSERT_TRUE(setup.monitor_found);
  donor.quiesce_environment();
  const channel::TestBedSnapshot snap = donor.snapshot();
  donor.respawn_environment();

  obs::CollectingSink fresh_sink;
  donor.system().hub().set_trace_sink(&fresh_sink);
  donor.start_noise();
  const channel::ChannelResult fresh =
      channel::transfer_covert_channel(donor, channel_config, payload, setup);
  donor.system().hub().set_trace_sink(nullptr);
  const obs::CounterSnapshot fresh_counters =
      donor.system().hub().registry().snapshot();

  // Fork: a new bed materialized from the snapshot runs the identical
  // measure phase.
  channel::TestBed forked(config, snap);
  obs::CollectingSink fork_sink;
  forked.system().hub().set_trace_sink(&fork_sink);
  forked.start_noise();
  const channel::ChannelResult replay =
      channel::transfer_covert_channel(forked, channel_config, payload, setup);
  forked.system().hub().set_trace_sink(nullptr);
  const obs::CounterSnapshot fork_counters =
      forked.system().hub().registry().snapshot();

  // Byte-identical golden trace: every cycle, address, and outcome.
  EXPECT_EQ(fresh_sink.events().size(), fork_sink.events().size());
  EXPECT_EQ(fresh_sink.events(), fork_sink.events());
  EXPECT_EQ(fresh.received, replay.received);
  EXPECT_EQ(fresh.bit_errors, replay.bit_errors);
  EXPECT_EQ(fresh.probe_times, replay.probe_times);
  EXPECT_EQ(fresh.transfer_cycles, replay.transfer_cycles);
  // Equal counter totals: the fork restored the donor's baseline, so both
  // machines tell the same setup + measure story.
  EXPECT_EQ(fresh_counters, fork_counters);
}

// Fork-vs-fresh equivalence must survive the batched verify-walk and the
// SoA cache planes, and the serial/batched choice must be invisible in
// every observable: golden trace, channel result, and counter totals (pad
// cache and mac-verify accounting included). One loop runs the whole
// fork-vs-fresh protocol per walk mode, then the two modes are compared
// against each other end to end.
TEST(TestBedFork, ForkEquivalenceHoldsAcrossSerialAndBatchedWalks) {
  std::vector<obs::TraceEvent> mode_events[2];
  obs::CounterSnapshot mode_counters[2];
  for (const bool batched : {false, true}) {
    channel::TestBedConfig config = channel::default_testbed_config(4321);
    config.system.mee.batched_walks = batched;
    const channel::ChannelConfig channel_config;
    const auto payload = channel::alternating_bits(12);

    channel::TestBed donor(config);
    const channel::ChannelSetup setup =
        channel::setup_covert_channel(donor, channel_config);
    ASSERT_TRUE(setup.monitor_found);
    donor.quiesce_environment();
    const channel::TestBedSnapshot snap = donor.snapshot();
    donor.respawn_environment();

    obs::CollectingSink fresh_sink;
    donor.system().hub().set_trace_sink(&fresh_sink);
    const channel::ChannelResult fresh = channel::transfer_covert_channel(
        donor, channel_config, payload, setup);
    donor.system().hub().set_trace_sink(nullptr);

    channel::TestBed forked(config, snap);
    obs::CollectingSink fork_sink;
    forked.system().hub().set_trace_sink(&fork_sink);
    const channel::ChannelResult replay = channel::transfer_covert_channel(
        forked, channel_config, payload, setup);
    forked.system().hub().set_trace_sink(nullptr);

    EXPECT_EQ(fresh_sink.events(), fork_sink.events())
        << "batched=" << batched;
    EXPECT_EQ(fresh.received, replay.received) << "batched=" << batched;
    EXPECT_EQ(fresh.probe_times, replay.probe_times) << "batched=" << batched;
    EXPECT_EQ(donor.system().hub().registry().snapshot(),
              forked.system().hub().registry().snapshot())
        << "batched=" << batched;

    mode_events[batched ? 1 : 0] = fresh_sink.events();
    mode_counters[batched ? 1 : 0] = donor.system().hub().registry().snapshot();
  }
  // The batched walk is a host-side speedup only: byte-identical trace and
  // equal counter totals versus the serial reference path.
  EXPECT_EQ(mode_events[0], mode_events[1]);
  EXPECT_EQ(mode_counters[0], mode_counters[1]);
}

TEST(TestBedFork, ForksFromOneSnapshotAreIndependent) {
  const channel::TestBedConfig config = channel::default_testbed_config(2026);
  const channel::ChannelConfig channel_config;
  const auto payload = channel::alternating_bits(12);

  channel::TestBed donor(config);
  const channel::ChannelSetup setup =
      channel::setup_covert_channel(donor, channel_config);
  ASSERT_TRUE(setup.monitor_found);
  donor.quiesce_environment();
  const channel::TestBedSnapshot snap = donor.snapshot();

  channel::TestBed first(config, snap);
  obs::CollectingSink first_sink;
  first.system().hub().set_trace_sink(&first_sink);
  const channel::ChannelResult first_result =
      channel::transfer_covert_channel(first, channel_config, payload, setup);

  // A second fork transfers a different payload, mutating everything the
  // snapshot could possibly alias: DRAM lines, version counters, caches.
  channel::TestBed diverged(config, snap);
  const channel::ChannelResult diverged_result = channel::transfer_covert_channel(
      diverged, channel_config, channel::pattern_100100(12), setup);
  EXPECT_NE(diverged_result.sent, first_result.sent);

  // A third fork taken afterwards still replays the first run exactly — no
  // state leaked through the shared copy-on-write image.
  channel::TestBed second(config, snap);
  obs::CollectingSink second_sink;
  second.system().hub().set_trace_sink(&second_sink);
  const channel::ChannelResult second_result =
      channel::transfer_covert_channel(second, channel_config, payload, setup);

  EXPECT_EQ(first_sink.events(), second_sink.events());
  EXPECT_EQ(first_result.received, second_result.received);
  EXPECT_EQ(first_result.probe_times, second_result.probe_times);
}

// ---------------------------------------------------------------------------
// SetupCache + runner integration.

TEST(SetupCache, BuildsOncePerKeyAndPropagatesFailure) {
  runtime::SetupCache cache;
  int builds = 0;
  const auto value_builder = [&]() -> std::shared_ptr<const void> {
    ++builds;
    return std::make_shared<const int>(41);
  };
  const auto a = cache.get_or_build("k1", value_builder);
  const auto b = cache.get_or_build("k1", value_builder);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(cache.memory_hits(), 1u);
  EXPECT_EQ(cache.disk_hits(), 0u);

  // A throwing builder fails every sharing caller and is never retried.
  int failing_calls = 0;
  const auto failing = [&]() -> std::shared_ptr<const void> {
    ++failing_calls;
    throw std::runtime_error("setup exploded");
  };
  EXPECT_THROW(cache.get_or_build("k2", failing), std::runtime_error);
  EXPECT_THROW(cache.get_or_build("k2", failing), std::runtime_error);
  EXPECT_EQ(failing_calls, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SetupCache, MemoizedSetupWithoutContextBuildsFresh) {
  int builds = 0;
  const auto builder = [&]() -> std::shared_ptr<const int> {
    ++builds;
    return std::make_shared<const int>(7);
  };
  ASSERT_EQ(runtime::TrialContext::current(), nullptr);
  EXPECT_EQ(*runtime::memoized_setup<int>("key", builder), 7);
  EXPECT_EQ(*runtime::memoized_setup<int>("key", builder), 7);
  EXPECT_EQ(builds, 2);  // no ambient cache -> nothing memoized
}

runtime::Experiment toy_setup_experiment(std::atomic<int>& builds) {
  runtime::Experiment exp;
  exp.name = "toy_setup";
  exp.setup_key = [](const runtime::TrialSpec& spec) {
    return "toy_setup|seed=" + std::to_string(spec.seed);
  };
  exp.run = [&builds](const runtime::TrialSpec& spec) {
    const auto warm = runtime::memoized_setup<std::uint64_t>(
        "toy_setup|seed=" + std::to_string(spec.seed),
        [&]() -> std::shared_ptr<const std::uint64_t> {
          builds.fetch_add(1);
          Rng rng(spec.seed);
          return std::make_shared<const std::uint64_t>(rng.next_u64());
        });
    runtime::TrialResult result;
    result.metric("warm_mod", static_cast<double>(*warm % 100003));
    result.metric("trial", static_cast<double>(spec.trial_index));
    return result;
  };
  return exp;
}

std::vector<runtime::TrialSpec> toy_trials(std::size_t count) {
  std::vector<runtime::TrialSpec> trials;
  for (std::size_t i = 0; i < count; ++i)
    trials.push_back(runtime::TrialSpec{
        .experiment = "toy", .trial_index = i, .seed = 100 + i % 2, .params = {}});
  return trials;
}

TEST(Runner, SetupReuseSharesStateAndKeepsRecordsIdentical) {
  std::atomic<int> builds{0};
  const runtime::Experiment exp = toy_setup_experiment(builds);
  const std::vector<runtime::TrialSpec> trials = toy_trials(6);

  runtime::SetupStats reuse_stats;
  runtime::RunnerConfig reuse_config;
  reuse_config.jobs = 2;
  const std::vector<runtime::TrialRecord> reused =
      runtime::run_trials(exp, trials, reuse_config, &reuse_stats);
  EXPECT_EQ(builds.load(), 2);  // one build per distinct seed
  EXPECT_EQ(reuse_stats.builds, 2u);
  EXPECT_EQ(reuse_stats.memory_hits, 4u);
  EXPECT_EQ(reuse_stats.disk_hits, 0u);

  builds = 0;
  runtime::SetupStats fresh_stats;
  runtime::RunnerConfig fresh_config;
  fresh_config.jobs = 2;
  fresh_config.reuse_setup = false;
  const std::vector<runtime::TrialRecord> fresh =
      runtime::run_trials(exp, trials, fresh_config, &fresh_stats);
  EXPECT_EQ(builds.load(), 6);  // every trial built its own
  EXPECT_EQ(fresh_stats.builds, 0u);
  EXPECT_EQ(fresh_stats.memory_hits, 0u);
  EXPECT_EQ(fresh_stats.disk_hits, 0u);

  ASSERT_EQ(reused.size(), fresh.size());
  for (std::size_t i = 0; i < reused.size(); ++i) {
    EXPECT_TRUE(reused[i].ok);
    EXPECT_TRUE(fresh[i].ok);
    EXPECT_EQ(reused[i].result.metrics, fresh[i].result.metrics) << "trial " << i;
  }
}

TEST(Runner, ParallelTraceBufferingMatchesSerialOrder) {
  runtime::Experiment exp;
  exp.name = "toy_trace";
  exp.run = [](const runtime::TrialSpec& spec) {
    // Later trials finish first under jobs>1, scrambling completion order.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(8 - spec.trial_index));
    if (obs::TrialScope* scope = obs::TrialScope::current();
        scope != nullptr && scope->trace_sink() != nullptr) {
      for (std::int64_t i = 0; i < 3; ++i) {
        obs::TraceEvent event;
        event.cycle = spec.seed * 100 + static_cast<Cycles>(i);
        event.component = obs::Component::kChannel;
        event.addr = spec.trial_index;
        event.kind = "toy";
        event.outcome = "ok";
        event.value = i;
        scope->trace_sink()->emit(event);
      }
    }
    runtime::TrialResult result;
    result.metric("seed", static_cast<double>(spec.seed));
    return result;
  };
  std::vector<runtime::TrialSpec> trials;
  for (std::size_t i = 0; i < 8; ++i)
    trials.push_back(runtime::TrialSpec{
        .experiment = "toy_trace", .trial_index = i, .seed = 500 + i, .params = {}});

  obs::CollectingSink serial_sink;
  runtime::RunnerConfig serial_config;
  serial_config.jobs = 1;
  serial_config.trace_sink = &serial_sink;
  runtime::run_trials(exp, trials, serial_config);

  obs::CollectingSink parallel_sink;
  runtime::RunnerConfig parallel_config;
  parallel_config.jobs = 4;
  parallel_config.trace_sink = &parallel_sink;
  runtime::run_trials(exp, trials, parallel_config);

  EXPECT_EQ(serial_sink.events().size(), 24u);
  EXPECT_EQ(serial_sink.events(), parallel_sink.events());
}

// ---------------------------------------------------------------------------
// Bed recycling: a rewound TestBed must be indistinguishable from a fresh
// fork, across AES backends, and the pool's churn paths must be memory-safe.

// One fork runs the measure phase, is rewound with try_reset(), and runs it
// again: golden trace, channel result, and counter totals must all match the
// first pass exactly — the recycled-System contract the runner relies on.
// Exercised per AES backend because the MEE's pad caches and key schedules
// are part of the restored state and each backend keeps different internals.
// The "reference" backend is excluded on cost grounds (it is ~15x slower and
// its equivalence to ttable is already pinned by crypto_test).
TEST(TestBedRecycle, RewoundBedMatchesItsFirstRunAcrossAesBackends) {
  for (const std::string backend : {"ttable", "aesni", "auto"}) {
    if (!crypto::aes_backend_available(backend)) continue;
    channel::TestBedConfig config = channel::default_testbed_config(77);
    config.noise_autostart = false;
    config.system.mee.aes_backend = backend;
    const channel::ChannelConfig channel_config;
    const auto payload = channel::alternating_bits(10);

    channel::TestBed donor(config);
    const channel::ChannelSetup setup =
        channel::setup_covert_channel(donor, channel_config);
    ASSERT_TRUE(setup.monitor_found) << backend;
    donor.quiesce_environment();
    const channel::TestBedSnapshot snap = donor.snapshot();

    channel::TestBed bed(config, snap);
    obs::CollectingSink first_sink;
    bed.system().hub().set_trace_sink(&first_sink);
    bed.start_noise();
    const channel::ChannelResult first =
        channel::transfer_covert_channel(bed, channel_config, payload, setup);
    bed.system().hub().set_trace_sink(nullptr);
    const obs::CounterSnapshot first_counters =
        bed.system().hub().registry().snapshot();

    ASSERT_TRUE(bed.try_reset(snap)) << backend;
    obs::CollectingSink second_sink;
    bed.system().hub().set_trace_sink(&second_sink);
    bed.start_noise();
    const channel::ChannelResult second =
        channel::transfer_covert_channel(bed, channel_config, payload, setup);
    bed.system().hub().set_trace_sink(nullptr);

    EXPECT_EQ(first_sink.events(), second_sink.events()) << backend;
    EXPECT_EQ(first.received, second.received) << backend;
    EXPECT_EQ(first.bit_errors, second.bit_errors) << backend;
    EXPECT_EQ(first.probe_times, second.probe_times) << backend;
    EXPECT_EQ(first.transfer_cycles, second.transfer_cycles) << backend;
    EXPECT_EQ(first_counters, bed.system().hub().registry().snapshot())
        << backend;
  }
}

// The merged JSONL stream is the sweep's observable: it must come out
// byte-identical whatever the jobs count, the shard split, the recycling
// mode, or whether the bytes travel the in-memory path (write_jsonl of the
// returned records) or the streaming commit pipeline — the acceptance
// contract of the trial-throughput engine. Shard slices reuse the
// campaign's range arithmetic, so the concatenation in shard order is
// exactly the unsharded stream.
TEST(Runner, MergedJsonlByteIdenticalAcrossJobsShardsAndRecycling) {
  runtime::register_builtin_experiments();
  const runtime::Experiment& experiment =
      runtime::get_experiment("mitigations");
  runtime::SweepSpec spec;
  spec.sets = {{"mee.cache.indexing", "modulo"},
               {"setup_attempts", "1"},
               {"legit_bytes", "8192"},
               {"legit_samples", "100"}};
  spec.axes = {{"bits", {"4", "5", "6", "7", "8", "9"}}};
  spec.seeds = 1;
  const std::vector<runtime::TrialSpec> trials =
      runtime::expand_sweep(experiment, spec);

  const auto merged_jsonl = [&](unsigned jobs, unsigned shard_count,
                                bool recycle, bool streaming = false) {
    std::ostringstream out;
    runtime::JsonlResultStream stream(out);
    for (unsigned index = 1; index <= shard_count; ++index) {
      const runtime::ShardRange range = runtime::shard_range(
          trials.size(), runtime::ShardSpec{index, shard_count});
      const std::vector<runtime::TrialSpec> slice(
          trials.begin() + static_cast<std::ptrdiff_t>(range.begin),
          trials.begin() + static_cast<std::ptrdiff_t>(range.end));
      runtime::RunnerConfig config;
      config.jobs = jobs;
      config.recycle_systems = recycle;
      if (streaming) {
        config.stream = &stream;
        config.keep_records = false;
      }
      const std::vector<runtime::TrialRecord> records =
          runtime::run_trials(experiment, slice, config);
      if (!streaming) runtime::write_jsonl(out, records);
    }
    return out.str();
  };

  const std::string reference = merged_jsonl(1, 1, false);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference, merged_jsonl(1, 1, true)) << "jobs=1 recycle";
  EXPECT_EQ(reference, merged_jsonl(4, 1, true)) << "jobs=4 recycle";
  EXPECT_EQ(reference, merged_jsonl(1, 3, true)) << "3 shards recycle";
  EXPECT_EQ(reference, merged_jsonl(4, 3, true)) << "jobs=4, 3 shards";
  EXPECT_EQ(reference, merged_jsonl(1, 1, true, true)) << "jobs=1 streaming";
  EXPECT_EQ(reference, merged_jsonl(4, 1, true, true)) << "jobs=4 streaming";
  EXPECT_EQ(reference, merged_jsonl(4, 3, true, true))
      << "jobs=4, 3 shards, streaming";
}

// Pool churn: more keys than the pool cap, so every round evicts parked
// beds, discards failed rewinds, and recycles survivors that then run real
// work. The point is the ASan/LSan tier: park/evict/drop must neither leak
// a bed nor leave a dangling snapshot reference.
TEST(BedPool, RecycleEvictionChurnIsMemorySafe) {
  constexpr int kKeys = 8;  // pool cap is 6: guarantees evictions
  std::vector<channel::TestBedConfig> configs;
  std::vector<std::shared_ptr<const channel::TestBedSnapshot>> snaps;
  for (int key = 0; key < kKeys; ++key) {
    configs.push_back(channel::default_testbed_config(9000 + key));
    configs.back().noise_autostart = false;
    channel::TestBed donor(configs.back());
    donor.quiesce_environment();
    snaps.push_back(
        std::make_shared<const channel::TestBedSnapshot>(donor.snapshot()));
  }

  runtime::BedPool pool;
  const auto cycle = [&](int key) {
    const std::string pool_key = "bed:" + std::to_string(key);
    runtime::PooledBed entry = pool.take(pool_key);
    if (entry && entry.snap == snaps[static_cast<std::size_t>(key)] &&
        entry.bed->try_reset(*entry.snap)) {
      pool.note_recycle();
    } else {
      if (entry) runtime::BedPool::drop(std::move(entry));
      entry.bed = std::make_unique<channel::TestBed>(
          configs[static_cast<std::size_t>(key)],
          *snaps[static_cast<std::size_t>(key)]);
      entry.snap = snaps[static_cast<std::size_t>(key)];
    }
    (void)channel::measure_legit_workload(*entry.bed, 4096, 50);
    pool.put(pool_key, std::move(entry));
  };

  // Thrash phase: round-robin over more keys than the cap, so every take
  // misses and every put evicts the least-recently-parked bed.
  for (int round = 0; round < 2; ++round)
    for (int key = 0; key < kKeys; ++key) cycle(key);
  EXPECT_LE(pool.size(), 6u);
  EXPECT_EQ(pool.recycles(), 0u);  // LRU thrash: nothing survives to reuse

  // Hit phase: a working set that fits the cap, so parked beds survive and
  // every subsequent round rewinds them in place.
  for (int round = 0; round < 3; ++round)
    for (int key = 0; key < 4; ++key) cycle(key);
  EXPECT_GE(pool.recycles(), 8u);  // 4 keys x rounds 2..3 all recycle
}

// ---------------------------------------------------------------------------
// Hierarchy dirty-set rewind.

// Re-importing the same State image must land on exactly the bytes a full
// copy produces, whether the O(touched) rewind runs or the tracking was
// widened (flush_all) and the import falls back to full copies. Equality is
// checked on the snapshot wire encoding, which covers every mutable field.
TEST(HierarchyState, FastReimportMatchesFullCopy) {
  cache::HierarchyConfig config;
  config.llc.size_bytes = 256 * 1024;  // small planes keep the test quick
  const auto encode = [](const cache::Hierarchy& h) {
    io::Writer w;
    for (unsigned c = 0; c < h.core_count(); ++c) {
      h.l1(CoreId{c}).encode_state(w);
      h.l2(CoreId{c}).encode_state(w);
    }
    h.llc().encode_state(w);
    return w.take();
  };
  const auto touch = [](cache::Hierarchy& h, std::uint64_t salt) {
    Rng rng(salt);
    for (int i = 0; i < 2000; ++i)
      h.access(CoreId{static_cast<unsigned>(i & 1)},
               PhysAddr{(rng.next_u64() % (1 << 22)) & ~std::uint64_t{63}});
    for (int i = 0; i < 64; ++i)
      h.clflush(PhysAddr{static_cast<std::uint64_t>(i) * 64});
  };

  cache::Hierarchy live(config, 2, Rng(11));
  touch(live, 1);
  const cache::Hierarchy::State state = live.export_state();
  ASSERT_NE(state.image_id, 0u);

  // Reference image: a sibling hierarchy that full-copies the state.
  cache::Hierarchy reference(config, 2, Rng(11));
  reference.import_state(state);
  const std::string want = encode(reference);

  touch(live, 2);
  live.import_state(state);  // first import of this image: full copy
  EXPECT_EQ(encode(live), want);

  touch(live, 3);
  live.import_state(state);  // same image again: O(touched) rewind
  EXPECT_EQ(encode(live), want);

  // Widened tracking (flush_all touches everything) must fall back to the
  // full-copy path and still land on the image.
  touch(live, 4);
  live.flush_all();
  live.import_state(state);
  EXPECT_EQ(encode(live), want);
}

}  // namespace
}  // namespace meecc
