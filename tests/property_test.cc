// Property-based and parameterized sweeps over the substrate invariants:
// randomized operation sequences against simple reference models, and
// structural invariants that must hold for every configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "cache/set_assoc_cache.h"
#include "common/check.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/line_cipher.h"
#include "mee/engine.h"
#include "mee/tree_geometry.h"
#include "mem/address_map.h"
#include "mem/physical_memory.h"
#include "sim/des.h"

namespace meecc {
namespace {

// ------------------------------------------------------ cache invariants --

using CacheParam = std::tuple<std::uint64_t, std::uint32_t,
                              cache::ReplacementKind>;

class CacheProperty : public ::testing::TestWithParam<CacheParam> {};

std::string cache_param_name(
    const ::testing::TestParamInfo<CacheParam>& info) {
  std::string name = std::to_string(std::get<0>(info.param) / 1024) + "K" +
                     std::to_string(std::get<1>(info.param)) + "w" +
                     std::string(to_string(std::get<2>(info.param)));
  for (auto& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    GeometriesAndPolicies, CacheProperty,
    ::testing::Combine(
        ::testing::Values(4 * 1024, 64 * 1024),         // size bytes
        ::testing::Values(2u, 4u, 8u),                  // ways
        ::testing::Values(cache::ReplacementKind::kLru,
                          cache::ReplacementKind::kTreePlru,
                          cache::ReplacementKind::kNru,
                          cache::ReplacementKind::kRandom)),
    cache_param_name);

TEST_P(CacheProperty, RandomOpsAgainstReferenceModel) {
  const auto [size, ways, kind] = GetParam();
  const cache::Geometry geometry{.size_bytes = size, .ways = ways};
  cache::SetAssocCache cache(geometry, kind, Rng(1));
  Rng rng(2);

  // Reference model: per-set resident tag sets (membership only — the
  // victim choice is the policy's business, but membership rules are not).
  std::map<std::uint64_t, std::set<std::uint64_t>> model;
  const std::uint64_t sets = geometry.sets();

  for (int op = 0; op < 4000; ++op) {
    const std::uint64_t set = rng.next_below(sets);
    const std::uint64_t tag = rng.next_below(ways * 3);  // force conflicts
    const PhysAddr addr = geometry.line_address(tag, set);
    auto& resident = model[set];

    switch (rng.next_below(3)) {
      case 0: {  // access (lookup + fill)
        const bool hit = cache.access(addr);
        EXPECT_EQ(hit, resident.contains(tag));
        resident.insert(tag);
        // Evictions keep membership consistent below.
        break;
      }
      case 1: {  // invalidate
        const bool was_resident = cache.invalidate(addr);
        EXPECT_EQ(was_resident, resident.contains(tag));
        resident.erase(tag);
        break;
      }
      case 2: {  // pure probe must not change state
        const bool before = cache.contains(addr);
        EXPECT_EQ(cache.contains(addr), before);
        break;
      }
    }

    // Re-sync the model against ground truth after possible evictions, and
    // assert the structural invariants.
    const auto lines = cache.resident_lines(set);
    EXPECT_LE(lines.size(), ways);
    EXPECT_EQ(lines.size(), cache.occupancy(set));
    std::set<std::uint64_t> actual;
    for (const PhysAddr line : lines) {
      EXPECT_EQ(geometry.set_index(line), set);
      actual.insert(geometry.tag(line));
    }
    EXPECT_EQ(actual.size(), lines.size()) << "duplicate tags in a set";
    // Every actual resident must be a tag the model inserted at some point
    // (evictions only shrink residency, never invent lines).
    for (const std::uint64_t t : actual) EXPECT_TRUE(resident.contains(t));
    resident = std::move(actual);
  }

  const auto& stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  // Per-set eviction counters must sum to the global eviction counter.
  std::uint64_t per_set_total = 0;
  for (const auto count : cache.evictions_per_set()) per_set_total += count;
  EXPECT_EQ(per_set_total, stats.evictions);
}

TEST_P(CacheProperty, FillNeverExceedsWaysAndEvictsResidentLine) {
  const auto [size, ways, kind] = GetParam();
  const cache::Geometry geometry{.size_bytes = size, .ways = ways};
  cache::SetAssocCache cache(geometry, kind, Rng(3));
  Rng rng(4);

  for (int op = 0; op < 1500; ++op) {
    const std::uint64_t set = rng.next_below(geometry.sets());
    const std::uint64_t tag = rng.next_below(ways * 4);
    const PhysAddr addr = geometry.line_address(tag, set);
    const bool was_resident = cache.contains(addr);
    const auto evicted = cache.fill(addr);
    if (evicted) {
      EXPECT_FALSE(was_resident) << "a resident refill must not evict";
      EXPECT_EQ(geometry.set_index(*evicted), set);
      EXPECT_NE(evicted->raw, addr.line_base().raw);
    }
    EXPECT_TRUE(cache.contains(addr));
    EXPECT_LE(cache.occupancy(set), ways);
  }
}

// ----------------------------------------------------- tree geometry -----

class TreeGeometryProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(EpcSizes, TreeGeometryProperty,
                         ::testing::Values(4ull << 20, 8ull << 20,
                                           32ull << 20),
                         [](const auto& param_info) {
                           return std::to_string(param_info.param >> 20) + "MB";
                         });

TEST_P(TreeGeometryProperty, EveryChunkHasAConsistentVerificationPath) {
  const mem::AddressMap map(
      mem::AddressMapConfig{.general_size = 4ull << 20,
                            .epc_size = GetParam()});
  const mee::TreeGeometry geometry(map);
  Rng rng(5);

  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t chunk = rng.next_below(geometry.chunk_count());

    // All node addresses live inside the metadata region, 64 B aligned.
    for (const auto level : {mee::Level::kVersions, mee::Level::kL0,
                             mee::Level::kL1, mee::Level::kL2}) {
      const PhysAddr node = geometry.node_addr(level, chunk);
      EXPECT_TRUE(map.mee_metadata().contains(node));
      EXPECT_EQ(node.line_offset(), 0u);
      EXPECT_EQ(geometry.slot_in_parent(level, chunk),
                geometry.node_index(level, chunk) % 8);
    }

    // Parity invariants: versions odd, tags and upper levels even.
    EXPECT_EQ(geometry.versions_line_addr(chunk).line_index() % 2, 1u);
    EXPECT_EQ(geometry.tag_line_addr(chunk).line_index() % 2, 0u);
    EXPECT_EQ(geometry.node_addr(mee::Level::kL0, chunk).line_index() % 2, 0u);

    // Arity-8 coverage: chunks sharing an L0 node are exactly the 8 chunks
    // of one page.
    const std::uint64_t sibling = (chunk / 8) * 8 + rng.next_below(8);
    EXPECT_EQ(geometry.node_addr(mee::Level::kL0, chunk).raw,
              geometry.node_addr(mee::Level::kL0, sibling).raw);

    // Root entry index is in range.
    EXPECT_LT(geometry.node_index(mee::Level::kL2, chunk),
              geometry.root_entries());
  }
}

TEST_P(TreeGeometryProperty, NodeAddressesAreInjectivePerLevel) {
  const mem::AddressMap map(
      mem::AddressMapConfig{.general_size = 4ull << 20,
                            .epc_size = GetParam()});
  const mee::TreeGeometry geometry(map);

  std::set<std::uint64_t> seen;
  const std::uint64_t probe = std::min<std::uint64_t>(
      geometry.chunk_count(), 4096);
  for (std::uint64_t chunk = 0; chunk < probe; ++chunk) {
    EXPECT_TRUE(seen.insert(geometry.versions_line_addr(chunk).raw).second);
    EXPECT_TRUE(seen.insert(geometry.tag_line_addr(chunk).raw).second ||
                true);  // tags repeat per chunk? no — unique per chunk
  }
  // Distinct levels never collide with the versions/tags range.
  EXPECT_FALSE(seen.contains(geometry.l0_line_addr(0).raw));
  EXPECT_FALSE(seen.contains(geometry.l1_line_addr(0).raw));
}

// ---------------------------------------------------------- engine fuzz --

TEST(EngineProperty, RandomReadWriteFuzzAgainstShadowMemory) {
  const mem::AddressMap map(
      mem::AddressMapConfig{.general_size = 1ull << 20,
                            .epc_size = 2ull << 20});
  mem::PhysicalMemory memory;
  mee::MeeEngine engine(map, memory, mee::MeeConfig{}, Rng(6));
  Rng rng(7);
  const CoreId core{0};

  std::unordered_map<std::uint64_t, mem::Line> shadow;
  const std::uint64_t lines = map.protected_data().size / kLineSize;

  for (int op = 0; op < 600; ++op) {
    const PhysAddr addr =
        map.protected_data().base + rng.next_below(lines) * kLineSize;
    if (rng.chance(0.5)) {
      mem::Line data;
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
      engine.write_line(core, addr, data);
      shadow[addr.raw] = data;
    } else {
      mem::Line out;
      EXPECT_NO_THROW(engine.read_line(core, addr, &out));
      const auto it = shadow.find(addr.raw);
      if (it != shadow.end()) {
        EXPECT_EQ(out, it->second) << "readback mismatch";
      } else {
        for (const auto b : out) EXPECT_EQ(b, 0) << "unwritten line not zero";
      }
    }
  }
  EXPECT_EQ(engine.stats().reads + engine.stats().writes, 600u);
}

TEST(EngineProperty, VersionCountersAreMonotonicPerLine) {
  const mem::AddressMap map(
      mem::AddressMapConfig{.general_size = 1ull << 20,
                            .epc_size = 1ull << 20});
  mem::PhysicalMemory memory;
  mee::MeeEngine engine(map, memory, mee::MeeConfig{}, Rng(8));
  Rng rng(9);
  const CoreId core{0};

  std::unordered_map<std::uint64_t, std::uint64_t> last_version;
  for (int op = 0; op < 300; ++op) {
    const PhysAddr addr =
        map.protected_data().base + rng.next_below(64) * kLineSize;
    const std::uint64_t before = engine.version_counter(addr);
    EXPECT_GE(before, last_version[addr.raw]);
    if (rng.chance(0.7)) {
      engine.write_line(core, addr, mem::Line{});
      EXPECT_EQ(engine.version_counter(addr), before + 1);
      last_version[addr.raw] = before + 1;
    } else {
      engine.read_line(core, addr);
      EXPECT_EQ(engine.version_counter(addr), before) << "reads must not bump";
    }
  }
}

TEST(EngineProperty, StopLevelNeverExceedsColdWalk) {
  // Walking twice can only get cheaper: the stop level after a repeat access
  // is never deeper (numerically higher) than right after the first.
  const mem::AddressMap map(
      mem::AddressMapConfig{.general_size = 1ull << 20,
                            .epc_size = 4ull << 20});
  mem::PhysicalMemory memory;
  mee::MeeConfig config;
  config.functional_crypto = false;
  mee::MeeEngine engine(map, memory, config, Rng(10));
  Rng rng(11);

  for (int trial = 0; trial < 300; ++trial) {
    const PhysAddr addr = map.protected_data().base +
                          rng.next_below(map.protected_data().size / 64) * 64;
    const auto first = engine.read_line(CoreId{0}, addr);
    const auto second = engine.read_line(CoreId{0}, addr);
    EXPECT_LE(static_cast<int>(second.stop_level),
              static_cast<int>(first.stop_level));
    EXPECT_EQ(second.stop_level, mee::Level::kVersions)
        << "back-to-back repeat must hit the versions level";
  }
}

// -------------------------------------------------------------- crypto ---

class CipherProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CipherProperty, ::testing::Values(1, 2, 3));

TEST_P(CipherProperty, CtrKeystreamsNeverRepeatAcrossNonces) {
  Rng rng(GetParam());
  crypto::Key128 key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
  const crypto::LineCipher cipher(key);

  // Encrypting all-zero plaintext exposes the keystream directly.
  const crypto::LineData zero{};
  std::set<std::vector<std::uint8_t>> keystreams;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t addr = rng.next_below(1u << 20) * 64;
    const std::uint64_t version = rng.next_below(1u << 20);
    const auto ks = cipher.encrypt(zero, addr, version);
    keystreams.insert(std::vector<std::uint8_t>(ks.begin(), ks.end()));
  }
  // Collisions would mean nonce reuse (catastrophic for CTR).
  EXPECT_GE(keystreams.size(), 199u);  // allow 1 coincidental (addr,ver) repeat
}

TEST_P(CipherProperty, AesRoundTripRandomKeysAndBlocks) {
  Rng rng(100 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    crypto::Key128 key{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
    const crypto::Aes128 aes(key);
    crypto::Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
  }
}

// ------------------------------------------------------------------ rng --

class RngUniformity : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformity,
                         ::testing::Values(2, 7, 64, 1000));

TEST_P(RngUniformity, ChiSquareWithinBounds) {
  const std::uint64_t bound = GetParam();
  Rng rng(17);
  const std::uint64_t samples_per_bin = 200;
  const std::uint64_t n = bound * samples_per_bin;
  std::vector<std::uint64_t> counts(bound, 0);
  for (std::uint64_t i = 0; i < n; ++i) ++counts[rng.next_below(bound)];

  double chi2 = 0.0;
  const double expected = static_cast<double>(samples_per_bin);
  for (const auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // dof = bound-1; mean = dof, stddev = sqrt(2*dof). 5 sigma slack.
  const double dof = static_cast<double>(bound - 1);
  EXPECT_LT(chi2, dof + 5.0 * std::sqrt(2.0 * dof) + 10.0);
}

// ------------------------------------------------------------- DES kernel --

sim::Process ticker(sim::Scheduler& scheduler, Cycles period, int count,
                    std::vector<std::pair<int, Cycles>>* log, int id) {
  for (int i = 0; i < count; ++i) {
    co_await sim::WakeAt{scheduler, scheduler.now() + period};
    log->emplace_back(id, scheduler.now());
  }
}

class DesAgentsProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(AgentCounts, DesAgentsProperty,
                         ::testing::Values(2, 5, 17));

TEST_P(DesAgentsProperty, ManyAgentsDispatchInNonDecreasingTimeOrder) {
  sim::Scheduler scheduler;
  std::vector<std::pair<int, Cycles>> log;
  Rng rng(23);
  const int agents = GetParam();
  for (int a = 0; a < agents; ++a) {
    scheduler.spawn(
        ticker(scheduler, 13 + rng.next_below(97), 40, &log, a));
  }
  scheduler.run_to_completion();
  EXPECT_EQ(log.size(), static_cast<std::size_t>(agents) * 40);
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_LE(log[i - 1].second, log[i].second);
}

TEST_P(DesAgentsProperty, IdenticalRunsProduceIdenticalTraces) {
  auto run = [&](std::uint64_t seed) {
    sim::Scheduler scheduler;
    std::vector<std::pair<int, Cycles>> log;
    Rng rng(seed);
    const int agents = GetParam();
    for (int a = 0; a < agents; ++a)
      scheduler.spawn(ticker(scheduler, 13 + rng.next_below(97), 25, &log, a));
    scheduler.run_to_completion();
    return log;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

sim::Task<int> recurse(sim::Scheduler& scheduler, int depth) {
  if (depth == 0) {
    co_await sim::WakeAt{scheduler, scheduler.now() + 1};
    co_return 1;
  }
  const int below = co_await recurse(scheduler, depth - 1);
  co_return below + 1;
}

sim::Process recursion_root(sim::Scheduler& scheduler, int depth, int* out) {
  *out = co_await recurse(scheduler, depth);
}

TEST(DesProperty, DeeplyNestedTasksComplete) {
  sim::Scheduler scheduler;
  int out = 0;
  scheduler.spawn(recursion_root(scheduler, 200, &out));
  scheduler.run_to_completion();
  EXPECT_EQ(out, 201);
}

}  // namespace
}  // namespace meecc
