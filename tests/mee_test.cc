#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "mem/address_map.h"
#include "mem/physical_memory.h"
#include "mee/engine.h"
#include "mee/levels.h"
#include "mee/node_codec.h"
#include "mee/tree_geometry.h"

namespace meecc::mee {
namespace {

mem::AddressMapConfig small_map_config() {
  return mem::AddressMapConfig{.general_size = 4ull << 20,
                               .epc_size = 4ull << 20};
}

class TreeGeometryTest : public ::testing::Test {
 protected:
  mem::AddressMap map_{small_map_config()};
  TreeGeometry geometry_{map_};
};

TEST_F(TreeGeometryTest, CountsMatchEpcSize) {
  EXPECT_EQ(geometry_.chunk_count(), (4ull << 20) / 512);
  EXPECT_EQ(geometry_.page_count(), 1024u);
  EXPECT_EQ(geometry_.l0_lines(), 1024u);
  EXPECT_EQ(geometry_.l1_lines(), 128u);
  EXPECT_EQ(geometry_.l2_lines(), 16u);
  EXPECT_EQ(geometry_.root_entries(), 16u);
}

TEST_F(TreeGeometryTest, VersionsLinesLandInOddSets) {
  // Paper §4.1: versions lines go to odd MEE-cache sets, PD_Tags to even.
  for (std::uint64_t chunk : {0ull, 1ull, 7ull, 100ull, 8191ull}) {
    EXPECT_EQ(geometry_.versions_line_addr(chunk).line_index() % 2, 1u);
    EXPECT_EQ(geometry_.tag_line_addr(chunk).line_index() % 2, 0u);
  }
}

TEST_F(TreeGeometryTest, UpperLevelNodesLandInEvenSets) {
  // Inferred layout (see tree_geometry.h): L0/L1/L2 nodes never contend
  // with versions lines — they sit in even sets.
  for (std::uint64_t i : {0ull, 1ull, 9ull, 127ull})
    EXPECT_EQ(geometry_.l0_line_addr(i).line_index() % 2, 0u);
  for (std::uint64_t i : {0ull, 5ull, 127ull})
    EXPECT_EQ(geometry_.l1_line_addr(i).line_index() % 2, 0u);
  for (std::uint64_t i : {0ull, 15ull})
    EXPECT_EQ(geometry_.l2_line_addr(i).line_index() % 2, 0u);
}

TEST_F(TreeGeometryTest, PageOwnsContiguousMetadataWindow) {
  // The 8 (tag,versions) pairs of one page span exactly 1 KB — Fig. 3's
  // "consecutive versions data region".
  const PhysAddr first = geometry_.tag_line_addr(0);
  const PhysAddr last = geometry_.versions_line_addr(7);
  EXPECT_EQ(last - first, 1024u - 64u);
  // Next page's window starts right after.
  EXPECT_EQ(geometry_.tag_line_addr(8) - first, 1024u);
}

TEST_F(TreeGeometryTest, NodeIndicesFollowArity8) {
  const std::uint64_t chunk = 8 * 8 * 8 + 8 * 8 + 8 + 1;  // 585
  EXPECT_EQ(geometry_.node_index(Level::kVersions, chunk), 585u);
  EXPECT_EQ(geometry_.node_index(Level::kL0, chunk), 73u);
  EXPECT_EQ(geometry_.node_index(Level::kL1, chunk), 9u);
  EXPECT_EQ(geometry_.node_index(Level::kL2, chunk), 1u);
  EXPECT_EQ(geometry_.slot_in_parent(Level::kVersions, chunk), 585u % 8);
  EXPECT_EQ(geometry_.slot_in_parent(Level::kL0, chunk), 73u % 8);
  EXPECT_EQ(geometry_.slot_in_parent(Level::kL1, chunk), 1u);
}

TEST_F(TreeGeometryTest, LevelsOccupyDisjointRanges) {
  const PhysAddr last_version =
      geometry_.versions_line_addr(geometry_.chunk_count() - 1);
  const PhysAddr first_l0 = geometry_.l0_line_addr(0);
  EXPECT_GT(first_l0.raw, last_version.raw);
  const PhysAddr last_l0 = geometry_.l0_line_addr(geometry_.l0_lines() - 1);
  EXPECT_GT(geometry_.l1_line_addr(0).raw, last_l0.raw);
  const PhysAddr last_l2 = geometry_.l2_line_addr(geometry_.l2_lines() - 1);
  EXPECT_LT(last_l2.raw + kLineSize, map_.mee_metadata().end().raw + 1);
}

TEST_F(TreeGeometryTest, ChunkOfAndLineInChunk) {
  const PhysAddr base = map_.protected_data().base;
  EXPECT_EQ(geometry_.chunk_of(base + 512 * 3 + 64 * 2), 3u);
  EXPECT_EQ(geometry_.line_in_chunk(base + 512 * 3 + 64 * 2), 2u);
}

TEST(NodeCodec, RoundTripCountersAndMac) {
  TreeNode node;
  for (int i = 0; i < kTreeArity; ++i)
    node.counters[i] = (0x0123456789abcdULL + i) & kCounterMask;
  node.mac = 0x00aabbccddeeffULL;
  const TreeNode decoded = decode_node(encode_node(node));
  EXPECT_EQ(decoded.counters, node.counters);
  EXPECT_EQ(decoded.mac, node.mac);
}

TEST(NodeCodec, GenesisDetection) {
  TreeNode node;
  EXPECT_TRUE(node.is_genesis());
  node.counters[3] = 1;
  EXPECT_FALSE(node.is_genesis());
  node.counters[3] = 0;
  node.mac = 1;
  EXPECT_FALSE(node.is_genesis());
}

TEST(NodeCodec, CounterOverflowRejected) {
  TreeNode node;
  node.counters[0] = kCounterMask + 1;
  EXPECT_THROW(encode_node(node), CheckFailure);
}

TEST(NodeCodec, TagLineRoundTrip) {
  TagLine tags;
  for (int i = 0; i < kTreeArity; ++i) tags.tags[i] = 0xf0f0f0f0f0f0ULL + i;
  const TagLine decoded = decode_tags(encode_tags(tags));
  EXPECT_EQ(decoded.tags, tags.tags);
}

TEST(NodeCodec, PayloadExcludesMac) {
  TreeNode node;
  node.counters[0] = 5;
  node.mac = 0x1234;
  const auto payload = counter_payload(node);
  for (int i = 56; i < 64; ++i) EXPECT_EQ(payload[i], 0);
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : map_(small_map_config()),
        engine_(map_, memory_, MeeConfig{}, Rng(42)) {}

  PhysAddr data_addr(std::uint64_t offset) const {
    return map_.protected_data().base + offset;
  }

  mem::Line pattern_line(std::uint8_t seed) const {
    mem::Line line;
    for (std::size_t i = 0; i < line.size(); ++i)
      line[i] = static_cast<std::uint8_t>(seed + i);
    return line;
  }

  mem::AddressMap map_;
  mem::PhysicalMemory memory_;
  MeeEngine engine_;
  const CoreId core_{0};
};

TEST_F(EngineTest, GenesisReadReturnsZeros) {
  mem::Line out;
  out.fill(0xff);
  const auto r = engine_.read_line(core_, data_addr(0x1000), &out);
  for (auto b : out) EXPECT_EQ(b, 0);
  EXPECT_EQ(r.stop_level, Level::kRoot);  // cold caches: full walk
  EXPECT_EQ(r.nodes_fetched, 4u);
}

TEST_F(EngineTest, WriteReadRoundTrip) {
  const auto addr = data_addr(0x2000);
  const auto line = pattern_line(7);
  engine_.write_line(core_, addr, line);
  mem::Line out;
  engine_.read_line(core_, addr, &out);
  EXPECT_EQ(out, line);
}

TEST_F(EngineTest, DramHoldsCiphertextNotPlaintext) {
  const auto addr = data_addr(0x3000);
  const auto line = pattern_line(9);
  engine_.write_line(core_, addr, line);
  EXPECT_NE(memory_.read_line(addr), line);
}

TEST_F(EngineTest, VersionCounterIncrementsPerWrite) {
  const auto addr = data_addr(0x4000);
  EXPECT_EQ(engine_.version_counter(addr), 0u);
  engine_.write_line(core_, addr, pattern_line(1));
  EXPECT_EQ(engine_.version_counter(addr), 1u);
  engine_.write_line(core_, addr, pattern_line(2));
  EXPECT_EQ(engine_.version_counter(addr), 2u);
  // Sibling line in the same chunk has its own counter.
  EXPECT_EQ(engine_.version_counter(addr + kLineSize), 0u);
}

TEST_F(EngineTest, SecondAccessHitsVersionsLevel) {
  const auto addr = data_addr(0x5000);
  engine_.read_line(core_, addr);
  const auto r = engine_.read_line(core_, addr);
  EXPECT_EQ(r.stop_level, Level::kVersions);
  EXPECT_EQ(r.nodes_fetched, 0u);
}

TEST_F(EngineTest, NeighbouringChunkStopsAtL0) {
  engine_.read_line(core_, data_addr(0));        // chunk 0: full walk
  const auto r = engine_.read_line(core_, data_addr(512));  // chunk 1
  EXPECT_EQ(r.stop_level, Level::kL0);  // shares the L0 node with chunk 0
  EXPECT_EQ(r.nodes_fetched, 1u);
}

TEST_F(EngineTest, NeighbouringPageStopsAtL1) {
  engine_.read_line(core_, data_addr(0));
  const auto r = engine_.read_line(core_, data_addr(kPageSize));
  EXPECT_EQ(r.stop_level, Level::kL1);
  EXPECT_EQ(r.nodes_fetched, 2u);
}

TEST_F(EngineTest, Distant32KStopsAtL2) {
  engine_.read_line(core_, data_addr(0));
  const auto r = engine_.read_line(core_, data_addr(32 * 1024));
  EXPECT_EQ(r.stop_level, Level::kL2);
  EXPECT_EQ(r.nodes_fetched, 3u);
}

TEST_F(EngineTest, Distant256KWalksToRoot) {
  engine_.read_line(core_, data_addr(0));
  const auto r = engine_.read_line(core_, data_addr(256 * 1024));
  EXPECT_EQ(r.stop_level, Level::kRoot);
  EXPECT_EQ(r.nodes_fetched, 4u);
}

TEST_F(EngineTest, LatencyGrowsWithWalkDepth) {
  // Average over repeated cold walks vs versions hits.
  double hit_total = 0, root_total = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    engine_.mutable_cache().flush_all();
    const auto cold = engine_.read_line(core_, data_addr(0x6000));
    EXPECT_EQ(cold.stop_level, Level::kRoot);
    root_total += static_cast<double>(cold.extra_latency);
    const auto warm = engine_.read_line(core_, data_addr(0x6000));
    EXPECT_EQ(warm.stop_level, Level::kVersions);
    hit_total += static_cast<double>(warm.extra_latency);
  }
  const auto& lat = engine_.config().latency;
  EXPECT_NEAR(hit_total / n, static_cast<double>(lat.versions_hit_extra), 6.0);
  EXPECT_NEAR(root_total / n,
              static_cast<double>(lat.versions_hit_extra +
                                  lat.versions_miss_serialization +
                                  3 * lat.per_level_step),
              6.0);
}

TEST_F(EngineTest, TamperedCiphertextDetected) {
  const auto addr = data_addr(0x7000);
  engine_.write_line(core_, addr, pattern_line(3));
  auto line = memory_.read_line(addr);
  line[5] ^= 0x01;
  memory_.write_line(addr, line);
  EXPECT_THROW(engine_.read_line(core_, addr), TamperDetected);
}

TEST_F(EngineTest, TamperedVersionsNodeDetected) {
  const auto addr = data_addr(0x8000);
  engine_.write_line(core_, addr, pattern_line(4));
  engine_.mutable_cache().flush_all();  // force re-verification from DRAM

  const auto ver_addr = engine_.geometry().versions_line_addr(
      engine_.geometry().chunk_of(addr));
  auto node = decode_node(memory_.read_line(ver_addr));
  node.counters[0] += 1;  // freshness violation
  memory_.write_line(ver_addr, encode_node(node));

  try {
    engine_.read_line(core_, addr);
    FAIL() << "expected TamperDetected";
  } catch (const TamperDetected& e) {
    EXPECT_EQ(e.level(), Level::kVersions);
    EXPECT_EQ(e.address().raw, ver_addr.raw);
  }
}

TEST_F(EngineTest, TamperedUpperNodeDetected) {
  const auto addr = data_addr(0x9000);
  engine_.write_line(core_, addr, pattern_line(5));
  engine_.mutable_cache().flush_all();

  const auto l1_addr = engine_.geometry().node_addr(
      Level::kL1, engine_.geometry().chunk_of(addr));
  auto node = decode_node(memory_.read_line(l1_addr));
  node.mac ^= 1;
  memory_.write_line(l1_addr, encode_node(node));
  EXPECT_THROW(engine_.read_line(core_, addr), TamperDetected);
}

TEST_F(EngineTest, ReplayOfOldTreeStateDetected) {
  const auto addr = data_addr(0xa000);
  const auto chunk = engine_.geometry().chunk_of(addr);
  const auto ver_addr = engine_.geometry().versions_line_addr(chunk);

  engine_.write_line(core_, addr, pattern_line(6));
  const auto old_versions = memory_.read_line(ver_addr);
  const auto old_data = memory_.read_line(addr);

  engine_.write_line(core_, addr, pattern_line(7));
  engine_.mutable_cache().flush_all();

  // Roll the versions node and ciphertext back to the previous state: the
  // L0 counter has moved on, so the replayed node's MAC must fail.
  memory_.write_line(ver_addr, old_versions);
  memory_.write_line(addr, old_data);
  EXPECT_THROW(engine_.read_line(core_, addr), TamperDetected);
}

TEST_F(EngineTest, StatsTrackStopsAndOperations) {
  engine_.read_line(core_, data_addr(0));
  engine_.read_line(core_, data_addr(0));
  engine_.write_line(core_, data_addr(0), pattern_line(1));
  const auto& stats = engine_.stats();
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.stops[static_cast<std::size_t>(Level::kRoot)], 1u);
  EXPECT_EQ(stats.stops[static_cast<std::size_t>(Level::kVersions)], 2u);
}

TEST_F(EngineTest, RejectsNonProtectedAddress) {
  EXPECT_THROW(engine_.read_line(core_, PhysAddr{0}), CheckFailure);
}

TEST(EnginePartition, PartitionConfinesFillsPerCore) {
  const mem::AddressMap map(small_map_config());
  mem::PhysicalMemory memory;
  MeeConfig config;
  config.cache_policy.fill = "partition";
  MeeEngine engine(map, memory, config, Rng(42));
  // Many distinct pages from core 0 must never occupy ways 4-7.
  for (int p = 0; p < 40; ++p)
    engine.read_line(CoreId{0}, map.protected_data().base + p * kPageSize);
  const auto& cache = engine.cache();
  for (std::uint64_t s = 0; s < cache.geometry().sets(); ++s)
    EXPECT_LE(cache.occupancy(s), 4u);
}

TEST(EngineNoCrypto, TimingPathIdenticalWithoutCrypto) {
  const mem::AddressMap map(small_map_config());
  mem::PhysicalMemory memory;
  MeeConfig config;
  config.functional_crypto = false;
  MeeEngine engine(map, memory, config, Rng(1));
  const PhysAddr addr = map.protected_data().base + 0x1000;
  const auto cold = engine.read_line(CoreId{0}, addr);
  EXPECT_EQ(cold.stop_level, Level::kRoot);
  const auto warm = engine.read_line(CoreId{0}, addr);
  EXPECT_EQ(warm.stop_level, Level::kVersions);
  // Plaintext passthrough storage.
  mem::Line line;
  line.fill(0x5a);
  engine.write_line(CoreId{0}, addr, line);
  EXPECT_EQ(memory.read_line(addr), line);
}

TEST(EngineGenesis, TamperedGenesisParentDetected) {
  // A genesis (all-zero) node is only acceptable while its parent counter is
  // zero; bumping the parent without initializing the child must fail.
  const mem::AddressMap map(small_map_config());
  mem::PhysicalMemory memory;
  MeeEngine engine(map, memory, MeeConfig{}, Rng(1));
  const PhysAddr addr = map.protected_data().base;
  const auto chunk = engine.geometry().chunk_of(addr);

  engine.write_line(CoreId{0}, addr, mem::Line{});
  engine.mutable_cache().flush_all();
  // Zero out the versions node (simulating a wipe/rollback to genesis).
  memory.write_line(engine.geometry().versions_line_addr(chunk), mem::Line{});
  EXPECT_THROW(engine.read_line(CoreId{0}, addr), TamperDetected);
}

}  // namespace
}  // namespace meecc::mee
