// Golden-trace regression: the fixed-seed quickstart scenario must emit a
// byte-identical trace-event prefix, run after run and commit after commit.
// Any change to instrumentation sites, event ordering, or serialization
// shows up as a diff against tests/golden/quickstart_trace.jsonl.
//
// Regenerate deliberately after an intended change with
//   MEECC_UPDATE_GOLDEN=1 ./golden_trace_test
// On mismatch the actual trace is written next to the build tree
// (obs_artifacts/quickstart_trace.actual.jsonl) so CI can upload it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "channel/covert_channel.h"
#include "channel/testbed.h"
#include "crypto/aes_backend.h"
#include "obs/scope.h"
#include "obs/trace.h"

#ifndef MEECC_GOLDEN_DIR
#error "build must define MEECC_GOLDEN_DIR"
#endif
#ifndef MEECC_ARTIFACT_DIR
#error "build must define MEECC_ARTIFACT_DIR"
#endif

namespace meecc {
namespace {

constexpr std::size_t kGoldenEvents = 256;

/// The quickstart scenario (examples/quickstart.cpp) at seed 1, with a
/// payload trimmed to test size; the trace prefix covers enclave setup —
/// system reads/writes, cache fills and evictions, and MEE walks.
/// `aes_backend`/`pad_cache` select the host-side crypto implementation,
/// which must never influence the simulated trace.
std::vector<std::string> quickstart_trace_lines(
    std::string_view aes_backend = crypto::kAutoBackend, bool pad_cache = true) {
  obs::CollectingSink sink(kGoldenEvents);
  {
    obs::TrialScope scope(&sink);
    auto config = channel::default_testbed_config(1);
    config.system.mee.aes_backend = std::string(aes_backend);
    config.system.mee.pad_cache = pad_cache;
    channel::TestBed bed(config);
    const auto payload = channel::alternating_bits(8);
    const auto result =
        channel::run_covert_channel(bed, channel::ChannelConfig{}, payload);
    EXPECT_TRUE(result.monitor_found);
  }
  std::vector<std::string> lines;
  lines.reserve(sink.events().size());
  for (const obs::TraceEvent& event : sink.events())
    lines.push_back(obs::JsonlTraceSink::to_json_line(event));
  return lines;
}

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(GoldenTrace, QuickstartPrefixMatchesGolden) {
  if (!obs::kTracingCompiledIn)
    GTEST_SKIP() << "tracing compiled out (MEECC_DISABLE_TRACING)";

  const auto actual = quickstart_trace_lines();
  ASSERT_EQ(actual.size(), kGoldenEvents)
      << "scenario produced fewer events than the golden prefix length";

  const std::filesystem::path golden_path =
      std::filesystem::path(MEECC_GOLDEN_DIR) / "quickstart_trace.jsonl";
  if (std::getenv("MEECC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    for (const std::string& line : actual) out << line << '\n';
    GTEST_SKIP() << "golden file regenerated at " << golden_path;
  }

  const auto expected = read_lines(golden_path);
  ASSERT_FALSE(expected.empty())
      << "missing golden file " << golden_path
      << " — regenerate with MEECC_UPDATE_GOLDEN=1";

  bool match = expected.size() == actual.size();
  std::size_t first_diff = actual.size();
  for (std::size_t i = 0; match && i < actual.size(); ++i) {
    if (actual[i] != expected[i]) {
      match = false;
      first_diff = i;
    }
  }
  if (!match) {
    // Preserve the actual trace for the CI artifact uploader.
    const std::filesystem::path dir(MEECC_ARTIFACT_DIR);
    std::filesystem::create_directories(dir);
    std::ofstream out(dir / "quickstart_trace.actual.jsonl");
    for (const std::string& line : actual) out << line << '\n';

    std::ostringstream message;
    message << "trace diverges from " << golden_path << " (sizes "
            << actual.size() << " vs " << expected.size() << ")";
    if (first_diff < actual.size() && first_diff < expected.size()) {
      message << "\nfirst difference at event " << first_diff
              << "\n  expected: " << expected[first_diff]
              << "\n  actual:   " << actual[first_diff];
    }
    message << "\nactual trace written to "
            << (dir / "quickstart_trace.actual.jsonl")
            << "\nif the change is intended, regenerate with "
               "MEECC_UPDATE_GOLDEN=1";
    FAIL() << message.str();
  }
}

TEST(GoldenTrace, TraceIsRunToRunDeterministic) {
  if (!obs::kTracingCompiledIn)
    GTEST_SKIP() << "tracing compiled out (MEECC_DISABLE_TRACING)";
  EXPECT_EQ(quickstart_trace_lines(), quickstart_trace_lines());
}

// The AES backend and keystream cache are host-side optimizations: every
// backend computes bit-identical AES and the simulated timing model never
// sees which one ran, so the golden trace must match byte for byte.
class GoldenTraceBackend : public ::testing::TestWithParam<std::string> {};

std::vector<std::string> runnable_backend_params() {
  std::vector<std::string> names;
  for (const std::string& name : crypto::aes_backend_names())
    if (crypto::aes_backend_available(name)) names.push_back(name);
  return names;  // includes "auto"
}

INSTANTIATE_TEST_SUITE_P(AllBackends, GoldenTraceBackend,
                         ::testing::ValuesIn(runnable_backend_params()),
                         [](const auto& info) { return info.param; });

TEST_P(GoldenTraceBackend, TraceIsBackendInvariant) {
  if (!obs::kTracingCompiledIn)
    GTEST_SKIP() << "tracing compiled out (MEECC_DISABLE_TRACING)";
  const auto golden = read_lines(std::filesystem::path(MEECC_GOLDEN_DIR) /
                                 "quickstart_trace.jsonl");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(quickstart_trace_lines(GetParam(), /*pad_cache=*/true), golden);
}

TEST(GoldenTrace, TraceIsPadCacheInvariant) {
  if (!obs::kTracingCompiledIn)
    GTEST_SKIP() << "tracing compiled out (MEECC_DISABLE_TRACING)";
  const auto golden = read_lines(std::filesystem::path(MEECC_GOLDEN_DIR) /
                                 "quickstart_trace.jsonl");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(quickstart_trace_lines(crypto::kAutoBackend, /*pad_cache=*/false),
            golden);
}

}  // namespace
}  // namespace meecc
