// Shard/merge determinism matrix: the merged output of every shard split
// ({1/1}, {i/2}, {i/4}) at --jobs 1 and 4 must be byte-identical to the
// unsharded JSONL stream, a shard killed mid-run must resume from its
// manifest watermark with no duplicated or skipped trials, and every
// invalid-campaign shape (drifted sweep, missing shard, partial shard)
// must be refused loudly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/proc_rss.h"
#include "common/rng.h"
#include "runtime/campaign.h"
#include "runtime/experiment.h"
#include "runtime/params.h"
#include "runtime/runner.h"
#include "runtime/sink.h"

namespace meecc {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fs::path(::testing::TempDir()) /
              ("meecc_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// Cheap deterministic experiment: per-trial metrics derived from the seed
/// through an RNG, so any duplicated, skipped, or re-seeded trial shows up
/// as a wrong byte in the JSONL.
runtime::Experiment toy_experiment() {
  runtime::Experiment exp;
  exp.name = "toy_campaign";
  exp.run = [](const runtime::TrialSpec& spec) {
    Rng rng(spec.seed * 1009 + spec.trial_index);
    runtime::TrialResult result;
    result.metric("value", static_cast<double>(rng.next_u64() % 1000000));
    result.metric("trial", static_cast<double>(spec.trial_index));
    return result;
  };
  return exp;
}

std::vector<runtime::TrialSpec> toy_trials(std::size_t count) {
  std::vector<runtime::TrialSpec> trials;
  for (std::size_t i = 0; i < count; ++i)
    trials.push_back(runtime::TrialSpec{
        .experiment = "toy_campaign",
        .trial_index = i,
        .seed = 42 + i,
        .params = {{"mode", i % 2 ? "odd" : "even"}}});
  return trials;
}

std::string unsharded_jsonl(const runtime::Experiment& exp,
                            const std::vector<runtime::TrialSpec>& trials,
                            unsigned jobs) {
  runtime::RunnerConfig config;
  config.jobs = jobs;
  const auto records = runtime::run_trials(exp, trials, config);
  std::ostringstream out;
  runtime::write_jsonl(out, records);
  return std::move(out).str();
}

std::string merged_jsonl(const std::string& directory) {
  std::ostringstream out;
  runtime::merge_campaign(directory, out);
  return std::move(out).str();
}

// ---------------------------------------------------------------------------
// Partition arithmetic.

TEST(ShardSpec, ParseAcceptsValidAndRejectsMalformed) {
  const runtime::ShardSpec spec = runtime::parse_shard("2/4");
  EXPECT_EQ(spec.index, 2u);
  EXPECT_EQ(spec.count, 4u);
  for (const char* bad : {"", "3", "/4", "3/", "0/4", "5/4", "a/b", "1/0"})
    EXPECT_THROW(runtime::parse_shard(bad), runtime::ParamError) << bad;
}

TEST(ShardSpec, RangesTileEveryTotalExactly) {
  for (const std::size_t total : {0u, 1u, 5u, 7u, 16u, 101u}) {
    for (const unsigned count : {1u, 2u, 3u, 4u, 7u, 13u}) {
      std::size_t expected_begin = 0;
      for (unsigned i = 1; i <= count; ++i) {
        const runtime::ShardRange range = runtime::shard_range(
            total, runtime::ShardSpec{.index = i, .count = count});
        EXPECT_EQ(range.begin, expected_begin)
            << total << " trials, shard " << i << "/" << count;
        EXPECT_GE(range.end, range.begin);
        expected_begin = range.end;
      }
      EXPECT_EQ(expected_begin, total) << count << " shards";
    }
  }
}

TEST(ShardManifest, JsonRoundTripsAndRejectsNonsense) {
  const runtime::ShardManifest manifest{.experiment = "fig7_window_sweep",
                                        .hash = 0xdeadbeefcafef00dULL,
                                        .shard_index = 2,
                                        .shard_count = 3,
                                        .trial_begin = 5,
                                        .trial_end = 9,
                                        .committed = 2};
  const runtime::ShardManifest copy =
      runtime::manifest_from_json(runtime::manifest_to_json(manifest));
  EXPECT_EQ(copy.experiment, manifest.experiment);
  EXPECT_EQ(copy.hash, manifest.hash);
  EXPECT_EQ(copy.format_version, manifest.format_version);
  EXPECT_EQ(copy.shard_index, manifest.shard_index);
  EXPECT_EQ(copy.shard_count, manifest.shard_count);
  EXPECT_EQ(copy.trial_begin, manifest.trial_begin);
  EXPECT_EQ(copy.trial_end, manifest.trial_end);
  EXPECT_EQ(copy.committed, manifest.committed);

  EXPECT_THROW(runtime::manifest_from_json(""), runtime::ParamError);
  EXPECT_THROW(runtime::manifest_from_json("{\"campaign\":\"x\"}"),
               runtime::ParamError);
  // committed beyond the range is structurally impossible output.
  EXPECT_THROW(
      runtime::manifest_from_json(
          "{\"campaign\":\"x\",\"committed\":9,\"format_version\":1,"
          "\"hash\":\"00000000000000aa\",\"shard_count\":1,\"shard_index\":1,"
          "\"trial_begin\":0,\"trial_end\":3}"),
      runtime::ParamError);
}

TEST(CampaignHash, TracksEveryTrialListIngredient) {
  const runtime::Experiment exp = toy_experiment();
  const auto trials = toy_trials(6);
  const std::uint64_t base = runtime::campaign_hash(exp, trials);
  EXPECT_EQ(runtime::campaign_hash(exp, trials), base);  // stable

  auto fewer = trials;
  fewer.pop_back();
  EXPECT_NE(runtime::campaign_hash(exp, fewer), base);

  auto reseeded = trials;
  reseeded[3].seed ^= 1;
  EXPECT_NE(runtime::campaign_hash(exp, reseeded), base);

  auto reparam = trials;
  reparam[0].params[0].second = "weird";
  EXPECT_NE(runtime::campaign_hash(exp, reparam), base);

  runtime::Experiment renamed = toy_experiment();
  renamed.name = "toy_campaign_v2";
  EXPECT_NE(runtime::campaign_hash(renamed, trials), base);
}

// ---------------------------------------------------------------------------
// The determinism matrix.

TEST(CampaignMatrix, EverySplitAndJobCountMergesByteIdentical) {
  const runtime::Experiment exp = toy_experiment();
  const auto trials = toy_trials(10);
  const std::string reference = unsharded_jsonl(exp, trials, 1);
  ASSERT_FALSE(reference.empty());
  // The runner itself is jobs-invariant; the matrix below then checks the
  // campaign machinery cannot break what the runner guarantees.
  ASSERT_EQ(unsharded_jsonl(exp, trials, 4), reference);

  for (const unsigned shards : {1u, 2u, 4u}) {
    for (const unsigned jobs : {1u, 4u}) {
      for (const bool streaming : {false, true}) {
        ScratchDir dir("matrix_" + std::to_string(shards) + "_" +
                       std::to_string(jobs) + (streaming ? "_s" : ""));
        for (unsigned i = 1; i <= shards; ++i) {
          runtime::CampaignShardOptions options;
          options.shard = runtime::ShardSpec{.index = i, .count = shards};
          options.directory = dir.str();
          options.runner.jobs = jobs;
          options.streaming = streaming;
          const auto result =
              runtime::run_campaign_shard(exp, trials, options);
          EXPECT_TRUE(result.manifest.complete());
          EXPECT_EQ(result.failures, 0u);
          // Streaming mode drops records after commit; the bytes on disk
          // are the only output, and they must not change.
          if (streaming) {
            EXPECT_TRUE(result.records.empty());
          }
        }
        EXPECT_EQ(merged_jsonl(dir.str()), reference)
            << shards << " shards at jobs=" << jobs
            << " streaming=" << streaming;
      }
    }
  }
}

TEST(CampaignResume, KilledShardResumesFromWatermarkWithoutDupOrSkip) {
  const runtime::Experiment exp = toy_experiment();
  const auto trials = toy_trials(9);
  const std::string reference = unsharded_jsonl(exp, trials, 1);
  ScratchDir dir("resume");

  // Shard 1/2 owns trials [0, 4). Kill it after 2 commits.
  runtime::CampaignShardOptions options;
  options.shard = runtime::ShardSpec{.index = 1, .count = 2};
  options.directory = dir.str();
  options.stop_after = 2;
  options.runner.jobs = 4;
  const auto killed = runtime::run_campaign_shard(exp, trials, options);
  EXPECT_FALSE(killed.manifest.complete());
  EXPECT_EQ(killed.manifest.committed, 2u);
  EXPECT_EQ(killed.records.size(), 2u);

  // Merging a campaign with a partial shard must refuse, not emit a short
  // stream.
  std::ostringstream sink;
  EXPECT_THROW(runtime::merge_campaign(dir.str(), sink),
               runtime::ParamError);

  // Resume finishes exactly the remaining trials — watermark forward, no
  // repeats (the records of the resumed invocation start at trial 2).
  options.stop_after = 0;
  options.resume = true;
  const auto resumed = runtime::run_campaign_shard(exp, trials, options);
  EXPECT_TRUE(resumed.manifest.complete());
  EXPECT_EQ(resumed.resumed_from, 2u);
  ASSERT_EQ(resumed.records.size(), 2u);
  EXPECT_EQ(resumed.records[0].spec.trial_index, 2u);
  EXPECT_EQ(resumed.records[1].spec.trial_index, 3u);

  // Resuming a complete shard is a no-op, not a rerun.
  const auto again = runtime::run_campaign_shard(exp, trials, options);
  EXPECT_TRUE(again.records.empty());
  EXPECT_TRUE(again.manifest.complete());

  options.shard = runtime::ShardSpec{.index = 2, .count = 2};
  options.resume = false;
  runtime::run_campaign_shard(exp, trials, options);
  EXPECT_EQ(merged_jsonl(dir.str()), reference);
}

// A kill between the JSONL append and the manifest rewrite leaves an extra
// uncommitted line; resume must truncate it and rerun that trial, keeping
// the merged bytes identical.
TEST(CampaignResume, TruncatesUncommittedTailLines) {
  const runtime::Experiment exp = toy_experiment();
  const auto trials = toy_trials(6);
  const std::string reference = unsharded_jsonl(exp, trials, 1);
  ScratchDir dir("torn");

  runtime::CampaignShardOptions options;
  options.shard = runtime::ShardSpec{.index = 1, .count = 1};
  options.directory = dir.str();
  options.stop_after = 3;
  const auto killed = runtime::run_campaign_shard(exp, trials, options);
  EXPECT_EQ(killed.manifest.committed, 3u);

  // Simulate the torn state: a line landed in the JSONL after the last
  // manifest write.
  const std::string data_path =
      runtime::shard_jsonl_path(dir.str(), options.shard);
  {
    std::ofstream out(data_path, std::ios::binary | std::ios::app);
    out << "{\"garbage\":\"line the crash left behind\"}\n";
  }

  options.stop_after = 0;
  options.resume = true;
  const auto resumed = runtime::run_campaign_shard(exp, trials, options);
  EXPECT_TRUE(resumed.manifest.complete());
  EXPECT_EQ(resumed.resumed_from, 3u);
  EXPECT_EQ(merged_jsonl(dir.str()), reference);
}

TEST(CampaignResume, RefusesManifestFromAnotherCampaign) {
  const runtime::Experiment exp = toy_experiment();
  const auto trials = toy_trials(8);
  ScratchDir dir("drift");

  runtime::CampaignShardOptions options;
  options.shard = runtime::ShardSpec{.index = 1, .count = 2};
  options.directory = dir.str();
  options.stop_after = 1;
  runtime::run_campaign_shard(exp, trials, options);

  // Same directory, drifted trial list (one more seed): the watermark
  // belongs to different trials, so resume must refuse.
  options.resume = true;
  options.stop_after = 0;
  EXPECT_THROW(runtime::run_campaign_shard(exp, toy_trials(9), options),
               runtime::ParamError);
  // Without --resume the shard restarts from scratch instead.
  options.resume = false;
  const auto restarted =
      runtime::run_campaign_shard(exp, toy_trials(9), options);
  EXPECT_TRUE(restarted.manifest.complete());
  EXPECT_EQ(restarted.resumed_from, 0u);
}

// The committer batches up to kCommitBatch lines per manifest rewrite.
// Kill a shard mid-batch (a throwing callback interrupts the pipeline
// between commits) and check the durability invariant the batching must
// not weaken: the watermark never runs ahead of the flushed JSONL lines,
// and what is committed is an exact prefix of the reference stream.
TEST(CampaignResume, MidBatchKillNeverCommitsAheadOfDurableLines) {
  const runtime::Experiment exp = toy_experiment();
  const auto trials = toy_trials(100);
  const std::string reference = unsharded_jsonl(exp, trials, 1);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return std::move(buffer).str();
  };
  const auto count_lines = [](const std::string& text) {
    std::size_t lines = 0;
    for (const char c : text) lines += c == '\n';
    return lines;
  };
  const auto prefix_lines = [](const std::string& text, std::size_t n) {
    std::size_t pos = 0;
    for (std::size_t line = 0; line < n; ++line)
      pos = text.find('\n', pos) + 1;
    return text.substr(0, pos);
  };

  for (const unsigned jobs : {1u, 4u}) {
    ScratchDir dir("midbatch_" + std::to_string(jobs));
    runtime::CampaignShardOptions options;
    options.shard = runtime::ShardSpec{.index = 1, .count = 1};
    options.directory = dir.str();
    options.streaming = true;
    options.runner.jobs = jobs;
    std::size_t done = 0;
    options.runner.on_trial = [&done](const runtime::TrialRecord&) {
      if (++done == 70) throw std::runtime_error("killed mid-batch");
    };
    EXPECT_THROW(runtime::run_campaign_shard(exp, trials, options),
                 std::runtime_error);

    const runtime::ShardManifest manifest = runtime::manifest_from_json(
        slurp(runtime::shard_manifest_path(dir.str(), options.shard)));
    const std::string data =
        slurp(runtime::shard_jsonl_path(dir.str(), options.shard));
    ASSERT_GE(count_lines(data), manifest.committed)
        << "watermark ran ahead of durable lines at jobs=" << jobs;
    EXPECT_EQ(prefix_lines(data, manifest.committed),
              prefix_lines(reference, manifest.committed));
    if (jobs == 1) {
      // The inline path flushes only on a full batch, so exactly one
      // batch of kCommitBatch trials was durable when the kill landed
      // after trial 70 — proof the watermark moves per batch, not per
      // trial.
      EXPECT_EQ(manifest.committed, runtime::kCommitBatch);
      EXPECT_EQ(count_lines(data), runtime::kCommitBatch);
    }

    // Resume reruns everything past the watermark; the merged campaign is
    // byte-identical to a run that was never killed.
    options.resume = true;
    options.runner.on_trial = nullptr;
    const auto resumed = runtime::run_campaign_shard(exp, trials, options);
    EXPECT_TRUE(resumed.manifest.complete());
    EXPECT_EQ(resumed.resumed_from, manifest.committed);
    EXPECT_EQ(merged_jsonl(dir.str()), reference) << "jobs=" << jobs;
  }
}

// The bounded-memory contract behind --streaming: peak RSS of a 100k-trial
// streaming campaign stays within a constant band of a 1k-trial one. If
// anything on the per-trial path still accumulates (records kept, lines
// retained, per-trial trace buffers), 100k trials of 32 metrics each blow
// past the band by hundreds of MB.
TEST(CampaignStreaming, HundredThousandTrialRssStaysFlat) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "peak RSS is not meaningful under sanitizers";
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "peak RSS is not meaningful under sanitizers";
#endif
#endif
  runtime::Experiment exp;
  exp.name = "toy_campaign_wide";
  exp.run = [](const runtime::TrialSpec& spec) {
    Rng rng(spec.seed * 1009 + spec.trial_index);
    runtime::TrialResult result;
    for (int m = 0; m < 32; ++m)
      result.metric("m" + std::to_string(m),
                    static_cast<double>(rng.next_u64() % 1000000));
    return result;
  };
  const auto wide_trials = [](std::size_t count) {
    std::vector<runtime::TrialSpec> trials(count);
    for (std::size_t i = 0; i < count; ++i) {
      trials[i].experiment = "toy_campaign_wide";
      trials[i].trial_index = i;
      trials[i].seed = 42 + i;
    }
    return trials;
  };
  const auto run_streaming = [](const runtime::Experiment& e,
                                const std::vector<runtime::TrialSpec>& t,
                                const std::string& dir) {
    runtime::CampaignShardOptions options;
    options.shard = runtime::ShardSpec{.index = 1, .count = 1};
    options.directory = dir;
    options.streaming = true;
    options.runner.jobs = 4;
    const auto result = runtime::run_campaign_shard(e, t, options);
    ASSERT_TRUE(result.manifest.complete());
    ASSERT_TRUE(result.records.empty());
  };

  // VmHWM is a monotonic high-water mark, so the small run must go first:
  // it sets the baseline the big run is then measured against.
  ScratchDir small_dir("rss_small");
  run_streaming(exp, wide_trials(1000), small_dir.str());
  const double baseline_mb = peak_rss_mb();
  if (baseline_mb <= 0.0) GTEST_SKIP() << "/proc/self/status unreadable";

  ScratchDir big_dir("rss_big");
  run_streaming(exp, wide_trials(100000), big_dir.str());
  const double peak_mb = peak_rss_mb();

  EXPECT_LT(peak_mb - baseline_mb, 64.0)
      << "streaming RSS grew with trial count: " << baseline_mb << " MB -> "
      << peak_mb << " MB";
}

TEST(CampaignMerge, RefusesMissingShardAndForeignManifest) {
  const runtime::Experiment exp = toy_experiment();
  const auto trials = toy_trials(8);
  ScratchDir dir("holes");

  runtime::CampaignShardOptions options;
  options.directory = dir.str();
  options.shard = runtime::ShardSpec{.index = 1, .count = 3};
  runtime::run_campaign_shard(exp, trials, options);
  options.shard = runtime::ShardSpec{.index = 3, .count = 3};
  runtime::run_campaign_shard(exp, trials, options);

  std::ostringstream sink;
  EXPECT_THROW(runtime::merge_campaign(dir.str(), sink),
               runtime::ParamError);  // shard 2/3 missing

  // Complete the campaign but from a drifted trial list: hash mismatch.
  options.shard = runtime::ShardSpec{.index = 2, .count = 3};
  runtime::run_campaign_shard(exp, toy_trials(8), options);
  std::ostringstream ok_sink;
  EXPECT_NO_THROW(runtime::merge_campaign(dir.str(), ok_sink));

  runtime::run_campaign_shard(toy_experiment(), toy_trials(7), options);
  EXPECT_THROW(runtime::merge_campaign(dir.str(), sink),
               runtime::ParamError);  // 2/3 now belongs elsewhere

  EXPECT_THROW(runtime::merge_campaign(dir.str() + "/nonexistent", sink),
               runtime::ParamError);
}

}  // namespace
}  // namespace meecc
