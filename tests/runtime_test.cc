// Tests for the experiment runtime: registry lookup, declarative sweep
// expansion, the string-keyed config override table, JSONL emission, and
// runner determinism across worker counts.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "channel/testbed.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "runtime/experiments.h"
#include "runtime/params.h"
#include "runtime/registry.h"
#include "runtime/runner.h"
#include "runtime/setup_cache.h"
#include "runtime/setup_store.h"
#include "runtime/sink.h"
#include "runtime/sweep.h"

namespace meecc::runtime {
namespace {

// A cheap deterministic experiment for runner/sink tests: metrics are pure
// functions of (seed, params).
Experiment synthetic(const std::string& name) {
  Experiment e;
  e.name = name;
  e.description = "test";
  e.default_params = {{"a", "1"}, {"b", "10"}};
  e.run = [](const TrialSpec& spec) {
    TrialResult out;
    const double a = param_double(spec, "a", 0);
    const double b = param_double(spec, "b", 0);
    out.metric("value", static_cast<double>(spec.seed) * 1000 + a * 100 + b);
    out.metric("third", a / 3.0);  // exercises non-terminating decimals
    return out;
  };
  return e;
}

TEST(Registry, LookupAndUnknownName) {
  register_builtin_experiments();
  const Experiment* fig7 = find_experiment("fig7_window_sweep");
  ASSERT_NE(fig7, nullptr);
  EXPECT_EQ(fig7->name, "fig7_window_sweep");
  EXPECT_GE(all_experiments().size(), 6u);  // driver's `list` contract

  EXPECT_EQ(find_experiment("no_such_experiment"), nullptr);
  try {
    get_experiment("no_such_experiment");
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    // The error names the registered experiments so CLI typos are fixable.
    EXPECT_NE(std::string(e.what()).find("fig7_window_sweep"),
              std::string::npos);
  }
}

TEST(Registry, RejectsDuplicatesAndInvalid) {
  register_builtin_experiments();
  EXPECT_THROW(register_experiment(synthetic("fig7_window_sweep")),
               std::invalid_argument);
  Experiment unnamed = synthetic("");
  EXPECT_THROW(register_experiment(std::move(unnamed)),
               std::invalid_argument);
  Experiment no_run = synthetic("runtime_test_no_run");
  no_run.run = nullptr;
  EXPECT_THROW(register_experiment(std::move(no_run)),
               std::invalid_argument);
}

TEST(Params, ParsersAndOverrideTable) {
  EXPECT_EQ(parse_size("k", "512"), 512u);
  EXPECT_EQ(parse_size("k", "64K"), 64u * 1024);
  EXPECT_EQ(parse_size("k", "32m"), 32ull << 20);
  EXPECT_EQ(parse_size("k", "2G"), 2ull << 30);
  EXPECT_THROW(parse_size("k", "64Q"), ParamError);
  EXPECT_THROW(parse_u64("k", "12x"), ParamError);
  EXPECT_THROW(parse_u64("k", ""), ParamError);
  EXPECT_TRUE(parse_bool("k", "true"));
  EXPECT_FALSE(parse_bool("k", "off"));
  EXPECT_THROW(parse_bool("k", "maybe"), ParamError);

  channel::TestBedConfig config = channel::default_testbed_config(1);
  EXPECT_TRUE(apply_override(config, "noise", "mee4k"));
  EXPECT_EQ(config.noise, channel::NoiseEnv::kMeeStride4K);
  EXPECT_TRUE(apply_override(config, "epc_placement", "randomized"));
  EXPECT_EQ(config.system.epc_placement, mem::EpcPlacement::kRandomized);
  EXPECT_TRUE(apply_override(config, "epc_size", "64M"));
  EXPECT_EQ(config.system.address_map.epc_size, 64ull << 20);
  EXPECT_TRUE(apply_override(config, "mee.ways", "4"));
  EXPECT_EQ(config.system.mee.cache_geometry.ways, 4u);
  EXPECT_FALSE(apply_override(config, "not_a_key", "1"));
  EXPECT_THROW(apply_override(config, "noise", "hurricane"), ParamError);

  EXPECT_TRUE(is_config_key("functional_crypto"));
  EXPECT_FALSE(is_config_key("bits"));
}

TEST(Params, NoiseEnvTokensRoundTrip) {
  using channel::NoiseEnv;
  for (const NoiseEnv env :
       {NoiseEnv::kNone, NoiseEnv::kMemoryStress, NoiseEnv::kMeeStride512,
        NoiseEnv::kMeeStride4K}) {
    const auto parsed = channel::noise_env_from_string(to_token(env));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, env);
  }
  EXPECT_FALSE(channel::noise_env_from_string("hurricane").has_value());
}

TEST(Sweep, ParseArgs) {
  SweepSpec spec;
  const auto leftover = parse_sweep_args(
      {"--set", "a=2", "--sweep", "b=10,20,30", "--seeds", "3", "--seed",
       "100", "--jobs", "4"},
      &spec);
  EXPECT_EQ(leftover, (std::vector<std::string>{"--jobs", "4"}));
  ASSERT_EQ(spec.sets.size(), 1u);
  EXPECT_EQ(spec.sets[0], (std::pair<std::string, std::string>{"a", "2"}));
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].second,
            (std::vector<std::string>{"10", "20", "30"}));
  EXPECT_EQ(spec.seeds, 3);
  EXPECT_EQ(spec.base_seed, 100u);
}

TEST(Sweep, BadArgsThrow) {
  SweepSpec spec;
  EXPECT_THROW(parse_sweep_args({"--set", "novalue"}, &spec), ParamError);
  EXPECT_THROW(parse_sweep_args({"--set", "=v"}, &spec), ParamError);
  EXPECT_THROW(parse_sweep_args({"--set"}, &spec), ParamError);
  EXPECT_THROW(parse_sweep_args({"--seeds", "0"}, &spec), ParamError);
  EXPECT_THROW(parse_sweep_args({"--seeds", "three"}, &spec), ParamError);
}

TEST(Sweep, CrossProductExpansion) {
  const Experiment e = synthetic("runtime_test_expand");
  SweepSpec spec;
  spec.axes = {{"a", {"1", "2", "3"}}, {"b", {"10", "20"}}};
  spec.seeds = 2;
  spec.base_seed = 7;
  const auto trials = expand_sweep(e, spec);
  ASSERT_EQ(trials.size(), 3u * 2u * 2u);
  // First axis slowest, seeds innermost; trial_index and seeds are
  // deterministic.
  EXPECT_EQ(*find_param(trials[0].params, "a"), "1");
  EXPECT_EQ(*find_param(trials[0].params, "b"), "10");
  EXPECT_EQ(trials[0].seed, 7u);
  EXPECT_EQ(trials[1].seed, 8u);
  EXPECT_EQ(*find_param(trials[2].params, "b"), "20");
  EXPECT_EQ(*find_param(trials[4].params, "a"), "2");
  EXPECT_EQ(*find_param(trials[4].params, "b"), "10");
  EXPECT_EQ(*find_param(trials[11].params, "a"), "3");
  EXPECT_EQ(*find_param(trials[11].params, "b"), "20");
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(trials[i].trial_index, i);

  EXPECT_EQ(swept_keys(e, spec), (std::vector<std::string>{"a", "b"}));
}

TEST(Sweep, DefaultSweepsAndSetOverride) {
  register_builtin_experiments();
  const Experiment& fig7 = get_experiment("fig7_window_sweep");
  // Default reproduces the figure: 7 windows.
  EXPECT_EQ(expand_sweep(fig7, SweepSpec{}).size(), 7u);
  // Pinning the swept key collapses the default axis.
  SweepSpec pinned;
  pinned.sets = {{"window", "15000"}};
  const auto trials = expand_sweep(fig7, pinned);
  ASSERT_EQ(trials.size(), 1u);
  EXPECT_EQ(*find_param(trials[0].params, "window"), "15000");
  // Replacing the axis via --sweep wins over the default axis.
  SweepSpec swept;
  swept.axes = {{"window", {"10000", "20000"}}};
  EXPECT_EQ(expand_sweep(fig7, swept).size(), 2u);
}

TEST(Sweep, RejectsUnknownKeysAndBadValues) {
  const Experiment e = synthetic("runtime_test_validate");
  SweepSpec unknown;
  unknown.sets = {{"definitely_not_a_param", "1"}};
  EXPECT_THROW(expand_sweep(e, unknown), ParamError);

  SweepSpec bad_value;
  bad_value.sets = {{"cores", "lots"}};  // config key, junk value
  EXPECT_THROW(expand_sweep(e, bad_value), ParamError);

  SweepSpec conflict;
  conflict.sets = {{"a", "1"}};
  conflict.axes = {{"a", {"1", "2"}}};
  EXPECT_THROW(expand_sweep(e, conflict), ParamError);

  SweepSpec empty_axis;
  empty_axis.axes = {{"a", {}}};
  EXPECT_THROW(expand_sweep(e, empty_axis), ParamError);
}

TEST(Sink, JsonLineShape) {
  TrialRecord record;
  record.spec.experiment = "quote\"test";
  record.spec.trial_index = 3;
  record.spec.seed = 45;
  record.spec.params = {{"window", "15000"}};
  record.ok = true;
  record.result.metric("error_rate", 0.25);
  record.result.add_series("trace", {1.0, 2.5});
  EXPECT_EQ(to_json_line(record),
            "{\"experiment\":\"quote\\\"test\",\"trial\":3,\"seed\":45,"
            "\"params\":{\"window\":\"15000\"},\"ok\":true,"
            "\"metrics\":{\"error_rate\":0.25},"
            "\"series\":{\"trace\":[1,2.5]}}");

  TrialRecord failed;
  failed.spec.experiment = "x";
  failed.error = "boom\n";
  EXPECT_EQ(to_json_line(failed),
            "{\"experiment\":\"x\",\"trial\":0,\"seed\":0,\"params\":{},"
            "\"ok\":false,\"error\":\"boom\\n\"}");
}

TEST(Runner, SyntheticDeterminismAcrossJobCounts) {
  const Experiment e = synthetic("runtime_test_runner");
  SweepSpec spec;
  spec.axes = {{"a", {"1", "2", "3", "4"}}, {"b", {"10", "20", "30"}}};
  spec.seeds = 3;
  const auto trials = expand_sweep(e, spec);
  ASSERT_EQ(trials.size(), 36u);

  RunnerConfig serial;
  serial.jobs = 1;
  RunnerConfig parallel;
  parallel.jobs = 4;
  const auto a = run_trials(e, trials, serial);
  const auto b = run_trials(e, trials, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(to_json_line(a[i]), to_json_line(b[i])) << "trial " << i;
}

TEST(Runner, TrialFailureIsRecordedNotFatal) {
  Experiment e;
  e.name = "runtime_test_failing";
  e.run = [](const TrialSpec& spec) -> TrialResult {
    if (spec.seed % 2 == 0) throw std::runtime_error("even seeds fail");
    TrialResult out;
    out.metric("ok", 1);
    return out;
  };
  std::vector<TrialSpec> trials(4);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    trials[i].trial_index = i;
    trials[i].seed = i;
  }
  std::atomic<int> callbacks{0};
  RunnerConfig config{.jobs = 2, .on_trial = [&](const TrialRecord&) {
                        ++callbacks;
                      }};
  const auto records = run_trials(e, trials, config);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(callbacks.load(), 4);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].ok, i % 2 == 1);
    if (!records[i].ok) {
      EXPECT_EQ(records[i].error, "even seeds fail");
    }
  }
}

// The acceptance-criteria shape on a real experiment: a registered
// simulator experiment produces bit-identical results at --jobs 1 and
// --jobs 4 with the same seeds. Trimmed payload keeps it test-sized.
TEST(Runner, Fig7DeterminismAcrossJobCounts) {
  register_builtin_experiments();
  const Experiment& fig7 = get_experiment("fig7_window_sweep");
  SweepSpec spec;
  spec.sets = {{"bits", "48"}};
  spec.axes = {{"window", {"10000", "15000"}}};
  spec.seeds = 2;
  const auto trials = expand_sweep(fig7, spec);
  ASSERT_EQ(trials.size(), 4u);

  RunnerConfig one_job;
  one_job.jobs = 1;
  RunnerConfig four_jobs;
  four_jobs.jobs = 4;
  const auto serial = run_trials(fig7, trials, one_job);
  const auto parallel = run_trials(fig7, trials, four_jobs);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    EXPECT_EQ(to_json_line(serial[i]), to_json_line(parallel[i]))
        << "trial " << i;
  }
}

// SetupStats must say how each warm state was resolved — built, found in
// this process's memory tier, or loaded from the on-disk store — because
// the campaign CI leg asserts on exactly these counters.
TEST(Runner, SetupStatsDistinguishMemoryDiskAndBuild) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "meecc_runtime_stats";
  std::filesystem::remove_all(dir);

  std::atomic<int> built{0};
  Experiment e;
  e.name = "runtime_test_stats";
  e.setup_key = [](const TrialSpec& spec) {
    return "stats|seed=" + std::to_string(spec.seed);
  };
  e.run = [&built](const TrialSpec& spec) {
    const auto warm = memoized_setup<std::uint64_t>(
        "stats|seed=" + std::to_string(spec.seed),
        [&]() -> std::shared_ptr<const std::uint64_t> {
          ++built;
          Rng rng(spec.seed);
          return std::make_shared<const std::uint64_t>(rng.next_u64());
        },
        [](const std::uint64_t& value) {
          io::Writer w;
          w.u64(value);
          return w.take();
        },
        [](std::string_view payload) -> std::shared_ptr<const std::uint64_t> {
          io::Reader r(payload);
          auto value = std::make_shared<std::uint64_t>(r.u64());
          r.expect_done();
          return value;
        });
    TrialResult out;
    out.metric("warm_mod", static_cast<double>(*warm % 100003));
    return out;
  };
  std::vector<TrialSpec> trials(6);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    trials[i].trial_index = i;
    trials[i].seed = 7 + i % 2;  // two distinct warm states
  }

  // No store attached: two builds, the other four trials hit memory.
  RunnerConfig memory_only;
  memory_only.jobs = 2;
  SetupStats stats;
  const auto in_memory = run_trials(e, trials, memory_only, &stats);
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.memory_hits, 4u);
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(built.load(), 2);

  // Cold store: still two builds, but they are written back...
  SetupStore store(dir.string(), setup_store_config_hash(e.name));
  RunnerConfig with_store;
  with_store.jobs = 2;
  with_store.setup_store = &store;
  built = 0;
  const auto cold = run_trials(e, trials, with_store, &stats);
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.memory_hits, 4u);
  EXPECT_EQ(stats.disk_hits, 0u);

  // ...so the next sweep (a fresh process in campaign terms) builds
  // nothing and resolves each key from disk exactly once.
  built = 0;
  const auto warm = run_trials(e, trials, with_store, &stats);
  EXPECT_EQ(stats.builds, 0u);
  EXPECT_EQ(stats.disk_hits, 2u);
  EXPECT_EQ(stats.memory_hits, 4u);
  EXPECT_EQ(built.load(), 0);

  // Resolution mode is an optimization, never an observable: all three
  // sweeps report identical trial records.
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(to_json_line(in_memory[i]), to_json_line(cold[i])) << i;
    EXPECT_EQ(to_json_line(in_memory[i]), to_json_line(warm[i])) << i;
  }
  std::filesystem::remove_all(dir);
}

// Captures every commit and asserts the ResultStream contract as it goes:
// batches are contiguous, in trial order, and each line is newline-terminated.
class CollectStream final : public ResultStream {
 public:
  void commit(std::size_t first, const std::string* lines,
              std::size_t count) override {
    EXPECT_EQ(first, committed_);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_FALSE(lines[i].empty());
      EXPECT_EQ(lines[i].back(), '\n');
      text_ += lines[i];
    }
    committed_ += count;
  }
  const std::string& text() const { return text_; }
  std::size_t committed() const { return committed_; }

 private:
  std::string text_;
  std::size_t committed_ = 0;
};

// The streaming path must be an encoding of the in-memory path, not a
// reimplementation: bytes out of the stream equal write_jsonl of the
// records, at any job count, and keep_records=false only changes what the
// caller gets back — on_trial still sees every full record.
TEST(Runner, StreamingMatchesInMemoryJsonlAtAnyJobCount) {
  const Experiment e = synthetic("runtime_test_streaming");
  SweepSpec spec;
  spec.axes = {{"a", {"1", "2", "3"}}, {"b", {"10", "20"}}};
  spec.seeds = 4;
  const auto trials = expand_sweep(e, spec);
  ASSERT_EQ(trials.size(), 24u);

  RunnerConfig plain;
  plain.jobs = 1;
  std::ostringstream reference;
  write_jsonl(reference, run_trials(e, trials, plain));

  for (const unsigned jobs : {1u, 4u}) {
    CollectStream stream;
    std::atomic<std::size_t> seen{0};
    std::atomic<std::size_t> full_records{0};
    RunnerConfig config;
    config.jobs = jobs;
    config.stream = &stream;
    config.keep_records = false;
    config.on_trial = [&](const TrialRecord& record) {
      ++seen;
      if (record.ok && !record.result.metrics.empty()) ++full_records;
    };
    const auto records = run_trials(e, trials, config);
    EXPECT_TRUE(records.empty()) << "keep_records=false must drop records";
    EXPECT_EQ(seen.load(), trials.size());
    EXPECT_EQ(full_records.load(), trials.size());
    EXPECT_EQ(stream.committed(), trials.size());
    EXPECT_EQ(stream.text(), reference.str()) << "jobs=" << jobs;
  }
}

// stream and keep_records are independent switches: both on means the
// in-memory API keeps its shape while the bytes also go out the stream.
TEST(Runner, StreamWithKeptRecordsReturnsBoth) {
  const Experiment e = synthetic("runtime_test_stream_keep");
  SweepSpec spec;
  spec.axes = {{"a", {"1", "2"}}};
  spec.seeds = 3;
  const auto trials = expand_sweep(e, spec);

  CollectStream stream;
  RunnerConfig config;
  config.jobs = 4;
  config.stream = &stream;
  const auto records = run_trials(e, trials, config);
  ASSERT_EQ(records.size(), trials.size());
  std::ostringstream from_records;
  write_jsonl(from_records, records);
  EXPECT_EQ(stream.text(), from_records.str());
}

// Regression: before the committer pipeline, a throwing on_trial callback
// escaped a worker thread and took the process down via std::terminate.
// The contract now is capture-first-exception, drain, rethrow after join.
TEST(Runner, CallbackExceptionIsRethrownAfterJoin) {
  const Experiment e = synthetic("runtime_test_callback_throw");
  std::vector<TrialSpec> trials(32);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    trials[i].trial_index = i;
    trials[i].seed = i;
  }
  for (const unsigned jobs : {1u, 4u}) {
    std::atomic<int> calls{0};
    RunnerConfig config;
    config.jobs = jobs;
    config.on_trial = [&](const TrialRecord&) {
      if (calls.fetch_add(1) == 3) throw std::runtime_error("callback boom");
    };
    try {
      run_trials(e, trials, config);
      FAIL() << "expected rethrow at jobs=" << jobs;
    } catch (const std::runtime_error& err) {
      EXPECT_STREQ(err.what(), "callback boom");
    }
  }
}

// Same contract for a failing sink: a ResultStream whose commit throws
// (e.g. disk full) stops the sweep and surfaces from run_trials.
TEST(Runner, StreamExceptionIsRethrownAfterJoin) {
  class ThrowingStream final : public ResultStream {
   public:
    void commit(std::size_t, const std::string*, std::size_t) override {
      throw std::runtime_error("commit boom");
    }
  };
  const Experiment e = synthetic("runtime_test_stream_throw");
  std::vector<TrialSpec> trials(16);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    trials[i].trial_index = i;
    trials[i].seed = i;
  }
  for (const unsigned jobs : {1u, 4u}) {
    ThrowingStream stream;
    RunnerConfig config;
    config.jobs = jobs;
    config.stream = &stream;
    config.keep_records = false;
    EXPECT_THROW(run_trials(e, trials, config), std::runtime_error)
        << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace meecc::runtime
