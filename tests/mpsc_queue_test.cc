// The bounded lock-free MPSC queue under the runner's result pipeline:
// FIFO per producer, full/empty edges, the swap-based capacity exchange,
// and a multi-producer stress run (the test the TSan CI leg exists for).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "common/mpsc_queue.h"

namespace meecc {
namespace {

TEST(MpscQueue, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(MpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscQueue<int>(256).capacity(), 256u);
  EXPECT_EQ(MpscQueue<int>(300).capacity(), 512u);
}

TEST(MpscQueue, SingleThreadFifoAndEmptyFullEdges) {
  MpscQueue<int> queue(4);
  int item = 0;
  EXPECT_FALSE(queue.try_pop(item));  // empty

  for (int i = 1; i <= 4; ++i) {
    item = i;
    EXPECT_TRUE(queue.try_push(item));
  }
  item = 99;
  EXPECT_FALSE(queue.try_push(item));  // full
  EXPECT_EQ(item, 99);                 // a refused push leaves item alone

  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(queue.try_pop(item));
    EXPECT_EQ(item, i);  // FIFO
  }
  EXPECT_FALSE(queue.try_pop(item));

  // Freed cells accept new pushes (the ring wraps).
  item = 5;
  EXPECT_TRUE(queue.try_push(item));
  ASSERT_TRUE(queue.try_pop(item));
  EXPECT_EQ(item, 5);
}

TEST(MpscQueue, SwapExchangeRecyclesStringCapacity) {
  MpscQueue<std::string> queue(2);
  std::string line(256, 'x');
  const void* const payload_buffer = line.data();
  ASSERT_TRUE(queue.try_push(line));
  // The push swapped: the producer now holds the cell's (empty) husk.
  EXPECT_TRUE(line.empty());

  std::string spare(512, 'y');
  const void* const spare_buffer = spare.data();
  ASSERT_TRUE(queue.try_pop(spare));
  // The pop swapped too: consumer got the payload's exact buffer, and the
  // consumer's spare is parked in the cell for a future producer.
  EXPECT_EQ(static_cast<const void*>(spare.data()), payload_buffer);
  ASSERT_TRUE(queue.try_push(line));
  ASSERT_TRUE(queue.try_pop(line));
  std::string probe;
  ASSERT_TRUE(queue.try_push(probe));
  // probe received the parked 512-byte husk from the first pop.
  EXPECT_EQ(static_cast<const void*>(probe.data()), spare_buffer);
}

// Four producers push 50k items each through a 64-slot ring while one
// consumer drains. Per-producer order must survive (the FIFO guarantee the
// committer's reorder buffer builds on) and every item must arrive exactly
// once. Run under TSan this is the memory-model proof for the cell
// sequence protocol.
TEST(MpscQueue, MultiProducerStressKeepsPerProducerOrderAndTotals) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 50000;
  struct Item {
    std::size_t producer = 0;
    std::size_t sequence = 0;
  };
  MpscQueue<Item> queue(64);
  std::atomic<std::size_t> producers_done{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &producers_done, p] {
      Item item;
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        item.producer = p;
        item.sequence = i;
        queue.push(item);
      }
      producers_done.fetch_add(1, std::memory_order_release);
    });
  }

  std::vector<std::size_t> next_expected(kProducers, 0);
  std::size_t received = 0;
  bool order_ok = true;
  Item item;
  for (;;) {
    if (queue.try_pop(item)) {
      order_ok &= item.sequence == next_expected[item.producer];
      ++next_expected[item.producer];
      ++received;
      continue;
    }
    if (producers_done.load(std::memory_order_acquire) == kProducers) {
      if (!queue.try_pop(item)) break;
      order_ok &= item.sequence == next_expected[item.producer];
      ++next_expected[item.producer];
      ++received;
      continue;
    }
    std::this_thread::yield();
  }
  for (auto& thread : producers) thread.join();

  EXPECT_TRUE(order_ok);
  EXPECT_EQ(received, kProducers * kPerProducer);
  for (std::size_t p = 0; p < kProducers; ++p)
    EXPECT_EQ(next_expected[p], kPerProducer) << "producer " << p;
}

}  // namespace
}  // namespace meecc
