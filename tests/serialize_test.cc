// Snapshot wire-format battery: primitive codec round-trips, one distinct
// frame status per corruption mode, canonical-bytes stability, and the
// load-bearing property behind the on-disk setup store — a decoded
// snapshot's fork replays the donor's golden trace byte for byte, under
// every available host AES backend (the nosimd CI stage reruns this suite
// with MEECC_NO_SIMD=1, shrinking the backend list).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "channel/covert_channel.h"
#include "channel/testbed.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/aes_backend.h"
#include "obs/counters.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "sim/snapshot_io.h"
#include "sim/system.h"

namespace meecc {
namespace {

// ---------------------------------------------------------------------------
// Primitive codec.

TEST(BytesCodec, PrimitivesRoundTripAndUnderflowThrows) {
  io::Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.f64(-0.015625);
  w.str("covert");
  w.str("");  // empty string is representable, not special-cased

  io::Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.f64(), -0.015625);
  EXPECT_EQ(r.str(), "covert");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
  EXPECT_THROW(r.u8(), io::DecodeError);

  io::Reader trailing(w.data());
  trailing.u8();
  EXPECT_THROW(trailing.expect_done(), io::DecodeError);
}

TEST(BytesCodec, EncodingIsLittleEndianAndLengthPrefixed) {
  io::Writer w;
  w.u32(0x01020304u);
  const std::string& bytes = w.data();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

// Every corruption mode must surface as its own status — the setup store
// and the snapshot loader report them distinctly, and all of them mean
// "rebuild", never "crash" and never "use anyway".
TEST(BytesCodec, FrameReportsOneDistinctStatusPerCorruptionMode) {
  constexpr std::uint64_t kMagic = 0x1122334455667788ULL;
  constexpr std::uint32_t kVersion = 3;
  constexpr std::uint64_t kConfig = 0xfeedfacecafebeefULL;
  const std::string framed =
      io::write_frame(kMagic, kVersion, kConfig, "payload-bytes");

  const auto status = [&](const std::string& bytes) {
    return io::read_frame(bytes, kMagic, kVersion, kConfig).status;
  };

  EXPECT_EQ(status(framed), io::FrameStatus::kOk);
  EXPECT_EQ(io::read_frame(framed, kMagic, kVersion, kConfig).payload,
            "payload-bytes");

  EXPECT_EQ(status(framed.substr(0, framed.size() - 1)),
            io::FrameStatus::kTruncated);
  EXPECT_EQ(status(framed.substr(0, 10)), io::FrameStatus::kTruncated);
  EXPECT_EQ(status(""), io::FrameStatus::kTruncated);

  std::string bad_magic = framed;
  bad_magic[0] ^= 0x01;
  EXPECT_EQ(status(bad_magic), io::FrameStatus::kBadMagic);

  std::string bad_version = framed;
  bad_version[8] ^= 0x01;  // version field sits after the 8-byte magic
  EXPECT_EQ(status(bad_version), io::FrameStatus::kBadVersion);

  std::string bad_payload = framed;
  bad_payload[28] ^= 0x01;  // first payload byte (28-byte header)
  EXPECT_EQ(status(bad_payload), io::FrameStatus::kBadChecksum);

  std::string bad_checksum = framed;
  bad_checksum.back() ^= 0x01;
  EXPECT_EQ(status(bad_checksum), io::FrameStatus::kBadChecksum);

  EXPECT_EQ(io::read_frame(framed, kMagic, kVersion, kConfig + 1).status,
            io::FrameStatus::kConfigMismatch);
  // nullopt skips the config comparison but still returns the stored hash.
  const io::FrameView any = io::read_frame(framed, kMagic, kVersion, {});
  EXPECT_EQ(any.status, io::FrameStatus::kOk);
  EXPECT_EQ(any.config_hash, kConfig);
}

// ---------------------------------------------------------------------------
// RNG state.

TEST(RngSerialization, RoundTripsMidstreamIncludingGaussianCache) {
  Rng rng(123);
  for (int i = 0; i < 17; ++i) rng.next_u64();
  // Box–Muller produces deviates in pairs; capture with one banked so the
  // cached second deviate must survive the wire.
  rng.next_gaussian();

  io::Writer w;
  encode_rng(w, rng);
  io::Reader r(w.data());
  Rng copy = decode_rng(r);
  r.expect_done();

  EXPECT_EQ(copy.next_gaussian(), rng.next_gaussian());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(copy.next_u64(), rng.next_u64());
  EXPECT_EQ(copy.next_gaussian(), rng.next_gaussian());
}

// ---------------------------------------------------------------------------
// System-level snapshot file.

TEST(SnapshotFile, RoundTripsThroughFrameAndRejectsForeignConfig) {
  sim::SystemConfig config;
  config.seed = 9;
  sim::System donor(config);
  for (int i = 0; i < 3; ++i) donor.fork_rng();
  const sim::SystemSnapshot snap = donor.snapshot();

  sim::System shape(config);
  const std::string bytes = sim::serialize_snapshot(shape, snap, 77);
  // Canonical bytes: a second encode of the same state is identical.
  EXPECT_EQ(sim::serialize_snapshot(shape, snap, 77), bytes);

  sim::SnapshotReadResult loaded = sim::deserialize_snapshot(shape, bytes, 77);
  ASSERT_EQ(loaded.status, io::FrameStatus::kOk);
  ASSERT_NE(loaded.snapshot, nullptr);
  // Decode→re-encode is the identity on the wire: no lossy field survives
  // unnoticed.
  EXPECT_EQ(sim::serialize_snapshot(shape, *loaded.snapshot, 77), bytes);

  // The decoded snapshot forks a machine whose RNG streams replay the
  // donor's exactly.
  auto from_memory = sim::System::fork(config, snap);
  auto from_disk = sim::System::fork(config, *loaded.snapshot);
  for (int stream = 0; stream < 4; ++stream) {
    Rng a = from_memory->fork_rng();
    Rng b = from_disk->fork_rng();
    for (int draw = 0; draw < 8; ++draw) EXPECT_EQ(a.next_u64(), b.next_u64());
  }

  EXPECT_EQ(sim::deserialize_snapshot(shape, bytes, 78).status,
            io::FrameStatus::kConfigMismatch);
  EXPECT_EQ(sim::deserialize_snapshot(shape, bytes.substr(0, 40), 77).status,
            io::FrameStatus::kTruncated);
  std::string corrupted = bytes;
  corrupted[bytes.size() / 2] ^= 0x01;
  EXPECT_EQ(sim::deserialize_snapshot(shape, corrupted, 77).status,
            io::FrameStatus::kBadChecksum);
}

// ---------------------------------------------------------------------------
// TestBed snapshot round trip: the golden-trace property, per AES backend.

std::vector<std::string> to_jsonl(const std::vector<obs::TraceEvent>& events) {
  std::vector<std::string> lines;
  lines.reserve(events.size());
  for (const obs::TraceEvent& event : events)
    lines.push_back(obs::JsonlTraceSink::to_json_line(event));
  return lines;
}

struct EncodedWarmBed {
  std::string bytes;                   ///< wire form of the quiesced bed
  channel::ChannelSetup setup;         ///< discovered channel artifacts
  channel::TestBedSnapshot snapshot;   ///< in-memory reference
};

/// Quickstart-style donor at the golden seed: full channel setup, quiesce,
/// snapshot, encode. Runs under a detached scope so the setup phase cannot
/// perturb the measured forks.
EncodedWarmBed encode_warm_bed(const channel::TestBedConfig& config) {
  obs::TrialScope shield(nullptr);
  channel::TestBed bed(config);
  channel::ChannelSetup setup =
      channel::setup_covert_channel(bed, channel::ChannelConfig{});
  bed.quiesce_environment();
  channel::TestBedSnapshot snap = bed.snapshot();
  io::Writer w;
  sim::System shape(config.system);
  channel::encode_testbed_snapshot(w, shape, snap);
  return EncodedWarmBed{.bytes = w.take(),
                        .setup = std::move(setup),
                        .snapshot = std::move(snap)};
}

/// Measure-phase trace of a fork of `snap`: the deterministic "golden"
/// observable every decoded snapshot must reproduce byte for byte.
std::vector<std::string> fork_trace(const channel::TestBedConfig& config,
                                    const channel::TestBedSnapshot& snap,
                                    const channel::ChannelSetup& setup,
                                    channel::ChannelResult* result = nullptr,
                                    obs::CounterSnapshot* counters = nullptr) {
  channel::TestBed bed(config, snap);
  obs::CollectingSink sink;
  bed.system().hub().set_trace_sink(&sink);
  const channel::ChannelResult r = channel::transfer_covert_channel(
      bed, channel::ChannelConfig{}, channel::alternating_bits(12), setup);
  bed.system().hub().set_trace_sink(nullptr);
  if (result != nullptr) *result = r;
  if (counters != nullptr) *counters = bed.system().hub().registry().snapshot();
  return to_jsonl(sink.events());
}

class SerializedForkBackend : public ::testing::TestWithParam<std::string> {};

std::vector<std::string> runnable_backends() {
  std::vector<std::string> names;
  for (const std::string& name : crypto::aes_backend_names())
    if (crypto::aes_backend_available(name)) names.push_back(name);
  return names;  // includes "auto"
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SerializedForkBackend,
                         ::testing::ValuesIn(runnable_backends()),
                         [](const auto& info) { return info.param; });

// The whole point of the setup store: encode → decode → fork must be
// observationally identical to forking the in-memory snapshot, down to the
// last trace byte — under every host AES backend, since a stored snapshot
// may be loaded on a host that picks a different one.
TEST_P(SerializedForkBackend, DecodedForkReplaysGoldenTraceByteForByte) {
  channel::TestBedConfig config = channel::default_testbed_config(1);
  config.system.mee.aes_backend = GetParam();
  const EncodedWarmBed donor = encode_warm_bed(config);

  sim::System shape(config.system);
  io::Reader r(donor.bytes);
  const channel::TestBedSnapshot decoded =
      channel::decode_testbed_snapshot(r, shape);
  r.expect_done();

  channel::ChannelResult reference_result, decoded_result;
  obs::CounterSnapshot reference_counters, decoded_counters;
  const auto reference = fork_trace(config, donor.snapshot, donor.setup,
                                    &reference_result, &reference_counters);
  const auto replayed = fork_trace(config, decoded, donor.setup,
                                   &decoded_result, &decoded_counters);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(replayed, reference);
  EXPECT_EQ(decoded_counters, reference_counters);
  EXPECT_EQ(decoded_result.received, reference_result.received);
  EXPECT_EQ(decoded_result.probe_times, reference_result.probe_times);
  EXPECT_EQ(decoded_result.transfer_cycles, reference_result.transfer_cycles);

  // Re-encoding the decoded snapshot reproduces the wire bytes exactly.
  io::Writer again;
  channel::encode_testbed_snapshot(again, shape, decoded);
  EXPECT_EQ(again.data(), donor.bytes);
}

// The AES backend is host-side only: the simulated state — and so its
// canonical encoding — must be byte-identical whichever backend built it.
TEST(SerializedFork, WireBytesAreBackendInvariant) {
  std::string reference;
  std::string reference_backend;
  for (const std::string& backend : runnable_backends()) {
    channel::TestBedConfig config = channel::default_testbed_config(1);
    config.system.mee.aes_backend = backend;
    const std::string bytes = encode_warm_bed(config).bytes;
    if (reference.empty()) {
      reference = bytes;
      reference_backend = backend;
    } else {
      EXPECT_EQ(bytes, reference)
          << backend << " encodes differently than " << reference_backend;
    }
  }
  ASSERT_FALSE(reference.empty());
}

}  // namespace
}  // namespace meecc
