// Tests for the beyond-paper extensions: the multilinear MAC, the
// performance-counter detector, reliable transfer end-to-end, and the
// EPC-fragmentation sensitivity of the attack.
#include <gtest/gtest.h>

#include "channel/covert_channel.h"
#include "channel/detector.h"
#include "channel/eviction_set.h"
#include "channel/transport.h"
#include "common/check.h"
#include "common/rng.h"
#include "crypto/multilinear_mac.h"
#include "mee/engine.h"
#include "sim/noise.h"

namespace meecc {
namespace {

using channel::TestBed;
using channel::TestBedConfig;

TestBedConfig fast_config(std::uint64_t seed = 42) {
  TestBedConfig config = channel::default_testbed_config(seed);
  config.system.address_map.general_size = 32ull << 20;
  config.system.address_map.epc_size = 16ull << 20;
  config.system.mee.functional_crypto = false;
  config.noise_enclave_bytes = 2ull << 20;
  config.background_enclave_bytes = 1ull << 20;
  return config;
}

// ------------------------------------------------------- multilinear MAC --

crypto::Key128 test_key() {
  return crypto::Key128{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
}

std::array<std::uint8_t, 64> random_line(Rng& rng) {
  std::array<std::uint8_t, 64> line{};
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.next_below(256));
  return line;
}

TEST(MultilinearMac, TagIs56BitsAndDeterministic) {
  const crypto::MultilinearMac mac(test_key());
  Rng rng(1);
  const auto data = random_line(rng);
  const auto t1 = mac.tag(0x1000, 7, data);
  const auto t2 = mac.tag(0x1000, 7, data);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1 & ~crypto::kMacMask, 0u);
}

TEST(MultilinearMac, AnySingleBitFlipBreaksTag) {
  const crypto::MultilinearMac mac(test_key());
  Rng rng(2);
  auto data = random_line(rng);
  const auto tag = mac.tag(0xabc, 42, data);
  for (int trial = 0; trial < 64; ++trial) {
    const auto byte = rng.next_below(data.size());
    const auto bit = rng.next_below(8);
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_FALSE(mac.verify(0xabc, 42, data, tag));
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);
  }
}

TEST(MultilinearMac, ContextBindsAddressAndVersion) {
  const crypto::MultilinearMac mac(test_key());
  Rng rng(3);
  const auto data = random_line(rng);
  const auto tag = mac.tag(0xabc, 42, data);
  EXPECT_FALSE(mac.verify(0xabd, 42, data, tag));
  EXPECT_FALSE(mac.verify(0xabc, 43, data, tag));
  EXPECT_TRUE(mac.verify(0xabc, 42, data, tag));
}

TEST(MultilinearMac, PadsDifferAcrossNonces) {
  // Carter-Wegman soundness depends on fresh pads: the same message under
  // two different (address, version) nonces must produce unrelated tags.
  const crypto::MultilinearMac mac(test_key());
  const std::array<std::uint8_t, 64> zero{};
  std::set<std::uint64_t> tags;
  for (std::uint64_t v = 0; v < 64; ++v) tags.insert(mac.tag(0x40, v, zero));
  EXPECT_EQ(tags.size(), 64u);
}

TEST(MultilinearMac, DiffersFromCbcMac) {
  const auto ml = crypto::make_mac_scheme(crypto::MacKind::kMultilinear,
                                          test_key());
  const auto cbc = crypto::make_mac_scheme(crypto::MacKind::kCbcMac,
                                           test_key());
  Rng rng(4);
  const auto data = random_line(rng);
  EXPECT_NE(ml->tag(1, 2, data), cbc->tag(1, 2, data));
}

TEST(MultilinearMac, EngineTamperDetectionStillWorks) {
  // The engine's default MAC is the multilinear scheme; the full tamper
  // path must still trip on ciphertext corruption.
  const mem::AddressMap map(
      mem::AddressMapConfig{.general_size = 4ull << 20, .epc_size = 4ull << 20});
  mem::PhysicalMemory memory;
  mee::MeeConfig config;
  ASSERT_EQ(config.mac_kind, crypto::MacKind::kMultilinear);
  mee::MeeEngine engine(map, memory, config, Rng(5));
  const PhysAddr addr = map.protected_data().base + 0x2000;
  mem::Line line;
  line.fill(0x5a);
  engine.write_line(CoreId{0}, addr, line);
  auto raw = memory.read_line(addr);
  raw[3] ^= 0x10;
  memory.write_line(addr, raw);
  EXPECT_THROW(engine.read_line(CoreId{0}, addr), mee::TamperDetected);
}

// ------------------------------------------------------ reliable transfer --

TEST(ReliableTransfer, DeliversIntactThroughMeeNoise) {
  TestBedConfig config = fast_config(31);
  config.noise = channel::NoiseEnv::kMeeStride512;
  config.noise_autostart = false;
  TestBed bed(config);

  const auto setup = channel::setup_covert_channel(bed, channel::ChannelConfig{});
  bed.start_noise();

  std::vector<std::uint8_t> message;
  for (const char c : std::string("SGX sealing key: 0123456789abcdef"))
    message.push_back(static_cast<std::uint8_t>(c));

  // Heavy MEE co-tenant noise (~3 % raw BER) needs the repetition-3 inner
  // code on top of Hamming(7,4).
  channel::TransportConfig transport;
  transport.repetition = 3;
  transport.max_attempts = 4;
  const auto result = channel::run_reliable_transfer(
      bed, channel::ChannelConfig{}, message, setup, transport);

  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.payload, message);
  // The raw channel DID have errors under MEE noise (otherwise this test
  // proves nothing) and the code corrected them. (Corrected count can be
  // slightly below the raw count: flips landing in the zero-padding tail
  // are outside any codeword.)
  EXPECT_GT(result.raw_bit_errors + result.corrected_bits, 0u);
  EXPECT_LE(result.attempts, 3);
}

TEST(ReliableTransfer, NetRateIsFourSevenths) {
  TestBed bed(fast_config(32));
  const auto setup = channel::setup_covert_channel(bed, channel::ChannelConfig{});
  const std::vector<std::uint8_t> message(48, 0x3c);
  const auto result = channel::run_reliable_transfer(
      bed, channel::ChannelConfig{}, message, setup);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.attempts, 1);
  // 35 KBps raw → ~19 KBps net of Hamming(7,4) + header overhead.
  EXPECT_GT(result.payload_kilobytes_per_second, 15.0);
  EXPECT_LT(result.payload_kilobytes_per_second, 21.0);
}

// --------------------------------------------------------------- detector --

TEST(Detector, FlagsTheCovertChannel) {
  TestBed bed(fast_config(33));
  const auto setup = channel::setup_covert_channel(bed, channel::ChannelConfig{});

  channel::Detector detector(bed, channel::DetectorConfig{});
  detector.start();
  (void)channel::transfer_covert_channel(bed, channel::ChannelConfig{},
                                         channel::random_bits(256, 1), setup);
  const auto report = detector.stop();
  // The channel is stealthy by miss RATIO (the trojan's pass is mostly
  // versions hits!) but cannot hide its per-set eviction concentration.
  EXPECT_TRUE(report.flagged);
  EXPECT_TRUE(report.flagged_by_concentration);
  EXPECT_GT(report.suspicious_epochs, 10u);
}

TEST(Detector, QuietOnLocalityFriendlyWorkload) {
  TestBed bed(fast_config(34));
  channel::Detector detector(bed, channel::DetectorConfig{});
  detector.start();

  // A 64 B-stride walker: ~7/8 versions hits — low miss ratio.
  sim::Actor& actor = bed.spy();
  bed.scheduler().spawn(sim::mee_stride_walker(
      actor, sim::StrideWalkerConfig{.base = bed.spy_enclave().base(),
                                     .bytes = bed.spy_enclave().size(),
                                     .stride = 64,
                                     .gap = 600}));
  bed.scheduler().run_until(4'000'000);
  const auto report = detector.stop();
  EXPECT_FALSE(report.flagged);
  EXPECT_GT(report.epochs, 25u);
}

TEST(Detector, FalsePositiveOnStreamingCoTenant) {
  // The classic weakness of counter thresholds: an innocent co-tenant
  // streaming fresh integrity-tree data looks exactly like an attack.
  TestBed bed(fast_config(35));
  channel::Detector detector(bed, channel::DetectorConfig{});
  detector.start();
  bed.scheduler().spawn(sim::mee_stride_walker(
      bed.spy(), sim::StrideWalkerConfig{.base = bed.spy_enclave().base(),
                                         .bytes = bed.spy_enclave().size(),
                                         .stride = 4096,
                                         .gap = 600}));
  bed.scheduler().run_until(4'000'000);
  const auto report = detector.stop();
  EXPECT_TRUE(report.flagged);
}

TEST(Detector, LifecycleChecks) {
  TestBed bed(fast_config(36));
  channel::Detector detector(bed, channel::DetectorConfig{});
  EXPECT_THROW(detector.stop(), CheckFailure);  // never started
  detector.start();
  EXPECT_THROW(detector.start(), CheckFailure);  // double start
}

// -------------------------------------------------------- EPC placement ---

TEST(EpcPlacement, FragmentedEpcStillYieldsEvictionSets) {
  // The paper builds candidate sets assuming driver-style contiguous EPC
  // allocation. With a fully randomized (fragmented) EPC the alias-group
  // structure disappears, but Algorithm 1 is timing-driven and still finds
  // same-set conflicts — the index set just stops being evenly distributed.
  TestBedConfig config = fast_config(37);
  config.system.epc_placement = mem::EpcPlacement::kRandomized;
  TestBed bed(config);

  channel::EvictionSetConfig ev_config;
  ev_config.candidate_pages = 96;
  const auto result = channel::find_eviction_set(bed, ev_config);
  EXPECT_TRUE(result.found_test_address);
  // All recovered addresses must still truly conflict with the test line.
  auto& system = bed.system();
  const auto& geometry = system.mee().geometry();
  const auto cache_geom = system.mee().cache().geometry();
  const auto set_of = [&](VirtAddr va) {
    const PhysAddr pa = bed.trojan().vas().translate(va);
    return cache_geom.set_index(
        geometry.versions_line_addr(geometry.chunk_of(pa)));
  };
  const auto target = set_of(result.test_address);
  for (const VirtAddr addr : result.eviction_set)
    EXPECT_EQ(set_of(addr), target);
  EXPECT_GE(result.associativity(), 6u);
  EXPECT_LE(result.associativity(), 8u);
}

}  // namespace
}  // namespace meecc
