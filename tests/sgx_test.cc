#include <gtest/gtest.h>

#include "common/check.h"
#include "sgx/enclave.h"
#include "sim/actor.h"
#include "sim/system.h"

namespace meecc::sgx {
namespace {

sim::SystemConfig small_system_config() {
  sim::SystemConfig config;
  config.address_map.general_size = 8ull << 20;
  config.address_map.epc_size = 4ull << 20;
  return config;
}

class EnclaveTest : public ::testing::Test {
 protected:
  EnclaveTest()
      : system_(small_system_config()),
        owner_(system_, CoreId{0}, CpuMode::kEnclave) {}

  sim::System system_;
  sim::Actor owner_;
};

TEST_F(EnclaveTest, BuildsWithContiguousFrames) {
  Enclave enclave(owner_, EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                        16 * kPageSize});
  EXPECT_EQ(enclave.page_count(), 16u);
  for (std::uint64_t p = 1; p < enclave.page_count(); ++p)
    EXPECT_EQ(enclave.frame(p) - enclave.frame(p - 1), kPageSize);
}

TEST_F(EnclaveTest, MapsIntoOwnerAddressSpace) {
  Enclave enclave(owner_, EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                        4 * kPageSize});
  for (std::uint64_t p = 0; p < 4; ++p) {
    const PhysAddr translated =
        owner_.vas().translate(enclave.base() + p * kPageSize);
    EXPECT_EQ(translated.raw, enclave.frame(p).raw);
  }
}

TEST_F(EnclaveTest, FramesComeFromProtectedRegion) {
  Enclave enclave(owner_, EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                        8 * kPageSize});
  for (std::uint64_t p = 0; p < enclave.page_count(); ++p) {
    EXPECT_EQ(system_.map().classify(enclave.frame(p)),
              mem::RegionKind::kProtectedData);
  }
}

TEST_F(EnclaveTest, TwoEnclavesGetDisjointFrames) {
  Enclave a(owner_, EnclaveConfig{VirtAddr{0x7000'0000'0000}, 8 * kPageSize});
  sim::Actor other(system_, CoreId{1}, CpuMode::kEnclave);
  Enclave b(other, EnclaveConfig{VirtAddr{0x7000'0000'0000}, 8 * kPageSize});
  for (std::uint64_t i = 0; i < a.page_count(); ++i)
    for (std::uint64_t j = 0; j < b.page_count(); ++j)
      EXPECT_NE(a.frame(i).raw, b.frame(j).raw);
}

TEST_F(EnclaveTest, AddressHelperBoundsChecked) {
  Enclave enclave(owner_, EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                        2 * kPageSize});
  EXPECT_EQ(enclave.address(0).raw, enclave.base().raw);
  EXPECT_EQ(enclave.address(2 * kPageSize - 1).raw,
            enclave.base().raw + 2 * kPageSize - 1);
  EXPECT_THROW(enclave.address(2 * kPageSize), CheckFailure);
}

TEST_F(EnclaveTest, RejectsBadConfig) {
  EXPECT_THROW(Enclave(owner_, EnclaveConfig{VirtAddr{0x7000'0000'0001},
                                             kPageSize}),
               CheckFailure);
  EXPECT_THROW(Enclave(owner_, EnclaveConfig{VirtAddr{0x7000'0000'0000}, 0}),
               CheckFailure);
  EXPECT_THROW(Enclave(owner_, EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                             kPageSize + 1}),
               CheckFailure);
}

TEST_F(EnclaveTest, EpcExhaustionSurfaces) {
  EXPECT_THROW(Enclave(owner_, EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                             8ull << 20}),  // > 4 MB EPC
               CheckFailure);
}

}  // namespace
}  // namespace meecc::sgx
