#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "mem/address_map.h"
#include "mem/dram.h"
#include "mem/frame_allocator.h"
#include "mem/page_table.h"
#include "mem/physical_memory.h"

namespace meecc::mem {
namespace {

AddressMapConfig small_map_config() {
  return AddressMapConfig{.general_size = 8ull << 20, .epc_size = 4ull << 20};
}

TEST(AddressMap, RegionsAreContiguousAndDisjoint) {
  const AddressMap map(small_map_config());
  EXPECT_EQ(map.general().base.raw, 0u);
  EXPECT_EQ(map.protected_data().base.raw, map.general().end().raw);
  EXPECT_EQ(map.mee_metadata().base.raw, map.protected_data().end().raw);
}

TEST(AddressMap, ClassifyEachRegion) {
  const AddressMap map(small_map_config());
  EXPECT_EQ(map.classify(PhysAddr{0}), RegionKind::kGeneral);
  EXPECT_EQ(map.classify(map.protected_data().base), RegionKind::kProtectedData);
  EXPECT_EQ(map.classify(map.protected_data().end() - 1),
            RegionKind::kProtectedData);
  EXPECT_EQ(map.classify(map.mee_metadata().base), RegionKind::kMeeMetadata);
  EXPECT_EQ(map.classify(map.dram_end()), RegionKind::kUnmapped);
}

TEST(AddressMap, MetadataSizeCoversTree) {
  // 4 MB EPC: 8192 chunks ⇒ versions+tags = 8192*128 B = 1 MB;
  // L0 = 1024 node lines, L1 = 128, L2 = 16, each with a spare slot
  // ⇒ + (1024+128+16)*128 B.
  EXPECT_EQ(metadata_bytes_for_epc(4ull << 20),
            (8192ull * 128) + (1024 + 128 + 16) * 128);
}

TEST(AddressMap, FrameIndexRoundTrips) {
  const AddressMap map(small_map_config());
  for (const std::uint64_t i :
       std::vector<std::uint64_t>{0, 1, 17, map.epc_frame_count() - 1}) {
    const PhysAddr base = map.epc_frame_base(i);
    EXPECT_EQ(map.epc_frame_index(base), i);
    EXPECT_EQ(map.epc_frame_index(base + kPageSize - 1), i);
  }
}

TEST(AddressMap, ChunkIndexWithinProtectedRegion) {
  const AddressMap map(small_map_config());
  const PhysAddr base = map.protected_data().base;
  EXPECT_EQ(map.chunk_index(base), 0u);
  EXPECT_EQ(map.chunk_index(base + kChunkSize), 1u);
  EXPECT_EQ(map.chunk_index(base + kChunkSize - 1), 0u);
  EXPECT_EQ(map.chunk_index(base + kPageSize), kChunksPerPage);
}

TEST(AddressMap, RejectsUnalignedSizes) {
  AddressMapConfig config;
  config.epc_size = 4096 + 1;
  EXPECT_THROW(AddressMap{config}, CheckFailure);
}

TEST(PhysicalMemory, ZeroFilledOnFirstTouch) {
  PhysicalMemory memory;
  const Line line = memory.read_line(PhysAddr{0x1000});
  for (auto b : line) EXPECT_EQ(b, 0);
  EXPECT_EQ(memory.resident_lines(), 0u);
}

TEST(PhysicalMemory, WriteReadRoundTrip) {
  PhysicalMemory memory;
  Line line{};
  for (std::size_t i = 0; i < line.size(); ++i)
    line[i] = static_cast<std::uint8_t>(i * 3);
  memory.write_line(PhysAddr{0x40}, line);
  EXPECT_EQ(memory.read_line(PhysAddr{0x40}), line);
  EXPECT_EQ(memory.read_line(PhysAddr{0x7f}), line);  // same line
  EXPECT_EQ(memory.resident_lines(), 1u);
}

TEST(PhysicalMemory, U64Accessors) {
  PhysicalMemory memory;
  memory.write_u64(PhysAddr{0x108}, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(memory.read_u64(PhysAddr{0x108}), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(memory.read_u64(PhysAddr{0x100}), 0u);  // neighbours untouched
}

TEST(PhysicalMemory, CrossLineByteAccessRejected) {
  PhysicalMemory memory;
  EXPECT_THROW(memory.read_u64(PhysAddr{0x3c + 0x40}), CheckFailure);
}

TEST(Dram, LatencyStaysNearBase) {
  DramConfig config;
  Dram dram(config, Rng(1));
  RunningStats stats;
  for (Cycles t = 0; t < 3'000'000; t += 3000)
    stats.add(static_cast<double>(dram.access_latency(t)));
  EXPECT_NEAR(stats.mean(), static_cast<double>(config.base_latency), 18.0);
  EXPECT_GT(stats.stddev(), 5.0);
  EXPECT_GT(stats.max(), stats.mean() + 50.0);  // spikes exist
}

TEST(Dram, DriftIsDeterministicSmoothAndBounded) {
  DramConfig config;
  const Dram dram(config, Rng(2));
  const Dram dram2(config, Rng(99));
  double prev = dram.drift_at(0);
  for (Cycles t = 0; t < 40'000'000; t += 10'000) {
    const double d = dram.drift_at(t);
    EXPECT_EQ(d, dram2.drift_at(t));  // independent of RNG
    EXPECT_LE(std::abs(d),
              config.drift_amplitude + config.fast_wander_amplitude + 1e-9);
    EXPECT_LT(std::abs(d - prev), 12.0);  // smooth at 10k-cycle scale
    prev = d;
  }
}

TEST(Dram, DriftActuallyWanders) {
  const Dram dram(DramConfig{}, Rng(3));
  double lo = 0, hi = 0;
  for (Cycles t = 0; t < 40'000'000; t += 10'000) {
    lo = std::min(lo, dram.drift_at(t));
    hi = std::max(hi, dram.drift_at(t));
  }
  EXPECT_LT(lo, -20.0);
  EXPECT_GT(hi, 20.0);
}

TEST(PageTable, MapTranslateRoundTrip) {
  VirtualAddressSpace vas;
  vas.map_page(VirtAddr{0x7000'0000'0000}, PhysAddr{0x20'0000});
  const PhysAddr p = vas.translate(VirtAddr{0x7000'0000'0123});
  EXPECT_EQ(p.raw, 0x20'0123u);
  EXPECT_TRUE(vas.is_mapped(VirtAddr{0x7000'0000'0fff}));
  EXPECT_FALSE(vas.is_mapped(VirtAddr{0x7000'0000'1000}));
}

TEST(PageTable, UnmappedTranslateThrows) {
  VirtualAddressSpace vas;
  EXPECT_THROW(vas.translate(VirtAddr{0x1234'5000}), CheckFailure);
  EXPECT_EQ(vas.try_translate(VirtAddr{0x1234'5000}), std::nullopt);
}

TEST(PageTable, DoubleMapRejected) {
  VirtualAddressSpace vas;
  vas.map_page(VirtAddr{0x1000}, PhysAddr{0x2000});
  EXPECT_THROW(vas.map_page(VirtAddr{0x1000}, PhysAddr{0x3000}), CheckFailure);
}

TEST(PageTable, UnalignedMapRejected) {
  VirtualAddressSpace vas;
  EXPECT_THROW(vas.map_page(VirtAddr{0x1001}, PhysAddr{0x2000}), CheckFailure);
  EXPECT_THROW(vas.map_page(VirtAddr{0x1000}, PhysAddr{0x2004}), CheckFailure);
}

TEST(EpcAllocator, ContiguousHandsOutSequentialFrames) {
  const AddressMap map(small_map_config());
  EpcAllocator alloc(map, EpcPlacement::kContiguous, Rng(1));
  PhysAddr prev = alloc.allocate_frame();
  EXPECT_EQ(prev.raw, map.protected_data().base.raw);
  for (int i = 0; i < 32; ++i) {
    const PhysAddr next = alloc.allocate_frame();
    EXPECT_EQ(next - prev, kPageSize);
    prev = next;
  }
}

TEST(EpcAllocator, RandomizedPermutesFrames) {
  const AddressMap map(small_map_config());
  EpcAllocator alloc(map, EpcPlacement::kRandomized, Rng(1));
  std::set<std::uint64_t> seen;
  bool sequential = true;
  PhysAddr prev{0};
  for (std::uint64_t i = 0; i < map.epc_frame_count(); ++i) {
    const PhysAddr f = alloc.allocate_frame();
    EXPECT_TRUE(map.protected_data().contains(f));
    EXPECT_EQ(f.page_offset(), 0u);
    EXPECT_TRUE(seen.insert(f.raw).second) << "duplicate frame";
    if (i > 0 && f - prev != kPageSize) sequential = false;
    prev = f;
  }
  EXPECT_FALSE(sequential);
  EXPECT_EQ(seen.size(), map.epc_frame_count());
}

TEST(EpcAllocator, ExhaustionThrows) {
  const AddressMap map(small_map_config());
  EpcAllocator alloc(map, EpcPlacement::kContiguous, Rng(1));
  for (std::uint64_t i = 0; i < map.epc_frame_count(); ++i)
    alloc.allocate_frame();
  EXPECT_EQ(alloc.frames_remaining(), 0u);
  EXPECT_THROW(alloc.allocate_frame(), CheckFailure);
}

TEST(GeneralAllocator, BumpsThroughRegion) {
  const AddressMap map(small_map_config());
  GeneralAllocator alloc(map);
  const PhysAddr a = alloc.allocate_frame();
  const PhysAddr b = alloc.allocate_frame();
  EXPECT_EQ(a.raw, 0u);
  EXPECT_EQ(b - a, kPageSize);
  EXPECT_EQ(alloc.frames_remaining(), (8ull << 20) / kPageSize - 2);
}

}  // namespace
}  // namespace meecc::mem
