#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <vector>

#include "common/check.h"
#include "sgx/enclave.h"
#include "sim/actor.h"
#include "sim/des.h"
#include "sim/noise.h"
#include "sim/system.h"
#include "sim/timer.h"

namespace meecc::sim {
namespace {

SystemConfig small_system_config(std::uint64_t seed = 1) {
  SystemConfig config;
  config.seed = seed;
  config.cores = 4;
  config.address_map.general_size = 16ull << 20;
  config.address_map.epc_size = 8ull << 20;
  return config;
}

// ---------------------------------------------------------------- kernel --

Process record_ticks(Scheduler& scheduler, std::vector<Cycles>* out,
                     Cycles period, int count) {
  for (int i = 0; i < count; ++i) {
    co_await WakeAt{scheduler, scheduler.now() + period};
    out->push_back(scheduler.now());
  }
}

TEST(Des, EventsFireInTimeOrder) {
  Scheduler scheduler;
  std::vector<Cycles> a, b;
  scheduler.spawn(record_ticks(scheduler, &a, 100, 5));
  scheduler.spawn(record_ticks(scheduler, &b, 70, 5));
  scheduler.run_to_completion();
  EXPECT_EQ(a, (std::vector<Cycles>{100, 200, 300, 400, 500}));
  EXPECT_EQ(b, (std::vector<Cycles>{70, 140, 210, 280, 350}));
}

TEST(Des, RunUntilStopsAtHorizon) {
  Scheduler scheduler;
  std::vector<Cycles> ticks;
  scheduler.spawn(record_ticks(scheduler, &ticks, 100, 10));
  scheduler.run_until(350);
  EXPECT_EQ(ticks.size(), 3u);
  EXPECT_EQ(scheduler.now(), 300u);
  scheduler.run_to_completion();
  EXPECT_EQ(ticks.size(), 10u);
}

TEST(Des, StepDispatchesOneEvent) {
  Scheduler scheduler;
  std::vector<Cycles> ticks;
  scheduler.spawn(record_ticks(scheduler, &ticks, 10, 3));
  EXPECT_TRUE(scheduler.step());  // initial resume enters the loop
  EXPECT_TRUE(scheduler.step());
  EXPECT_EQ(ticks.size(), 1u);
  while (scheduler.step()) {
  }
  EXPECT_EQ(ticks.size(), 3u);
  EXPECT_FALSE(scheduler.step());
}

Process throwing_agent(Scheduler& scheduler) {
  co_await WakeAt{scheduler, 50};
  throw std::runtime_error("agent exploded");
}

TEST(Des, AgentExceptionPropagatesToDriver) {
  Scheduler scheduler;
  scheduler.spawn(throwing_agent(scheduler));
  EXPECT_THROW(scheduler.run_to_completion(), std::runtime_error);
}

Task<int> child_task(Scheduler& scheduler, Cycles delay) {
  co_await WakeAt{scheduler, scheduler.now() + delay};
  co_return 41;
}

Process parent_with_child(Scheduler& scheduler, int* out) {
  const int v = co_await child_task(scheduler, 30);
  *out = v + 1;
}

TEST(Des, TaskReturnsValueToParent) {
  Scheduler scheduler;
  int out = 0;
  scheduler.spawn(parent_with_child(scheduler, &out));
  scheduler.run_to_completion();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(scheduler.now(), 30u);
}

Task<> throwing_task() {
  throw std::logic_error("task failed");
  co_return;  // unreachable; makes this a coroutine
}

Process parent_catches(Scheduler& scheduler, bool* caught) {
  co_await WakeAt{scheduler, 1};
  try {
    co_await throwing_task();
  } catch (const std::logic_error&) {
    *caught = true;
  }
}

TEST(Des, TaskExceptionCatchableInParent) {
  Scheduler scheduler;
  bool caught = false;
  scheduler.spawn(parent_catches(scheduler, &caught));
  scheduler.run_to_completion();
  EXPECT_TRUE(caught);
}

TEST(Des, UnspawnedProcessCleansUp) {
  Scheduler scheduler;
  std::vector<Cycles> ticks;
  { const Process p = record_ticks(scheduler, &ticks, 10, 3); }
  EXPECT_TRUE(ticks.empty());  // never ran, no leak (ASAN would catch)
}

TEST(Des, FinishedProcessesArePruned) {
  Scheduler scheduler;
  EXPECT_EQ(scheduler.live_processes(), 0u);
  std::vector<Cycles> ticks;
  for (int i = 0; i < 1000; ++i)
    scheduler.spawn(record_ticks(scheduler, &ticks, 1, 2));
  EXPECT_EQ(scheduler.live_processes(), 1000u);
  scheduler.run_to_completion();
  EXPECT_EQ(ticks.size(), 2000u);
  EXPECT_EQ(scheduler.live_processes(), 0u);  // all reclaimed, not retained
}

TEST(Des, ExceptionStillPropagatesAfterManyCompletions) {
  // The O(1) completion path must not lose agent errors: an agent that dies
  // after thousands of other agents have come and gone still surfaces.
  Scheduler scheduler;
  std::vector<Cycles> scratch;
  for (int i = 0; i < 2000; ++i)
    scheduler.spawn(record_ticks(scheduler, &scratch, 1, 1));
  scheduler.spawn(throwing_agent(scheduler));  // throws at t=50
  EXPECT_THROW(scheduler.run_to_completion(), std::runtime_error);
  EXPECT_EQ(scheduler.live_processes(), 0u);
}

TEST(Des, DispatchCostIndependentOfHistoricalSpawns) {
  // Regression guard for the old dispatch(), which scanned every handle the
  // scheduler had EVER spawned after each event (O(events × processes)).
  // Time a fixed-size dispatch workload after a small and a large number of
  // historical (completed) spawns; the costs must be comparable.
  const auto timed_run = [](int history) {
    Scheduler scheduler;
    std::vector<Cycles> scratch;
    for (int i = 0; i < history; ++i)
      scheduler.spawn(record_ticks(scheduler, &scratch, 1, 1));
    scheduler.run_to_completion();
    std::vector<Cycles> ticks;
    scheduler.spawn(record_ticks(scheduler, &ticks, 1, 20'000));
    const auto start = std::chrono::steady_clock::now();
    scheduler.run_to_completion();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const double small_history = timed_run(16);
  const double large_history = timed_run(20'000);
  // With the scanning dispatch this ratio is in the hundreds; 8x plus an
  // absolute 10 ms slack absorbs timer noise on loaded CI machines.
  EXPECT_LT(large_history, small_history * 8.0 + 0.01);
}

// ---------------------------------------------------------------- system --

class SystemTest : public ::testing::Test {
 protected:
  SystemTest() : system_(small_system_config()) {}
  System system_;
};

Process single_reader(Actor& actor, VirtAddr addr, AccessResult* out,
                      bool* done) {
  *out = co_await actor.read(addr);
  *done = true;
}

TEST_F(SystemTest, GeneralAccessLatencyIsDramPlusLookup) {
  Actor actor(system_, CoreId{0}, CpuMode::kNonEnclave);
  const VirtAddr buffer =
      map_general_buffer(actor, VirtAddr{0x1000'0000}, kPageSize);
  AccessResult result;
  bool done = false;
  system_.scheduler().spawn(single_reader(actor, buffer, &result, &done));
  system_.scheduler().run_to_completion();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.cache_level, cache::HitLevel::kMemory);
  EXPECT_FALSE(result.mee_level.has_value());
  EXPECT_NEAR(static_cast<double>(result.latency), 280.0 + 44.0, 120.0);
}

TEST_F(SystemTest, ProtectedAccessGoesThroughMee) {
  Actor actor(system_, CoreId{0}, CpuMode::kEnclave);
  sgx::Enclave enclave(actor, sgx::EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                                 64 * kPageSize});
  AccessResult result;
  bool done = false;
  system_.scheduler().spawn(
      single_reader(actor, enclave.address(0), &result, &done));
  system_.scheduler().run_to_completion();
  ASSERT_TRUE(result.mee_level.has_value());
  EXPECT_EQ(*result.mee_level, mee::Level::kRoot);  // cold walk
  EXPECT_GT(result.latency, 600u);
}

Process hit_then_flush_then_miss(Actor& actor, VirtAddr addr,
                                 std::vector<cache::HitLevel>* levels,
                                 bool* done) {
  levels->push_back((co_await actor.read(addr)).cache_level);
  levels->push_back((co_await actor.read(addr)).cache_level);
  co_await actor.clflush(addr);
  levels->push_back((co_await actor.read(addr)).cache_level);
  *done = true;
}

TEST_F(SystemTest, ClflushForcesNextAccessToMemory) {
  Actor actor(system_, CoreId{1}, CpuMode::kEnclave);
  sgx::Enclave enclave(actor, sgx::EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                                 16 * kPageSize});
  std::vector<cache::HitLevel> levels;
  bool done = false;
  system_.scheduler().spawn(
      hit_then_flush_then_miss(actor, enclave.address(64), &levels, &done));
  system_.scheduler().run_to_completion();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], cache::HitLevel::kMemory);
  EXPECT_EQ(levels[1], cache::HitLevel::kL1);
  EXPECT_EQ(levels[2], cache::HitLevel::kMemory);
}

Process versions_hit_probe(Actor& actor, VirtAddr addr,
                           std::vector<mee::StopLevel>* levels, bool* done) {
  co_await actor.read(addr);
  co_await actor.clflush(addr);
  const auto r = co_await actor.read(addr);
  levels->push_back(*r.mee_level);
  *done = true;
}

TEST_F(SystemTest, ClflushDoesNotTouchMeeCache) {
  // The attack's core asymmetry (§3 challenge 1): after clflush the access
  // reaches DRAM again, but the versions line is still cached in the MEE.
  Actor actor(system_, CoreId{0}, CpuMode::kEnclave);
  sgx::Enclave enclave(actor, sgx::EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                                 16 * kPageSize});
  std::vector<mee::StopLevel> levels;
  bool done = false;
  system_.scheduler().spawn(
      versions_hit_probe(actor, enclave.address(0), &levels, &done));
  system_.scheduler().run_to_completion();
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0], mee::Level::kVersions);
}

Process writer_then_reader(Actor& writer, Actor& reader, VirtAddr waddr,
                           VirtAddr raddr, mem::Line payload, mem::Line* out,
                           bool* done) {
  co_await writer.write(waddr, payload);
  *out = (co_await reader.read(raddr)).data;
  *done = true;
}

TEST_F(SystemTest, DataVisibleAcrossEnclaveSharers) {
  // Two threads of the same enclave (same VAS would be ideal; here the
  // second actor maps the same frames) observe each other's plaintext.
  Actor writer(system_, CoreId{0}, CpuMode::kEnclave);
  sgx::Enclave enclave(writer, sgx::EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                                  4 * kPageSize});
  Actor reader(system_, CoreId{1}, CpuMode::kEnclave);
  for (std::uint64_t p = 0; p < enclave.page_count(); ++p)
    reader.vas().map_page(enclave.base() + p * kPageSize, enclave.frame(p));

  mem::Line payload;
  payload.fill(0x77);
  mem::Line out{};
  bool done = false;
  system_.scheduler().spawn(writer_then_reader(writer, reader,
                                               enclave.address(128),
                                               enclave.address(128), payload,
                                               &out, &done));
  system_.scheduler().run_to_completion();
  ASSERT_TRUE(done);
  EXPECT_EQ(out, payload);
}

TEST_F(SystemTest, NonEnclaveAccessToEpcFaults) {
  Actor enclave_owner(system_, CoreId{0}, CpuMode::kEnclave);
  sgx::Enclave enclave(enclave_owner,
                       sgx::EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                          4 * kPageSize});
  Actor intruder(system_, CoreId{1}, CpuMode::kNonEnclave);
  intruder.vas().map_page(VirtAddr{0x1000}, enclave.frame(0));

  bool done = false;
  AccessResult result;
  system_.scheduler().spawn(
      single_reader(intruder, VirtAddr{0x1000}, &result, &done));
  EXPECT_THROW(system_.scheduler().run_to_completion(), ModeViolation);
}

// ---------------------------------------------------------------- actors --

TEST_F(SystemTest, RdtscFaultsInEnclaveModeOnly) {
  Actor enclave_actor(system_, CoreId{0}, CpuMode::kEnclave);
  EXPECT_THROW(enclave_actor.read_timer(native_rdtsc_timer()), ModeViolation);
  Actor native_actor(system_, CoreId{1}, CpuMode::kNonEnclave);
  EXPECT_NO_THROW(native_actor.read_timer(native_rdtsc_timer()));
}

TEST_F(SystemTest, OcallTimerCostsThousands) {
  Actor actor(system_, CoreId{0}, CpuMode::kEnclave);
  for (int i = 0; i < 50; ++i) {
    const Cycles before = actor.now();
    actor.read_timer(ocall_timer());
    const Cycles cost = actor.now() - before;
    EXPECT_GE(cost, 8000u);
    EXPECT_LE(cost, 15000u);
  }
}

TEST_F(SystemTest, SharedClockCheapAndMonotonic) {
  Actor actor(system_, CoreId{0}, CpuMode::kEnclave);
  actor.advance(12345);
  Cycles prev = 0;
  for (int i = 0; i < 50; ++i) {
    const Cycles before = actor.now();
    const Cycles value = actor.read_timer(shared_clock_timer());
    EXPECT_EQ(actor.now() - before, 50u);
    EXPECT_LE(value, before);               // stale, never from the future
    EXPECT_GE(value + 20, before);          // stale by < one writer period
    EXPECT_GE(value, prev);
    prev = value;
  }
}

TEST_F(SystemTest, BusyWaitAndMfenceAdvanceClock) {
  Actor actor(system_, CoreId{0}, CpuMode::kEnclave);
  actor.busy_wait_until(1000);
  EXPECT_EQ(actor.now(), 1000u);
  actor.busy_wait_until(500);  // never backwards
  EXPECT_EQ(actor.now(), 1000u);
  actor.mfence();
  EXPECT_GT(actor.now(), 1000u);
}

// ----------------------------------------------------------------- noise --

TEST_F(SystemTest, StrideWalkerGeneratesMeeTraffic) {
  Actor noise(system_, CoreId{2}, CpuMode::kEnclave);
  sgx::Enclave enclave(noise, sgx::EnclaveConfig{VirtAddr{0x7200'0000'0000},
                                                 64 * kPageSize});
  system_.scheduler().spawn(mee_stride_walker(
      noise, StrideWalkerConfig{.base = enclave.base(),
                                .bytes = enclave.size(),
                                .stride = 4096,
                                .gap = 200}));
  system_.scheduler().run_until(200'000);
  EXPECT_GT(system_.mee().stats().reads, 100u);
}

TEST_F(SystemTest, MemoryStressorNeverTouchesMee) {
  Actor noise(system_, CoreId{2}, CpuMode::kNonEnclave);
  const VirtAddr buffer =
      map_general_buffer(noise, VirtAddr{0x2000'0000}, 64 * kPageSize);
  system_.scheduler().spawn(memory_stressor(
      noise, StressorConfig{.base = buffer, .bytes = 64 * kPageSize}));
  system_.scheduler().run_until(200'000);
  EXPECT_EQ(system_.mee().stats().reads, 0u);
  EXPECT_GT(system_.dram().access_count(), 100u);
}

TEST_F(SystemTest, BackgroundActivityRateFollowsMeanGap) {
  Actor bg(system_, CoreId{3}, CpuMode::kEnclave);
  sgx::Enclave enclave(bg, sgx::EnclaveConfig{VirtAddr{0x7300'0000'0000},
                                              64 * kPageSize});
  system_.scheduler().spawn(background_activity(
      bg, BackgroundConfig{.base = enclave.base(),
                           .bytes = enclave.size(),
                           .mean_gap = 20'000}));
  system_.scheduler().run_until(2'000'000);
  const auto reads = system_.mee().stats().reads;
  EXPECT_GT(reads, 50u);   // ~100 expected
  EXPECT_LT(reads, 200u);
}

Process write_then_read(Actor& actor, VirtAddr addr, mem::Line payload,
                        std::vector<AccessResult>* results, bool* done) {
  results->push_back(co_await actor.write(addr, payload));
  co_await actor.clflush(addr);
  results->push_back(co_await actor.read(addr));
  *done = true;
}

TEST_F(SystemTest, EnclaveWritePathEncryptsAndReadsBack) {
  Actor actor(system_, CoreId{0}, CpuMode::kEnclave);
  sgx::Enclave enclave(actor, sgx::EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                                 4 * kPageSize});
  mem::Line payload;
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i ^ 0xa5);
  std::vector<AccessResult> results;
  bool done = false;
  system_.scheduler().spawn(
      write_then_read(actor, enclave.address(0x300), payload, &results, &done));
  system_.scheduler().run_to_completion();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[1].data, payload);
  // The writeback paid the MEE update path on top of the walk.
  EXPECT_GT(results[0].latency, results[1].latency);
  // Simulated DRAM holds ciphertext, not the payload.
  const PhysAddr paddr = actor.vas().translate(enclave.address(0x300));
  EXPECT_NE(system_.memory().read_line(paddr), payload);
}

TEST_F(SystemTest, GeneralWritePathStoresPlaintext) {
  Actor actor(system_, CoreId{1}, CpuMode::kNonEnclave);
  const VirtAddr buffer =
      map_general_buffer(actor, VirtAddr{0x3000'0000}, kPageSize);
  mem::Line payload;
  payload.fill(0x42);
  std::vector<AccessResult> results;
  bool done = false;
  system_.scheduler().spawn(
      write_then_read(actor, buffer + 128, payload, &results, &done));
  system_.scheduler().run_to_completion();
  ASSERT_TRUE(done);
  EXPECT_EQ(results[1].data, payload);
  const PhysAddr paddr = actor.vas().translate(buffer + 128);
  EXPECT_EQ(system_.memory().read_line(paddr), payload);
}

TEST_F(SystemTest, MapGeneralBufferRejectsBadArguments) {
  Actor actor(system_, CoreId{0}, CpuMode::kNonEnclave);
  EXPECT_THROW(map_general_buffer(actor, VirtAddr{0x1001}, kPageSize),
               CheckFailure);
  EXPECT_THROW(map_general_buffer(actor, VirtAddr{0x1000}, kPageSize + 1),
               CheckFailure);
}

TEST_F(SystemTest, MeeContentionDelaysBackToBackArrivals) {
  // Two accesses arriving (nearly) simultaneously from different cores: the
  // second queues behind the engine's service time.
  auto& mee = system_.mee();
  const PhysAddr a = system_.map().protected_data().base;
  const PhysAddr b = system_.map().protected_data().base + 512 * 1024;
  mee.read_line(CoreId{0}, a, nullptr, 1'000'000);
  const auto contended = mee.read_line(CoreId{1}, b, nullptr, 1'000'010);
  mee.mutable_cache().flush_all();
  const auto idle = mee.read_line(CoreId{1}, b, nullptr, 5'000'000);
  EXPECT_GT(contended.extra_latency, idle.extra_latency + 50);
}

TEST(SystemDeterminism, SameSeedSameTrace) {
  for (int run = 0; run < 2; ++run) {
    static std::vector<Cycles> first_latencies;
    System system(small_system_config(7));
    Actor actor(system, CoreId{0}, CpuMode::kEnclave);
    sgx::Enclave enclave(actor, sgx::EnclaveConfig{VirtAddr{0x7000'0000'0000},
                                                   16 * kPageSize});
    std::vector<Cycles> latencies;
    bool done = false;
    auto proc = [](Actor& a, const sgx::Enclave& e, std::vector<Cycles>* out,
                   bool* flag) -> Process {
      for (int i = 0; i < 20; ++i) {
        const auto r = co_await a.read(e.address(i * kPageSize % e.size()));
        out->push_back(r.latency);
        co_await a.clflush(e.address(i * kPageSize % e.size()));
      }
      *flag = true;
    };
    system.scheduler().spawn(proc(actor, enclave, &latencies, &done));
    system.scheduler().run_to_completion();
    if (run == 0)
      first_latencies = latencies;
    else
      EXPECT_EQ(latencies, first_latencies);
  }
}

}  // namespace
}  // namespace meecc::sim
