#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/chart.h"
#include "common/check.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace meecc {
namespace {

TEST(Check, PassingCheckDoesNothing) { EXPECT_NO_THROW(MEECC_CHECK(1 + 1 == 2)); }

TEST(Check, FailingCheckThrowsWithContext) {
  try {
    MEECC_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test"), std::string::npos);
  }
}

TEST(Types, LineGeometryHelpers) {
  const PhysAddr a{kPageSize + 3 * kLineSize + 7};
  EXPECT_EQ(a.line_offset(), 7u);
  EXPECT_EQ(a.line_base().raw, kPageSize + 3 * kLineSize);
  EXPECT_EQ(a.line_index(), kPageSize / kLineSize + 3);
  EXPECT_EQ(a.page_base().raw, kPageSize);
  EXPECT_EQ(a.page_number(), 1u);
  EXPECT_EQ(a.page_offset(), 3 * kLineSize + 7);
}

TEST(Types, StrongAddressArithmetic) {
  const VirtAddr v{100};
  EXPECT_EQ((v + 28).raw, 128u);
  EXPECT_EQ((v + 28) - v, 28u);
  EXPECT_LT(v, v + 1);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) ++seen[rng.next_below(8)];
  for (int count : seen) EXPECT_GT(count, 300);  // ~500 expected each
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.next_gaussian(100.0, 15.0));
  EXPECT_NEAR(stats.mean(), 100.0, 0.5);
  EXPECT_NEAR(stats.stddev(), 15.0, 0.5);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(77);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_gaussian(10, 3);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Histogram, BinningAndBounds) {
  Histogram h(0, 100, 10);
  h.add(-1);    // underflow
  h.add(0);     // bin 0
  h.add(9.99);  // bin 0
  h.add(10);    // bin 1
  h.add(99.9);  // bin 9
  h.add(100);   // overflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_value(0), 2u);
  EXPECT_EQ(h.bin_value(1), 1u);
  EXPECT_EQ(h.bin_value(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 20.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 15.0);
}

TEST(Histogram, ModeFindsTallestBin) {
  Histogram h(0, 100, 10);
  for (int i = 0; i < 5; ++i) h.add(42);
  h.add(7);
  EXPECT_DOUBLE_EQ(h.mode(), 45.0);
}

TEST(Histogram, PeaksSeparatedAndThresholded) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 50; ++i) h.add(20.5);
  for (int i = 0; i < 30; ++i) h.add(60.5);
  for (int i = 0; i < 2; ++i) h.add(80.5);  // below min_count
  const auto peaks = h.peaks(/*min_count=*/10, /*min_separation=*/5);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 20u);
  EXPECT_EQ(peaks[1], 60u);
}

TEST(Histogram, NearbyPeaksKeepTaller) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 5; ++i) h.add(2.5);
  for (int i = 0; i < 9; ++i) h.add(4.5);
  const auto peaks = h.peaks(1, 5);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 4u);
}

TEST(Table, AlignedTextAndCsv) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22.5);
  EXPECT_EQ(t.row_count(), 2u);
  const auto text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22.5"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\nb,22.5\n");
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(Chart, BarChartRendersAllLabels) {
  const auto out = render_bar_chart({"x", "yy"}, {1.0, 2.0}, 20);
  EXPECT_NE(out.find("x |"), std::string::npos);
  EXPECT_NE(out.find("yy |"), std::string::npos);
}

TEST(Chart, HistogramRenderSkipsEmptyEdges) {
  Histogram h(0, 100, 10);
  h.add(55);
  const auto out = render_histogram(h);
  EXPECT_NE(out.find("50"), std::string::npos);
  EXPECT_EQ(out.find("      0-"), std::string::npos);
}

TEST(Chart, SeriesHandlesEmptyAndFlat) {
  EXPECT_NE(render_series({}), "");
  const auto flat = render_series({5, 5, 5}, 4, 10);
  EXPECT_NE(flat.find('*'), std::string::npos);
}

}  // namespace
}  // namespace meecc
