#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/check.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/aes_backend.h"
#include "crypto/line_cipher.h"
#include "crypto/mac.h"
#include "crypto/multilinear_mac.h"
#include "obs/counters.h"

namespace meecc::crypto {
namespace {

Block hex_block(const char (&hex)[33]) {
  Block b{};
  for (int i = 0; i < 16; ++i) {
    auto nibble = [&](char c) -> std::uint8_t {
      if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
      return static_cast<std::uint8_t>(c - 'a' + 10);
    };
    b[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                     nibble(hex[2 * i + 1]));
  }
  return b;
}

// FIPS-197 Appendix B / C.1 vectors.
TEST(Aes128, Fips197AppendixB) {
  const Aes128 aes(hex_block("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block pt = hex_block("3243f6a8885a308d313198a2e0370734");
  const Block expect = hex_block("3925841d02dc09fbdc118597196a0b32");
  EXPECT_EQ(aes.encrypt(pt), expect);
}

TEST(Aes128, Fips197AppendixC1) {
  const Aes128 aes(hex_block("000102030405060708090a0b0c0d0e0f"));
  const Block pt = hex_block("00112233445566778899aabbccddeeff");
  const Block expect = hex_block("69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(aes.encrypt(pt), expect);
}

TEST(Aes128, DecryptInvertsEncrypt) {
  const Aes128 aes(hex_block("000102030405060708090a0b0c0d0e0f"));
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
  }
}

TEST(Aes128, DifferentKeysDifferentCiphertext) {
  const Block pt{};
  const Aes128 a(hex_block("00000000000000000000000000000000"));
  const Aes128 b(hex_block("00000000000000000000000000000001"));
  EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

Key128 test_key() { return hex_block("2b7e151628aed2a6abf7158809cf4f3c"); }

LineData random_line(Rng& rng) {
  LineData line{};
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.next_below(256));
  return line;
}

TEST(LineCipher, RoundTrip) {
  const LineCipher cipher(test_key());
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const LineData pt = random_line(rng);
    const std::uint64_t addr = rng.next_u64();
    const std::uint64_t version = rng.next_below(1ull << 56);
    const LineData ct = cipher.encrypt(pt, addr, version);
    EXPECT_NE(ct, pt);
    EXPECT_EQ(cipher.decrypt(ct, addr, version), pt);
  }
}

TEST(LineCipher, FreshnessVersionChangesKeystream) {
  const LineCipher cipher(test_key());
  const LineData pt{};
  const auto c1 = cipher.encrypt(pt, 0x1000, 1);
  const auto c2 = cipher.encrypt(pt, 0x1000, 2);
  EXPECT_NE(c1, c2);
}

TEST(LineCipher, SpatialBindingAddressChangesKeystream) {
  const LineCipher cipher(test_key());
  const LineData pt{};
  const auto c1 = cipher.encrypt(pt, 0x1000, 1);
  const auto c2 = cipher.encrypt(pt, 0x1040, 1);
  EXPECT_NE(c1, c2);
  // Moving ciphertext to another address yields garbage, not the plaintext.
  EXPECT_NE(cipher.decrypt(c1, 0x1040, 1), pt);
}

TEST(LineCipher, WrongVersionDecryptsToGarbage) {
  const LineCipher cipher(test_key());
  Rng rng(3);
  const LineData pt = random_line(rng);
  const auto ct = cipher.encrypt(pt, 0x2000, 7);
  EXPECT_NE(cipher.decrypt(ct, 0x2000, 8), pt);
}

TEST(Mac, TagIs56Bits) {
  const MacFunction mac(test_key());
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const LineData data = random_line(rng);
    const auto t = mac.tag(rng.next_u64(), rng.next_below(1ull << 56), data);
    EXPECT_EQ(t & ~kMacMask, 0u);
  }
}

TEST(Mac, VerifyAcceptsGenuineTag) {
  const MacFunction mac(test_key());
  Rng rng(5);
  const LineData data = random_line(rng);
  const auto t = mac.tag(0xabc, 42, data);
  EXPECT_TRUE(mac.verify(0xabc, 42, data, t));
}

TEST(Mac, AnySingleBitFlipInDataBreaksTag) {
  const MacFunction mac(test_key());
  Rng rng(6);
  LineData data = random_line(rng);
  const auto t = mac.tag(0xabc, 42, data);
  for (int trial = 0; trial < 32; ++trial) {
    const auto byte = rng.next_below(data.size());
    const auto bit = rng.next_below(8);
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_FALSE(mac.verify(0xabc, 42, data, t));
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);  // restore
  }
}

TEST(Mac, ContextBindsAddressAndVersion) {
  const MacFunction mac(test_key());
  Rng rng(7);
  const LineData data = random_line(rng);
  const auto t = mac.tag(0xabc, 42, data);
  EXPECT_FALSE(mac.verify(0xabd, 42, data, t));  // moved
  EXPECT_FALSE(mac.verify(0xabc, 41, data, t));  // replayed old version
}

TEST(Mac, TagsDifferAcrossKeys) {
  const MacFunction a(test_key());
  const MacFunction b(hex_block("000102030405060708090a0b0c0d0e0f"));
  const LineData data{};
  EXPECT_NE(a.tag(1, 2, data), b.tag(1, 2, data));
}

TEST(Mac, RejectsNonBlockMultipleInput) {
  const MacFunction mac(test_key());
  std::array<std::uint8_t, 15> short_data{};
  EXPECT_THROW((void)mac.tag(1, 2, short_data), meecc::CheckFailure);
}

// ------------------------------------------------------- AES backends --

/// Concrete (non-"auto") backends this CPU can run; always contains at
/// least reference and ttable.
std::vector<std::string> runnable_backends() {
  std::vector<std::string> names;
  for (const std::string& name : aes_backend_names())
    if (name != kAutoBackend && aes_backend_available(name))
      names.push_back(name);
  return names;
}

class AesBackendSuite : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllRegistered, AesBackendSuite,
                         ::testing::ValuesIn(runnable_backends()),
                         [](const auto& info) { return info.param; });

// FIPS-197 Appendix B / C.1 known-answer vectors, per backend.
TEST_P(AesBackendSuite, Fips197KnownAnswers) {
  {
    const auto aes = make_aes_backend(
        GetParam(), hex_block("2b7e151628aed2a6abf7158809cf4f3c"));
    EXPECT_EQ(aes->encrypt(hex_block("3243f6a8885a308d313198a2e0370734")),
              hex_block("3925841d02dc09fbdc118597196a0b32"));
  }
  {
    const auto aes = make_aes_backend(
        GetParam(), hex_block("000102030405060708090a0b0c0d0e0f"));
    EXPECT_EQ(aes->encrypt(hex_block("00112233445566778899aabbccddeeff")),
              hex_block("69c4e0d86a7b0430d8cdb78070b4c55a"));
    EXPECT_EQ(aes->decrypt(hex_block("69c4e0d86a7b0430d8cdb78070b4c55a")),
              hex_block("00112233445566778899aabbccddeeff"));
  }
}

TEST_P(AesBackendSuite, DecryptInvertsEncrypt) {
  const auto aes = make_aes_backend(GetParam(), test_key());
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(aes->decrypt(aes->encrypt(pt)), pt);
  }
}

TEST_P(AesBackendSuite, MatchesReferenceOnRandomBlocksAndKeys) {
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    Key128 key{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
    const Aes128 reference(key);
    const auto aes = make_aes_backend(GetParam(), key);
    Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
    const Block ct = reference.encrypt(pt);
    EXPECT_EQ(aes->encrypt(pt), ct);
    EXPECT_EQ(aes->decrypt(ct), pt);
  }
}

TEST_P(AesBackendSuite, LineCipherIdenticalAcrossBackends) {
  const LineCipher reference(test_key(), "reference");
  const LineCipher cipher(test_key(), GetParam());
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const LineData pt = random_line(rng);
    const std::uint64_t addr = rng.next_u64() & ~0x3full;
    const std::uint64_t version = rng.next_below(1ull << 56);
    EXPECT_EQ(cipher.encrypt(pt, addr, version),
              reference.encrypt(pt, addr, version));
  }
}

// NIST SP 800-38A F.1.1 (ECB-AES128.Encrypt): four distinct plaintext
// blocks under one key — a real multi-block KAT, so a lane swap or
// round-key mixup in the pipelined path cannot cancel out. Run the four as
// one batch and doubled to eight, the width the AES-NI path unrolls to.
TEST_P(AesBackendSuite, EncryptBlocksMultiBlockKnownAnswers) {
  const auto aes = make_aes_backend(
      GetParam(), hex_block("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block pts[4] = {hex_block("6bc1bee22e409f96e93d7e117393172a"),
                        hex_block("ae2d8a571e03ac9c9eb76fac45af8e51"),
                        hex_block("30c81c46a35ce411e5fbc1191a0a52ef"),
                        hex_block("f69f2445df4f9b17ad2b417be66c3710")};
  const Block cts[4] = {hex_block("3ad77bb40d7a3660a89ecaf32466ef97"),
                        hex_block("f5d3d58503b9699de785895a96fdbaaf"),
                        hex_block("43b1cd7f598ece23881b00e3ed030688"),
                        hex_block("7b0c785e27e8ad3f8223207104725dd4")};
  Block out4[4];
  aes->encrypt_blocks(pts, out4, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out4[i], cts[i]) << "lane " << i;
  Block in8[8], out8[8];
  for (int i = 0; i < 8; ++i) in8[i] = pts[i % 4];
  aes->encrypt_blocks(in8, out8, 8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out8[i], cts[i % 4]) << "lane " << i;
}

// encrypt_blocks must be bit-identical to a serial encrypt() loop at every
// batch size (partial tails, exact multiples of the 8-wide unroll, and the
// recursive > 8 shapes the MAC batch path produces), including when the
// caller aliases out onto in element-wise.
TEST_P(AesBackendSuite, EncryptBlocksMatchesSerialLoopAnySize) {
  const auto aes = make_aes_backend(GetParam(), test_key());
  Rng rng(15);
  for (const std::size_t n : {1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 23u}) {
    std::vector<Block> in(n), out(n);
    for (auto& block : in)
      for (auto& b : block) b = static_cast<std::uint8_t>(rng.next_below(256));
    aes->encrypt_blocks(in.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(out[i], aes->encrypt(in[i])) << "n=" << n << " i=" << i;
    std::vector<Block> inplace = in;
    aes->encrypt_blocks(inplace.data(), inplace.data(), n);
    EXPECT_EQ(inplace, out) << "n=" << n << " (in-place)";
  }
}

// verify_batch must reach exactly the serial loop's verdict: the index of
// the first failing request in array order, or n when all pass — for both
// the base-class serial fallback (CBC-MAC) and the multilinear pad-batched
// override, across every backend.
TEST_P(AesBackendSuite, VerifyBatchMatchesSerialVerdict) {
  Rng rng(16);
  for (const MacKind kind : {MacKind::kMultilinear, MacKind::kCbcMac}) {
    const auto mac = make_mac_scheme(kind, test_key(), GetParam());
    constexpr std::size_t kRequests = 12;  // > the 8-wide inline batch
    std::vector<LineData> lines(kRequests);
    std::vector<MacRequest> requests(kRequests);
    for (std::size_t i = 0; i < kRequests; ++i) {
      lines[i] = random_line(rng);
      requests[i].address = 0x40 * (i + 1);
      requests[i].version = i + 1;
      requests[i].data = lines[i];
      requests[i].expected_tag =
          mac->tag(requests[i].address, requests[i].version, lines[i]);
    }
    EXPECT_EQ(mac->verify_batch(requests.data(), kRequests), kRequests);
    // Two corrupted tags: the verdict is the FIRST in array order.
    auto corrupted = requests;
    corrupted[9].expected_tag ^= 1;
    corrupted[5].expected_tag ^= 1;
    EXPECT_EQ(mac->verify_batch(corrupted.data(), kRequests), 5u);
    // Corrupted data fails the same way as a corrupted tag.
    LineData flipped = lines[2];
    flipped[0] ^= 1;
    auto tampered = requests;
    tampered[2].data = flipped;
    EXPECT_EQ(mac->verify_batch(tampered.data(), kRequests), 2u);
  }
}

// The batched pad path must account pad-cache hits and misses exactly like
// the serial loop would for the same (distinct-nonce) request stream.
TEST(PadCacheBatch, VerifyBatchCountsPadsLikeSerial) {
  Rng rng(18);
  constexpr std::size_t kRequests = 6;
  std::vector<LineData> lines(kRequests);
  std::vector<MacRequest> requests(kRequests);
  const MultilinearMac oracle(test_key());
  for (std::size_t i = 0; i < kRequests; ++i) {
    lines[i] = random_line(rng);
    requests[i].address = 0x1000 + 0x40 * i;
    requests[i].version = 1;
    requests[i].data = lines[i];
    requests[i].expected_tag =
        oracle.tag(requests[i].address, requests[i].version, lines[i]);
  }
  const auto run = [&](auto&& verify) {
    obs::Registry registry;
    MultilinearMac mac(test_key());
    const auto hit = registry.counter("crypto.pad", "hit");
    const auto miss = registry.counter("crypto.pad", "miss");
    mac.set_pad_counters(hit, miss);
    verify(mac);  // cold: every pad misses
    verify(mac);  // warm: every pad hits
    return std::pair{hit.value(), miss.value()};
  };
  const auto serial = run([&](const MacScheme& mac) {
    for (const auto& r : requests)
      EXPECT_TRUE(mac.verify(r.address, r.version, r.data, r.expected_tag));
  });
  const auto batched = run([&](const MacScheme& mac) {
    EXPECT_EQ(mac.verify_batch(requests.data(), kRequests), kRequests);
  });
  EXPECT_EQ(batched, serial);
}

TEST_P(AesBackendSuite, MacSchemesIdenticalAcrossBackends) {
  Rng rng(14);
  const LineData data = random_line(rng);
  for (const MacKind kind : {MacKind::kMultilinear, MacKind::kCbcMac}) {
    const auto reference = make_mac_scheme(kind, test_key(), "reference");
    const auto mac = make_mac_scheme(kind, test_key(), GetParam());
    EXPECT_EQ(mac->tag(0x1000, 7, data), reference->tag(0x1000, 7, data));
  }
}

TEST(AesBackendRegistry, NamesAndAvailability) {
  const auto names = aes_backend_names();
  for (const char* expected : {"reference", "ttable", "aesni", "auto"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  EXPECT_TRUE(is_aes_backend("auto"));
  EXPECT_FALSE(is_aes_backend("openssl"));
  EXPECT_TRUE(aes_backend_available("reference"));
  EXPECT_TRUE(aes_backend_available("ttable"));
  EXPECT_TRUE(aes_backend_available("auto"));
  // "auto" resolves to a concrete, runnable backend.
  const auto resolved = std::string(resolve_aes_backend("auto"));
  EXPECT_NE(resolved, "auto");
  EXPECT_TRUE(aes_backend_available(resolved));
  EXPECT_EQ(make_aes_backend("auto", test_key())->name(), resolved);
  EXPECT_THROW((void)make_aes_backend("openssl", test_key()),
               std::invalid_argument);
}

// ------------------------------------------------------- pad caching --

TEST(PadCache, LineCipherHitsOnRepeatedNonceAndCountsIt) {
  obs::Registry registry;
  LineCipher cipher(test_key());
  const auto hit = registry.counter("crypto.pad", "hit");
  const auto miss = registry.counter("crypto.pad", "miss");
  cipher.set_pad_counters(hit, miss);

  Rng rng(15);
  const LineData pt = random_line(rng);
  const auto first = cipher.encrypt(pt, 0x1000, 1);
  EXPECT_EQ(hit.value(), 0u);
  EXPECT_EQ(miss.value(), 1u);
  // Same nonce again: served from the cache, identical keystream.
  EXPECT_EQ(cipher.encrypt(pt, 0x1000, 1), first);
  EXPECT_EQ(hit.value(), 1u);
  EXPECT_EQ(miss.value(), 1u);
  EXPECT_EQ(cipher.decrypt(first, 0x1000, 1), pt);
  EXPECT_EQ(hit.value(), 2u);
}

TEST(PadCache, VersionBumpInvalidates) {
  // Coherence: after a version bump the cache must not serve the old pad —
  // the cached and uncached ciphers must agree at every version.
  LineCipher cached(test_key());
  LineCipher uncached(test_key());
  uncached.set_pad_cache_enabled(false);
  Rng rng(16);
  const LineData pt = random_line(rng);
  LineData previous{};
  for (std::uint64_t version = 1; version <= 8; ++version) {
    const auto warm = cached.encrypt(pt, 0x2000, version);  // fill
    EXPECT_EQ(cached.encrypt(pt, 0x2000, version), warm);   // hot
    EXPECT_EQ(uncached.encrypt(pt, 0x2000, version), warm);
    EXPECT_NE(warm, previous);  // fresh keystream per version
    previous = warm;
  }
}

TEST(PadCache, MultilinearPadCacheCoherentAcrossVersions) {
  MultilinearMac cached(test_key());
  MultilinearMac uncached(test_key());
  uncached.set_pad_cache_enabled(false);
  Rng rng(17);
  const LineData data = random_line(rng);
  for (std::uint64_t version = 1; version <= 8; ++version) {
    const auto warm = cached.tag(0x3000, version, data);
    EXPECT_EQ(cached.tag(0x3000, version, data), warm);
    EXPECT_EQ(uncached.tag(0x3000, version, data), warm);
  }
  // And the cached tag still changes when the data changes.
  LineData flipped = data;
  flipped[0] ^= 1;
  EXPECT_NE(cached.tag(0x3000, 1, flipped), cached.tag(0x3000, 1, data));
}

TEST(PadCache, MultilinearCountsHitsAndMisses) {
  obs::Registry registry;
  MultilinearMac mac(test_key());
  const auto hit = registry.counter("crypto.pad", "hit");
  const auto miss = registry.counter("crypto.pad", "miss");
  mac.set_pad_counters(hit, miss);
  const LineData data{};
  (void)mac.tag(0x40, 1, data);
  (void)mac.tag(0x40, 1, data);
  (void)mac.tag(0x40, 2, data);  // version bump: miss, not a stale hit
  EXPECT_EQ(miss.value(), 2u);
  EXPECT_EQ(hit.value(), 1u);
}

}  // namespace
}  // namespace meecc::crypto
