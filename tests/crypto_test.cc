#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/check.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/aes_backend.h"
#include "crypto/line_cipher.h"
#include "crypto/mac.h"
#include "crypto/multilinear_mac.h"
#include "obs/counters.h"

namespace meecc::crypto {
namespace {

Block hex_block(const char (&hex)[33]) {
  Block b{};
  for (int i = 0; i < 16; ++i) {
    auto nibble = [&](char c) -> std::uint8_t {
      if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
      return static_cast<std::uint8_t>(c - 'a' + 10);
    };
    b[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                     nibble(hex[2 * i + 1]));
  }
  return b;
}

// FIPS-197 Appendix B / C.1 vectors.
TEST(Aes128, Fips197AppendixB) {
  const Aes128 aes(hex_block("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block pt = hex_block("3243f6a8885a308d313198a2e0370734");
  const Block expect = hex_block("3925841d02dc09fbdc118597196a0b32");
  EXPECT_EQ(aes.encrypt(pt), expect);
}

TEST(Aes128, Fips197AppendixC1) {
  const Aes128 aes(hex_block("000102030405060708090a0b0c0d0e0f"));
  const Block pt = hex_block("00112233445566778899aabbccddeeff");
  const Block expect = hex_block("69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(aes.encrypt(pt), expect);
}

TEST(Aes128, DecryptInvertsEncrypt) {
  const Aes128 aes(hex_block("000102030405060708090a0b0c0d0e0f"));
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
  }
}

TEST(Aes128, DifferentKeysDifferentCiphertext) {
  const Block pt{};
  const Aes128 a(hex_block("00000000000000000000000000000000"));
  const Aes128 b(hex_block("00000000000000000000000000000001"));
  EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

Key128 test_key() { return hex_block("2b7e151628aed2a6abf7158809cf4f3c"); }

LineData random_line(Rng& rng) {
  LineData line{};
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.next_below(256));
  return line;
}

TEST(LineCipher, RoundTrip) {
  const LineCipher cipher(test_key());
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const LineData pt = random_line(rng);
    const std::uint64_t addr = rng.next_u64();
    const std::uint64_t version = rng.next_below(1ull << 56);
    const LineData ct = cipher.encrypt(pt, addr, version);
    EXPECT_NE(ct, pt);
    EXPECT_EQ(cipher.decrypt(ct, addr, version), pt);
  }
}

TEST(LineCipher, FreshnessVersionChangesKeystream) {
  const LineCipher cipher(test_key());
  const LineData pt{};
  const auto c1 = cipher.encrypt(pt, 0x1000, 1);
  const auto c2 = cipher.encrypt(pt, 0x1000, 2);
  EXPECT_NE(c1, c2);
}

TEST(LineCipher, SpatialBindingAddressChangesKeystream) {
  const LineCipher cipher(test_key());
  const LineData pt{};
  const auto c1 = cipher.encrypt(pt, 0x1000, 1);
  const auto c2 = cipher.encrypt(pt, 0x1040, 1);
  EXPECT_NE(c1, c2);
  // Moving ciphertext to another address yields garbage, not the plaintext.
  EXPECT_NE(cipher.decrypt(c1, 0x1040, 1), pt);
}

TEST(LineCipher, WrongVersionDecryptsToGarbage) {
  const LineCipher cipher(test_key());
  Rng rng(3);
  const LineData pt = random_line(rng);
  const auto ct = cipher.encrypt(pt, 0x2000, 7);
  EXPECT_NE(cipher.decrypt(ct, 0x2000, 8), pt);
}

TEST(Mac, TagIs56Bits) {
  const MacFunction mac(test_key());
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const LineData data = random_line(rng);
    const auto t = mac.tag(rng.next_u64(), rng.next_below(1ull << 56), data);
    EXPECT_EQ(t & ~kMacMask, 0u);
  }
}

TEST(Mac, VerifyAcceptsGenuineTag) {
  const MacFunction mac(test_key());
  Rng rng(5);
  const LineData data = random_line(rng);
  const auto t = mac.tag(0xabc, 42, data);
  EXPECT_TRUE(mac.verify(0xabc, 42, data, t));
}

TEST(Mac, AnySingleBitFlipInDataBreaksTag) {
  const MacFunction mac(test_key());
  Rng rng(6);
  LineData data = random_line(rng);
  const auto t = mac.tag(0xabc, 42, data);
  for (int trial = 0; trial < 32; ++trial) {
    const auto byte = rng.next_below(data.size());
    const auto bit = rng.next_below(8);
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_FALSE(mac.verify(0xabc, 42, data, t));
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);  // restore
  }
}

TEST(Mac, ContextBindsAddressAndVersion) {
  const MacFunction mac(test_key());
  Rng rng(7);
  const LineData data = random_line(rng);
  const auto t = mac.tag(0xabc, 42, data);
  EXPECT_FALSE(mac.verify(0xabd, 42, data, t));  // moved
  EXPECT_FALSE(mac.verify(0xabc, 41, data, t));  // replayed old version
}

TEST(Mac, TagsDifferAcrossKeys) {
  const MacFunction a(test_key());
  const MacFunction b(hex_block("000102030405060708090a0b0c0d0e0f"));
  const LineData data{};
  EXPECT_NE(a.tag(1, 2, data), b.tag(1, 2, data));
}

TEST(Mac, RejectsNonBlockMultipleInput) {
  const MacFunction mac(test_key());
  std::array<std::uint8_t, 15> short_data{};
  EXPECT_THROW((void)mac.tag(1, 2, short_data), meecc::CheckFailure);
}

// ------------------------------------------------------- AES backends --

/// Concrete (non-"auto") backends this CPU can run; always contains at
/// least reference and ttable.
std::vector<std::string> runnable_backends() {
  std::vector<std::string> names;
  for (const std::string& name : aes_backend_names())
    if (name != kAutoBackend && aes_backend_available(name))
      names.push_back(name);
  return names;
}

class AesBackendSuite : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllRegistered, AesBackendSuite,
                         ::testing::ValuesIn(runnable_backends()),
                         [](const auto& info) { return info.param; });

// FIPS-197 Appendix B / C.1 known-answer vectors, per backend.
TEST_P(AesBackendSuite, Fips197KnownAnswers) {
  {
    const auto aes = make_aes_backend(
        GetParam(), hex_block("2b7e151628aed2a6abf7158809cf4f3c"));
    EXPECT_EQ(aes->encrypt(hex_block("3243f6a8885a308d313198a2e0370734")),
              hex_block("3925841d02dc09fbdc118597196a0b32"));
  }
  {
    const auto aes = make_aes_backend(
        GetParam(), hex_block("000102030405060708090a0b0c0d0e0f"));
    EXPECT_EQ(aes->encrypt(hex_block("00112233445566778899aabbccddeeff")),
              hex_block("69c4e0d86a7b0430d8cdb78070b4c55a"));
    EXPECT_EQ(aes->decrypt(hex_block("69c4e0d86a7b0430d8cdb78070b4c55a")),
              hex_block("00112233445566778899aabbccddeeff"));
  }
}

TEST_P(AesBackendSuite, DecryptInvertsEncrypt) {
  const auto aes = make_aes_backend(GetParam(), test_key());
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(aes->decrypt(aes->encrypt(pt)), pt);
  }
}

TEST_P(AesBackendSuite, MatchesReferenceOnRandomBlocksAndKeys) {
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    Key128 key{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
    const Aes128 reference(key);
    const auto aes = make_aes_backend(GetParam(), key);
    Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
    const Block ct = reference.encrypt(pt);
    EXPECT_EQ(aes->encrypt(pt), ct);
    EXPECT_EQ(aes->decrypt(ct), pt);
  }
}

TEST_P(AesBackendSuite, LineCipherIdenticalAcrossBackends) {
  const LineCipher reference(test_key(), "reference");
  const LineCipher cipher(test_key(), GetParam());
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const LineData pt = random_line(rng);
    const std::uint64_t addr = rng.next_u64() & ~0x3full;
    const std::uint64_t version = rng.next_below(1ull << 56);
    EXPECT_EQ(cipher.encrypt(pt, addr, version),
              reference.encrypt(pt, addr, version));
  }
}

TEST_P(AesBackendSuite, MacSchemesIdenticalAcrossBackends) {
  Rng rng(14);
  const LineData data = random_line(rng);
  for (const MacKind kind : {MacKind::kMultilinear, MacKind::kCbcMac}) {
    const auto reference = make_mac_scheme(kind, test_key(), "reference");
    const auto mac = make_mac_scheme(kind, test_key(), GetParam());
    EXPECT_EQ(mac->tag(0x1000, 7, data), reference->tag(0x1000, 7, data));
  }
}

TEST(AesBackendRegistry, NamesAndAvailability) {
  const auto names = aes_backend_names();
  for (const char* expected : {"reference", "ttable", "aesni", "auto"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  EXPECT_TRUE(is_aes_backend("auto"));
  EXPECT_FALSE(is_aes_backend("openssl"));
  EXPECT_TRUE(aes_backend_available("reference"));
  EXPECT_TRUE(aes_backend_available("ttable"));
  EXPECT_TRUE(aes_backend_available("auto"));
  // "auto" resolves to a concrete, runnable backend.
  const auto resolved = std::string(resolve_aes_backend("auto"));
  EXPECT_NE(resolved, "auto");
  EXPECT_TRUE(aes_backend_available(resolved));
  EXPECT_EQ(make_aes_backend("auto", test_key())->name(), resolved);
  EXPECT_THROW((void)make_aes_backend("openssl", test_key()),
               std::invalid_argument);
}

// ------------------------------------------------------- pad caching --

TEST(PadCache, LineCipherHitsOnRepeatedNonceAndCountsIt) {
  obs::Registry registry;
  LineCipher cipher(test_key());
  const auto hit = registry.counter("crypto.pad", "hit");
  const auto miss = registry.counter("crypto.pad", "miss");
  cipher.set_pad_counters(hit, miss);

  Rng rng(15);
  const LineData pt = random_line(rng);
  const auto first = cipher.encrypt(pt, 0x1000, 1);
  EXPECT_EQ(hit.value(), 0u);
  EXPECT_EQ(miss.value(), 1u);
  // Same nonce again: served from the cache, identical keystream.
  EXPECT_EQ(cipher.encrypt(pt, 0x1000, 1), first);
  EXPECT_EQ(hit.value(), 1u);
  EXPECT_EQ(miss.value(), 1u);
  EXPECT_EQ(cipher.decrypt(first, 0x1000, 1), pt);
  EXPECT_EQ(hit.value(), 2u);
}

TEST(PadCache, VersionBumpInvalidates) {
  // Coherence: after a version bump the cache must not serve the old pad —
  // the cached and uncached ciphers must agree at every version.
  LineCipher cached(test_key());
  LineCipher uncached(test_key());
  uncached.set_pad_cache_enabled(false);
  Rng rng(16);
  const LineData pt = random_line(rng);
  LineData previous{};
  for (std::uint64_t version = 1; version <= 8; ++version) {
    const auto warm = cached.encrypt(pt, 0x2000, version);  // fill
    EXPECT_EQ(cached.encrypt(pt, 0x2000, version), warm);   // hot
    EXPECT_EQ(uncached.encrypt(pt, 0x2000, version), warm);
    EXPECT_NE(warm, previous);  // fresh keystream per version
    previous = warm;
  }
}

TEST(PadCache, MultilinearPadCacheCoherentAcrossVersions) {
  MultilinearMac cached(test_key());
  MultilinearMac uncached(test_key());
  uncached.set_pad_cache_enabled(false);
  Rng rng(17);
  const LineData data = random_line(rng);
  for (std::uint64_t version = 1; version <= 8; ++version) {
    const auto warm = cached.tag(0x3000, version, data);
    EXPECT_EQ(cached.tag(0x3000, version, data), warm);
    EXPECT_EQ(uncached.tag(0x3000, version, data), warm);
  }
  // And the cached tag still changes when the data changes.
  LineData flipped = data;
  flipped[0] ^= 1;
  EXPECT_NE(cached.tag(0x3000, 1, flipped), cached.tag(0x3000, 1, data));
}

TEST(PadCache, MultilinearCountsHitsAndMisses) {
  obs::Registry registry;
  MultilinearMac mac(test_key());
  const auto hit = registry.counter("crypto.pad", "hit");
  const auto miss = registry.counter("crypto.pad", "miss");
  mac.set_pad_counters(hit, miss);
  const LineData data{};
  (void)mac.tag(0x40, 1, data);
  (void)mac.tag(0x40, 1, data);
  (void)mac.tag(0x40, 2, data);  // version bump: miss, not a stale hit
  EXPECT_EQ(miss.value(), 2u);
  EXPECT_EQ(hit.value(), 1u);
}

}  // namespace
}  // namespace meecc::crypto
