#include <gtest/gtest.h>

#include <cstring>

#include "common/check.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/line_cipher.h"
#include "crypto/mac.h"

namespace meecc::crypto {
namespace {

Block hex_block(const char (&hex)[33]) {
  Block b{};
  for (int i = 0; i < 16; ++i) {
    auto nibble = [&](char c) -> std::uint8_t {
      if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
      return static_cast<std::uint8_t>(c - 'a' + 10);
    };
    b[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                     nibble(hex[2 * i + 1]));
  }
  return b;
}

// FIPS-197 Appendix B / C.1 vectors.
TEST(Aes128, Fips197AppendixB) {
  const Aes128 aes(hex_block("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block pt = hex_block("3243f6a8885a308d313198a2e0370734");
  const Block expect = hex_block("3925841d02dc09fbdc118597196a0b32");
  EXPECT_EQ(aes.encrypt(pt), expect);
}

TEST(Aes128, Fips197AppendixC1) {
  const Aes128 aes(hex_block("000102030405060708090a0b0c0d0e0f"));
  const Block pt = hex_block("00112233445566778899aabbccddeeff");
  const Block expect = hex_block("69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(aes.encrypt(pt), expect);
}

TEST(Aes128, DecryptInvertsEncrypt) {
  const Aes128 aes(hex_block("000102030405060708090a0b0c0d0e0f"));
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
  }
}

TEST(Aes128, DifferentKeysDifferentCiphertext) {
  const Block pt{};
  const Aes128 a(hex_block("00000000000000000000000000000000"));
  const Aes128 b(hex_block("00000000000000000000000000000001"));
  EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

Key128 test_key() { return hex_block("2b7e151628aed2a6abf7158809cf4f3c"); }

LineData random_line(Rng& rng) {
  LineData line{};
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.next_below(256));
  return line;
}

TEST(LineCipher, RoundTrip) {
  const LineCipher cipher(test_key());
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const LineData pt = random_line(rng);
    const std::uint64_t addr = rng.next_u64();
    const std::uint64_t version = rng.next_below(1ull << 56);
    const LineData ct = cipher.encrypt(pt, addr, version);
    EXPECT_NE(ct, pt);
    EXPECT_EQ(cipher.decrypt(ct, addr, version), pt);
  }
}

TEST(LineCipher, FreshnessVersionChangesKeystream) {
  const LineCipher cipher(test_key());
  const LineData pt{};
  const auto c1 = cipher.encrypt(pt, 0x1000, 1);
  const auto c2 = cipher.encrypt(pt, 0x1000, 2);
  EXPECT_NE(c1, c2);
}

TEST(LineCipher, SpatialBindingAddressChangesKeystream) {
  const LineCipher cipher(test_key());
  const LineData pt{};
  const auto c1 = cipher.encrypt(pt, 0x1000, 1);
  const auto c2 = cipher.encrypt(pt, 0x1040, 1);
  EXPECT_NE(c1, c2);
  // Moving ciphertext to another address yields garbage, not the plaintext.
  EXPECT_NE(cipher.decrypt(c1, 0x1040, 1), pt);
}

TEST(LineCipher, WrongVersionDecryptsToGarbage) {
  const LineCipher cipher(test_key());
  Rng rng(3);
  const LineData pt = random_line(rng);
  const auto ct = cipher.encrypt(pt, 0x2000, 7);
  EXPECT_NE(cipher.decrypt(ct, 0x2000, 8), pt);
}

TEST(Mac, TagIs56Bits) {
  const MacFunction mac(test_key());
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const LineData data = random_line(rng);
    const auto t = mac.tag(rng.next_u64(), rng.next_below(1ull << 56), data);
    EXPECT_EQ(t & ~kMacMask, 0u);
  }
}

TEST(Mac, VerifyAcceptsGenuineTag) {
  const MacFunction mac(test_key());
  Rng rng(5);
  const LineData data = random_line(rng);
  const auto t = mac.tag(0xabc, 42, data);
  EXPECT_TRUE(mac.verify(0xabc, 42, data, t));
}

TEST(Mac, AnySingleBitFlipInDataBreaksTag) {
  const MacFunction mac(test_key());
  Rng rng(6);
  LineData data = random_line(rng);
  const auto t = mac.tag(0xabc, 42, data);
  for (int trial = 0; trial < 32; ++trial) {
    const auto byte = rng.next_below(data.size());
    const auto bit = rng.next_below(8);
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_FALSE(mac.verify(0xabc, 42, data, t));
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);  // restore
  }
}

TEST(Mac, ContextBindsAddressAndVersion) {
  const MacFunction mac(test_key());
  Rng rng(7);
  const LineData data = random_line(rng);
  const auto t = mac.tag(0xabc, 42, data);
  EXPECT_FALSE(mac.verify(0xabd, 42, data, t));  // moved
  EXPECT_FALSE(mac.verify(0xabc, 41, data, t));  // replayed old version
}

TEST(Mac, TagsDifferAcrossKeys) {
  const MacFunction a(test_key());
  const MacFunction b(hex_block("000102030405060708090a0b0c0d0e0f"));
  const LineData data{};
  EXPECT_NE(a.tag(1, 2, data), b.tag(1, 2, data));
}

TEST(Mac, RejectsNonBlockMultipleInput) {
  const MacFunction mac(test_key());
  std::array<std::uint8_t, 15> short_data{};
  EXPECT_THROW((void)mac.tag(1, 2, short_data), meecc::CheckFailure);
}

}  // namespace
}  // namespace meecc::crypto
