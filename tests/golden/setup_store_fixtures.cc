#include "setup_store_fixtures.h"

#include "common/bytes.h"

namespace meecc::testing {

std::vector<StoreFixture> setup_store_fixtures(std::uint64_t config_hash,
                                               const std::string& setup_key,
                                               std::string_view payload) {
  using runtime::SetupStore;

  // Mirror of SetupStore::store(): the embedded key guards the 64-bit
  // content address against collisions, then the experiment payload.
  const auto entry_for = [&](const std::string& key, std::uint64_t hash) {
    io::Writer w;
    w.str(key);
    w.bytes(payload.data(), payload.size());
    return io::write_frame(SetupStore::kMagic, SetupStore::kFormatVersion,
                           hash, w.data());
  };
  const std::string valid = entry_for(setup_key, config_hash);

  std::vector<StoreFixture> fixtures;
  fixtures.push_back({"valid", valid, SetupStore::Lookup::kHit});
  fixtures.push_back({"truncated", valid.substr(0, valid.size() / 2),
                      SetupStore::Lookup::kTruncated});
  fixtures.push_back({"empty", "", SetupStore::Lookup::kTruncated});

  std::string bad_magic = valid;
  bad_magic[0] ^= 0x01;
  fixtures.push_back(
      {"bad-magic", std::move(bad_magic), SetupStore::Lookup::kBadMagic});

  std::string bad_version = valid;
  bad_version[8] ^= 0x01;  // version field follows the 8-byte magic
  fixtures.push_back(
      {"bad-version", std::move(bad_version), SetupStore::Lookup::kBadVersion});

  std::string bad_checksum = valid;
  bad_checksum[valid.size() - 9] ^= 0x01;  // last payload byte
  fixtures.push_back({"bad-checksum", std::move(bad_checksum),
                      SetupStore::Lookup::kBadChecksum});

  fixtures.push_back({"config-mismatch", entry_for(setup_key, config_hash + 1),
                      SetupStore::Lookup::kConfigMismatch});
  fixtures.push_back({"key-collision",
                      entry_for(setup_key + "-someone-else", config_hash),
                      SetupStore::Lookup::kKeyCollision});
  return fixtures;
}

}  // namespace meecc::testing
