// Corrupted setup-store fixtures: one entry file per failure mode of
// runtime::SetupStore::load(), generated from a single valid entry so every
// fixture differs from "good" in exactly the way its name says.
//
// Shared between the fault-injection suite (store_fault_test.cc), which
// plants each fixture at the store's content address and asserts the
// distinct Lookup status + fresh-build fallback, and the standalone
// generator CLI (make_setup_store_fixtures.cc) that writes them to disk
// for manual poking.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/setup_store.h"

namespace meecc::testing {

struct StoreFixture {
  std::string name;    ///< e.g. "bad-checksum"
  std::string bytes;   ///< entry-file content to plant
  runtime::SetupStore::Lookup expected;  ///< what load() must report
};

/// The well-formed entry `SetupStore::store(setup_key, payload)` would
/// write under `config_hash`, plus one corrupted variant per failure mode:
///   valid            -> kHit
///   truncated        -> kTruncated (cut mid-payload)
///   empty            -> kTruncated (zero-length file)
///   bad-magic        -> kBadMagic (first magic byte flipped)
///   bad-version      -> kBadVersion (format version byte flipped)
///   bad-checksum     -> kBadChecksum (one payload byte flipped)
///   config-mismatch  -> kConfigMismatch (framed under config_hash + 1)
///   key-collision    -> kKeyCollision (valid frame, different embedded key)
std::vector<StoreFixture> setup_store_fixtures(std::uint64_t config_hash,
                                               const std::string& setup_key,
                                               std::string_view payload);

}  // namespace meecc::testing
