// Writes the corrupted setup-store fixture set to a directory:
//
//   make_setup_store_fixtures OUTDIR
//
// One <name>.setup file per failure mode (see setup_store_fixtures.h),
// built from a fixed demo key/payload so the files are reproducible. Handy
// for poking at SetupStore behaviour outside the test binary; the
// fault-injection suite generates the same bytes in-process.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "runtime/setup_store.h"
#include "setup_store_fixtures.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_setup_store_fixtures OUTDIR\n");
    return 2;
  }
  const std::filesystem::path dir(argv[1]);
  std::filesystem::create_directories(dir);

  const std::uint64_t config_hash =
      meecc::runtime::setup_store_config_hash("fixture-demo");
  const auto fixtures = meecc::testing::setup_store_fixtures(
      config_hash, "fixture-demo|seed=42", "demo-payload-bytes");
  for (const auto& fixture : fixtures) {
    const std::filesystem::path path = dir / (fixture.name + ".setup");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(fixture.bytes.data(),
              static_cast<std::streamsize>(fixture.bytes.size()));
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
      return 1;
    }
    std::printf("%s (%zu bytes, expect %s)\n", path.string().c_str(),
                fixture.bytes.size(),
                std::string(meecc::runtime::to_string(fixture.expected))
                    .c_str());
  }
  return 0;
}
