// Tests for the observability subsystem: counter registration and merging,
// trace-sink formatting (JSONL + Chrome trace_event), sampling, the ambient
// TrialScope, and the disabled path (no hub / no sink = no-op).
#include <gtest/gtest.h>

#include <sstream>

#include "obs/counters.h"
#include "obs/hub.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace meecc::obs {
namespace {

TEST(Counters, RegisterIncrementAndSnapshot) {
  Registry registry;
  Counter hits = registry.counter("cache.l1", "hits");
  Counter misses = registry.counter("cache.l1", "misses");
  hits.inc();
  hits.inc(9);
  misses.inc();
  EXPECT_EQ(hits.value(), 10u);
  EXPECT_EQ(misses.value(), 1u);

  // Same (group, name) resolves to the same slot.
  Counter hits_again = registry.counter("cache.l1", "hits");
  hits_again.inc();
  EXPECT_EQ(hits.value(), 11u);

  const CounterSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].name, "cache.l1.hits");
  EXPECT_EQ(snapshot[0].value, 11u);
  EXPECT_EQ(snapshot[1].name, "cache.l1.misses");
  EXPECT_EQ(snapshot[1].value, 1u);
}

TEST(Counters, SnapshotIsSortedAcrossGroups) {
  Registry registry;
  registry.counter("mee", "walks").inc(3);
  registry.counter("cache.llc", "evictions").inc(1);
  registry.counter("des", "dispatched").inc(2);
  const CounterSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "cache.llc.evictions");
  EXPECT_EQ(snapshot[1].name, "des.dispatched");
  EXPECT_EQ(snapshot[2].name, "mee.walks");
}

TEST(Counters, GroupHandleNamesCompose) {
  Registry registry;
  CounterGroup group = registry.group("channel");
  group.counter("probe.hits").inc(5);
  EXPECT_EQ(snapshot_value(registry.snapshot(), "channel.probe.hits"), 5u);
}

TEST(Counters, HandlesSurviveLaterRegistrations) {
  Registry registry;
  Counter first = registry.counter("g", "a");
  first.inc();
  // Storms of new registrations must not invalidate the old slot.
  for (int i = 0; i < 200; ++i)
    registry.counter("g" + std::to_string(i), "x").inc();
  first.inc();
  EXPECT_EQ(first.value(), 2u);
}

TEST(Counters, ResetZeroesButKeepsHandles) {
  Registry registry;
  Counter c = registry.counter("g", "a");
  c.inc(7);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(snapshot_value(registry.snapshot(), "g.a"), 1u);
}

TEST(Counters, DetachedCounterIsNoOp) {
  Counter detached;
  detached.inc();
  detached.inc(100);
  EXPECT_EQ(detached.value(), 0u);
  EXPECT_FALSE(detached.bound());

  CounterGroup detached_group;
  Counter from_group = detached_group.counter("anything");
  from_group.inc();
  EXPECT_FALSE(from_group.bound());
}

TEST(Counters, MergeSumsUnionOfNames) {
  CounterSnapshot a = {{"cache.l1.hits", 10}, {"mee.walks", 3}};
  CounterSnapshot b = {{"cache.l1.hits", 5}, {"des.dispatched", 7}};
  merge_into(a, b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(snapshot_value(a, "cache.l1.hits"), 15u);
  EXPECT_EQ(snapshot_value(a, "des.dispatched"), 7u);
  EXPECT_EQ(snapshot_value(a, "mee.walks"), 3u);
  // Result stays sorted — merge output is the serialization order.
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const CounterSample& x, const CounterSample& y) {
                               return x.name < y.name;
                             }));
}

TEST(Counters, SnapshotTotalSumsPrefix) {
  const CounterSnapshot snapshot = {{"mee.stop.l0", 2},
                                    {"mee.stop.versions", 5},
                                    {"mee.walks", 100}};
  EXPECT_EQ(snapshot_total(snapshot, "mee.stop."), 7u);
  EXPECT_EQ(snapshot_total(snapshot, "cache."), 0u);
  EXPECT_EQ(snapshot_value(snapshot, "absent"), 0u);
}

TEST(TraceSinks, JsonlFormatIsExact) {
  const TraceEvent event{.cycle = 480,
                         .component = Component::kMee,
                         .core = 0,
                         .addr = 0x1f40,
                         .kind = "walk",
                         .outcome = "versions",
                         .value = 2};
  EXPECT_EQ(JsonlTraceSink::to_json_line(event),
            "{\"cycle\":480,\"component\":\"mee\",\"core\":0,"
            "\"addr\":\"0x1f40\",\"kind\":\"walk\","
            "\"outcome\":\"versions\",\"value\":2}");

  std::ostringstream out;
  JsonlTraceSink sink(out);
  sink.emit(event);
  sink.emit(event);
  sink.flush();
  EXPECT_EQ(out.str(),
            JsonlTraceSink::to_json_line(event) + '\n' +
                JsonlTraceSink::to_json_line(event) + '\n');
}

TEST(TraceSinks, ChromeFormatIsAnEventArray) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    sink.emit({.cycle = 10,
               .component = Component::kCache,
               .core = 1,
               .addr = 0x40,
               .kind = "evict",
               .outcome = "LLC",
               .value = 0});
    sink.emit({.cycle = 20,
               .component = Component::kChannel,
               .core = 0,
               .addr = 0,
               .kind = "probe",
               .outcome = "miss",
               .value = 300});
    sink.flush();
    sink.flush();  // idempotent close
  }
  const std::string text = out.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\n]\n"), std::string::npos);  // closed exactly once
  EXPECT_NE(text.find("\"name\":\"evict:LLC\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"cache\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(text.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":300"), std::string::npos);
  // Exactly one separator between the two events, none trailing.
  EXPECT_EQ(std::count(text.begin(), text.end(), '['), 1);
}

TEST(TraceSinks, CollectingSinkCapsAndCountsDrops) {
  CollectingSink sink(2);
  for (int i = 0; i < 5; ++i)
    sink.emit({.cycle = static_cast<Cycles>(i), .kind = "k", .outcome = "o"});
  EXPECT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.dropped(), 3u);
  EXPECT_EQ(sink.events()[1].cycle, 1u);

  CollectingSink unbounded;
  for (int i = 0; i < 5; ++i) unbounded.emit({.kind = "k", .outcome = "o"});
  EXPECT_EQ(unbounded.events().size(), 5u);
  EXPECT_EQ(unbounded.dropped(), 0u);
}

TEST(TraceSinks, SamplingKeepsEveryNth) {
  CollectingSink inner;
  SamplingSink sampler(inner, 3);
  for (int i = 0; i < 10; ++i)
    sampler.emit({.cycle = static_cast<Cycles>(i), .kind = "k", .outcome = "o"});
  // First event always passes, then every 3rd: cycles 0, 3, 6, 9.
  ASSERT_EQ(inner.events().size(), 4u);
  EXPECT_EQ(inner.events()[0].cycle, 0u);
  EXPECT_EQ(inner.events()[3].cycle, 9u);
}

TEST(Hub, TracingRequiresASink) {
  Hub hub;
  EXPECT_FALSE(hub.tracing());
  CollectingSink sink;
  hub.set_trace_sink(&sink);
  EXPECT_EQ(hub.tracing(), kTracingCompiledIn);
  if (hub.tracing()) hub.trace({.kind = "k", .outcome = "o"});
  EXPECT_EQ(sink.events().size(), kTracingCompiledIn ? 1u : 0u);
  hub.set_trace_sink(nullptr);
  EXPECT_FALSE(hub.tracing());
}

TEST(TrialScope, AbsorbsAndNests) {
  EXPECT_EQ(TrialScope::current(), nullptr);
  CollectingSink sink;
  {
    TrialScope outer(&sink);
    EXPECT_EQ(TrialScope::current(), &outer);
    EXPECT_EQ(outer.trace_sink(), &sink);

    Registry registry;
    registry.counter("g", "a").inc(3);
    outer.absorb(registry);
    {
      TrialScope inner;
      EXPECT_EQ(TrialScope::current(), &inner);
      EXPECT_EQ(inner.trace_sink(), nullptr);
    }
    EXPECT_EQ(TrialScope::current(), &outer);

    // Absorbing twice sums — the fig6 two-machine case.
    outer.absorb(registry);
    EXPECT_EQ(snapshot_value(outer.counters(), "g.a"), 6u);
  }
  EXPECT_EQ(TrialScope::current(), nullptr);
}

}  // namespace
}  // namespace meecc::obs
