#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "channel/candidates.h"
#include "channel/capacity_probe.h"
#include "channel/classify.h"
#include "channel/eviction_set.h"
#include "channel/latency_survey.h"
#include "channel/mitigation.h"
#include "channel/testbed.h"
#include "channel/timing_study.h"
#include "common/check.h"

namespace meecc::channel {
namespace {

// Smaller, faster machine for unit-level channel tests. Crypto is disabled:
// these tests exercise timing/caching behaviour, which is unchanged.
TestBedConfig fast_config(std::uint64_t seed = 42) {
  TestBedConfig config = default_testbed_config(seed);
  config.system.address_map.general_size = 16ull << 20;
  config.system.address_map.epc_size = 16ull << 20;
  config.system.mee.functional_crypto = false;
  config.noise_enclave_bytes = 1ull << 20;
  config.background_enclave_bytes = 1ull << 20;
  return config;
}

TEST(AdaptiveClassifier, TracksBaselineAndFlagsMisses) {
  AdaptiveClassifier c(40.0);
  c.calibrate(500.0);
  EXPECT_FALSE(c.is_miss(510.0));
  EXPECT_TRUE(c.is_miss(560.0));
  // Miss measurements must NOT drag the baseline up.
  EXPECT_NEAR(c.baseline(), 502.0, 1.0);
}

TEST(AdaptiveClassifier, FollowsSlowDrift) {
  AdaptiveClassifier c(40.0);
  c.calibrate(500.0);
  // Baseline drifts up 0.5 cycles per probe — classifier must follow.
  double level = 500.0;
  for (int i = 0; i < 200; ++i) {
    level += 0.5;
    EXPECT_FALSE(c.is_miss(level)) << "probe " << i;
  }
  EXPECT_TRUE(c.is_miss(level + 65.0));  // signal still detected after drift
}

TEST(AdaptiveClassifier, FirstSampleCalibratesWhenUnseeded) {
  AdaptiveClassifier c(40.0);
  EXPECT_FALSE(c.is_miss(480.0));
  EXPECT_TRUE(c.calibrated());
  EXPECT_TRUE(c.is_miss(540.0));
}

TEST(AdaptiveClassifier, RejectsBadParameters) {
  EXPECT_THROW(AdaptiveClassifier(0.0), CheckFailure);
  EXPECT_THROW(AdaptiveClassifier(40.0, 0.0), CheckFailure);
}

TEST(Candidates, FourKStrideSameOffset) {
  TestBed bed(fast_config());
  const auto set = make_candidate_set(bed.trojan_enclave(), 2, 10, 3);
  ASSERT_EQ(set.size(), 10u);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set[i].page_offset(), 3u * kChunkSize);
    if (i > 0) {
      EXPECT_EQ(set[i] - set[i - 1], kPageSize);
    }
  }
}

TEST(Candidates, BoundsChecked) {
  TestBed bed(fast_config());
  const auto pages = bed.trojan_enclave().page_count();
  EXPECT_THROW(make_candidate_set(bed.trojan_enclave(), 0, pages + 1, 0),
               CheckFailure);
  EXPECT_THROW(make_candidate_set(bed.trojan_enclave(), 0, 1, 8),
               CheckFailure);
}

TEST(Candidates, VersionsLinesCycleThroughEightAliasGroups) {
  // With contiguous EPC frames, 4 KB-stride candidates' versions lines must
  // cycle deterministically over 8 MEE-cache sets (the alias groups): this
  // is the structural fact Fig. 4 and Algorithm 1 rely on.
  TestBed bed(fast_config());
  const auto set = make_candidate_set(bed.trojan_enclave(), 0, 64, 1);
  auto& system = bed.system();
  const auto& geometry = system.mee().geometry();
  const auto cache_geom = system.mee().cache().geometry();

  std::map<std::uint64_t, int> sets_seen;
  for (const VirtAddr va : set) {
    const PhysAddr pa = bed.trojan().vas().translate(va);
    const PhysAddr version_line =
        geometry.versions_line_addr(geometry.chunk_of(pa));
    const auto cache_set = cache_geom.set_index(version_line);
    EXPECT_EQ(cache_set % 2, 1u) << "versions lines live in odd sets";
    ++sets_seen[cache_set];
  }
  EXPECT_EQ(sets_seen.size(), 8u);
  for (const auto& [cache_set, count] : sets_seen) EXPECT_EQ(count, 8);
}

TEST(TestBed, ConstructsAndRunsBackground) {
  TestBed bed(fast_config());
  bed.scheduler().run_until(500'000);
  // Ambient background activity produced MEE traffic.
  EXPECT_GT(bed.system().mee().stats().reads, 0u);
}

TEST(TestBed, RunUntilFlagGuardsAgainstDrainedQueue) {
  TestBedConfig config = fast_config();
  config.background_mean_gap = 0;  // nothing scheduled at all
  TestBed bed(config);
  bool never = false;
  EXPECT_THROW(bed.run_until_flag(never), CheckFailure);
}

TEST(NoiseEnv, ToStringCoversAll) {
  EXPECT_EQ(to_string(NoiseEnv::kNone), "no noise");
  EXPECT_EQ(to_string(NoiseEnv::kMeeStride4K), "MEE noise, 4KB stride");
}

// ------------------------------------------------------- reverse-engineering

TEST(LatencySurvey, SmallStrideHitsLowSmallRegionsHitHigh) {
  TestBed bed(fast_config());
  LatencySurveyConfig config;
  config.strides = {64, 4096};
  config.samples_per_stride = 600;
  const auto result = run_latency_survey(bed, config);
  ASSERT_EQ(result.series.size(), 2u);

  const auto& s64 = result.series[0];
  const auto versions_idx = static_cast<std::size_t>(mee::Level::kVersions);
  EXPECT_GT(s64.stop_counts[versions_idx], 400u);  // ~7/8 versions hits

  const auto& s4k = result.series[1];
  EXPECT_LT(s4k.stop_counts[versions_idx], 100u);
  EXPECT_GT(s4k.latency.mean(), s64.latency.mean() + 50.0);
}

TEST(LatencySurvey, PerLevelLatenciesAreOrderedAndSpaced) {
  TestBed bed(fast_config());
  LatencySurveyConfig config;
  config.strides = {64, 512, 4096, 32768};
  config.samples_per_stride = 800;
  const auto result = run_latency_survey(bed, config);

  const auto mean_of = [&](mee::Level level) {
    const auto& stats = result.per_level[static_cast<std::size_t>(level)];
    EXPECT_GT(stats.count(), 30u) << to_string(level);
    return stats.mean();
  };
  const double versions = mean_of(mee::Level::kVersions);
  const double l0 = mean_of(mee::Level::kL0);
  const double l1 = mean_of(mee::Level::kL1);
  const double l2 = mean_of(mee::Level::kL2);
  // Any versions miss pays the serialized counter fetch (~200 cycles, the
  // paper's hit-to-miss gap); further levels add the smaller pipelined step.
  EXPECT_GT(l0, versions + 150.0);
  EXPECT_GT(l1, l0 + 25.0);
  EXPECT_GT(l2, l1 + 25.0);
}

TEST(CapacityProbe, ProbabilityRisesToCertaintyAt64) {
  TestBed bed(fast_config());
  CapacityProbeConfig config;
  config.trials = 40;
  const auto result = run_capacity_probe(bed, config);
  ASSERT_EQ(result.points.size(), 6u);
  // Monotone-ish rise; saturation at 64 (paper Fig. 4).
  EXPECT_LT(result.points[0].probability, 0.5);   // N=2
  EXPECT_GE(result.points[5].probability, 0.95);  // N=64
  EXPECT_EQ(result.knee, 64u);
  EXPECT_EQ(result.estimated_capacity_bytes, 64u * 1024);
}

TEST(EvictionSet, RecoversAssociativityEight) {
  TestBed bed(fast_config());
  EvictionSetConfig config;
  config.candidate_pages = 96;
  const auto result = find_eviction_set(bed, config);
  EXPECT_TRUE(result.found_test_address);
  EXPECT_EQ(result.associativity(), 8u);

  // Ground truth: every recovered address' versions line maps to the same
  // MEE-cache set as the test address's versions line.
  auto& system = bed.system();
  const auto& geometry = system.mee().geometry();
  const auto cache_geom = system.mee().cache().geometry();
  const auto set_of = [&](VirtAddr va) {
    const PhysAddr pa = bed.trojan().vas().translate(va);
    return cache_geom.set_index(
        geometry.versions_line_addr(geometry.chunk_of(pa)));
  };
  const auto target_set = set_of(result.test_address);
  for (const VirtAddr addr : result.eviction_set)
    EXPECT_EQ(set_of(addr), target_set);
}

// ------------------------------------------------------------ timing study

TEST(TimingStudy, OverheadOrderingMatchesFig2) {
  TestBed bed(fast_config());
  TimingStudyConfig config;
  config.samples = 150;
  const auto result = run_timing_study(bed, config);
  EXPECT_TRUE(result.rdtsc_faults_in_enclave);
  // Native < shared clock << OCALL.
  EXPECT_LT(result.native.overhead.mean(), 80.0);
  EXPECT_LT(result.shared_clock.overhead.mean(), 120.0);
  EXPECT_GT(result.shared_clock.overhead.mean(), 20.0);
  EXPECT_GE(result.ocall.overhead.mean(), 8000.0);
  EXPECT_LE(result.ocall.overhead.mean(), 15000.0);
}

// -------------------------------------------------------------- mitigation

TEST(Mitigation, WayPartitionHalvesOccupancy) {
  EXPECT_EQ(cache::way_partition_mask(8, CoreId{0}), 0x0Fu);
  EXPECT_EQ(cache::way_partition_mask(8, CoreId{1}), 0xF0u);
  EXPECT_EQ(cache::way_partition_mask(8, CoreId{2}), 0x0Fu);
}

TEST(Mitigation, PartitioningCostsLegitPerformance) {
  // A 256 KB working set: 8 versions lines per cache set — exactly fits
  // the 8-way MEE cache, thrashes the 4-way partitioned half.
  TestBed baseline_bed(fast_config(7));
  const auto baseline = measure_legit_workload(baseline_bed, 256 * 1024, 2000);

  TestBedConfig partitioned_config = fast_config(7);
  partitioned_config.system.mee.cache_policy.fill = "partition";
  TestBed partitioned_bed(partitioned_config);
  const auto partitioned =
      measure_legit_workload(partitioned_bed, 256 * 1024, 2000);

  EXPECT_LT(partitioned.versions_hit_rate, baseline.versions_hit_rate - 0.15);
  EXPECT_GT(partitioned.mean_protected_latency,
            baseline.mean_protected_latency + 30.0);
}

}  // namespace
}  // namespace meecc::channel
