// Fault injection for the on-disk setup store: every way an entry file can
// be wrong — truncated, flipped checksum byte, wrong format version,
// mismatched config hash, foreign key at the same content address — must
// surface as its own distinct Lookup status and fall back to a fresh
// build. A corrupt store may cost time; it must never crash a campaign and
// never hand back bytes that weren't verified end to end.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "golden/setup_store_fixtures.h"
#include "runtime/experiment.h"
#include "runtime/runner.h"
#include "runtime/setup_cache.h"
#include "runtime/setup_store.h"

namespace meecc {
namespace {

namespace fs = std::filesystem;
using runtime::SetupStore;

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fs::path(::testing::TempDir()) /
              ("meecc_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

void plant(const SetupStore& store, const std::string& key,
           const std::string& bytes) {
  std::ofstream out(store.path_for(key), std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(StoreFault, EachCorruptionModeReportsItsDistinctStatus) {
  ScratchDir dir("store_status");
  const std::uint64_t config_hash =
      runtime::setup_store_config_hash("fault-exp");
  const SetupStore store(dir.str(), config_hash);
  const std::string key = "fault-exp|seed=7";

  std::set<SetupStore::Lookup> seen;
  for (const auto& fixture :
       testing::setup_store_fixtures(config_hash, key, "the-payload")) {
    plant(store, key, fixture.bytes);
    const SetupStore::LoadResult loaded = store.load(key);
    EXPECT_EQ(loaded.status, fixture.expected) << fixture.name;
    if (fixture.expected == SetupStore::Lookup::kHit) {
      ASSERT_TRUE(loaded.payload.has_value()) << fixture.name;
      EXPECT_EQ(*loaded.payload, "the-payload");
    } else {
      EXPECT_FALSE(loaded.payload.has_value()) << fixture.name;
    }
    seen.insert(fixture.expected);
  }
  // "Distinct error per mode" is the contract: the fixture set must cover
  // every status except kAbsent, with no two modes collapsing into one.
  EXPECT_EQ(seen.size(), 7u);

  fs::remove(store.path_for(key));
  EXPECT_EQ(store.load(key).status, SetupStore::Lookup::kAbsent);
}

TEST(StoreFault, StoreWritesAtomicallyAndRoundTrips) {
  ScratchDir dir("store_roundtrip");
  const SetupStore store(dir.str(), 42);
  ASSERT_TRUE(store.store("key-a", "payload-one"));
  const SetupStore::LoadResult first = store.load("key-a");
  ASSERT_EQ(first.status, SetupStore::Lookup::kHit);
  EXPECT_EQ(*first.payload, "payload-one");

  // Rewrite under the same key replaces the entry in place.
  ASSERT_TRUE(store.store("key-a", "payload-two"));
  EXPECT_EQ(*store.load("key-a").payload, "payload-two");

  // The temp file used for atomicity never survives a completed store().
  for (const auto& entry : fs::directory_iterator(dir.path()))
    EXPECT_EQ(entry.path().extension(), ".setup")
        << "leftover " << entry.path();
}

// SetupCache with an attached store: every corruption mode must produce a
// fresh build, tallied under its distinct reject reason — and a valid
// entry must be used without running the builder.
TEST(StoreFault, CacheFallsBackToFreshBuildOnEveryCorruption) {
  ScratchDir dir("store_fallback");
  const std::uint64_t config_hash =
      runtime::setup_store_config_hash("fault-exp");
  SetupStore store(dir.str(), config_hash);
  const std::string key = "fault-exp|seed=7";

  const auto encoder = [](const void* state) {
    io::Writer w;
    w.u64(*static_cast<const std::uint64_t*>(state));
    return w.take();
  };
  const auto decoder = [](std::string_view payload)
      -> std::shared_ptr<const void> {
    io::Reader r(payload);
    auto value = std::make_shared<std::uint64_t>(r.u64());
    r.expect_done();
    return value;
  };

  io::Writer good_payload;
  good_payload.u64(777);
  for (const auto& fixture :
       testing::setup_store_fixtures(config_hash, key, good_payload.data())) {
    runtime::SetupCache cache;  // fresh per fixture: no memory-tier hits
    cache.attach_store(&store);
    plant(store, key, fixture.bytes);

    int builds = 0;
    const auto result = cache.get_or_build(
        key,
        [&]() -> std::shared_ptr<const void> {
          ++builds;
          return std::make_shared<std::uint64_t>(999);
        },
        encoder, decoder);
    const std::uint64_t value =
        *static_cast<const std::uint64_t*>(result.get());

    if (fixture.expected == SetupStore::Lookup::kHit) {
      EXPECT_EQ(builds, 0) << fixture.name << ": silent rebuild of a hit";
      EXPECT_EQ(value, 777u) << fixture.name;
      EXPECT_EQ(cache.disk_hits(), 1u) << fixture.name;
      EXPECT_TRUE(cache.disk_rejects().empty()) << fixture.name;
    } else {
      EXPECT_EQ(builds, 1) << fixture.name << ": corrupt entry not rebuilt";
      EXPECT_EQ(value, 999u) << fixture.name << ": silent reuse of bad bytes";
      EXPECT_EQ(cache.builds(), 1u) << fixture.name;
      const auto rejects = cache.disk_rejects();
      const std::string reason(runtime::to_string(fixture.expected));
      ASSERT_EQ(rejects.size(), 1u) << fixture.name;
      EXPECT_EQ(rejects.begin()->first, reason) << fixture.name;
      EXPECT_EQ(rejects.begin()->second, 1u) << fixture.name;
      // The fallback build was written back: the store self-heals and the
      // next process gets a disk hit.
      EXPECT_EQ(store.load(key).status, SetupStore::Lookup::kHit)
          << fixture.name;
    }
  }
}

// A frame that passes every store-level check but whose payload the
// experiment decoder rejects (written by incompatible code) is one more
// fall-back-to-build mode, tallied as "decode-error".
TEST(StoreFault, DecoderRejectionFallsBackToBuild) {
  ScratchDir dir("store_decode");
  const std::uint64_t config_hash =
      runtime::setup_store_config_hash("fault-exp");
  SetupStore store(dir.str(), config_hash);
  const std::string key = "fault-exp|seed=9";
  ASSERT_TRUE(store.store(key, ""));  // valid frame, empty payload

  runtime::SetupCache cache;
  cache.attach_store(&store);
  int builds = 0;
  const auto result = cache.get_or_build(
      key,
      [&]() -> std::shared_ptr<const void> {
        ++builds;
        return std::make_shared<std::uint64_t>(5);
      },
      [](const void* state) {
        io::Writer w;
        w.u64(*static_cast<const std::uint64_t*>(state));
        return w.take();
      },
      [](std::string_view payload) -> std::shared_ptr<const void> {
        io::Reader r(payload);
        return std::make_shared<std::uint64_t>(r.u64());  // throws: no bytes
      });
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(*static_cast<const std::uint64_t*>(result.get()), 5u);
  EXPECT_EQ(cache.disk_hits(), 0u);
  const auto rejects = cache.disk_rejects();
  ASSERT_EQ(rejects.count("decode-error"), 1u);
  EXPECT_EQ(rejects.at("decode-error"), 1u);
}

// End to end through the runner: a sweep pointed at a poisoned store
// completes every trial (fresh builds), and having healed the store, a
// second sweep runs entirely on disk hits with identical results.
TEST(StoreFault, RunnerSurvivesPoisonedStoreThenHealsIt) {
  ScratchDir dir("store_runner");
  const std::uint64_t config_hash =
      runtime::setup_store_config_hash("toy_store");
  SetupStore store(dir.str(), config_hash);

  std::atomic<int> builds{0};
  runtime::Experiment exp;
  exp.name = "toy_store";
  exp.setup_key = [](const runtime::TrialSpec& spec) {
    return "toy_store|seed=" + std::to_string(spec.seed);
  };
  exp.run = [&builds](const runtime::TrialSpec& spec) {
    const auto warm = runtime::memoized_setup<std::uint64_t>(
        "toy_store|seed=" + std::to_string(spec.seed),
        [&]() -> std::shared_ptr<const std::uint64_t> {
          builds.fetch_add(1);
          Rng rng(spec.seed);
          return std::make_shared<const std::uint64_t>(rng.next_u64());
        },
        [](const std::uint64_t& value) {
          io::Writer w;
          w.u64(value);
          return w.take();
        },
        [](std::string_view payload)
            -> std::shared_ptr<const std::uint64_t> {
          io::Reader r(payload);
          auto value = std::make_shared<std::uint64_t>(r.u64());
          r.expect_done();
          return value;
        });
    runtime::TrialResult result;
    result.metric("warm_mod", static_cast<double>(*warm % 100003));
    return result;
  };

  std::vector<runtime::TrialSpec> trials;
  for (std::size_t i = 0; i < 4; ++i)
    trials.push_back(runtime::TrialSpec{.experiment = "toy_store",
                                        .trial_index = i,
                                        .seed = 100 + i % 2,
                                        .params = {}});

  // Poison both keys with garbage the frame reader must reject.
  plant(store, "toy_store|seed=100", "not a frame at all");
  plant(store, "toy_store|seed=101", std::string(200, '\xff'));

  runtime::RunnerConfig config;
  config.jobs = 2;
  config.setup_store = &store;
  runtime::SetupStats poisoned_stats;
  const auto poisoned =
      runtime::run_trials(exp, trials, config, &poisoned_stats);
  for (const auto& record : poisoned) EXPECT_TRUE(record.ok) << record.error;
  EXPECT_EQ(builds.load(), 2);
  EXPECT_EQ(poisoned_stats.builds, 2u);
  EXPECT_EQ(poisoned_stats.disk_hits, 0u);

  // Second "process": a fresh runner pass loads the healed entries.
  builds = 0;
  runtime::SetupStats healed_stats;
  const auto healed = runtime::run_trials(exp, trials, config, &healed_stats);
  EXPECT_EQ(builds.load(), 0);
  EXPECT_EQ(healed_stats.builds, 0u);
  EXPECT_EQ(healed_stats.disk_hits, 2u);
  EXPECT_EQ(healed_stats.memory_hits, 2u);

  ASSERT_EQ(poisoned.size(), healed.size());
  for (std::size_t i = 0; i < poisoned.size(); ++i)
    EXPECT_EQ(poisoned[i].result.metrics, healed[i].result.metrics)
        << "trial " << i;
}

}  // namespace
}  // namespace meecc
