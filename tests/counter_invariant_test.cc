// Property tests over the observability counters: structural invariants
// that must hold for ANY workload (the counters cross-check the simulator's
// own bookkeeping), plus the determinism contract — counters are part of
// the trial record, so they must be bit-identical at any --jobs count.
#include <gtest/gtest.h>

#include "channel/latency_survey.h"
#include "channel/testbed.h"
#include "obs/counters.h"
#include "runtime/experiments.h"
#include "runtime/registry.h"
#include "runtime/runner.h"
#include "runtime/sweep.h"

namespace meecc {
namespace {

obs::CounterSnapshot survey_counters(std::uint64_t seed) {
  channel::TestBed bed(channel::default_testbed_config(seed));
  channel::LatencySurveyConfig config;
  config.samples_per_stride = 60;
  channel::run_latency_survey(bed, config);
  return bed.system().hub().registry().snapshot();
}

std::uint64_t value(const obs::CounterSnapshot& s, std::string_view name) {
  return obs::snapshot_value(s, name);
}

TEST(CounterInvariants, CacheLevelsAccountForEveryAccess) {
  const auto counters = survey_counters(7);

  // Every do_read/do_write is exactly one L1 access...
  EXPECT_EQ(value(counters, "cache.l1.hits") + value(counters, "cache.l1.misses"),
            value(counters, "sys.reads") + value(counters, "sys.writes"));
  // ...every L1 miss is exactly one L2 access, every L2 miss one LLC access.
  EXPECT_EQ(value(counters, "cache.l2.hits") + value(counters, "cache.l2.misses"),
            value(counters, "cache.l1.misses"));
  EXPECT_EQ(value(counters, "cache.llc.hits") +
                value(counters, "cache.llc.misses"),
            value(counters, "cache.l2.misses"));
  // The workload actually exercised the hierarchy.
  EXPECT_GT(value(counters, "sys.reads"), 0u);
  EXPECT_GT(value(counters, "cache.l1.misses"), 0u);
}

TEST(CounterInvariants, MeeStopLevelsSumToWalks) {
  const auto counters = survey_counters(11);

  const std::uint64_t stops = obs::snapshot_total(counters, "mee.stop.");
  const std::uint64_t walks =
      value(counters, "mee.read_walks") + value(counters, "mee.write_walks");
  EXPECT_GT(stops, 0u);
  // Every walk stops at exactly one level.
  EXPECT_EQ(stops, walks);
  // The per-core split partitions the same walks.
  std::uint64_t per_core = 0;
  for (const auto& sample : counters)
    if (sample.name.starts_with("mee.core") &&
        sample.name.find(".stop.") != std::string::npos)
      per_core += sample.value;
  EXPECT_EQ(per_core, stops);
  // Versions-class MEE-cache lookups happen once per walk too.
  EXPECT_EQ(value(counters, "mee.cache.versions_class.hits") +
                value(counters, "mee.cache.versions_class.misses"),
            walks);
}

TEST(CounterInvariants, ReadWalksEqualProtectedDramReads) {
  const auto counters = survey_counters(13);
  // The MEE sits in front of the protected region: every protected-region
  // DRAM read is one read walk, and nothing else triggers one.
  EXPECT_EQ(value(counters, "mee.read_walks"),
            value(counters, "dram.protected_reads"));
  EXPECT_GT(value(counters, "dram.protected_reads"), 0u);
  // Protected reads are a subset of all DRAM reads.
  EXPECT_LE(value(counters, "dram.protected_reads"),
            value(counters, "dram.reads"));
}

TEST(CounterInvariants, DesDispatchBookkeeping) {
  const auto counters = survey_counters(17);
  EXPECT_GT(value(counters, "des.spawned"), 0u);
  // Every dispatched event was scheduled first (some may still be queued).
  EXPECT_LE(value(counters, "des.dispatched"), value(counters, "des.scheduled"));
  EXPECT_GT(value(counters, "des.dispatched"), 0u);
}

// MeeStats is no longer parallel bookkeeping: stats() is DERIVED from the
// obs counters, so the struct and the registry can never drift. Assert the
// derivation reads back the same numbers the snapshot reports.
TEST(CounterInvariants, MeeStatsAreDerivedFromTheCounters) {
  channel::TestBed bed(channel::default_testbed_config(19));
  channel::LatencySurveyConfig config;
  config.samples_per_stride = 60;
  channel::run_latency_survey(bed, config);

  const auto counters = bed.system().hub().registry().snapshot();
  const auto stats = bed.system().mee().stats();
  EXPECT_EQ(stats.reads, value(counters, "mee.read_walks"));
  EXPECT_EQ(stats.writes, value(counters, "mee.write_walks"));
  EXPECT_EQ(stats.tag_hits, value(counters, "mee.cache.tag_class.hits"));
  EXPECT_EQ(stats.tag_misses, value(counters, "mee.cache.tag_class.misses"));
  EXPECT_EQ(stats.tampers_detected, value(counters, "mee.tampers_detected"));
  std::uint64_t stop_sum = 0;
  for (const auto stops : stats.stops) stop_sum += stops;
  EXPECT_EQ(stop_sum, obs::snapshot_total(counters, "mee.stop."));
  EXPECT_GT(stats.reads, 0u);
}

// The hierarchy's per-cache CacheStats and its cache.* hub counters are
// maintained on the same events; any workload must leave them equal.
TEST(CounterInvariants, HierarchyCacheStatsMatchTheCounters) {
  channel::TestBed bed(channel::default_testbed_config(23));
  channel::LatencySurveyConfig config;
  config.samples_per_stride = 60;
  channel::run_latency_survey(bed, config);

  const auto counters = bed.system().hub().registry().snapshot();
  auto& hierarchy = bed.system().hierarchy();
  std::uint64_t l1_hits = 0, l1_misses = 0, l2_hits = 0, l2_misses = 0;
  for (unsigned c = 0; c < hierarchy.core_count(); ++c) {
    const auto& l1 = hierarchy.l1(CoreId{c}).stats();
    const auto& l2 = hierarchy.l2(CoreId{c}).stats();
    l1_hits += l1.hits;
    l1_misses += l1.misses;
    l2_hits += l2.hits;
    l2_misses += l2.misses;
  }
  EXPECT_EQ(l1_hits, value(counters, "cache.l1.hits"));
  EXPECT_EQ(l1_misses, value(counters, "cache.l1.misses"));
  EXPECT_EQ(l2_hits, value(counters, "cache.l2.hits"));
  EXPECT_EQ(l2_misses, value(counters, "cache.l2.misses"));

  const auto& llc = hierarchy.llc().stats();
  EXPECT_EQ(llc.hits, value(counters, "cache.llc.hits"));
  EXPECT_EQ(llc.misses, value(counters, "cache.llc.misses"));
  EXPECT_EQ(llc.evictions, value(counters, "cache.llc.evictions"));
}

// Counters ride in the TrialRecord, so the runner's determinism contract
// extends to them: bit-identical at --jobs 1 and --jobs 4.
TEST(CounterInvariants, IdenticalAcrossJobCounts) {
  runtime::register_builtin_experiments();
  const runtime::Experiment& experiment =
      runtime::get_experiment("fig5_latency_histogram");
  runtime::SweepSpec sweep;
  sweep.sets = {{"samples_per_stride", "40"}};
  sweep.seeds = 4;
  const auto trials = runtime::expand_sweep(experiment, sweep);

  runtime::RunnerConfig serial;
  serial.jobs = 1;
  runtime::RunnerConfig parallel;
  parallel.jobs = 4;
  const auto a = runtime::run_trials(experiment, trials, serial);
  const auto b = runtime::run_trials(experiment, trials, parallel);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok) << a[i].error;
    EXPECT_FALSE(a[i].counters.empty());
    EXPECT_EQ(a[i].counters, b[i].counters) << "trial " << i;
  }
}

}  // namespace
}  // namespace meecc
