#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/geometry.h"
#include "cache/hierarchy.h"
#include "cache/replacement.h"
#include "cache/set_assoc_cache.h"
#include "common/check.h"
#include "common/rng.h"

namespace meecc::cache {
namespace {

TEST(Geometry, MeeCacheIsPaperConfiguration) {
  const Geometry g = mee_cache_geometry();
  g.validate();
  EXPECT_EQ(g.size_bytes, 64u * 1024);
  EXPECT_EQ(g.ways, 8u);
  EXPECT_EQ(g.sets(), 128u);
  EXPECT_EQ(g.lines(), 1024u);
}

TEST(Geometry, IndexAndTagRoundTrip) {
  const Geometry g = mee_cache_geometry();
  for (std::uint64_t raw : {0ull, 64ull, 128ull * 64, 0x12345ull * 64}) {
    const PhysAddr a{raw};
    const auto set = g.set_index(a);
    const auto tag = g.tag(a);
    EXPECT_LT(set, g.sets());
    EXPECT_EQ(g.line_address(tag, set).raw, a.line_base().raw);
  }
}

TEST(Geometry, ConsecutiveLinesConsecutiveSets) {
  const Geometry g = mee_cache_geometry();
  EXPECT_EQ(g.set_index(PhysAddr{0}), 0u);
  EXPECT_EQ(g.set_index(PhysAddr{64}), 1u);
  EXPECT_EQ(g.set_index(PhysAddr{127 * 64}), 127u);
  EXPECT_EQ(g.set_index(PhysAddr{128 * 64}), 0u);  // wraps at way span
}

TEST(Geometry, ValidateRejectsBadShapes) {
  EXPECT_THROW((Geometry{.size_bytes = 1000, .ways = 8}).validate(),
               CheckFailure);
  EXPECT_THROW((Geometry{.size_bytes = 64 * 1024, .ways = 0}).validate(),
               CheckFailure);
  // 192 sets is not a power of two.
  EXPECT_THROW((Geometry{.size_bytes = 192 * 64, .ways = 1}).validate(),
               CheckFailure);
}

class ReplacementTest : public ::testing::TestWithParam<ReplacementKind> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementTest,
                         ::testing::Values(ReplacementKind::kLru,
                                           ReplacementKind::kTreePlru,
                                           ReplacementKind::kNru,
                                           ReplacementKind::kRandom),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param)) ==
                                          "tree-plru"
                                      ? "TreePlru"
                                      : std::string(to_string(param_info.param));
                         });

TEST_P(ReplacementTest, VictimAlwaysInRange) {
  auto policy = make_policy(GetParam(), 8, Rng(1));
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    policy->touch(static_cast<std::uint32_t>(rng.next_below(8)));
    EXPECT_LT(policy->victim(), 8u);
  }
}

TEST(LruPolicy, EvictsLeastRecentlyUsed) {
  auto policy = make_policy(ReplacementKind::kLru, 4, Rng(1));
  for (std::uint32_t w : {0u, 1u, 2u, 3u}) policy->touch(w);
  policy->touch(0);  // order now: 1,2,3,0
  EXPECT_EQ(policy->victim(), 1u);
  policy->touch(1);
  EXPECT_EQ(policy->victim(), 2u);
}

TEST(LruPolicy, InvalidatedWayChosenFirst) {
  auto policy = make_policy(ReplacementKind::kLru, 4, Rng(1));
  for (std::uint32_t w : {0u, 1u, 2u, 3u}) policy->touch(w);
  policy->invalidate(2);
  EXPECT_EQ(policy->victim(), 2u);
}

TEST(TreePlru, NeverEvictsTheJustTouchedWay) {
  auto policy = make_policy(ReplacementKind::kTreePlru, 8, Rng(1));
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const auto w = static_cast<std::uint32_t>(rng.next_below(8));
    policy->touch(w);
    EXPECT_NE(policy->victim(), w);
  }
}

TEST(TreePlru, SteadyStateForwardPassDoesNotEvictTheProbedLine) {
  // The property the paper's two-phase eviction exists for (§5.3): once the
  // trojan's 8 lines are resident and the spy's probe line has been
  // re-inserted, a single FORWARD access pass over the trojan's set fails to
  // evict the spy's line (tree-PLRU redirects the one refill elsewhere); the
  // forward+backward double pass always succeeds.
  Rng rng(1);
  const Geometry g{.size_bytes = 8 * 64 * 8, .ways = 8};
  int fwd_survivals = 0, fwd_bwd_survivals = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    SetAssocCache cache(g, ReplacementKind::kTreePlru, rng.fork());
    for (int i = 0; i < 8; ++i) cache.access(g.line_address(200 + i, 3));
    for (int round = 0; round < 3; ++round) {
      const PhysAddr spy_line = g.line_address(100, 3);
      cache.access(spy_line);  // spy probe re-primes its line
      for (int i = 0; i < 8; ++i) cache.access(g.line_address(200 + i, 3));
      if (round == 2 && cache.contains(spy_line)) ++fwd_survivals;
      for (int i = 7; i >= 0; --i) cache.access(g.line_address(200 + i, 3));
      if (round == 2 && cache.contains(spy_line)) ++fwd_bwd_survivals;
    }
  }
  EXPECT_GT(fwd_survivals, trials / 2);  // forward-only: eviction unreliable
  EXPECT_EQ(fwd_bwd_survivals, 0);       // two-phase: eviction guaranteed
}

TEST(Nru, PrefersUnreferencedWays) {
  auto policy = make_policy(ReplacementKind::kNru, 4, Rng(1));
  policy->touch(0);
  policy->touch(1);
  for (int i = 0; i < 50; ++i) {
    const auto v = policy->victim();
    EXPECT_TRUE(v == 2 || v == 3);
  }
}

Geometry tiny_geometry() {
  return Geometry{.size_bytes = 4 * 64 * 4, .ways = 4};  // 4 sets, 4 ways
}

PhysAddr addr_for(const Geometry& g, std::uint64_t set, std::uint64_t tag) {
  return g.line_address(tag, set);
}

TEST(SetAssocCache, HitAfterFill) {
  SetAssocCache cache(tiny_geometry(), ReplacementKind::kLru, Rng(1));
  const PhysAddr a = addr_for(cache.geometry(), 2, 5);
  EXPECT_FALSE(cache.lookup(a));
  cache.fill(a);
  EXPECT_TRUE(cache.contains(a));
  EXPECT_TRUE(cache.lookup(a));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SetAssocCache, FillBeyondWaysEvicts) {
  SetAssocCache cache(tiny_geometry(), ReplacementKind::kLru, Rng(1));
  const auto& g = cache.geometry();
  for (std::uint64_t t = 0; t < 4; ++t)
    EXPECT_EQ(cache.fill(addr_for(g, 1, t)), std::nullopt);
  EXPECT_EQ(cache.occupancy(1), 4u);
  const auto evicted = cache.fill(addr_for(g, 1, 99));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->raw, addr_for(g, 1, 0).raw);  // LRU victim
  EXPECT_EQ(cache.occupancy(1), 4u);
  EXPECT_FALSE(cache.contains(addr_for(g, 1, 0)));
}

TEST(SetAssocCache, SetsAreIndependent) {
  SetAssocCache cache(tiny_geometry(), ReplacementKind::kLru, Rng(1));
  const auto& g = cache.geometry();
  for (std::uint64_t t = 0; t < 10; ++t) cache.fill(addr_for(g, 0, t));
  EXPECT_EQ(cache.occupancy(0), 4u);
  EXPECT_EQ(cache.occupancy(1), 0u);
}

TEST(SetAssocCache, RefillResidentLineIsRecencyUpdateOnly) {
  SetAssocCache cache(tiny_geometry(), ReplacementKind::kLru, Rng(1));
  const auto& g = cache.geometry();
  for (std::uint64_t t = 0; t < 4; ++t) cache.fill(addr_for(g, 1, t));
  EXPECT_EQ(cache.fill(addr_for(g, 1, 0)), std::nullopt);  // re-fill tag 0
  const auto evicted = cache.fill(addr_for(g, 1, 50));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->raw, addr_for(g, 1, 1).raw);  // 0 was refreshed, 1 is LRU
}

TEST(SetAssocCache, InvalidateRemovesAndCounts) {
  SetAssocCache cache(tiny_geometry(), ReplacementKind::kLru, Rng(1));
  const PhysAddr a = addr_for(cache.geometry(), 3, 2);
  cache.fill(a);
  EXPECT_TRUE(cache.invalidate(a));
  EXPECT_FALSE(cache.contains(a));
  EXPECT_FALSE(cache.invalidate(a));
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(SetAssocCache, WayMaskConfinesVictims) {
  SetAssocCache cache(tiny_geometry(), ReplacementKind::kLru, Rng(1));
  const auto& g = cache.geometry();
  // Fill the whole set via the low half only: ways 0-1.
  const WayMask low = 0b0011;
  for (std::uint64_t t = 0; t < 8; ++t) cache.fill(addr_for(g, 0, t), low);
  EXPECT_EQ(cache.occupancy(0), 2u);  // never claimed ways 2-3
  // High-half fills must not displace low-half residents.
  const auto resident_before = cache.resident_lines(0);
  cache.fill(addr_for(g, 0, 100), 0b1100);
  cache.fill(addr_for(g, 0, 101), 0b1100);
  cache.fill(addr_for(g, 0, 102), 0b1100);
  for (const PhysAddr line : resident_before)
    EXPECT_TRUE(cache.contains(line));
  EXPECT_EQ(cache.occupancy(0), 4u);
}

// Regression: a fill that lands in a slot freed by invalidate() used to be
// at risk of double-counting. Exactly one eviction per displaced VALID line;
// reusing an empty slot counts nothing.
TEST(SetAssocCache, InvalidateThenFillCountsNoEviction) {
  SetAssocCache cache(tiny_geometry(), ReplacementKind::kLru, Rng(1));
  const auto& g = cache.geometry();
  for (std::uint64_t t = 0; t < 4; ++t) cache.fill(addr_for(g, 1, t));
  EXPECT_EQ(cache.stats().evictions, 0u);

  cache.invalidate(addr_for(g, 1, 2));
  const auto evicted = cache.fill(addr_for(g, 1, 50));
  EXPECT_EQ(evicted, std::nullopt);  // took the freed slot, displaced nobody
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.evictions_per_set()[1], 0u);

  // The set is full again: the next fill is a genuine conflict eviction.
  ASSERT_TRUE(cache.fill(addr_for(g, 1, 51)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.evictions_per_set()[1], 1u);
}

// The per-set tallies and the aggregate must agree for ANY interleaving of
// fills and invalidations (the detector consumes the per-set signature).
TEST(SetAssocCache, PerSetEvictionsSumToAggregate) {
  SetAssocCache cache(tiny_geometry(), ReplacementKind::kTreePlru, Rng(9));
  const auto& g = cache.geometry();
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const auto set = rng.next_below(g.sets());
    const auto tag = rng.next_below(12);
    if (rng.chance(0.2))
      cache.invalidate(addr_for(g, set, tag));
    else
      cache.fill(addr_for(g, set, tag));
  }
  std::uint64_t per_set_sum = 0;
  for (const auto n : cache.evictions_per_set()) per_set_sum += n;
  EXPECT_EQ(per_set_sum, cache.stats().evictions);
  EXPECT_GT(per_set_sum, 0u);
}

// Regression for the audited bug: reset_stats() cleared the aggregate but
// left the per-set tallies, letting the two views drift apart.
TEST(SetAssocCache, ResetStatsClearsPerSetEvictions) {
  SetAssocCache cache(tiny_geometry(), ReplacementKind::kLru, Rng(1));
  const auto& g = cache.geometry();
  for (std::uint64_t t = 0; t < 9; ++t) cache.fill(addr_for(g, 0, t));
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_GT(cache.evictions_per_set()[0], 0u);

  cache.reset_stats();
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0u);
  for (const auto n : cache.evictions_per_set()) EXPECT_EQ(n, 0u);
}

TEST(SetAssocCache, FlushAllEmptiesEverySet) {
  SetAssocCache cache(tiny_geometry(), ReplacementKind::kTreePlru, Rng(1));
  const auto& g = cache.geometry();
  for (std::uint64_t s = 0; s < g.sets(); ++s)
    for (std::uint64_t t = 0; t < 4; ++t) cache.fill(addr_for(g, s, t));
  cache.flush_all();
  for (std::uint64_t s = 0; s < g.sets(); ++s) EXPECT_EQ(cache.occupancy(s), 0u);
}

TEST(SetAssocCache, ResidentLinesReportsFilledAddresses) {
  SetAssocCache cache(tiny_geometry(), ReplacementKind::kLru, Rng(1));
  const auto& g = cache.geometry();
  cache.fill(addr_for(g, 2, 7));
  cache.fill(addr_for(g, 2, 9));
  const auto lines = cache.resident_lines(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].raw, addr_for(g, 2, 7).raw);
  EXPECT_EQ(lines[1].raw, addr_for(g, 2, 9).raw);
}

HierarchyConfig small_hierarchy() {
  HierarchyConfig config;
  config.l1 = Geometry{.size_bytes = 4 * 1024, .ways = 4};
  config.l2 = Geometry{.size_bytes = 16 * 1024, .ways = 4};
  config.llc = Geometry{.size_bytes = 64 * 1024, .ways = 8};
  return config;
}

TEST(Hierarchy, MissThenProgressivelyCloserHits) {
  Hierarchy h(small_hierarchy(), 2, Rng(1));
  const PhysAddr a{0x12340};
  const CoreId core{0};
  EXPECT_EQ(h.access(core, a).level, HitLevel::kMemory);
  EXPECT_EQ(h.access(core, a).level, HitLevel::kL1);
  EXPECT_EQ(h.access(core, a).lookup_latency, small_hierarchy().l1_latency);
}

TEST(Hierarchy, CrossCoreHitsInSharedLlc) {
  Hierarchy h(small_hierarchy(), 2, Rng(1));
  const PhysAddr a{0x40};
  h.access(CoreId{0}, a);
  EXPECT_EQ(h.access(CoreId{1}, a).level, HitLevel::kLlc);
  EXPECT_EQ(h.access(CoreId{1}, a).level, HitLevel::kL1);
}

TEST(Hierarchy, ClflushRemovesFromAllLevelsAllCores) {
  Hierarchy h(small_hierarchy(), 2, Rng(1));
  const PhysAddr a{0x80};
  h.access(CoreId{0}, a);
  h.access(CoreId{1}, a);
  EXPECT_TRUE(h.resident(a));
  h.clflush(a);
  EXPECT_FALSE(h.resident(a));
  EXPECT_EQ(h.access(CoreId{0}, a).level, HitLevel::kMemory);
}

TEST(Hierarchy, InclusiveBackInvalidation) {
  Hierarchy h(small_hierarchy(), 1, Rng(1));
  const auto llc = small_hierarchy().llc;
  const CoreId core{0};
  // Pin one line, then thrash its LLC set until it is evicted from the LLC;
  // inclusivity demands it also left the L1/L2.
  const PhysAddr victim = llc.line_address(1, 5);
  h.access(core, victim);
  for (std::uint64_t t = 2; t < 2 + 4 * llc.ways; ++t)
    h.access(core, llc.line_address(t, 5));
  EXPECT_FALSE(h.llc().contains(victim));
  EXPECT_FALSE(h.l1(core).contains(victim));
  EXPECT_FALSE(h.l2(core).contains(victim));
}

TEST(Hierarchy, FlushAllResets) {
  Hierarchy h(small_hierarchy(), 2, Rng(1));
  h.access(CoreId{0}, PhysAddr{0x100});
  h.flush_all();
  EXPECT_FALSE(h.resident(PhysAddr{0x100}));
}

}  // namespace
}  // namespace meecc::cache
