// Cache-policy layer: permutation bijectivity, set coverage, rekey,
// key decorrelation of eviction sets, way-partition masks, random fill
// admission, and the string→factory registries.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "cache/policy.h"
#include "cache/replacement.h"
#include "cache/set_assoc_cache.h"
#include "common/check.h"

namespace meecc::cache {
namespace {

Geometry test_geometry() { return mee_cache_geometry(); }  // 128 sets, 8 ways

PolicyConfig keyed_config(std::uint64_t key) {
  PolicyConfig config;
  config.indexing = "keyed";
  config.index_key = key;
  return config;
}

PhysAddr addr_of_line(const Geometry& g, std::uint64_t line) {
  return PhysAddr{line * g.line_size};
}

TEST(KeyedPermutation, IsInjectiveOverAWideRange) {
  // Every step of the add-xor-multiply chain is invertible, so the map is a
  // bijection of u64; spot-check injectivity over 2^16 consecutive lines.
  std::set<std::uint64_t> images;
  for (std::uint64_t line = 0; line < (1u << 16); ++line)
    images.insert(keyed_line_permutation(line, 0x1234'5678'9abc'def0ULL));
  EXPECT_EQ(images.size(), 1u << 16);
}

TEST(KeyedPermutation, KeyChangesTheMap) {
  int moved = 0;
  for (std::uint64_t line = 0; line < 1024; ++line)
    if (keyed_line_permutation(line, 1) != keyed_line_permutation(line, 2))
      ++moved;
  EXPECT_GT(moved, 1000);
}

TEST(Indexing, EveryPolicyCoversAllSets) {
  const Geometry g = test_geometry();
  for (const std::string& name : indexing_policy_names()) {
    PolicyConfig config;
    config.indexing = name;
    const auto policy = make_indexing_policy(config, g);
    for (std::uint32_t way = 0; way < g.ways; ++way) {
      std::set<std::uint64_t> sets_seen;
      // Enough lines that a uniform permutation misses a set with
      // probability ~e^-64 per set — coverage failures mean a real bug.
      for (std::uint64_t line = 0; line < g.sets() * 64; ++line) {
        const auto set = policy->set_of(line, way);
        ASSERT_LT(set, g.sets()) << name;
        sets_seen.insert(set);
      }
      EXPECT_EQ(sets_seen.size(), g.sets()) << name << " way " << way;
    }
  }
}

TEST(Indexing, ModuloMatchesGeometrySetIndex) {
  // The default stack must index exactly like the legacy Geometry helper —
  // this is what keeps the golden trace byte-identical.
  const Geometry g = test_geometry();
  const auto policy = make_indexing_policy(PolicyConfig{}, g);
  for (std::uint64_t line = 0; line < g.sets() * 4 + 3; ++line)
    EXPECT_EQ(policy->set_of(line, 0), g.set_index(addr_of_line(g, line)));
  EXPECT_FALSE(policy->way_dependent());
}

TEST(Indexing, SkewedWayGroupsDisagree) {
  const Geometry g = test_geometry();
  PolicyConfig config;
  config.indexing = "skewed";
  const auto policy = make_indexing_policy(config, g);
  EXPECT_TRUE(policy->way_dependent());
  int disagreements = 0;
  for (std::uint64_t line = 0; line < 512; ++line)
    if (policy->set_of(line, 0) != policy->set_of(line, g.ways - 1))
      ++disagreements;
  // Independent permutations collide on a 128-set cache ~1/128 of the time.
  EXPECT_GT(disagreements, 480);
}

TEST(Indexing, RekeyRemapsKeyedButNotModulo) {
  const Geometry g = test_geometry();
  const auto keyed = make_indexing_policy(keyed_config(7), g);
  std::vector<std::uint64_t> before;
  for (std::uint64_t line = 0; line < 512; ++line)
    before.push_back(keyed->set_of(line, 0));
  keyed->rekey(0xfeed'face'cafe'f00dULL);
  int moved = 0;
  for (std::uint64_t line = 0; line < 512; ++line)
    if (keyed->set_of(line, 0) != before[line]) ++moved;
  EXPECT_GT(moved, 400);  // ~127/128 of lines land elsewhere

  const auto modulo = make_indexing_policy(PolicyConfig{}, g);
  modulo->rekey(0xdeadULL);  // documented no-op
  for (std::uint64_t line = 0; line < 64; ++line)
    EXPECT_EQ(modulo->set_of(line, 0), line % g.sets());
}

// The core mitigation property (CEASER): an eviction set built under one
// key is useless under another. Gather the 8 lines that contest one set
// under key A and check they scatter under key B.
TEST(Indexing, TwoKeysDecorrelateEvictionSets) {
  const Geometry g = test_geometry();
  const auto under_a = make_indexing_policy(keyed_config(0xAAAA), g);
  const auto under_b = make_indexing_policy(keyed_config(0xBBBB), g);

  const std::uint64_t target = under_a->set_of(0, 0);
  std::vector<std::uint64_t> eviction_set;
  for (std::uint64_t line = 1; eviction_set.size() < g.ways; ++line)
    if (under_a->set_of(line, 0) == target) eviction_set.push_back(line);

  std::set<std::uint64_t> sets_under_b;
  for (const auto line : eviction_set)
    sets_under_b.insert(under_b->set_of(line, 0));
  // With 128 sets, 8 uniform draws collide rarely; ≥5 distinct sets means
  // the set no longer concentrates pressure anywhere.
  EXPECT_GE(sets_under_b.size(), 5u);
}

TEST(Indexing, EvictionSetFromOldKeyCannotEvictAfterRekey) {
  const Geometry g = test_geometry();
  SetAssocCache cache(g, keyed_config(0x5151), Rng(3));

  // Build a conflict set for the victim line's set under the current key.
  const std::uint64_t victim_line = 17;
  const std::uint64_t target = cache.indexing().set_of(victim_line, 0);
  std::vector<std::uint64_t> conflict;
  for (std::uint64_t line = 1000; conflict.size() < g.ways; ++line)
    if (cache.indexing().set_of(line, 0) == target) conflict.push_back(line);

  // Sanity: under the SAME key the conflict set evicts the victim.
  cache.fill(addr_of_line(g, victim_line));
  for (const auto line : conflict) cache.fill(addr_of_line(g, line));
  EXPECT_FALSE(cache.contains(addr_of_line(g, victim_line)));

  // After a rekey the stale conflict set scatters and the victim survives.
  cache.rekey();
  cache.fill(addr_of_line(g, victim_line));
  for (const auto line : conflict) cache.fill(addr_of_line(g, line));
  EXPECT_TRUE(cache.contains(addr_of_line(g, victim_line)));
}

TEST(Fill, WayPartitionMaskSplitsEvenOddCores) {
  EXPECT_EQ(way_partition_mask(8, CoreId{0}), 0x0Fu);
  EXPECT_EQ(way_partition_mask(8, CoreId{1}), 0xF0u);
  EXPECT_EQ(way_partition_mask(8, CoreId{2}), 0x0Fu);
  EXPECT_EQ(way_partition_mask(4, CoreId{3}), 0x0Cu);
  EXPECT_THROW(way_partition_mask(3, CoreId{0}), CheckFailure);
}

TEST(Fill, RandomFillAdmitsAtTheConfiguredRate) {
  const Geometry g = test_geometry();
  PolicyConfig config;
  config.fill = "random";
  config.fill_probability = 0.25;
  const auto policy = make_fill_policy(config, g);
  EXPECT_EQ(policy->allowed_ways(CoreId{0}), kAllWays);

  Rng rng(99);
  int admitted = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (policy->admits(CoreId{0}, rng)) ++admitted;
  const double rate = static_cast<double>(admitted) / trials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Fill, DefaultPoliciesNeverTouchTheRng) {
  const Geometry g = test_geometry();
  const auto all = make_fill_policy(PolicyConfig{}, g);
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(all->admits(CoreId{1}, a));
  EXPECT_EQ(a.next_u64(), b.next_u64());  // stream untouched
}

TEST(Registry, UnknownNamesThrowWithRegisteredAlternatives) {
  const Geometry g = test_geometry();
  PolicyConfig bad_indexing;
  bad_indexing.indexing = "quantum";
  EXPECT_THROW(make_indexing_policy(bad_indexing, g), CheckFailure);
  PolicyConfig bad_fill;
  bad_fill.fill = "quantum";
  EXPECT_THROW(make_fill_policy(bad_fill, g), CheckFailure);
  EXPECT_THROW(replacement_from_name("quantum"), CheckFailure);
}

TEST(Registry, BuiltinsAreListedSorted) {
  const auto indexing = indexing_policy_names();
  EXPECT_TRUE(std::is_sorted(indexing.begin(), indexing.end()));
  for (const char* name : {"keyed", "modulo", "skewed"})
    EXPECT_TRUE(is_indexing_policy(name)) << name;

  const auto fill = fill_policy_names();
  EXPECT_TRUE(std::is_sorted(fill.begin(), fill.end()));
  for (const char* name : {"all", "partition", "random"})
    EXPECT_TRUE(is_fill_policy(name)) << name;

  for (const char* name : {"lru", "nru", "random", "tree-plru"})
    EXPECT_TRUE(is_replacement_policy(name)) << name;
}

TEST(Registry, CustomPolicyIsConstructibleByName) {
  // The extension point the registry exists for: a test-local indexing
  // policy becomes sweepable the moment it is registered.
  class Reversed : public IndexingPolicy {
   public:
    explicit Reversed(std::uint64_t sets) : sets_(sets) {}
    std::string_view name() const override { return "reversed"; }
    std::uint64_t set_of(std::uint64_t line, std::uint32_t) const override {
      return sets_ - 1 - (line % sets_);
    }

   private:
    std::uint64_t sets_;
  };
  register_indexing_policy(
      "reversed", [](const PolicyConfig&, const Geometry& g) {
        return std::make_unique<Reversed>(g.sets());
      });
  PolicyConfig config;
  config.indexing = "reversed";
  const Geometry g = test_geometry();
  const auto policy = make_indexing_policy(config, g);
  EXPECT_EQ(policy->set_of(0, 0), g.sets() - 1);
  EXPECT_TRUE(is_indexing_policy("reversed"));
}

TEST(Cache, SkewedCacheStillFindsItsResidents) {
  const Geometry g = test_geometry();
  PolicyConfig config;
  config.indexing = "skewed";
  SetAssocCache cache(g, config, Rng(11));
  for (std::uint64_t line = 0; line < 200; ++line)
    cache.access(addr_of_line(g, line));
  int resident = 0;
  for (std::uint64_t line = 0; line < 200; ++line)
    if (cache.contains(addr_of_line(g, line))) ++resident;
  // 200 lines in a 1024-line cache: conflict evictions are possible but
  // most lines must remain findable at their per-way-group sets.
  EXPECT_GT(resident, 150);
  EXPECT_EQ(cache.stats().misses, 200u);
}

TEST(Cache, PartitionFillKeepsCoresInTheirHalves) {
  const Geometry g = test_geometry();
  PolicyConfig config;
  config.fill = "partition";
  SetAssocCache cache(g, config, Rng(5));
  // Core 0 floods one set: occupancy saturates at the low half.
  for (int i = 0; i < 32; ++i)
    cache.fill(addr_of_line(g, i * g.sets()), kAllWays, CoreId{0});
  EXPECT_EQ(cache.occupancy(0), g.ways / 2);
  // Core 1 fills the other half of the same set.
  for (int i = 100; i < 104; ++i)
    cache.fill(addr_of_line(g, i * g.sets()), kAllWays, CoreId{1});
  EXPECT_EQ(cache.occupancy(0), g.ways);
}

}  // namespace
}  // namespace meecc::cache
