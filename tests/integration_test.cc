// End-to-end attack scenarios: full channel transfers, the Prime+Probe
// baseline's failure, noise robustness ordering, the LLC context channel,
// and the way-partitioning mitigation.
#include <gtest/gtest.h>

#include "common/check.h"
#include "channel/covert_channel.h"
#include "channel/llc_baseline.h"
#include "channel/mitigation.h"
#include "channel/prime_probe.h"
#include "channel/testbed.h"

namespace meecc::channel {
namespace {

TestBedConfig fast_config(std::uint64_t seed = 42) {
  TestBedConfig config = default_testbed_config(seed);
  config.system.address_map.general_size = 32ull << 20;
  config.system.address_map.epc_size = 16ull << 20;
  config.system.mee.functional_crypto = false;
  config.noise_enclave_bytes = 2ull << 20;
  config.background_enclave_bytes = 1ull << 20;
  return config;
}

TEST(CovertChannel, TransfersAlternatingBitsReliably) {
  TestBed bed(fast_config(1));
  ChannelConfig config;
  const auto payload = alternating_bits(256);
  const auto result = run_covert_channel(bed, config, payload);

  EXPECT_TRUE(result.monitor_found);
  EXPECT_EQ(result.eviction.associativity(), 8u);
  EXPECT_EQ(result.received.size(), payload.size());
  EXPECT_LT(result.error_rate, 0.05)
      << result.bit_errors << " errors in " << payload.size() << " bits";
  EXPECT_NEAR(result.kilobytes_per_second, 35.0, 0.5);  // 4.2 GHz / 15000 / 8
}

TEST(CovertChannel, TransfersRandomPayload) {
  TestBed bed(fast_config(2));
  ChannelConfig config;
  const auto payload = random_bits(256, 99);
  const auto result = run_covert_channel(bed, config, payload);
  EXPECT_LT(result.error_rate, 0.05);
}

TEST(CovertChannel, ProbeTimesSeparateHitFromMiss) {
  TestBed bed(fast_config(3));
  ChannelConfig config;
  const auto payload = alternating_bits(128);
  const auto result = run_covert_channel(bed, config, payload);

  // Fig. 6(b): '0' probes cluster near the versions-hit latency, '1' probes
  // several hundred cycles above.
  double hit_sum = 0, miss_sum = 0;
  int hits = 0, misses = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (result.received[i] != payload[i]) continue;
    if (payload[i] == 0) {
      hit_sum += result.probe_times[i];
      ++hits;
    } else {
      miss_sum += result.probe_times[i];
      ++misses;
    }
  }
  ASSERT_GT(hits, 40);
  ASSERT_GT(misses, 40);
  EXPECT_GT(miss_sum / misses, hit_sum / hits + 100.0);
}

TEST(CovertChannel, TinyWindowBreaksTheChannel) {
  // Sending '1' costs ~9000 cycles; a 5000-cycle window cannot carry it
  // (paper Fig. 7's error cliff).
  TestBed bed(fast_config(4));
  ChannelConfig config;
  config.window = 5000;
  const auto payload = random_bits(192, 5);
  const auto result = run_covert_channel(bed, config, payload);
  EXPECT_GT(result.error_rate, 0.15);
}

TEST(CovertChannel, ErrorRateOrderingAcrossWindows) {
  const auto payload = random_bits(192, 17);
  auto run_at = [&](Cycles window, std::uint64_t seed) {
    TestBed bed(fast_config(seed));
    ChannelConfig config;
    config.window = window;
    return run_covert_channel(bed, config, payload).error_rate;
  };
  const double at_7500 = run_at(7500, 11);
  const double at_15000 = run_at(15000, 12);
  EXPECT_GT(at_7500, at_15000 + 0.10);  // the knee below ~9000 cycles
}

TEST(PrimeProbeBaseline, CannotEstablishCommunication) {
  TestBed bed(fast_config(6));
  PrimeProbeConfig config;
  const auto payload = alternating_bits(128);
  const auto result = run_prime_probe_baseline(bed, config, payload);

  // Fig. 6(a): probing all 8 ways costs thousands of cycles...
  double total = 0;
  for (const double t : result.probe_times) total += t;
  EXPECT_GT(total / result.probe_times.size(), 3000.0);
  // ...and the decoded stream is unusable: error rate an order of magnitude
  // above the working channel's ~1-2 % (paper: "proper communication cannot
  // be established").
  EXPECT_GT(result.error_rate, 0.10);
}

TEST(NoiseRobustness, MeeNoiseHurtsMoreThanMemoryNoise) {
  const auto payload = pattern_100100(128);
  auto run_env = [&](NoiseEnv env, std::uint64_t seed) {
    TestBedConfig config = fast_config(seed);
    config.noise = env;
    config.noise_autostart = false;  // co-tenant load arrives mid-transfer
    TestBed bed(config);
    ChannelConfig channel;
    return run_covert_channel(bed, channel, payload).error_rate;
  };
  const double none = run_env(NoiseEnv::kNone, 21);
  const double memory = run_env(NoiseEnv::kMemoryStress, 22);
  const double mee512 = run_env(NoiseEnv::kMeeStride512, 23);
  const double mee4k = run_env(NoiseEnv::kMeeStride4K, 24);

  // Fig. 8 ordering: memory noise ≈ no noise << MEE-cache noise.
  EXPECT_LT(none, 0.04);
  EXPECT_LT(memory, 0.06);
  EXPECT_GT(std::max(mee512, mee4k), std::max(none, memory));
  EXPECT_LT(std::max(mee512, mee4k), 0.35);  // degraded, not destroyed
}

TEST(LlcBaseline, FastAndNearErrorFree) {
  TestBed bed(fast_config(8));
  LlcChannelConfig config;
  const auto payload = random_bits(256, 31);
  const auto result = run_llc_baseline(bed, config, payload);
  EXPECT_LT(result.error_rate, 0.02);
  EXPECT_GT(result.kilobytes_per_second, 100.0);  // ≫ the MEE channel's 35
}

TEST(Mitigation, WayPartitioningBlocksTheDirectChannel) {
  // Trojan on core 0 and spy on core 1 land in different partitions.
  TestBedConfig bed_config = fast_config(9);
  bed_config.system.mee.cache_policy.fill = "partition";
  TestBed bed(bed_config);
  ChannelConfig config;
  const auto payload = alternating_bits(128);

  // Setup may or may not succeed under partitioning; if the channel can be
  // built at all, it must no longer carry the payload.
  try {
    const auto result = run_covert_channel(bed, config, payload);
    EXPECT_GT(result.error_rate, 0.30);
  } catch (const meecc::CheckFailure&) {
    SUCCEED();  // discovery failed outright: channel blocked
  }
}

}  // namespace
}  // namespace meecc::channel
