// Enclave: a private protected-memory region, built the way the SGX driver
// builds one — EPC frames allocated page by page (EADD) and mapped into the
// owning thread's virtual address space.
//
// SGX v1 restrictions the model enforces elsewhere:
//  * 4 KB pages only (mem::VirtualAddressSpace has no hugepages);
//  * rdtsc faults in enclave mode (sim::Actor::read_timer);
//  * non-enclave code cannot read the protected region (sim::System).
// Enclave code CAN read non-enclave memory directly — the property the
// hyperthread shared-clock timer relies on (paper §3 challenge 4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/actor.h"

namespace meecc::sgx {

struct EnclaveConfig {
  VirtAddr base{0x7000'0000'0000ULL};  ///< ELRANGE start
  std::uint64_t size = 0;              ///< bytes, multiple of 4 KB
};

class Enclave {
 public:
  /// Builds the enclave into `owner`'s address space, drawing frames from
  /// the system EPC allocator (contiguous or randomized per system config).
  Enclave(sim::Actor& owner, const EnclaveConfig& config);

  VirtAddr base() const { return config_.base; }
  std::uint64_t size() const { return config_.size; }
  std::uint64_t page_count() const { return frames_.size(); }

  /// Virtual address `offset` bytes into the enclave.
  VirtAddr address(std::uint64_t offset) const;

  /// Physical frame backing enclave page `page_index` (diagnostics/tests;
  /// a real attacker cannot observe this).
  PhysAddr frame(std::uint64_t page_index) const;

 private:
  EnclaveConfig config_;
  std::vector<PhysAddr> frames_;
};

}  // namespace meecc::sgx
