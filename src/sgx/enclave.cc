#include "sgx/enclave.h"

#include "common/check.h"

namespace meecc::sgx {

Enclave::Enclave(sim::Actor& owner, const EnclaveConfig& config)
    : config_(config) {
  MEECC_CHECK(config.base.page_offset() == 0);
  MEECC_CHECK(config.size > 0 && config.size % kPageSize == 0);
  auto& allocator = owner.system().epc_allocator();
  frames_.reserve(config.size / kPageSize);
  for (std::uint64_t off = 0; off < config.size; off += kPageSize) {
    const PhysAddr frame = allocator.allocate_frame();
    owner.vas().map_page(config.base + off, frame);
    frames_.push_back(frame);
  }
}

VirtAddr Enclave::address(std::uint64_t offset) const {
  MEECC_CHECK(offset < config_.size);
  return config_.base + offset;
}

PhysAddr Enclave::frame(std::uint64_t page_index) const {
  MEECC_CHECK(page_index < frames_.size());
  return frames_[page_index];
}

}  // namespace meecc::sgx
