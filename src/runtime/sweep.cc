#include "runtime/sweep.h"

#include <sstream>

#include "runtime/params.h"

namespace meecc::runtime {

namespace {

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(list.substr(start));
      break;
    }
    out.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

struct ResolvedSweep {
  ParamMap base;  ///< fixed params: experiment defaults, then --set
  std::vector<std::pair<std::string, std::vector<std::string>>> axes;
};

bool experiment_param(const Experiment& experiment, std::string_view key) {
  return find_param(experiment.default_params, key).has_value();
}

void check_key(const Experiment& experiment, const std::string& key) {
  if (is_config_key(key) || experiment_param(experiment, key)) return;
  std::ostringstream os;
  os << "unknown parameter '" << key << "' for experiment '" << experiment.name
     << "'; experiment parameters:";
  for (const auto& [k, v] : experiment.default_params)
    os << ' ' << k << "(=" << v << ")";
  os << "; shared config keys: see `meecc_bench describe`";
  throw ParamError(os.str());
}

// Bad values should fail before any trial runs, not in a worker thread
// mid-sweep.
void check_value(const std::string& key, const std::string& value) {
  if (!is_config_key(key)) return;
  channel::TestBedConfig scratch = channel::default_testbed_config(0);
  apply_override(scratch, key, value);
}

ResolvedSweep resolve(const Experiment& experiment, const SweepSpec& spec) {
  ResolvedSweep out;
  out.base = experiment.default_params;

  // Default axes, minus any the CLI pins with --set or replaces with
  // --sweep.
  for (const auto& [key, csv] : experiment.default_sweeps) {
    bool overridden = find_param(spec.sets, key).has_value();
    for (const auto& [cli_key, values] : spec.axes)
      overridden = overridden || cli_key == key;
    if (!overridden) out.axes.emplace_back(key, split_csv(csv));
  }
  for (const auto& [key, values] : spec.axes) {
    if (find_param(spec.sets, key))
      throw ParamError("parameter '" + key +
                       "' given to both --set and --sweep");
    check_key(experiment, key);
    if (values.empty())
      throw ParamError("--sweep " + key + " has no values");
    for (const auto& v : values) check_value(key, v);
    out.axes.emplace_back(key, values);
  }
  for (const auto& [key, value] : spec.sets) {
    check_key(experiment, key);
    check_value(key, value);
    set_param(out.base, key, value);
  }
  return out;
}

}  // namespace

std::pair<std::string, std::string> split_key_value(const std::string& arg) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0)
    throw ParamError("expected key=value, got '" + arg + "'");
  return {arg.substr(0, eq), arg.substr(eq + 1)};
}

std::vector<std::string> parse_sweep_args(const std::vector<std::string>& args,
                                          SweepSpec* spec) {
  std::vector<std::string> leftover;
  auto take_value = [&](std::size_t& i, const std::string& flag) {
    if (i + 1 >= args.size())
      throw ParamError(flag + " needs an argument");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--set") {
      spec->sets.push_back(split_key_value(take_value(i, arg)));
    } else if (arg == "--sweep") {
      auto [key, csv] = split_key_value(take_value(i, arg));
      spec->axes.emplace_back(std::move(key), split_csv(csv));
    } else if (arg == "--seeds") {
      const std::string v = take_value(i, arg);
      spec->seeds = static_cast<int>(parse_u64("--seeds", v));
      if (spec->seeds < 1) throw ParamError("--seeds must be >= 1");
    } else if (arg == "--seed") {
      spec->base_seed = parse_u64("--seed", take_value(i, arg));
    } else {
      leftover.push_back(arg);
    }
  }
  return leftover;
}

std::vector<TrialSpec> expand_sweep(const Experiment& experiment,
                                    const SweepSpec& spec) {
  const ResolvedSweep resolved = resolve(experiment, spec);

  // Odometer over the axes (first axis slowest), seeds innermost.
  std::vector<std::size_t> digits(resolved.axes.size(), 0);
  std::vector<TrialSpec> trials;
  for (;;) {
    ParamMap params = resolved.base;
    for (std::size_t a = 0; a < resolved.axes.size(); ++a)
      set_param(params, resolved.axes[a].first,
                resolved.axes[a].second[digits[a]]);
    for (int s = 0; s < spec.seeds; ++s) {
      TrialSpec trial;
      trial.experiment = experiment.name;
      trial.trial_index = trials.size();
      trial.seed = spec.base_seed + static_cast<std::uint64_t>(s);
      trial.params = params;
      trials.push_back(std::move(trial));
    }
    std::size_t a = resolved.axes.size();
    while (a > 0) {
      --a;
      if (++digits[a] < resolved.axes[a].second.size()) break;
      digits[a] = 0;
      if (a == 0) return trials;
    }
    if (resolved.axes.empty()) return trials;
  }
}

std::vector<std::string> swept_keys(const Experiment& experiment,
                                    const SweepSpec& spec) {
  std::vector<std::string> out;
  for (const auto& [key, values] : resolve(experiment, spec).axes)
    if (values.size() > 1) out.push_back(key);
  return out;
}

}  // namespace meecc::runtime
