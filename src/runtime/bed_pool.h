// Per-worker TestBed recycling for snapshot/fork trial execution.
//
// A forked trial's dominant fixed cost is constructing (and destroying) a
// full TestBed: cache-plane arrays, DRAM delta buckets, page tables, AES
// key schedules, arena chunks. Those allocations are identical from trial
// to trial, so the runner gives each worker thread a small BedPool; a trial
// takes the bed it used last time, rewinds it to the warm snapshot with
// TestBed::try_reset() (O(touched state)), and parks it again when done.
//
// Each pool is owned by exactly one worker thread and is never shared, so
// there is no locking and trial results cannot depend on scheduling: a
// recycled bed is observationally identical to a freshly forked one, which
// tests/snapshot_test.cc checks byte-for-byte.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "channel/testbed.h"

namespace meecc::runtime {

/// A parked bed together with the snapshot it is recycled against. The
/// `snap` shared_ptr both identifies the snapshot (try_reset's O(touched)
/// counter rewind keys on its address) and keeps it alive while the bed
/// sits in the pool.
struct PooledBed {
  std::unique_ptr<channel::TestBed> bed;
  std::shared_ptr<const channel::TestBedSnapshot> snap;

  explicit operator bool() const { return bed != nullptr; }
};

/// One worker thread's cache of recycled beds, keyed by the same string
/// that names the warm setup state (plus a role suffix). Single-threaded
/// by construction; the runner builds one per worker.
class BedPool {
 public:
  BedPool() = default;
  ~BedPool();

  BedPool(const BedPool&) = delete;
  BedPool& operator=(const BedPool&) = delete;

  /// Removes and returns the entry under `key`; empty when absent.
  PooledBed take(std::string_view key);

  /// Parks `entry` under `key` for the next trial, evicting the
  /// least-recently-parked entry beyond the cap. Disposal (eviction, pool
  /// destruction, drop()) happens under a detached obs::TrialScope so a
  /// destroyed System cannot absorb its counters into whichever trial
  /// happens to be running.
  void put(std::string key, PooledBed entry);

  /// Destroys a bed that cannot be recycled (failed try_reset, stale
  /// snapshot) without contaminating the current trial's counters.
  static void drop(PooledBed entry);

  std::size_t size() const { return entries_.size(); }

  /// Beds successfully rewound / discarded as unrecyclable — the
  /// allocations-per-trial story in numbers.
  std::uint64_t recycles() const { return recycles_; }
  std::uint64_t discards() const { return discards_; }
  void note_recycle() { ++recycles_; }

 private:
  struct Entry {
    std::string key;
    PooledBed bed;
    std::uint64_t stamp = 0;
  };

  /// Trials touch at most a handful of keys (one measure bed per setup
  /// seed, one legit bed); a flat vector beats a map at this size.
  static constexpr std::size_t kMaxBeds = 6;

  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t recycles_ = 0;
  std::uint64_t discards_ = 0;
};

}  // namespace meecc::runtime
