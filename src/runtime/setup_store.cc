#include "runtime/setup_store.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "sim/snapshot_io.h"

namespace meecc::runtime {

namespace fs = std::filesystem;

std::uint64_t setup_store_config_hash(std::string_view experiment_name) {
  io::Writer w;
  w.u32(sim::kSnapshotFormatVersion);
  w.str(experiment_name);
  return io::fnv1a64(w.data());
}

SetupStore::SetupStore(std::string directory, std::uint64_t config_hash)
    : directory_(std::move(directory)), config_hash_(config_hash) {}

std::string SetupStore::path_for(const std::string& setup_key) const {
  // Content address: the key hash chained with the config hash, so two
  // configs never contend for one file. Collisions are survivable — the
  // embedded setup_key is verified on load.
  const std::uint64_t address = io::fnv1a64(setup_key, config_hash_);
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.setup",
                static_cast<unsigned long long>(address));
  return (fs::path(directory_) / name).string();
}

SetupStore::LoadResult SetupStore::load(const std::string& setup_key) const {
  LoadResult result;
  std::string bytes;
  {
    std::ifstream in(path_for(setup_key), std::ios::binary);
    if (!in) return result;  // kAbsent
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) return result;
    bytes = std::move(buffer).str();
  }
  const io::FrameView frame =
      io::read_frame(bytes, kMagic, kFormatVersion, config_hash_);
  switch (frame.status) {
    case io::FrameStatus::kOk:
      break;
    case io::FrameStatus::kTruncated:
      result.status = Lookup::kTruncated;
      return result;
    case io::FrameStatus::kBadMagic:
      result.status = Lookup::kBadMagic;
      return result;
    case io::FrameStatus::kBadVersion:
      result.status = Lookup::kBadVersion;
      return result;
    case io::FrameStatus::kBadChecksum:
      result.status = Lookup::kBadChecksum;
      return result;
    case io::FrameStatus::kConfigMismatch:
      result.status = Lookup::kConfigMismatch;
      return result;
  }
  io::Reader r(frame.payload);
  std::string stored_key;
  try {
    stored_key = r.str();
  } catch (const io::DecodeError&) {
    result.status = Lookup::kTruncated;
    return result;
  }
  if (stored_key != setup_key) {
    result.status = Lookup::kKeyCollision;
    return result;
  }
  result.status = Lookup::kHit;
  result.payload = std::string(frame.payload.substr(8 + stored_key.size()));
  return result;
}

bool SetupStore::store(const std::string& setup_key,
                       std::string_view payload) const {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) return false;

  io::Writer w;
  w.str(setup_key);
  w.bytes(payload.data(), payload.size());
  const std::string framed =
      io::write_frame(kMagic, kFormatVersion, config_hash_, w.data());

  const std::string path = path_for(setup_key);
  // Unique temp name per writer so concurrent shards on one host never
  // interleave; rename() makes the publish atomic.
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid();
  const std::string tmp = tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::string_view to_string(SetupStore::Lookup status) {
  switch (status) {
    case SetupStore::Lookup::kHit: return "hit";
    case SetupStore::Lookup::kAbsent: return "absent";
    case SetupStore::Lookup::kTruncated: return "truncated";
    case SetupStore::Lookup::kBadMagic: return "bad-magic";
    case SetupStore::Lookup::kBadVersion: return "format-version-mismatch";
    case SetupStore::Lookup::kBadChecksum: return "checksum-mismatch";
    case SetupStore::Lookup::kConfigMismatch: return "config-hash-mismatch";
    case SetupStore::Lookup::kKeyCollision: return "key-collision";
  }
  return "?";
}

}  // namespace meecc::runtime
