#include "runtime/setup_cache.h"

#include "obs/scope.h"

namespace meecc::runtime {

std::shared_ptr<const void> SetupCache::get_or_build(const std::string& key,
                                                     const Builder& builder) {
  std::promise<std::shared_ptr<const void>> promise;
  std::shared_future<std::shared_ptr<const void>> future;
  bool build_here = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      future = promise.get_future().share();
      entries_.emplace(key, future);
      build_here = true;
      ++misses_;
    } else {
      future = it->second;
      ++hits_;
    }
  }
  if (build_here) {
    try {
      // Shield scope: the setup machine's counters and traces belong to no
      // single trial.
      obs::TrialScope shield(nullptr);
      promise.set_value(builder());
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();  // rethrows a builder failure to every sharing trial
}

std::size_t SetupCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t SetupCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t SetupCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

namespace {
thread_local TrialContext* g_current_context = nullptr;
}  // namespace

TrialContext::TrialContext(SetupCache* cache)
    : previous_(g_current_context), cache_(cache) {
  g_current_context = this;
}

TrialContext::~TrialContext() { g_current_context = previous_; }

TrialContext* TrialContext::current() { return g_current_context; }

}  // namespace meecc::runtime
