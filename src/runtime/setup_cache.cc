#include "runtime/setup_cache.h"

#include <utility>

#include "common/bytes.h"
#include "obs/scope.h"
#include "runtime/setup_store.h"

namespace meecc::runtime {

void SetupCache::attach_store(SetupStore* store) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_ = store;
}

std::shared_ptr<const void> SetupCache::get_or_build(const std::string& key,
                                                     const Builder& builder,
                                                     const Encoder& encoder,
                                                     const Decoder& decoder) {
  std::promise<std::shared_ptr<const void>> promise;
  std::shared_future<std::shared_ptr<const void>> future;
  bool build_here = false;
  SetupStore* store = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      future = promise.get_future().share();
      entries_.emplace(key, future);
      build_here = true;
      store = store_;
    } else {
      future = it->second;
      ++memory_hits_;
    }
  }
  if (build_here) {
    try {
      // Shield scope: the setup machine's counters and traces belong to no
      // single trial — and neither do a disk load's decode side effects.
      obs::TrialScope shield(nullptr);

      std::shared_ptr<const void> state;
      if (store != nullptr && decoder != nullptr) {
        SetupStore::LoadResult loaded = store->load(key);
        if (loaded.status == SetupStore::Lookup::kHit) {
          try {
            state = decoder(*loaded.payload);
          } catch (const io::DecodeError& e) {
            // A frame that passed every check but decodes wrong was written
            // by incompatible code; fall back to a fresh build.
            state = nullptr;
            const std::lock_guard<std::mutex> lock(mutex_);
            ++disk_rejects_["decode-error"];
            (void)e;
          }
          if (state != nullptr) {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++disk_hits_;
          }
        } else if (loaded.status != SetupStore::Lookup::kAbsent) {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++disk_rejects_[std::string(to_string(loaded.status))];
        }
      }
      if (state == nullptr) {
        state = builder();
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++builds_;
        }
        if (store != nullptr && encoder != nullptr && state != nullptr)
          store->store(key, encoder(state.get()));  // best-effort
      }
      promise.set_value(std::move(state));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();  // rethrows a builder failure to every sharing trial
}

std::size_t SetupCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t SetupCache::memory_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return memory_hits_;
}

std::uint64_t SetupCache::disk_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return disk_hits_;
}

std::uint64_t SetupCache::builds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return builds_;
}

std::map<std::string, std::uint64_t> SetupCache::disk_rejects() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return disk_rejects_;
}

namespace {
thread_local TrialContext* g_current_context = nullptr;
}  // namespace

TrialContext::TrialContext(SetupCache* cache, BedPool* bed_pool)
    : previous_(g_current_context), cache_(cache), bed_pool_(bed_pool) {
  g_current_context = this;
}

TrialContext::~TrialContext() { g_current_context = previous_; }

TrialContext* TrialContext::current() { return g_current_context; }

}  // namespace meecc::runtime
