// Memoized warm-state store for snapshot/fork trial execution.
//
// Sweeps repeat an expensive setup phase (Algorithm 1 eviction-set build,
// monitor discovery) for every trial even when only measure-phase
// parameters differ. The runner installs one SetupCache per sweep; trials
// whose Experiment::setup_key agree share a single warm state, built once
// and forked per trial. States are type-erased shared_ptrs — each
// experiment family defines its own warm-state struct (a TestBedSnapshot
// plus whatever setup artifacts it needs).
//
// With a SetupStore attached (setup_store.h) the cache becomes two-tier:
// a key missing in memory is looked up on disk first (decoded through the
// experiment-supplied codec), and a freshly built state is encoded and
// written back, so later processes and other shards skip the build. Any
// disk-side failure — corrupt frame, decode error, key collision — falls
// back to a fresh build and is tallied, never fatal.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace meecc::runtime {

class BedPool;
class SetupStore;

/// Thread-safe store of type-erased warm setup states keyed by setup key.
/// When trials race on one key, the first runs the builder and the rest
/// block on a shared future — a setup is never built twice per process.
class SetupCache {
 public:
  using Builder = std::function<std::shared_ptr<const void>()>;
  /// Serialize a state to canonical payload bytes (SetupStore frames them).
  using Encoder = std::function<std::string(const void*)>;
  /// Rebuild a state from payload bytes; throws io::DecodeError on any
  /// mismatch (treated as a disk miss, never fatal).
  using Decoder = std::function<std::shared_ptr<const void>(std::string_view)>;

  /// Attaches the on-disk tier (borrowed; may be null to detach). Only
  /// get_or_build calls that supply a codec use it.
  void attach_store(SetupStore* store);

  /// Returns the state for `key`, producing it (at most once per key, per
  /// process) by — in order — loading it from the attached store when
  /// `decoder` is given, else running `builder`. A built state is written
  /// back through `encoder` when both it and a store are present. The
  /// builder runs under a detached obs::TrialScope so the setup machine's
  /// counters don't leak into whichever trial happened to build first —
  /// forked Systems restore the snapshot's counter baseline instead,
  /// keeping per-trial totals identical to fresh runs. A throwing builder
  /// propagates to every sharing trial (not retried).
  std::shared_ptr<const void> get_or_build(const std::string& key,
                                           const Builder& builder,
                                           const Encoder& encoder = nullptr,
                                           const Decoder& decoder = nullptr);

  std::size_t size() const;
  /// Found in this process's memory tier.
  std::uint64_t memory_hits() const;
  /// Loaded and decoded from the attached SetupStore.
  std::uint64_t disk_hits() const;
  /// Ran the builder (disk absent, rejected, or no store attached).
  std::uint64_t builds() const;
  /// Disk entries rejected, keyed by reject reason (to_string(Lookup) or
  /// "decode-error") — observable evidence that fallback, not a crash,
  /// handled each corruption mode.
  std::map<std::string, std::uint64_t> disk_rejects() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_future<std::shared_ptr<const void>>>
      entries_;
  SetupStore* store_ = nullptr;
  std::uint64_t memory_hits_ = 0;
  std::uint64_t disk_hits_ = 0;
  std::uint64_t builds_ = 0;
  std::map<std::string, std::uint64_t> disk_rejects_;
};

/// Per-trial runtime context, installed (thread-local) by the runner around
/// experiment.run. Experiments reach the sweep-wide SetupCache through it;
/// no context (unit tests, direct run() calls) means "build fresh".
class TrialContext {
 public:
  explicit TrialContext(SetupCache* cache, BedPool* bed_pool = nullptr);
  ~TrialContext();

  TrialContext(const TrialContext&) = delete;
  TrialContext& operator=(const TrialContext&) = delete;

  /// Innermost context on this thread, or nullptr.
  static TrialContext* current();

  SetupCache* setup_cache() const { return cache_; }

  /// This worker's bed-recycling pool (bed_pool.h), or nullptr when
  /// recycling is off (--no-recycle-systems, tracing, direct run() calls).
  BedPool* bed_pool() const { return bed_pool_; }

 private:
  TrialContext* previous_;
  SetupCache* cache_;
  BedPool* bed_pool_;
};

/// Typed front door: the memoized state for `key`, built with `builder` on
/// first use. Without an ambient cache the builder runs directly and
/// nothing is stored, so experiment code is identical in both modes.
template <typename T>
std::shared_ptr<const T> memoized_setup(
    const std::string& key,
    const std::function<std::shared_ptr<const T>()>& builder) {
  TrialContext* context = TrialContext::current();
  if (context == nullptr || context->setup_cache() == nullptr)
    return builder();
  auto erased = context->setup_cache()->get_or_build(
      key, [&]() -> std::shared_ptr<const void> { return builder(); });
  return std::static_pointer_cast<const T>(erased);
}

/// memoized_setup with a wire codec: states reach the attached SetupStore
/// (if any) through encode/decode. The codec sees the concrete T; the
/// cache sees bytes.
template <typename T>
std::shared_ptr<const T> memoized_setup(
    const std::string& key,
    const std::function<std::shared_ptr<const T>()>& builder,
    const std::function<std::string(const T&)>& encode,
    const std::function<std::shared_ptr<const T>(std::string_view)>& decode) {
  TrialContext* context = TrialContext::current();
  if (context == nullptr || context->setup_cache() == nullptr)
    return builder();
  auto erased = context->setup_cache()->get_or_build(
      key, [&]() -> std::shared_ptr<const void> { return builder(); },
      [&](const void* state) {
        return encode(*static_cast<const T*>(state));
      },
      [&](std::string_view payload) -> std::shared_ptr<const void> {
        return decode(payload);
      });
  return std::static_pointer_cast<const T>(erased);
}

}  // namespace meecc::runtime
