// Memoized warm-state store for snapshot/fork trial execution.
//
// Sweeps repeat an expensive setup phase (Algorithm 1 eviction-set build,
// monitor discovery) for every trial even when only measure-phase
// parameters differ. The runner installs one SetupCache per sweep; trials
// whose Experiment::setup_key agree share a single warm state, built once
// and forked per trial. States are type-erased shared_ptrs — each
// experiment family defines its own warm-state struct (a TestBedSnapshot
// plus whatever setup artifacts it needs).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace meecc::runtime {

/// Thread-safe store of type-erased warm setup states keyed by setup key.
/// When trials race on one key, the first runs the builder and the rest
/// block on a shared future — a setup is never built twice.
class SetupCache {
 public:
  using Builder = std::function<std::shared_ptr<const void>()>;

  /// Returns the state for `key`, running `builder` (at most once per key)
  /// to produce it. The builder runs under a detached obs::TrialScope so
  /// the setup machine's counters don't leak into whichever trial happened
  /// to build first — forked Systems restore the snapshot's counter
  /// baseline instead, keeping per-trial totals identical to fresh runs.
  /// A throwing builder propagates to every sharing trial (not retried).
  std::shared_ptr<const void> get_or_build(const std::string& key,
                                           const Builder& builder);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_future<std::shared_ptr<const void>>>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Per-trial runtime context, installed (thread-local) by the runner around
/// experiment.run. Experiments reach the sweep-wide SetupCache through it;
/// no context (unit tests, direct run() calls) means "build fresh".
class TrialContext {
 public:
  explicit TrialContext(SetupCache* cache);
  ~TrialContext();

  TrialContext(const TrialContext&) = delete;
  TrialContext& operator=(const TrialContext&) = delete;

  /// Innermost context on this thread, or nullptr.
  static TrialContext* current();

  SetupCache* setup_cache() const { return cache_; }

 private:
  TrialContext* previous_;
  SetupCache* cache_;
};

/// Typed front door: the memoized state for `key`, built with `builder` on
/// first use. Without an ambient cache the builder runs directly and
/// nothing is stored, so experiment code is identical in both modes.
template <typename T>
std::shared_ptr<const T> memoized_setup(
    const std::string& key,
    const std::function<std::shared_ptr<const T>()>& builder) {
  TrialContext* context = TrialContext::current();
  if (context == nullptr || context->setup_cache() == nullptr)
    return builder();
  auto erased = context->setup_cache()->get_or_build(
      key, [&]() -> std::shared_ptr<const void> { return builder(); });
  return std::static_pointer_cast<const T>(erased);
}

}  // namespace meecc::runtime
