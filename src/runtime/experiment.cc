#include "runtime/experiment.h"

namespace meecc::runtime {

std::optional<std::string_view> find_param(const ParamMap& params,
                                           std::string_view key) {
  std::optional<std::string_view> found;
  for (const auto& [k, v] : params)
    if (k == key) found = v;  // later bindings win
  return found;
}

void set_param(ParamMap& params, std::string_view key, std::string value) {
  for (auto& [k, v] : params) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  params.emplace_back(std::string(key), std::move(value));
}

std::optional<double> TrialResult::find_metric(std::string_view name) const {
  for (const auto& [k, v] : metrics)
    if (k == name) return v;
  return std::nullopt;
}

}  // namespace meecc::runtime
