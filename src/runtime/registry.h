// Process-wide experiment registry.
//
// Experiments register by name; the driver binary resolves names from the
// command line, tests look up what they need, and `list` walks everything.
// Built-in experiments live in experiments_*.cc and are installed by an
// explicit register_builtin_experiments() call (see experiments.h) — no
// static-initializer link-order tricks, which do not survive static
// libraries anyway.
#pragma once

#include <string_view>
#include <vector>

#include "runtime/experiment.h"

namespace meecc::runtime {

/// Installs an experiment. Throws std::invalid_argument on an empty name,
/// a missing run function, or a duplicate registration.
void register_experiment(Experiment experiment);

/// nullptr when no experiment has that name.
const Experiment* find_experiment(std::string_view name);

/// Like find_experiment but throws std::out_of_range with a message that
/// lists the registered names — the driver's error path.
const Experiment& get_experiment(std::string_view name);

/// All registered experiments, sorted by name.
std::vector<const Experiment*> all_experiments();

}  // namespace meecc::runtime
