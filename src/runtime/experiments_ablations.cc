// Beyond-paper ablations as registered experiments: counter-based
// detection, EPC placement sensitivity, and the way-partitioning
// mitigation (§5.5 directions).
#include <cstdio>
#include <memory>
#include <sstream>

#include "channel/capacity_probe.h"
#include "channel/covert_channel.h"
#include "channel/detector.h"
#include "channel/mitigation.h"
#include "channel/testbed.h"
#include "common/check.h"
#include "common/table.h"
#include "runtime/experiments.h"
#include "runtime/params.h"
#include "runtime/registry.h"
#include "sim/noise.h"

namespace meecc::runtime {

namespace {

// --- detection: MEE performance counters vs three workloads -------------

TrialResult run_detection(const TrialSpec& spec) {
  const std::string workload = param_str(spec, "workload", "channel");
  channel::TestBed bed(make_testbed_config(spec));
  channel::Detector detector(bed, channel::DetectorConfig{});

  if (workload == "channel") {
    const auto setup =
        channel::setup_covert_channel(bed, channel::ChannelConfig{});
    detector.start();
    (void)channel::transfer_covert_channel(
        bed, channel::ChannelConfig{},
        channel::random_bits(param_u64(spec, "bits", 256), spec.seed + 1),
        setup);
  } else if (workload == "stride64" || workload == "stride4k") {
    detector.start();
    bed.scheduler().spawn(sim::mee_stride_walker(
        bed.spy(),
        sim::StrideWalkerConfig{
            .base = bed.spy_enclave().base(),
            .bytes = bed.spy_enclave().size(),
            .stride = workload == "stride64" ? 64ull : 4096ull,
            .gap = 600}));
    bed.scheduler().run_until(4'000'000);
  } else {
    throw ParamError("workload must be channel|stride64|stride4k, got '" +
                     workload + "'");
  }
  const auto report = detector.stop();

  TrialResult out;
  out.metric("flagged", report.flagged);
  out.metric("flagged_by_miss_ratio", report.flagged_by_miss_ratio);
  out.metric("flagged_by_concentration", report.flagged_by_concentration);
  out.metric("suspicious_epochs",
             static_cast<double>(report.suspicious_epochs));

  std::ostringstream artifact;
  artifact << "workload " << workload << ": "
           << (report.flagged ? "FLAGGED" : "not flagged") << " (miss ratio "
           << (report.flagged_by_miss_ratio ? "yes" : "no")
           << ", set concentration "
           << (report.flagged_by_concentration ? "yes" : "no") << ", "
           << report.suspicious_epochs << " suspicious epochs)\n"
           << "takeaway: the trojan's eviction pass is mostly versions HITS,\n"
              "so only per-set eviction concentration exposes the channel —\n"
              "and the miss-ratio rule false-positives on streaming "
              "co-tenants.\n";
  out.artifact_text = artifact.str();
  return out;
}

// --- EPC placement sensitivity ------------------------------------------

TrialResult run_epc_placement(const TrialSpec& spec) {
  channel::TestBed bed(make_testbed_config(spec));

  channel::CapacityProbeConfig cap_config;
  cap_config.trials = static_cast<int>(param_u64(spec, "trials", 60));
  const auto capacity = channel::run_capacity_probe(bed, cap_config);

  double error_rate = 1.0;
  std::uint32_t ways = 0;
  bool setup_ok = false;
  try {
    const auto result = channel::run_covert_channel(
        bed, channel::ChannelConfig{},
        channel::random_bits(param_u64(spec, "bits", 192), spec.seed + 3));
    error_rate = result.error_rate;
    ways = result.eviction.associativity();
    setup_ok = true;
  } catch (const CheckFailure&) {
    // Algorithm 1 / discovery could not establish the channel.
  }

  TrialResult out;
  out.metric("p_evict_at_max", capacity.points.back().probability);
  out.metric("knee", static_cast<double>(capacity.knee));
  out.metric("capacity_kb",
             static_cast<double>(capacity.estimated_capacity_bytes) / 1024.0);
  out.metric("ways", ways);
  out.metric("error_rate", error_rate);
  out.metric("setup_ok", setup_ok);

  std::ostringstream artifact;
  artifact << "reading: the attack does NOT depend on contiguous EPC\n"
              "allocation — a warm MEE cache is always full, so saturation\n"
              "tracks insertion count, and the channel is timing-driven.\n";
  out.artifact_text = artifact.str();
  return out;
}

// --- way-partitioning mitigation ----------------------------------------

TrialResult run_mitigations(const TrialSpec& spec) {
  // The way split is a fill policy now; the sweep axis is mee.cache.fill.
  const bool partitioned = param_str(spec, "mee.cache.fill", "all") != "all";
  auto make_bed = [&](std::uint64_t seed) {
    channel::TestBedConfig config = make_testbed_config(spec);
    config.system.seed = seed;
    return std::make_unique<channel::TestBed>(config);
  };

  const auto payload =
      channel::alternating_bits(param_u64(spec, "bits", 192));
  double error_rate = 1.0;
  bool blocked = false;
  try {
    auto bed = make_bed(spec.seed);
    error_rate =
        channel::run_covert_channel(*bed, channel::ChannelConfig{}, payload)
            .error_rate;
  } catch (const CheckFailure&) {
    blocked = true;  // discovery/Algorithm 1 could not establish the channel
  }

  auto legit_bed = make_bed(spec.seed + 1);
  const auto legit = channel::measure_legit_workload(
      *legit_bed, param_u64(spec, "legit_bytes", 256 * 1024),
      static_cast<int>(param_u64(spec, "legit_samples", 3000)));

  TrialResult out;
  out.metric("blocked_at_setup", blocked);
  out.metric("error_rate", error_rate);
  out.metric("legit_versions_hit_rate", legit.versions_hit_rate);
  out.metric("legit_mean_latency", legit.mean_protected_latency);

  std::ostringstream artifact;
  char line[160];
  std::snprintf(line, sizeof line,
                "%s: channel %s, legit versions-hit rate %.3f, mean "
                "protected latency %.0f cycles\n",
                partitioned ? "way-partitioned by core"
                            : "shared MEE cache (hardware)",
                blocked ? "blocked at setup"
                        : (error_rate > 0.25 ? "garbled" : "works"),
                legit.versions_hit_rate, legit.mean_protected_latency);
  artifact << line
           << "caveats (§5.5): partitioning cannot attribute shared\n"
              "integrity-tree nodes, per-core masks break under migration,\n"
              "and the halved associativity taxes every enclave.\n";
  out.artifact_text = artifact.str();
  return out;
}

}  // namespace

void register_ablation_experiments() {
  register_experiment(
      {.name = "ablation_detection",
       .description = "MEE performance-counter detection vs channel and "
                      "innocent workloads",
       .paper_ref = "beyond-paper; §5.5 refs [1][4]",
       .default_params = {{"functional_crypto", "false"},
                          {"workload", "channel"},
                          {"bits", "256"}},
       .default_sweeps = {{"workload", "channel,stride64,stride4k"}},
       .run = run_detection});
  register_experiment(
      {.name = "ablation_epc_placement",
       .description = "does the attack survive fragmented (randomized) EPC "
                      "allocation?",
       .paper_ref = "beyond-paper; §4.1 assumption",
       .default_params = {{"functional_crypto", "false"},
                          {"trials", "60"},
                          {"bits", "192"}},
       .default_sweeps = {{"epc_placement", "contiguous,randomized"}},
       .run = run_epc_placement});
  register_experiment(
      {.name = "ablation_mitigations",
       .description = "way-partitioned MEE cache (fill policy): stops the "
                      "channel, taxes legit enclaves",
       .paper_ref = "§5.5",
       .default_params = {{"functional_crypto", "false"},
                          {"bits", "192"},
                          {"legit_bytes", "262144"},
                          {"legit_samples", "3000"}},
       .default_sweeps = {{"mee.cache.fill", "all,partition"}},
       .run = run_mitigations});
}

void register_builtin_experiments() {
  static const bool once = [] {
    register_figure_experiments();
    register_ablation_experiments();
    register_mitigation_experiments();
    return true;
  }();
  (void)once;
}

}  // namespace meecc::runtime
