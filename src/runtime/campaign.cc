#include "runtime/campaign.h"

#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/bytes.h"
#include "runtime/params.h"
#include "runtime/sink.h"

namespace meecc::runtime {

namespace fs = std::filesystem;

namespace {

std::uint64_t parse_counting_number(std::string_view text,
                                    std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw ParamError("bad " + std::string(what) + " '" + std::string(text) +
                     "'");
  return value;
}

std::string shard_stem(const ShardSpec& shard) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "shard-%04u-of-%04u", shard.index,
                shard.count);
  return buffer;
}

std::string hash_hex(std::uint64_t hash) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParamError("cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// Atomic rewrite: a reader (or a resume after a kill) sees either the old
/// manifest or the new one, never a torn write.
void write_text_atomic(const std::string& path, std::string_view text) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << text;
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw std::runtime_error("cannot write '" + tmp + "'");
    }
  }
  fs::rename(tmp, path);
}

void write_manifest(const std::string& path, const ShardManifest& manifest) {
  write_text_atomic(path, manifest_to_json(manifest) + "\n");
}

/// Value text following `"key":` in our own deterministic manifest JSON.
std::string_view json_value_at(std::string_view json, std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  const auto pos = json.find(needle);
  if (pos == std::string_view::npos)
    throw ParamError("manifest missing key '" + std::string(key) + "'");
  std::string_view rest = json.substr(pos + needle.size());
  while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\n'))
    rest.remove_prefix(1);
  return rest;
}

std::uint64_t json_u64(std::string_view json, std::string_view key) {
  const std::string_view rest = json_value_at(json, key);
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), value);
  if (ec != std::errc{} || ptr == rest.data())
    throw ParamError("manifest key '" + std::string(key) +
                     "' is not a number");
  return value;
}

std::string json_string(std::string_view json, std::string_view key) {
  std::string_view rest = json_value_at(json, key);
  if (rest.empty() || rest.front() != '"')
    throw ParamError("manifest key '" + std::string(key) +
                     "' is not a string");
  rest.remove_prefix(1);
  std::string out;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const char c = rest[i];
    if (c == '"') return out;
    if (c == '\\') {
      if (i + 1 >= rest.size()) break;
      const char escaped = rest[++i];
      if (escaped == '"' || escaped == '\\')
        out.push_back(escaped);
      else
        throw ParamError("manifest key '" + std::string(key) +
                         "' uses an unsupported escape");
    } else {
      out.push_back(c);
    }
  }
  throw ParamError("manifest key '" + std::string(key) + "' is unterminated");
}

}  // namespace

ShardSpec parse_shard(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size())
    throw ParamError("--shard wants i/N, got '" + text + "'");
  ShardSpec shard;
  shard.index = static_cast<unsigned>(
      parse_counting_number(std::string_view(text).substr(0, slash),
                            "--shard index"));
  shard.count = static_cast<unsigned>(
      parse_counting_number(std::string_view(text).substr(slash + 1),
                            "--shard count"));
  if (shard.count == 0 || shard.index == 0 || shard.index > shard.count)
    throw ParamError("--shard " + text + " is out of range (want 1 <= i <= N)");
  return shard;
}

ShardRange shard_range(std::size_t total_trials, const ShardSpec& shard) {
  // floor(k*T/N) partition: contiguous, tiles [0, T), sizes differ by at
  // most one. 64-bit intermediate is ample for any realistic sweep.
  const auto cut = [&](std::size_t k) {
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(k) * total_trials / shard.count);
  };
  return ShardRange{.begin = cut(shard.index - 1), .end = cut(shard.index)};
}

std::uint64_t campaign_hash(const Experiment& experiment,
                            const std::vector<TrialSpec>& trials) {
  io::Writer w;
  w.u32(kCampaignFormatVersion);
  w.str(experiment.name);
  w.u64(trials.size());
  for (const TrialSpec& trial : trials) {
    w.u64(trial.trial_index);
    w.u64(trial.seed);
    w.u64(trial.params.size());
    for (const auto& [key, value] : trial.params) {
      w.str(key);
      w.str(value);
    }
  }
  return io::fnv1a64(w.data());
}

std::string shard_jsonl_path(const std::string& directory,
                             const ShardSpec& shard) {
  return (fs::path(directory) / (shard_stem(shard) + ".jsonl")).string();
}

std::string shard_manifest_path(const std::string& directory,
                                const ShardSpec& shard) {
  return (fs::path(directory) / (shard_stem(shard) + ".manifest.json"))
      .string();
}

std::string manifest_to_json(const ShardManifest& manifest) {
  std::ostringstream out;
  out << "{\"campaign\":\"" << json_escape(manifest.experiment) << "\""
      << ",\"committed\":" << manifest.committed
      << ",\"format_version\":" << manifest.format_version
      << ",\"hash\":\"" << hash_hex(manifest.hash) << "\""
      << ",\"shard_count\":" << manifest.shard_count
      << ",\"shard_index\":" << manifest.shard_index
      << ",\"trial_begin\":" << manifest.trial_begin
      << ",\"trial_end\":" << manifest.trial_end << "}";
  return std::move(out).str();
}

ShardManifest manifest_from_json(std::string_view json) {
  ShardManifest manifest;
  manifest.experiment = json_string(json, "campaign");
  const std::string hex = json_string(json, "hash");
  std::uint64_t hash = 0;
  const auto [ptr, ec] =
      std::from_chars(hex.data(), hex.data() + hex.size(), hash, 16);
  if (ec != std::errc{} || ptr != hex.data() + hex.size())
    throw ParamError("manifest key 'hash' is not a hex digest");
  manifest.hash = hash;
  manifest.format_version =
      static_cast<std::uint32_t>(json_u64(json, "format_version"));
  manifest.shard_index = static_cast<unsigned>(json_u64(json, "shard_index"));
  manifest.shard_count = static_cast<unsigned>(json_u64(json, "shard_count"));
  manifest.trial_begin = json_u64(json, "trial_begin");
  manifest.trial_end = json_u64(json, "trial_end");
  manifest.committed = json_u64(json, "committed");
  if (manifest.shard_count == 0 || manifest.shard_index == 0 ||
      manifest.shard_index > manifest.shard_count ||
      manifest.trial_end < manifest.trial_begin ||
      manifest.committed > manifest.trial_end - manifest.trial_begin)
    throw ParamError("manifest is internally inconsistent");
  return manifest;
}

CampaignShardResult run_campaign_shard(const Experiment& experiment,
                                       const std::vector<TrialSpec>& trials,
                                       const CampaignShardOptions& options) {
  const ShardRange range = shard_range(trials.size(), options.shard);
  const std::uint64_t hash = campaign_hash(experiment, trials);
  const std::string data_path =
      shard_jsonl_path(options.directory, options.shard);
  const std::string manifest_path =
      shard_manifest_path(options.directory, options.shard);
  fs::create_directories(options.directory);

  ShardManifest manifest{.experiment = experiment.name,
                         .hash = hash,
                         .shard_index = options.shard.index,
                         .shard_count = options.shard.count,
                         .trial_begin = range.begin,
                         .trial_end = range.end,
                         .committed = 0};

  std::size_t watermark = 0;
  if (options.resume && fs::exists(manifest_path)) {
    const ShardManifest existing =
        manifest_from_json(read_file(manifest_path));
    if (existing.hash != hash)
      throw ParamError("cannot resume " + shard_stem(options.shard) +
                       ": manifest hash " + hash_hex(existing.hash) +
                       " belongs to a different campaign than " +
                       hash_hex(hash) +
                       " (experiment or sweep arguments changed?)");
    if (existing.format_version != kCampaignFormatVersion)
      throw ParamError("cannot resume " + shard_stem(options.shard) +
                       ": manifest format version " +
                       std::to_string(existing.format_version) +
                       " != " + std::to_string(kCampaignFormatVersion));
    if (existing.shard_index != options.shard.index ||
        existing.shard_count != options.shard.count ||
        existing.trial_begin != range.begin || existing.trial_end != range.end)
      throw ParamError("cannot resume " + shard_stem(options.shard) +
                       ": manifest shard coordinates do not match");
    watermark = existing.committed;
  }

  // Truncate the shard JSONL to the committed prefix: everything past the
  // watermark is a line the previous invocation appended but never
  // manifested (killed between flush and rename) — rerun it.
  std::string prefix;
  if (watermark > 0) {
    const std::string existing_data = read_file(data_path);
    std::size_t pos = 0;
    for (std::size_t line = 0; line < watermark; ++line) {
      pos = existing_data.find('\n', pos);
      if (pos == std::string::npos)
        throw ParamError("shard data '" + data_path + "' has fewer lines " +
                         "than its manifest watermark " +
                         std::to_string(watermark));
      ++pos;
    }
    prefix = existing_data.substr(0, pos);
  }
  write_text_atomic(data_path, prefix);
  manifest.committed = watermark;
  write_manifest(manifest_path, manifest);

  // This invocation's slice of the shard: from the watermark to the range
  // end, optionally capped to simulate a kill between commits.
  const std::size_t first = range.begin + watermark;
  std::size_t count = range.end - first;
  if (options.stop_after != 0 && options.stop_after < count)
    count = options.stop_after;
  const std::vector<TrialSpec> work(trials.begin() + first,
                                    trials.begin() + first + count);

  std::ofstream out(data_path, std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("cannot append to '" + data_path + "'");

  // Commit sink for the runner's streaming pipeline: workers encode lines
  // off-lock, the committer restores trial order and hands us contiguous
  // batches (runner.h ResultStream). One flush + one atomic manifest
  // rewrite per batch; positions are run-local (the work slice starts at
  // the watermark), so committed = watermark + first + count.
  class ShardCommitter final : public ResultStream {
   public:
    ShardCommitter(std::ofstream& data, std::string path,
                   ShardManifest& manifest, std::string manifest_path,
                   std::size_t watermark)
        : out_(data),
          data_path_(std::move(path)),
          manifest_(manifest),
          manifest_path_(std::move(manifest_path)),
          watermark_(watermark) {}

    void commit(std::size_t batch_first, const std::string* lines,
                std::size_t count) override {
      for (std::size_t i = 0; i < count; ++i)
        out_.write(lines[i].data(),
                   static_cast<std::streamsize>(lines[i].size()));
      out_.flush();
      if (!out_)
        throw std::runtime_error("write to '" + data_path_ + "' failed");
      manifest_.committed = watermark_ + batch_first + count;
      write_manifest(manifest_path_, manifest_);
    }

   private:
    std::ofstream& out_;
    const std::string data_path_;
    ShardManifest& manifest_;
    const std::string manifest_path_;
    const std::size_t watermark_;
  };
  ShardCommitter committer(out, data_path, manifest, manifest_path, watermark);

  CampaignShardResult result;
  result.resumed_from = watermark;

  RunnerConfig runner = options.runner;
  runner.stream = &committer;
  runner.keep_records = !options.streaming;
  const auto chained = options.runner.on_trial;
  std::size_t failures = 0;
  runner.on_trial = [&](const TrialRecord& record) {
    if (!record.ok) ++failures;
    if (chained) chained(record);
  };
  result.records = run_trials(experiment, work, runner, &result.setup_stats);
  result.failures = failures;

  // Every line passed through the committer in order, so the manifest on
  // disk already reads watermark + count.
  manifest.committed = watermark + count;
  result.manifest = manifest;
  return result;
}

MergeResult merge_campaign(const std::string& directory, std::ostream& out) {
  if (!fs::is_directory(directory))
    throw ParamError("campaign directory '" + directory + "' does not exist");
  std::vector<ShardManifest> manifests;
  for (const auto& entry : fs::directory_iterator(directory)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 14 &&
        name.compare(name.size() - 14, 14, ".manifest.json") == 0)
      manifests.push_back(manifest_from_json(read_file(entry.path().string())));
  }
  if (manifests.empty())
    throw ParamError("no shard manifests in '" + directory + "'");
  std::sort(manifests.begin(), manifests.end(),
            [](const ShardManifest& a, const ShardManifest& b) {
              return a.shard_index < b.shard_index;
            });

  const ShardManifest& head = manifests.front();
  if (manifests.size() != head.shard_count)
    throw ParamError("campaign wants " + std::to_string(head.shard_count) +
                     " shards but '" + directory + "' holds " +
                     std::to_string(manifests.size()) + " manifests");
  std::size_t expected_begin = 0;
  for (std::size_t i = 0; i < manifests.size(); ++i) {
    const ShardManifest& m = manifests[i];
    const std::string who =
        shard_stem(ShardSpec{.index = m.shard_index, .count = m.shard_count});
    if (m.shard_index != i + 1)
      throw ParamError("shard index " + std::to_string(i + 1) +
                       " is missing from '" + directory + "'");
    if (m.hash != head.hash || m.shard_count != head.shard_count ||
        m.experiment != head.experiment ||
        m.format_version != head.format_version)
      throw ParamError(who + " belongs to a different campaign than " +
                       shard_stem(ShardSpec{.index = 1,
                                            .count = head.shard_count}));
    if (m.trial_begin != expected_begin)
      throw ParamError(who + " starts at trial " +
                       std::to_string(m.trial_begin) + ", expected " +
                       std::to_string(expected_begin) +
                       " (shard ranges do not tile)");
    expected_begin = m.trial_end;
    if (!m.complete())
      throw ParamError(who + " is incomplete: " +
                       std::to_string(m.committed) + " of " +
                       std::to_string(m.trial_end - m.trial_begin) +
                       " trials committed (resume it first)");
  }

  MergeResult result{.hash = head.hash,
                     .shard_count = head.shard_count,
                     .trials = expected_begin};
  for (const ShardManifest& m : manifests) {
    const ShardSpec spec{.index = m.shard_index, .count = m.shard_count};
    const std::string path = shard_jsonl_path(directory, spec);
    std::ifstream in(path, std::ios::binary);
    if (!in) throw ParamError("shard data '" + path + "' is missing");
    std::string line;
    std::size_t lines = 0;
    while (lines < m.committed && std::getline(in, line)) {
      out << line << '\n';
      ++lines;
    }
    if (lines < m.committed)
      throw ParamError("shard data '" + path + "' has fewer lines than its " +
                       "manifest watermark " + std::to_string(m.committed));
  }
  if (!out) throw std::runtime_error("merge output write failed");
  return result;
}

}  // namespace meecc::runtime
