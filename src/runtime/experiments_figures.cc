// The paper's figures and tables as registered experiments. Each run()
// builds its own TestBed from the TrialSpec, so every experiment sweeps and
// parallelizes through the shared runner instead of a hand-rolled main().
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "channel/capacity_probe.h"
#include "channel/covert_channel.h"
#include "channel/eviction_set.h"
#include "channel/latency_survey.h"
#include "channel/llc_baseline.h"
#include "channel/prime_probe.h"
#include "channel/testbed.h"
#include "channel/timing_study.h"
#include "common/chart.h"
#include "common/stats.h"
#include "common/table.h"
#include "mee/levels.h"
#include "obs/counters.h"
#include "runtime/experiments.h"
#include "runtime/params.h"
#include "runtime/registry.h"

namespace meecc::runtime {

namespace {

// Deterministic payload seed decorrelated from the bed seed (the old
// standalone benches used separate seed bases for the same reason).
std::uint64_t payload_seed(const TrialSpec& spec) {
  return spec.seed * 1000003ULL + spec.trial_index;
}

std::vector<double> head(const std::vector<double>& v, std::size_t n) {
  return {v.begin(), v.begin() + std::min(n, v.size())};
}

// --- Fig. 2: timing methods inside SGX ----------------------------------

TrialResult run_fig2(const TrialSpec& spec) {
  channel::TestBed bed(make_testbed_config(spec));
  channel::TimingStudyConfig config;
  config.samples = static_cast<int>(param_u64(spec, "samples", 400));
  const auto result = channel::run_timing_study(bed, config);

  TrialResult out;
  out.metric("rdtsc_faults_in_enclave", result.rdtsc_faults_in_enclave);
  out.metric("native_overhead_mean", result.native.overhead.mean());
  out.metric("ocall_overhead_mean", result.ocall.overhead.mean());
  out.metric("ocall_overhead_min", result.ocall.overhead.min());
  out.metric("ocall_overhead_max", result.ocall.overhead.max());
  out.metric("shared_clock_overhead_mean", result.shared_clock.overhead.mean());

  Table table({"timer", "mode", "overhead mean (cyc)", "overhead min",
               "overhead max", "paper"});
  auto add = [&](const char* name, const char* mode,
                 const channel::TimerSeries& s, const char* paper) {
    table.add(name, mode, static_cast<long long>(s.overhead.mean()),
              static_cast<long long>(s.overhead.min()),
              static_cast<long long>(s.overhead.max()), paper);
  };
  add("rdtsc (native)", "non-enclave", result.native, "~0 (baseline)");
  add("OCALL rdtsc", "enclave", result.ocall, "8000-15000");
  add("hyperthread shared clock", "enclave", result.shared_clock, "~50");
  std::ostringstream artifact;
  artifact << "rdtsc in enclave mode: "
           << (result.rdtsc_faults_in_enclave ? "FAULTS" : "allowed")
           << " (paper: SGX v1 faults it)\n\n"
           << table.to_text()
           << "\nconclusion: only the shared clock (c) resolves the "
              "~300-cycle\nversions hit/miss gap from enclave mode, as the "
              "paper argues.\n";
  out.artifact_text = artifact.str();
  return out;
}

// --- Fig. 4: eviction probability vs candidate-set size -----------------

TrialResult run_fig4(const TrialSpec& spec) {
  channel::TestBed bed(make_testbed_config(spec));
  channel::CapacityProbeConfig config;
  config.trials = static_cast<int>(param_u64(spec, "trials", 100));
  const auto result = channel::run_capacity_probe(bed, config);

  TrialResult out;
  out.metric("knee", static_cast<double>(result.knee));
  out.metric("capacity_kb",
             static_cast<double>(result.estimated_capacity_bytes) / 1024.0);
  out.metric("p_evict_at_max", result.points.back().probability);

  std::vector<double> sizes, probabilities;
  Table table({"candidate addresses", "evictions", "probability"});
  std::vector<std::string> labels;
  for (const auto& point : result.points) {
    sizes.push_back(static_cast<double>(point.candidates));
    probabilities.push_back(point.probability);
    labels.push_back(std::to_string(point.candidates));
    table.add(point.candidates, point.evictions, point.probability);
  }
  out.add_series("candidates", std::move(sizes));
  out.add_series("probability", probabilities);

  std::ostringstream artifact;
  artifact << table.to_text() << '\n'
           << render_bar_chart(labels, probabilities) << '\n'
           << "saturation knee:    " << result.knee
           << " addresses (paper: 64)\nestimated capacity: "
           << result.estimated_capacity_bytes / 1024 << " KB (paper: 64 KB)\n";
  out.artifact_text = artifact.str();
  return out;
}

// --- Fig. 5: latency distribution by stride -----------------------------

TrialResult run_fig5(const TrialSpec& spec) {
  channel::TestBed bed(make_testbed_config(spec));
  channel::LatencySurveyConfig config;
  config.samples_per_stride =
      static_cast<int>(param_u64(spec, "samples_per_stride", 2500));
  // Zero the counters accumulated during enclave setup (page-add writes
  // walk the tree too) so mee.core0.stop.* describes exactly the survey's
  // own walks. The core-3 background agent keeps running, which is why the
  // cross-check below uses the per-core counters, not the aggregate.
  bed.system().hub().registry().reset();
  const auto result = channel::run_latency_survey(bed, config);

  TrialResult out;
  static constexpr const char* kLevelNames[5] = {"versions", "l0", "l1", "l2",
                                                 "root"};
  for (std::size_t level = 0; level < 5; ++level) {
    const auto& stats = result.per_level[level];
    out.metric(std::string(kLevelNames[level]) + "_mean", stats.mean());
    out.metric(std::string(kLevelNames[level]) + "_count",
               static_cast<double>(stats.count()));
  }
  const double hit = result.per_level[0].mean();
  const double root =
      result.per_level[4].count() ? result.per_level[4].mean() : 0.0;
  out.metric("versions_root_gap", root > 0 ? root - hit : 0.0);

  // Cross-check the histogram against the MEE's own stop counters: every
  // survey sample is one core-0 walk, so the per-core stop distribution
  // must total exactly strides × samples_per_stride.
  const auto counters = bed.system().hub().registry().snapshot();
  const std::uint64_t counted_walks =
      obs::snapshot_total(counters, "mee.core0.stop.");
  std::uint64_t histogram_samples = 0;
  for (const auto& series : result.series)
    for (const std::uint64_t c : series.stop_counts) histogram_samples += c;
  out.metric("counter_survey_walks", static_cast<double>(counted_walks));
  out.metric("counter_walks_match_samples",
             counted_walks == histogram_samples ? 1.0 : 0.0);

  std::ostringstream artifact;
  for (const auto& series : result.series) {
    artifact << "--- stride " << series.stride << " B (mean "
             << static_cast<long long>(series.latency.mean())
             << " cycles) ---\n"
             << render_histogram(series.histogram, 50) << '\n';
  }
  Table by_level({"MEE-cache stop level", "samples", "mean latency (cyc)",
                  "stddev", "paper peak"});
  const char* paper_peaks[5] = {"~480", "~545", "~610", "~675", "~750"};
  for (std::size_t level = 0; level < 5; ++level) {
    const auto& stats = result.per_level[level];
    if (stats.count() == 0) continue;
    by_level.add(to_string(static_cast<mee::Level>(level)), stats.count(),
                 static_cast<long long>(stats.mean()),
                 static_cast<long long>(stats.stddev()), paper_peaks[level]);
  }
  Table mix({"stride", "versions", "L0", "L1", "L2", "root"});
  for (const auto& series : result.series)
    mix.add(series.stride, series.stop_counts[0], series.stop_counts[1],
            series.stop_counts[2], series.stop_counts[3],
            series.stop_counts[4]);
  Table stops({"mee.core0.stop counter", "walks"});
  for (const auto& sample : counters) {
    if (sample.name.starts_with("mee.core0.stop."))
      stops.add(sample.name, sample.value);
  }
  artifact << by_level.to_text() << '\n'
           << "stop-level mix per stride (paper: 64B/512B -> versions/L0;\n"
              "4KB/32KB -> L1/L2; 256KB -> root):\n"
           << mix.to_text() << '\n'
           << "MEE stop counters (survey core):\n"
           << stops.to_text() << "counter total " << counted_walks << " vs "
           << histogram_samples << " histogram samples -> "
           << (counted_walks == histogram_samples ? "MATCH" : "MISMATCH")
           << '\n';
  if (root > 0)
    artifact << "versions-hit vs root gap: "
             << static_cast<long long>(root - hit)
             << " cycles (paper: >= ~300)\n";
  out.artifact_text = artifact.str();
  return out;
}

// --- Fig. 6: per-bit probe traces, Prime+Probe vs this work -------------

TrialResult run_fig6(const TrialSpec& spec) {
  const auto payload = channel::alternating_bits(param_u64(spec, "bits", 160));

  channel::TestBedConfig pp_config = make_testbed_config(spec);
  channel::TestBed pp_bed(pp_config);
  const auto pp = channel::run_prime_probe_baseline(
      pp_bed, channel::PrimeProbeConfig{}, payload);

  channel::TestBedConfig mee_config = make_testbed_config(spec);
  mee_config.system.seed = spec.seed + 1;  // independent machine
  channel::TestBed mee_bed(mee_config);
  const auto mee =
      channel::run_covert_channel(mee_bed, channel::ChannelConfig{}, payload);

  RunningStats pp_stats;
  for (const double t : pp.probe_times) pp_stats.add(t);
  double zero_sum = 0, one_sum = 0;
  std::size_t zeros = 0, ones = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] == 0) {
      zero_sum += mee.probe_times[i];
      ++zeros;
    } else {
      one_sum += mee.probe_times[i];
      ++ones;
    }
  }

  TrialResult out;
  out.metric("pp_error_rate", pp.error_rate);
  out.metric("pp_probe_mean", pp_stats.mean());
  out.metric("mee_error_rate", mee.error_rate);
  out.metric("mee_zero_probe_mean", zeros ? zero_sum / zeros : 0.0);
  out.metric("mee_one_probe_mean", ones ? one_sum / ones : 0.0);
  out.add_series("pp_trace", head(pp.probe_times, 32));
  out.add_series("mee_trace", head(mee.probe_times, 32));

  std::ostringstream artifact;
  artifact << "(a) Prime+Probe on the MEE cache, trojan sends 0101...\n"
           << render_series(head(pp.probe_times, 32), 12, 64)
           << "probe time: mean " << static_cast<long long>(pp_stats.mean())
           << " cycles (paper: ~3500-4200); bit errors " << pp.bit_errors
           << " / " << pp.sent.size() << " — fails, as in the paper\n\n"
           << "(b) this work (trojan holds the eviction set, spy probes one "
              "way)\n"
           << render_series(head(mee.probe_times, 32), 12, 64)
           << "'0' probes: mean "
           << static_cast<long long>(zeros ? zero_sum / zeros : 0)
           << " cycles (paper: ~480+timer); '1' probes: mean "
           << static_cast<long long>(ones ? one_sum / ones : 0)
           << " cycles (paper: ~750+timer)\nbit errors: " << mee.bit_errors
           << " / " << mee.sent.size() << '\n';
  out.artifact_text = artifact.str();
  return out;
}

// --- Fig. 7: bit rate / error rate vs timing window ---------------------

TrialResult run_fig7(const TrialSpec& spec) {
  channel::TestBed bed(make_testbed_config(spec));
  channel::ChannelConfig config;
  config.window = param_u64(spec, "window", 15000);
  const auto payload =
      channel::random_bits(param_u64(spec, "bits", 1500), payload_seed(spec));
  const auto result = channel::run_covert_channel(bed, config, payload);

  TrialResult out;
  out.metric("kbps", result.kilobytes_per_second);
  out.metric("error_rate", result.error_rate);
  out.metric("bit_errors", static_cast<double>(result.bit_errors));
  out.metric("monitor_found", result.monitor_found);
  return out;
}

// --- Fig. 8: robustness under co-tenant noise ---------------------------

TrialResult run_fig8(const TrialSpec& spec) {
  channel::TestBed bed(make_testbed_config(spec));
  const auto payload = channel::pattern_100100(param_u64(spec, "bits", 128));
  const auto result =
      channel::run_covert_channel(bed, channel::ChannelConfig{}, payload);

  TrialResult out;
  out.metric("bit_errors", static_cast<double>(result.bit_errors));
  out.metric("error_rate", result.error_rate);
  out.add_series("probe_times", result.probe_times);

  std::ostringstream artifact;
  artifact << to_string(bed.config().noise)
           << " — probe trace (errors show as misplaced levels):\n"
           << render_series(result.probe_times, 10, 96) << '\n';
  out.artifact_text = artifact.str();
  return out;
}

// --- Table: reverse-engineered MEE cache organization -------------------

TrialResult run_reverse_engineering(const TrialSpec& spec) {
  channel::TestBed bed(make_testbed_config(spec));

  channel::CapacityProbeConfig cap_config;
  cap_config.trials = static_cast<int>(param_u64(spec, "trials", 100));
  const auto capacity = channel::run_capacity_probe(bed, cap_config);

  const auto eviction =
      channel::find_eviction_set(bed, channel::EvictionSetConfig{});

  const std::uint64_t capacity_bytes = capacity.estimated_capacity_bytes;
  const std::uint32_t ways = eviction.associativity();
  const std::uint64_t sets = ways ? capacity_bytes / (ways * 64) : 0;

  TrialResult out;
  out.metric("capacity_kb", static_cast<double>(capacity_bytes) / 1024.0);
  out.metric("ways", ways);
  out.metric("sets", static_cast<double>(sets));
  out.metric("found_test_address", eviction.found_test_address);

  Table table({"property", "recovered", "paper", "method"});
  table.add("line size", "64 B", "64 B", "known from [5]");
  table.add("capacity", std::to_string(capacity_bytes / 1024) + " KB", "64 KB",
            "Fig. 4 eviction-probability knee");
  table.add("associativity", ways, "8", "Algorithm 1 eviction set size");
  table.add("sets", sets, "128", "capacity / (ways x 64 B)");
  std::ostringstream artifact;
  artifact << table.to_text() << "\nAlgorithm 1 internals: index set "
           << eviction.index_set.size() << " addresses, test address "
           << (eviction.found_test_address ? "found" : "NOT FOUND")
           << ", eviction set " << eviction.eviction_set.size()
           << " addresses\n";
  out.artifact_text = artifact.str();
  return out;
}

// --- Context baseline: LLC Prime+Probe vs the MEE channel ---------------

TrialResult run_llc_baseline(const TrialSpec& spec) {
  const auto payload =
      channel::random_bits(param_u64(spec, "bits", 512), payload_seed(spec));

  channel::TestBed llc_bed(make_testbed_config(spec));
  const auto llc = channel::run_llc_baseline(
      llc_bed, channel::LlcChannelConfig{}, payload);

  channel::TestBedConfig mee_config = make_testbed_config(spec);
  mee_config.system.seed = spec.seed + 1;
  channel::TestBed mee_bed(mee_config);
  const auto mee =
      channel::run_covert_channel(mee_bed, channel::ChannelConfig{}, payload);

  TrialResult out;
  out.metric("llc_kbps", llc.kilobytes_per_second);
  out.metric("llc_error_rate", llc.error_rate);
  out.metric("mee_kbps", mee.kilobytes_per_second);
  out.metric("mee_error_rate", mee.error_rate);

  Table table({"channel", "bit rate (KBps)", "error rate", "needs hugepages",
               "works in SGX", "defeated by non-inclusive LLC"});
  char llc_rate[32], llc_err[32], mee_rate[32], mee_err[32];
  std::snprintf(llc_rate, sizeof llc_rate, "%.1f", llc.kilobytes_per_second);
  std::snprintf(llc_err, sizeof llc_err, "%.3f", llc.error_rate);
  std::snprintf(mee_rate, sizeof mee_rate, "%.1f", mee.kilobytes_per_second);
  std::snprintf(mee_err, sizeof mee_err, "%.3f", mee.error_rate);
  table.add("LLC Prime+Probe [7,9]", llc_rate, llc_err, "yes", "no", "yes");
  table.add("MEE cache (this paper)", mee_rate, mee_err, "no", "yes", "no");
  std::ostringstream artifact;
  artifact << table.to_text()
           << "\nshape check: the LLC channel is faster but the MEE channel\n"
              "works where LLC attacks are blocked — the paper's "
              "motivation.\n";
  out.artifact_text = artifact.str();
  return out;
}

}  // namespace

void register_figure_experiments() {
  register_experiment(
      {.name = "fig2_timing_methods",
       .description = "timer overhead inside SGX: rdtsc, OCALL, shared clock",
       .paper_ref = "Fig. 2 (a)-(c), §3 challenge 4",
       .default_params = {{"functional_crypto", "false"}, {"samples", "400"}},
       .default_sweeps = {},
       .run = run_fig2});
  register_experiment(
      {.name = "fig4_eviction_probability",
       .description = "eviction probability vs candidate-set size (capacity)",
       .paper_ref = "Fig. 4, §4.1",
       .default_params = {{"functional_crypto", "false"}, {"trials", "100"}},
       .default_sweeps = {},
       .run = run_fig4});
  register_experiment(
      {.name = "fig5_latency_histogram",
       .description = "protected-access latency distribution by stride",
       .paper_ref = "Fig. 5, §5.1",
       .default_params = {{"functional_crypto", "false"},
                          {"epc_size", "64M"},
                          {"trojan_bytes", "32M"},
                          {"samples_per_stride", "2500"}},
       .default_sweeps = {},
       .run = run_fig5});
  register_experiment(
      {.name = "fig6_channel_traces",
       .description = "per-bit probe traces: Prime+Probe fails, this work "
                      "decodes",
       .paper_ref = "Fig. 6 (a)/(b), §5.2-5.3",
       .default_params = {{"functional_crypto", "false"}, {"bits", "160"}},
       .default_sweeps = {},
       .run = run_fig6});
  register_experiment(
      {.name = "fig7_window_sweep",
       .description = "bit rate vs error rate as the timing window varies",
       .paper_ref = "Fig. 7, §5.4",
       .default_params = {{"functional_crypto", "false"},
                          {"bits", "1500"},
                          {"window", "15000"}},
       .default_sweeps = {{"window",
                           "5000,7500,10000,15000,20000,25000,30000"}},
       .run = run_fig7});
  register_experiment(
      {.name = "fig8_noise",
       .description = "channel robustness under co-tenant noise environments",
       .paper_ref = "Fig. 8 (a)-(d), §5.4",
       .default_params = {{"functional_crypto", "false"},
                          {"noise_autostart", "false"},
                          {"bits", "128"}},
       .default_sweeps = {{"noise", "none,stress,mee512,mee4k"}},
       .run = run_fig8});
  register_experiment(
      {.name = "table_reverse_engineering",
       .description = "recovered MEE cache organization (capacity/ways/sets)",
       .paper_ref = "§4 headline table",
       .default_params = {{"functional_crypto", "false"}, {"trials", "100"}},
       .default_sweeps = {},
       .run = run_reverse_engineering});
  register_experiment(
      {.name = "llc_baseline",
       .description = "classic LLC Prime+Probe channel vs the MEE channel",
       .paper_ref = "§1-2 context, refs [7][9]",
       .default_params = {{"functional_crypto", "false"}, {"bits", "512"}},
       .default_sweeps = {},
       .run = run_llc_baseline});
}

}  // namespace meecc::runtime
