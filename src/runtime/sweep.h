// Declarative sweep expansion: CLI-shaped overrides in, the cross-product
// of TrialSpecs out.
//
//   --set key=value      fix one parameter (replaces any default sweep axis
//                        on the same key)
//   --sweep key=a,b,c    add a sweep axis (cross-multiplied in order)
//   --seeds N            N seeds per parameter combination
//   --seed BASE          base seed; trial s uses BASE + s
//
// Expansion order is deterministic: axes iterate in declaration order
// (experiment defaults first, then CLI), seeds innermost — so trial_index,
// and with it every trial's seed, is independent of worker count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/experiment.h"

namespace meecc::runtime {

struct SweepSpec {
  ParamMap sets;  ///< --set overrides, in CLI order (later wins)
  /// --sweep axes: key -> values, in CLI order.
  std::vector<std::pair<std::string, std::vector<std::string>>> axes;
  int seeds = 1;
  std::uint64_t base_seed = 42;
};

/// Consumes the sweep-shaped flags from `args`, returning any it does not
/// recognise (the caller handles those or rejects them). Throws ParamError
/// on malformed input (missing '=', empty value list, bad --seeds).
std::vector<std::string> parse_sweep_args(const std::vector<std::string>& args,
                                          SweepSpec* spec);

/// Splits "key=value"; throws ParamError when '=' is missing or the key is
/// empty.
std::pair<std::string, std::string> split_key_value(const std::string& arg);

/// Expands experiment defaults + the CLI spec into concrete TrialSpecs.
/// Validates every key against the shared config table (params.h) and the
/// experiment's default_params; unknown keys throw ParamError, as do values
/// the config table cannot parse.
std::vector<TrialSpec> expand_sweep(const Experiment& experiment,
                                    const SweepSpec& spec);

/// The swept keys of the expansion (axis keys with >1 value), for summary
/// table columns.
std::vector<std::string> swept_keys(const Experiment& experiment,
                                    const SweepSpec& spec);

}  // namespace meecc::runtime
