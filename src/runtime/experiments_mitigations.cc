// Countermeasure studies over the cache-policy layer (cache/policy.h).
//
// Every mitigation here is just a SystemConfig override (mee.cache.*), so a
// study is a sweep, not a code fork:
//   meecc_bench run mitigations --sweep mee.cache.indexing=modulo,keyed
//   meecc_bench run mitigation_rekey
//   meecc_bench run ablation_mitigations   (way-partition fill, §5.5)
//
// Each trial reports three things per policy point: whether Algorithm 1
// still recovers an eviction set, what the channel then delivers
// (bit-rate / error-rate / Shannon capacity), and what the policy costs a
// well-behaved enclave workload.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>

#include "channel/covert_channel.h"
#include "channel/mitigation.h"
#include "channel/testbed.h"
#include "common/bytes.h"
#include "common/check.h"
#include "obs/scope.h"
#include "runtime/bed_pool.h"
#include "runtime/experiments.h"
#include "runtime/params.h"
#include "runtime/registry.h"
#include "runtime/setup_cache.h"
#include "sim/snapshot_io.h"

namespace meecc::runtime {

namespace {

/// Binary entropy, for Shannon capacity of the binary symmetric channel the
/// bit stream approximates: capacity = raw_rate × (1 − H₂(p)). An error
/// rate at or beyond 0.5 means the channel carries nothing.
double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

struct ChannelOutcome {
  bool setup_ok = false;
  std::uint32_t eviction_set_size = 0;
  double error_rate = 1.0;
  double raw_kbps = 0.0;
  double capacity_kbps = 0.0;
  std::uint64_t rekeys = 0;
};

/// Warm channel state at the quiesce boundary between setup and transfer:
/// everything Algorithm 1 + monitor discovery produced, shareable across
/// every trial that differs only in measure-phase parameters (payload
/// bits). Setup failure is part of the state — sharing trials replay the
/// blocked outcome without re-running Algorithm 1.
struct ChannelWarmState {
  channel::TestBedSnapshot bed;
  channel::ChannelSetup setup;
  bool setup_ok = false;
};

/// The key naming the warm state a trial at `seed` can share: machine seed
/// plus every shared-config param (measure-phase locals like "bits" are
/// deliberately excluded).
std::string warm_key_for(const TrialSpec& spec, std::uint64_t seed) {
  std::string key = "mitigation-setup|seed=" + std::to_string(seed);
  for (const auto& [param, value] : spec.params)
    if (is_config_key(param)) key += '|' + param + '=' + value;
  return key;
}

/// Builds a bed from `config`, runs channel setup (Algorithm 1 + beacon
/// discovery), and captures the bed at the quiesce boundary. Runs under a
/// detached TrialScope so the donor machine's counters/traces belong to no
/// single trial — forks restore the snapshot's counter baseline instead.
std::shared_ptr<const ChannelWarmState> warm_channel_setup(
    const channel::TestBedConfig& config) {
  obs::TrialScope shield(nullptr);
  channel::TestBed bed(config);
  channel::ChannelSetup setup;
  bool setup_ok = false;
  try {
    setup = channel::setup_covert_channel(bed, channel::ChannelConfig{});
    setup_ok = true;
  } catch (const CheckFailure&) {
    // Algorithm 1 / monitor discovery could not establish the channel
    // under this policy — exactly the mitigation succeeding. Snapshot the
    // bed anyway so the failure (and its counters) replays cheaply.
  }
  bed.quiesce_environment();
  return std::make_shared<const ChannelWarmState>(ChannelWarmState{
      .bed = bed.snapshot(), .setup = setup, .setup_ok = setup_ok});
}

/// Wire codec for ChannelWarmState (the on-disk setup store): the bed
/// snapshot through channel/sim snapshot_io, then the discovered channel
/// artifacts. Both directions build a scratch shape System from `config` —
/// cheap next to the Algorithm 1 run the stored state replaces.
std::string encode_warm_state(const channel::TestBedConfig& config,
                              const ChannelWarmState& state) {
  sim::System shape(config.system);
  io::Writer w;
  channel::encode_testbed_snapshot(w, shape, state.bed);
  const auto encode_addrs = [&w](const std::vector<VirtAddr>& addrs) {
    w.u64(addrs.size());
    for (const auto addr : addrs) w.u64(addr.raw);
  };
  encode_addrs(state.setup.eviction.eviction_set);
  encode_addrs(state.setup.eviction.index_set);
  w.u64(state.setup.eviction.test_address.raw);
  w.u8(state.setup.eviction.found_test_address ? 1 : 0);
  w.u8(state.setup.eviction.done ? 1 : 0);
  w.u64(state.setup.monitor.raw);
  w.u8(state.setup.monitor_found ? 1 : 0);
  w.u8(state.setup_ok ? 1 : 0);
  return w.take();
}

std::shared_ptr<const ChannelWarmState> decode_warm_state(
    const channel::TestBedConfig& config, std::string_view payload) {
  sim::System shape(config.system);
  io::Reader r(payload);
  auto state = std::make_shared<ChannelWarmState>(
      ChannelWarmState{.bed = channel::decode_testbed_snapshot(r, shape),
                       .setup = {},
                       .setup_ok = false});
  const auto decode_addrs = [&r](std::vector<VirtAddr>& addrs) {
    addrs.resize(static_cast<std::size_t>(r.u64()));
    for (auto& addr : addrs) addr = VirtAddr{r.u64()};
  };
  decode_addrs(state->setup.eviction.eviction_set);
  decode_addrs(state->setup.eviction.index_set);
  state->setup.eviction.test_address = VirtAddr{r.u64()};
  state->setup.eviction.found_test_address = r.u8() != 0;
  state->setup.eviction.done = r.u8() != 0;
  state->setup.monitor = VirtAddr{r.u64()};
  state->setup.monitor_found = r.u8() != 0;
  state->setup_ok = r.u8() != 0;
  r.expect_done();
  return state;
}

/// RAII lease on one trial's TestBed. With an ambient BedPool the bed is
/// recycled: taken from the pool, rewound in place to the snapshot, and
/// parked again on release — after absorbing its counters into the ambient
/// TrialScope, exactly what the fresh path's System destructor does, so
/// per-trial counter totals are identical in both modes. Without a pool
/// (recycling off, tracing, direct run() calls) it degenerates to plain
/// construction and destruction.
class TrialBed {
 public:
  /// Measure bed, forked from the warm state's snapshot. The aliasing
  /// `snap` pointer pins the warm state while the bed sits in the pool,
  /// and its address is the recycling identity: a pooled bed is rewound
  /// only against the very snapshot it was forked from.
  TrialBed(const channel::TestBedConfig& config, std::string key,
           const std::shared_ptr<const ChannelWarmState>& warm)
      : pool_(shared_setup_pool()), key_(std::move(key)) {
    const std::shared_ptr<const channel::TestBedSnapshot> snap(warm,
                                                               &warm->bed);
    if (pool_ != nullptr) {
      PooledBed pooled = pool_->take(key_);
      if (pooled && pooled.snap == snap && pooled.bed->try_reset(*snap)) {
        pool_->note_recycle();
        entry_ = std::move(pooled);
        return;
      }
      if (pooled) BedPool::drop(std::move(pooled));
    }
    entry_.bed = std::make_unique<channel::TestBed>(config, *snap);
    entry_.snap = snap;
  }

  /// Legit-workload bed, built from scratch. BOTH modes cross the
  /// quiesce→respawn boundary (a respawned environment agent is not a
  /// construction no-op), so recycled and fresh runs stay byte-identical;
  /// the first pooled use captures the pristine snapshot between the two
  /// halves of that boundary for later rewinds.
  TrialBed(const channel::TestBedConfig& config, std::string key)
      : pool_(ambient_pool()), key_(std::move(key)) {
    if (pool_ != nullptr) {
      PooledBed pooled = pool_->take(key_);
      if (pooled && pooled.snap != nullptr &&
          pooled.bed->try_reset(*pooled.snap)) {
        pool_->note_recycle();
        entry_ = std::move(pooled);
        return;
      }
      if (pooled) BedPool::drop(std::move(pooled));
    }
    entry_.bed = std::make_unique<channel::TestBed>(config);
    entry_.bed->quiesce_environment();
    if (pool_ != nullptr)
      entry_.snap = std::make_shared<const channel::TestBedSnapshot>(
          entry_.bed->snapshot());
    entry_.bed->respawn_environment();
  }

  ~TrialBed() {
    if (!entry_.bed) return;
    if (pool_ == nullptr) {
      entry_.bed.reset();  // the System destructor absorbs the counters
      return;
    }
    if (auto* scope = obs::TrialScope::current())
      scope->absorb(entry_.bed->system().hub().registry());
    pool_->put(std::move(key_), std::move(entry_));
  }

  TrialBed(const TrialBed&) = delete;
  TrialBed& operator=(const TrialBed&) = delete;

  channel::TestBed& operator*() { return *entry_.bed; }
  channel::TestBed* operator->() { return entry_.bed.get(); }

 private:
  static BedPool* ambient_pool() {
    TrialContext* context = TrialContext::current();
    return context != nullptr ? context->bed_pool() : nullptr;
  }
  /// Measure beds only recycle usefully when the warm state itself is
  /// shared (same snapshot across trials); without a SetupCache every
  /// trial builds a private warm state and pooling would just churn.
  static BedPool* shared_setup_pool() {
    TrialContext* context = TrialContext::current();
    return context != nullptr && context->setup_cache() != nullptr
               ? context->bed_pool()
               : nullptr;
  }

  BedPool* pool_;
  std::string key_;
  PooledBed entry_;
};

/// End-to-end attack attempt (Algorithm 1 + discovery + Algorithm 2) for
/// `spec` with `seed`. The setup phase is fetched through the memoized warm
/// state and the measure phase ALWAYS runs on a fork — with or without an
/// ambient SetupCache the execution path is identical, so snapshot reuse
/// cannot change results.
ChannelOutcome attempt_channel(const TrialSpec& spec, std::uint64_t seed,
                               const std::vector<std::uint8_t>& payload) {
  channel::TestBedConfig config = make_testbed_config(spec);
  config.system.seed = seed;
  const std::string key = warm_key_for(spec, seed);
  const auto warm = memoized_setup<ChannelWarmState>(
      key, [&] { return warm_channel_setup(config); },
      [&](const ChannelWarmState& state) {
        return encode_warm_state(config, state);
      },
      [&](std::string_view payload) {
        return decode_warm_state(config, payload);
      });
  TrialBed bed(config, key + "|measure", warm);
  ChannelOutcome outcome;
  if (warm->setup_ok) {
    try {
      // Deferred noise arrives once the channel is live (Fig. 8 scenario).
      bed->start_noise();
      const auto result = channel::transfer_covert_channel(
          *bed, channel::ChannelConfig{}, payload, warm->setup);
      outcome.setup_ok = true;
      outcome.eviction_set_size = result.eviction.associativity();
      outcome.error_rate = result.error_rate;
      outcome.raw_kbps = result.kilobytes_per_second;
      const double p = std::min(result.error_rate, 0.5);
      outcome.capacity_kbps =
          result.kilobytes_per_second * (1.0 - binary_entropy(p));
    } catch (const CheckFailure&) {
      // Transfer collapsed under this policy; report as a failed attempt.
    }
  }
  outcome.rekeys = bed->system().mee().rekeys();
  return outcome;
}

TrialResult run_mitigation_channel(const TrialSpec& spec) {
  const auto payload = channel::alternating_bits(param_u64(spec, "bits", 192));

  // Eviction-set construction success rate: Algorithm 1 end-to-end over a
  // few independent seeds (a randomized index may make it flaky rather than
  // impossible).
  const auto attempts = param_u64(spec, "setup_attempts", 2);
  std::uint64_t setups_ok = 0;
  ChannelOutcome main_outcome;
  for (std::uint64_t i = 0; i < attempts; ++i) {
    const auto outcome = attempt_channel(spec, spec.seed + i, payload);
    if (outcome.setup_ok) ++setups_ok;
    if (i == 0) main_outcome = outcome;
  }

  // What the policy costs a legitimate enclave: random reuse over a working
  // set sized to exactly fill an unmitigated 8-way MEE cache.
  channel::TestBedConfig legit_config = make_testbed_config(spec);
  legit_config.system.seed = spec.seed + 1000;
  TrialBed legit_bed(legit_config,
                     warm_key_for(spec, legit_config.system.seed) + "|legit");
  const auto legit = channel::measure_legit_workload(
      *legit_bed, param_u64(spec, "legit_bytes", 256 * 1024),
      static_cast<int>(param_u64(spec, "legit_samples", 3000)));

  TrialResult out;
  out.metric("setup_ok", main_outcome.setup_ok);
  out.metric("setup_success_rate",
             attempts ? static_cast<double>(setups_ok) /
                            static_cast<double>(attempts)
                      : 0.0);
  out.metric("eviction_set_size",
             static_cast<double>(main_outcome.eviction_set_size));
  out.metric("error_rate", main_outcome.error_rate);
  out.metric("raw_kbps", main_outcome.raw_kbps);
  out.metric("capacity_kbps", main_outcome.capacity_kbps);
  out.metric("rekeys", static_cast<double>(main_outcome.rekeys));
  out.metric("legit_versions_hit_rate", legit.versions_hit_rate);
  out.metric("legit_mean_latency", legit.mean_protected_latency);

  std::ostringstream artifact;
  char line[200];
  std::snprintf(
      line, sizeof line,
      "policy point: channel %s (setup %llu/%llu), capacity %.2f KB/s "
      "(raw %.2f, error %.3f)\n",
      main_outcome.setup_ok
          ? (main_outcome.error_rate > 0.25 ? "garbled" : "works")
          : "blocked at setup",
      static_cast<unsigned long long>(setups_ok),
      static_cast<unsigned long long>(attempts), main_outcome.capacity_kbps,
      main_outcome.raw_kbps, main_outcome.error_rate);
  artifact << line;
  std::snprintf(line, sizeof line,
                "legit cost: versions-hit rate %.3f, mean protected latency "
                "%.0f cycles",
                legit.versions_hit_rate, legit.mean_protected_latency);
  artifact << line;
  if (main_outcome.rekeys > 0)
    artifact << " (" << main_outcome.rekeys << " flush+rekey events)";
  artifact << '\n';
  out.artifact_text = artifact.str();
  return out;
}

}  // namespace

void register_mitigation_experiments() {
  register_experiment(
      {.name = "mitigations",
       .description = "channel capacity and eviction-set recovery vs MEE "
                      "cache indexing policy (CEASER-style keyed index)",
       .paper_ref = "beyond-paper; §5.5 + randomized-cache literature",
       .default_params = {{"functional_crypto", "false"},
                          {"bits", "192"},
                          {"setup_attempts", "2"},
                          {"legit_bytes", "262144"},
                          {"legit_samples", "3000"}},
       .default_sweeps = {{"mee.cache.indexing", "modulo,keyed"}},
       .run = run_mitigation_channel,
       .setup_key = [](const TrialSpec& spec) {
         return warm_key_for(spec, spec.seed);
       }});
  register_experiment(
      {.name = "mitigation_rekey",
       .description = "periodic MEE-cache flush+rekey: channel degradation "
                      "vs legit-workload tax as the period shrinks",
       .paper_ref = "beyond-paper; §5.5 directions",
       .default_params = {{"functional_crypto", "false"},
                          {"bits", "192"},
                          {"setup_attempts", "1"},
                          {"legit_bytes", "262144"},
                          {"legit_samples", "3000"}},
       .default_sweeps = {{"mee.cache.rekey_period", "0,20000,5000,1000"}},
       .run = run_mitigation_channel,
       .setup_key = [](const TrialSpec& spec) {
         return warm_key_for(spec, spec.seed);
       }});
}

}  // namespace meecc::runtime
