// Built-in experiment registration.
//
// Call register_builtin_experiments() once at startup (the meecc_bench
// driver and the tests both do); it is idempotent. Registration is explicit
// rather than static-initializer magic so the experiments survive being
// archived into a static library.
#pragma once

namespace meecc::runtime {

/// Paper figures and tables: fig2, fig4-fig8, table_reverse_engineering,
/// llc_baseline.
void register_figure_experiments();

/// Beyond-paper ablations: detection, EPC placement, way-partition cost.
void register_ablation_experiments();

/// Countermeasure studies over the cache-policy layer: `mitigations`
/// (indexing sweep) and `mitigation_rekey` (periodic flush+rekey sweep).
void register_mitigation_experiments();

/// All of the above, exactly once per process.
void register_builtin_experiments();

}  // namespace meecc::runtime
