// Built-in experiment registration.
//
// Call register_builtin_experiments() once at startup (the meecc_bench
// driver and the tests both do); it is idempotent. Registration is explicit
// rather than static-initializer magic so the experiments survive being
// archived into a static library.
#pragma once

namespace meecc::runtime {

/// Paper figures and tables: fig2, fig4-fig8, table_reverse_engineering,
/// llc_baseline.
void register_figure_experiments();

/// Beyond-paper ablations: detection, EPC placement, mitigations.
void register_ablation_experiments();

/// Both of the above, exactly once per process.
void register_builtin_experiments();

}  // namespace meecc::runtime
