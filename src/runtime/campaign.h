// Sharded, resumable sweep campaigns.
//
// A campaign is one expanded sweep (experiment + trial list) split across N
// shards. Shard i/N owns the contiguous trial range
// [floor((i-1)*T/N), floor(i*T/N)) of the expansion, so the concatenation
// of shard outputs in shard order IS the unsharded `--json` stream —
// byte-identical at any shard split and any --jobs value.
//
// Each shard writes two files into the campaign directory:
//   shard-XXXX-of-YYYY.jsonl          one JSON line per trial, trial order
//   shard-XXXX-of-YYYY.manifest.json  self-describing progress record
//
// The manifest carries the campaign hash (experiment name + the full
// expanded trial list, so any drift in sweep arguments between invocations
// is caught), the shard's trial range, and the completion watermark: the
// count of trials whose JSONL lines are durably committed. The commit
// protocol is append-JSONL-then-flush, then rewrite the manifest atomically
// (temp file + rename) — so after a kill at ANY point, the first
// `committed` lines of the shard JSONL are valid and everything after them
// is garbage a resume may discard. Results finish out of order under
// --jobs N; the runner's committer pipeline (runner.h ResultStream)
// restores trial order and hands this file contiguous in-order batches of
// up to kCommitBatch lines, so the shard pays one flush and one manifest
// rewrite per batch instead of per trial. The watermark still only ever
// trails durable lines — batching changes commit granularity, never the
// crash-consistency invariant.
//
// `merge` scans the directory for manifests, checks that exactly one
// campaign is present (equal hashes, equal shard counts, every index
// exactly once), that ranges tile [0, T), and that every watermark is full
// — then streams the shard JSONLs out in shard order. Any gap, mismatch,
// or partial shard is a ParamError naming the offending shard, never a
// silently short output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/experiment.h"
#include "runtime/runner.h"

namespace meecc::runtime {

/// Bump when the manifest schema or the shard commit protocol changes;
/// resume and merge refuse manifests from another version.
inline constexpr std::uint32_t kCampaignFormatVersion = 1;

/// One-based shard coordinates, as written on the CLI: "--shard 2/4".
struct ShardSpec {
  unsigned index = 1;
  unsigned count = 1;
};

/// Parses "i/N"; throws ParamError unless 1 <= i <= N.
ShardSpec parse_shard(const std::string& text);

/// Half-open global trial range owned by a shard: the contiguous partition
/// [floor((i-1)*T/N), floor(i*T/N)). Ranges tile [0, T) exactly, and a
/// shard of a small campaign may legitimately be empty.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

ShardRange shard_range(std::size_t total_trials, const ShardSpec& shard);

/// Content identity of a campaign: FNV over the campaign format version,
/// the experiment name, and every expanded trial (index, seed, params in
/// order). Two invocations agree on the hash iff they would run the same
/// trials — the guard behind resume and merge.
std::uint64_t campaign_hash(const Experiment& experiment,
                            const std::vector<TrialSpec>& trials);

struct ShardManifest {
  std::string experiment;
  std::uint64_t hash = 0;
  std::uint32_t format_version = kCampaignFormatVersion;
  unsigned shard_index = 1;
  unsigned shard_count = 1;
  std::size_t trial_begin = 0;
  std::size_t trial_end = 0;
  /// Trials durably committed to the shard JSONL, counted from
  /// trial_begin. Invariant: the first `committed` lines of the JSONL are
  /// exactly to_json_line() of trials [trial_begin, trial_begin+committed).
  std::size_t committed = 0;

  bool complete() const { return committed == trial_end - trial_begin; }
};

std::string shard_jsonl_path(const std::string& directory,
                             const ShardSpec& shard);
std::string shard_manifest_path(const std::string& directory,
                                const ShardSpec& shard);

/// Deterministic single-object JSON (sorted, fixed key set).
std::string manifest_to_json(const ShardManifest& manifest);
/// Throws ParamError on missing keys or malformed values.
ShardManifest manifest_from_json(std::string_view json);

struct CampaignShardOptions {
  ShardSpec shard;
  std::string directory;
  /// Continue a partial shard from its manifest watermark instead of
  /// starting over. The existing manifest must match this campaign
  /// (hash, format version, coordinates) or the run refuses.
  bool resume = false;
  /// Run at most this many not-yet-committed trials this invocation, then
  /// return with a partial watermark (0 = no limit). This is the
  /// deterministic stand-in for a kill: the shard files are left exactly
  /// as a crash between commits would.
  std::size_t stop_after = 0;
  /// Drop each TrialRecord once its line is committed instead of
  /// returning them all in CampaignShardResult::records — peak RSS stays
  /// independent of shard size. `failures` still counts, and on_trial
  /// still sees every full record.
  bool streaming = false;
  /// jobs / setup_store / on_trial pass through to the runner; the
  /// campaign installs its own ResultStream committer (and failure
  /// counter) around them.
  RunnerConfig runner;
};

struct CampaignShardResult {
  ShardManifest manifest;  ///< final state, as last written to disk
  /// Records of the trials executed THIS invocation, in trial order
  /// (resumed or stopped-early shards cover a sub-range). Empty when
  /// options.streaming — read the shard JSONL instead.
  std::vector<TrialRecord> records;
  SetupStats setup_stats;        ///< this invocation's setup resolutions
  std::size_t resumed_from = 0;  ///< watermark inherited at start
  std::size_t failures = 0;      ///< trials with ok=false this invocation
};

/// Runs (or resumes) one shard of the campaign over the full expanded
/// trial list, committing results to the shard JSONL in trial order as
/// they retire. Throws ParamError on manifest/campaign mismatch and
/// CheckFailure-free I/O errors as std::runtime_error.
CampaignShardResult run_campaign_shard(const Experiment& experiment,
                                       const std::vector<TrialSpec>& trials,
                                       const CampaignShardOptions& options);

struct MergeResult {
  std::uint64_t hash = 0;
  unsigned shard_count = 0;
  std::size_t trials = 0;
};

/// Validates and concatenates every shard of the (single) campaign found
/// in `directory` into `out`. The output is byte-identical to the
/// unsharded `--json` stream of the same sweep.
MergeResult merge_campaign(const std::string& directory, std::ostream& out);

}  // namespace meecc::runtime
