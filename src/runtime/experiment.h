// The experiment runtime's core vocabulary: a TrialSpec names one concrete
// simulator run (seed + string-keyed parameter overrides), a TrialResult
// carries what it measured, and an Experiment binds a name to a
// TrialSpec -> TrialResult function plus the defaults that make
// `meecc_bench run <name>` reproduce its paper figure.
//
// Every trial owns its simulator (TestBed/System are built inside run()
// from the spec alone), so trials are embarrassingly parallel and results
// are bit-identical at any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace meecc::runtime {

/// Ordered key=value pairs. Order matters twice: overrides apply first to
/// last (later wins), and sweep expansion iterates keys in declaration
/// order so trial numbering is deterministic.
using ParamMap = std::vector<std::pair<std::string, std::string>>;

/// Last value bound to `key`, or nullopt.
std::optional<std::string_view> find_param(const ParamMap& params,
                                           std::string_view key);

/// Sets `key` to `value`, replacing an existing binding in place.
void set_param(ParamMap& params, std::string_view key, std::string value);

/// One concrete run of one experiment.
struct TrialSpec {
  std::string experiment;
  std::size_t trial_index = 0;  ///< position in the expanded sweep
  std::uint64_t seed = 0;       ///< drives every RNG in the trial's System
  ParamMap params;              ///< defaults merged with CLI overrides
};

/// Named sample sequence attached to a result (probe traces, per-size
/// probability curves) — the Fig. 6/8 style payloads.
struct SeriesData {
  std::string name;
  std::vector<double> values;
};

struct TrialResult {
  /// Named scalar metrics in emission order (the JSONL/table columns).
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<SeriesData> series;
  /// Pre-rendered human-only output (histograms, ASCII charts, tables)
  /// printed by the driver for single-trial runs; never serialized to JSON.
  std::string artifact_text;

  void metric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
  void add_series(std::string name, std::vector<double> values) {
    series.push_back({std::move(name), std::move(values)});
  }
  /// Lookup for tests and summary rendering.
  std::optional<double> find_metric(std::string_view name) const;
};

struct Experiment {
  std::string name;
  std::string description;
  std::string paper_ref;  ///< e.g. "Fig. 7, §5.4"
  /// Experiment-specific defaults (overridable via --set). Keys not in the
  /// shared config table (params.h) must appear here — sweep expansion
  /// rejects keys that are neither.
  ParamMap default_params;
  /// Default sweep axes as (key, "v1,v2,..."), reproducing the paper figure
  /// when run with no CLI sweeps. A CLI --sweep/--set on the same key
  /// replaces the default axis.
  std::vector<std::pair<std::string, std::string>> default_sweeps;
  std::function<TrialResult(const TrialSpec&)> run;
  /// Optional snapshot/fork support: maps a trial to the key naming the
  /// warm setup state it can share — by convention the experiment name,
  /// the seed, and every machine/setup-affecting param (measure-phase
  /// params excluded, so trials differing only there share one setup).
  /// When set, the runner installs a sweep-wide SetupCache reachable via
  /// runtime::TrialContext and run() fetches states with memoized_setup()
  /// under keys prefixed by setup_key(spec). Null = no sharing.
  std::function<std::string(const TrialSpec&)> setup_key = nullptr;
};

}  // namespace meecc::runtime
