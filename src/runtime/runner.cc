#include "runtime/runner.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "common/mpsc_queue.h"
#include "obs/scope.h"
#include "runtime/bed_pool.h"
#include "runtime/setup_cache.h"
#include "runtime/sink.h"

namespace meecc::runtime {

namespace {

/// Per-in-flight-trial trace buffer: holds one trial's events until the
/// committer replays them into the real sink in trial order. TraceEvent
/// string fields point at static storage by contract, so buffering is
/// safe. Buffers ride the result queue and are recycled through it, so a
/// traced parallel sweep holds one buffer per in-flight trial — not one
/// per campaign trial as the old per-sweep vector did.
class BufferSink : public obs::TraceSink {
 public:
  void emit(const obs::TraceEvent& event) override { events_.push_back(event); }
  void replay_into(obs::TraceSink& sink) const {
    for (const auto& event : events_) sink.emit(event);
  }
  void clear() { events_.clear(); }

 private:
  std::vector<obs::TraceEvent> events_;
};

/// One finished trial in flight from a worker to the committer. Strings
/// and the trace buffer circulate through the queue's swap-based exchange
/// (see common/mpsc_queue.h), so the steady-state hot path reuses their
/// capacity instead of reallocating per trial.
struct ResultMsg {
  std::size_t index = 0;
  TrialRecord record;
  std::string line;  ///< encoded JSONL + '\n' when streaming
  std::unique_ptr<BufferSink> trace;
};

TrialRecord run_one(const Experiment& experiment, const TrialSpec& spec,
                    obs::TraceSink* trace_sink, SetupCache* setup_cache,
                    BedPool* bed_pool) {
  TrialRecord record;
  record.spec = spec;
  // Ambient contexts: every System the trial constructs inherits the trace
  // sink and deposits its counters into the scope on destruction
  // (including during unwinding when the trial throws), and
  // memoized_setup() calls inside run() reach the sweep's SetupCache.
  TrialContext context(setup_cache, bed_pool);
  obs::TrialScope scope(trace_sink);
  try {
    record.result = experiment.run(spec);
    record.ok = true;
  } catch (const std::exception& e) {
    record.error = e.what();
  } catch (...) {
    record.error = "unknown exception";
  }
  record.counters = scope.counters();
  return record;
}

/// Single-consumer side of the result path: restores trial order with a
/// reorder buffer, replays trace buffers, batches stream commits, and
/// optionally retires records into the caller's vector. Runs inline on
/// the calling thread at jobs<=1 and on the committer thread otherwise —
/// never on more than one thread, so it needs no locks.
class CommitPipeline {
 public:
  CommitPipeline(const RunnerConfig& config, std::vector<TrialRecord>* records)
      : config_(config), records_(records) {
    if (config_.stream != nullptr) batch_.resize(kCommitBatch);
  }

  /// Consumes one finished trial, in any completion order. on_trial fires
  /// here (completion order); everything order-sensitive waits for the
  /// contiguous prefix.
  void feed(ResultMsg& msg) {
    if (config_.on_trial) config_.on_trial(msg.record);
    if (msg.index != next_) {
      pending_.emplace(msg.index, std::move(msg));
      return;
    }
    retire(msg);
    ++next_;
    while (!pending_.empty() && pending_.begin()->first == next_) {
      retire(pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++next_;
    }
  }

  /// Commits whatever in-order lines are batched (partial batch). Called
  /// when the queue runs dry so a slow producer never leaves durable-ready
  /// lines sitting in memory, and from finish().
  void flush_batch() {
    if (batch_used_ == 0) return;
    config_.stream->commit(batch_first_, batch_.data(), batch_used_);
    batch_used_ = 0;
  }

  void finish() { flush_batch(); }

 private:
  /// Trial-order retirement: trace replay, stream batching, record keep.
  void retire(ResultMsg& msg) {
    if (msg.trace && config_.trace_sink != nullptr)
      msg.trace->replay_into(*config_.trace_sink);
    if (config_.stream != nullptr) {
      if (batch_used_ == 0) batch_first_ = msg.index;
      // Swap, not copy: the stale committed line's capacity goes back to
      // the message (and through the queue to a worker).
      batch_[batch_used_].swap(msg.line);
      if (++batch_used_ == kCommitBatch) flush_batch();
    }
    if (records_ != nullptr) (*records_)[msg.index] = std::move(msg.record);
  }

  const RunnerConfig& config_;
  std::vector<TrialRecord>* records_;
  std::size_t next_ = 0;
  /// Results that finished ahead of their turn, keyed by trial index.
  /// Bounded by the in-flight window (queue capacity + jobs), not the
  /// campaign size.
  std::map<std::size_t, ResultMsg> pending_;
  std::vector<std::string> batch_;
  std::size_t batch_first_ = 0;
  std::size_t batch_used_ = 0;
};

/// Results queued from workers to the committer. Small on purpose: it
/// bounds the reorder window (and so peak memory) while staying deep
/// enough that workers never stall on a committer doing a batched write.
constexpr std::size_t kQueueCapacity = 256;

}  // namespace

std::vector<TrialRecord> run_trials(const Experiment& experiment,
                                    const std::vector<TrialSpec>& trials,
                                    const RunnerConfig& config,
                                    SetupStats* stats) {
  std::vector<TrialRecord> records(config.keep_records ? trials.size() : 0);

  unsigned jobs = config.jobs ? config.jobs : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, std::max<std::size_t>(trials.size(), 1)));

  // Sinks are single-threaded; parallel traced sweeps write each trial's
  // events into a buffer that rides the queue, and the committer replays
  // buffers in trial order.
  const bool buffer_traces = config.trace_sink != nullptr && jobs > 1;
  const bool encode = config.stream != nullptr;

  // Setup reuse is off while tracing: setup-phase events would fire once
  // per shared state instead of once per trial, breaking trace diffs.
  const bool reuse =
      config.reuse_setup && experiment.setup_key && config.trace_sink == nullptr;
  SetupCache setup_cache;
  if (reuse) setup_cache.attach_store(config.setup_store);
  SetupCache* cache_ptr = reuse ? &setup_cache : nullptr;
  // Bed recycling is also off while tracing — a recycled bed skips the
  // construction-phase events a fresh one would emit.
  const bool recycle = config.recycle_systems && config.trace_sink == nullptr;

  std::atomic<std::uint64_t> bed_recycles{0};
  std::atomic<std::uint64_t> bed_discards{0};
  std::atomic<std::size_t> next{0};
  // First-exception capture: whoever claims the flag stores their
  // exception; everyone else just stops. Rethrown after the joins.
  std::atomic<bool> stop{false};
  std::atomic<bool> error_claimed{false};
  std::exception_ptr first_error;
  auto claim_error = [&] {
    if (!error_claimed.exchange(true)) first_error = std::current_exception();
    stop.store(true, std::memory_order_relaxed);
  };

  CommitPipeline pipeline(config, config.keep_records ? &records : nullptr);

  if (jobs <= 1) {
    // Fully inline: no queue, no threads; trace events go straight to the
    // sink and exceptions from on_trial / stream->commit propagate
    // naturally to the caller.
    BedPool bed_pool;
    ResultMsg msg;
    for (std::size_t i = 0; i < trials.size(); ++i) {
      msg.record = run_one(experiment, trials[i], config.trace_sink, cache_ptr,
                           recycle ? &bed_pool : nullptr);
      msg.index = i;
      if (encode) {
        msg.line.clear();
        append_json_line(msg.line, msg.record);
        msg.line.push_back('\n');
      }
      pipeline.feed(msg);
    }
    pipeline.finish();
    bed_recycles.store(bed_pool.recycles(), std::memory_order_relaxed);
    bed_discards.store(bed_pool.discards(), std::memory_order_relaxed);
  } else {
    // A committer thread is only needed when someone consumes results in
    // a serialized order (stream, on_trial, trace replay); a plain
    // in-memory sweep writes its slot directly and skips the queue.
    const bool use_committer =
        encode || static_cast<bool>(config.on_trial) || buffer_traces;
    MpscQueue<ResultMsg> queue(kQueueCapacity);
    std::atomic<bool> producers_done{false};

    auto worker = [&] {
      BedPool bed_pool;
      try {
        ResultMsg msg;
        for (;;) {
          if (stop.load(std::memory_order_relaxed)) break;
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= trials.size()) break;
          obs::TraceSink* sink = config.trace_sink;
          if (buffer_traces) {
            // Recycle the buffer the queue handed back; allocate only
            // when this worker has none in hand.
            if (msg.trace)
              msg.trace->clear();
            else
              msg.trace = std::make_unique<BufferSink>();
            sink = msg.trace.get();
          }
          msg.record = run_one(experiment, trials[i], sink, cache_ptr,
                               recycle ? &bed_pool : nullptr);
          msg.index = i;
          if (encode) {
            msg.line.clear();
            append_json_line(msg.line, msg.record);
            msg.line.push_back('\n');
          }
          if (use_committer)
            queue.push(msg);
          else if (config.keep_records)
            records[i] = std::move(msg.record);
        }
      } catch (...) {
        claim_error();
      }
      bed_recycles.fetch_add(bed_pool.recycles(), std::memory_order_relaxed);
      bed_discards.fetch_add(bed_pool.discards(), std::memory_order_relaxed);
    };

    auto committer = [&] {
      ResultMsg msg;
      try {
        for (;;) {
          if (queue.try_pop(msg)) {
            pipeline.feed(msg);
            continue;
          }
          // Queue ran dry: push the partial batch out rather than sit on
          // durable-ready lines, then check for shutdown.
          pipeline.flush_batch();
          if (producers_done.load(std::memory_order_acquire)) {
            if (!queue.try_pop(msg)) break;
            pipeline.feed(msg);
            continue;
          }
          std::this_thread::yield();
        }
        pipeline.finish();
      } catch (...) {
        claim_error();
        // Keep draining (and discarding) so producers blocked on a full
        // queue can observe `stop` and exit; only then may we leave.
        for (;;) {
          if (queue.try_pop(msg)) continue;
          if (producers_done.load(std::memory_order_acquire)) {
            if (!queue.try_pop(msg)) break;
          } else {
            std::this_thread::yield();
          }
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs + 1);
    if (use_committer) pool.emplace_back(committer);
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) workers.emplace_back(worker);
    for (auto& thread : workers) thread.join();
    producers_done.store(true, std::memory_order_release);
    for (auto& thread : pool) thread.join();
  }

  if (first_error) std::rethrow_exception(first_error);

  if (stats != nullptr)
    *stats = SetupStats{
        .memory_hits = setup_cache.memory_hits(),
        .disk_hits = setup_cache.disk_hits(),
        .builds = setup_cache.builds(),
        .bed_recycles = bed_recycles.load(std::memory_order_relaxed),
        .bed_discards = bed_discards.load(std::memory_order_relaxed)};
  return records;
}

}  // namespace meecc::runtime
