#include "runtime/runner.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/scope.h"
#include "runtime/bed_pool.h"
#include "runtime/setup_cache.h"

namespace meecc::runtime {

namespace {

/// Per-trial trace buffer: holds one trial's events until the runner
/// replays them into the real sink in trial order. TraceEvent string
/// fields point at static storage by contract, so buffering is safe.
class BufferSink : public obs::TraceSink {
 public:
  void emit(const obs::TraceEvent& event) override { events_.push_back(event); }
  void replay_into(obs::TraceSink& sink) const {
    for (const auto& event : events_) sink.emit(event);
  }

 private:
  std::vector<obs::TraceEvent> events_;
};

TrialRecord run_one(const Experiment& experiment, const TrialSpec& spec,
                    obs::TraceSink* trace_sink, SetupCache* setup_cache,
                    BedPool* bed_pool) {
  TrialRecord record;
  record.spec = spec;
  // Ambient contexts: every System the trial constructs inherits the trace
  // sink and deposits its counters into the scope on destruction
  // (including during unwinding when the trial throws), and
  // memoized_setup() calls inside run() reach the sweep's SetupCache.
  TrialContext context(setup_cache, bed_pool);
  obs::TrialScope scope(trace_sink);
  try {
    record.result = experiment.run(spec);
    record.ok = true;
  } catch (const std::exception& e) {
    record.error = e.what();
  } catch (...) {
    record.error = "unknown exception";
  }
  record.counters = scope.counters();
  return record;
}

}  // namespace

std::vector<TrialRecord> run_trials(const Experiment& experiment,
                                    const std::vector<TrialSpec>& trials,
                                    const RunnerConfig& config,
                                    SetupStats* stats) {
  std::vector<TrialRecord> records(trials.size());

  unsigned jobs = config.jobs ? config.jobs : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, std::max<std::size_t>(trials.size(), 1)));

  // Sinks are single-threaded; parallel traced sweeps write each trial's
  // events into a private buffer and replay them in trial order below.
  const bool buffer_traces = config.trace_sink != nullptr && jobs > 1;
  std::vector<BufferSink> buffers(buffer_traces ? trials.size() : 0);

  // Setup reuse is off while tracing: setup-phase events would fire once
  // per shared state instead of once per trial, breaking trace diffs.
  const bool reuse =
      config.reuse_setup && experiment.setup_key && config.trace_sink == nullptr;
  SetupCache setup_cache;
  if (reuse) setup_cache.attach_store(config.setup_store);
  SetupCache* cache_ptr = reuse ? &setup_cache : nullptr;
  // Bed recycling is also off while tracing — a recycled bed skips the
  // construction-phase events a fresh one would emit.
  const bool recycle = config.recycle_systems && config.trace_sink == nullptr;

  std::mutex callback_mutex;
  std::uint64_t bed_recycles = 0;
  std::uint64_t bed_discards = 0;
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    BedPool bed_pool;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) break;
      obs::TraceSink* sink =
          buffer_traces ? &buffers[i] : config.trace_sink;
      records[i] = run_one(experiment, trials[i], sink, cache_ptr,
                           recycle ? &bed_pool : nullptr);
      if (config.on_trial) {
        const std::lock_guard<std::mutex> lock(callback_mutex);
        config.on_trial(records[i]);
      }
    }
    const std::lock_guard<std::mutex> lock(callback_mutex);
    bed_recycles += bed_pool.recycles();
    bed_discards += bed_pool.discards();
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
    if (buffer_traces)
      for (const auto& buffer : buffers) buffer.replay_into(*config.trace_sink);
  }
  if (stats != nullptr)
    *stats = SetupStats{.memory_hits = setup_cache.memory_hits(),
                        .disk_hits = setup_cache.disk_hits(),
                        .builds = setup_cache.builds(),
                        .bed_recycles = bed_recycles,
                        .bed_discards = bed_discards};
  return records;
}

}  // namespace meecc::runtime
