#include "runtime/runner.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "obs/scope.h"

namespace meecc::runtime {

namespace {

TrialRecord run_one(const Experiment& experiment, const TrialSpec& spec,
                    obs::TraceSink* trace_sink) {
  TrialRecord record;
  record.spec = spec;
  // Ambient scope: every System the trial constructs inherits the trace
  // sink and deposits its counters here on destruction (including during
  // unwinding when the trial throws).
  obs::TrialScope scope(trace_sink);
  try {
    record.result = experiment.run(spec);
    record.ok = true;
  } catch (const std::exception& e) {
    record.error = e.what();
  } catch (...) {
    record.error = "unknown exception";
  }
  record.counters = scope.counters();
  return record;
}

}  // namespace

std::vector<TrialRecord> run_trials(const Experiment& experiment,
                                    const std::vector<TrialSpec>& trials,
                                    const RunnerConfig& config) {
  std::vector<TrialRecord> records(trials.size());

  unsigned jobs = config.jobs ? config.jobs : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, std::max<std::size_t>(trials.size(), 1)));
  if (config.trace_sink != nullptr) jobs = 1;  // sinks are single-threaded

  std::mutex callback_mutex;
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) return;
      records[i] = run_one(experiment, trials[i], config.trace_sink);
      if (config.on_trial) {
        const std::lock_guard<std::mutex> lock(callback_mutex);
        config.on_trial(records[i]);
      }
    }
  };

  if (jobs <= 1) {
    worker();
    return records;
  }
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  return records;
}

}  // namespace meecc::runtime
