// Content-addressed on-disk store for serialized warm setup states.
//
// The in-process SetupCache (setup_cache.h) makes a sweep build each warm
// state once per process; this store makes it once per *campaign*: a built
// state is encoded (experiment-defined codec), framed (common/bytes.h) and
// written under a content address derived from its setup_key and the
// store's config hash, so a restarted process — or a shard running on
// another host — loads the bytes instead of re-running Algorithm 1.
//
// Trust model: a loaded entry is used only when every frame check passes
// (length, magic, format version, config hash, checksum) AND the embedded
// setup_key matches (the 64-bit content address could collide). Every
// failure mode maps to a distinct Lookup status; callers treat all of them
// as "build fresh" — a corrupt store can cost time, never correctness.
//
// Writes are atomic (temp file + rename) so a killed shard never leaves a
// torn entry for the next one to trip on.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace meecc::runtime {

/// Canonical config hash for a setup store: the snapshot wire-format
/// version chained with the experiment name. Everything else that shapes a
/// warm state (seed, config-key params) is part of the setup_key and so of
/// the entry's content address; a snapshot-format bump invalidates every
/// entry at the config-hash check.
std::uint64_t setup_store_config_hash(std::string_view experiment_name);

class SetupStore {
 public:
  /// "MEECSETP" — identifies a setup-store entry file.
  static constexpr std::uint64_t kMagic = 0x4d45454353'455450ULL;
  static constexpr std::uint32_t kFormatVersion = 1;

  /// `directory` is created on first store(); `config_hash` gates loads.
  SetupStore(std::string directory, std::uint64_t config_hash);

  enum class Lookup {
    kHit,
    kAbsent,          ///< no entry file (or unreadable)
    kTruncated,       ///< file shorter than the frame declares
    kBadMagic,        ///< not a setup-store entry
    kBadVersion,      ///< written by an incompatible format version
    kBadChecksum,     ///< payload corrupted on disk
    kConfigMismatch,  ///< written under a different config hash
    kKeyCollision,    ///< valid entry, but for a different setup_key
  };

  struct LoadResult {
    Lookup status = Lookup::kAbsent;
    /// The experiment-defined payload; set only when status == kHit.
    std::optional<std::string> payload;
  };

  /// Reads and validates the entry for `setup_key`.
  LoadResult load(const std::string& setup_key) const;

  /// Atomically writes the framed payload for `setup_key`. Best-effort:
  /// returns false on I/O failure (the campaign still works, just warm).
  bool store(const std::string& setup_key, std::string_view payload) const;

  /// Entry file path for `setup_key` (content address under directory).
  std::string path_for(const std::string& setup_key) const;

  const std::string& directory() const { return directory_; }
  std::uint64_t config_hash() const { return config_hash_; }

 private:
  std::string directory_;
  std::uint64_t config_hash_;
};

std::string_view to_string(SetupStore::Lookup status);

}  // namespace meecc::runtime
