// The parallel trial runner.
//
// Each trial builds its own sim::System from its TrialSpec, so trials share
// no mutable state and the pool is embarrassingly parallel. Results land in
// a vector slot per trial_index, and every trial's seed comes from the spec
// — output is bit-identical at any job count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"
#include "runtime/experiment.h"

namespace meecc::runtime {

class SetupStore;

struct TrialRecord {
  TrialSpec spec;
  TrialResult result;  ///< valid when ok
  bool ok = false;
  std::string error;  ///< exception text when !ok
  /// Every counter of every System the trial built, merged and sorted.
  /// Collected via the ambient obs::TrialScope the runner installs —
  /// experiments never mention observability. Empty when the trial built
  /// no System.
  obs::CounterSnapshot counters;
};

struct RunnerConfig {
  unsigned jobs = 1;  ///< worker threads; 0 means hardware_concurrency()
  /// Completion callback (progress reporting). Called from worker threads
  /// under an internal mutex, in completion order — NOT trial order.
  std::function<void(const TrialRecord&)> on_trial;
  /// Borrowed trace sink. Sinks are single-threaded by contract; with
  /// jobs > 1 the runner buffers each trial's events and replays every
  /// buffer into the sink in trial order after the pool joins, so traced
  /// sweeps parallelize and the output is byte-identical to jobs=1.
  obs::TraceSink* trace_sink = nullptr;
  /// Reuse warm setup state across trials sharing an Experiment::setup_key
  /// (snapshot/fork execution). Ignored for experiments without a
  /// setup_key, and disabled automatically while tracing: setup-phase
  /// trace events fire once per shared state, not once per trial, so a
  /// reused --trace run would not diff clean against a fresh one.
  bool reuse_setup = true;
  /// Borrowed on-disk setup tier (setup_store.h); attached to the sweep's
  /// SetupCache when reuse is active, so warm states survive the process
  /// and are shared across shards. Null = in-memory reuse only.
  SetupStore* setup_store = nullptr;
  /// Recycle TestBeds across trials (bed_pool.h): each worker keeps its
  /// last few beds and rewinds them in place instead of reconstructing.
  /// A recycled bed is observationally identical to a fresh one, so this
  /// only changes speed; `--no-recycle-systems` clears it for A/B runs.
  /// Disabled automatically while tracing, like reuse_setup.
  bool recycle_systems = true;
};

/// Sweep-wide setup-reuse statistics (zeros when reuse was off). A warm
/// state is resolved exactly one way per (process, key): found in memory,
/// loaded from the attached SetupStore, or built fresh.
struct SetupStats {
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t builds = 0;
  /// Trials that rewound a pooled bed instead of constructing one, and
  /// pooled beds that had to be thrown away (failed rewind or eviction).
  std::uint64_t bed_recycles = 0;
  std::uint64_t bed_discards = 0;
};

/// Runs every trial through experiment.run. A throwing trial is recorded
/// (ok=false, error=what()) without aborting the sweep. The returned vector
/// is in trial order regardless of completion order. `stats`, when
/// non-null, receives the sweep's setup-cache resolution counts.
std::vector<TrialRecord> run_trials(const Experiment& experiment,
                                    const std::vector<TrialSpec>& trials,
                                    const RunnerConfig& config,
                                    SetupStats* stats = nullptr);

}  // namespace meecc::runtime
