// The parallel trial runner.
//
// Each trial builds its own sim::System from its TrialSpec, so trials share
// no mutable state and the pool is embarrassingly parallel. Every trial's
// seed comes from the spec, so output is bit-identical at any job count.
//
// Results leave the pool two ways, composable per RunnerConfig:
//   - the in-memory API: run_trials returns a vector in trial order
//     (keep_records, the default), exactly as before;
//   - the streaming path: workers encode each finished record into a JSONL
//     line off any lock and hand it through a bounded lock-free MPSC queue
//     to a single committer, which restores trial order and feeds a
//     ResultStream in contiguous batches. With keep_records=false nothing
//     accumulates, so peak RSS is independent of trial count — the mode
//     campaigns and `meecc_bench run --streaming` use.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"
#include "runtime/experiment.h"

namespace meecc::runtime {

class SetupStore;

struct TrialRecord {
  TrialSpec spec;
  TrialResult result;  ///< valid when ok
  bool ok = false;
  std::string error;  ///< exception text when !ok
  /// Every counter of every System the trial built, merged and sorted.
  /// Collected via the ambient obs::TrialScope the runner installs —
  /// experiments never mention observability. Empty when the trial built
  /// no System.
  obs::CounterSnapshot counters;
};

/// Consumer of the streaming result path. The runner calls commit() with
/// newline-terminated JSONL lines (append_json_line bytes) covering trial
/// positions [first, first + count) of the trials vector passed to
/// run_trials — always contiguous, always in order, each position exactly
/// once across the run. Calls arrive on the committer thread (jobs > 1) or
/// the calling thread (jobs <= 1), never concurrently. An exception thrown
/// from commit() stops the sweep and rethrows from run_trials.
class ResultStream {
 public:
  virtual ~ResultStream() = default;
  virtual void commit(std::size_t first, const std::string* lines,
                      std::size_t count) = 0;
};

struct RunnerConfig {
  unsigned jobs = 1;  ///< worker threads; 0 means hardware_concurrency()
  /// Completion callback (progress reporting). Called in completion order
  /// — NOT trial order — from the committer thread (jobs > 1) or the
  /// calling thread (jobs <= 1); never concurrently with itself or with
  /// stream->commit. An exception thrown here stops the sweep and
  /// rethrows from run_trials.
  std::function<void(const TrialRecord&)> on_trial;
  /// Streaming consumer (see ResultStream). Non-null turns on worker-side
  /// JSONL encoding and the committer pipeline; lines are committed in
  /// trial-order batches of up to kCommitBatch.
  ResultStream* stream = nullptr;
  /// When false, run_trials returns an empty vector and each TrialRecord
  /// is dropped as soon as the committer has passed it to on_trial /
  /// stream — bounded memory for million-trial campaigns. Callers get
  /// results via stream/on_trial only.
  bool keep_records = true;
  /// Borrowed trace sink. Sinks are single-threaded by contract; with
  /// jobs > 1 the runner buffers each trial's events in a per-in-flight
  /// buffer and the committer replays the buffers into the sink in trial
  /// order, so traced sweeps parallelize and the output is byte-identical
  /// to jobs=1.
  obs::TraceSink* trace_sink = nullptr;
  /// Reuse warm setup state across trials sharing an Experiment::setup_key
  /// (snapshot/fork execution). Ignored for experiments without a
  /// setup_key, and disabled automatically while tracing: setup-phase
  /// trace events fire once per shared state, not once per trial, so a
  /// reused --trace run would not diff clean against a fresh one.
  bool reuse_setup = true;
  /// Borrowed on-disk setup tier (setup_store.h); attached to the sweep's
  /// SetupCache when reuse is active, so warm states survive the process
  /// and are shared across shards. Null = in-memory reuse only.
  SetupStore* setup_store = nullptr;
  /// Recycle TestBeds across trials (bed_pool.h): each worker keeps its
  /// last few beds and rewinds them in place instead of reconstructing.
  /// A recycled bed is observationally identical to a fresh one, so this
  /// only changes speed; `--no-recycle-systems` clears it for A/B runs.
  /// Disabled automatically while tracing, like reuse_setup.
  bool recycle_systems = true;
};

/// Most in-order lines the committer hands one ResultStream::commit call
/// (one flush + one watermark update per batch on the campaign path).
inline constexpr std::size_t kCommitBatch = 64;

/// Sweep-wide setup-reuse statistics (zeros when reuse was off). A warm
/// state is resolved exactly one way per (process, key): found in memory,
/// loaded from the attached SetupStore, or built fresh.
struct SetupStats {
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t builds = 0;
  /// Trials that rewound a pooled bed instead of constructing one, and
  /// pooled beds that had to be thrown away (failed rewind or eviction).
  std::uint64_t bed_recycles = 0;
  std::uint64_t bed_discards = 0;
};

/// Runs every trial through experiment.run. A throwing trial is recorded
/// (ok=false, error=what()) without aborting the sweep; an exception from
/// on_trial or stream->commit stops the sweep, is captured (first wins),
/// and rethrows here after the pool joins. The returned vector is in trial
/// order regardless of completion order (empty when !config.keep_records).
/// `stats`, when non-null, receives the sweep's setup-cache resolution
/// counts.
std::vector<TrialRecord> run_trials(const Experiment& experiment,
                                    const std::vector<TrialSpec>& trials,
                                    const RunnerConfig& config,
                                    SetupStats* stats = nullptr);

}  // namespace meecc::runtime
