// The parallel trial runner.
//
// Each trial builds its own sim::System from its TrialSpec, so trials share
// no mutable state and the pool is embarrassingly parallel. Results land in
// a vector slot per trial_index, and every trial's seed comes from the spec
// — output is bit-identical at any job count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"
#include "runtime/experiment.h"

namespace meecc::runtime {

struct TrialRecord {
  TrialSpec spec;
  TrialResult result;  ///< valid when ok
  bool ok = false;
  std::string error;  ///< exception text when !ok
  /// Every counter of every System the trial built, merged and sorted.
  /// Collected via the ambient obs::TrialScope the runner installs —
  /// experiments never mention observability. Empty when the trial built
  /// no System.
  obs::CounterSnapshot counters;
};

struct RunnerConfig {
  unsigned jobs = 1;  ///< worker threads; 0 means hardware_concurrency()
  /// Completion callback (progress reporting). Called from worker threads
  /// under an internal mutex, in completion order — NOT trial order.
  std::function<void(const TrialRecord&)> on_trial;
  /// Borrowed trace sink handed to every trial's TrialScope. Sinks are
  /// single-threaded by contract, so callers MUST pair this with jobs=1
  /// (the runner enforces it).
  obs::TraceSink* trace_sink = nullptr;
};

/// Runs every trial through experiment.run. A throwing trial is recorded
/// (ok=false, error=what()) without aborting the sweep. The returned vector
/// is in trial order regardless of completion order.
std::vector<TrialRecord> run_trials(const Experiment& experiment,
                                    const std::vector<TrialSpec>& trials,
                                    const RunnerConfig& config);

}  // namespace meecc::runtime
