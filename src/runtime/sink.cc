#include "runtime/sink.h"

#include <cmath>
#include <cstdio>

#include "runtime/experiment.h"

namespace meecc::runtime {

std::string format_double(double value) {
  if (std::isnan(value)) return "null";  // JSON has no NaN
  if (std::isinf(value)) return value > 0 ? "1e999" : "-1e999";
  char buf[40];
  // %.17g round-trips every double; integers still print bare ("15000").
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json_line(const TrialRecord& record) {
  std::string out = "{\"experiment\":\"";
  out += json_escape(record.spec.experiment);
  out += "\",\"trial\":" + std::to_string(record.spec.trial_index);
  out += ",\"seed\":" + std::to_string(record.spec.seed);
  out += ",\"params\":{";
  for (std::size_t i = 0; i < record.spec.params.size(); ++i) {
    const auto& [key, value] = record.spec.params[i];
    if (i) out += ',';
    out += '"' + json_escape(key) + "\":\"" + json_escape(value) + '"';
  }
  out += "},\"ok\":";
  out += record.ok ? "true" : "false";
  if (!record.ok) {
    out += ",\"error\":\"" + json_escape(record.error) + '"';
    return out + '}';
  }
  out += ",\"metrics\":{";
  for (std::size_t i = 0; i < record.result.metrics.size(); ++i) {
    const auto& [key, value] = record.result.metrics[i];
    if (i) out += ',';
    out += '"' + json_escape(key) + "\":" + format_double(value);
  }
  out += '}';
  if (!record.result.series.empty()) {
    out += ",\"series\":{";
    for (std::size_t i = 0; i < record.result.series.size(); ++i) {
      const auto& series = record.result.series[i];
      if (i) out += ',';
      out += '"' + json_escape(series.name) + "\":[";
      for (std::size_t j = 0; j < series.values.size(); ++j) {
        if (j) out += ',';
        out += format_double(series.values[j]);
      }
      out += ']';
    }
    out += '}';
  }
  // Counters ride along only when present, keeping pre-observability
  // consumers (and byte-exact golden JSONL) unchanged for counter-less
  // records. Snapshot order is sorted-by-name, hence deterministic.
  if (!record.counters.empty()) {
    out += ",\"counters\":{";
    for (std::size_t i = 0; i < record.counters.size(); ++i) {
      if (i) out += ',';
      out += '"' + json_escape(record.counters[i].name) +
             "\":" + std::to_string(record.counters[i].value);
    }
    out += '}';
  }
  return out + '}';
}

void write_jsonl(std::ostream& out, const std::vector<TrialRecord>& records) {
  for (const TrialRecord& record : records) out << to_json_line(record) << '\n';
}

Table summary_table(const std::vector<TrialRecord>& records,
                    const std::vector<std::string>& param_columns) {
  // Metric columns come from the first successful record; experiments emit
  // a stable metric set, so this is the whole sweep's schema.
  std::vector<std::string> metric_names;
  for (const TrialRecord& record : records) {
    if (!record.ok) continue;
    for (const auto& [name, value] : record.result.metrics)
      metric_names.push_back(name);
    break;
  }

  std::vector<std::string> header = {"trial", "seed"};
  header.insert(header.end(), param_columns.begin(), param_columns.end());
  header.insert(header.end(), metric_names.begin(), metric_names.end());
  Table table(header);

  for (const TrialRecord& record : records) {
    std::vector<std::string> row = {std::to_string(record.spec.trial_index),
                                    std::to_string(record.spec.seed)};
    for (const std::string& key : param_columns) {
      const auto v = find_param(record.spec.params, key);
      row.push_back(std::string(v.value_or("-")));
    }
    for (const std::string& name : metric_names) {
      if (!record.ok) {
        row.push_back("FAILED: " + record.error);
        break;
      }
      const auto v = record.result.find_metric(name);
      char buf[40];
      if (v)
        std::snprintf(buf, sizeof buf, "%.6g", *v);
      row.push_back(v ? buf : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

obs::CounterSnapshot merge_counters(const std::vector<TrialRecord>& records) {
  obs::CounterSnapshot merged;
  for (const TrialRecord& record : records)
    obs::merge_into(merged, record.counters);
  return merged;
}

Table counters_table(const obs::CounterSnapshot& counters) {
  Table table({"counter", "value"});
  for (const obs::CounterSample& sample : counters)
    table.add_row({sample.name, std::to_string(sample.value)});
  return table;
}

}  // namespace meecc::runtime
