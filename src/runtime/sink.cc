#include "runtime/sink.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "runtime/experiment.h"

namespace meecc::runtime {

void JsonWriter::string(std::string_view s) {
  out_.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out_.append("\\\""); break;
      case '\\': out_.append("\\\\"); break;
      case '\n': out_.append("\\n"); break;
      case '\r': out_.append("\\r"); break;
      case '\t': out_.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_.append(buf);
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::key(std::string_view k) {
  string(k);
  out_.push_back(':');
}

void JsonWriter::number(std::uint64_t value) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out_.append(buf, end);
}

void JsonWriter::number(double value) {
  if (std::isnan(value)) {
    out_.append("null");  // JSON has no NaN
    return;
  }
  if (std::isinf(value)) {
    out_.append(value > 0 ? "1e999" : "-1e999");
    return;
  }
  // precision-17 general format round-trips every double and is specified
  // to match printf %.17g — byte-compatible with the pre-JsonWriter
  // ostringstream path ("15000" stays bare, 0.017 round-trips).
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value,
                                       std::chars_format::general, 17);
  out_.append(buf, end);
}

std::string format_double(double value) {
  std::string out;
  JsonWriter(out).number(value);
  return out;
}

std::string json_escape(std::string_view s) {
  std::string quoted;
  JsonWriter(quoted).string(s);
  return quoted.substr(1, quoted.size() - 2);  // drop the surrounding quotes
}

void append_json_line(std::string& out, const TrialRecord& record) {
  JsonWriter w(out);
  w.raw("{\"experiment\":");
  w.string(record.spec.experiment);
  w.raw(",\"trial\":");
  w.number(static_cast<std::uint64_t>(record.spec.trial_index));
  w.raw(",\"seed\":");
  w.number(record.spec.seed);
  w.raw(",\"params\":{");
  for (std::size_t i = 0; i < record.spec.params.size(); ++i) {
    const auto& [key, value] = record.spec.params[i];
    if (i) w.raw(',');
    w.key(key);
    w.string(value);
  }
  w.raw("},\"ok\":");
  w.boolean(record.ok);
  if (!record.ok) {
    w.raw(",\"error\":");
    w.string(record.error);
    w.raw('}');
    return;
  }
  w.raw(",\"metrics\":{");
  for (std::size_t i = 0; i < record.result.metrics.size(); ++i) {
    const auto& [key, value] = record.result.metrics[i];
    if (i) w.raw(',');
    w.key(key);
    w.number(value);
  }
  w.raw('}');
  if (!record.result.series.empty()) {
    w.raw(",\"series\":{");
    for (std::size_t i = 0; i < record.result.series.size(); ++i) {
      const auto& series = record.result.series[i];
      if (i) w.raw(',');
      w.key(series.name);
      w.raw('[');
      for (std::size_t j = 0; j < series.values.size(); ++j) {
        if (j) w.raw(',');
        w.number(series.values[j]);
      }
      w.raw(']');
    }
    w.raw('}');
  }
  // Counters ride along only when present, keeping pre-observability
  // consumers (and byte-exact golden JSONL) unchanged for counter-less
  // records. Snapshot order is sorted-by-name, hence deterministic.
  if (!record.counters.empty()) {
    w.raw(",\"counters\":{");
    for (std::size_t i = 0; i < record.counters.size(); ++i) {
      if (i) w.raw(',');
      w.key(record.counters[i].name);
      w.number(record.counters[i].value);
    }
    w.raw('}');
  }
  w.raw('}');
}

std::string to_json_line(const TrialRecord& record) {
  std::string out;
  append_json_line(out, record);
  return out;
}

void write_jsonl(std::ostream& out, const std::vector<TrialRecord>& records) {
  // One buffer for the whole stream: formatting stops allocating once it
  // reaches the longest line's capacity.
  std::string line;
  for (const TrialRecord& record : records) {
    line.clear();
    append_json_line(line, record);
    line.push_back('\n');
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
}

void JsonlResultStream::commit(std::size_t /*first*/, const std::string* lines,
                               std::size_t count) {
  for (std::size_t i = 0; i < count; ++i)
    out_.write(lines[i].data(), static_cast<std::streamsize>(lines[i].size()));
  if (!out_) throw std::runtime_error("streaming JSONL write failed");
}

Table summary_table(const std::vector<TrialRecord>& records,
                    const std::vector<std::string>& param_columns) {
  // Metric columns come from the first successful record; experiments emit
  // a stable metric set, so this is the whole sweep's schema.
  std::vector<std::string> metric_names;
  for (const TrialRecord& record : records) {
    if (!record.ok) continue;
    for (const auto& [name, value] : record.result.metrics)
      metric_names.push_back(name);
    break;
  }

  std::vector<std::string> header = {"trial", "seed"};
  header.insert(header.end(), param_columns.begin(), param_columns.end());
  header.insert(header.end(), metric_names.begin(), metric_names.end());
  Table table(header);

  for (const TrialRecord& record : records) {
    std::vector<std::string> row = {std::to_string(record.spec.trial_index),
                                    std::to_string(record.spec.seed)};
    for (const std::string& key : param_columns) {
      const auto v = find_param(record.spec.params, key);
      row.push_back(std::string(v.value_or("-")));
    }
    for (const std::string& name : metric_names) {
      if (!record.ok) {
        row.push_back("FAILED: " + record.error);
        break;
      }
      const auto v = record.result.find_metric(name);
      char buf[40];
      if (v)
        std::snprintf(buf, sizeof buf, "%.6g", *v);
      row.push_back(v ? buf : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

obs::CounterSnapshot merge_counters(const std::vector<TrialRecord>& records) {
  obs::CounterSnapshot merged;
  for (const TrialRecord& record : records)
    obs::merge_into(merged, record.counters);
  return merged;
}

Table counters_table(const obs::CounterSnapshot& counters) {
  Table table({"counter", "value"});
  for (const obs::CounterSample& sample : counters)
    table.add_row({sample.name, std::to_string(sample.value)});
  return table;
}

}  // namespace meecc::runtime
