// The shared string-keyed override table for simulator configuration.
//
// One table (params.cc) maps keys like "noise", "epc_size" or
// "mee.per_level_step" onto sim::SystemConfig / channel::TestBedConfig
// fields, so experiments never reimplement "parse noise=mee4k into a
// NoiseEnv". The sweep expander validates keys against this table plus the
// experiment's own default_params; bad values throw ParamError with the
// offending key in the message.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "channel/testbed.h"
#include "runtime/experiment.h"
#include "sim/system.h"

namespace meecc::runtime {

class ParamError : public std::runtime_error {
 public:
  explicit ParamError(const std::string& what) : std::runtime_error(what) {}
};

/// Value parsers shared by the override table and experiment run()
/// functions. All throw ParamError on malformed input.
std::uint64_t parse_u64(std::string_view key, std::string_view value);
/// Like parse_u64 but accepts K/M/G binary suffixes ("64K" -> 65536).
std::uint64_t parse_size(std::string_view key, std::string_view value);
double parse_double(std::string_view key, std::string_view value);
/// Accepts true/false, on/off, yes/no, 1/0.
bool parse_bool(std::string_view key, std::string_view value);

/// True if `key` is in the shared config table below.
bool is_config_key(std::string_view key);

/// Documented keys, for `meecc_bench describe` / error messages.
struct ConfigKeyDoc {
  std::string_view key;
  std::string_view doc;
};
const std::vector<ConfigKeyDoc>& config_key_docs();

/// Applies one override to a SystemConfig. Returns false if `key` names a
/// test-bed-level (or unknown) parameter; throws ParamError on bad values.
bool apply_override(sim::SystemConfig& config, std::string_view key,
                    std::string_view value);

/// Applies one override to a TestBedConfig (covers the SystemConfig keys
/// too). Returns false for keys outside the table.
bool apply_override(channel::TestBedConfig& config, std::string_view key,
                    std::string_view value);

/// Standard trial entry point: default_testbed_config(spec.seed) with every
/// config-table param in the spec applied. Non-config params (experiment
/// locals such as "bits") are left for the caller to read via param_*().
channel::TestBedConfig make_testbed_config(const TrialSpec& spec);

/// Experiment-local parameter lookups with defaults.
std::uint64_t param_u64(const TrialSpec& spec, std::string_view key,
                        std::uint64_t fallback);
double param_double(const TrialSpec& spec, std::string_view key,
                    double fallback);
bool param_bool(const TrialSpec& spec, std::string_view key, bool fallback);
std::string param_str(const TrialSpec& spec, std::string_view key,
                      std::string_view fallback);

}  // namespace meecc::runtime
