#include "runtime/registry.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace meecc::runtime {

namespace {

// Stable storage: Experiment pointers handed out stay valid for the
// process lifetime regardless of later registrations.
std::vector<std::unique_ptr<Experiment>>& registry() {
  static std::vector<std::unique_ptr<Experiment>> experiments;
  return experiments;
}

}  // namespace

void register_experiment(Experiment experiment) {
  if (experiment.name.empty())
    throw std::invalid_argument("experiment name must be non-empty");
  if (!experiment.run)
    throw std::invalid_argument("experiment '" + experiment.name +
                                "' has no run function");
  if (find_experiment(experiment.name))
    throw std::invalid_argument("experiment '" + experiment.name +
                                "' registered twice");
  registry().push_back(std::make_unique<Experiment>(std::move(experiment)));
}

const Experiment* find_experiment(std::string_view name) {
  for (const auto& e : registry())
    if (e->name == name) return e.get();
  return nullptr;
}

const Experiment& get_experiment(std::string_view name) {
  if (const Experiment* e = find_experiment(name)) return *e;
  std::ostringstream os;
  os << "unknown experiment '" << name << "'; registered:";
  for (const Experiment* e : all_experiments()) os << ' ' << e->name;
  throw std::out_of_range(os.str());
}

std::vector<const Experiment*> all_experiments() {
  std::vector<const Experiment*> out;
  for (const auto& e : registry()) out.push_back(e.get());
  std::sort(out.begin(), out.end(),
            [](const Experiment* a, const Experiment* b) {
              return a->name < b->name;
            });
  return out;
}

}  // namespace meecc::runtime
