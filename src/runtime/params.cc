#include "runtime/params.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

#include "cache/policy.h"
#include "cache/replacement.h"
#include "crypto/aes_backend.h"
#include "mem/frame_allocator.h"

namespace meecc::runtime {

namespace {

[[noreturn]] void bad_value(std::string_view key, std::string_view value,
                            std::string_view expected) {
  std::ostringstream os;
  os << "bad value '" << value << "' for parameter '" << key << "' (expected "
     << expected << ")";
  throw ParamError(os.str());
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::uint32_t parse_u32(std::string_view key, std::string_view value) {
  const std::uint64_t v = parse_u64(key, value);
  if (v > UINT32_MAX) bad_value(key, value, "a 32-bit unsigned integer");
  return static_cast<std::uint32_t>(v);
}

mem::EpcPlacement parse_placement(std::string_view key,
                                  std::string_view value) {
  const std::string v = lower(value);
  if (v == "contiguous") return mem::EpcPlacement::kContiguous;
  if (v == "randomized" || v == "fragmented")
    return mem::EpcPlacement::kRandomized;
  bad_value(key, value, "contiguous|randomized");
}

channel::NoiseEnv parse_noise(std::string_view key, std::string_view value) {
  const auto env = channel::noise_env_from_string(lower(value));
  if (!env) bad_value(key, value, "none|stress|mee512|mee4k");
  return *env;
}

/// Validates a policy name against its registry at parse time, so a typo in
/// --set/--sweep fails before any trial runs, naming the alternatives.
std::string parse_policy_name(std::string_view key, std::string_view value,
                              bool known,
                              const std::vector<std::string>& names) {
  if (known) return std::string(value);
  std::string expected;
  for (const auto& name : names) {
    if (!expected.empty()) expected += '|';
    expected += name;
  }
  bad_value(key, value, expected);
}

/// Count-like values that users spell in scientific notation ("1e6").
std::uint64_t parse_count(std::string_view key, std::string_view value) {
  const double v = parse_double(key, value);
  if (!(v >= 0.0) || v != std::floor(v) || v > 1e18)
    bad_value(key, value, "a non-negative integer count (1e6 ok)");
  return static_cast<std::uint64_t>(v);
}

double parse_probability(std::string_view key, std::string_view value) {
  const double v = parse_double(key, value);
  if (!(v >= 0.0 && v <= 1.0)) bad_value(key, value, "a probability in [0,1]");
  return v;
}

/// Validates the backend name against the registry AND this CPU (e.g.
/// "aesni" on a machine without AES-NI fails here, before any trial runs).
std::string parse_aes_backend(std::string_view key, std::string_view value) {
  const std::string v = lower(value);
  std::string expected;
  for (const auto& name : crypto::aes_backend_names()) {
    if (crypto::aes_backend_available(name)) {
      if (!expected.empty()) expected += '|';
      expected += name;
    }
  }
  if (!crypto::is_aes_backend(v) || !crypto::aes_backend_available(v))
    bad_value(key, value, expected);
  return v;
}

using SystemApply = void (*)(sim::SystemConfig&, std::string_view,
                             std::string_view);
using BedApply = void (*)(channel::TestBedConfig&, std::string_view,
                          std::string_view);

struct SystemParam {
  std::string_view key;
  std::string_view doc;
  SystemApply apply;
};

struct BedParam {
  std::string_view key;
  std::string_view doc;
  BedApply apply;
};

// The machine-level half of the table: everything reachable from
// sim::SystemConfig.
constexpr SystemParam kSystemParams[] = {
    {"cores", "physical core count",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.cores = parse_u32(k, v);
     }},
    {"clock_ghz", "core clock for cycles<->seconds conversion",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.clock_ghz = parse_double(k, v);
     }},
    {"epc_size", "protected-data region bytes (K/M/G suffixes)",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.address_map.epc_size = parse_size(k, v);
     }},
    {"general_size", "general DRAM region bytes (K/M/G suffixes)",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.address_map.general_size = parse_size(k, v);
     }},
    {"epc_placement", "EPC frame handout order: contiguous|randomized",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.epc_placement = parse_placement(k, v);
     }},
    {"functional_crypto", "real AES/MAC per line vs timing-only model",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.functional_crypto = parse_bool(k, v);
     }},
    {"crypto.aes_backend",
     "AES implementation: reference|ttable|aesni|auto (host speed only; "
     "simulated timing and traces are identical across backends)",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.aes_backend = parse_aes_backend(k, v);
     }},
    {"crypto.pad_cache",
     "cache AES keystreams/MAC pads by (address, version) — host speed only",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.pad_cache = parse_bool(k, v);
     }},
    {"crypto.batched_walks",
     "batch a walk's per-level MAC pads through multi-block AES — host "
     "speed only; results identical to the serial path",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.batched_walks = parse_bool(k, v);
     }},
    {"mee.cache_bytes", "MEE cache capacity (paper: 64K)",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.cache_geometry.size_bytes = parse_size(k, v);
     }},
    {"mee.ways", "MEE cache associativity (paper: 8)",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.cache_geometry.ways = parse_u32(k, v);
     }},
    {"mee.versions_hit_extra", "cycles added on a versions hit",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.latency.versions_hit_extra = parse_u64(k, v);
     }},
    {"mee.versions_miss_serialization", "extra cycles on any versions miss",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.latency.versions_miss_serialization = parse_u64(k, v);
     }},
    {"mee.per_level_step", "cycles per extra tree level fetched",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.latency.per_level_step = parse_u64(k, v);
     }},
    {"mee.write_update_extra", "counter bump + re-MAC cycles on writes",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.latency.write_update_extra = parse_u64(k, v);
     }},
    {"mee.service_base", "engine occupancy per access",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.latency.service_base = parse_u64(k, v);
     }},
    {"mee.service_per_node", "engine occupancy per fetched node",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.latency.service_per_node = parse_u64(k, v);
     }},
    {"mee.cache.indexing", "MEE set-index policy: modulo|keyed|skewed",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.cache_policy.indexing =
           parse_policy_name(k, v, cache::is_indexing_policy(v),
                             cache::indexing_policy_names());
     }},
    {"mee.cache.replacement",
     "MEE replacement policy: lru|nru|random|tree-plru",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.cache_policy.replacement =
           parse_policy_name(k, v, cache::is_replacement_policy(v),
                             cache::replacement_names());
     }},
    {"mee.cache.fill", "MEE fill policy: all|partition|random",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.cache_policy.fill = parse_policy_name(
           k, v, cache::is_fill_policy(v), cache::fill_policy_names());
     }},
    {"mee.cache.index_key", "keyed/skewed index permutation key",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.cache_policy.index_key = parse_u64(k, v);
     }},
    {"mee.cache.skew_partitions", "way groups with independent index keys",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.cache_policy.skew_partitions = parse_u32(k, v);
     }},
    {"mee.cache.fill_probability", "random-fill admission probability",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.cache_policy.fill_probability = parse_probability(k, v);
     }},
    {"mee.cache.rekey_period", "walks between MEE flush+rekey, 0=off (1e6 ok)",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.mee.cache_policy.rekey_period = parse_count(k, v);
     }},
    {"llc.indexing", "LLC set-index policy: modulo|keyed|skewed",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.hierarchy.llc_policy.indexing =
           parse_policy_name(k, v, cache::is_indexing_policy(v),
                             cache::indexing_policy_names());
     }},
    {"llc.replacement", "LLC replacement policy: lru|nru|random|tree-plru",
     [](sim::SystemConfig& c, std::string_view k, std::string_view v) {
       c.hierarchy.llc_policy.replacement =
           parse_policy_name(k, v, cache::is_replacement_policy(v),
                             cache::replacement_names());
     }},
};

// The rig-level half: TestBedConfig fields outside SystemConfig.
constexpr BedParam kBedParams[] = {
    {"noise", "Fig. 8 co-tenant environment: none|stress|mee512|mee4k",
     [](channel::TestBedConfig& c, std::string_view k, std::string_view v) {
       c.noise = parse_noise(k, v);
     }},
    {"noise_autostart", "spawn the noise agent at construction vs deferred",
     [](channel::TestBedConfig& c, std::string_view k, std::string_view v) {
       c.noise_autostart = parse_bool(k, v);
     }},
    {"trojan_bytes", "trojan enclave size (K/M/G suffixes)",
     [](channel::TestBedConfig& c, std::string_view k, std::string_view v) {
       c.trojan_enclave_bytes = parse_size(k, v);
     }},
    {"spy_bytes", "spy enclave size",
     [](channel::TestBedConfig& c, std::string_view k, std::string_view v) {
       c.spy_enclave_bytes = parse_size(k, v);
     }},
    {"noise_bytes", "noise enclave size",
     [](channel::TestBedConfig& c, std::string_view k, std::string_view v) {
       c.noise_enclave_bytes = parse_size(k, v);
     }},
    {"background_bytes", "background enclave size",
     [](channel::TestBedConfig& c, std::string_view k, std::string_view v) {
       c.background_enclave_bytes = parse_size(k, v);
     }},
    {"background_gap", "mean cycles between ambient protected accesses",
     [](channel::TestBedConfig& c, std::string_view k, std::string_view v) {
       c.background_mean_gap = parse_u64(k, v);
     }},
};

}  // namespace

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size())
    bad_value(key, value, "an unsigned integer");
  return out;
}

std::uint64_t parse_size(std::string_view key, std::string_view value) {
  std::uint64_t multiplier = 1;
  std::string_view digits = value;
  if (!value.empty()) {
    switch (value.back()) {
      case 'k': case 'K': multiplier = 1ull << 10; break;
      case 'm': case 'M': multiplier = 1ull << 20; break;
      case 'g': case 'G': multiplier = 1ull << 30; break;
      default: break;
    }
    if (multiplier != 1) digits.remove_suffix(1);
  }
  if (digits.empty()) bad_value(key, value, "a byte count like 512, 64K, 32M");
  return parse_u64(key, digits) * multiplier;
}

double parse_double(std::string_view key, std::string_view value) {
  const std::string s(value);
  std::size_t used = 0;
  double out = 0.0;
  try {
    out = std::stod(s, &used);
  } catch (const std::exception&) {
    bad_value(key, value, "a number");
  }
  if (used != s.size()) bad_value(key, value, "a number");
  return out;
}

bool parse_bool(std::string_view key, std::string_view value) {
  const std::string v = lower(value);
  if (v == "true" || v == "on" || v == "yes" || v == "1") return true;
  if (v == "false" || v == "off" || v == "no" || v == "0") return false;
  bad_value(key, value, "true|false");
}

bool is_config_key(std::string_view key) {
  for (const auto& p : kSystemParams)
    if (p.key == key) return true;
  for (const auto& p : kBedParams)
    if (p.key == key) return true;
  return false;
}

const std::vector<ConfigKeyDoc>& config_key_docs() {
  static const std::vector<ConfigKeyDoc> docs = [] {
    std::vector<ConfigKeyDoc> out;
    for (const auto& p : kSystemParams) out.push_back({p.key, p.doc});
    for (const auto& p : kBedParams) out.push_back({p.key, p.doc});
    return out;
  }();
  return docs;
}

bool apply_override(sim::SystemConfig& config, std::string_view key,
                    std::string_view value) {
  for (const auto& p : kSystemParams) {
    if (p.key == key) {
      p.apply(config, key, value);
      return true;
    }
  }
  return false;
}

bool apply_override(channel::TestBedConfig& config, std::string_view key,
                    std::string_view value) {
  if (apply_override(config.system, key, value)) return true;
  for (const auto& p : kBedParams) {
    if (p.key == key) {
      p.apply(config, key, value);
      return true;
    }
  }
  return false;
}

channel::TestBedConfig make_testbed_config(const TrialSpec& spec) {
  channel::TestBedConfig config = channel::default_testbed_config(spec.seed);
  for (const auto& [key, value] : spec.params)
    apply_override(config, key, value);
  return config;
}

std::uint64_t param_u64(const TrialSpec& spec, std::string_view key,
                        std::uint64_t fallback) {
  const auto v = find_param(spec.params, key);
  return v ? parse_u64(key, *v) : fallback;
}

double param_double(const TrialSpec& spec, std::string_view key,
                    double fallback) {
  const auto v = find_param(spec.params, key);
  return v ? parse_double(key, *v) : fallback;
}

bool param_bool(const TrialSpec& spec, std::string_view key, bool fallback) {
  const auto v = find_param(spec.params, key);
  return v ? parse_bool(key, *v) : fallback;
}

std::string param_str(const TrialSpec& spec, std::string_view key,
                      std::string_view fallback) {
  const auto v = find_param(spec.params, key);
  return std::string(v ? *v : fallback);
}

}  // namespace meecc::runtime
