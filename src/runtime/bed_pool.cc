#include "runtime/bed_pool.h"

#include <algorithm>
#include <utility>

#include "obs/scope.h"

namespace meecc::runtime {

BedPool::~BedPool() {
  // Workers outlive every trial scope, but guard anyway: destroying a
  // System absorbs its counters into the ambient TrialScope, and a pooled
  // bed's counters were already absorbed by the trial that used it last.
  obs::TrialScope shield(nullptr);
  entries_.clear();
}

PooledBed BedPool::take(std::string_view key) {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const Entry& entry) { return entry.key == key; });
  if (it == entries_.end()) return {};
  PooledBed out = std::move(it->bed);
  entries_.erase(it);
  return out;
}

void BedPool::put(std::string key, PooledBed entry) {
  if (!entry) return;
  if (entries_.size() >= kMaxBeds) {
    const auto oldest =
        std::min_element(entries_.begin(), entries_.end(),
                         [](const Entry& a, const Entry& b) {
                           return a.stamp < b.stamp;
                         });
    drop(std::move(oldest->bed));
    entries_.erase(oldest);
    ++discards_;
  }
  entries_.push_back(
      Entry{.key = std::move(key), .bed = std::move(entry), .stamp = clock_++});
}

void BedPool::drop(PooledBed entry) {
  obs::TrialScope shield(nullptr);
  entry.bed.reset();
  entry.snap.reset();
}

}  // namespace meecc::runtime
