// Result sinks: JSON-lines for the machine-readable trajectory, and the
// human-readable summary table built on common/table.h.
//
// JSONL output is deliberately deterministic — no timestamps, doubles
// printed with round-trip precision — so `--jobs N` runs diff clean against
// `--jobs 1` and downstream tooling can hash result files.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.h"
#include "runtime/runner.h"

namespace meecc::runtime {

/// Append-only JSON assembler over a caller-owned buffer. The result path
/// formats every trial through one of these into a recycled per-worker
/// buffer, so emitting a record allocates nothing once the buffer has
/// grown to steady state (numerics go through std::to_chars, escaping
/// writes directly into the buffer). Byte-compatible with the previous
/// ostringstream path: doubles use %.17g-equivalent round-trip formatting.
class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(out) {}

  void raw(char c) { out_.push_back(c); }
  void raw(std::string_view s) { out_.append(s); }
  /// Quoted, escaped JSON string.
  void string(std::string_view s);
  /// `"key":` — the escaped key of an object member.
  void key(std::string_view k);
  void number(std::uint64_t value);
  void number(double value);
  void boolean(bool value) { raw(value ? "true" : "false"); }

 private:
  std::string& out_;
};

/// One JSON object per record:
///   {"experiment":"fig7_window_sweep","trial":3,"seed":45,
///    "params":{"window":"15000",...},"ok":true,
///    "metrics":{"error_rate":0.017,...},"series":{"probe_times":[...]}}
/// Failed trials carry "ok":false and "error" instead of metrics.
/// Appends to `out` without clearing it (the zero-allocation path: callers
/// clear() and reuse one buffer per worker).
void append_json_line(std::string& out, const TrialRecord& record);

/// Convenience wrapper returning a fresh string.
std::string to_json_line(const TrialRecord& record);

/// Writes to_json_line + '\n' for every record.
void write_jsonl(std::ostream& out, const std::vector<TrialRecord>& records);

/// ResultStream appending committed lines to an ostream: the bounded-memory
/// `--json --streaming` path. Output is byte-identical to write_jsonl over
/// the same records — lines arrive from the runner's committer already in
/// trial order.
class JsonlResultStream final : public ResultStream {
 public:
  explicit JsonlResultStream(std::ostream& out) : out_(out) {}
  void commit(std::size_t first, const std::string* lines,
              std::size_t count) override;

 private:
  std::ostream& out_;
};

/// Round-trip double formatting ("15000", "0.017000000000000001").
std::string format_double(double value);

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

/// Summary table: one row per trial with trial index, seed, the given
/// param columns, and every metric of the first successful record (failed
/// trials show the error). `param_columns` is typically swept_keys().
Table summary_table(const std::vector<TrialRecord>& records,
                    const std::vector<std::string>& param_columns);

/// Every record's counters merged (values summed), one row per counter
/// name. Backs `meecc_bench run --counters`.
obs::CounterSnapshot merge_counters(const std::vector<TrialRecord>& records);

/// Renders a merged snapshot as a two-column name/value table.
Table counters_table(const obs::CounterSnapshot& counters);

}  // namespace meecc::runtime
