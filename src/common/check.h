// Lightweight invariant checking for the meecc libraries.
//
// MEECC_CHECK is always on (simulation correctness depends on these holding;
// the cost is negligible next to the modelled work). Failures throw
// meecc::CheckFailure so tests can assert on them and callers can
// distinguish programming errors from modelled faults such as MAC mismatches.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace meecc {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail
}  // namespace meecc

#define MEECC_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::meecc::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define MEECC_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream meecc_os_;                                    \
      meecc_os_ << msg;                                                \
      ::meecc::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                    meecc_os_.str());                  \
    }                                                                  \
  } while (0)
