// Simple aligned text table + CSV emission for bench/figure outputs.
#pragma once

#include <string>
#include <vector>

namespace meecc {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats arbitrary streamable cells.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({format_cell(cells)...});
  }

  /// Render with aligned columns.
  std::string to_text() const;
  /// Render as CSV (no quoting — callers keep cells comma-free).
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string format_cell(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace meecc

#include <sstream>

namespace meecc {

template <typename T>
std::string Table::format_cell(const T& v) {
  if constexpr (std::is_convertible_v<T, std::string>) {
    return std::string(v);
  } else {
    std::ostringstream os;
    os << v;
    return os.str();
  }
}

}  // namespace meecc
