#include "common/histogram.h"

#include <algorithm>

#include "common/check.h"

namespace meecc {

Histogram::Histogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo), hi_(hi), counts_(bin_count, 0) {
  MEECC_CHECK(hi > lo);
  MEECC_CHECK(bin_count > 0);
  width_ = (hi - lo) / static_cast<double>(bin_count);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  MEECC_CHECK(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::bin_center(std::size_t i) const {
  return bin_lo(i) + width_ / 2.0;
}

double Histogram::mode() const {
  if (counts_.empty()) return 0.0;
  const auto it = std::max_element(counts_.begin(), counts_.end());
  if (*it == 0) return 0.0;
  return bin_center(static_cast<std::size_t>(it - counts_.begin()));
}

std::vector<std::size_t> Histogram::peaks(std::size_t min_count,
                                          std::size_t min_separation) const {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t c = counts_[i];
    if (c < min_count) continue;
    const bool left_ok = (i == 0) || counts_[i - 1] <= c;
    const bool right_ok = (i + 1 == counts_.size()) || counts_[i + 1] < c;
    if (!left_ok || !right_ok) continue;
    if (!result.empty() && i - result.back() < min_separation) {
      // Keep the taller of two nearby peaks.
      if (counts_[result.back()] < c) result.back() = i;
      continue;
    }
    result.push_back(i);
  }
  return result;
}

}  // namespace meecc
