#include "common/chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace meecc {
namespace {

std::size_t bar_len(double v, double vmax, std::size_t width) {
  if (vmax <= 0.0 || v <= 0.0) return 0;
  return static_cast<std::size_t>(
      std::lround(v / vmax * static_cast<double>(width)));
}

}  // namespace

std::string render_bar_chart(const std::vector<std::string>& labels,
                             const std::vector<double>& values,
                             std::size_t width) {
  std::ostringstream os;
  const std::size_t n = std::min(labels.size(), values.size());
  double vmax = 0.0;
  std::size_t label_width = 0;
  for (std::size_t i = 0; i < n; ++i) {
    vmax = std::max(vmax, values[i]);
    label_width = std::max(label_width, labels[i].size());
  }
  for (std::size_t i = 0; i < n; ++i) {
    os << std::setw(static_cast<int>(label_width)) << labels[i] << " |"
       << std::string(bar_len(values[i], vmax, width), '#') << ' '
       << std::setprecision(6) << values[i] << '\n';
  }
  return os.str();
}

std::string render_histogram(const Histogram& h, std::size_t width) {
  std::size_t first = h.bin_count();
  std::size_t last = 0;
  std::size_t vmax = 0;
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    if (h.bin_value(i) > 0) {
      first = std::min(first, i);
      last = i;
      vmax = std::max(vmax, h.bin_value(i));
    }
  }
  std::ostringstream os;
  if (first == h.bin_count()) {
    os << "(empty histogram)\n";
    return os.str();
  }
  for (std::size_t i = first; i <= last; ++i) {
    os << std::setw(8) << static_cast<long long>(h.bin_lo(i)) << "-"
       << std::setw(6) << static_cast<long long>(h.bin_hi(i)) << " |"
       << std::string(
              bar_len(static_cast<double>(h.bin_value(i)),
                      static_cast<double>(vmax), width),
              '#')
       << ' ' << h.bin_value(i) << '\n';
  }
  if (h.underflow() > 0) os << "  (underflow: " << h.underflow() << ")\n";
  if (h.overflow() > 0) os << "  (overflow: " << h.overflow() << ")\n";
  return os.str();
}

std::string render_series(const std::vector<double>& ys, std::size_t height,
                          std::size_t width) {
  std::ostringstream os;
  if (ys.empty() || height == 0) return "(empty series)\n";
  double lo = ys[0];
  double hi = ys[0];
  for (double y : ys) {
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  if (hi <= lo) hi = lo + 1.0;
  const std::size_t n = ys.size();
  const std::size_t cols = std::min(width, n);
  // Column c aggregates samples [c*n/cols, (c+1)*n/cols) by their mean.
  std::vector<double> col_val(cols, 0.0);
  std::vector<std::size_t> col_cnt(cols, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i * cols / n;
    col_val[c] += ys[i];
    ++col_cnt[c];
  }
  std::vector<std::size_t> rows(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) {
    const double v = col_cnt[c] ? col_val[c] / static_cast<double>(col_cnt[c])
                                : lo;
    auto r = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                      static_cast<double>(height - 1));
    rows[c] = std::min(r, height - 1);
  }
  for (std::size_t r = height; r-- > 0;) {
    const double row_value = lo + (hi - lo) * static_cast<double>(r) /
                                      static_cast<double>(height - 1);
    os << std::setw(8) << static_cast<long long>(row_value) << " |";
    for (std::size_t c = 0; c < cols; ++c) os << (rows[c] == r ? '*' : ' ');
    os << '\n';
  }
  os << std::string(10, ' ') << std::string(cols, '-') << '\n';
  return os.str();
}

}  // namespace meecc
