// Fundamental domain types shared by every meecc library.
//
// Virtual and physical addresses are distinct strong types so that the
// compiler rejects the classic simulator bug of indexing a physically-indexed
// structure with a virtual address. Cycle counts are a plain integer alias:
// they are pervasive in arithmetic and a strong type buys little there.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>

namespace meecc {

/// Simulated clock cycles (one core clock tick).
using Cycles = std::uint64_t;

/// Signed cycle arithmetic, for phase errors and drift.
using CyclesDelta = std::int64_t;

inline constexpr std::size_t kLineSize = 64;       ///< cache line bytes
inline constexpr std::size_t kPageSize = 4096;     ///< 4 KB page (SGX has no hugepages)
inline constexpr std::size_t kChunkSize = 512;     ///< bytes covered by one versions line
inline constexpr std::size_t kLinesPerPage = kPageSize / kLineSize;
inline constexpr std::size_t kChunksPerPage = kPageSize / kChunkSize;

namespace detail {

/// CRTP strong integer wrapper for address-like quantities.
template <typename Tag>
struct StrongAddr {
  std::uint64_t raw = 0;

  constexpr StrongAddr() = default;
  constexpr explicit StrongAddr(std::uint64_t v) : raw(v) {}

  constexpr auto operator<=>(const StrongAddr&) const = default;

  constexpr StrongAddr operator+(std::uint64_t off) const {
    return StrongAddr{raw + off};
  }
  constexpr StrongAddr operator-(std::uint64_t off) const {
    return StrongAddr{raw - off};
  }
  constexpr std::uint64_t operator-(StrongAddr other) const {
    return raw - other.raw;
  }
  StrongAddr& operator+=(std::uint64_t off) {
    raw += off;
    return *this;
  }

  /// Byte offset within the containing cache line.
  constexpr std::uint64_t line_offset() const { return raw % kLineSize; }
  /// Address of the containing cache line's first byte.
  constexpr StrongAddr line_base() const {
    return StrongAddr{raw - raw % kLineSize};
  }
  /// Global index of the containing cache line.
  constexpr std::uint64_t line_index() const { return raw / kLineSize; }
  /// Address of the containing page's first byte.
  constexpr StrongAddr page_base() const {
    return StrongAddr{raw - raw % kPageSize};
  }
  constexpr std::uint64_t page_offset() const { return raw % kPageSize; }
  constexpr std::uint64_t page_number() const { return raw / kPageSize; }
};

}  // namespace detail

struct VirtTag {};
struct PhysTag {};

/// Virtual address inside a simulated process / enclave address space.
using VirtAddr = detail::StrongAddr<VirtTag>;
/// Physical (DRAM or on-die SRAM) address.
using PhysAddr = detail::StrongAddr<PhysTag>;

/// Identifies a simulated core.
struct CoreId {
  unsigned value = 0;
  constexpr auto operator<=>(const CoreId&) const = default;
};

/// CPU execution mode: SGX enclave mode restricts the ISA surface
/// (no rdtsc, no access to other enclaves' protected memory).
enum class CpuMode { kNonEnclave, kEnclave };

}  // namespace meecc
