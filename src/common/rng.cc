#include "common/rng.h"

#include <bit>
#include <cmath>
#include <numbers>

#include "common/bytes.h"
#include "common/check.h"

namespace meecc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MEECC_CHECK(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  MEECC_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::next_gaussian(double mean, double stddev) {
  return mean + stddev * next_gaussian();
}

Rng Rng::fork() { return Rng(next_u64()); }

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[static_cast<std::size_t>(i)] = s_[i];
  st.gaussian_bits = std::bit_cast<std::uint64_t>(cached_gaussian_);
  st.has_gaussian = has_cached_gaussian_;
  return st;
}

Rng Rng::from_state(const RngState& state) {
  Rng rng(0);
  for (int i = 0; i < 4; ++i) rng.s_[i] = state.s[static_cast<std::size_t>(i)];
  rng.cached_gaussian_ = std::bit_cast<double>(state.gaussian_bits);
  rng.has_cached_gaussian_ = state.has_gaussian;
  return rng;
}

void encode_rng(io::Writer& w, const Rng& rng) {
  const RngState st = rng.state();
  for (const std::uint64_t word : st.s) w.u64(word);
  w.u64(st.gaussian_bits);
  w.u8(st.has_gaussian ? 1 : 0);
}

Rng decode_rng(io::Reader& r) {
  RngState st;
  for (auto& word : st.s) word = r.u64();
  st.gaussian_bits = r.u64();
  st.has_gaussian = r.u8() != 0;
  return Rng::from_state(st);
}

}  // namespace meecc
