// Process peak-RSS readout, shared by the perf suite and the streaming
// memory-flatness tests.
#pragma once

#include <cstdlib>
#include <fstream>
#include <string>

namespace meecc {

/// VmHWM from /proc/self/status, in MiB (0 when unreadable — non-Linux).
/// The high-water mark is monotonic for the process lifetime: callers
/// comparing phases must run the low-memory phase first.
inline double peak_rss_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
  }
  return 0.0;
}

}  // namespace meecc
