// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic behaviour in meecc flows through Rng so that every
// experiment is reproducible from a single seed. xoshiro256** is used for
// speed; seeding goes through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace meecc {

namespace io {
class Writer;
class Reader;
}  // namespace io

/// Full mutable state of an Rng, exposed for snapshot serialization. The
/// cached Box–Muller deviate rides along as raw bits so a round trip is
/// bit-exact even for doubles without a short decimal form.
struct RngState {
  std::array<std::uint64_t, 4> s{};
  std::uint64_t gaussian_bits = 0;
  bool has_gaussian = false;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform in [0, 1).
  double next_double();

  /// True with probability p.
  bool chance(double p);

  /// Standard normal via Box–Muller (cached second deviate).
  double next_gaussian();

  /// Gaussian with given mean and standard deviation.
  double next_gaussian(double mean, double stddev);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent stream (for per-agent RNGs).
  Rng fork();

  /// Capture / rebuild the exact generator state (snapshot wire format).
  RngState state() const;
  static Rng from_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Rng wire codec: 4 state words, gaussian bits, has-gaussian flag.
void encode_rng(io::Writer& w, const Rng& rng);
Rng decode_rng(io::Reader& r);

}  // namespace meecc
