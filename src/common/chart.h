// ASCII chart rendering so each bench binary can print the figure it
// regenerates directly to the terminal (alongside machine-readable rows).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace meecc {

/// Horizontal bar chart: one labelled row per (label, value).
std::string render_bar_chart(const std::vector<std::string>& labels,
                             const std::vector<double>& values,
                             std::size_t width = 60);

/// Renders a histogram as a vertical-count bar chart (one row per bin,
/// skipping leading/trailing empty bins).
std::string render_histogram(const Histogram& h, std::size_t width = 60);

/// Scatter/series plot of y over integer x (e.g. probe time per bit index).
/// Rows are quantized into `height` character rows.
std::string render_series(const std::vector<double>& ys,
                          std::size_t height = 16, std::size_t width = 100);

}  // namespace meecc
