#include "common/bytes.h"

#include <bit>
#include <cstring>

namespace meecc::io {

namespace {

void append_le(std::string& out, std::uint64_t v, unsigned bytes) {
  for (unsigned i = 0; i < bytes; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t load_le(const void* p, unsigned bytes) {
  const auto* b = static_cast<const unsigned char*>(p);
  std::uint64_t v = 0;
  for (unsigned i = 0; i < bytes; ++i) v |= std::uint64_t{b[i]} << (8 * i);
  return v;
}

}  // namespace

void Writer::u32(std::uint32_t v) { append_le(out_, v, 4); }
void Writer::u64(std::uint64_t v) { append_le(out_, v, 8); }
void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view s) {
  u64(s.size());
  out_.append(s.data(), s.size());
}

void Writer::bytes(const void* data, std::size_t n) {
  out_.append(static_cast<const char*>(data), n);
}

const void* Reader::need(std::size_t n) {
  if (data_.size() - pos_ < n)
    throw DecodeError("payload underflow: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(data_.size() - pos_));
  const void* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Reader::u8() {
  return static_cast<std::uint8_t>(*static_cast<const char*>(need(1)));
}
std::uint32_t Reader::u32() {
  return static_cast<std::uint32_t>(load_le(need(4), 4));
}
std::uint64_t Reader::u64() { return load_le(need(8), 8); }
double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint64_t n = u64();
  if (n > remaining())
    throw DecodeError("string length " + std::to_string(n) +
                      " exceeds remaining payload");
  const char* p = static_cast<const char*>(need(static_cast<std::size_t>(n)));
  return std::string(p, static_cast<std::size_t>(n));
}

void Reader::bytes(void* out, std::size_t n) { std::memcpy(out, need(n), n); }

void Reader::expect_done() const {
  if (!done())
    throw DecodeError("payload has " + std::to_string(remaining()) +
                      " trailing bytes");
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  return fnv1a64(bytes, 0xcbf29ce484222325ULL);
}

std::string_view to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kTruncated: return "truncated";
    case FrameStatus::kBadMagic: return "bad-magic";
    case FrameStatus::kBadVersion: return "format-version-mismatch";
    case FrameStatus::kBadChecksum: return "checksum-mismatch";
    case FrameStatus::kConfigMismatch: return "config-hash-mismatch";
  }
  return "?";
}

namespace {
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8;
}  // namespace

std::string write_frame(std::uint64_t magic, std::uint32_t version,
                        std::uint64_t config_hash, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size() + 8);
  append_le(out, magic, 8);
  append_le(out, version, 4);
  append_le(out, config_hash, 8);
  append_le(out, payload.size(), 8);
  out.append(payload.data(), payload.size());
  append_le(out, fnv1a64(payload), 8);
  return out;
}

FrameView read_frame(std::string_view bytes, std::uint64_t magic,
                     std::uint32_t version,
                     std::optional<std::uint64_t> expected_config_hash) {
  FrameView view;
  if (bytes.size() < kHeaderSize) return view;  // kTruncated
  if (load_le(bytes.data(), 8) != magic) {
    view.status = FrameStatus::kBadMagic;
    return view;
  }
  view.version = static_cast<std::uint32_t>(load_le(bytes.data() + 8, 4));
  view.config_hash = load_le(bytes.data() + 12, 8);
  if (view.version != version) {
    view.status = FrameStatus::kBadVersion;
    return view;
  }
  if (expected_config_hash && view.config_hash != *expected_config_hash) {
    view.status = FrameStatus::kConfigMismatch;
    return view;
  }
  const std::uint64_t payload_size = load_le(bytes.data() + 20, 8);
  // Overflow-safe truncation check: a corrupt length field may be enormous.
  if (bytes.size() < kHeaderSize + 8 ||
      payload_size > bytes.size() - kHeaderSize - 8) {
    view.status = FrameStatus::kTruncated;
    return view;
  }
  const std::string_view payload = bytes.substr(kHeaderSize,
                                                static_cast<std::size_t>(payload_size));
  const std::uint64_t stored =
      load_le(bytes.data() + kHeaderSize + payload_size, 8);
  if (fnv1a64(payload) != stored) {
    view.status = FrameStatus::kBadChecksum;
    return view;
  }
  view.status = FrameStatus::kOk;
  view.payload = payload;
  return view;
}

}  // namespace meecc::io
