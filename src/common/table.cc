#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace meecc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  MEECC_CHECK_MSG(row.size() == header_.size(),
                  "row has " << row.size() << " cells, header has "
                             << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == header_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace meecc
