// Fixed-width-bin histogram, used for the Fig. 5 latency distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace meecc {

class Histogram {
 public:
  /// Bins [lo, hi) into bin_count equal-width bins, with underflow and
  /// overflow buckets outside that range.
  Histogram(double lo, double hi, std::size_t bin_count);

  void add(double x);

  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t bin_value(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_center(std::size_t i) const;

  /// Center of the most populated bin (0 if empty).
  double mode() const;

  /// Indices of local maxima with at least min_count samples, separated by
  /// at least min_separation bins — used to locate the Fig. 5 latency peaks.
  std::vector<std::size_t> peaks(std::size_t min_count,
                                 std::size_t min_separation) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace meecc
