// Canonical little-endian byte codec for the snapshot / setup-store wire
// format, plus the framed container every serialized artifact ships in.
//
// Writer/Reader are deliberately dumb: fixed-width little-endian integers,
// bit-cast doubles, and length-prefixed strings. Canonical bytes matter more
// than compactness here — two encodes of the same state must be
// byte-identical so content hashes and golden files stay stable across
// hosts and runs.
//
// The frame wraps a payload with everything a reader needs to refuse a file
// it cannot trust: a magic number (what kind of artifact), a format version
// (bumped whenever any component's encoding changes — see DESIGN.md), the
// producer's config hash (so a stale or foreign setup can never be silently
// reused), the payload length, and an FNV-1a checksum over the payload.
// read_frame() reports a distinct FrameStatus per failure mode; callers
// treat anything but kOk as "rebuild from scratch", never as an error that
// aborts the run.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace meecc::io {

/// Thrown by Reader on underflow and by component decoders on any payload
/// that does not match the expected shape. A frame whose checksum passed can
/// still raise this if it was produced by incompatible code — callers along
/// the setup-cache path turn it into a fresh build.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  ///< exact bit pattern (std::bit_cast)
  void str(std::string_view s);  ///< u64 length + raw bytes
  void bytes(const void* data, std::size_t n);

  const std::string& data() const { return out_; }
  std::string take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  void bytes(void* out, std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Decoders call this last: trailing bytes mean the payload was produced
  /// by a different (newer) encoder than the version field admitted.
  void expect_done() const;

 private:
  const void* need(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// FNV-1a over the bytes — the frame checksum and the content-address hash
/// of the setup store. Not cryptographic; corruption detection only.
std::uint64_t fnv1a64(std::string_view bytes);
/// Chained variant for hashing several fields into one digest.
std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed);

// --- framed container ----------------------------------------------------

enum class FrameStatus {
  kOk,
  kTruncated,       ///< shorter than header + declared payload + checksum
  kBadMagic,        ///< not this kind of artifact (or not ours at all)
  kBadVersion,      ///< wire format version differs from the reader's
  kBadChecksum,     ///< payload bytes do not hash to the stored checksum
  kConfigMismatch,  ///< config hash differs from what the reader expects
};

std::string_view to_string(FrameStatus status);

struct FrameView {
  FrameStatus status = FrameStatus::kTruncated;
  std::string_view payload;         ///< valid only when status == kOk
  std::uint32_t version = 0;        ///< as stored (valid past the magic check)
  std::uint64_t config_hash = 0;    ///< as stored
};

/// magic(8) | version(4) | config_hash(8) | payload_size(8) | payload |
/// fnv1a64(payload)(8), all little-endian.
std::string write_frame(std::uint64_t magic, std::uint32_t version,
                        std::uint64_t config_hash, std::string_view payload);

/// Validates in order: length, magic, version, config hash, checksum — so
/// each corruption mode maps to one distinct status. Pass nullopt to skip
/// the config-hash comparison (the stored hash is still returned).
FrameView read_frame(std::string_view bytes, std::uint64_t magic,
                     std::uint32_t version,
                     std::optional<std::uint64_t> expected_config_hash);

}  // namespace meecc::io
