// Bounded lock-free multi-producer single-consumer FIFO.
//
// This is Vyukov's bounded MPMC ring specialised to one consumer: each cell
// carries a sequence number that encodes whose turn it is (a producer's when
// seq == position, the consumer's when seq == position + 1), so producers
// synchronise only on a single fetch-position CAS and a per-cell
// release-store, and the consumer needs no atomics beyond the per-cell
// acquire-load — no locks, no unbounded growth, natural backpressure when
// the ring is full.
//
// Exchange contract: try_push and try_pop SWAP the caller's object with the
// cell's instead of copying through it. On a successful push the caller
// gets back whatever the cell last held (a consumed message whose strings
// still own their capacity); on a successful pop the consumer's spare is
// parked in the cell and will ride back to some producer on a later push.
// Heap capacity therefore circulates producer -> cell -> consumer -> cell
// -> producer, and the steady-state result path allocates nothing.
//
// The runner's worker->committer result pipeline (runtime/runner.cc) is the
// canonical user; tests/mpsc_queue_test.cc pins the FIFO/exchange semantics
// and the TSan CI leg proves the memory model under real contention.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

namespace meecc {

template <typename T>
class MpscQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2) so position
  /// arithmetic is a mask, not a modulo.
  explicit MpscQueue(std::size_t capacity) {
    std::size_t rounded = 2;
    while (rounded < capacity) rounded <<= 1;
    mask_ = rounded - 1;
    cells_ = std::make_unique<Cell[]>(rounded);
    for (std::size_t i = 0; i < rounded; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer push. On success swaps `item` into the queue (item
  /// receives the cell's previous, consumed payload) and returns true;
  /// returns false with `item` untouched when the ring is full.
  bool try_push(T& item) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        // Our turn if we win the position; losing just reloads.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          using std::swap;
          swap(cell.value, item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // the consumer has not freed this cell yet: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Blocking push: spins (then yields) until a slot frees up. Safe only
  /// while the consumer is guaranteed to keep draining — the runner's
  /// committer drains to the end even after an error for exactly this
  /// reason.
  void push(T& item) {
    for (std::uint32_t spins = 0; !try_push(item); ++spins) {
      if (spins >= 64) std::this_thread::yield();
    }
  }

  /// Single-consumer pop. On success swaps the head payload into `item`
  /// (the cell keeps item's previous value as the recycled husk a future
  /// push will hand back to a producer) and returns true; false when empty.
  bool try_pop(T& item) {
    Cell& cell = cells_[head_ & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(head_ + 1) <
        0)
      return false;  // producer has not published this cell yet: empty
    using std::swap;
    swap(cell.value, item);
    cell.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  /// Producer-shared claim position, on its own line so producer CAS
  /// traffic does not bounce the consumer's head.
  alignas(64) std::atomic<std::size_t> tail_{0};
  /// Consumer-only; plain because exactly one thread ever touches it.
  alignas(64) std::size_t head_ = 0;
};

}  // namespace meecc
