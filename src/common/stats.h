// Streaming and batch statistics used by the experiment drivers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace meecc {

/// Welford-style running mean / variance / extrema accumulator.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch percentile over a copy of the samples (nearest-rank method).
/// q in [0, 1]; empty input returns 0.
double percentile(std::vector<double> samples, double q);

/// Median convenience wrapper.
double median(std::vector<double> samples);

}  // namespace meecc
