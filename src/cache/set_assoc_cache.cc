#include "cache/set_assoc_cache.h"

#include <algorithm>
#include <array>
#include <bit>

#include "cache/tag_probe.h"
#include "common/bytes.h"
#include "common/check.h"

namespace meecc::cache {

SetAssocCache::SetAssocCache(const Geometry& geometry,
                             const PolicyConfig& config, Rng rng)
    : geometry_(geometry) {
  geometry_.validate();
  indexing_ = make_indexing_policy(config, geometry_);
  fill_ = make_fill_policy(config, geometry_);
  const auto replacement = replacement_from_name(config.replacement);
  const auto sets = geometry_.sets();
  tags_.assign(sets * geometry_.ways, kInvalidLine);
  valid_.assign(sets, 0);
  set_evictions_.assign(sets, 0);
  set_stamp_.assign(sets, 0);
  ways_mask_ = geometry_.ways >= 64 ? ~std::uint64_t{0}
                                    : (std::uint64_t{1} << geometry_.ways) - 1;
  flat_plru_ = replacement == ReplacementKind::kTreePlru;
  if (flat_plru_) {
    MEECC_CHECK(std::has_single_bit(geometry_.ways));
    plru_depth_ = static_cast<std::uint32_t>(std::countr_zero(geometry_.ways));
    plru_.assign(sets, 0);
    build_plru_masks();
  } else {
    policy_.reserve(sets);
  }
  // Fork order is load-bearing: one fork per set first (exactly the legacy
  // stream), then the leftover parent state seeds the cache-level rng.
  // Tree-PLRU never consumes its fork, but the forks must still be drawn so
  // the parent stream stays byte-identical to the policy-object layout.
  for (std::uint64_t s = 0; s < sets; ++s) {
    Rng set_rng = rng.fork();
    if (!flat_plru_)
      policy_.push_back(
          make_policy(replacement, geometry_.ways, std::move(set_rng)));
  }
  rng_ = std::move(rng);
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(geometry_.line_size)));
  fill_passthrough_ = fill_->passthrough();
  refresh_indexing_shortcuts();
}

void SetAssocCache::build_plru_masks() {
  // The tree nodes a touch/invalidate of `way` rewrites — and the values it
  // writes — depend only on the way index, so the root-to-leaf walk runs
  // once per way here instead of once per access. Node i of the implicit
  // tree (children 2i+1 / 2i+2, as in replacement.cc's TreePlruPolicy) is
  // bit i of the set's packed word.
  const std::uint32_t ways = geometry_.ways;
  plru_path_.assign(ways, 0);
  plru_touch_.assign(ways, 0);
  plru_point_.assign(ways, 0);
  for (std::uint32_t way = 0; way < ways; ++way) {
    std::uint32_t node = 0;
    for (std::uint32_t d = plru_depth_; d-- > 0;) {
      const std::uint32_t went_right = (way >> d) & 1;
      plru_path_[way] |= std::uint64_t{1} << node;
      // touch points every node on the path AWAY from the way (bit =
      // 1 - went_right); invalidate points the path AT it (bit = went_right)
      // so the freed slot is refilled first.
      if (!went_right) plru_touch_[way] |= std::uint64_t{1} << node;
      if (went_right) plru_point_[way] |= std::uint64_t{1} << node;
      node = 2 * node + 1 + went_right;
    }
  }
}

void SetAssocCache::policy_touch(std::uint64_t set, std::uint32_t way) {
  if (!flat_plru_) {
    policy_[set]->touch(way);
    return;
  }
  plru_[set] = (plru_[set] & ~plru_path_[way]) | plru_touch_[way];
}

std::uint32_t SetAssocCache::policy_victim(std::uint64_t set) {
  if (!flat_plru_) return policy_[set]->victim();
  const std::uint64_t bits = plru_[set];
  std::uint32_t node = 0;
  std::uint32_t way = 0;
  for (std::uint32_t d = plru_depth_; d-- > 0;) {
    const std::uint32_t go_right =
        static_cast<std::uint32_t>((bits >> node) & 1);
    way = (way << 1) | go_right;
    node = 2 * node + 1 + go_right;
  }
  return way;
}

void SetAssocCache::policy_invalidate(std::uint64_t set, std::uint32_t way) {
  if (!flat_plru_) {
    policy_[set]->invalidate(way);
    return;
  }
  plru_[set] = (plru_[set] & ~plru_path_[way]) | plru_point_[way];
}

void SetAssocCache::refresh_indexing_shortcuts() {
  way_dependent_ = indexing_->way_dependent();
  const auto mask = indexing_->modulo_mask();
  direct_modulo_ = mask.has_value();
  direct_mask_ = mask.value_or(0);
}

SetAssocCache::SetAssocCache(const Geometry& geometry,
                             ReplacementKind replacement, Rng rng)
    : SetAssocCache(
          geometry,
          PolicyConfig{.replacement = std::string(to_string(replacement))},
          std::move(rng)) {}

SetAssocCache::SetAssocCache(const SetAssocCache& other)
    : geometry_(other.geometry_),
      indexing_(other.indexing_->clone()),
      fill_(other.fill_->clone()),
      tags_(other.tags_),
      valid_(other.valid_),
      plru_(other.plru_),
      plru_path_(other.plru_path_),
      plru_touch_(other.plru_touch_),
      plru_point_(other.plru_point_),
      flat_plru_(other.flat_plru_),
      plru_depth_(other.plru_depth_),
      set_evictions_(other.set_evictions_),
      stats_(other.stats_),
      line_shift_(other.line_shift_),
      ways_mask_(other.ways_mask_),
      way_dependent_(other.way_dependent_),
      direct_modulo_(other.direct_modulo_),
      direct_mask_(other.direct_mask_),
      fill_passthrough_(other.fill_passthrough_),
      rng_(other.rng_),
      // The copy starts life as a clean image of `other`; it does not
      // inherit the donor's dirty set (which describes the donor's drift
      // from ITS baseline, not this copy's).
      set_stamp_(other.set_stamp_.size(), 0) {
  MEECC_CHECK_MSG(indexing_ != nullptr && fill_ != nullptr,
                  "cache policy does not implement clone(); snapshot/fork "
                  "needs cloneable policies");
  policy_.reserve(other.policy_.size());
  for (const auto& p : other.policy_) policy_.push_back(p->clone());
}

SetAssocCache& SetAssocCache::operator=(const SetAssocCache& other) {
  if (this != &other) {
    SetAssocCache copy(other);
    *this = std::move(copy);
  }
  return *this;
}

std::uint64_t& SetAssocCache::tag_at(std::uint64_t set, std::uint32_t way) {
  return tags_[set * geometry_.ways + way];
}

std::uint64_t SetAssocCache::tag_at(std::uint64_t set,
                                    std::uint32_t way) const {
  return tags_[set * geometry_.ways + way];
}

std::optional<SetAssocCache::Slot> SetAssocCache::find_slot(
    std::uint64_t line) const {
  if (!way_dependent_) {
    // Way-independent indexing probes a single contiguous row of the tag
    // plane in one data-parallel compare. At most one way can match
    // (residents are unique per set), so the mask identifies the hit way
    // directly; invalid slots hold the sentinel and never match.
    const auto set =
        direct_modulo_ ? (line & direct_mask_) : indexing_->set_of(line, 0);
    const std::uint64_t match = detail::tag_probe(
        tags_.data() + set * geometry_.ways, geometry_.ways, line);
    if (match == 0) return std::nullopt;
    return Slot{set, static_cast<std::uint32_t>(std::countr_zero(match))};
  }
  // Skewed indexing: each way indexes its own set, so the candidates are
  // strided across the tag plane and the probe stays scalar.
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    const auto set = indexing_->set_of(line, w);
    if (tag_at(set, w) == line) return Slot{set, w};
  }
  return std::nullopt;
}

bool SetAssocCache::contains(PhysAddr addr) const {
  return find_slot(line_index_of(addr)).has_value();
}

bool SetAssocCache::lookup(PhysAddr addr) {
  const auto slot = find_slot(line_index_of(addr));
  if (!slot) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  policy_touch(slot->set, slot->way);
  mark_dirty(slot->set);
  return true;
}

SetAssocCache::Slot SetAssocCache::pick_victim(std::uint64_t line,
                                               WayMask allowed) {
  if (way_dependent_) {
    // Skewed indexing: candidate victims live in different sets per way, so
    // no single per-set replacement state spans them. Prefer an invalid
    // allowed slot, else evict a uniformly random allowed way — the standard
    // choice for skewed caches.
    for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
      if (!(allowed & (WayMask{1} << w))) continue;
      const auto set = indexing_->set_of(line, w);
      if (!(valid_[set] & (std::uint64_t{1} << w))) return Slot{set, w};
    }
    std::array<std::uint32_t, 64> candidates{};
    std::uint32_t n = 0;
    for (std::uint32_t w = 0; w < geometry_.ways && n < candidates.size(); ++w)
      if (allowed & (WayMask{1} << w)) candidates[n++] = w;
    const auto w = candidates[rng_.next_below(n)];
    return Slot{indexing_->set_of(line, w), w};
  }

  const auto set =
      direct_modulo_ ? (line & direct_mask_) : indexing_->set_of(line, 0);

  // Prefer an invalid allowed way: lowest set bit of the free mask matches
  // the old ascending-way scan exactly.
  const std::uint64_t free_allowed = ~valid_[set] & allowed & ways_mask_;
  if (free_allowed)
    return Slot{set, static_cast<std::uint32_t>(std::countr_zero(free_allowed))};

  // Ask the policy, skipping disallowed ways by re-touching them so the
  // policy walks elsewhere. Bounded retries keep this terminating even for
  // degenerate masks; fall back to the lowest allowed way.
  std::optional<std::uint32_t> chosen;
  for (int attempt = 0; attempt < 32 && !chosen; ++attempt) {
    const auto v = policy_victim(set);
    if (allowed & (WayMask{1} << v)) {
      chosen = v;
    } else {
      policy_touch(set, v);
    }
  }
  if (!chosen) {
    for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
      if (allowed & (WayMask{1} << w)) {
        chosen = w;
        break;
      }
    }
  }
  return Slot{set, *chosen};
}

std::optional<PhysAddr> SetAssocCache::fill(PhysAddr addr, WayMask allowed,
                                            CoreId requester) {
  return fill_impl(addr, allowed, requester, /*check_resident=*/true);
}

std::optional<PhysAddr> SetAssocCache::fill_after_miss(PhysAddr addr,
                                                       WayMask allowed,
                                                       CoreId requester) {
  return fill_impl(addr, allowed, requester, /*check_resident=*/false);
}

std::optional<PhysAddr> SetAssocCache::fill_impl(PhysAddr addr, WayMask allowed,
                                                 CoreId requester,
                                                 bool check_resident) {
  if (!fill_passthrough_) allowed &= fill_->allowed_ways(requester);
  MEECC_CHECK_MSG(allowed != 0, "fill with empty way mask");
  const auto line = line_index_of(addr);

  if (check_resident) {
    if (const auto slot = find_slot(line)) {
      policy_touch(slot->set, slot->way);  // already resident: refresh
      mark_dirty(slot->set);
      return std::nullopt;
    }
  }

  // A stochastic fill policy may decline the miss: nothing installed,
  // nothing evicted. Deterministic policies never consume rng_ here.
  if (!fill_passthrough_ && !fill_->admits(requester, rng_))
    return std::nullopt;

  const auto victim = pick_victim(line, allowed);
  auto& victim_tag = tag_at(victim.set, victim.way);
  const std::uint64_t way_bit = std::uint64_t{1} << victim.way;
  std::optional<PhysAddr> evicted;
  if (valid_[victim.set] & way_bit) {
    // Exactly one eviction per displaced VALID line: a slot freed by
    // invalidate() (or picked while still empty) must not count.
    ++stats_.evictions;
    ++set_evictions_[victim.set];
    evicted = PhysAddr{victim_tag * geometry_.line_size};
  }
  victim_tag = line;
  valid_[victim.set] |= way_bit;
  policy_touch(victim.set, victim.way);
  mark_dirty(victim.set);
  return evicted;
}

bool SetAssocCache::access(PhysAddr addr, WayMask allowed, CoreId requester) {
  if (lookup(addr)) return true;
  fill(addr, allowed, requester);
  return false;
}

bool SetAssocCache::invalidate(PhysAddr addr) {
  const auto slot = find_slot(line_index_of(addr));
  if (!slot) return false;
  tag_at(slot->set, slot->way) = kInvalidLine;
  valid_[slot->set] &= ~(std::uint64_t{1} << slot->way);
  policy_invalidate(slot->set, slot->way);
  mark_dirty(slot->set);
  ++stats_.invalidations;
  return true;
}

void SetAssocCache::flush_all() {
  // Touches an unbounded slice of the planes; per-set tracking would just
  // enumerate everything, so widen to the full-copy restore path instead.
  all_dirty_ = true;
  // The meta plane makes this O(occupied lines): a cold set is one load
  // and a skip, which matters because clflush-heavy trials re-flush whole
  // hierarchies between runs.
  const auto sets = geometry_.sets();
  for (std::uint64_t s = 0; s < sets; ++s) {
    std::uint64_t occupied = valid_[s];
    if (!occupied) continue;
    std::uint64_t* row = tags_.data() + s * geometry_.ways;
    while (occupied) {
      const auto w = static_cast<std::uint32_t>(std::countr_zero(occupied));
      occupied &= occupied - 1;
      row[w] = kInvalidLine;
      policy_invalidate(s, w);
      ++stats_.invalidations;
    }
    valid_[s] = 0;
  }
}

void SetAssocCache::rekey() {
  flush_all();
  indexing_->rekey(rng_.next_u64());
  refresh_indexing_shortcuts();
}

void SetAssocCache::reset_stats() {
  // Zeroes every per-set tally below, outside per-set tracking.
  all_dirty_ = true;
  stats_ = CacheStats{};
  // The per-set tallies feed the detector and must stay consistent with
  // stats_.evictions (property_test asserts the sum); resetting one without
  // the other let them drift.
  std::fill(set_evictions_.begin(), set_evictions_.end(), 0);
}

void SetAssocCache::encode_state(io::Writer& w) const {
  if (const auto key = indexing_->current_key()) {
    w.u8(1);
    w.u64(*key);
  } else {
    w.u8(0);
  }
  for (const std::uint64_t tag : tags_) w.u64(tag);
  for (const std::uint64_t mask : valid_) w.u64(mask);
  if (flat_plru_) {
    for (const std::uint64_t word : plru_) w.u64(word);
  } else {
    for (const auto& policy : policy_) policy->encode_state(w);
  }
  for (const std::uint64_t tally : set_evictions_) w.u64(tally);
  w.u64(stats_.hits);
  w.u64(stats_.misses);
  w.u64(stats_.evictions);
  w.u64(stats_.invalidations);
  encode_rng(w, rng_);
}

void SetAssocCache::decode_state(io::Reader& r) {
  if (r.u8() != 0) {
    // Replaying the stored key through rekey() keeps the policy's key
    // private; the derived shortcuts must be rebuilt afterwards.
    indexing_->rekey(r.u64());
    refresh_indexing_shortcuts();
  }
  for (auto& tag : tags_) tag = r.u64();
  for (auto& mask : valid_) mask = r.u64();
  if (flat_plru_) {
    for (auto& word : plru_) word = r.u64();
  } else {
    for (auto& policy : policy_) policy->decode_state(r);
  }
  for (auto& tally : set_evictions_) tally = r.u64();
  stats_.hits = r.u64();
  stats_.misses = r.u64();
  stats_.evictions = r.u64();
  stats_.invalidations = r.u64();
  rng_ = decode_rng(r);
  // The wire replaced the whole image; any baseline linkage is stale.
  all_dirty_ = true;
}

void SetAssocCache::reset_dirty_tracking() {
  dirty_sets_.clear();
  ++stamp_gen_;
  all_dirty_ = false;
}

bool SetAssocCache::fast_rewind_to(const SetAssocCache& baseline) {
  // Non-tree-PLRU replacement keeps per-set policy objects whose rewind
  // would clone allocations; rekey also swaps the indexing key, which lives
  // outside the planes. Both are rare off the hot path — full-copy there.
  if (all_dirty_ || !flat_plru_ || !baseline.flat_plru_ ||
      tags_.size() != baseline.tags_.size())
    return false;
  const std::uint32_t ways = geometry_.ways;
  for (const std::uint32_t s : dirty_sets_) {
    std::copy_n(baseline.tags_.data() + std::uint64_t{s} * ways, ways,
                tags_.data() + std::uint64_t{s} * ways);
    valid_[s] = baseline.valid_[s];
    plru_[s] = baseline.plru_[s];
    set_evictions_[s] = baseline.set_evictions_[s];
  }
  stats_ = baseline.stats_;
  rng_ = baseline.rng_;
  reset_dirty_tracking();
  return true;
}

std::uint32_t SetAssocCache::occupancy(std::uint64_t set) const {
  MEECC_CHECK(set < geometry_.sets());
  return static_cast<std::uint32_t>(std::popcount(valid_[set]));
}

std::vector<PhysAddr> SetAssocCache::resident_lines(std::uint64_t set) const {
  MEECC_CHECK(set < geometry_.sets());
  std::vector<PhysAddr> result;
  std::uint64_t occupied = valid_[set];
  while (occupied) {
    const auto w = static_cast<std::uint32_t>(std::countr_zero(occupied));
    occupied &= occupied - 1;
    result.push_back(PhysAddr{tag_at(set, w) * geometry_.line_size});
  }
  return result;
}

}  // namespace meecc::cache
