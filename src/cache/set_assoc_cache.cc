#include "cache/set_assoc_cache.h"

#include "common/check.h"

namespace meecc::cache {

SetAssocCache::SetAssocCache(const Geometry& geometry,
                             ReplacementKind replacement, Rng rng)
    : geometry_(geometry) {
  geometry_.validate();
  const auto sets = geometry_.sets();
  lines_.resize(sets * geometry_.ways);
  set_evictions_.assign(sets, 0);
  policy_.reserve(sets);
  for (std::uint64_t s = 0; s < sets; ++s)
    policy_.push_back(make_policy(replacement, geometry_.ways, rng.fork()));
}

SetAssocCache::LineState& SetAssocCache::line_at(std::uint64_t set,
                                                 std::uint32_t way) {
  return lines_[set * geometry_.ways + way];
}

const SetAssocCache::LineState& SetAssocCache::line_at(
    std::uint64_t set, std::uint32_t way) const {
  return lines_[set * geometry_.ways + way];
}

std::optional<std::uint32_t> SetAssocCache::find_way(PhysAddr addr) const {
  const auto set = geometry_.set_index(addr);
  const auto tag = geometry_.tag(addr);
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    const auto& line = line_at(set, w);
    if (line.valid && line.tag == tag) return w;
  }
  return std::nullopt;
}

bool SetAssocCache::contains(PhysAddr addr) const {
  return find_way(addr).has_value();
}

bool SetAssocCache::lookup(PhysAddr addr) {
  const auto way = find_way(addr);
  if (!way) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  policy_[geometry_.set_index(addr)]->touch(*way);
  return true;
}

std::optional<PhysAddr> SetAssocCache::fill(PhysAddr addr, WayMask allowed) {
  MEECC_CHECK_MSG(allowed != 0, "fill with empty way mask");
  const auto set = geometry_.set_index(addr);
  const auto tag = geometry_.tag(addr);

  if (const auto way = find_way(addr)) {
    policy_[set]->touch(*way);  // already resident: refresh
    return std::nullopt;
  }

  // Prefer an invalid allowed way.
  std::optional<std::uint32_t> chosen;
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    if (!(allowed & (WayMask{1} << w))) continue;
    if (!line_at(set, w).valid) {
      chosen = w;
      break;
    }
  }

  std::optional<PhysAddr> evicted;
  if (!chosen) {
    // Ask the policy, skipping disallowed ways by re-touching them so the
    // policy walks elsewhere. Bounded retries keep this terminating even for
    // degenerate masks; fall back to the lowest allowed way.
    auto& policy = *policy_[set];
    for (int attempt = 0; attempt < 32 && !chosen; ++attempt) {
      const auto v = policy.victim();
      if (allowed & (WayMask{1} << v)) {
        chosen = v;
      } else {
        policy.touch(v);
      }
    }
    if (!chosen) {
      for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
        if (allowed & (WayMask{1} << w)) {
          chosen = w;
          break;
        }
      }
    }
    auto& victim_line = line_at(set, *chosen);
    if (victim_line.valid) {
      ++stats_.evictions;
      ++set_evictions_[set];
      evicted = geometry_.line_address(victim_line.tag, set);
    }
  }

  auto& line = line_at(set, *chosen);
  line.valid = true;
  line.tag = tag;
  policy_[set]->touch(*chosen);
  return evicted;
}

bool SetAssocCache::access(PhysAddr addr, WayMask allowed) {
  if (lookup(addr)) return true;
  fill(addr, allowed);
  return false;
}

bool SetAssocCache::invalidate(PhysAddr addr) {
  const auto way = find_way(addr);
  if (!way) return false;
  const auto set = geometry_.set_index(addr);
  line_at(set, *way).valid = false;
  policy_[set]->invalidate(*way);
  ++stats_.invalidations;
  return true;
}

void SetAssocCache::flush_all() {
  for (std::uint64_t s = 0; s < geometry_.sets(); ++s) {
    for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
      if (line_at(s, w).valid) {
        line_at(s, w).valid = false;
        policy_[s]->invalidate(w);
        ++stats_.invalidations;
      }
    }
  }
}

std::uint32_t SetAssocCache::occupancy(std::uint64_t set) const {
  MEECC_CHECK(set < geometry_.sets());
  std::uint32_t n = 0;
  for (std::uint32_t w = 0; w < geometry_.ways; ++w)
    if (line_at(set, w).valid) ++n;
  return n;
}

std::vector<PhysAddr> SetAssocCache::resident_lines(std::uint64_t set) const {
  MEECC_CHECK(set < geometry_.sets());
  std::vector<PhysAddr> result;
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    const auto& line = line_at(set, w);
    if (line.valid) result.push_back(geometry_.line_address(line.tag, set));
  }
  return result;
}

}  // namespace meecc::cache
