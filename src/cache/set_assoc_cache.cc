#include "cache/set_assoc_cache.h"

#include <algorithm>
#include <array>

#include "common/check.h"

namespace meecc::cache {

SetAssocCache::SetAssocCache(const Geometry& geometry,
                             const PolicyConfig& config, Rng rng)
    : geometry_(geometry) {
  geometry_.validate();
  indexing_ = make_indexing_policy(config, geometry_);
  fill_ = make_fill_policy(config, geometry_);
  const auto replacement = replacement_from_name(config.replacement);
  const auto sets = geometry_.sets();
  lines_.resize(sets * geometry_.ways);
  set_evictions_.assign(sets, 0);
  policy_.reserve(sets);
  // Fork order is load-bearing: one fork per set first (exactly the legacy
  // stream), then the leftover parent state seeds the cache-level rng.
  for (std::uint64_t s = 0; s < sets; ++s)
    policy_.push_back(make_policy(replacement, geometry_.ways, rng.fork()));
  rng_ = std::move(rng);
}

SetAssocCache::SetAssocCache(const Geometry& geometry,
                             ReplacementKind replacement, Rng rng)
    : SetAssocCache(
          geometry,
          PolicyConfig{.replacement = std::string(to_string(replacement))},
          std::move(rng)) {}

SetAssocCache::LineState& SetAssocCache::line_at(std::uint64_t set,
                                                 std::uint32_t way) {
  return lines_[set * geometry_.ways + way];
}

const SetAssocCache::LineState& SetAssocCache::line_at(
    std::uint64_t set, std::uint32_t way) const {
  return lines_[set * geometry_.ways + way];
}

std::optional<SetAssocCache::Slot> SetAssocCache::find_slot(
    std::uint64_t line) const {
  const bool way_dependent = indexing_->way_dependent();
  const auto set0 = indexing_->set_of(line, 0);
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    const auto set = way_dependent ? indexing_->set_of(line, w) : set0;
    const auto& state = line_at(set, w);
    if (state.valid && state.line == line) return Slot{set, w};
  }
  return std::nullopt;
}

bool SetAssocCache::contains(PhysAddr addr) const {
  return find_slot(addr.raw / geometry_.line_size).has_value();
}

bool SetAssocCache::lookup(PhysAddr addr) {
  const auto slot = find_slot(addr.raw / geometry_.line_size);
  if (!slot) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  policy_[slot->set]->touch(slot->way);
  return true;
}

SetAssocCache::Slot SetAssocCache::pick_victim(std::uint64_t line,
                                               WayMask allowed) {
  if (indexing_->way_dependent()) {
    // Skewed indexing: candidate victims live in different sets per way, so
    // no single per-set replacement state spans them. Prefer an invalid
    // allowed slot, else evict a uniformly random allowed way — the standard
    // choice for skewed caches.
    for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
      if (!(allowed & (WayMask{1} << w))) continue;
      const auto set = indexing_->set_of(line, w);
      if (!line_at(set, w).valid) return Slot{set, w};
    }
    std::array<std::uint32_t, 64> candidates{};
    std::uint32_t n = 0;
    for (std::uint32_t w = 0; w < geometry_.ways && n < candidates.size(); ++w)
      if (allowed & (WayMask{1} << w)) candidates[n++] = w;
    const auto w = candidates[rng_.next_below(n)];
    return Slot{indexing_->set_of(line, w), w};
  }

  const auto set = indexing_->set_of(line, 0);

  // Prefer an invalid allowed way.
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    if (!(allowed & (WayMask{1} << w))) continue;
    if (!line_at(set, w).valid) return Slot{set, w};
  }

  // Ask the policy, skipping disallowed ways by re-touching them so the
  // policy walks elsewhere. Bounded retries keep this terminating even for
  // degenerate masks; fall back to the lowest allowed way.
  auto& policy = *policy_[set];
  std::optional<std::uint32_t> chosen;
  for (int attempt = 0; attempt < 32 && !chosen; ++attempt) {
    const auto v = policy.victim();
    if (allowed & (WayMask{1} << v)) {
      chosen = v;
    } else {
      policy.touch(v);
    }
  }
  if (!chosen) {
    for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
      if (allowed & (WayMask{1} << w)) {
        chosen = w;
        break;
      }
    }
  }
  return Slot{set, *chosen};
}

std::optional<PhysAddr> SetAssocCache::fill(PhysAddr addr, WayMask allowed,
                                            CoreId requester) {
  allowed &= fill_->allowed_ways(requester);
  MEECC_CHECK_MSG(allowed != 0, "fill with empty way mask");
  const auto line = addr.raw / geometry_.line_size;

  if (const auto slot = find_slot(line)) {
    policy_[slot->set]->touch(slot->way);  // already resident: refresh
    return std::nullopt;
  }

  // A stochastic fill policy may decline the miss: nothing installed,
  // nothing evicted. Deterministic policies never consume rng_ here.
  if (!fill_->admits(requester, rng_)) return std::nullopt;

  const auto victim = pick_victim(line, allowed);
  auto& victim_line = line_at(victim.set, victim.way);
  std::optional<PhysAddr> evicted;
  if (victim_line.valid) {
    // Exactly one eviction per displaced VALID line: a slot freed by
    // invalidate() (or picked while still empty) must not count.
    ++stats_.evictions;
    ++set_evictions_[victim.set];
    evicted = PhysAddr{victim_line.line * geometry_.line_size};
  }
  victim_line.valid = true;
  victim_line.line = line;
  policy_[victim.set]->touch(victim.way);
  return evicted;
}

bool SetAssocCache::access(PhysAddr addr, WayMask allowed, CoreId requester) {
  if (lookup(addr)) return true;
  fill(addr, allowed, requester);
  return false;
}

bool SetAssocCache::invalidate(PhysAddr addr) {
  const auto slot = find_slot(addr.raw / geometry_.line_size);
  if (!slot) return false;
  line_at(slot->set, slot->way).valid = false;
  policy_[slot->set]->invalidate(slot->way);
  ++stats_.invalidations;
  return true;
}

void SetAssocCache::flush_all() {
  for (std::uint64_t s = 0; s < geometry_.sets(); ++s) {
    for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
      if (line_at(s, w).valid) {
        line_at(s, w).valid = false;
        policy_[s]->invalidate(w);
        ++stats_.invalidations;
      }
    }
  }
}

void SetAssocCache::rekey() {
  flush_all();
  indexing_->rekey(rng_.next_u64());
}

void SetAssocCache::reset_stats() {
  stats_ = CacheStats{};
  // The per-set tallies feed the detector and must stay consistent with
  // stats_.evictions (property_test asserts the sum); resetting one without
  // the other let them drift.
  std::fill(set_evictions_.begin(), set_evictions_.end(), 0);
}

std::uint32_t SetAssocCache::occupancy(std::uint64_t set) const {
  MEECC_CHECK(set < geometry_.sets());
  std::uint32_t n = 0;
  for (std::uint32_t w = 0; w < geometry_.ways; ++w)
    if (line_at(set, w).valid) ++n;
  return n;
}

std::vector<PhysAddr> SetAssocCache::resident_lines(std::uint64_t set) const {
  MEECC_CHECK(set < geometry_.sets());
  std::vector<PhysAddr> result;
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    const auto& line = line_at(set, w);
    if (line.valid) result.push_back(PhysAddr{line.line * geometry_.line_size});
  }
  return result;
}

}  // namespace meecc::cache
