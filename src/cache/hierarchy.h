// Per-core L1/L2 plus a shared inclusive LLC, Skylake-like.
//
// Inclusivity matters for the attacks: clflush (or an LLC eviction) removes a
// line from every private cache too, guaranteeing the next access reaches
// DRAM — and, for protected addresses, the MEE. The MEE cache is NOT part of
// this hierarchy and is untouched by clflush (paper §3 challenge 1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/set_assoc_cache.h"
#include "common/rng.h"
#include "common/types.h"
#include "obs/hub.h"

namespace meecc::cache {

enum class HitLevel { kL1, kL2, kLlc, kMemory };

std::string_view to_string(HitLevel level);

struct HierarchyConfig {
  Geometry l1{.size_bytes = 32 * 1024, .ways = 8};
  Geometry l2{.size_bytes = 256 * 1024, .ways = 4};
  Geometry llc{.size_bytes = 8 * 1024 * 1024, .ways = 16};
  /// Full policy stack per level (indexing × replacement × fill);
  /// defaults are the classic modulo / tree-plru / all-ways shape.
  PolicyConfig l1_policy;
  PolicyConfig l2_policy;
  PolicyConfig llc_policy;
  Cycles l1_latency = 4;    ///< hit latency
  Cycles l2_latency = 14;   ///< hit latency (includes L1 miss)
  Cycles llc_latency = 44;  ///< hit latency (includes L1+L2 miss)
  Cycles clflush_latency = 46;
  Cycles mfence_latency = 24;
};

struct HierarchyResult {
  HitLevel level = HitLevel::kMemory;
  Cycles lookup_latency = 0;  ///< excludes DRAM/MEE time on kMemory
};

class Hierarchy {
 public:
  /// `hub` (optional, borrowed) receives per-level hit/miss/eviction
  /// counters under cache.l1 / cache.l2 / cache.llc and eviction trace
  /// events; it must outlive the hierarchy.
  Hierarchy(const HierarchyConfig& config, unsigned core_count, Rng rng,
            obs::Hub* hub = nullptr);

  /// Performs one data access from `core`, filling all levels on miss
  /// (inclusive fill). LLC evictions back-invalidate every private cache.
  /// `now` only timestamps trace events; it does not affect behaviour.
  HierarchyResult access(CoreId core, PhysAddr addr, Cycles now = 0);

  /// clflush semantics: removes the line from LLC and all private caches.
  /// Returns the modelled instruction latency.
  Cycles clflush(PhysAddr addr);

  /// True if the line is resident anywhere in the hierarchy.
  bool resident(PhysAddr addr) const;

  const HierarchyConfig& config() const { return config_; }
  unsigned core_count() const { return static_cast<unsigned>(l1_.size()); }

  const SetAssocCache& l1(CoreId core) const { return *l1_.at(core.value); }
  const SetAssocCache& l2(CoreId core) const { return *l2_.at(core.value); }
  const SetAssocCache& llc() const { return *llc_; }

  void flush_all();

  /// Full cache-array state for snapshot/fork: value copies of every level
  /// (lines, PLRU bits, policy objects, per-set eviction tallies, RNG).
  /// Counter handles are NOT part of the state — import keeps this
  /// hierarchy's own bindings.
  struct State {
    std::vector<SetAssocCache> l1;
    std::vector<SetAssocCache> l2;
    std::vector<SetAssocCache> llc;
    /// Identifies this captured image, minted by export_state() from a
    /// process-wide counter. Value copies share the id legitimately (they
    /// hold the same bytes and States are never mutated after capture);
    /// 0 = unknown provenance, never eligible for the fast import below.
    std::uint64_t image_id = 0;
  };
  State export_state() const;

  /// Overwrites the live cache arrays with `state`. Re-importing the image
  /// this hierarchy last imported (matching nonzero image_id) takes the
  /// O(touched) path: each cache rewinds only the sets dirtied since — the
  /// fork-recycling hot path, where a full-plane copy of a multi-MiB LLC
  /// would otherwise dominate the whole trial (bench/perf_suite.cc's
  /// campaign section and DESIGN.md §6 quantify this).
  void import_state(const State& state);

 private:
  void back_invalidate(PhysAddr addr);

  HierarchyConfig config_;
  std::vector<std::unique_ptr<SetAssocCache>> l1_;
  std::vector<std::unique_ptr<SetAssocCache>> l2_;
  std::unique_ptr<SetAssocCache> llc_;

  /// image_id of the last State imported (or 0): gates the fast re-import.
  std::uint64_t last_import_id_ = 0;

  obs::Hub* hub_ = nullptr;
  struct LevelCounters {
    obs::Counter hits;
    obs::Counter misses;
  };
  LevelCounters l1_counters_;
  LevelCounters l2_counters_;
  LevelCounters llc_counters_;
  obs::Counter llc_evictions_;
  obs::Counter clflushes_;
};

}  // namespace meecc::cache
