#include "cache/tag_probe.h"

#if (defined(__x86_64__) || defined(__i386__)) && !defined(MEECC_NO_SIMD)
#define MEECC_TAG_PROBE_X86 1
#include <immintrin.h>
#endif

namespace meecc::cache::detail {

std::uint64_t tag_probe_scalar(const std::uint64_t* row, std::uint32_t ways,
                               std::uint64_t line) {
  // Branchless mask scan: reading every way unconditionally lets the
  // compiler vectorize the compares, and misses — the common case in a
  // clflush+probe workload — have to scan the whole row anyway.
  std::uint64_t match = 0;
  for (std::uint32_t w = 0; w < ways; ++w)
    match |= static_cast<std::uint64_t>(row[w] == line) << w;
  return match;
}

#ifdef MEECC_TAG_PROBE_X86

namespace {

// Per-function target attributes (no global -mavx2), so the binary still
// runs on older CPUs — select_tag_probe() consults CPUID before ever
// taking one of these paths.

__attribute__((target("avx2"))) std::uint64_t tag_probe_avx2(
    const std::uint64_t* row, std::uint32_t ways, std::uint64_t line) {
  const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(line));
  std::uint64_t match = 0;
  std::uint32_t w = 0;
  for (; w + 4 <= ways; w += 4) {
    const __m256i tags =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
    const int mask =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(tags, needle)));
    match |= static_cast<std::uint64_t>(mask) << w;
  }
  for (; w < ways; ++w)
    match |= static_cast<std::uint64_t>(row[w] == line) << w;
  return match;
}

__attribute__((target("sse4.1"))) std::uint64_t tag_probe_sse41(
    const std::uint64_t* row, std::uint32_t ways, std::uint64_t line) {
  const __m128i needle = _mm_set1_epi64x(static_cast<long long>(line));
  std::uint64_t match = 0;
  std::uint32_t w = 0;
  for (; w + 2 <= ways; w += 2) {
    const __m128i tags =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + w));
    const int mask =
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(tags, needle)));
    match |= static_cast<std::uint64_t>(mask) << w;
  }
  for (; w < ways; ++w)
    match |= static_cast<std::uint64_t>(row[w] == line) << w;
  return match;
}

}  // namespace

TagProbeFn select_tag_probe() {
  if (__builtin_cpu_supports("avx2")) return tag_probe_avx2;
  if (__builtin_cpu_supports("sse4.1")) return tag_probe_sse41;
  return tag_probe_scalar;
}

const char* tag_probe_name() {
  if (__builtin_cpu_supports("avx2")) return "avx2";
  if (__builtin_cpu_supports("sse4.1")) return "sse4.1";
  return "scalar";
}

#else  // !MEECC_TAG_PROBE_X86

TagProbeFn select_tag_probe() { return tag_probe_scalar; }

const char* tag_probe_name() { return "scalar"; }

#endif

}  // namespace meecc::cache::detail
