// SIMD tag-plane probe: compare one set's contiguous row of 64-bit tags
// against a target line index and return the bitmask of matching ways.
//
// The SoA layout of SetAssocCache keeps each set's tags in one contiguous
// row, so the probe is a pure data-parallel compare — the covert-channel
// workloads are one long clflush+probe loop and spend a third of their
// wall-clock here. The implementation is picked once per process by CPUID
// (AVX2, then SSE4.1, then scalar); building with -DMEECC_NO_SIMD=ON forces
// the portable scalar path everywhere. All paths return bit-identical
// masks, so which one runs can never change simulation results.
#pragma once

#include <cstdint>

namespace meecc::cache::detail {

/// Bitmask of ways w in [0, ways) with row[w] == line. Invalid slots hold
/// the all-ones sentinel, which never equals a real line index, so the
/// caller needs no separate validity filter.
using TagProbeFn = std::uint64_t (*)(const std::uint64_t* row,
                                     std::uint32_t ways, std::uint64_t line);

/// Portable scalar probe (also the MEECC_NO_SIMD implementation).
std::uint64_t tag_probe_scalar(const std::uint64_t* row, std::uint32_t ways,
                               std::uint64_t line);

/// The fastest probe this CPU supports. Resolved once; the returned pointer
/// is valid for the life of the process.
TagProbeFn select_tag_probe();

/// Process-wide probe entry point (resolved at first use).
inline std::uint64_t tag_probe(const std::uint64_t* row, std::uint32_t ways,
                               std::uint64_t line) {
  static const TagProbeFn probe = select_tag_probe();
  return probe(row, ways, line);
}

/// Name of the selected implementation ("avx2", "sse4.1", "scalar") — for
/// diagnostics and the NO_SIMD CI leg's sanity check.
const char* tag_probe_name();

}  // namespace meecc::cache::detail
