#include "cache/replacement.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"

namespace meecc::cache {

std::string_view to_string(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru:
      return "lru";
    case ReplacementKind::kTreePlru:
      return "tree-plru";
    case ReplacementKind::kNru:
      return "nru";
    case ReplacementKind::kRandom:
      return "random";
  }
  return "?";
}

namespace {

constexpr ReplacementKind kAllKinds[] = {
    ReplacementKind::kLru, ReplacementKind::kTreePlru, ReplacementKind::kNru,
    ReplacementKind::kRandom};

}  // namespace

ReplacementKind replacement_from_name(std::string_view name) {
  for (const auto kind : kAllKinds)
    if (to_string(kind) == name) return kind;
  std::ostringstream os;
  os << "unknown replacement policy '" << name << "'";
  throw CheckFailure(os.str());
}

bool is_replacement_policy(std::string_view name) {
  for (const auto kind : kAllKinds)
    if (to_string(kind) == name) return true;
  return false;
}

std::vector<std::string> replacement_names() {
  std::vector<std::string> names;
  for (const auto kind : kAllKinds) names.emplace_back(to_string(kind));
  std::sort(names.begin(), names.end());
  return names;
}

void ReplacementPolicy::encode_state(io::Writer&) const {
  throw CheckFailure("replacement policy does not implement encode_state()");
}

void ReplacementPolicy::decode_state(io::Reader&) {
  throw CheckFailure("replacement policy does not implement decode_state()");
}

namespace {

/// True LRU via use timestamps.
class LruPolicy final : public ReplacementPolicy {
 public:
  explicit LruPolicy(std::uint32_t ways) : stamp_(ways, 0) {}

  void touch(std::uint32_t way) override {
    MEECC_CHECK(way < stamp_.size());
    stamp_[way] = ++clock_;
  }

  std::uint32_t victim() override {
    const auto it = std::min_element(stamp_.begin(), stamp_.end());
    return static_cast<std::uint32_t>(it - stamp_.begin());
  }

  void invalidate(std::uint32_t way) override {
    MEECC_CHECK(way < stamp_.size());
    stamp_[way] = 0;  // oldest possible → chosen first
  }

  std::unique_ptr<ReplacementPolicy> clone() const override {
    return std::make_unique<LruPolicy>(*this);
  }

  void encode_state(io::Writer& w) const override {
    w.u64(clock_);
    for (const std::uint64_t stamp : stamp_) w.u64(stamp);
  }

  void decode_state(io::Reader& r) override {
    clock_ = r.u64();
    for (auto& stamp : stamp_) stamp = r.u64();
  }

 private:
  std::vector<std::uint64_t> stamp_;
  std::uint64_t clock_ = 0;
};

/// Tree-PLRU: a binary tree of direction bits over the ways. This is the
/// classic "approximate LRU": a linear scan of W fresh lines through a W-way
/// set does not necessarily evict all previous occupants, because fills flip
/// tree bits and can redirect later victims onto just-filled ways.
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  explicit TreePlruPolicy(std::uint32_t ways) : ways_(ways) {
    MEECC_CHECK(std::has_single_bit(ways));
    depth_ = static_cast<std::uint32_t>(std::countr_zero(ways_));
    bits_.assign(ways_ - 1, 0);
  }

  // With a power-of-two way count the classic midpoint recursion is exactly
  // a walk down the bits of `way`, most significant first: at depth d the
  // branch taken is bit (depth_ - 1 - d), so the lo/hi interval arithmetic
  // collapses to shifts on the touch/victim paths that run on every access.

  void touch(std::uint32_t way) override {
    MEECC_CHECK(way < ways_);
    // Walk from the root to the leaf, pointing every node AWAY from `way`.
    std::uint32_t node = 0;
    for (std::uint32_t d = depth_; d-- > 0;) {
      const std::uint32_t went_right = (way >> d) & 1;
      bits_[node] =
          static_cast<std::uint8_t>(1 - went_right);  // search the other way
      node = 2 * node + 1 + went_right;
    }
  }

  std::uint32_t victim() override {
    std::uint32_t node = 0;
    std::uint32_t way = 0;
    for (std::uint32_t d = depth_; d-- > 0;) {
      const std::uint32_t go_right = bits_[node];
      way = (way << 1) | go_right;
      node = 2 * node + 1 + go_right;
    }
    return way;
  }

  void invalidate(std::uint32_t way) override {
    MEECC_CHECK(way < ways_);
    // Point the tree AT the invalidated way so it is refilled first.
    std::uint32_t node = 0;
    for (std::uint32_t d = depth_; d-- > 0;) {
      const std::uint32_t go_right = (way >> d) & 1;
      bits_[node] = static_cast<std::uint8_t>(go_right);
      node = 2 * node + 1 + go_right;
    }
  }

  std::unique_ptr<ReplacementPolicy> clone() const override {
    return std::make_unique<TreePlruPolicy>(*this);
  }

  void encode_state(io::Writer& w) const override {
    for (const std::uint8_t bit : bits_) w.u8(bit);
  }

  void decode_state(io::Reader& r) override {
    for (auto& bit : bits_) bit = r.u8();
  }

 private:
  std::uint32_t ways_;
  std::uint32_t depth_;  // log2(ways)
  /// One byte per tree node: vector<bool>'s bit proxies cost real time on
  /// the touch/victim paths, which run on every cache access.
  std::vector<std::uint8_t> bits_;
};

/// Not-recently-used: one reference bit per way; victims are picked from the
/// unreferenced ways (random tie-break); all bits clear when they saturate.
class NruPolicy final : public ReplacementPolicy {
 public:
  NruPolicy(std::uint32_t ways, Rng rng) : referenced_(ways, false), rng_(rng) {}

  void touch(std::uint32_t way) override {
    MEECC_CHECK(way < referenced_.size());
    referenced_[way] = true;
    if (std::all_of(referenced_.begin(), referenced_.end(),
                    [](bool b) { return b; })) {
      std::fill(referenced_.begin(), referenced_.end(), false);
      referenced_[way] = true;
    }
  }

  std::uint32_t victim() override {
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t w = 0; w < referenced_.size(); ++w)
      if (!referenced_[w]) candidates.push_back(w);
    if (candidates.empty()) return 0;
    return candidates[rng_.next_below(candidates.size())];
  }

  void invalidate(std::uint32_t way) override {
    MEECC_CHECK(way < referenced_.size());
    referenced_[way] = false;
  }

  std::unique_ptr<ReplacementPolicy> clone() const override {
    return std::make_unique<NruPolicy>(*this);
  }

  void encode_state(io::Writer& w) const override {
    for (const bool bit : referenced_) w.u8(bit ? 1 : 0);
    encode_rng(w, rng_);
  }

  void decode_state(io::Reader& r) override {
    for (std::size_t i = 0; i < referenced_.size(); ++i)
      referenced_[i] = r.u8() != 0;
    rng_ = decode_rng(r);
  }

 private:
  std::vector<bool> referenced_;
  Rng rng_;
};

class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::uint32_t ways, Rng rng) : ways_(ways), rng_(rng) {}

  void touch(std::uint32_t) override {}
  std::uint32_t victim() override {
    return static_cast<std::uint32_t>(rng_.next_below(ways_));
  }
  void invalidate(std::uint32_t) override {}

  std::unique_ptr<ReplacementPolicy> clone() const override {
    return std::make_unique<RandomPolicy>(*this);
  }

  void encode_state(io::Writer& w) const override { encode_rng(w, rng_); }
  void decode_state(io::Reader& r) override { rng_ = decode_rng(r); }

 private:
  std::uint32_t ways_;
  Rng rng_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_policy(ReplacementKind kind,
                                               std::uint32_t ways, Rng rng) {
  MEECC_CHECK(ways > 0);
  switch (kind) {
    case ReplacementKind::kLru:
      return std::make_unique<LruPolicy>(ways);
    case ReplacementKind::kTreePlru:
      return std::make_unique<TreePlruPolicy>(ways);
    case ReplacementKind::kNru:
      return std::make_unique<NruPolicy>(ways, rng);
    case ReplacementKind::kRandom:
      return std::make_unique<RandomPolicy>(ways, rng);
  }
  MEECC_CHECK_MSG(false, "unknown replacement kind");
  return nullptr;
}

}  // namespace meecc::cache
