#include "cache/geometry.h"

#include <bit>

#include "common/check.h"

namespace meecc::cache {

void Geometry::validate() const {
  MEECC_CHECK(line_size > 0 && std::has_single_bit(line_size));
  MEECC_CHECK(ways > 0);
  MEECC_CHECK(size_bytes > 0);
  MEECC_CHECK(size_bytes % (static_cast<std::uint64_t>(ways) * line_size) == 0);
  MEECC_CHECK_MSG(std::has_single_bit(sets()),
                  "set count must be a power of two, got " << sets());
}

}  // namespace meecc::cache
