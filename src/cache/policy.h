// Composable cache policies: how a line finds its set (IndexingPolicy) and
// which ways a fill may claim (FillPolicy), each constructible by name
// through a string→factory registry.
//
// The set-index computation used to be welded into Geometry::set_index and
// the fill path hard-wired "any way". Pulling both behind interfaces lets a
// SetAssocCache compose (indexing × replacement × fill), which is exactly
// the design space of the §5.5 countermeasures and the randomized-cache
// literature (CEASER-style keyed indexing, skewed indexing, way
// partitioning, random fill). Every policy is selectable through the
// experiment runtime's string-keyed overrides, e.g.
//   meecc_bench run mitigations --sweep mee.cache.indexing=modulo,keyed
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/geometry.h"
#include "common/rng.h"
#include "common/types.h"

namespace meecc::cache {

/// Mask of ways a fill is allowed to victimize; bit w = way w allowed.
using WayMask = std::uint32_t;
inline constexpr WayMask kAllWays = ~WayMask{0};

/// Everything needed to build one cache's policy stack. All fields are
/// plain strings/scalars so the runtime's --set/--sweep overrides map onto
/// them directly (runtime/params.cc owns the key spellings).
struct PolicyConfig {
  std::string indexing = "modulo";        ///< modulo | keyed | skewed
  std::string replacement = "tree-plru";  ///< lru | tree-plru | nru | random
  std::string fill = "all";               ///< all | partition | random
  /// Keyed/skewed permutation key. Deterministic default so two caches
  /// built from the same config agree on the mapping.
  std::uint64_t index_key = 0x5eed5ca7ab1e0101ULL;
  /// Way groups with independent index permutations (skewed indexing).
  std::uint32_t skew_partitions = 2;
  /// Admission probability of the random-fill policy.
  double fill_probability = 0.5;
  /// MEE-engine knob (threaded through MeeConfig): walks between
  /// flush+rekey events; 0 disables periodic rekey.
  std::uint64_t rekey_period = 0;
};

/// Cheap keyed bijection on 64-bit line indices: an add-xor-multiply chain
/// (SplitMix64-style finalizer) in which every step is invertible, so the
/// whole map is a permutation of the u64 space. Exposed for the bijection
/// property tests.
std::uint64_t keyed_line_permutation(std::uint64_t line, std::uint64_t key);

/// Maps a line index (addr / line_size) to a set. Implementations must be
/// bijective over line indices before the final modulo so that every set is
/// reachable and no two residents can alias within a set.
class IndexingPolicy {
 public:
  virtual ~IndexingPolicy() = default;

  virtual std::string_view name() const = 0;

  /// Set for `line` when considered for `way`. Way-independent for classic
  /// designs; skewed designs hash each way group differently.
  virtual std::uint64_t set_of(std::uint64_t line, std::uint32_t way) const = 0;

  /// True when set_of depends on `way` (the cache then probes each way at
  /// its own set and uses random victim selection, as real skewed caches do).
  virtual bool way_dependent() const { return false; }

  /// If set_of reduces to `line & mask` for every way (the classic modulo
  /// design), returns that mask so the cache's per-access paths can skip the
  /// virtual dispatch entirely. Queried again after every rekey().
  virtual std::optional<std::uint64_t> modulo_mask() const {
    return std::nullopt;
  }

  /// Installs a fresh permutation key (CEASER-style rekey). The caller is
  /// responsible for flushing residents mapped under the old key. No-op for
  /// keyless designs.
  virtual void rekey(std::uint64_t fresh_key) { (void)fresh_key; }

  /// Current permutation key, if the design has one. Snapshot serialization
  /// stores this and replays it through rekey() on decode, so a rekeyed
  /// cache round-trips without the snapshot knowing the policy's internals.
  virtual std::optional<std::uint64_t> current_key() const {
    return std::nullopt;
  }

  /// Deep copy including the current key (snapshot/fork support). The
  /// default returns nullptr; externally registered policies that don't
  /// override it make the owning cache uncopyable (SetAssocCache's copy
  /// constructor throws CheckFailure).
  virtual std::unique_ptr<IndexingPolicy> clone() const { return nullptr; }
};

/// Decides which ways a requester's fill may claim and whether the miss is
/// admitted at all. Subsumes the old ad-hoc MeePartitionFn hook.
class FillPolicy {
 public:
  virtual ~FillPolicy() = default;

  virtual std::string_view name() const = 0;

  /// Ways `requester` may victimize (intersected with the caller's mask).
  virtual WayMask allowed_ways(CoreId requester) const {
    (void)requester;
    return kAllWays;
  }

  /// Whether this miss is installed at all. Stochastic policies (random
  /// fill) consume `rng`; deterministic ones must not touch it.
  virtual bool admits(CoreId requester, Rng& rng) {
    (void)requester;
    (void)rng;
    return true;
  }

  /// True when the policy admits every miss and allows every way for every
  /// requester (the default "all" policy). Lets the cache's fill path skip
  /// both virtual calls per miss.
  virtual bool passthrough() const { return false; }

  /// Deep copy (snapshot/fork support); same nullptr contract as
  /// IndexingPolicy::clone().
  virtual std::unique_ptr<FillPolicy> clone() const { return nullptr; }
};

/// The way-partition mask the "partition" fill policy hands out: even cores
/// get the low half of the ways, odd cores the high half. Exposed for tests
/// and for documentation of the §5.5 ablation.
WayMask way_partition_mask(std::uint32_t ways, CoreId core);

// --- string → factory registry ------------------------------------------

using IndexingFactory = std::function<std::unique_ptr<IndexingPolicy>(
    const PolicyConfig&, const Geometry&)>;
using FillFactory = std::function<std::unique_ptr<FillPolicy>(
    const PolicyConfig&, const Geometry&)>;

/// Registers a policy under `name`, replacing any previous registration.
/// Built-ins (modulo/keyed/skewed, all/partition/random) are pre-registered.
void register_indexing_policy(std::string name, IndexingFactory factory);
void register_fill_policy(std::string name, FillFactory factory);

/// True if `name` resolves to a registered policy.
bool is_indexing_policy(std::string_view name);
bool is_fill_policy(std::string_view name);

/// Registered names, sorted — the CLI's discoverability surface
/// (`meecc_bench params`).
std::vector<std::string> indexing_policy_names();
std::vector<std::string> fill_policy_names();

/// Builds the policy named by `config.indexing` / `config.fill`.
/// Throws CheckFailure on unknown names (the runtime validates earlier and
/// reports the registered alternatives).
std::unique_ptr<IndexingPolicy> make_indexing_policy(const PolicyConfig& config,
                                                     const Geometry& geometry);
std::unique_ptr<FillPolicy> make_fill_policy(const PolicyConfig& config,
                                             const Geometry& geometry);

}  // namespace meecc::cache
