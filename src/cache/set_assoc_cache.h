// Generic physically-indexed set-associative cache (state only, no timing —
// latency is the caller's concern so the same structure serves L1/L2/LLC and
// the MEE cache).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/geometry.h"
#include "cache/replacement.h"
#include "common/rng.h"
#include "common/types.h"

namespace meecc::cache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

/// Mask of ways a fill is allowed to victimize; bit w = way w allowed.
/// Used by the way-partitioning mitigation ablation (§5.5).
using WayMask = std::uint32_t;
inline constexpr WayMask kAllWays = ~WayMask{0};

class SetAssocCache {
 public:
  SetAssocCache(const Geometry& geometry, ReplacementKind replacement, Rng rng);

  /// Probe without side effects: is the line resident?
  bool contains(PhysAddr addr) const;

  /// Lookup: on hit updates replacement state and returns true.
  /// Does NOT fill on miss (call fill()).
  bool lookup(PhysAddr addr);

  /// Inserts the line, evicting if needed. Returns the evicted line's base
  /// address, if a valid line was displaced. `allowed` restricts candidate
  /// victim ways (the line itself may still hit in a disallowed way).
  std::optional<PhysAddr> fill(PhysAddr addr, WayMask allowed = kAllWays);

  /// Convenience: lookup, then fill on miss. Returns true on hit.
  bool access(PhysAddr addr, WayMask allowed = kAllWays);

  /// Removes the line if present (clflush / back-invalidation).
  bool invalidate(PhysAddr addr);

  void flush_all();

  const Geometry& geometry() const { return geometry_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Number of valid lines currently in `set` (for tests / introspection).
  std::uint32_t occupancy(std::uint64_t set) const;

  /// Resident line base addresses in `set`, in way order.
  std::vector<PhysAddr> resident_lines(std::uint64_t set) const;

  /// Cumulative conflict evictions per set — the defender-visible signature
  /// a covert channel cannot avoid concentrating into its contested set
  /// (channel/detector.h).
  const std::vector<std::uint64_t>& evictions_per_set() const {
    return set_evictions_;
  }

 private:
  struct LineState {
    bool valid = false;
    std::uint64_t tag = 0;
  };

  LineState& line_at(std::uint64_t set, std::uint32_t way);
  const LineState& line_at(std::uint64_t set, std::uint32_t way) const;
  std::optional<std::uint32_t> find_way(PhysAddr addr) const;

  Geometry geometry_;
  std::vector<LineState> lines_;  // sets * ways, row-major by set
  std::vector<std::unique_ptr<ReplacementPolicy>> policy_;  // one per set
  std::vector<std::uint64_t> set_evictions_;
  CacheStats stats_;
};

}  // namespace meecc::cache
