// Generic physically-indexed set-associative cache (state only, no timing —
// latency is the caller's concern so the same structure serves L1/L2/LLC and
// the MEE cache).
//
// The cache composes three orthogonal policies (cache/policy.h):
//   indexing    — how a line index maps to a set (modulo / keyed / skewed)
//   replacement — which resident way a full set gives up (replacement.h)
//   fill        — which ways a requester may claim, and whether the miss is
//                 admitted at all (all / partition / random)
//
// Storage is struct-of-arrays: three contiguous planes indexed by set —
//   tag plane   tags_[set * ways + way], the full line index per way
//               (all-ones sentinel = invalid), probed as one SIMD compare
//               over the set's row (cache/tag_probe.h)
//   meta plane  valid_[set], a bitmask of occupied ways, so free-way scans,
//               occupancy and flush are O(1) bit ops per set
//   PLRU plane  plru_[set], the set's tree-PLRU direction bits packed into
//               one word, so touch/invalidate are two precomputed masks and
//               victim selection walks a register instead of chasing bytes
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/geometry.h"
#include "cache/policy.h"
#include "cache/replacement.h"
#include "common/rng.h"
#include "common/types.h"

namespace meecc::cache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class SetAssocCache {
 public:
  /// Composes the full policy stack named by `config`. The per-set
  /// replacement policies fork from `rng` first (one fork per set, in set
  /// order); the remainder seeds the cache-level rng used by stochastic
  /// policies (random fill admission, skewed victim selection, rekey).
  SetAssocCache(const Geometry& geometry, const PolicyConfig& config, Rng rng);

  /// Classic shape: modulo indexing, all-ways fill, `replacement`.
  SetAssocCache(const Geometry& geometry, ReplacementKind replacement, Rng rng);

  /// Deep copy (snapshot/fork support): copies all three planes and clones
  /// the policy objects so the copy replays the identical victim/admission
  /// streams. Throws CheckFailure when an externally registered policy
  /// doesn't implement clone(). Declaring the copy pair suppresses the
  /// implicit moves, so they're re-defaulted explicitly.
  SetAssocCache(const SetAssocCache& other);
  SetAssocCache& operator=(const SetAssocCache& other);
  SetAssocCache(SetAssocCache&&) = default;
  SetAssocCache& operator=(SetAssocCache&&) = default;

  /// Probe without side effects: is the line resident?
  bool contains(PhysAddr addr) const;

  /// Lookup: on hit updates replacement state and returns true.
  /// Does NOT fill on miss (call fill()).
  bool lookup(PhysAddr addr);

  /// Inserts the line, evicting if needed. Returns the evicted line's base
  /// address, if a valid line was displaced. `allowed` restricts candidate
  /// victim ways and is intersected with the fill policy's mask for
  /// `requester` (the line itself may still hit in a disallowed way). A
  /// stochastic fill policy may decline the miss entirely (no install, no
  /// eviction).
  std::optional<PhysAddr> fill(PhysAddr addr, WayMask allowed = kAllWays,
                               CoreId requester = CoreId{0});

  /// fill() for a line the caller just observed missing (its lookup()
  /// returned false and nothing touched the cache since): skips the
  /// redundant residency probe that fill() runs before picking a victim.
  /// Behavior is otherwise identical to fill().
  std::optional<PhysAddr> fill_after_miss(PhysAddr addr,
                                          WayMask allowed = kAllWays,
                                          CoreId requester = CoreId{0});

  /// Convenience: lookup, then fill on miss. Returns true on hit.
  bool access(PhysAddr addr, WayMask allowed = kAllWays,
              CoreId requester = CoreId{0});

  /// Removes the line if present (clflush / back-invalidation).
  bool invalidate(PhysAddr addr);

  void flush_all();

  /// Flush everything and install a fresh indexing key (CEASER-style
  /// rekey): residents mapped under the old key would be unfindable, so
  /// correctness requires the flush. No-op key-wise for keyless indexing.
  void rekey();

  const Geometry& geometry() const { return geometry_; }
  const IndexingPolicy& indexing() const { return *indexing_; }
  const FillPolicy& fill_policy() const { return *fill_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats();

  /// Number of valid lines currently in `set` (for tests / introspection).
  std::uint32_t occupancy(std::uint64_t set) const;

  /// Resident line base addresses in `set`, in way order.
  std::vector<PhysAddr> resident_lines(std::uint64_t set) const;

  /// Cumulative conflict evictions per set — the defender-visible signature
  /// a covert channel cannot avoid concentrating into its contested set
  /// (channel/detector.h).
  const std::vector<std::uint64_t>& evictions_per_set() const {
    return set_evictions_;
  }

  /// Snapshot wire format: writes / overwrites the mutable payload (tag and
  /// meta planes, PLRU words or per-set policy state, indexing key, per-set
  /// eviction tallies, stats, cache-level RNG). decode_state() runs on a
  /// cache freshly constructed from the same geometry + config — the shape
  /// (plane sizes, policy kinds, precomputed masks) comes from construction,
  /// never from the wire.
  void encode_state(io::Writer& w) const;
  void decode_state(io::Reader& r);

  /// O(touched) rewind for the snapshot-restore hot path. Precondition
  /// (the caller's to guarantee — Hierarchy::import_state keys it on the
  /// State image id): this cache was byte-identical to `baseline` the last
  /// time its dirty tracking was reset, and has only been mutated through
  /// its own members since. Copies back just the sets dirtied since then,
  /// plus the (tiny) stats and RNG, instead of the full planes. Returns
  /// false without touching anything when the per-set path cannot prove
  /// itself sound — tracking was widened to "everything" (flush_all, rekey,
  /// reset_stats, decode_state) or the replacement policy keeps out-of-plane
  /// state (non-tree-PLRU) — and the caller must full-copy instead.
  bool fast_rewind_to(const SetAssocCache& baseline);

  /// Declares the current contents a clean baseline image: clears the
  /// dirty-set list. Called after any full overwrite (copy assignment and
  /// fast_rewind_to do it themselves).
  void reset_dirty_tracking();

 private:
  /// Empty-slot sentinel. Slots store the full line index (addr /
  /// line_size) whole — a truncated tag cannot reconstruct the evicted
  /// address under a keyed permutation — with this value marking an invalid
  /// way. All-ones is unreachable as a real index for any line size > 1,
  /// and folding validity into the index keeps each set's ways in one
  /// compact 8-byte-per-way row for the SIMD tag probe.
  static constexpr std::uint64_t kInvalidLine = ~std::uint64_t{0};

  struct Slot {
    std::uint64_t set = 0;
    std::uint32_t way = 0;
  };

  std::uint64_t& tag_at(std::uint64_t set, std::uint32_t way);
  std::uint64_t tag_at(std::uint64_t set, std::uint32_t way) const;
  std::optional<Slot> find_slot(std::uint64_t line) const;
  Slot pick_victim(std::uint64_t line, WayMask allowed);
  std::optional<PhysAddr> fill_impl(PhysAddr addr, WayMask allowed,
                                    CoreId requester, bool check_resident);

  /// Replacement-state entry points. Tree-PLRU — the default policy on
  /// every modelled cache — lives packed in the plru_ plane and is handled
  /// inline; other policies dispatch to the per-set policy_ objects.
  void policy_touch(std::uint64_t set, std::uint32_t way);
  std::uint32_t policy_victim(std::uint64_t set);
  void policy_invalidate(std::uint64_t set, std::uint32_t way);

  /// Precomputes the per-way PLRU update masks (the node path and bit
  /// values a touch/invalidate writes depend only on the way index).
  void build_plru_masks();

  /// Re-derives the devirtualized shortcuts (way_dependent_, direct set
  /// mask) from indexing_. Called at construction and after rekey().
  void refresh_indexing_shortcuts();
  std::uint64_t line_index_of(PhysAddr addr) const {
    return addr.raw >> line_shift_;
  }

  Geometry geometry_;
  std::unique_ptr<IndexingPolicy> indexing_;
  std::unique_ptr<FillPolicy> fill_;
  /// Tag plane: sets * ways line indices, row-major by set.
  std::vector<std::uint64_t> tags_;
  /// Meta plane: per-set bitmask of occupied ways (bit w == way w valid).
  /// Mirrors tags_ != kInvalidLine; kept coherent by fill/invalidate/flush.
  std::vector<std::uint64_t> valid_;
  /// One policy object per set — empty when flat_plru_ is set (the
  /// per-set RNG forks are still drawn so sibling streams don't shift).
  std::vector<std::unique_ptr<ReplacementPolicy>> policy_;
  /// PLRU plane: tree-PLRU direction bits, (ways - 1) of them packed into
  /// one word per set (bit i == node i), when flat_plru_. Same update rules
  /// as replacement.cc's TreePlruPolicy, kept packed so a touch is one
  /// load, two masks and one store.
  std::vector<std::uint64_t> plru_;
  /// touch(way): plru = (plru & ~plru_path_[way]) | plru_touch_[way];
  /// invalidate(way): ... | plru_point_[way] (points AT the way instead).
  std::vector<std::uint64_t> plru_path_;
  std::vector<std::uint64_t> plru_touch_;
  std::vector<std::uint64_t> plru_point_;
  bool flat_plru_ = false;
  std::uint32_t plru_depth_ = 0;  // log2(ways)
  std::vector<std::uint64_t> set_evictions_;
  CacheStats stats_;
  /// log2(line_size); validate() guarantees a power-of-two line size, so
  /// every addr→line-index division on the access paths becomes a shift.
  std::uint32_t line_shift_ = 0;
  /// Low `ways` bits set — the universe for valid_/allowed intersections.
  std::uint64_t ways_mask_ = 0;
  bool way_dependent_ = false;
  /// When the indexing policy is the classic modulo design its set mapping
  /// is inlined as `line & direct_mask_`, skipping the virtual call on
  /// every lookup/fill/invalidate (the dominant cost in covert-channel
  /// runs, which are one long clflush+probe loop).
  bool direct_modulo_ = false;
  std::uint64_t direct_mask_ = 0;
  /// True for the default "all" fill policy: every miss admitted, all ways
  /// allowed, so fill() skips both of its per-miss virtual calls.
  bool fill_passthrough_ = false;
  /// Forked last in the constructor; the default (modulo / all-ways) stack
  /// never draws from it, keeping legacy streams byte-identical.
  Rng rng_;

  /// Dirty-set tracking for fast_rewind_to(): every mutating access stamps
  /// its set with the current generation and (first time per generation)
  /// records it in dirty_sets_. A generation bump is the O(1) "mark all
  /// clean"; dirty_sets_ keeps its capacity across trials so steady-state
  /// tracking allocates nothing.
  void mark_dirty(std::uint64_t set) {
    if (set_stamp_[set] == stamp_gen_) return;
    set_stamp_[set] = stamp_gen_;
    dirty_sets_.push_back(static_cast<std::uint32_t>(set));
  }
  std::vector<std::uint32_t> dirty_sets_;
  std::vector<std::uint64_t> set_stamp_;
  std::uint64_t stamp_gen_ = 1;
  /// Set by whole-cache mutations that bypass per-set tracking; forces the
  /// next restore to full-copy.
  bool all_dirty_ = false;
};

}  // namespace meecc::cache
