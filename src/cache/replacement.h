// Per-set replacement policies.
//
// The MEE cache's policy is not public; the paper infers "approximate LRU"
// (§5.3) from the fact that a single forward pass over an eviction set does
// not reliably flush the set — the forward+backward two-phase eviction exists
// to defeat exactly that. Tree-PLRU reproduces that behaviour, so it is the
// default for the MEE cache; true LRU, NRU and random are provided for the
// CPU hierarchy and for ablations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace meecc::cache {

enum class ReplacementKind { kLru, kTreePlru, kNru, kRandom };

std::string_view to_string(ReplacementKind kind);

/// Inverse of to_string; throws CheckFailure on unknown names.
ReplacementKind replacement_from_name(std::string_view name);
bool is_replacement_policy(std::string_view name);
/// All replacement names, sorted (CLI discoverability).
std::vector<std::string> replacement_names();

/// Replacement state for a single set of `ways` ways.
/// Way indices are dense [0, ways).
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Records a hit or fill on `way`.
  virtual void touch(std::uint32_t way) = 0;
  /// Chooses the way to evict (caller fills it and then calls touch()).
  virtual std::uint32_t victim() = 0;
  /// Forgets any use history for `way` (invalidation).
  virtual void invalidate(std::uint32_t way) = 0;

  /// Deep copy including RNG state, so a forked cache replays the same
  /// victim/tie-break stream as the original (snapshot/fork support).
  virtual std::unique_ptr<ReplacementPolicy> clone() const = 0;

  /// Snapshot wire format: writes/overwrites the policy's mutable state
  /// only — the shape (kind, way count) is rebuilt by the caller from
  /// config, so decode_state is called on a freshly constructed policy of
  /// the same kind and ways. The defaults throw CheckFailure: an externally
  /// registered policy without codec support makes the owning cache
  /// unserializable, mirroring the clone() contract.
  virtual void encode_state(io::Writer& w) const;
  virtual void decode_state(io::Reader& r);
};

/// Factory. `rng` is consumed by stochastic policies (kRandom, NRU tie-break).
std::unique_ptr<ReplacementPolicy> make_policy(ReplacementKind kind,
                                               std::uint32_t ways, Rng rng);

}  // namespace meecc::cache
