// Set-associative cache geometry: size/ways/line → sets, index, tag.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace meecc::cache {

struct Geometry {
  std::uint64_t size_bytes = 0;
  std::uint32_t ways = 0;
  std::uint32_t line_size = kLineSize;

  std::uint64_t lines() const { return size_bytes / line_size; }
  std::uint64_t sets() const { return lines() / ways; }

  /// Physical set index for an address (physically-indexed caches only).
  std::uint64_t set_index(PhysAddr a) const {
    return (a.raw / line_size) % sets();
  }
  /// Tag (full line index above the set bits).
  std::uint64_t tag(PhysAddr a) const { return (a.raw / line_size) / sets(); }
  /// Reconstructs the line base address from (tag, set).
  PhysAddr line_address(std::uint64_t tag_value, std::uint64_t set) const {
    return PhysAddr{(tag_value * sets() + set) * line_size};
  }

  /// Validates power-of-two invariants; throws CheckFailure if violated.
  void validate() const;
};

/// The MEE cache organization the paper reverse engineers (§4):
/// 64 KB, 8-way set-associative, 128 sets, 64 B lines.
inline Geometry mee_cache_geometry() {
  return Geometry{.size_bytes = 64 * 1024, .ways = 8, .line_size = 64};
}

}  // namespace meecc::cache
