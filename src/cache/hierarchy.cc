#include "cache/hierarchy.h"

#include <atomic>

#include "common/check.h"

namespace meecc::cache {

std::string_view to_string(HitLevel level) {
  switch (level) {
    case HitLevel::kL1:
      return "L1";
    case HitLevel::kL2:
      return "L2";
    case HitLevel::kLlc:
      return "LLC";
    case HitLevel::kMemory:
      return "memory";
  }
  return "?";
}

Hierarchy::Hierarchy(const HierarchyConfig& config, unsigned core_count,
                     Rng rng, obs::Hub* hub)
    : config_(config), hub_(hub) {
  MEECC_CHECK(core_count > 0);
  for (unsigned c = 0; c < core_count; ++c) {
    l1_.push_back(std::make_unique<SetAssocCache>(config_.l1,
                                                  config_.l1_policy,
                                                  rng.fork()));
    l2_.push_back(std::make_unique<SetAssocCache>(config_.l2,
                                                  config_.l2_policy,
                                                  rng.fork()));
  }
  llc_ = std::make_unique<SetAssocCache>(config_.llc, config_.llc_policy,
                                         rng.fork());
  if (hub_ != nullptr) {
    auto& registry = hub_->registry();
    l1_counters_ = {registry.counter("cache.l1", "hits"),
                    registry.counter("cache.l1", "misses")};
    l2_counters_ = {registry.counter("cache.l2", "hits"),
                    registry.counter("cache.l2", "misses")};
    llc_counters_ = {registry.counter("cache.llc", "hits"),
                     registry.counter("cache.llc", "misses")};
    llc_evictions_ = registry.counter("cache.llc", "evictions");
    clflushes_ = registry.counter("cache", "clflushes");
  }
}

HierarchyResult Hierarchy::access(CoreId core, PhysAddr addr, Cycles now) {
  MEECC_CHECK(core.value < l1_.size());
  const PhysAddr line = addr.line_base();
  auto& l1 = *l1_[core.value];
  auto& l2 = *l2_[core.value];

  if (l1.lookup(line)) {
    l1_counters_.hits.inc();
    return {HitLevel::kL1, config_.l1_latency};
  }
  l1_counters_.misses.inc();

  if (l2.lookup(line)) {
    l2_counters_.hits.inc();
    // Every fill below a missed level uses fill_after_miss: the lookup
    // above just proved the line absent and nothing touched that cache in
    // between, so the residency re-probe inside fill() would be wasted.
    l1.fill_after_miss(line);
    return {HitLevel::kL2, config_.l2_latency};
  }
  l2_counters_.misses.inc();

  if (llc_->lookup(line)) {
    llc_counters_.hits.inc();
    l2.fill_after_miss(line);
    l1.fill_after_miss(line);
    return {HitLevel::kLlc, config_.llc_latency};
  }
  llc_counters_.misses.inc();

  // Miss everywhere: fill inclusive, honoring back-invalidation. The LLC
  // fill carries the requesting core so a partitioned/random fill policy on
  // the shared level can tell tenants apart.
  if (const auto evicted = llc_->fill_after_miss(line, kAllWays, core)) {
    llc_evictions_.inc();
    if (hub_ != nullptr && hub_->tracing())
      hub_->trace({.cycle = now,
                   .component = obs::Component::kCache,
                   .core = core.value,
                   .addr = evicted->raw,
                   .kind = "evict",
                   .outcome = "LLC"});
    back_invalidate(*evicted);
  }
  // Still safe after the LLC fill: back_invalidate only removed the evicted
  // victim, which cannot be `line` (it was absent when the victim was
  // picked), so `line` remains missing from L2/L1 here.
  l2.fill_after_miss(line);
  l1.fill_after_miss(line);
  return {HitLevel::kMemory, config_.llc_latency};
}

Cycles Hierarchy::clflush(PhysAddr addr) {
  const PhysAddr line = addr.line_base();
  clflushes_.inc();
  llc_->invalidate(line);
  back_invalidate(line);
  return config_.clflush_latency;
}

bool Hierarchy::resident(PhysAddr addr) const {
  const PhysAddr line = addr.line_base();
  if (llc_->contains(line)) return true;
  for (std::size_t c = 0; c < l1_.size(); ++c) {
    if (l1_[c]->contains(line) || l2_[c]->contains(line)) return true;
  }
  return false;
}

void Hierarchy::back_invalidate(PhysAddr addr) {
  for (std::size_t c = 0; c < l1_.size(); ++c) {
    l1_[c]->invalidate(addr);
    l2_[c]->invalidate(addr);
  }
}

void Hierarchy::flush_all() {
  llc_->flush_all();
  for (std::size_t c = 0; c < l1_.size(); ++c) {
    l1_[c]->flush_all();
    l2_[c]->flush_all();
  }
}

Hierarchy::State Hierarchy::export_state() const {
  static std::atomic<std::uint64_t> next_image_id{1};
  State state;
  state.image_id = next_image_id.fetch_add(1, std::memory_order_relaxed);
  state.l1.reserve(l1_.size());
  state.l2.reserve(l2_.size());
  for (std::size_t c = 0; c < l1_.size(); ++c) {
    state.l1.push_back(*l1_[c]);
    state.l2.push_back(*l2_[c]);
  }
  state.llc.push_back(*llc_);
  return state;
}

void Hierarchy::import_state(const State& state) {
  MEECC_CHECK(state.l1.size() == l1_.size() && state.l2.size() == l2_.size() &&
              state.llc.size() == 1);
  // Re-importing the image we already hold (modulo whatever ran since):
  // rewind only the dirtied sets. A cache that can't prove the per-set
  // path sound (flush_all ran, non-PLRU policy) falls back to full copy
  // individually; either way the result is the imported image.
  const bool rewind = state.image_id != 0 && state.image_id == last_import_id_;
  const auto apply = [rewind](SetAssocCache& live, const SetAssocCache& src) {
    if (rewind && live.fast_rewind_to(src)) return;
    live = src;
  };
  for (std::size_t c = 0; c < l1_.size(); ++c) {
    apply(*l1_[c], state.l1[c]);
    apply(*l2_[c], state.l2[c]);
  }
  apply(*llc_, state.llc[0]);
  last_import_id_ = state.image_id;
}

}  // namespace meecc::cache
