#include "cache/hierarchy.h"

#include "common/check.h"

namespace meecc::cache {

std::string_view to_string(HitLevel level) {
  switch (level) {
    case HitLevel::kL1:
      return "L1";
    case HitLevel::kL2:
      return "L2";
    case HitLevel::kLlc:
      return "LLC";
    case HitLevel::kMemory:
      return "memory";
  }
  return "?";
}

Hierarchy::Hierarchy(const HierarchyConfig& config, unsigned core_count,
                     Rng rng)
    : config_(config) {
  MEECC_CHECK(core_count > 0);
  for (unsigned c = 0; c < core_count; ++c) {
    l1_.push_back(std::make_unique<SetAssocCache>(
        config_.l1, config_.l1_replacement, rng.fork()));
    l2_.push_back(std::make_unique<SetAssocCache>(
        config_.l2, config_.l2_replacement, rng.fork()));
  }
  llc_ = std::make_unique<SetAssocCache>(config_.llc, config_.llc_replacement,
                                         rng.fork());
}

HierarchyResult Hierarchy::access(CoreId core, PhysAddr addr) {
  MEECC_CHECK(core.value < l1_.size());
  const PhysAddr line = addr.line_base();
  auto& l1 = *l1_[core.value];
  auto& l2 = *l2_[core.value];

  if (l1.lookup(line)) return {HitLevel::kL1, config_.l1_latency};

  if (l2.lookup(line)) {
    l1.fill(line);
    return {HitLevel::kL2, config_.l2_latency};
  }

  if (llc_->lookup(line)) {
    l2.fill(line);
    l1.fill(line);
    return {HitLevel::kLlc, config_.llc_latency};
  }

  // Miss everywhere: fill inclusive, honoring back-invalidation.
  if (const auto evicted = llc_->fill(line)) back_invalidate(*evicted);
  l2.fill(line);
  l1.fill(line);
  return {HitLevel::kMemory, config_.llc_latency};
}

Cycles Hierarchy::clflush(PhysAddr addr) {
  const PhysAddr line = addr.line_base();
  llc_->invalidate(line);
  back_invalidate(line);
  return config_.clflush_latency;
}

bool Hierarchy::resident(PhysAddr addr) const {
  const PhysAddr line = addr.line_base();
  if (llc_->contains(line)) return true;
  for (std::size_t c = 0; c < l1_.size(); ++c) {
    if (l1_[c]->contains(line) || l2_[c]->contains(line)) return true;
  }
  return false;
}

void Hierarchy::back_invalidate(PhysAddr addr) {
  for (std::size_t c = 0; c < l1_.size(); ++c) {
    l1_[c]->invalidate(addr);
    l2_[c]->invalidate(addr);
  }
}

void Hierarchy::flush_all() {
  llc_->flush_all();
  for (std::size_t c = 0; c < l1_.size(); ++c) {
    l1_[c]->flush_all();
    l2_[c]->flush_all();
  }
}

}  // namespace meecc::cache
