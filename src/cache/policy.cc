#include "cache/policy.h"

#include <algorithm>
#include <bit>
#include <map>

#include "common/check.h"

namespace meecc::cache {

std::uint64_t keyed_line_permutation(std::uint64_t line, std::uint64_t key) {
  // Every step is a bijection on u64: add, xor-shift, odd-constant multiply.
  std::uint64_t x = line + key;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

WayMask way_partition_mask(std::uint32_t ways, CoreId core) {
  MEECC_CHECK_MSG(ways >= 2 && ways % 2 == 0,
                  "way partitioning needs an even way count, got " << ways);
  const WayMask low_half = (WayMask{1} << (ways / 2)) - 1;
  return core.value % 2 == 0 ? low_half : low_half << (ways / 2);
}

namespace {

std::uint64_t set_mask(const Geometry& geometry) {
  MEECC_CHECK(std::has_single_bit(geometry.sets()));
  return geometry.sets() - 1;
}

/// Classic physically-indexed cache: low line-index bits select the set.
class ModuloIndexing final : public IndexingPolicy {
 public:
  explicit ModuloIndexing(const Geometry& geometry) : mask_(set_mask(geometry)) {}

  std::string_view name() const override { return "modulo"; }
  std::uint64_t set_of(std::uint64_t line, std::uint32_t) const override {
    return line & mask_;
  }
  std::optional<std::uint64_t> modulo_mask() const override { return mask_; }

  std::unique_ptr<IndexingPolicy> clone() const override {
    return std::make_unique<ModuloIndexing>(*this);
  }

 private:
  std::uint64_t mask_;
};

/// CEASER-style keyed indexing: the line index passes through a keyed
/// permutation before the set bits are taken, so congruence classes are
/// secret and change on every rekey.
class KeyedIndexing final : public IndexingPolicy {
 public:
  KeyedIndexing(const Geometry& geometry, std::uint64_t key)
      : mask_(set_mask(geometry)), key_(key) {}

  std::string_view name() const override { return "keyed"; }
  std::uint64_t set_of(std::uint64_t line, std::uint32_t) const override {
    return keyed_line_permutation(line, key_) & mask_;
  }
  void rekey(std::uint64_t fresh_key) override { key_ = fresh_key; }
  std::optional<std::uint64_t> current_key() const override { return key_; }

  std::unique_ptr<IndexingPolicy> clone() const override {
    return std::make_unique<KeyedIndexing>(*this);
  }

 private:
  std::uint64_t mask_;
  std::uint64_t key_;
};

/// Skewed indexing: the ways split into `partitions` groups, each with its
/// own keyed permutation — an address conflicts with different addresses in
/// every group, so a single eviction set cannot cover all ways.
class SkewedIndexing final : public IndexingPolicy {
 public:
  SkewedIndexing(const Geometry& geometry, std::uint64_t key,
                 std::uint32_t partitions)
      : mask_(set_mask(geometry)),
        key_(key),
        partitions_(std::min(partitions, geometry.ways)),
        ways_per_partition_((geometry.ways + partitions_ - 1) / partitions_) {
    MEECC_CHECK_MSG(partitions_ >= 1, "skewed indexing needs >= 1 partition");
  }

  std::string_view name() const override { return "skewed"; }
  std::uint64_t set_of(std::uint64_t line, std::uint32_t way) const override {
    const std::uint64_t group = way / ways_per_partition_;
    // Distinct odd tweak per group keeps the per-group permutations
    // independent under one key.
    return keyed_line_permutation(line, key_ ^ ((2 * group + 1) *
                                                0x9e3779b97f4a7c15ULL)) &
           mask_;
  }
  bool way_dependent() const override { return partitions_ > 1; }
  void rekey(std::uint64_t fresh_key) override { key_ = fresh_key; }
  std::optional<std::uint64_t> current_key() const override { return key_; }

  std::unique_ptr<IndexingPolicy> clone() const override {
    return std::make_unique<SkewedIndexing>(*this);
  }

 private:
  std::uint64_t mask_;
  std::uint64_t key_;
  std::uint32_t partitions_;
  std::uint32_t ways_per_partition_;
};

class AllWaysFill final : public FillPolicy {
 public:
  std::string_view name() const override { return "all"; }
  bool passthrough() const override { return true; }
  std::unique_ptr<FillPolicy> clone() const override {
    return std::make_unique<AllWaysFill>(*this);
  }
};

/// Way partitioning by requesting core (CATalyst-style, §5.5): even cores
/// may only claim the low half of the ways, odd cores the high half.
class PartitionFill final : public FillPolicy {
 public:
  explicit PartitionFill(std::uint32_t ways) : ways_(ways) {
    (void)way_partition_mask(ways_, CoreId{0});  // validate the shape once
  }

  std::string_view name() const override { return "partition"; }
  WayMask allowed_ways(CoreId requester) const override {
    return way_partition_mask(ways_, requester);
  }

  std::unique_ptr<FillPolicy> clone() const override {
    return std::make_unique<PartitionFill>(*this);
  }

 private:
  std::uint32_t ways_;
};

/// Random fill: each miss is admitted with probability p; bypassed misses
/// leave the set untouched, which starves contention-based channels of
/// deterministic evictions at the cost of a lower hit rate.
class RandomFill final : public FillPolicy {
 public:
  explicit RandomFill(double probability) : probability_(probability) {
    MEECC_CHECK_MSG(probability_ >= 0.0 && probability_ <= 1.0,
                    "fill probability must be in [0,1], got " << probability_);
  }

  std::string_view name() const override { return "random"; }
  bool admits(CoreId, Rng& rng) override { return rng.chance(probability_); }

  std::unique_ptr<FillPolicy> clone() const override {
    return std::make_unique<RandomFill>(*this);
  }

 private:
  double probability_;
};

// Function-local registries so library init order cannot bite; built-ins
// are installed on first use and user registrations layer on top.
std::map<std::string, IndexingFactory, std::less<>>& indexing_registry() {
  static std::map<std::string, IndexingFactory, std::less<>> registry = [] {
    std::map<std::string, IndexingFactory, std::less<>> builtins;
    builtins["modulo"] = [](const PolicyConfig&, const Geometry& g) {
      return std::unique_ptr<IndexingPolicy>(new ModuloIndexing(g));
    };
    builtins["keyed"] = [](const PolicyConfig& c, const Geometry& g) {
      return std::unique_ptr<IndexingPolicy>(new KeyedIndexing(g, c.index_key));
    };
    builtins["skewed"] = [](const PolicyConfig& c, const Geometry& g) {
      return std::unique_ptr<IndexingPolicy>(
          new SkewedIndexing(g, c.index_key, c.skew_partitions));
    };
    return builtins;
  }();
  return registry;
}

std::map<std::string, FillFactory, std::less<>>& fill_registry() {
  static std::map<std::string, FillFactory, std::less<>> registry = [] {
    std::map<std::string, FillFactory, std::less<>> builtins;
    builtins["all"] = [](const PolicyConfig&, const Geometry&) {
      return std::unique_ptr<FillPolicy>(new AllWaysFill);
    };
    builtins["partition"] = [](const PolicyConfig&, const Geometry& g) {
      return std::unique_ptr<FillPolicy>(new PartitionFill(g.ways));
    };
    builtins["random"] = [](const PolicyConfig& c, const Geometry&) {
      return std::unique_ptr<FillPolicy>(new RandomFill(c.fill_probability));
    };
    return builtins;
  }();
  return registry;
}

template <typename Registry>
std::vector<std::string> sorted_names(const Registry& registry) {
  std::vector<std::string> names;
  names.reserve(registry.size());
  for (const auto& [name, factory] : registry) names.push_back(name);
  return names;  // std::map iterates sorted
}

}  // namespace

void register_indexing_policy(std::string name, IndexingFactory factory) {
  indexing_registry()[std::move(name)] = std::move(factory);
}

void register_fill_policy(std::string name, FillFactory factory) {
  fill_registry()[std::move(name)] = std::move(factory);
}

bool is_indexing_policy(std::string_view name) {
  return indexing_registry().find(name) != indexing_registry().end();
}

bool is_fill_policy(std::string_view name) {
  return fill_registry().find(name) != fill_registry().end();
}

std::vector<std::string> indexing_policy_names() {
  return sorted_names(indexing_registry());
}

std::vector<std::string> fill_policy_names() {
  return sorted_names(fill_registry());
}

std::unique_ptr<IndexingPolicy> make_indexing_policy(const PolicyConfig& config,
                                                     const Geometry& geometry) {
  const auto it = indexing_registry().find(config.indexing);
  MEECC_CHECK_MSG(it != indexing_registry().end(),
                  "unknown indexing policy '" << config.indexing << "'");
  return it->second(config, geometry);
}

std::unique_ptr<FillPolicy> make_fill_policy(const PolicyConfig& config,
                                             const Geometry& geometry) {
  const auto it = fill_registry().find(config.fill);
  MEECC_CHECK_MSG(it != fill_registry().end(),
                  "unknown fill policy '" << config.fill << "'");
  return it->second(config, geometry);
}

}  // namespace meecc::cache
