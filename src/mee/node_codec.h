// Wire format of 64 B integrity-tree node lines and PD_Tag lines.
//
// Tree node line (versions / L0 / L1 / L2):
//   bytes 0..55   — 8 × 56-bit counters, little-endian, 7 bytes each
//   bytes 56..62  — 56-bit embedded MAC (keyed by the parent's counter)
//   byte  63      — reserved (zero)
//
// PD_Tag line: 8 × 56-bit MAC tags (7 bytes each), one per data line of the
// covered chunk; byte 56..63 reserved.
//
// The all-zero line is the genesis state: counters zero, MAC zero. It is
// accepted as valid iff the parent counter is also zero (lazy tree
// initialization — real hardware initializes counters on first EPC use).
#pragma once

#include <array>
#include <cstdint>

#include "mem/physical_memory.h"
#include "mee/levels.h"

namespace meecc::mee {

inline constexpr std::uint64_t kCounterMask = (1ULL << 56) - 1;

struct TreeNode {
  std::array<std::uint64_t, kTreeArity> counters{};  // 56-bit each
  std::uint64_t mac = 0;                             // 56-bit embedded MAC

  bool is_genesis() const;
};

struct TagLine {
  std::array<std::uint64_t, kTreeArity> tags{};  // 56-bit each
};

TreeNode decode_node(const mem::Line& line);
mem::Line encode_node(const TreeNode& node);

/// Decodes just field `i` of a node or tag line: counter/tag slots 0..7, or
/// 8 for a node's embedded MAC. The walk and peek paths use this to read a
/// single counter without decoding the other eight fields.
std::uint64_t decode_field56(const mem::Line& line, std::uint32_t i);

TagLine decode_tags(const mem::Line& line);
mem::Line encode_tags(const TagLine& tags);

/// Serializes just the counters (the MAC'd payload of a node).
std::array<std::uint8_t, 64> counter_payload(const TreeNode& node);

}  // namespace meecc::mee
