// Integrity-tree level identifiers.
//
// The tree is arity-8 over 64 B nodes (Gueron, 2016):
//   versions line  — 8×56-bit counters, one per 64 B data line (covers 512 B)
//   L0 line        — 8 counters, one per versions line   (covers 4 KB)
//   L1 line        — 8 counters, one per L0 line         (covers 32 KB)
//   L2 line        — 8 counters, one per L1 line         (covers 256 KB)
//   root           — one counter per L2 line, in on-die SRAM (trusted)
#pragma once

#include <cstdint>
#include <string_view>

namespace meecc::mee {

enum class Level : std::uint8_t {
  kVersions = 0,
  kL0 = 1,
  kL1 = 2,
  kL2 = 3,
  kRoot = 4,
};

inline constexpr int kTreeArity = 8;
inline constexpr int kDramLevels = 4;  // versions..L2 live in DRAM

constexpr std::string_view to_string(Level level) {
  switch (level) {
    case Level::kVersions:
      return "versions";
    case Level::kL0:
      return "L0";
    case Level::kL1:
      return "L1";
    case Level::kL2:
      return "L2";
    case Level::kRoot:
      return "root";
  }
  return "?";
}

/// Where a protected-data access's verification walk stopped: the first tree
/// level that hit in the MEE cache (or the root). Lower stop level = fewer
/// DRAM node fetches = lower latency; this enum IS the Fig. 5 x-axis.
using StopLevel = Level;

}  // namespace meecc::mee
