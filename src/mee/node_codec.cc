#include "mee/node_codec.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace meecc::mee {
namespace {

// Loads 8 bytes and masks to 56 bits: one word load instead of the
// byte-assembled 7-byte copy. Every caller points into a 64 B line at
// offset 7*i (i <= 8), so the trailing extra byte is always in bounds.
std::uint64_t load56(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v & kCounterMask;
}

void store56(std::uint8_t* p, std::uint64_t v) {
  MEECC_CHECK_MSG((v & ~kCounterMask) == 0, "56-bit field overflow");
  std::memcpy(p, &v, 7);
}

}  // namespace

bool TreeNode::is_genesis() const {
  return mac == 0 && std::all_of(counters.begin(), counters.end(),
                                 [](std::uint64_t c) { return c == 0; });
}

std::uint64_t decode_field56(const mem::Line& line, std::uint32_t i) {
  MEECC_CHECK(i <= kTreeArity);
  return load56(line.data() + 7 * i);
}

TreeNode decode_node(const mem::Line& line) {
  TreeNode node;
  for (int i = 0; i < kTreeArity; ++i)
    node.counters[i] = load56(line.data() + 7 * i);
  node.mac = load56(line.data() + 56);
  return node;
}

mem::Line encode_node(const TreeNode& node) {
  mem::Line line{};
  for (int i = 0; i < kTreeArity; ++i)
    store56(line.data() + 7 * i, node.counters[i]);
  store56(line.data() + 56, node.mac);
  return line;
}

TagLine decode_tags(const mem::Line& line) {
  TagLine tags;
  for (int i = 0; i < kTreeArity; ++i) tags.tags[i] = load56(line.data() + 7 * i);
  return tags;
}

mem::Line encode_tags(const TagLine& tags) {
  mem::Line line{};
  for (int i = 0; i < kTreeArity; ++i) store56(line.data() + 7 * i, tags.tags[i]);
  return line;
}

std::array<std::uint8_t, 64> counter_payload(const TreeNode& node) {
  std::array<std::uint8_t, 64> payload{};
  for (int i = 0; i < kTreeArity; ++i)
    store56(payload.data() + 7 * i, node.counters[i]);
  // Bytes 56..63 stay zero: the embedded MAC is not part of its own payload.
  return payload;
}

}  // namespace meecc::mee
