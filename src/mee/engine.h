// The Memory Encryption Engine model.
//
// Sits "inside the memory controller": every access that reaches DRAM inside
// the protected data region goes through the engine, which
//   1. walks the integrity tree bottom-up (versions → L0 → L1 → L2 → root),
//      stopping at the FIRST level that hits in the MEE cache — a cached node
//      was verified when it was brought in, so the chain of trust is complete
//      (paper §2.2). The versions level is ALWAYS checked first, which is why
//      the paper builds its channel on versions lines (§3 challenge 2);
//   2. verifies the embedded MAC of every node fetched from DRAM, top-down,
//      each keyed by its (now trusted) parent counter;
//   3. verifies the data line's PD_Tag MAC and de/encrypts with AES-CTR under
//      the (address, version) compound nonce;
//   4. charges latency: a versions hit costs `versions_hit_extra` on top of
//      the DRAM data fetch; every tree node fetched from DRAM adds
//      `per_level_step` (partially-overlapped fetches — Fig. 5's ~65-cycle
//      spacing between adjacent hit-level peaks).
//
// The MEE cache tracks which node lines are resident/verified; node contents
// always live in simulated DRAM (the cache is a presence + recency model).
// Consequence: tamper tests must target non-resident nodes or flush the MEE
// cache first — same as attacking real hardware after the line aged out.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.h"
#include "common/rng.h"
#include "common/types.h"
#include "crypto/line_cipher.h"
#include "crypto/mac.h"
#include "crypto/multilinear_mac.h"
#include "mem/address_map.h"
#include "mem/physical_memory.h"
#include "mee/levels.h"
#include "mee/node_codec.h"
#include "mee/tree_geometry.h"
#include "obs/hub.h"

namespace meecc::mee {

/// Integrity or freshness violation detected during a verify walk.
class TamperDetected : public std::runtime_error {
 public:
  TamperDetected(Level level, PhysAddr addr);

  Level level() const { return level_; }
  PhysAddr address() const { return addr_; }

 private:
  Level level_;
  PhysAddr addr_;
};

struct MeeLatencyConfig {
  Cycles versions_hit_extra = 156;  ///< MEE pipeline cost on a versions hit
  /// Extra cost of ANY versions miss: the AES-CTR keystream needs the
  /// version counter, so data decryption serializes behind the versions-line
  /// DRAM fetch (mostly un-overlappable — the paper's ≥~270-cycle hit↔miss
  /// gap, §5.1/§5.4).
  Cycles versions_miss_serialization = 200;
  /// Per additional tree level fetched beyond the versions line; these
  /// overlap the MAC pipeline, so the step is smaller (Fig. 5's spacing
  /// between the L0/L1/L2/root peaks).
  Cycles per_level_step = 45;
  double step_jitter_stddev = 5.0;
  Cycles write_update_extra = 85;   ///< counter bump + re-MAC on writes
  /// Engine occupancy per access (AES/MAC work): requests arriving while
  /// the engine is busy queue up. A single well-spaced stream never waits;
  /// a co-tenant hammering the MEE (Fig. 8c/d) makes everyone else's walks
  /// stochastically slower — the "MEE cache is highly utilized" noise the
  /// paper measures.
  Cycles service_base = 60;
  Cycles service_per_node = 60;
};

struct MeeConfig {
  cache::Geometry cache_geometry = cache::mee_cache_geometry();
  /// MEE-cache policy stack (indexing × replacement × fill) plus the
  /// periodic-rekey knob; defaults reproduce the hardware the paper
  /// reverse engineers (modulo / tree-plru / all ways, no rekey).
  cache::PolicyConfig cache_policy;
  MeeLatencyConfig latency;
  /// When false, skips AES/MAC computation (data stored as plaintext) for
  /// timing-only experiments; the walk, caching and latency are identical.
  bool functional_crypto = true;
  /// MAC construction for tree nodes and PD_Tags. The multilinear scheme
  /// mirrors the real MEE's Carter-Wegman design (Gueron, 2016).
  crypto::MacKind mac_kind = crypto::MacKind::kMultilinear;
  /// AES implementation for the line cipher and MACs ("reference",
  /// "ttable", "aesni", or "auto" = fastest this CPU supports). Every
  /// backend computes bit-identical AES, so traces never depend on it.
  std::string aes_backend = std::string(crypto::kAutoBackend);
  /// Cache AES keystreams/MAC pads by (address, version) — a pure host-side
  /// speedup (coherent by construction: a version bump changes the key).
  /// Hits/misses appear as crypto.pad.hit / crypto.pad.miss.
  bool pad_cache = true;
  /// Gather the independent per-level MAC checks of a verify walk and issue
  /// their pad AES through one multi-block call (AesBackend::encrypt_blocks)
  /// instead of node-at-a-time — a pure host-side speedup: verdicts, traces
  /// and counter totals are identical to the serial path (on a tamper the
  /// batch may probe pads the serial path never reaches before throwing the
  /// same first TamperDetected). Off = the serial reference path, kept for
  /// A/B equivalence tests.
  bool batched_walks = true;
  crypto::Key128 data_key{0x10, 0x01, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                          0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  crypto::Key128 mac_key{0x5a, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                         0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
};

struct MeeAccessResult {
  StopLevel stop_level = Level::kRoot;   ///< first MEE-cache hit level
  std::uint32_t nodes_fetched = 0;       ///< tree nodes pulled from DRAM
  Cycles extra_latency = 0;              ///< on top of the data DRAM fetch
};

/// Walk/verify tallies, derived on demand from the obs counters (the
/// counters are the single source of truth; this struct is a convenience
/// view so callers need not know the counter names).
struct MeeStats {
  std::array<std::uint64_t, 5> stops{};  ///< indexed by StopLevel
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t tag_hits = 0;
  std::uint64_t tag_misses = 0;
  std::uint64_t tampers_detected = 0;
};

class MeeEngine {
 public:
  /// `hub` (optional, borrowed) receives walk counters (mee.* groups,
  /// including the per-core stop-level distribution and the even/odd
  /// set-class split between versions-walk and PD_Tag lookups) plus "walk"
  /// trace events; it must outlive the engine.
  MeeEngine(const mem::AddressMap& map, mem::PhysicalMemory& memory,
            const MeeConfig& config, Rng rng, obs::Hub* hub = nullptr);

  /// Sentinel arrival time: "whenever the engine is free" — no queueing.
  /// Unit tests and standalone use default to this; the full-system path
  /// passes the simulated arrival time to model contention.
  static constexpr Cycles kArriveWhenIdle = ~Cycles{0};

  /// Read the 64 B protected line containing `data_addr`; plaintext is
  /// written to *out when non-null. Throws TamperDetected on MAC mismatch.
  MeeAccessResult read_line(CoreId core, PhysAddr data_addr,
                            mem::Line* out = nullptr,
                            Cycles now = kArriveWhenIdle);

  /// Write (encrypt + re-tag + bump the counter chain to the root).
  MeeAccessResult write_line(CoreId core, PhysAddr data_addr,
                             const mem::Line& plaintext,
                             Cycles now = kArriveWhenIdle);

  const TreeGeometry& geometry() const { return geometry_; }
  const cache::SetAssocCache& cache() const { return cache_; }
  cache::SetAssocCache& mutable_cache() { return cache_; }
  /// The MAC scheme. Snapshot serialization borrows it to encode/decode the
  /// type-erased pad state a State carries (sim/snapshot_io.cc).
  crypto::MacScheme& mac_scheme() { return *mac_; }
  /// Snapshot of the walk counters (single source of truth; see MeeStats).
  MeeStats stats() const;
  const MeeConfig& config() const { return config_; }
  /// Completed flush+rekey events (nonzero only with cache_policy.rekey_period).
  std::uint64_t rekeys() const { return rekeys_.value(); }

  /// Current version counter of a data line (tests / diagnostics).
  std::uint64_t version_counter(PhysAddr data_addr) const;

  /// Mutable engine state for snapshot/fork: MEE cache arrays (including
  /// any rekeyed indexing key), on-die root counters, RNG stream,
  /// occupancy horizon, rekey phase, and cipher/MAC pad-cache contents.
  /// Tree-node contents live in the System's PhysicalMemory and are
  /// captured there; obs counter handles stay with the engine.
  struct State {
    cache::SetAssocCache cache;
    std::vector<std::uint64_t> root_counters;
    Rng rng;
    Cycles busy_until = 0;
    std::uint64_t walks_since_rekey = 0;
    crypto::PadCache<crypto::LineData> cipher_pads;
    std::shared_ptr<const void> mac_pads;
  };
  State export_state() const;
  void import_state(const State& state);

 private:
  struct WalkResult {
    StopLevel stop_level = Level::kRoot;
    /// Fetched levels in bottom-up order, versions first. Inline storage:
    /// a walk touches at most kDramLevels nodes and runs millions of times
    /// per experiment, so a heap-backed vector here is an allocation per
    /// walk.
    std::array<Level, kDramLevels> fetched{};
    std::uint32_t fetched_count = 0;
  };

  WalkResult walk_and_verify(CoreId core, std::uint64_t chunk);
  void count_walk(CoreId core, const WalkResult& walk, PhysAddr data_addr,
                  Cycles now, bool is_write);
  std::uint64_t parent_counter(Level level, std::uint64_t chunk) const;
  void verify_node(Level level, std::uint64_t chunk);
  /// Batched equivalent of the top-down verify_node loop over the walk's
  /// fetched nodes (config_.batched_walks): genesis checks run inline, the
  /// MAC checks are gathered into one MacScheme::verify_batch call.
  void verify_walk_batched(const WalkResult& walk, std::uint64_t chunk);
  /// Flush+rekey the MEE cache every cache_policy.rekey_period walks.
  void maybe_rekey();
  Cycles walk_latency(std::uint32_t nodes_fetched);
  /// Queueing delay for a request arriving at `now`; advances busy_until_.
  Cycles occupy_engine(Cycles now, std::uint32_t nodes_fetched);

  const mem::AddressMap& map_;
  mem::PhysicalMemory& memory_;
  MeeConfig config_;
  TreeGeometry geometry_;
  cache::SetAssocCache cache_;
  crypto::LineCipher cipher_;
  std::unique_ptr<crypto::MacScheme> mac_;
  std::vector<std::uint64_t> root_counters_;
  Rng rng_;
  Cycles busy_until_ = 0;
  std::uint64_t walks_since_rekey_ = 0;

  obs::Hub* hub_ = nullptr;
  /// Fallback registry when no hub is attached, so every counter is always
  /// bound and stats() never loses events (the dedup that retired the old
  /// parallel MeeStats bookkeeping depends on this).
  std::unique_ptr<obs::Registry> local_registry_;
  /// Hub registry when attached, else *local_registry_.
  obs::Registry* registry_ = nullptr;
  obs::Counter read_walks_;
  obs::Counter write_walks_;
  obs::Counter nodes_fetched_;
  obs::Counter mac_node_verifies_;
  obs::Counter mac_tag_verifies_;
  obs::Counter versions_class_hits_;
  obs::Counter versions_class_misses_;
  obs::Counter tag_hits_;
  obs::Counter tag_misses_;
  obs::Counter tampers_;
  obs::Counter wait_cycles_;
  obs::Counter rekeys_;
  std::array<obs::Counter, 5> stop_counters_;  ///< indexed by StopLevel
  /// Per-core stop distribution, grown lazily (the engine does not know the
  /// core count). Lets an experiment separate its own walks from co-tenant
  /// noise — mee.core<k>.stop.<level>.
  std::vector<std::array<obs::Counter, 5>> per_core_stops_;
};

}  // namespace meecc::mee
