// Maps protected-data addresses to the DRAM addresses of their integrity
// tree nodes.
//
// Metadata layout inside the MEE metadata region (paper §4.1):
//   [ tag₀ ver₀ tag₁ ver₁ … ]  — PD_Tag and versions lines interleaved, so a
//                                versions line always lands in an ODD cache
//                                set and its PD_Tag in the EVEN set below it.
//   [ L0 lines ][ L1 lines ][ L2 lines ]  — each upper-level node line is
//                                interleaved with a spare/shadow slot and
//                                EVEN-aligned, so upper-level nodes only ever
//                                occupy EVEN cache sets.
//
// The even alignment of the upper levels is our inference from the paper's
// measurements, not a published fact: Fig. 4's eviction probability
// saturates exactly at the versions-capacity knee and Algorithm 1 recovers
// exactly 8 ways, which is only possible if versions lines (odd sets)
// contend almost exclusively with other versions lines — i.e. the L0/L1/L2
// traffic that every 4 KB-stride access also generates must land elsewhere.
//
// One 4 KB EPC page owns 8 chunks → 8 (tag,versions) pairs = a contiguous
// 1 KB metadata window spanning 16 consecutive set indices: the paper's
// "consecutive versions data region" (Fig. 3).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "mem/address_map.h"
#include "mee/levels.h"

namespace meecc::mee {

class TreeGeometry {
 public:
  explicit TreeGeometry(const mem::AddressMap& map);

  std::uint64_t chunk_count() const { return chunks_; }
  std::uint64_t page_count() const { return pages_; }
  std::uint64_t l0_lines() const { return l0_lines_; }
  std::uint64_t l1_lines() const { return l1_lines_; }
  std::uint64_t l2_lines() const { return l2_lines_; }
  /// Root entries (one 56-bit counter per L2 line), held in on-die SRAM.
  std::uint64_t root_entries() const { return l2_lines_; }

  /// 512 B chunk index for a protected-data address.
  std::uint64_t chunk_of(PhysAddr data_addr) const;
  /// Which of the chunk's 8 data lines the address falls in.
  std::uint32_t line_in_chunk(PhysAddr data_addr) const;

  PhysAddr versions_line_addr(std::uint64_t chunk) const;
  PhysAddr tag_line_addr(std::uint64_t chunk) const;
  PhysAddr l0_line_addr(std::uint64_t l0_index) const;  // l0_index = chunk/8
  PhysAddr l1_line_addr(std::uint64_t l1_index) const;
  PhysAddr l2_line_addr(std::uint64_t l2_index) const;

  /// DRAM address of the `level` tree node on the verification path of
  /// `chunk` (level must be a DRAM level, not kRoot).
  PhysAddr node_addr(Level level, std::uint64_t chunk) const;

  /// Index of the node within `level`'s node array for this chunk.
  std::uint64_t node_index(Level level, std::uint64_t chunk) const;

  /// Which counter slot (0..7) inside the PARENT of `level`'s node protects
  /// it. For kVersions the parent is L0, …, for kL2 the parent is the root.
  std::uint32_t slot_in_parent(Level level, std::uint64_t chunk) const;

  const mem::Region& metadata_region() const { return metadata_; }

 private:
  mem::Region protected_data_;
  mem::Region metadata_;
  std::uint64_t chunks_ = 0;
  std::uint64_t pages_ = 0;
  std::uint64_t l0_lines_ = 0;
  std::uint64_t l1_lines_ = 0;
  std::uint64_t l2_lines_ = 0;
  PhysAddr versions_tags_base_;
  PhysAddr l0_base_;
  PhysAddr l1_base_;
  PhysAddr l2_base_;
};

}  // namespace meecc::mee
