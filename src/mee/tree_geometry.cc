#include "mee/tree_geometry.h"

#include "common/check.h"

namespace meecc::mee {

TreeGeometry::TreeGeometry(const mem::AddressMap& map)
    : protected_data_(map.protected_data()), metadata_(map.mee_metadata()) {
  chunks_ = protected_data_.size / kChunkSize;
  pages_ = protected_data_.size / kPageSize;
  l0_lines_ = pages_;  // one L0 line per 8 versions lines = per 4 KB page
  l1_lines_ = (l0_lines_ + kTreeArity - 1) / kTreeArity;
  l2_lines_ = (l1_lines_ + kTreeArity - 1) / kTreeArity;

  versions_tags_base_ = metadata_.base;
  // Upper-level node lines are interleaved with spare slots (2 lines per
  // node) and even-aligned: see the header comment for why.
  l0_base_ = versions_tags_base_ + chunks_ * 2 * kLineSize;
  l1_base_ = l0_base_ + l0_lines_ * 2 * kLineSize;
  l2_base_ = l1_base_ + l1_lines_ * 2 * kLineSize;
  const PhysAddr end = l2_base_ + l2_lines_ * 2 * kLineSize;
  MEECC_CHECK_MSG(end.raw <= metadata_.end().raw,
                  "metadata region too small for tree");
  // The odd/even interleave invariant (paper §4.1) requires the metadata
  // base to start on an even line index.
  MEECC_CHECK(versions_tags_base_.line_index() % 2 == 0);
}

std::uint64_t TreeGeometry::chunk_of(PhysAddr data_addr) const {
  MEECC_CHECK(protected_data_.contains(data_addr));
  return (data_addr - protected_data_.base) / kChunkSize;
}

std::uint32_t TreeGeometry::line_in_chunk(PhysAddr data_addr) const {
  MEECC_CHECK(protected_data_.contains(data_addr));
  return static_cast<std::uint32_t>(
      ((data_addr - protected_data_.base) % kChunkSize) / kLineSize);
}

PhysAddr TreeGeometry::versions_line_addr(std::uint64_t chunk) const {
  MEECC_CHECK(chunk < chunks_);
  // Interleaved [tag, versions] pair: versions second → odd line index.
  return versions_tags_base_ + chunk * 2 * kLineSize + kLineSize;
}

PhysAddr TreeGeometry::tag_line_addr(std::uint64_t chunk) const {
  MEECC_CHECK(chunk < chunks_);
  return versions_tags_base_ + chunk * 2 * kLineSize;
}

PhysAddr TreeGeometry::l0_line_addr(std::uint64_t l0_index) const {
  MEECC_CHECK(l0_index < l0_lines_);
  return l0_base_ + l0_index * 2 * kLineSize;
}

PhysAddr TreeGeometry::l1_line_addr(std::uint64_t l1_index) const {
  MEECC_CHECK(l1_index < l1_lines_);
  return l1_base_ + l1_index * 2 * kLineSize;
}

PhysAddr TreeGeometry::l2_line_addr(std::uint64_t l2_index) const {
  MEECC_CHECK(l2_index < l2_lines_);
  return l2_base_ + l2_index * 2 * kLineSize;
}

std::uint64_t TreeGeometry::node_index(Level level, std::uint64_t chunk) const {
  MEECC_CHECK(chunk < chunks_);
  switch (level) {
    case Level::kVersions:
      return chunk;
    case Level::kL0:
      return chunk / kTreeArity;
    case Level::kL1:
      return chunk / (kTreeArity * kTreeArity);
    case Level::kL2:
      return chunk / (kTreeArity * kTreeArity * kTreeArity);
    case Level::kRoot:
      return chunk / (kTreeArity * kTreeArity * kTreeArity * kTreeArity);
  }
  MEECC_CHECK_MSG(false, "bad level");
  return 0;
}

PhysAddr TreeGeometry::node_addr(Level level, std::uint64_t chunk) const {
  switch (level) {
    case Level::kVersions:
      return versions_line_addr(chunk);
    case Level::kL0:
      return l0_line_addr(node_index(level, chunk));
    case Level::kL1:
      return l1_line_addr(node_index(level, chunk));
    case Level::kL2:
      return l2_line_addr(node_index(level, chunk));
    case Level::kRoot:
      break;
  }
  MEECC_CHECK_MSG(false, "root has no DRAM address");
  return PhysAddr{};
}

std::uint32_t TreeGeometry::slot_in_parent(Level level,
                                           std::uint64_t chunk) const {
  // The parent of `level`'s node holds 8 counters; our node occupies slot
  // node_index(level) % 8.
  MEECC_CHECK(level != Level::kRoot);
  return static_cast<std::uint32_t>(node_index(level, chunk) % kTreeArity);
}

}  // namespace meecc::mee
