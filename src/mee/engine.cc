#include "mee/engine.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace meecc::mee {
namespace {

std::string tamper_message(Level level, PhysAddr addr) {
  std::ostringstream os;
  os << "MEE integrity violation at " << to_string(level) << " node, paddr=0x"
     << std::hex << addr.raw;
  return os.str();
}

bool line_is_zero(const mem::Line& line) {
  return std::all_of(line.begin(), line.end(),
                     [](std::uint8_t b) { return b == 0; });
}

constexpr std::array<Level, kDramLevels> kWalkOrder = {
    Level::kVersions, Level::kL0, Level::kL1, Level::kL2};

/// Counter-name spellings of StopLevel, matching the fig5 metric names.
constexpr std::array<std::string_view, 5> kStopNames = {"versions", "l0", "l1",
                                                        "l2", "root"};

std::array<obs::Counter, 5> make_stop_counters(obs::Registry& registry,
                                               std::string_view group) {
  std::array<obs::Counter, 5> counters;
  for (std::size_t level = 0; level < counters.size(); ++level)
    counters[level] = registry.counter(group, kStopNames[level]);
  return counters;
}

}  // namespace

TamperDetected::TamperDetected(Level level, PhysAddr addr)
    : std::runtime_error(tamper_message(level, addr)),
      level_(level),
      addr_(addr) {}

MeeEngine::MeeEngine(const mem::AddressMap& map, mem::PhysicalMemory& memory,
                     const MeeConfig& config, Rng rng, obs::Hub* hub)
    : map_(map),
      memory_(memory),
      config_(config),
      geometry_(map),
      cache_(config.cache_geometry, config.cache_policy, rng.fork()),
      cipher_(config.data_key, config.aes_backend),
      mac_(crypto::make_mac_scheme(config.mac_kind, config.mac_key,
                                   config.aes_backend)),
      root_counters_(geometry_.root_entries(), 0),
      rng_(rng),
      hub_(hub) {
  // The counters ARE the bookkeeping (stats() reads them back), so they
  // must count even without a hub: engines built standalone bind against a
  // private registry instead.
  if (hub_ == nullptr) local_registry_ = std::make_unique<obs::Registry>();
  registry_ = hub_ != nullptr ? &hub_->registry() : local_registry_.get();
  auto& registry = *registry_;
  read_walks_ = registry.counter("mee", "read_walks");
  write_walks_ = registry.counter("mee", "write_walks");
  nodes_fetched_ = registry.counter("mee", "nodes_fetched");
  mac_node_verifies_ = registry.counter("mee.mac", "node_verifies");
  mac_tag_verifies_ = registry.counter("mee.mac", "tag_verifies");
  // The MEE cache's even/odd set-class split: versions-walk lookups land
  // in even sets, PD_Tag lookups in the odd partner sets (paper §4).
  versions_class_hits_ = registry.counter("mee.cache.versions_class", "hits");
  versions_class_misses_ =
      registry.counter("mee.cache.versions_class", "misses");
  tag_hits_ = registry.counter("mee.cache.tag_class", "hits");
  tag_misses_ = registry.counter("mee.cache.tag_class", "misses");
  tampers_ = registry.counter("mee", "tampers_detected");
  wait_cycles_ = registry.counter("mee", "wait_cycles");
  rekeys_ = registry.counter("mee.cache", "rekeys");
  stop_counters_ = make_stop_counters(registry, "mee.stop");
  // Keystream/pad cache: cipher and MAC share one hit/miss counter pair so
  // crypto.pad.* reflects all nonce-keyed AES the engine avoided.
  const auto pad_hit = registry.counter("crypto.pad", "hit");
  const auto pad_miss = registry.counter("crypto.pad", "miss");
  cipher_.set_pad_cache_enabled(config_.pad_cache);
  cipher_.set_pad_counters(pad_hit, pad_miss);
  mac_->set_pad_cache_enabled(config_.pad_cache);
  mac_->set_pad_counters(pad_hit, pad_miss);
}

MeeStats MeeEngine::stats() const {
  MeeStats stats;
  for (std::size_t level = 0; level < stats.stops.size(); ++level)
    stats.stops[level] = stop_counters_[level].value();
  stats.reads = read_walks_.value();
  stats.writes = write_walks_.value();
  stats.tag_hits = tag_hits_.value();
  stats.tag_misses = tag_misses_.value();
  stats.tampers_detected = tampers_.value();
  return stats;
}

void MeeEngine::count_walk(CoreId core, const WalkResult& walk,
                           PhysAddr data_addr, Cycles now, bool is_write) {
  const auto level = static_cast<std::size_t>(walk.stop_level);
  stop_counters_[level].inc();
  nodes_fetched_.inc(walk.fetched_count);
  if (walk.stop_level == Level::kVersions)
    versions_class_hits_.inc();
  else
    versions_class_misses_.inc();
  if (core.value >= per_core_stops_.size())
    per_core_stops_.resize(core.value + 1);
  if (!per_core_stops_[core.value][level].bound()) {
    per_core_stops_[core.value] = make_stop_counters(
        *registry_, "mee.core" + std::to_string(core.value) + ".stop");
  }
  per_core_stops_[core.value][level].inc();
  if (hub_ != nullptr && hub_->tracing())
    hub_->trace({.cycle = now == kArriveWhenIdle ? Cycles{0} : now,
                 .component = obs::Component::kMee,
                 .core = core.value,
                 .addr = data_addr.raw,
                 .kind = is_write ? "write_walk" : "walk",
                 .outcome = kStopNames[level],
                 .value = static_cast<std::int64_t>(walk.fetched_count)});
}

MeeEngine::State MeeEngine::export_state() const {
  return State{.cache = cache_,
               .root_counters = root_counters_,
               .rng = rng_,
               .busy_until = busy_until_,
               .walks_since_rekey = walks_since_rekey_,
               .cipher_pads = cipher_.export_pad_state(),
               .mac_pads = mac_->export_pad_state()};
}

void MeeEngine::import_state(const State& state) {
  cache_ = state.cache;
  root_counters_ = state.root_counters;
  rng_ = state.rng;
  busy_until_ = state.busy_until;
  walks_since_rekey_ = state.walks_since_rekey;
  cipher_.import_pad_state(state.cipher_pads);
  mac_->import_pad_state(state.mac_pads.get());
}

void MeeEngine::maybe_rekey() {
  const auto period = config_.cache_policy.rekey_period;
  if (period == 0) return;
  if (++walks_since_rekey_ < period) return;
  walks_since_rekey_ = 0;
  // Flush-and-rekey: residents indexed under the old key would be
  // unfindable, so the flush is a correctness requirement, and it is
  // exactly what makes rekeying a (costly) mitigation — every walk after
  // this misses down to the root.
  cache_.rekey();
  rekeys_.inc();
}

std::uint64_t MeeEngine::parent_counter(Level level, std::uint64_t chunk) const {
  if (level == Level::kL2) {
    return root_counters_.at(geometry_.node_index(Level::kL2, chunk));
  }
  const auto parent_level = static_cast<Level>(static_cast<int>(level) + 1);
  const mem::Line* parent =
      memory_.find_line(geometry_.node_addr(parent_level, chunk));
  if (parent == nullptr) return 0;  // never written: genesis, all counters 0
  return decode_field56(*parent, geometry_.slot_in_parent(level, chunk));
}

void MeeEngine::verify_node(Level level, std::uint64_t chunk) {
  if (!config_.functional_crypto) return;
  const PhysAddr addr = geometry_.node_addr(level, chunk);
  const mem::Line* raw = memory_.find_line(addr);
  const std::uint64_t parent = parent_counter(level, chunk);
  if (raw == nullptr) {
    // Never-written node: reads as all zeros, i.e. genesis, without paying
    // for a 64 B copy and a nine-field decode.
    if (parent != 0) {
      tampers_.inc();
      throw TamperDetected(level, addr);
    }
    mac_node_verifies_.inc();
    return;
  }
  const TreeNode node = decode_node(*raw);
  if (node.is_genesis()) {
    if (parent != 0) {
      tampers_.inc();
      throw TamperDetected(level, addr);
    }
    mac_node_verifies_.inc();
    return;
  }
  const auto payload = counter_payload(node);
  if (!mac_->verify(addr.raw, parent, payload, node.mac)) {
    tampers_.inc();
    throw TamperDetected(level, addr);
  }
  mac_node_verifies_.inc();
}

void MeeEngine::verify_walk_batched(const WalkResult& walk,
                                    std::uint64_t chunk) {
  // Top-down gather of the walk's independent MAC checks. Genesis nodes
  // verify inline (their check is parent == 0 — no MAC); a genesis mismatch
  // ends the gather, since the serial path examines nothing below it. The
  // decoded payloads must outlive the batch call (the requests hold spans
  // into them).
  crypto::MacRequest requests[kDramLevels];
  std::array<std::array<std::uint8_t, 64>, kDramLevels> payloads;
  Level request_level[kDramLevels];
  PhysAddr request_addr[kDramLevels];
  std::uint32_t request_pos[kDramLevels];
  std::size_t n = 0;
  std::uint32_t pos = 0;  // nodes examined so far, top-down
  bool genesis_fail = false;
  Level fail_level = Level::kVersions;
  PhysAddr fail_addr{};
  for (std::uint32_t i = walk.fetched_count; i-- > 0;) {
    const Level level = walk.fetched[i];
    const PhysAddr addr = geometry_.node_addr(level, chunk);
    const std::uint64_t parent = parent_counter(level, chunk);
    const mem::Line* raw = memory_.find_line(addr);
    TreeNode node;
    bool genesis = raw == nullptr;
    if (!genesis) {
      node = decode_node(*raw);
      genesis = node.is_genesis();
    }
    if (genesis) {
      if (parent != 0) {
        genesis_fail = true;
        fail_level = level;
        fail_addr = addr;
        break;
      }
      ++pos;
      continue;
    }
    payloads[n] = counter_payload(node);
    requests[n] = crypto::MacRequest{.address = addr.raw,
                                     .version = parent,
                                     .data = payloads[n],
                                     .expected_tag = node.mac};
    request_level[n] = level;
    request_addr[n] = addr;
    request_pos[n] = pos;
    ++n;
    ++pos;
  }
  const std::size_t bad = mac_->verify_batch(requests, n);
  if (bad < n) {
    // The serial loop verified (and counted) every node before the first
    // failing one, then threw there; replicate exactly.
    mac_node_verifies_.inc(request_pos[bad]);
    tampers_.inc();
    throw TamperDetected(request_level[bad], request_addr[bad]);
  }
  mac_node_verifies_.inc(pos);
  if (genesis_fail) {
    tampers_.inc();
    throw TamperDetected(fail_level, fail_addr);
  }
}

MeeEngine::WalkResult MeeEngine::walk_and_verify(CoreId core,
                                                 std::uint64_t chunk) {
  WalkResult result;
  for (Level level : kWalkOrder) {
    const PhysAddr addr = geometry_.node_addr(level, chunk);
    if (cache_.lookup(addr)) {
      result.stop_level = level;
      break;
    }
    result.fetched[result.fetched_count++] = level;
  }
  if (result.fetched_count == kDramLevels) result.stop_level = Level::kRoot;

  // Verify top-down: each node's MAC key (the parent counter) is trusted by
  // the time we check it — either the parent was a cache hit / the root, or
  // it was verified in an earlier iteration of this loop. Tamper accounting
  // lives in verify_node's throw sites: wrapping this loop in try/catch puts
  // an EH region on the cold-walk hot path and costs ~25% even when tracing
  // is compiled out. The parent counters come from memory/root state, never
  // from the verification results, so the checks are independent and a
  // multi-node walk can batch them (one pipelined AES call for the pads).
  if (config_.batched_walks && config_.functional_crypto &&
      result.fetched_count > 1) {
    verify_walk_batched(result, chunk);
  } else {
    for (std::uint32_t i = result.fetched_count; i-- > 0;)
      verify_node(result.fetched[i], chunk);
  }

  // Install the now-verified nodes, top-down so the versions line ends up
  // most recently used (it is re-checked on every subsequent access). The
  // fill policy (all / partition / random) decides which ways `core` may
  // claim. Each node missed during the walk and the verify loop never
  // touches the cache; the fills install distinct node addresses, so every
  // address here is still absent and fill_after_miss applies.
  for (std::uint32_t i = result.fetched_count; i-- > 0;)
    cache_.fill_after_miss(geometry_.node_addr(result.fetched[i], chunk),
                           cache::kAllWays, core);

  return result;
}

Cycles MeeEngine::walk_latency(std::uint32_t nodes_fetched) {
  double extra = static_cast<double>(config_.latency.versions_hit_extra);
  if (nodes_fetched > 0) {
    extra += static_cast<double>(config_.latency.versions_miss_serialization);
    extra += static_cast<double>(config_.latency.per_level_step) *
             (nodes_fetched - 1);
  }
  extra += rng_.next_gaussian(0.0, config_.latency.step_jitter_stddev);
  return static_cast<Cycles>(std::llround(std::max(extra, 1.0)));
}

Cycles MeeEngine::occupy_engine(Cycles now, std::uint32_t nodes_fetched) {
  const Cycles service =
      config_.latency.service_base +
      config_.latency.service_per_node * nodes_fetched;
  if (now == kArriveWhenIdle) {
    busy_until_ += service;  // serialized caller: never waits
    return 0;
  }
  const Cycles wait = busy_until_ > now ? busy_until_ - now : 0;
  wait_cycles_.inc(wait);
  busy_until_ = now + wait + service;
  return wait;
}

MeeAccessResult MeeEngine::read_line(CoreId core, PhysAddr data_addr,
                                     mem::Line* out, Cycles now) {
  MEECC_CHECK(map_.classify(data_addr) == mem::RegionKind::kProtectedData);
  read_walks_.inc();
  maybe_rekey();
  const std::uint64_t chunk = geometry_.chunk_of(data_addr);
  const std::uint32_t slot = geometry_.line_in_chunk(data_addr);
  const PhysAddr line_addr = data_addr.line_base();

  const WalkResult walk = walk_and_verify(core, chunk);
  count_walk(core, walk, data_addr, now, /*is_write=*/false);

  // PD_Tag line: fetched alongside the versions line (even/odd set pair);
  // its DRAM fetch overlaps the data fetch, so it adds no latency class.
  const PhysAddr tag_addr = geometry_.tag_line_addr(chunk);
  if (cache_.lookup(tag_addr)) {
    tag_hits_.inc();
  } else {
    tag_misses_.inc();
    cache_.fill_after_miss(tag_addr, cache::kAllWays, core);
  }

  if (config_.functional_crypto) {
    // Zero-copy probes: a null line reads as all zeros, so a missing
    // versions/tag/data line means version 0 / tag 0 / zero ciphertext —
    // the genesis test below needs no copies and no full-node decodes.
    const mem::Line* versions_raw =
        memory_.find_line(geometry_.versions_line_addr(chunk));
    const std::uint64_t version =
        versions_raw != nullptr ? decode_field56(*versions_raw, slot) : 0;
    const mem::Line* tags_raw = memory_.find_line(tag_addr);
    const std::uint64_t expected_tag =
        tags_raw != nullptr ? decode_field56(*tags_raw, slot) : 0;
    const mem::Line* data_raw = memory_.find_line(line_addr);

    if (version == 0 && expected_tag == 0 &&
        (data_raw == nullptr || line_is_zero(*data_raw))) {
      if (out) out->fill(0);  // genesis: never written
    } else {
      const mem::Line ciphertext =
          data_raw != nullptr ? *data_raw : mem::Line{};
      mac_tag_verifies_.inc();
      if (!mac_->verify(line_addr.raw, version, ciphertext, expected_tag)) {
        tampers_.inc();
        throw TamperDetected(Level::kVersions, line_addr);
      }
      if (out) *out = cipher_.decrypt(ciphertext, line_addr.raw, version);
    }
  } else if (out) {
    *out = memory_.read_line(line_addr);
  }

  MeeAccessResult result;
  result.stop_level = walk.stop_level;
  result.nodes_fetched = walk.fetched_count;
  result.extra_latency = walk_latency(result.nodes_fetched) +
                         occupy_engine(now, result.nodes_fetched);
  return result;
}

MeeAccessResult MeeEngine::write_line(CoreId core, PhysAddr data_addr,
                                      const mem::Line& plaintext, Cycles now) {
  MEECC_CHECK(map_.classify(data_addr) == mem::RegionKind::kProtectedData);
  write_walks_.inc();
  maybe_rekey();
  const std::uint64_t chunk = geometry_.chunk_of(data_addr);
  const std::uint32_t slot = geometry_.line_in_chunk(data_addr);
  const PhysAddr line_addr = data_addr.line_base();

  // Verify the existing path before trusting any counter we will bump.
  const WalkResult walk = walk_and_verify(core, chunk);
  count_walk(core, walk, data_addr, now, /*is_write=*/true);

  if (config_.functional_crypto) {
    // Bump the whole counter chain (eager update, write-through to root).
    std::array<TreeNode, kDramLevels> nodes;
    for (Level level : kWalkOrder) {
      nodes[static_cast<std::size_t>(level)] =
          decode_node(memory_.read_line(geometry_.node_addr(level, chunk)));
    }
    auto bump = [](std::uint64_t& counter) {
      MEECC_CHECK_MSG(counter + 1 <= kCounterMask, "version counter overflow");
      ++counter;
    };
    bump(nodes[0].counters[slot]);  // data line version
    bump(nodes[1].counters[geometry_.slot_in_parent(Level::kVersions, chunk)]);
    bump(nodes[2].counters[geometry_.slot_in_parent(Level::kL0, chunk)]);
    bump(nodes[3].counters[geometry_.slot_in_parent(Level::kL1, chunk)]);
    bump(root_counters_.at(geometry_.node_index(Level::kL2, chunk)));

    // Re-MAC bottom-up against the freshly bumped parent counters.
    for (Level level : kWalkOrder) {
      auto& node = nodes[static_cast<std::size_t>(level)];
      const PhysAddr addr = geometry_.node_addr(level, chunk);
      std::uint64_t parent;
      if (level == Level::kL2) {
        parent = root_counters_.at(geometry_.node_index(Level::kL2, chunk));
      } else {
        parent = nodes[static_cast<std::size_t>(level) + 1]
                     .counters[geometry_.slot_in_parent(level, chunk)];
      }
      node.mac = mac_->tag(addr.raw, parent, counter_payload(node));
      memory_.write_line(addr, encode_node(node));
    }

    // Encrypt + retag the data line under the new version.
    const std::uint64_t version = nodes[0].counters[slot];
    const mem::Line ciphertext =
        cipher_.encrypt(plaintext, line_addr.raw, version);
    memory_.write_line(line_addr, ciphertext);

    const PhysAddr tag_addr = geometry_.tag_line_addr(chunk);
    TagLine tags = decode_tags(memory_.read_line(tag_addr));
    tags.tags[slot] = mac_->tag(line_addr.raw, version, ciphertext);
    memory_.write_line(tag_addr, encode_tags(tags));
  } else {
    memory_.write_line(line_addr, plaintext);
  }

  // The whole path plus the tag line is hot after a write.
  for (Level level : kWalkOrder)
    cache_.fill(geometry_.node_addr(level, chunk), cache::kAllWays, core);
  cache_.fill(geometry_.tag_line_addr(chunk), cache::kAllWays, core);

  MeeAccessResult result;
  result.stop_level = walk.stop_level;
  result.nodes_fetched = walk.fetched_count;
  result.extra_latency = walk_latency(result.nodes_fetched) +
                         config_.latency.write_update_extra +
                         occupy_engine(now, result.nodes_fetched);
  return result;
}

std::uint64_t MeeEngine::version_counter(PhysAddr data_addr) const {
  const std::uint64_t chunk = geometry_.chunk_of(data_addr);
  const std::uint32_t slot = geometry_.line_in_chunk(data_addr);
  const mem::Line* versions =
      memory_.find_line(geometry_.versions_line_addr(chunk));
  return versions != nullptr ? decode_field56(*versions, slot) : 0;
}

}  // namespace meecc::mee
