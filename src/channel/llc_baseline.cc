#include "channel/llc_baseline.h"

#include "channel/classify.h"
#include "common/check.h"
#include "sim/timer.h"

namespace meecc::channel {
namespace {

struct TransferShared {
  Cycles t0 = 0;
  bool receiver_done = false;
};

sim::Process llc_sender(sim::Actor& actor, VirtAddr address,
                        std::vector<std::uint8_t> bits, LlcChannelConfig config,
                        const TransferShared* shared) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const Cycles window_start = shared->t0 + i * config.window;
    const Cycles jitter = actor.rng().next_below(config.sync_jitter + 1);
    co_await actor.sleep_until(window_start + jitter);
    if (bits[i] != 0) {
      co_await actor.read(address);
      co_await actor.clflush(address);
    }
  }
}

sim::Process llc_receiver(sim::Actor& actor, std::vector<VirtAddr> set,
                          std::size_t bit_count, LlcChannelConfig config,
                          TransferShared* shared, LlcChannelResult* result) {
  const Cycles probe_phase =
      std::max(config.window - config.probe_phase_back, config.window / 2);
  const sim::TimerModel timer = sim::native_rdtsc_timer();

  co_await actor.sleep_until(shared->t0 - 2 * config.window);
  for (const VirtAddr addr : set) co_await actor.read(addr);  // prime

  for (std::size_t i = 0; i < bit_count; ++i) {
    const Cycles when = shared->t0 + i * config.window + probe_phase;
    const Cycles jitter = actor.rng().next_below(config.sync_jitter + 1);
    co_await actor.sleep_until(when + jitter);
    // Probe = re-prime, timing EACH line: any DRAM-latency line means the
    // trojan evicted from this set. Probing in REVERSE prime order is the
    // classic P+P trick: a refill's replacement victim is then a line that
    // has already been probed, preventing self-eviction cascades.
    int misses = 0;
    double total = 0.0;
    for (auto it = set.rbegin(); it != set.rend(); ++it) {
      const Cycles before = actor.read_timer(timer);
      co_await actor.read(*it);
      const Cycles after = actor.read_timer(timer);
      const Cycles line_time = after - before;
      total += static_cast<double>(line_time);
      if (line_time > config.per_line_miss_threshold) ++misses;
    }
    result->received.push_back(misses > 0 ? 1 : 0);
    result->probe_times.push_back(total);
  }
  shared->receiver_done = true;
}

}  // namespace

LlcChannelResult run_llc_baseline(TestBed& bed, const LlcChannelConfig& config,
                                  const std::vector<std::uint8_t>& payload) {
  MEECC_CHECK(!payload.empty());
  LlcChannelResult result;
  result.sent = payload;

  // Ground-truth eviction set: lines one LLC way-span apart land in the same
  // set (what a hugepage mapping gives a real attacker). Frames are carved
  // from the top of the general region, away from the bump allocator.
  auto& system = bed.system();
  const auto llc = system.config().hierarchy.llc;
  const std::uint64_t way_span = llc.size_bytes / llc.ways;  // bytes per way
  const std::uint32_t ways = llc.ways;

  sim::Actor spy(system, CoreId{1}, CpuMode::kNonEnclave);
  sim::Actor trojan(system, CoreId{0}, CpuMode::kNonEnclave);

  const PhysAddr top = system.map().general().end();
  std::vector<VirtAddr> spy_set;
  const VirtAddr spy_base{0x4000'0000'0000ULL};
  for (std::uint32_t i = 0; i < ways; ++i) {
    const PhysAddr frame = top - (i + 1) * way_span;
    const VirtAddr page = spy_base + i * kPageSize;
    spy.vas().map_page(page, frame);
    spy_set.push_back(page);
  }
  const PhysAddr trojan_frame = top - (ways + 1) * way_span;
  const VirtAddr trojan_page{0x4100'0000'0000ULL};
  trojan.vas().map_page(trojan_page, trojan_frame);
  result.eviction_set_size = spy_set.size();

  TransferShared shared;
  shared.t0 = ((bed.scheduler().now() + 4 * config.window) / config.window + 1) *
              config.window;
  bed.scheduler().spawn(
      llc_sender(trojan, trojan_page, payload, config, &shared));
  bed.scheduler().spawn(llc_receiver(spy, spy_set, payload.size(), config,
                                     &shared, &result));
  bed.run_until_flag(shared.receiver_done);

  for (std::size_t i = 0; i < payload.size(); ++i)
    if (result.received[i] != payload[i]) ++result.bit_errors;
  result.error_rate = static_cast<double>(result.bit_errors) /
                      static_cast<double>(payload.size());
  result.kilobytes_per_second =
      system.bytes_per_second(1.0 / static_cast<double>(config.window)) /
      1000.0;
  return result;
}

}  // namespace meecc::channel
