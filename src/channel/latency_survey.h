// Protected-region access-latency characterisation (paper §5.1, Fig. 5).
//
// Strided access+flush sweeps over an enclave. Small strides (64 B, 512 B)
// keep spatial locality in the versions level → versions/L0 hits; larger
// strides walk progressively higher before hitting: 4 KB → mostly L1,
// 32 KB → mostly L2, 256 KB → root. The histogram peaks ~65 cycles apart,
// with the versions-hit ↔ full-walk gap ≥ ~260 cycles — the margin the
// covert channel decodes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "channel/testbed.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "common/types.h"

namespace meecc::channel {

struct LatencySurveyConfig {
  std::vector<std::uint64_t> strides = {64, 512, 4096, 32768, 262144};
  int samples_per_stride = 2500;
  Cycles gap = 150;
  double hist_lo = 350;
  double hist_hi = 950;
  std::size_t hist_bins = 120;
};

struct StrideSeries {
  std::uint64_t stride = 0;
  Histogram histogram{350, 950, 120};
  /// Ground-truth verification stop level per access (simulator-only view).
  std::array<std::uint64_t, 5> stop_counts{};
  RunningStats latency;
};

struct LatencySurveyResult {
  std::vector<StrideSeries> series;
  /// Latency statistics grouped by ground-truth stop level (all strides).
  std::array<RunningStats, 5> per_level;
  bool done = false;
};

/// Runs the survey on the test bed's trojan enclave (size it generously —
/// the 256 KB stride needs many distinct L2 nodes to reach the root).
LatencySurveyResult run_latency_survey(TestBed& bed,
                                       const LatencySurveyConfig& config);

}  // namespace meecc::channel
