// Reliable transport over the raw covert channel (extension).
//
// The paper reports 1.7 % raw bit errors "without any error handling" and
// leaves coding to future work; real covert-channel deployments (e.g.
// Maurice et al. [9]) add exactly this layer. We use:
//   * Hamming(7,4): corrects any single bit error per 7-bit codeword;
//   * a block interleaver: the channel's errors cluster (a trojan overrun
//     or an MEE-noise burst corrupts adjacent windows), and interleaving
//     spreads a burst across many codewords so each sees ≤ 1 flip;
//   * CRC-16/CCITT over the payload for end-to-end verification.
// Net rate = 4/7 of the raw channel (~20 KBps at the paper's best window).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "channel/covert_channel.h"

namespace meecc::channel {

// -- coding primitives (exposed for tests) ----------------------------------

/// Hamming(7,4) encode of the low nibble; bit 0 of the result transmits
/// first. Layout: p1 p2 d1 p3 d2 d3 d4 (classic positions 1..7).
std::uint8_t hamming74_encode(std::uint8_t nibble);

/// Decode one 7-bit codeword, correcting up to one flipped bit.
/// Returns the nibble and reports whether a correction was applied.
struct HammingDecode {
  std::uint8_t nibble = 0;
  bool corrected = false;
};
HammingDecode hamming74_decode(std::uint8_t codeword);

/// Block interleaver: writes row-major into a depth×width matrix, reads
/// column-major. deinterleave() inverts it. Length must divide by depth.
std::vector<std::uint8_t> interleave(const std::vector<std::uint8_t>& bits,
                                     std::size_t depth);
std::vector<std::uint8_t> deinterleave(const std::vector<std::uint8_t>& bits,
                                       std::size_t depth);

/// CRC-16/CCITT-FALSE over bytes.
std::uint16_t crc16(const std::vector<std::uint8_t>& bytes);

// -- framing -----------------------------------------------------------------

struct TransportConfig {
  std::size_t interleave_depth = 16;
  /// ARQ: retransmit the frame until the CRC verifies (Hamming(7,4) corrects
  /// one error per codeword; a double-hit codeword at high raw BER needs a
  /// retry). 1 = no retransmission.
  int max_attempts = 3;
  /// Inner repetition code (majority vote per bit) applied after
  /// interleaving. 1 = off. Use 3 under heavy MEE co-tenant noise: a ~3 %
  /// raw BER overwhelms Hamming(7,4) alone (double-hit codewords become
  /// near-certain over a frame), while majority-of-3 squashes it to ~0.3 %
  /// first. Rate cost: ×1/repetition.
  int repetition = 1;
};

/// message bytes → channel bits: [len:16 | payload | crc:16] → Hamming(7,4)
/// → interleave (padded to a multiple of the depth with zero bits).
std::vector<std::uint8_t> encode_message(const std::vector<std::uint8_t>& message,
                                         const TransportConfig& config = {});

struct DecodedMessage {
  std::vector<std::uint8_t> payload;
  std::size_t corrected_bits = 0;  ///< Hamming corrections applied
  bool crc_ok = false;
};

/// channel bits → message; returns nullopt if the frame is unparseable
/// (CRC failures still return the best-effort payload with crc_ok=false).
std::optional<DecodedMessage> decode_message(
    const std::vector<std::uint8_t>& bits, const TransportConfig& config = {});

// -- end-to-end --------------------------------------------------------------

struct ReliableTransferResult {
  ChannelResult channel;           ///< raw-channel statistics (last attempt)
  std::size_t raw_bit_errors = 0;  ///< before correction (last attempt)
  std::size_t corrected_bits = 0;
  int attempts = 0;                ///< transmissions used (ARQ)
  bool delivered = false;          ///< CRC-verified payload intact
  std::vector<std::uint8_t> payload;
  /// Net of coding overhead AND retransmissions.
  double payload_kilobytes_per_second = 0.0;
};

/// Encodes `message`, pushes it through an established channel, decodes.
ReliableTransferResult run_reliable_transfer(TestBed& bed,
                                             const ChannelConfig& config,
                                             const std::vector<std::uint8_t>& message,
                                             const ChannelSetup& setup,
                                             const TransportConfig& transport = {});

}  // namespace meecc::channel
