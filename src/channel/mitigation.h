// §5.5 mitigation ablation support: what a countermeasure costs a
// well-behaved tenant.
//
// The mitigations themselves are cache policies now — select them through
// MeeConfig::cache_policy (cache/policy.h), e.g. fill="partition" for the
// CATalyst-style way split or indexing="keyed" for a randomized index. The
// paper's caveat stands regardless of mechanism: the integrity tree itself
// is SHARED state. Partitioning cannot attribute a tree line to a tenant
// (upper-level nodes cover many enclaves' pages), halving effective
// associativity for everyone and leaving cross-partition hit/miss
// observability on shared nodes (a residual, lower-bandwidth side channel
// the mitigations experiments quantify).
#pragma once

#include <array>
#include <cstdint>

#include "channel/testbed.h"
#include "common/types.h"
#include "mee/engine.h"

namespace meecc::channel {

struct LegitWorkloadStats {
  std::array<std::uint64_t, 5> stops{};   ///< walk stop level counts
  double versions_hit_rate = 0.0;
  double mean_protected_latency = 0.0;    ///< end-to-end cycles per access
};

/// Measures MEE behaviour for a well-behaved enclave workload: random
/// accesses over a `reuse_bytes` working set of the spy enclave. A 256 KB
/// set holds exactly 8 versions lines per cache set — it fits an 8-way MEE
/// cache and thrashes a way-partitioned half.
LegitWorkloadStats measure_legit_workload(TestBed& bed,
                                          std::uint64_t reuse_bytes,
                                          int samples);

}  // namespace meecc::channel
