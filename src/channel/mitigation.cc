#include "channel/mitigation.h"

#include "common/check.h"

namespace meecc::channel {

namespace {

sim::Process legit_workload_process(sim::Actor& actor,
                                    const sgx::Enclave& enclave,
                                    std::uint64_t reuse_bytes, int samples,
                                    LegitWorkloadStats* stats, bool* done) {
  MEECC_CHECK(reuse_bytes >= kLineSize && reuse_bytes <= enclave.size());
  const std::uint64_t lines = reuse_bytes / kLineSize;
  double total_latency = 0.0;
  for (int i = 0; i < samples; ++i) {
    const VirtAddr addr =
        enclave.address(actor.rng().next_below(lines) * kLineSize);
    const auto r = co_await actor.read(addr);
    co_await actor.clflush(addr);
    MEECC_CHECK(r.mee_level.has_value());
    ++stats->stops[static_cast<std::size_t>(*r.mee_level)];
    total_latency += static_cast<double>(r.latency);
    co_await actor.sleep_for(120);
  }
  stats->mean_protected_latency = total_latency / samples;
  stats->versions_hit_rate =
      static_cast<double>(
          stats->stops[static_cast<std::size_t>(mee::Level::kVersions)]) /
      static_cast<double>(samples);
  *done = true;
}

}  // namespace

LegitWorkloadStats measure_legit_workload(TestBed& bed,
                                          std::uint64_t reuse_bytes,
                                          int samples) {
  LegitWorkloadStats stats;
  bool done = false;
  bed.scheduler().spawn(legit_workload_process(
      bed.spy(), bed.spy_enclave(), reuse_bytes, samples, &stats, &done));
  bed.run_until_flag(done);
  return stats;
}

}  // namespace meecc::channel
