#include "channel/detector.h"

#include "common/check.h"
#include <algorithm>
#include <functional>
#include <vector>

#include "mee/engine.h"

namespace meecc::channel {
namespace {

std::uint64_t non_versions_stops(const mee::MeeStats& stats) {
  std::uint64_t misses = 0;
  for (std::size_t level = 1; level < stats.stops.size(); ++level)
    misses += stats.stops[level];
  return misses;
}

sim::Process sampler(sim::Scheduler& scheduler, mee::MeeEngine& mee,
                     DetectorConfig config, DetectorReport* report,
                     const bool* stop_requested, bool* stopped) {
  std::uint64_t prev_reads = mee.stats().reads;
  std::uint64_t prev_misses = non_versions_stops(mee.stats());
  std::vector<std::uint64_t> prev_set_evictions =
      mee.cache().evictions_per_set();
  int ratio_streak = 0;
  int concentration_streak = 0;

  while (!*stop_requested) {
    co_await sim::WakeAt{scheduler, scheduler.now() + config.epoch};
    ++report->epochs;

    const std::uint64_t reads = mee.stats().reads;
    const std::uint64_t misses = non_versions_stops(mee.stats());
    const std::uint64_t epoch_reads = reads - prev_reads;
    const std::uint64_t epoch_misses = misses - prev_misses;
    prev_reads = reads;
    prev_misses = misses;

    // Rule 2 inputs: eviction deltas per set; concentration = top-K share.
    const auto& set_evictions = mee.cache().evictions_per_set();
    std::vector<std::uint64_t> deltas(set_evictions.size());
    std::uint64_t epoch_evictions = 0;
    for (std::size_t s = 0; s < set_evictions.size(); ++s) {
      deltas[s] = set_evictions[s] - prev_set_evictions[s];
      epoch_evictions += deltas[s];
    }
    prev_set_evictions = set_evictions;
    const std::size_t top_k =
        std::min(config.concentration_top_sets, deltas.size());
    std::partial_sort(deltas.begin(),
                      deltas.begin() + static_cast<std::ptrdiff_t>(top_k),
                      deltas.end(), std::greater<>());
    std::uint64_t hottest = 0;
    for (std::size_t k = 0; k < top_k; ++k) hottest += deltas[k];

    bool suspicious = false;

    // Rule 1: sustained active, miss-heavy phases (CacheShield-style).
    if (epoch_reads >= config.min_reads_per_epoch) {
      const double ratio =
          static_cast<double>(epoch_misses) / static_cast<double>(epoch_reads);
      report->miss_ratio_series.push_back(ratio);
      if (ratio >= config.miss_ratio_threshold) {
        suspicious = true;
        if (++ratio_streak >= config.consecutive_epochs) {
          if (!report->flagged) report->first_flag_time = scheduler.now();
          report->flagged = true;
          report->flagged_by_miss_ratio = true;
        }
      } else {
        ratio_streak = 0;
      }
    } else {
      ratio_streak = 0;
    }

    // Rule 2: conflict evictions concentrated in one set — the footprint of
    // an eviction-set channel, which a legit streaming workload spreads.
    if (epoch_evictions >= config.min_evictions_per_epoch) {
      const double share = static_cast<double>(hottest) /
                           static_cast<double>(epoch_evictions);
      if (share >= config.eviction_concentration_threshold) {
        suspicious = true;
        if (++concentration_streak >= config.consecutive_epochs) {
          if (!report->flagged) report->first_flag_time = scheduler.now();
          report->flagged = true;
          report->flagged_by_concentration = true;
        }
      } else {
        concentration_streak = 0;
      }
    } else {
      concentration_streak = 0;
    }

    if (suspicious) ++report->suspicious_epochs;
  }
  *stopped = true;
}

}  // namespace

Detector::Detector(TestBed& bed, const DetectorConfig& config)
    : bed_(bed), config_(config) {
  MEECC_CHECK(config.epoch > 0);
  MEECC_CHECK(config.consecutive_epochs > 0);
}

void Detector::start() {
  MEECC_CHECK_MSG(!started_, "detector already started");
  started_ = true;
  bed_.scheduler().spawn(sampler(bed_.scheduler(), bed_.system().mee(),
                                 config_, &report_, &stop_requested_,
                                 &stopped_));
}

DetectorReport Detector::stop() {
  MEECC_CHECK_MSG(started_, "detector was never started");
  if (!stopped_) {
    stop_requested_ = true;
    bed_.run_until_flag(stopped_);
  }
  return report_;
}

}  // namespace meecc::channel
