// Performance-counter anomaly detection (§5.5 / refs [1][4] adapted to the
// MEE): the defender periodically samples MEE activity counters and flags
// sustained, active, miss-heavy phases. A covert channel cannot avoid this
// signature — every transmitted '1' forces versions-level misses — but the
// bench shows the classic weakness too: an innocent co-tenant streaming
// fresh integrity-tree data (the Fig. 8 noise workload!) raises the same
// flag, so the detector trades false positives for coverage.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/testbed.h"
#include "common/types.h"

namespace meecc::channel {

struct DetectorConfig {
  Cycles epoch = 100000;                ///< counter sampling period
  double miss_ratio_threshold = 0.30;   ///< non-versions walk stops / reads
  std::uint64_t min_reads_per_epoch = 8;  ///< ignore idle epochs
  int consecutive_epochs = 3;          ///< sustained anomaly before flagging
  /// Second rule: share of MEE-cache conflict evictions concentrated in the
  /// hottest few sets. Streaming workloads spread evictions over all 128
  /// sets; an eviction-set channel hammers the contested versions set plus
  /// the handful of tree-node sets its reload walks touch.
  double eviction_concentration_threshold = 0.6;
  std::size_t concentration_top_sets = 4;
  std::uint64_t min_evictions_per_epoch = 4;
};

struct DetectorReport {
  bool flagged = false;
  bool flagged_by_miss_ratio = false;
  bool flagged_by_concentration = false;
  Cycles first_flag_time = 0;
  std::size_t epochs = 0;
  std::size_t suspicious_epochs = 0;
  std::vector<double> miss_ratio_series;  ///< one entry per active epoch
};

/// Samples the MEE's counters while other agents run. start() arms the
/// sampler; the report is valid after stop() (or keeps accumulating until
/// then). One Detector per TestBed lifetime.
class Detector {
 public:
  Detector(TestBed& bed, const DetectorConfig& config);

  /// Spawns the sampling process (no memory traffic — models an OS reading
  /// hardware counters out of band).
  void start();

  /// Stops sampling at the next epoch boundary and returns the report.
  DetectorReport stop();

  const DetectorReport& report() const { return report_; }

 private:
  TestBed& bed_;
  DetectorConfig config_;
  DetectorReport report_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  bool started_ = false;
};

}  // namespace meecc::channel
