// MEE cache capacity probe (paper §4.1, Fig. 4).
//
// For each candidate-set size N: prime all N 4 KB-stride addresses through
// the MEE cache, then re-probe each; any versions miss means the set
// overflowed some cache set and an eviction occurred. The smallest N whose
// eviction probability saturates marks the capacity knee; the paper derives
// capacity = knee × (16 lines × 64 B per way within a consecutive versions
// data region) = 64 × 1 KB = 64 KB.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/testbed.h"
#include "common/types.h"

namespace meecc::channel {

struct CapacityProbeConfig {
  std::vector<std::uint64_t> set_sizes = {2, 4, 8, 16, 32, 64};
  int trials = 100;
  std::uint32_t offset_unit = 1;
  double classifier_margin = 90.0;
};

struct CapacityProbePoint {
  std::uint64_t candidates = 0;
  int evictions = 0;
  double probability = 0.0;
};

struct CapacityProbeResult {
  std::vector<CapacityProbePoint> points;
  /// Smallest probed N with eviction probability ≥ 0.95 (0 if none).
  std::uint64_t knee = 0;
  /// knee × 16 × 64 B — the paper's capacity derivation.
  std::uint64_t estimated_capacity_bytes = 0;
  bool done = false;
};

CapacityProbeResult run_capacity_probe(TestBed& bed,
                                       const CapacityProbeConfig& config);

}  // namespace meecc::channel
