#include "channel/classify.h"

#include "common/check.h"
#include "common/stats.h"

namespace meecc::channel {

AdaptiveClassifier::AdaptiveClassifier(double margin, double alpha)
    : margin_(margin), alpha_(alpha) {
  MEECC_CHECK(margin > 0.0);
  MEECC_CHECK(alpha > 0.0 && alpha <= 1.0);
}

void AdaptiveClassifier::calibrate(double hit_measurement) {
  baseline_ = hit_measurement;
  calibrated_ = true;
}

void AdaptiveClassifier::calibrate_from_samples(
    std::vector<double> hit_measurements) {
  MEECC_CHECK(!hit_measurements.empty());
  calibrate(median(std::move(hit_measurements)));
}

bool AdaptiveClassifier::is_miss(double measurement) {
  if (!calibrated_) {
    calibrate(measurement);
    return false;
  }
  if (measurement > baseline_ + margin_) return true;
  baseline_ = (1.0 - alpha_) * baseline_ + alpha_ * measurement;
  return false;
}

}  // namespace meecc::channel
