// The MEE-cache covert channel (paper §5.3, Algorithm 2).
//
// Roles are REVERSED relative to LLC Prime+Probe: the trojan owns the
// eviction set; the spy probes a single cache way (its monitor address), so
// one probe costs one protected access and the ~300-cycle versions hit/miss
// gap stays decodable (§5.2 explains why probing all 8 ways drowns it).
//
// Protocol per timing window Tsync:
//   trojan:  bit 0 → busy loop; bit 1 → two-phase (fwd+bwd) eviction pass
//   spy:     probe the monitor address near the window's end, flush it;
//            versions hit (~480 cyc) → 0, versions miss (~750 cyc) → 1.
//            The probe doubles as the re-prime for the next window.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "channel/classify.h"
#include "channel/eviction_set.h"
#include "channel/testbed.h"
#include "common/types.h"

namespace meecc::channel {

struct ChannelConfig {
  Cycles window = 15000;              ///< Tsync
  std::uint32_t offset_unit = 1;      ///< agreed 512 B index within a page
  EvictionSetConfig eviction;         ///< Algorithm-1 parameters
  double classifier_margin = 90.0;
  /// Spy probes at (window end − probe_phase_back), clamped to ≥ window/2.
  Cycles probe_phase_back = 1500;
  /// Trojan/spy window-boundary jitter bound (shared-clock sync slop).
  Cycles sync_jitter = 40;
  /// Monitor-discovery parameters.
  Cycles beacon_period = 25000;
  int discovery_rounds = 8;

  ChannelConfig() { eviction.offset_unit = offset_unit; }
};

struct ChannelResult {
  std::vector<std::uint8_t> sent;
  std::vector<std::uint8_t> received;
  std::vector<double> probe_times;  ///< per bit — the Fig. 6(b) trace
  std::size_t bit_errors = 0;
  double error_rate = 0.0;
  double kilobytes_per_second = 0.0;  ///< payload rate at the system clock
  EvictionSetResult eviction;
  VirtAddr monitor{};
  bool monitor_found = false;
  Cycles transfer_cycles = 0;
};

/// Channel endpoints after setup: the trojan's eviction set and the spy's
/// monitor address.
struct ChannelSetup {
  EvictionSetResult eviction;
  VirtAddr monitor{};
  bool monitor_found = false;
};

/// Setup only: Algorithm 1 on the trojan plus beacon-driven monitor
/// discovery on the spy. `precomputed` skips Algorithm 1 when sweeping many
/// configurations over one test bed.
ChannelSetup setup_covert_channel(TestBed& bed, const ChannelConfig& config,
                                  const EvictionSetResult* precomputed = nullptr);

/// Transfers `payload` over an established channel (Algorithm 2).
ChannelResult transfer_covert_channel(TestBed& bed, const ChannelConfig& config,
                                      const std::vector<std::uint8_t>& payload,
                                      const ChannelSetup& setup);

/// Setup + transfer. Deferred noise (TestBedConfig::noise_autostart = false)
/// starts between the two, matching Fig. 8's "co-tenant load during
/// communication" scenario.
ChannelResult run_covert_channel(TestBed& bed, const ChannelConfig& config,
                                 const std::vector<std::uint8_t>& payload,
                                 const EvictionSetResult* precomputed = nullptr);

/// Convenience payload generators.
std::vector<std::uint8_t> alternating_bits(std::size_t n);      // 0101…
std::vector<std::uint8_t> pattern_100100(std::size_t n);        // Fig. 8
std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed);

}  // namespace meecc::channel
