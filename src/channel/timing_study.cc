#include "channel/timing_study.h"

#include "common/check.h"
#include "sim/noise.h"
#include "sim/timer.h"

namespace meecc::channel {
namespace {

/// Measures enclave accesses with `timer`, recording measured vs truth.
sim::Process enclave_timer_study(sim::Actor& actor,
                                 const sgx::Enclave& enclave,
                                 sim::TimerModel timer,
                                 TimingStudyConfig config, TimerSeries* series,
                                 bool* done) {
  std::uint64_t offset = 0;
  for (int i = 0; i < config.samples; ++i) {
    const VirtAddr addr = enclave.address(offset);
    const Cycles before = actor.read_timer(timer);
    const auto r = co_await actor.read(addr);
    const Cycles after = actor.read_timer(timer);
    co_await actor.clflush(addr);

    series->measured.add(static_cast<double>(after - before));
    series->truth.add(static_cast<double>(r.latency));
    series->overhead.add(static_cast<double>(after - before) -
                         static_cast<double>(r.latency));
    offset = (offset + kPageSize) % enclave.size();
    co_await actor.sleep_for(config.gap);
  }
  *done = true;
}

/// Non-enclave rdtsc baseline over general-region memory.
sim::Process native_timer_study(sim::Actor& actor, VirtAddr buffer,
                                std::uint64_t bytes, TimingStudyConfig config,
                                TimerSeries* series, bool* done) {
  const sim::TimerModel timer = sim::native_rdtsc_timer();
  std::uint64_t offset = 0;
  for (int i = 0; i < config.samples; ++i) {
    const VirtAddr addr = buffer + offset;
    const Cycles before = actor.read_timer(timer);
    const auto r = co_await actor.read(addr);
    const Cycles after = actor.read_timer(timer);
    co_await actor.clflush(addr);

    series->measured.add(static_cast<double>(after - before));
    series->truth.add(static_cast<double>(r.latency));
    series->overhead.add(static_cast<double>(after - before) -
                         static_cast<double>(r.latency));
    offset = (offset + kLineSize) % bytes;
    co_await actor.sleep_for(config.gap);
  }
  *done = true;
}

}  // namespace

TimingStudyResult run_timing_study(TestBed& bed,
                                   const TimingStudyConfig& config) {
  TimingStudyResult result;

  // SGX v1 rule: rdtsc faults in enclave mode.
  try {
    (void)bed.spy().read_timer(sim::native_rdtsc_timer());
  } catch (const sim::ModeViolation&) {
    result.rdtsc_faults_in_enclave = true;
  }

  bool done = false;
  bed.scheduler().spawn(enclave_timer_study(bed.spy(), bed.spy_enclave(),
                                            sim::ocall_timer(), config,
                                            &result.ocall, &done));
  bed.run_until_flag(done);

  done = false;
  bed.scheduler().spawn(enclave_timer_study(bed.spy(), bed.spy_enclave(),
                                            sim::shared_clock_timer(), config,
                                            &result.shared_clock, &done));
  bed.run_until_flag(done);

  done = false;
  sim::Actor native_actor(bed.system(), CoreId{2}, CpuMode::kNonEnclave);
  const VirtAddr buffer = sim::map_general_buffer(
      native_actor, VirtAddr{0x5000'0000'0000ULL}, 1 << 20);
  bed.scheduler().spawn(native_timer_study(native_actor, buffer, 1 << 20,
                                           config, &result.native, &done));
  bed.run_until_flag(done);

  result.done = true;
  return result;
}

}  // namespace meecc::channel
