// The standard experiment rig: one simulated machine, a trojan and a spy in
// separate enclaves on separate physical cores, a noise core and a background
// core — the setup of paper §2.3 / §5.4.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/types.h"
#include "sgx/enclave.h"
#include "sim/actor.h"
#include "sim/noise.h"
#include "sim/system.h"

namespace meecc::channel {

/// Fig. 8 noise environments.
enum class NoiseEnv {
  kNone,          ///< (a) only ambient background activity
  kMemoryStress,  ///< (b) stress-ng on cache + main memory (no MEE traffic)
  kMeeStride512,  ///< (c) co-tenant enclave walking with 512 B stride
  kMeeStride4K,   ///< (d) co-tenant enclave walking with 4 KB stride
};

std::string_view to_string(NoiseEnv env);

/// Short token for CLIs and result files: none|stress|mee512|mee4k.
std::string_view to_token(NoiseEnv env);

/// Inverse of to_token (also accepts a few aliases like "memstress");
/// nullopt for unrecognized tokens.
std::optional<NoiseEnv> noise_env_from_string(std::string_view token);

struct TestBedConfig {
  sim::SystemConfig system;
  std::uint64_t trojan_enclave_bytes = 768 * 1024;
  std::uint64_t spy_enclave_bytes = 512 * 1024;
  std::uint64_t noise_enclave_bytes = 4 * 1024 * 1024;
  std::uint64_t background_enclave_bytes = 2 * 1024 * 1024;
  /// Ambient protected-region activity (OS/SGX runtime housekeeping). The
  /// residual error floor of the channel comes from here. 0 disables.
  Cycles background_mean_gap = 52000;
  NoiseEnv noise = NoiseEnv::kNone;
  /// When false, the Fig. 8 noise agent is not spawned at construction;
  /// call TestBed::start_noise() once channel setup is done (co-tenant load
  /// arriving mid-communication, which is what Fig. 8 measures).
  bool noise_autostart = true;
};

/// A TestBedConfig with a small-but-representative machine: 4 cores, 32 MB
/// EPC, MEE cache 64 KB/8-way/128 sets, 4.2 GHz.
TestBedConfig default_testbed_config(std::uint64_t seed = 42);

/// Warm test-bed state at a quiesce boundary (environment agents
/// cancelled, scheduler drained): the machine snapshot plus each actor's
/// local clock, RNG stream and address space, and whether deferred noise
/// had started. Forking from it skips whatever warm-up produced it —
/// typically Algorithm 1 + monitor discovery.
struct TestBedSnapshot {
  struct ActorState {
    Cycles clock = 0;
    Rng rng;
    mem::VirtualAddressSpace vas;
  };

  sim::SystemSnapshot system;
  std::array<ActorState, 4> actors;  ///< trojan, spy, noise, background
  bool noise_started = false;
};

/// Snapshot wire format for a full bed: the machine snapshot plus each
/// actor's clock/RNG/address space (pages in sorted order — canonical
/// bytes) and the deferred-noise flag. `shape` must be a System built from
/// the donor bed's system config; see sim/snapshot_io.h for the contract.
void encode_testbed_snapshot(io::Writer& w, sim::System& shape,
                             const TestBedSnapshot& snap);
TestBedSnapshot decode_testbed_snapshot(io::Reader& r, sim::System& shape);

class TestBed {
 public:
  explicit TestBed(const TestBedConfig& config);

  /// Fork constructor: rebuilds the machine from `config` — replaying the
  /// deterministic construction prefix (RNG fork order, EPC frame
  /// allocation) — then overwrites all mutable state from `snap` and
  /// respawns the environment agents. The result is observationally
  /// identical to the donor bed at its quiesce boundary. `config` must
  /// equal the config the donor was built from.
  TestBed(const TestBedConfig& config, const TestBedSnapshot& snap);

  sim::System& system() { return *system_; }
  sim::Scheduler& scheduler() { return system_->scheduler(); }

  sim::Actor& trojan() { return *trojan_actor_; }
  sim::Actor& spy() { return *spy_actor_; }
  sgx::Enclave& trojan_enclave() { return *trojan_enclave_; }
  sgx::Enclave& spy_enclave() { return *spy_enclave_; }

  /// Runs the scheduler until `done` becomes true. Throws CheckFailure if
  /// the event queue drains or `max_cycles` elapse first.
  void run_until_flag(const bool& done, Cycles max_cycles = 2'000'000'000ULL);

  /// Spawns the configured Fig. 8 noise agent if it is not running yet
  /// (no-op for NoiseEnv::kNone or if it auto-started).
  void start_noise();

  /// Cancels the environment agents (background activity + noise), leaving
  /// the scheduler quiesced so snapshot() can run. Every other agent must
  /// already have finished — call between channel phases, not mid-run.
  void quiesce_environment();

  /// Re-spawns the agents cancelled by quiesce_environment(), in the
  /// original spawn order. A respawned agent restarts its loop body (fresh
  /// draws from the actor's live RNG stream), so the boundary is NOT a
  /// no-op — both the fork path and the fresh path must pass through the
  /// same quiesce→respawn boundary to stay trace-identical.
  void respawn_environment();

  /// Captures the bed's full state. Call between quiesce_environment() and
  /// respawn_environment().
  TestBedSnapshot snapshot();

  /// Rewinds a used bed back to `snap` in place — the recycling equivalent
  /// of the fork constructor, reusing the machine's cache planes, DRAM
  /// delta buckets, arena chunks and pad tables instead of reallocating
  /// them. Returns false (leaving the bed unusable) if the bed cannot be
  /// quiesced — an aborted trial left agents live — in which case the
  /// caller must discard it and fork a fresh bed. `snap` must come from a
  /// bed with an identical config, and the caller must keep it alive and
  /// unmoved while the bed is recycled against it (the O(touched) counter
  /// rewind keys on its address).
  bool try_reset(const TestBedSnapshot& snap);

  const TestBedConfig& config() const { return config_; }

 private:
  void build_machine();
  void spawn_environment();
  void spawn_noise_agent();
  void restore_actors(const TestBedSnapshot& snap);

  TestBedConfig config_;
  bool noise_started_ = false;
  sim::ProcessHandle background_handle_;
  sim::ProcessHandle noise_handle_;
  std::unique_ptr<sim::System> system_;
  std::unique_ptr<sim::Actor> trojan_actor_;
  std::unique_ptr<sim::Actor> spy_actor_;
  std::unique_ptr<sim::Actor> noise_actor_;
  std::unique_ptr<sim::Actor> background_actor_;
  std::unique_ptr<sgx::Enclave> trojan_enclave_;
  std::unique_ptr<sgx::Enclave> spy_enclave_;
  std::unique_ptr<sgx::Enclave> noise_enclave_;
  std::unique_ptr<sgx::Enclave> background_enclave_;
};

}  // namespace meecc::channel
