// Shared attack primitives used by the reverse-engineering algorithms and
// the covert channel. All are Tasks: they run on the calling agent's clock.
#pragma once

#include <vector>

#include "channel/classify.h"
#include "common/types.h"
#include "sim/actor.h"
#include "sim/timer.h"

namespace meecc::channel {

/// Loads `addr` and immediately clflushes it: the data line leaves the CPU
/// hierarchy but its versions line stays in the MEE cache — the core
/// primitive of the attack (paper §3 challenge 1).
inline sim::Task<> touch_and_flush(sim::Actor& actor, VirtAddr addr) {
  co_await actor.read(addr);
  co_await actor.clflush(addr);
}

/// access+flush over a whole set, in order.
inline sim::Task<> prime_pass(sim::Actor& actor,
                              const std::vector<VirtAddr>& set) {
  for (const VirtAddr addr : set) co_await touch_and_flush(actor, addr);
}

/// Measures one read of `addr` with the hyperthread shared clock (the only
/// usable enclave-mode timer, Fig. 2c) and flushes the line after.
inline sim::Task<Cycles> timed_probe(sim::Actor& actor, VirtAddr addr) {
  const sim::TimerModel timer = sim::shared_clock_timer();
  const Cycles before = actor.read_timer(timer);
  co_await actor.read(addr);
  const Cycles after = actor.read_timer(timer);
  co_await actor.clflush(addr);
  co_return after - before;
}

/// Seeds `classifier` with a robust versions-hit baseline: the first probe
/// loads `addr`'s versions line, the following `samples` probes hit it.
inline sim::Task<> calibrate_on_hits(sim::Actor& actor, VirtAddr addr,
                                     AdaptiveClassifier& classifier,
                                     int samples = 5) {
  co_await timed_probe(actor, addr);  // load
  std::vector<double> hits;
  hits.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i)
    hits.push_back(static_cast<double>(co_await timed_probe(actor, addr)));
  classifier.calibrate_from_samples(std::move(hits));
}

/// Algorithm 2's two-phase eviction: forward access+flush pass, fence, then
/// backward pass — defeats the MEE cache's approximate-LRU replacement,
/// which a single linear pass does not reliably flush (paper §5.3).
inline sim::Task<> evict_two_phase(sim::Actor& actor,
                                   const std::vector<VirtAddr>& set) {
  for (const VirtAddr addr : set) co_await touch_and_flush(actor, addr);
  actor.mfence();
  for (auto it = set.rbegin(); it != set.rend(); ++it)
    co_await touch_and_flush(actor, *it);
}

/// Algorithm 1's `eviction test`: load the victim's versions line, stream
/// the candidate set through the MEE cache, then measure the victim again.
/// Returns the measured victim latency (hit ⇒ survived, miss ⇒ evicted).
///
/// Deviation from the paper's pseudocode: the set is streamed with TWO
/// rounds of the §5.3 forward+backward pass over a freshly shuffled order,
/// rather than a single forward loop. Under the MEE cache's approximate LRU
/// a single forward pass almost never displaces the just-loaded victim
/// (exactly the behaviour §5.3 reports), and even one forward+backward round
/// deterministically fails from a measurable fraction of tree-PLRU states —
/// repeating it would fail identically every repeat. Shuffling the order
/// decorrelates repeats, so the caller's median vote converges.
inline sim::Task<Cycles> eviction_test(sim::Actor& actor,
                                       const std::vector<VirtAddr>& set,
                                       VirtAddr victim) {
  co_await touch_and_flush(actor, victim);
  actor.mfence();
  std::vector<VirtAddr> order = set;
  actor.rng().shuffle(order);
  co_await evict_two_phase(actor, order);
  actor.mfence();
  co_await evict_two_phase(actor, order);
  actor.mfence();
  co_return co_await timed_probe(actor, victim);
}


}  // namespace meecc::channel
