#include "channel/latency_survey.h"

#include "common/check.h"

namespace meecc::channel {
namespace {

sim::Process latency_survey_process(sim::Actor& actor,
                                    const sgx::Enclave& enclave,
                                    LatencySurveyConfig config,
                                    LatencySurveyResult* result) {
  for (const std::uint64_t stride : config.strides) {
    MEECC_CHECK(stride >= kLineSize && stride % kLineSize == 0);
    MEECC_CHECK(enclave.size() >= stride);
    StrideSeries series;
    series.stride = stride;
    series.histogram = Histogram(config.hist_lo, config.hist_hi,
                                 config.hist_bins);

    std::uint64_t offset = 0;
    for (int i = 0; i < config.samples_per_stride; ++i) {
      const VirtAddr addr = enclave.address(offset);
      const auto r = co_await actor.read(addr);
      co_await actor.clflush(addr);

      MEECC_CHECK_MSG(r.mee_level.has_value(),
                      "survey access did not reach the MEE");
      const auto latency = static_cast<double>(r.latency);
      series.histogram.add(latency);
      series.latency.add(latency);
      const auto level = static_cast<std::size_t>(*r.mee_level);
      ++series.stop_counts[level];
      result->per_level[level].add(latency);

      offset += stride;
      if (offset + kLineSize > enclave.size()) offset = 0;
      co_await actor.sleep_for(config.gap);
    }
    result->series.push_back(std::move(series));
  }
  result->done = true;
}

}  // namespace

LatencySurveyResult run_latency_survey(TestBed& bed,
                                       const LatencySurveyConfig& config) {
  LatencySurveyResult result;
  bed.scheduler().spawn(latency_survey_process(
      bed.trojan(), bed.trojan_enclave(), config, &result));
  bed.run_until_flag(result.done);
  return result;
}

}  // namespace meecc::channel
