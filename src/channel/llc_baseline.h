// Classic LLC Prime+Probe covert channel (Liu et al. [7], Maurice et al.
// [9]) on the same simulated machine — the comparison point the paper cites.
// It runs OUTSIDE enclaves: hugepage-grade physical knowledge is modelled by
// constructing the eviction set from ground truth, native rdtsc is legal,
// and the signal (LLC hit ≈ 4–44 cycles vs DRAM ≈ 330) is far larger than
// the MEE channel's — which is why LLC channels hit higher bit rates, and
// why defenses target them first (paper §5.5).
#pragma once

#include <cstdint>
#include <vector>

#include "channel/testbed.h"
#include "common/types.h"

namespace meecc::channel {

struct LlcChannelConfig {
  Cycles window = 2500;
  /// Per-line decode threshold: an LLC hit costs ≤ ~44 cycles + timer
  /// overhead, a DRAM refetch ≥ ~280 — any probed line above this means the
  /// trojan evicted something. (Same-LLC-set lines necessarily share an
  /// L1/L2 set too, so aggregate probe timing is noisy; per-line rdtsc
  /// timing is how the LLC attacks the paper cites [7][9] decode.)
  Cycles per_line_miss_threshold = 200;
  Cycles probe_phase_back = 1200;
  Cycles sync_jitter = 20;
};

struct LlcChannelResult {
  std::vector<std::uint8_t> sent;
  std::vector<std::uint8_t> received;
  std::vector<double> probe_times;
  std::size_t bit_errors = 0;
  double error_rate = 0.0;
  double kilobytes_per_second = 0.0;
  std::size_t eviction_set_size = 0;
};

LlcChannelResult run_llc_baseline(TestBed& bed, const LlcChannelConfig& config,
                                  const std::vector<std::uint8_t>& payload);

}  // namespace meecc::channel
