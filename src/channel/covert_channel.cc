#include "channel/covert_channel.h"

#include <algorithm>

#include "channel/candidates.h"
#include "channel/primitives.h"
#include "common/check.h"
#include "obs/hub.h"

namespace meecc::channel {
namespace {

struct DiscoveryShared {
  bool stop_beacon = false;
  bool done = false;
  bool beacon_exited = false;
  bool found = false;
  VirtAddr monitor{};
};

/// Trojan side of monitor discovery: keep evicting on a fixed cadence so the
/// spy can tell which of its candidates lives in the contested set. The pass
/// order rotates by one address per round: a line that has never been
/// evicted can sit in a tree-PLRU "orbit" that a fixed-order pass provably
/// never displaces; rotation dislodges any resident line within a few
/// rounds (after which the ordinary fixed-order eviction keeps working —
/// probe refills always land back inside the active orbit).
sim::Process discovery_beacon(sim::Actor& actor, std::vector<VirtAddr> set,
                              Cycles period, DiscoveryShared* shared) {
  std::size_t rotation = 0;
  while (!shared->stop_beacon) {
    std::vector<VirtAddr> order = set;
    std::rotate(order.begin(),
                order.begin() + static_cast<std::ptrdiff_t>(
                                    rotation++ % order.size()),
                order.end());
    co_await evict_two_phase(actor, order);
    co_await actor.sleep_for(period);
  }
  shared->beacon_exited = true;
}

/// Spy side: scan own candidates; the monitor address is the one the
/// trojan's beacon keeps evicting.
sim::Process discovery_scan(sim::Actor& actor, std::vector<VirtAddr> candidates,
                            Cycles period, int rounds, double margin,
                            DiscoveryShared* shared) {
  for (const VirtAddr candidate : candidates) {
    AdaptiveClassifier classifier(margin);
    co_await calibrate_on_hits(actor, candidate, classifier);
    int misses = 0;
    for (int r = 0; r < rounds; ++r) {
      co_await actor.sleep_for(2 * period);  // ≥ one full beacon cycle (evict ~9k + sleep) in between
      const Cycles measured = co_await timed_probe(actor, candidate);
      if (classifier.is_miss(static_cast<double>(measured))) ++misses;
    }
    if (misses * 2 > rounds) {  // majority of rounds evicted
      shared->monitor = candidate;
      shared->found = true;
      break;
    }
  }
  shared->stop_beacon = true;
  shared->done = true;
}

struct TransferShared {
  Cycles t0 = 0;
  bool sender_done = false;
  bool receiver_done = false;
};

sim::Process transfer_sender(sim::Actor& actor, std::vector<VirtAddr> set,
                             std::vector<std::uint8_t> bits,
                             ChannelConfig config, TransferShared* shared) {
  obs::Hub& hub = actor.system().hub();
  auto group = hub.registry().group("channel");
  obs::Counter ones = group.counter("send.ones");
  obs::Counter zeros = group.counter("send.zeros");

  // Warmup eviction well before T0: loads the trojan's versions lines (a
  // cold first '1' costs ~13k instead of ~9k cycles) and puts the monitor
  // line's way into the replacement orbit the steady-state eviction works
  // from. The spy recalibrates after this, right before T0.
  co_await actor.sleep_until(shared->t0 - 2 * config.window);
  co_await evict_two_phase(actor, set);

  // The pass order rotates by one address per '1' sent: under tree-PLRU a
  // FIXED-order fwd+bwd pass can settle into an orbit that never displaces
  // the monitor line (seed-dependent, then deterministic for the whole
  // transfer); rotation costs nothing and provably breaks such orbits
  // within a few sends.
  std::size_t rotation = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const Cycles window_start = shared->t0 + i * config.window;
    const Cycles jitter = actor.rng().next_below(config.sync_jitter + 1);
    co_await actor.sleep_until(window_start + jitter);
    if (bits[i] != 0) {
      ones.inc();
      std::vector<VirtAddr> order = set;
      std::rotate(order.begin(),
                  order.begin() + static_cast<std::ptrdiff_t>(
                                      rotation++ % order.size()),
                  order.end());
      co_await evict_two_phase(actor, order);
    } else {
      zeros.inc();
    }
    if (hub.tracing())
      hub.trace({.cycle = actor.now(),
                 .component = obs::Component::kChannel,
                 .core = actor.core().value,
                 .addr = 0,
                 .kind = "send",
                 .outcome = bits[i] != 0 ? "one" : "zero",
                 .value = static_cast<std::int64_t>(i)});
    // bit 0: busy loop for Tsync (the next sleep_until models it)
  }
  shared->sender_done = true;
}

sim::Process transfer_receiver(sim::Actor& actor, VirtAddr monitor,
                               std::size_t bit_count, ChannelConfig config,
                               TransferShared* shared, ChannelResult* result) {
  obs::Hub& hub = actor.system().hub();
  auto group = hub.registry().group("channel");
  obs::Counter probe_hits = group.counter("probe.hits");
  obs::Counter probe_misses = group.counter("probe.misses");

  const Cycles probe_phase =
      std::max(config.window - config.probe_phase_back, config.window / 2);

  // Warmup: establish the versions-hit baseline right before T0.
  AdaptiveClassifier classifier(config.classifier_margin);
  co_await actor.sleep_until(shared->t0 - 8000);
  co_await calibrate_on_hits(actor, monitor, classifier);

  for (std::size_t i = 0; i < bit_count; ++i) {
    const Cycles when = shared->t0 + i * config.window + probe_phase;
    const Cycles jitter = actor.rng().next_below(config.sync_jitter + 1);
    co_await actor.sleep_until(when + jitter);
    const Cycles measured = co_await timed_probe(actor, monitor);
    const bool miss = classifier.is_miss(static_cast<double>(measured));
    (miss ? probe_misses : probe_hits).inc();
    if (hub.tracing())
      hub.trace({.cycle = actor.now(),
                 .component = obs::Component::kChannel,
                 .core = actor.core().value,
                 .addr = monitor.raw,
                 .kind = "probe",
                 .outcome = miss ? "miss" : "hit",
                 .value = static_cast<std::int64_t>(measured)});
    result->received.push_back(miss ? 1 : 0);
    result->probe_times.push_back(static_cast<double>(measured));
    // The probe itself re-primed the monitor's versions line on a miss and
    // refreshed it on a hit — no separate prime step is needed (§5.3).
  }
  shared->receiver_done = true;
}

}  // namespace

std::vector<std::uint8_t> alternating_bits(std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = i % 2;
  return bits;
}

std::vector<std::uint8_t> pattern_100100(std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (i % 3 == 0) ? 1 : 0;
  return bits;
}

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_below(2));
  return bits;
}

ChannelSetup setup_covert_channel(TestBed& bed, const ChannelConfig& config,
                                  const EvictionSetResult* precomputed) {
  ChannelSetup setup;

  // Phase 1 — trojan recovers an eviction set (Algorithm 1).
  EvictionSetConfig ev_config = config.eviction;
  ev_config.offset_unit = config.offset_unit;
  setup.eviction = precomputed ? *precomputed : find_eviction_set(bed, ev_config);
  MEECC_CHECK_MSG(setup.eviction.eviction_set.size() >= 2,
                  "Algorithm 1 failed to recover an eviction set");

  // Phase 2 — spy discovers its monitor address against the beacon.
  // Align both agents' local clocks first: Algorithm 1 advanced only the
  // trojan's, and a lagging spy would otherwise scan "before" the beacon.
  const Cycles phase2_start = bed.scheduler().now();
  bed.trojan().busy_wait_until(phase2_start);
  bed.spy().busy_wait_until(phase2_start);
  DiscoveryShared discovery;
  const auto spy_candidates =
      make_candidate_set(bed.spy_enclave(), 0,
                         bed.spy_enclave().page_count(), config.offset_unit);
  bed.scheduler().spawn(discovery_beacon(bed.trojan(),
                                         setup.eviction.eviction_set,
                                         config.beacon_period, &discovery));
  bed.scheduler().spawn(discovery_scan(bed.spy(), spy_candidates,
                                       config.beacon_period,
                                       config.discovery_rounds,
                                       config.classifier_margin, &discovery));
  bed.run_until_flag(discovery.done);
  // Drain the beacon before handing the trojan actor to the next phase: a
  // mid-eviction beacon sharing the actor with the transfer sender would
  // corrupt the shared local clock (and with it, MEE arrival times).
  bed.run_until_flag(discovery.beacon_exited);
  setup.monitor_found = discovery.found;
  MEECC_CHECK_MSG(discovery.found, "spy found no monitor address");
  setup.monitor = discovery.monitor;
  return setup;
}

ChannelResult transfer_covert_channel(TestBed& bed, const ChannelConfig& config,
                                      const std::vector<std::uint8_t>& payload,
                                      const ChannelSetup& setup) {
  MEECC_CHECK(!payload.empty());
  MEECC_CHECK(setup.monitor_found);
  ChannelResult result;
  result.sent = payload;
  result.eviction = setup.eviction;
  result.monitor = setup.monitor;
  result.monitor_found = true;

  TransferShared shared;
  const Cycles slack = 2 * config.window + 20000;
  shared.t0 =
      ((bed.scheduler().now() + slack) / config.window + 1) * config.window;
  const Cycles start = bed.scheduler().now();
  bed.scheduler().spawn(transfer_sender(bed.trojan(),
                                        setup.eviction.eviction_set,
                                        payload, config, &shared));
  bed.scheduler().spawn(transfer_receiver(bed.spy(), setup.monitor,
                                          payload.size(), config, &shared,
                                          &result));
  bed.run_until_flag(shared.receiver_done);
  result.transfer_cycles = bed.scheduler().now() - start;

  result.bit_errors = 0;
  for (std::size_t i = 0; i < payload.size(); ++i)
    if (result.received[i] != payload[i]) ++result.bit_errors;
  result.error_rate = static_cast<double>(result.bit_errors) /
                      static_cast<double>(payload.size());
  result.kilobytes_per_second =
      bed.system().bytes_per_second(1.0 / static_cast<double>(config.window)) /
      1000.0;
  return result;
}

ChannelResult run_covert_channel(TestBed& bed, const ChannelConfig& config,
                                 const std::vector<std::uint8_t>& payload,
                                 const EvictionSetResult* precomputed) {
  const ChannelSetup setup = setup_covert_channel(bed, config, precomputed);
  // Deferred noise arrives once the channel is live (Fig. 8 scenario).
  bed.start_noise();
  return transfer_covert_channel(bed, config, payload, setup);
}

}  // namespace meecc::channel
