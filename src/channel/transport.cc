#include "channel/transport.h"

#include "common/check.h"
#include "obs/hub.h"

namespace meecc::channel {
namespace {

// Bit layout within a codeword byte: bit i = Hamming position i+1.
// Positions 1,2,4 are parity; 3,5,6,7 carry data bits d1..d4 (MSB first).
constexpr int kDataPositions[4] = {3, 5, 6, 7};

std::uint8_t get_bit(std::uint8_t v, int position) {
  return static_cast<std::uint8_t>((v >> (position - 1)) & 1);
}

void set_bit(std::uint8_t& v, int position, std::uint8_t bit) {
  if (bit)
    v = static_cast<std::uint8_t>(v | (1u << (position - 1)));
  else
    v = static_cast<std::uint8_t>(v & ~(1u << (position - 1)));
}

}  // namespace

std::uint8_t hamming74_encode(std::uint8_t nibble) {
  MEECC_CHECK(nibble < 16);
  std::uint8_t code = 0;
  for (int i = 0; i < 4; ++i) {
    const auto bit = static_cast<std::uint8_t>((nibble >> (3 - i)) & 1);
    set_bit(code, kDataPositions[i], bit);
  }
  // Parity bit at position p covers every position whose index has bit p set.
  for (int p : {1, 2, 4}) {
    std::uint8_t parity = 0;
    for (int position = 1; position <= 7; ++position) {
      if (position != p && (position & p)) parity ^= get_bit(code, position);
    }
    set_bit(code, p, parity);
  }
  return code;
}

HammingDecode hamming74_decode(std::uint8_t codeword) {
  std::uint8_t code = codeword & 0x7f;
  int syndrome = 0;
  for (int p : {1, 2, 4}) {
    std::uint8_t parity = 0;
    for (int position = 1; position <= 7; ++position) {
      if (position & p) parity ^= get_bit(code, position);
    }
    if (parity) syndrome |= p;
  }
  HammingDecode result;
  if (syndrome != 0) {
    set_bit(code, syndrome, static_cast<std::uint8_t>(!get_bit(code, syndrome)));
    result.corrected = true;
  }
  for (int i = 0; i < 4; ++i) {
    result.nibble = static_cast<std::uint8_t>(
        (result.nibble << 1) | get_bit(code, kDataPositions[i]));
  }
  return result;
}

std::vector<std::uint8_t> interleave(const std::vector<std::uint8_t>& bits,
                                     std::size_t depth) {
  MEECC_CHECK(depth > 0);
  MEECC_CHECK_MSG(bits.size() % depth == 0,
                  "interleaver needs a multiple of the depth");
  const std::size_t width = bits.size() / depth;
  std::vector<std::uint8_t> out;
  out.reserve(bits.size());
  for (std::size_t col = 0; col < width; ++col)
    for (std::size_t row = 0; row < depth; ++row)
      out.push_back(bits[row * width + col]);
  return out;
}

std::vector<std::uint8_t> deinterleave(const std::vector<std::uint8_t>& bits,
                                       std::size_t depth) {
  MEECC_CHECK(depth > 0);
  MEECC_CHECK(bits.size() % depth == 0);
  const std::size_t width = bits.size() / depth;
  std::vector<std::uint8_t> out(bits.size());
  std::size_t i = 0;
  for (std::size_t col = 0; col < width; ++col)
    for (std::size_t row = 0; row < depth; ++row) out[row * width + col] = bits[i++];
  return out;
}

std::uint16_t crc16(const std::vector<std::uint8_t>& bytes) {
  std::uint16_t crc = 0xFFFF;
  for (const std::uint8_t byte : bytes) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

namespace {

void append_nibble_coded(std::vector<std::uint8_t>& bits, std::uint8_t nibble) {
  const std::uint8_t code = hamming74_encode(nibble);
  for (int i = 0; i < 7; ++i)
    bits.push_back(static_cast<std::uint8_t>((code >> i) & 1));
}

void append_byte_coded(std::vector<std::uint8_t>& bits, std::uint8_t byte) {
  append_nibble_coded(bits, static_cast<std::uint8_t>(byte >> 4));
  append_nibble_coded(bits, static_cast<std::uint8_t>(byte & 0x0f));
}

}  // namespace

std::vector<std::uint8_t> encode_message(const std::vector<std::uint8_t>& message,
                                         const TransportConfig& config) {
  MEECC_CHECK(message.size() < 0x10000);
  MEECC_CHECK(config.repetition >= 1);
  std::vector<std::uint8_t> bits;
  const auto length = static_cast<std::uint16_t>(message.size());
  append_byte_coded(bits, static_cast<std::uint8_t>(length >> 8));
  append_byte_coded(bits, static_cast<std::uint8_t>(length & 0xff));
  for (const std::uint8_t byte : message) append_byte_coded(bits, byte);
  const std::uint16_t crc = crc16(message);
  append_byte_coded(bits, static_cast<std::uint8_t>(crc >> 8));
  append_byte_coded(bits, static_cast<std::uint8_t>(crc & 0xff));
  while (bits.size() % config.interleave_depth != 0) bits.push_back(0);
  auto wire = interleave(bits, config.interleave_depth);
  if (config.repetition > 1) {
    std::vector<std::uint8_t> repeated;
    repeated.reserve(wire.size() * static_cast<std::size_t>(config.repetition));
    for (const std::uint8_t bit : wire)
      for (int r = 0; r < config.repetition; ++r) repeated.push_back(bit);
    wire = std::move(repeated);
  }
  return wire;
}

std::optional<DecodedMessage> decode_message(
    const std::vector<std::uint8_t>& bits, const TransportConfig& config) {
  std::vector<std::uint8_t> wire = bits;
  if (config.repetition > 1) {
    const auto repetition = static_cast<std::size_t>(config.repetition);
    if (wire.size() % repetition != 0) return std::nullopt;
    std::vector<std::uint8_t> voted;
    voted.reserve(wire.size() / repetition);
    for (std::size_t i = 0; i < wire.size(); i += repetition) {
      int ones = 0;
      for (std::size_t r = 0; r < repetition; ++r) ones += wire[i + r];
      voted.push_back(ones * 2 > static_cast<int>(repetition) ? 1 : 0);
    }
    wire = std::move(voted);
  }
  if (wire.empty() || wire.size() % config.interleave_depth != 0)
    return std::nullopt;
  const auto stream = deinterleave(wire, config.interleave_depth);

  DecodedMessage result;
  std::size_t cursor = 0;
  auto take_byte = [&]() -> std::optional<std::uint8_t> {
    if (cursor + 14 > stream.size()) return std::nullopt;
    std::uint8_t byte = 0;
    for (int half = 0; half < 2; ++half) {
      std::uint8_t code = 0;
      for (int i = 0; i < 7; ++i)
        code = static_cast<std::uint8_t>(code | (stream[cursor++] << i));
      const HammingDecode decoded = hamming74_decode(code);
      if (decoded.corrected) ++result.corrected_bits;
      byte = static_cast<std::uint8_t>((byte << 4) | decoded.nibble);
    }
    return byte;
  };

  const auto len_hi = take_byte();
  const auto len_lo = take_byte();
  if (!len_hi || !len_lo) return std::nullopt;
  const std::size_t length = (static_cast<std::size_t>(*len_hi) << 8) | *len_lo;
  if (cursor + (length + 2) * 14 > stream.size()) return std::nullopt;

  result.payload.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const auto byte = take_byte();
    if (!byte) return std::nullopt;
    result.payload.push_back(*byte);
  }
  const auto crc_hi = take_byte();
  const auto crc_lo = take_byte();
  if (!crc_hi || !crc_lo) return std::nullopt;
  const std::uint16_t received_crc =
      static_cast<std::uint16_t>((*crc_hi << 8) | *crc_lo);
  result.crc_ok = received_crc == crc16(result.payload);
  return result;
}

ReliableTransferResult run_reliable_transfer(TestBed& bed,
                                             const ChannelConfig& config,
                                             const std::vector<std::uint8_t>& message,
                                             const ChannelSetup& setup,
                                             const TransportConfig& transport) {
  MEECC_CHECK(transport.max_attempts >= 1);
  ReliableTransferResult result;
  const auto bits = encode_message(message, transport);

  auto group = bed.system().hub().registry().group("channel");
  obs::Counter attempts = group.counter("transport.attempts");
  obs::Counter retransmissions = group.counter("transport.retransmissions");
  obs::Counter corrected = group.counter("transport.corrected_bits");
  obs::Counter crc_failures = group.counter("transport.crc_failures");
  obs::Counter delivered = group.counter("transport.delivered");

  for (int attempt = 0; attempt < transport.max_attempts; ++attempt) {
    ++result.attempts;
    attempts.inc();
    if (attempt > 0) retransmissions.inc();
    result.channel = transfer_covert_channel(bed, config, bits, setup);
    result.raw_bit_errors = result.channel.bit_errors;

    const auto decoded = decode_message(result.channel.received, transport);
    if (decoded) {
      result.corrected_bits = decoded->corrected_bits;
      result.delivered = decoded->crc_ok && decoded->payload == message;
      result.payload = decoded->payload;
      corrected.inc(decoded->corrected_bits);
      if (!decoded->crc_ok) crc_failures.inc();
    }
    if (result.delivered) break;  // ARQ: stop once the CRC verifies
  }
  if (result.delivered) delivered.inc();

  result.payload_kilobytes_per_second =
      result.channel.kilobytes_per_second *
      (static_cast<double>(message.size()) * 8.0 /
       static_cast<double>(bits.size())) /
      static_cast<double>(result.attempts);
  return result;
}

}  // namespace meecc::channel
