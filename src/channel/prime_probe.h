// Classic Prime+Probe transplanted onto the MEE cache (paper §5.2, Fig. 6a)
// — the baseline this paper's protocol replaces, shown here to FAIL.
//
// Roles as in LLC P+P: the SPY owns the eviction set, primes all 8 ways,
// and probes all 8 each window; the TROJAN touches a single conflicting
// address to send '1'. The probe costs 8 protected accesses (> 3500 cycles);
// the one-miss signal (~300 cycles) drowns in the 8×-amplified common-mode
// DRAM drift plus jitter, so the decoded stream is near-random.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/eviction_set.h"
#include "channel/testbed.h"
#include "common/types.h"

namespace meecc::channel {

struct PrimeProbeConfig {
  Cycles window = 15000;
  std::uint32_t offset_unit = 1;
  EvictionSetConfig eviction;  ///< run on the SPY's enclave
  /// Decode margin over the adaptive all-hit baseline (cycles). Set near the
  /// one-miss delta; the experiment shows no margin works.
  double classifier_margin = 150.0;
  Cycles probe_phase_back = 6000;
  Cycles sync_jitter = 40;
  Cycles beacon_period = 25000;
  int discovery_rounds = 8;

  PrimeProbeConfig() { eviction.offset_unit = offset_unit; }
};

struct PrimeProbeResult {
  std::vector<std::uint8_t> sent;
  std::vector<std::uint8_t> received;
  std::vector<double> probe_times;  ///< per bit — the Fig. 6(a) trace
  std::size_t bit_errors = 0;
  double error_rate = 0.0;
  EvictionSetResult eviction;      ///< spy's set
  VirtAddr trojan_address{};
  bool trojan_address_found = false;
};

PrimeProbeResult run_prime_probe_baseline(TestBed& bed,
                                          const PrimeProbeConfig& config,
                                          const std::vector<std::uint8_t>& payload);

}  // namespace meecc::channel
