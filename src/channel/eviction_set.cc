#include "channel/eviction_set.h"

#include <algorithm>

#include "channel/classify.h"
#include "channel/primitives.h"
#include "common/check.h"
#include "common/stats.h"

namespace meecc::channel {
namespace {

/// Median-of-`repeats` eviction test: did `set` evict `victim`?
/// The smallest detectable miss is an L0 hit only ~65 cycles above the
/// versions-hit baseline, so single measurements (σ ≈ 15 cycles of DRAM
/// jitter + timer quantization) are too noisy — the median tightens the
/// statistic by √repeats.
sim::Task<bool> voted_eviction(sim::Actor& actor,
                               const std::vector<VirtAddr>& set,
                               VirtAddr victim, AdaptiveClassifier& classifier,
                               int repeats) {
  std::vector<double> measured;
  measured.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    measured.push_back(
        static_cast<double>(co_await eviction_test(actor, set, victim)));
  }
  // classify() (no EWMA update): the baseline comes solely from the
  // explicit recalibrations, so borderline misses cannot creep it upward.
  co_return classifier.classify(median(std::move(measured)));
}

}  // namespace

sim::Process find_eviction_set_process(sim::Actor& actor,
                                       const sgx::Enclave& enclave,
                                       EvictionSetConfig config,
                                       EvictionSetResult* result) {
  MEECC_CHECK(result != nullptr);
  const std::vector<VirtAddr> candidates = make_candidate_set(
      enclave, config.first_page, config.candidate_pages, config.offset_unit);

  // Scratch address for baseline calibration: same enclave, different
  // 512 B offset unit, so it shares no versions line with any candidate.
  const VirtAddr scratch =
      enclave.address(config.first_page * kPageSize +
                      ((config.offset_unit + 1) % kOffsetUnits) * kChunkSize);

  AdaptiveClassifier classifier(config.classifier_margin);
  co_await calibrate_on_hits(actor, scratch, classifier);

  // DRAM latency drifts on millisecond scales; recalibrate the hit baseline
  // every few decisions so the margin stays centred in the hit↔L0 gap.
  int decisions_since_calibration = 0;
  auto maybe_recalibrate = [&]() -> sim::Task<> {
    if (++decisions_since_calibration >= 4) {
      decisions_since_calibration = 0;
      co_await calibrate_on_hits(actor, scratch, classifier);
    }
  };

  // Phase 1: greedily grow the index address set (paper lines 13-17).
  auto& index_set = result->index_set;
  for (const VirtAddr candidate : candidates) {
    const bool evicted = co_await voted_eviction(actor, index_set, candidate,
                                                 classifier, config.repeats);
    if (!evicted) index_set.push_back(candidate);
    co_await maybe_recalibrate();
  }

  // Phases 2+3 with self-validation: pick a test address the index set
  // evicts, peel the index set down to the eviction set, then check that
  // the recovered set is itself sufficient to evict the test address. A
  // transient co-resident line (background enclave traffic parked in the
  // contested set) can cost phase 3 a member; validation catches that and
  // the attacker simply retries with the next test address.
  for (const VirtAddr test : candidates) {
    if (std::find(index_set.begin(), index_set.end(), test) != index_set.end())
      continue;

    // Phase 2 (lines 18-23): does the index set evict this candidate?
    co_await prime_pass(actor, index_set);
    actor.mfence();
    const bool usable = co_await voted_eviction(actor, index_set, test,
                                                classifier, config.repeats);
    co_await maybe_recalibrate();
    if (!usable) continue;
    result->test_address = test;
    result->found_test_address = true;

    // Phase 3 (lines 24-32): peel index-set members; the ones whose removal
    // lets the test address survive form the eviction set.
    result->eviction_set.clear();
    for (const VirtAddr target : index_set) {
      std::vector<VirtAddr> reduced;
      reduced.reserve(index_set.size() - 1);
      for (const VirtAddr addr : index_set)
        if (addr != target) reduced.push_back(addr);

      co_await prime_pass(actor, index_set);
      actor.mfence();
      const bool evicted = co_await voted_eviction(
          actor, reduced, result->test_address, classifier, config.repeats);
      if (!evicted) result->eviction_set.push_back(target);
      co_await maybe_recalibrate();
    }

    // Refinement sweep: a falsely-included member is redundant — the set
    // minus that member still evicts the test address. Repeat until stable
    // (each removal shrinks the set, so this terminates).
    bool pruned = true;
    while (pruned && result->eviction_set.size() > 1) {
      pruned = false;
      for (std::size_t i = 0; i < result->eviction_set.size(); ++i) {
        std::vector<VirtAddr> reduced;
        reduced.reserve(result->eviction_set.size() - 1);
        for (std::size_t j = 0; j < result->eviction_set.size(); ++j)
          if (j != i) reduced.push_back(result->eviction_set[j]);

        const bool evicted = co_await voted_eviction(
            actor, reduced, result->test_address, classifier, config.repeats);
        co_await maybe_recalibrate();
        if (evicted) {
          result->eviction_set.erase(result->eviction_set.begin() +
                                     static_cast<std::ptrdiff_t>(i));
          pruned = true;
          break;
        }
      }
    }

    // Validation: the recovered set alone must evict the test address.
    const bool sufficient = co_await voted_eviction(
        actor, result->eviction_set, result->test_address, classifier,
        config.repeats);
    if (sufficient) break;
    result->eviction_set.clear();  // incomplete recovery — retry
    result->found_test_address = false;
  }

  result->done = true;
}

EvictionSetResult find_eviction_set(TestBed& bed,
                                    const EvictionSetConfig& config) {
  EvictionSetResult result;
  bed.scheduler().spawn(find_eviction_set_process(
      bed.trojan(), bed.trojan_enclave(), config, &result));
  bed.run_until_flag(result.done);
  return result;
}

}  // namespace meecc::channel
