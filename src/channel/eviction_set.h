// Algorithm 1 (paper §4.2): recovering an eviction address set — and with it
// the MEE cache associativity — using only timing.
//
// Phase 1 greedily grows the *index address set*: candidates whose versions
// line can co-reside with everything collected so far. Phase 2 finds a
// *test address* among the rejected candidates (one whose versions line the
// index set reliably evicts). Phase 3 removes index-set members one at a
// time: if removing a member lets the test address survive, that member is
// part of the eviction set. |eviction set| = cache associativity.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/candidates.h"
#include "channel/testbed.h"
#include "common/types.h"

namespace meecc::channel {

struct EvictionSetConfig {
  std::uint32_t offset_unit = 1;     ///< the "agreed index" (512 B unit)
  std::uint64_t first_page = 0;
  std::uint64_t candidate_pages = 96;
  int repeats = 5;            ///< measurements per decision (median taken)
  /// Decision margin above the versions-hit baseline. The nearest miss class
  /// (an L0 hit) sits ~65 cycles up, so the margin is centred in that gap.
  double classifier_margin = 90.0;
};

struct EvictionSetResult {
  std::vector<VirtAddr> eviction_set;
  std::vector<VirtAddr> index_set;
  VirtAddr test_address{};
  bool found_test_address = false;
  /// Recovered associativity = eviction_set.size().
  std::uint32_t associativity() const {
    return static_cast<std::uint32_t>(eviction_set.size());
  }
  bool done = false;
};

/// Runs Algorithm 1 on the test bed's trojan (blocking driver).
EvictionSetResult find_eviction_set(TestBed& bed,
                                    const EvictionSetConfig& config);

/// Coroutine form for embedding into larger agents; writes *result and sets
/// result->done when finished.
sim::Process find_eviction_set_process(sim::Actor& actor,
                                       const sgx::Enclave& enclave,
                                       EvictionSetConfig config,
                                       EvictionSetResult* result);

}  // namespace meecc::channel
