#include "channel/testbed.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "sim/snapshot_io.h"

namespace meecc::channel {

std::string_view to_string(NoiseEnv env) {
  switch (env) {
    case NoiseEnv::kNone:
      return "no noise";
    case NoiseEnv::kMemoryStress:
      return "cache+memory stress";
    case NoiseEnv::kMeeStride512:
      return "MEE noise, 512B stride";
    case NoiseEnv::kMeeStride4K:
      return "MEE noise, 4KB stride";
  }
  return "?";
}

std::string_view to_token(NoiseEnv env) {
  switch (env) {
    case NoiseEnv::kNone:
      return "none";
    case NoiseEnv::kMemoryStress:
      return "stress";
    case NoiseEnv::kMeeStride512:
      return "mee512";
    case NoiseEnv::kMeeStride4K:
      return "mee4k";
  }
  return "?";
}

std::optional<NoiseEnv> noise_env_from_string(std::string_view token) {
  if (token == "none") return NoiseEnv::kNone;
  if (token == "stress" || token == "memstress") return NoiseEnv::kMemoryStress;
  if (token == "mee512") return NoiseEnv::kMeeStride512;
  if (token == "mee4k") return NoiseEnv::kMeeStride4K;
  return std::nullopt;
}

TestBedConfig default_testbed_config(std::uint64_t seed) {
  TestBedConfig config;
  config.system.seed = seed;
  config.system.cores = 4;
  config.system.address_map.general_size = 64ull << 20;
  config.system.address_map.epc_size = 32ull << 20;
  return config;
}

TestBed::TestBed(const TestBedConfig& config) : config_(config) {
  build_machine();
  spawn_environment();
}

TestBed::TestBed(const TestBedConfig& config, const TestBedSnapshot& snap)
    : config_(config) {
  // Full construction replays the donor's deterministic prefix (RNG fork
  // order, EPC frame allocation, page-table layout), so restore() only has
  // to overwrite mutable state on top.
  build_machine();
  system_->restore(snap.system);
  restore_actors(snap);
  respawn_environment();
}

void TestBed::restore_actors(const TestBedSnapshot& snap) {
  sim::Actor* actors[] = {trojan_actor_.get(), spy_actor_.get(),
                          noise_actor_.get(), background_actor_.get()};
  for (std::size_t i = 0; i < snap.actors.size(); ++i) {
    actors[i]->restore_clock(snap.actors[i].clock);
    actors[i]->rng() = snap.actors[i].rng;
    // libstdc++ map assignment reuses the destination's nodes, so the
    // page-table copy does not reallocate on a recycled bed.
    actors[i]->vas() = snap.actors[i].vas;
  }
  noise_started_ = snap.noise_started;
}

bool TestBed::try_reset(const TestBedSnapshot& snap) {
  // Cancel is idempotent on empty handles; after a completed trial only the
  // environment agents are live, so this quiesces the bed. After an aborted
  // trial (exception mid-transfer) coroutine frames may still be parked —
  // they cannot be rewound, so report failure instead of CHECK-dying.
  scheduler().cancel(background_handle_);
  background_handle_ = sim::ProcessHandle{};
  scheduler().cancel(noise_handle_);
  noise_handle_ = sim::ProcessHandle{};
  if (!scheduler().idle() || scheduler().live_processes() != 0) return false;
  system_->restore_into(snap.system);
  restore_actors(snap);
  respawn_environment();
  return true;
}

void TestBed::build_machine() {
  system_ = std::make_unique<sim::System>(config_.system);

  trojan_actor_ =
      std::make_unique<sim::Actor>(*system_, CoreId{0}, CpuMode::kEnclave);
  spy_actor_ =
      std::make_unique<sim::Actor>(*system_, CoreId{1}, CpuMode::kEnclave);
  noise_actor_ =
      std::make_unique<sim::Actor>(*system_, CoreId{2}, CpuMode::kEnclave);
  background_actor_ =
      std::make_unique<sim::Actor>(*system_, CoreId{3}, CpuMode::kEnclave);

  // EPC frames are handed out contiguously (enclave-build order), so the
  // allocation order below fixes each enclave's alias-group coverage.
  trojan_enclave_ = std::make_unique<sgx::Enclave>(
      *trojan_actor_,
      sgx::EnclaveConfig{VirtAddr{0x7000'0000'0000ULL},
                         config_.trojan_enclave_bytes});
  spy_enclave_ = std::make_unique<sgx::Enclave>(
      *spy_actor_, sgx::EnclaveConfig{VirtAddr{0x7100'0000'0000ULL},
                                      config_.spy_enclave_bytes});
  noise_enclave_ = std::make_unique<sgx::Enclave>(
      *noise_actor_, sgx::EnclaveConfig{VirtAddr{0x7200'0000'0000ULL},
                                        config_.noise_enclave_bytes});
  background_enclave_ = std::make_unique<sgx::Enclave>(
      *background_actor_, sgx::EnclaveConfig{VirtAddr{0x7300'0000'0000ULL},
                                             config_.background_enclave_bytes});
}

void TestBed::spawn_environment() {
  if (config_.background_mean_gap > 0) {
    background_handle_ = scheduler().spawn(sim::background_activity(
        *background_actor_,
        sim::BackgroundConfig{.base = background_enclave_->base(),
                              .bytes = background_enclave_->size(),
                              .mean_gap = config_.background_mean_gap}));
  }
  if (config_.noise_autostart) start_noise();
}

void TestBed::start_noise() {
  if (noise_started_) return;
  noise_started_ = true;
  // Bring the noise core's clock up to date: a freshly-started co-tenant
  // must not generate traffic "in the past".
  noise_actor_->busy_wait_until(scheduler().now());
  if (config_.noise == NoiseEnv::kMemoryStress) {
    // The mapping survives quiesce/respawn (it lives in the actor's address
    // space, not in the agent), so it happens once here, not per spawn.
    sim::map_general_buffer(*noise_actor_, VirtAddr{0x6000'0000'0000ULL},
                            16ull << 20);
  }
  spawn_noise_agent();
}

void TestBed::spawn_noise_agent() {
  switch (config_.noise) {
    case NoiseEnv::kNone:
      break;
    case NoiseEnv::kMemoryStress:
      noise_handle_ = scheduler().spawn(sim::memory_stressor(
          *noise_actor_,
          sim::StressorConfig{.base = VirtAddr{0x6000'0000'0000ULL},
                              .bytes = 16ull << 20,
                              .gap = 120,
                              .flush_probability = 0.5}));
      break;
    case NoiseEnv::kMeeStride512:
      noise_handle_ = scheduler().spawn(sim::mee_stride_walker(
          *noise_actor_, sim::StrideWalkerConfig{.base = noise_enclave_->base(),
                                                 .bytes = noise_enclave_->size(),
                                                 .stride = 512,
                                                 .gap = 180}));
      break;
    case NoiseEnv::kMeeStride4K:
      // A 512 KB window keeps the lap short enough that the per-lap column
      // rotation sweeps all eight versions alias families within a transfer.
      noise_handle_ = scheduler().spawn(sim::mee_stride_walker(
          *noise_actor_, sim::StrideWalkerConfig{.base = noise_enclave_->base(),
                                                 .bytes = std::min<std::uint64_t>(
                                                     noise_enclave_->size(),
                                                     512 * 1024),
                                                 .stride = 4096,
                                                 .gap = 180}));
      break;
  }
}

void TestBed::quiesce_environment() {
  scheduler().cancel(background_handle_);
  background_handle_ = sim::ProcessHandle{};
  scheduler().cancel(noise_handle_);
  noise_handle_ = sim::ProcessHandle{};
  MEECC_CHECK_MSG(
      scheduler().idle() && scheduler().live_processes() == 0,
      "agents beyond the environment are still live at the quiesce boundary");
}

void TestBed::respawn_environment() {
  if (config_.background_mean_gap > 0) {
    background_handle_ = scheduler().spawn(sim::background_activity(
        *background_actor_,
        sim::BackgroundConfig{.base = background_enclave_->base(),
                              .bytes = background_enclave_->size(),
                              .mean_gap = config_.background_mean_gap}));
  }
  // Not start_noise(): the stress buffer is already mapped (restored with
  // the actor's address space) and the noise clock is already current.
  if (noise_started_) spawn_noise_agent();
}

TestBedSnapshot TestBed::snapshot() {
  return TestBedSnapshot{
      .system = system_->snapshot(),
      .actors = {{{trojan_actor_->now(), trojan_actor_->rng(),
                   trojan_actor_->vas()},
                  {spy_actor_->now(), spy_actor_->rng(), spy_actor_->vas()},
                  {noise_actor_->now(), noise_actor_->rng(),
                   noise_actor_->vas()},
                  {background_actor_->now(), background_actor_->rng(),
                   background_actor_->vas()}}},
      .noise_started = noise_started_};
}

void encode_testbed_snapshot(io::Writer& w, sim::System& shape,
                             const TestBedSnapshot& snap) {
  sim::encode_snapshot(w, shape, snap.system);
  for (const auto& actor : snap.actors) {
    w.u64(actor.clock);
    encode_rng(w, actor.rng);
    const auto pages = actor.vas.sorted_pages();
    w.u64(pages.size());
    for (const auto& [vpn, pfn] : pages) {
      w.u64(vpn);
      w.u64(pfn);
    }
  }
  w.u8(snap.noise_started ? 1 : 0);
}

TestBedSnapshot decode_testbed_snapshot(io::Reader& r, sim::System& shape) {
  // Actor states are spelled out (not brace-elided) because Rng's
  // constructor is explicit; every field is overwritten below anyway.
  TestBedSnapshot::ActorState blank{0, Rng(), mem::VirtualAddressSpace()};
  TestBedSnapshot snap{.system = sim::decode_snapshot(r, shape),
                       .actors = {{blank, blank, blank, blank}},
                       .noise_started = false};
  for (auto& actor : snap.actors) {
    actor.clock = r.u64();
    actor.rng = decode_rng(r);
    const std::uint64_t page_count = r.u64();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pages;
    pages.reserve(static_cast<std::size_t>(page_count));
    for (std::uint64_t i = 0; i < page_count; ++i) {
      const std::uint64_t vpn = r.u64();
      const std::uint64_t pfn = r.u64();
      pages.emplace_back(vpn, pfn);
    }
    actor.vas.import_pages(pages);
  }
  snap.noise_started = r.u8() != 0;
  return snap;
}

void TestBed::run_until_flag(const bool& done, Cycles max_cycles) {
  auto& scheduler = system_->scheduler();
  while (!done) {
    MEECC_CHECK_MSG(scheduler.step(),
                    "scheduler drained before the experiment finished");
    MEECC_CHECK_MSG(scheduler.now() < max_cycles,
                    "experiment exceeded " << max_cycles << " cycles");
  }
}

}  // namespace meecc::channel
