// Candidate address sets (paper §4.1).
//
// A candidate address set is a set of enclave virtual addresses, one per
// page at a fixed 4 KB stride, all sharing the same 512 B "offset unit"
// within their page. Every candidate's versions line therefore occupies the
// same relative slot of its page's "consecutive versions data region", and —
// with the contiguous EPC frames an enclave build produces — the absolute
// MEE-cache set cycles deterministically through the alias groups.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sgx/enclave.h"

namespace meecc::channel {

/// Number of distinct 512 B offset units in a page.
inline constexpr std::uint32_t kOffsetUnits = kPageSize / kChunkSize;  // 8

/// Builds a candidate set over `pages` consecutive enclave pages starting at
/// `first_page`, all at offset unit `offset_unit` (0..7).
std::vector<VirtAddr> make_candidate_set(const sgx::Enclave& enclave,
                                         std::uint64_t first_page,
                                         std::uint64_t pages,
                                         std::uint32_t offset_unit);

}  // namespace meecc::channel
