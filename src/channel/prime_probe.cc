#include "channel/prime_probe.h"

#include <algorithm>

#include "channel/candidates.h"
#include "channel/classify.h"
#include "channel/primitives.h"
#include "common/check.h"
#include "obs/hub.h"

namespace meecc::channel {
namespace {

struct DiscoveryShared {
  bool stop_beacon = false;
  bool done = false;
  bool beacon_exited = false;
  bool found = false;
  VirtAddr address{};
};

sim::Process spy_prime_beacon(sim::Actor& actor, std::vector<VirtAddr> set,
                              Cycles period, DiscoveryShared* shared) {
  // Rotated pass order: dislodges never-yet-evicted lines stuck in a
  // tree-PLRU orbit (see covert_channel.cc's discovery_beacon).
  std::size_t rotation = 0;
  while (!shared->stop_beacon) {
    std::vector<VirtAddr> order = set;
    std::rotate(order.begin(),
                order.begin() + static_cast<std::ptrdiff_t>(
                                    rotation++ % order.size()),
                order.end());
    co_await evict_two_phase(actor, order);
    co_await actor.sleep_for(period);
  }
  shared->beacon_exited = true;
}

/// Trojan looks for one of its own addresses that the spy's set evicts.
sim::Process trojan_conflict_scan(sim::Actor& actor,
                                  std::vector<VirtAddr> candidates,
                                  Cycles period, int rounds, double margin,
                                  DiscoveryShared* shared) {
  for (const VirtAddr candidate : candidates) {
    AdaptiveClassifier classifier(margin);
    co_await calibrate_on_hits(actor, candidate, classifier);
    int misses = 0;
    for (int r = 0; r < rounds; ++r) {
      // ≥ one full beacon cycle (prime pass + sleep) between probes.
      co_await actor.sleep_for(2 * period);
      const Cycles measured = co_await timed_probe(actor, candidate);
      if (classifier.is_miss(static_cast<double>(measured))) ++misses;
    }
    if (misses * 2 > rounds) {  // majority of rounds evicted
      shared->address = candidate;
      shared->found = true;
      break;
    }
  }
  shared->stop_beacon = true;
  shared->done = true;
}

struct TransferShared {
  Cycles t0 = 0;
  bool receiver_done = false;
};

sim::Process pp_sender(sim::Actor& actor, VirtAddr address,
                       std::vector<std::uint8_t> bits, PrimeProbeConfig config,
                       const TransferShared* shared) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const Cycles window_start = shared->t0 + i * config.window;
    const Cycles jitter = actor.rng().next_below(config.sync_jitter + 1);
    co_await actor.sleep_until(window_start + jitter);
    if (bits[i] != 0) co_await touch_and_flush(actor, address);
  }
}

sim::Process pp_receiver(sim::Actor& actor, std::vector<VirtAddr> set,
                         std::size_t bit_count, PrimeProbeConfig config,
                         TransferShared* shared, PrimeProbeResult* result) {
  obs::Hub& hub = actor.system().hub();
  auto group = hub.registry().group("channel");
  obs::Counter probe_hits = group.counter("pp.probe.hits");
  obs::Counter probe_misses = group.counter("pp.probe.misses");

  const Cycles probe_phase =
      std::max(config.window - config.probe_phase_back, config.window / 2);
  const sim::TimerModel timer = sim::shared_clock_timer();

  // Initial prime + baseline calibration (one full all-hit probe).
  co_await actor.sleep_until(shared->t0 - 3 * config.window);
  co_await prime_pass(actor, set);
  AdaptiveClassifier classifier(config.classifier_margin);
  {
    const Cycles before = actor.read_timer(timer);
    for (const VirtAddr addr : set) co_await actor.read(addr);
    const Cycles after = actor.read_timer(timer);
    for (const VirtAddr addr : set) co_await actor.clflush(addr);
    classifier.calibrate(static_cast<double>(after - before));
  }

  for (std::size_t i = 0; i < bit_count; ++i) {
    const Cycles when = shared->t0 + i * config.window + probe_phase;
    const Cycles jitter = actor.rng().next_below(config.sync_jitter + 1);
    co_await actor.sleep_until(when + jitter);

    // Probe the WHOLE eviction set; the probe re-primes it for the next
    // window (every way is touched whether it hit or missed).
    const Cycles before = actor.read_timer(timer);
    for (const VirtAddr addr : set) co_await actor.read(addr);
    const Cycles after = actor.read_timer(timer);
    for (const VirtAddr addr : set) co_await actor.clflush(addr);

    const auto measured = static_cast<double>(after - before);
    const bool miss = classifier.is_miss(measured);
    (miss ? probe_misses : probe_hits).inc();
    if (hub.tracing())
      hub.trace({.cycle = actor.now(),
                 .component = obs::Component::kChannel,
                 .core = actor.core().value,
                 .addr = set.front().raw,
                 .kind = "pp_probe",
                 .outcome = miss ? "miss" : "hit",
                 .value = static_cast<std::int64_t>(after - before)});
    result->received.push_back(miss ? 1 : 0);
    result->probe_times.push_back(measured);
  }
  shared->receiver_done = true;
}

}  // namespace

PrimeProbeResult run_prime_probe_baseline(
    TestBed& bed, const PrimeProbeConfig& config,
    const std::vector<std::uint8_t>& payload) {
  MEECC_CHECK(!payload.empty());
  PrimeProbeResult result;
  result.sent = payload;

  // The SPY builds the eviction set (classic P+P role assignment).
  EvictionSetConfig ev_config = config.eviction;
  ev_config.offset_unit = config.offset_unit;
  ev_config.candidate_pages =
      std::min<std::uint64_t>(ev_config.candidate_pages,
                              bed.spy_enclave().page_count());
  {
    EvictionSetResult ev;
    bed.scheduler().spawn(find_eviction_set_process(
        bed.spy(), bed.spy_enclave(), ev_config, &ev));
    bed.run_until_flag(ev.done);
    result.eviction = std::move(ev);
  }
  MEECC_CHECK_MSG(result.eviction.eviction_set.size() >= 2,
                  "spy failed to build an eviction set");

  // Trojan finds a single conflicting address. Align local clocks first
  // (Algorithm 1 advanced only the spy's).
  const Cycles discovery_start = bed.scheduler().now();
  bed.trojan().busy_wait_until(discovery_start);
  bed.spy().busy_wait_until(discovery_start);
  DiscoveryShared discovery;
  const auto trojan_candidates = make_candidate_set(
      bed.trojan_enclave(), 0, bed.trojan_enclave().page_count(),
      config.offset_unit);
  bed.scheduler().spawn(spy_prime_beacon(bed.spy(),
                                         result.eviction.eviction_set,
                                         config.beacon_period, &discovery));
  bed.scheduler().spawn(trojan_conflict_scan(
      bed.trojan(), trojan_candidates, config.beacon_period,
      config.discovery_rounds, 42.0, &discovery));
  bed.run_until_flag(discovery.done);
  bed.run_until_flag(discovery.beacon_exited);  // see covert_channel.cc
  MEECC_CHECK_MSG(discovery.found, "trojan found no conflicting address");
  result.trojan_address = discovery.address;
  result.trojan_address_found = true;

  // Transfer.
  TransferShared shared;
  shared.t0 = ((bed.scheduler().now() + 4 * config.window) / config.window + 1) *
              config.window;
  bed.scheduler().spawn(pp_sender(bed.trojan(), result.trojan_address, payload,
                                  config, &shared));
  bed.scheduler().spawn(pp_receiver(bed.spy(), result.eviction.eviction_set,
                                    payload.size(), config, &shared, &result));
  bed.run_until_flag(shared.receiver_done);

  for (std::size_t i = 0; i < payload.size(); ++i)
    if (result.received[i] != payload[i]) ++result.bit_errors;
  result.error_rate = static_cast<double>(result.bit_errors) /
                      static_cast<double>(payload.size());
  return result;
}

}  // namespace meecc::channel
