#include "channel/capacity_probe.h"

#include <algorithm>

#include "channel/candidates.h"
#include "channel/classify.h"
#include "channel/primitives.h"
#include "common/check.h"

namespace meecc::channel {
namespace {

sim::Process capacity_probe_process(sim::Actor& actor,
                                    const sgx::Enclave& enclave,
                                    CapacityProbeConfig config,
                                    CapacityProbeResult* result) {
  const std::uint64_t max_n =
      *std::max_element(config.set_sizes.begin(), config.set_sizes.end());
  MEECC_CHECK_MSG(enclave.page_count() >= max_n,
                  "enclave too small for the largest candidate set");

  AdaptiveClassifier classifier(config.classifier_margin);
  // Calibrate on a versions hit using a scratch address at a different
  // offset unit (so it shares no versions line with any candidate).
  const VirtAddr scratch = enclave.address(
      ((config.offset_unit + 1) % kOffsetUnits) * kChunkSize);
  co_await calibrate_on_hits(actor, scratch, classifier);

  int trials_done = 0;
  for (const std::uint64_t n : config.set_sizes) {
    CapacityProbePoint point;
    point.candidates = n;
    for (int trial = 0; trial < config.trials; ++trial) {
      // The victims are the (N+1)-th and (N+9)-th candidates: one and two
      // more 4 KB strides-of-8 past the window, so at N = 64 their alias
      // group contributes exactly 8 fresh versions lines — more than the
      // set can hold alongside them. Load the victims, stream the candidate
      // set, re-measure: a versions miss on either means the candidate set
      // overflowed the cache. (Two victims de-noise the single-shot
      // measurement; each probe can only be taken once, as probing reloads
      // the line.)
      const std::uint64_t first_page =
          actor.rng().next_below(enclave.page_count() - n - 8);
      const auto candidates =
          make_candidate_set(enclave, first_page, n, config.offset_unit);
      const VirtAddr victim_a =
          enclave.address((first_page + n) * kPageSize +
                          config.offset_unit * kChunkSize);
      const VirtAddr victim_b =
          enclave.address((first_page + n + 8) * kPageSize +
                          config.offset_unit * kChunkSize);

      co_await touch_and_flush(actor, victim_a);
      co_await touch_and_flush(actor, victim_b);
      actor.mfence();
      co_await prime_pass(actor, candidates);
      actor.mfence();
      const auto measured_a =
          static_cast<double>(co_await timed_probe(actor, victim_a));
      const auto measured_b =
          static_cast<double>(co_await timed_probe(actor, victim_b));
      if (classifier.classify(measured_a) || classifier.classify(measured_b))
        ++point.evictions;
      co_await actor.sleep_for(2000);
      if (++trials_done % 8 == 0)
        co_await calibrate_on_hits(actor, scratch, classifier);
    }
    point.probability =
        static_cast<double>(point.evictions) / config.trials;
    result->points.push_back(point);
  }

  for (const auto& point : result->points) {
    if (point.probability >= 0.95) {
      result->knee = point.candidates;
      break;
    }
  }
  if (result->knee != 0)
    result->estimated_capacity_bytes = result->knee * 16 * kLineSize;
  result->done = true;
}

}  // namespace

CapacityProbeResult run_capacity_probe(TestBed& bed,
                                       const CapacityProbeConfig& config) {
  CapacityProbeResult result;
  bed.scheduler().spawn(capacity_probe_process(
      bed.trojan(), bed.trojan_enclave(), config, &result));
  bed.run_until_flag(result.done);
  return result;
}

}  // namespace meecc::channel
