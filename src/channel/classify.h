// Latency → hit/miss classification for the spy.
//
// The attacker cannot rely on absolute thresholds: DRAM latency drifts by
// tens of cycles over milliseconds (refresh phase, thermals), which would
// swamp a fixed cut-off sitting 40 cycles above the hit mean. The adaptive
// classifier tracks the hit baseline with an EWMA (drift is slow relative to
// the probe rate) and flags a miss when a probe exceeds baseline + margin —
// the software analogue of the paper's "main memory latency with versions
// data hit" comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace meecc::channel {

class AdaptiveClassifier {
 public:
  /// `margin` must sit between the hit-latency noise band and the smallest
  /// miss delta (one extra tree-level fetch ≈ 65 cycles).
  explicit AdaptiveClassifier(double margin = 42.0, double alpha = 0.2);

  /// Seeds the baseline with a known-hit measurement.
  void calibrate(double hit_measurement);

  /// Seeds the baseline with the median of several known-hit measurements —
  /// a single sample can sit a quantization step high and push the decision
  /// threshold past the smallest miss delta (the L0-hit case).
  void calibrate_from_samples(std::vector<double> hit_measurements);

  /// Classifies one probe: true = miss (versions data was evicted).
  /// Hit-classified probes update the baseline.
  bool is_miss(double measurement);

  /// Classification without baseline update — for callers that recalibrate
  /// explicitly (Algorithm 1) and must not let borderline misses creep the
  /// baseline upward.
  bool classify(double measurement) const {
    return calibrated_ && measurement > baseline_ + margin_;
  }

  double baseline() const { return baseline_; }
  bool calibrated() const { return calibrated_; }
  double margin() const { return margin_; }

 private:
  double margin_;
  double alpha_;
  double baseline_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace meecc::channel
