// Timer comparison (paper §3 challenge 4, Fig. 2): what does it cost to
// timestamp a memory access (a) natively with rdtsc, (b) via OCALL from
// enclave mode, (c) via the hyperthread shared clock readable from enclave
// mode? Overhead = measured latency − ground-truth latency.
#pragma once

#include "channel/testbed.h"
#include "common/stats.h"
#include "common/types.h"

namespace meecc::channel {

struct TimingStudyConfig {
  int samples = 400;
  Cycles gap = 500;
};

struct TimerSeries {
  RunningStats measured;   ///< timer-reported access latency
  RunningStats truth;      ///< simulator ground truth
  RunningStats overhead;   ///< measured − truth per sample
};

struct TimingStudyResult {
  TimerSeries native;        ///< non-enclave rdtsc (baseline, Fig. 2a)
  TimerSeries ocall;         ///< OCALL round trip from enclave (Fig. 2b)
  TimerSeries shared_clock;  ///< hyperthread mailbox (Fig. 2c)
  bool rdtsc_faults_in_enclave = false;  ///< SGX v1 behaviour check
  bool done = false;
};

TimingStudyResult run_timing_study(TestBed& bed,
                                   const TimingStudyConfig& config);

}  // namespace meecc::channel
