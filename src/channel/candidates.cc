#include "channel/candidates.h"

#include "common/check.h"

namespace meecc::channel {

std::vector<VirtAddr> make_candidate_set(const sgx::Enclave& enclave,
                                         std::uint64_t first_page,
                                         std::uint64_t pages,
                                         std::uint32_t offset_unit) {
  MEECC_CHECK(offset_unit < kOffsetUnits);
  MEECC_CHECK_MSG(first_page + pages <= enclave.page_count(),
                  "candidate set exceeds enclave: needs "
                      << (first_page + pages) << " pages, enclave has "
                      << enclave.page_count());
  std::vector<VirtAddr> candidates;
  candidates.reserve(pages);
  for (std::uint64_t p = 0; p < pages; ++p) {
    candidates.push_back(enclave.address((first_page + p) * kPageSize +
                                         offset_unit * kChunkSize));
  }
  return candidates;
}

}  // namespace meecc::channel
