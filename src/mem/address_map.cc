#include "mem/address_map.h"

#include "common/check.h"

namespace meecc::mem {

std::uint64_t metadata_bytes_for_epc(std::uint64_t epc_size) {
  MEECC_CHECK(epc_size % kPageSize == 0);
  const std::uint64_t chunks = epc_size / kChunkSize;
  const std::uint64_t pages = epc_size / kPageSize;
  // Versions + PD_Tag lines are interleaved: 128 B of metadata per chunk.
  std::uint64_t bytes = chunks * 2 * kLineSize;
  // L0/L1/L2: one node line per 8 children, each interleaved with a spare
  // slot (even set alignment — see mee/tree_geometry.h).
  std::uint64_t level_lines = pages;
  for (int level = 0; level < 3; ++level) {  // L0, L1, L2
    bytes += level_lines * 2 * kLineSize;
    level_lines = (level_lines + 7) / 8;
  }
  return bytes;
}

AddressMap::AddressMap(const AddressMapConfig& config) {
  MEECC_CHECK(config.general_size % kPageSize == 0);
  MEECC_CHECK(config.epc_size % kPageSize == 0);
  MEECC_CHECK(config.epc_size > 0);

  std::uint64_t metadata_size = config.metadata_size;
  if (metadata_size == 0) metadata_size = metadata_bytes_for_epc(config.epc_size);
  MEECC_CHECK(metadata_size >= metadata_bytes_for_epc(config.epc_size));

  general_ = Region{PhysAddr{0}, config.general_size};
  protected_data_ = Region{general_.end(), config.epc_size};
  metadata_ = Region{protected_data_.end(), metadata_size};
}

RegionKind AddressMap::classify(PhysAddr a) const {
  if (general_.contains(a)) return RegionKind::kGeneral;
  if (protected_data_.contains(a)) return RegionKind::kProtectedData;
  if (metadata_.contains(a)) return RegionKind::kMeeMetadata;
  return RegionKind::kUnmapped;
}

std::uint64_t AddressMap::chunk_index(PhysAddr protected_addr) const {
  MEECC_CHECK(protected_data_.contains(protected_addr));
  return (protected_addr - protected_data_.base) / kChunkSize;
}

std::uint64_t AddressMap::epc_frame_index(PhysAddr protected_addr) const {
  MEECC_CHECK(protected_data_.contains(protected_addr));
  return (protected_addr - protected_data_.base) / kPageSize;
}

PhysAddr AddressMap::epc_frame_base(std::uint64_t index) const {
  MEECC_CHECK(index < epc_frame_count());
  return protected_data_.base + index * kPageSize;
}

}  // namespace meecc::mem
