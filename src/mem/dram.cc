#include "mem/dram.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace meecc::mem {

Dram::Dram(const DramConfig& config, Rng rng)
    : config_(config), rng_(rng) {}

double Dram::drift_at(Cycles now) const {
  const double t = static_cast<double>(now);
  const double two_pi = 2.0 * std::numbers::pi;
  const double a =
      std::sin(two_pi * t / static_cast<double>(config_.drift_period_a));
  const double b =
      std::sin(two_pi * t / static_cast<double>(config_.drift_period_b) + 1.3);
  const double c = std::sin(
      two_pi * t / static_cast<double>(config_.fast_wander_period) + 2.6);
  return config_.drift_amplitude * (0.65 * a + 0.35 * b) +
         config_.fast_wander_amplitude * c;
}

Cycles Dram::access_latency(Cycles now) {
  ++accesses_;
  double latency = static_cast<double>(config_.base_latency);
  latency += drift_at(now);
  latency += rng_.next_gaussian(0.0, config_.jitter_stddev);
  if (rng_.chance(config_.spike_probability)) {
    latency += static_cast<double>(rng_.next_in(
        static_cast<std::int64_t>(config_.spike_min),
        static_cast<std::int64_t>(config_.spike_max)));
  }
  latency = std::max(latency, 1.0);
  return static_cast<Cycles>(std::llround(latency));
}

}  // namespace meecc::mem
