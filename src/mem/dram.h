// DRAM service-time model.
//
// The covert channel lives or dies on second-order timing effects, so the
// model is deliberately richer than a constant:
//   latency = base + slow common-mode drift(t) + gaussian jitter + rare spikes
//
// * Drift models refresh phase / thermal / frequency wander. It is a smooth,
//   deterministic function of simulated time, shared by all accesses. Drift
//   is what sinks the Prime+Probe baseline (Fig. 6a): an 8-way probe sums the
//   drift eight times, swamping the ~300-cycle one-miss signal, while the
//   single-probe channel of this paper stays decodable.
// * Spikes model refresh collisions / row-buffer conflicts / rare contention.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

namespace meecc::mem {

struct DramConfig {
  Cycles base_latency = 280;       ///< mean end-to-end DRAM service time
  double jitter_stddev = 12.0;     ///< per-access gaussian noise
  double drift_amplitude = 26.0;   ///< peak slow common-mode wander (cycles)
  Cycles drift_period_a = 20'000'000;  ///< primary wander period (~5 ms)
  Cycles drift_period_b = 2'600'000;   ///< secondary wander period
  /// Fast common-mode wander (controller load / refresh phasing): changes
  /// faster than an EWMA baseline can track across timing windows, but is
  /// near-constant within one. An 8-access probe amplifies it ×8 (±~190),
  /// swamping Prime+Probe's one-miss signal; the single-probe channel's
  /// decision margin absorbs the ±24.
  double fast_wander_amplitude = 24.0;
  Cycles fast_wander_period = 170'000;
  /// Heavy-tail events: refresh collisions, bank conflicts, scheduler
  /// stalls. Each DRAM access draws independently, so an 8-access
  /// Prime+Probe burst is ~8× as exposed as the single-probe channel —
  /// a large part of why Fig. 6(a) fails while Fig. 6(b) works.
  double spike_probability = 0.01;
  Cycles spike_min = 80;
  Cycles spike_max = 300;
};

class Dram {
 public:
  Dram(const DramConfig& config, Rng rng);

  /// Service time for one line fetch issued at simulated time `now`.
  Cycles access_latency(Cycles now);

  /// Deterministic common-mode component (exposed for tests/analysis).
  double drift_at(Cycles now) const;

  const DramConfig& config() const { return config_; }
  std::uint64_t access_count() const { return accesses_; }

  /// Mutable model state — the jitter/spike RNG stream position and the
  /// access tally (snapshot/fork support; config is rebuilt, not captured).
  struct State {
    Rng rng;
    std::uint64_t accesses = 0;
  };
  State state() const { return State{rng_, accesses_}; }
  void restore(const State& state) {
    rng_ = state.rng;
    accesses_ = state.accesses;
  }

 private:
  DramConfig config_;
  Rng rng_;
  std::uint64_t accesses_ = 0;
};

}  // namespace meecc::mem
