#include "mem/frame_allocator.h"

#include "common/check.h"

namespace meecc::mem {

EpcAllocator::EpcAllocator(const AddressMap& map, EpcPlacement placement,
                           Rng rng)
    : placement_(placement) {
  free_list_.reserve(map.epc_frame_count());
  for (std::uint64_t i = 0; i < map.epc_frame_count(); ++i)
    free_list_.push_back(map.epc_frame_base(i));
  if (placement_ == EpcPlacement::kRandomized) rng.shuffle(free_list_);
}

PhysAddr EpcAllocator::allocate_frame() {
  MEECC_CHECK_MSG(next_ < free_list_.size(), "EPC exhausted");
  return free_list_[next_++];
}

GeneralAllocator::GeneralAllocator(const AddressMap& map)
    : next_(map.general().base), end_(map.general().end()) {}

PhysAddr GeneralAllocator::allocate_frame() {
  MEECC_CHECK_MSG(next_.raw + kPageSize <= end_.raw,
                  "general region exhausted");
  const PhysAddr frame = next_;
  next_ += kPageSize;
  return frame;
}

std::uint64_t GeneralAllocator::frames_remaining() const {
  return (end_ - next_) / kPageSize;
}

}  // namespace meecc::mem
