// Per-process virtual address space with 4 KB pages.
//
// SGX v1 does not support hugepages inside enclaves (paper §3 challenge 3),
// so 4 KB is the only page size — attackers can control physical addresses
// only at 4 KB granularity, which is exactly the constraint the paper's
// candidate-set construction works around.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace meecc::mem {

class VirtualAddressSpace {
 public:
  /// Maps virtual page `vaddr.page_number()` to the frame holding `frame_base`.
  /// Both must be page-aligned. Remapping an existing page is an error.
  void map_page(VirtAddr page, PhysAddr frame_base);

  /// Translates; throws CheckFailure on an unmapped page (the simulator has
  /// no demand paging — all experiment memory is mapped up front).
  PhysAddr translate(VirtAddr addr) const;

  /// Translation that reports failure instead of throwing.
  std::optional<PhysAddr> try_translate(VirtAddr addr) const;

  bool is_mapped(VirtAddr addr) const;
  std::size_t mapped_pages() const { return table_.size(); }

  /// (vpn, pfn) pairs sorted by vpn — the canonical order the snapshot wire
  /// format needs (unordered_map iteration order is host-dependent, and
  /// serialized bytes must be identical across hosts).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted_pages() const;

  /// Replaces the table with exported pairs (snapshot decode).
  void import_pages(
      const std::vector<std::pair<std::uint64_t, std::uint64_t>>& pages);

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> table_;  // vpn -> pfn
};

}  // namespace meecc::mem
