// Physical frame allocators.
//
// EpcAllocator hands out 4 KB frames from the protected data region. The
// default policy is contiguous allocation, matching how the Linux SGX driver
// populates an enclave at build time (sequential EADD) — this contiguity is
// what makes the paper's 4 KB-stride candidate sets cycle deterministically
// over the MEE-cache alias groups. A randomized policy is provided to study
// how fragmented EPC layouts degrade the attack.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "mem/address_map.h"

namespace meecc::mem {

enum class EpcPlacement {
  kContiguous,  ///< sequential frames (SGX-driver-like enclave build)
  kRandomized,  ///< shuffled free list (fragmented EPC)
};

class EpcAllocator {
 public:
  EpcAllocator(const AddressMap& map, EpcPlacement placement, Rng rng);

  /// Allocates one frame; throws CheckFailure when the EPC is exhausted.
  PhysAddr allocate_frame();

  std::uint64_t frames_remaining() const { return free_list_.size() - next_; }
  EpcPlacement placement() const { return placement_; }

  /// Allocation cursor (snapshot/fork support). The free list itself is a
  /// pure function of (map, placement, rng seed) and is rebuilt, so only
  /// the position needs capturing.
  std::size_t cursor() const { return next_; }
  void restore_cursor(std::size_t cursor) { next_ = cursor; }

 private:
  EpcPlacement placement_;
  std::vector<PhysAddr> free_list_;
  std::size_t next_ = 0;
};

/// Bump allocator over the general region, for non-enclave pages
/// (spy/trojan scratch memory, the shared-clock mailbox, noise buffers).
class GeneralAllocator {
 public:
  explicit GeneralAllocator(const AddressMap& map);

  PhysAddr allocate_frame();
  std::uint64_t frames_remaining() const;

  /// Bump cursor (snapshot/fork support).
  PhysAddr cursor() const { return next_; }
  void restore_cursor(PhysAddr cursor) { next_ = cursor; }

 private:
  PhysAddr next_;
  PhysAddr end_;
};

}  // namespace meecc::mem
