// Sparse, line-granular backing store for simulated DRAM (and, reused by the
// MEE, for its on-die root SRAM). Unwritten lines read as zero.
//
// Storage is copy-on-write: an immutable shared base image plus a private
// delta of lines written since. snapshot() flattens the delta into a new
// base and hands out a shared reference — O(1) when nothing was written
// since the last snapshot — so forking a multi-GB warm machine copies
// pointers, not lines. Reads probe the delta first, then the base.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/types.h"

namespace meecc::mem {

using Line = std::array<std::uint8_t, kLineSize>;

class PhysicalMemory {
 public:
  /// Immutable line image shared between snapshots and live instances.
  using Image = std::shared_ptr<const std::unordered_map<std::uint64_t, Line>>;

  /// Reads the 64 B line containing `addr` (addr may be unaligned; the
  /// containing line is returned).
  Line read_line(PhysAddr addr) const;

  /// Zero-copy probe: the resident line containing `addr`, or nullptr if it
  /// was never written (i.e. read_line would return all zeros). The pointer
  /// is invalidated by the next write_line/write_u64/write_bytes.
  const Line* find_line(PhysAddr addr) const;

  /// Overwrites the 64 B line containing `addr`.
  void write_line(PhysAddr addr, const Line& data);

  /// Byte-granular accessors (may not cross a line boundary).
  std::uint64_t read_u64(PhysAddr addr) const;
  void write_u64(PhysAddr addr, std::uint64_t value);

  void read_bytes(PhysAddr addr, std::span<std::uint8_t> out) const;
  void write_bytes(PhysAddr addr, std::span<const std::uint8_t> in);

  /// Number of lines that have ever been written (for tests / footprint).
  std::size_t resident_lines() const;

  /// Flattens the delta into the base and returns the shared image. O(1)
  /// when nothing was written since the previous snapshot()/restore().
  Image snapshot();

  /// Points this instance at `image`; subsequent writes land in a fresh
  /// private delta, so restored siblings never alias each other's writes.
  void restore(Image image);

 private:
  Image base_;  // may be null (empty base)
  std::unordered_map<std::uint64_t, Line> delta_;
};

}  // namespace meecc::mem
