// Sparse, line-granular backing store for simulated DRAM (and, reused by the
// MEE, for its on-die root SRAM). Unwritten lines read as zero.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "common/types.h"

namespace meecc::mem {

using Line = std::array<std::uint8_t, kLineSize>;

class PhysicalMemory {
 public:
  /// Reads the 64 B line containing `addr` (addr may be unaligned; the
  /// containing line is returned).
  Line read_line(PhysAddr addr) const;

  /// Zero-copy probe: the resident line containing `addr`, or nullptr if it
  /// was never written (i.e. read_line would return all zeros). The pointer
  /// is invalidated by the next write_line/write_u64/write_bytes.
  const Line* find_line(PhysAddr addr) const;

  /// Overwrites the 64 B line containing `addr`.
  void write_line(PhysAddr addr, const Line& data);

  /// Byte-granular accessors (may not cross a line boundary).
  std::uint64_t read_u64(PhysAddr addr) const;
  void write_u64(PhysAddr addr, std::uint64_t value);

  void read_bytes(PhysAddr addr, std::span<std::uint8_t> out) const;
  void write_bytes(PhysAddr addr, std::span<const std::uint8_t> in);

  /// Number of lines that have ever been written (for tests / footprint).
  std::size_t resident_lines() const { return lines_.size(); }

 private:
  std::unordered_map<std::uint64_t, Line> lines_;
};

}  // namespace meecc::mem
