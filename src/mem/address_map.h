// Physical address map of the simulated machine.
//
// Mirrors the layout SGX carves out of DRAM: a general-purpose region,
// followed by the processor-reserved memory (PRM) holding the protected data
// region (EPC pages) and the MEE metadata region (integrity tree storage).
// The integrity tree root lives in on-die SRAM and is NOT part of this map —
// the MEE owns it directly (mee/root_storage.h).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace meecc::mem {

enum class RegionKind {
  kGeneral,        ///< ordinary DRAM, no encryption
  kProtectedData,  ///< EPC pages: encrypted + integrity protected
  kMeeMetadata,    ///< integrity tree levels stored in DRAM
  kUnmapped,
};

struct Region {
  PhysAddr base;
  std::uint64_t size = 0;

  bool contains(PhysAddr a) const {
    return a.raw >= base.raw && a.raw - base.raw < size;
  }
  PhysAddr end() const { return base + size; }
};

struct AddressMapConfig {
  std::uint64_t general_size = 256ull << 20;  ///< 256 MB general DRAM
  std::uint64_t epc_size = 32ull << 20;       ///< protected data region
  /// DRAM bytes reserved for tree metadata (versions+tags+L0+L1+L2).
  /// Computed by make_address_map if left 0.
  std::uint64_t metadata_size = 0;
};

/// Bytes of in-DRAM tree metadata required for an EPC of the given size:
/// per 512 B chunk one 64 B versions line and one 64 B PD_Tag line, plus the
/// arity-8 counter levels L0/L1/L2 above the versions.
std::uint64_t metadata_bytes_for_epc(std::uint64_t epc_size);

class AddressMap {
 public:
  explicit AddressMap(const AddressMapConfig& config);

  const Region& general() const { return general_; }
  const Region& protected_data() const { return protected_data_; }
  const Region& mee_metadata() const { return metadata_; }

  RegionKind classify(PhysAddr a) const;

  /// Total DRAM span (exclusive end of the last region).
  PhysAddr dram_end() const { return metadata_.end(); }

  /// Index of the 512 B chunk within the protected data region.
  std::uint64_t chunk_index(PhysAddr protected_addr) const;
  /// Index of the 4 KB frame within the protected data region.
  std::uint64_t epc_frame_index(PhysAddr protected_addr) const;
  /// Base physical address of EPC frame `index`.
  PhysAddr epc_frame_base(std::uint64_t index) const;
  std::uint64_t epc_frame_count() const {
    return protected_data_.size / kPageSize;
  }

 private:
  Region general_;
  Region protected_data_;
  Region metadata_;
};

}  // namespace meecc::mem
