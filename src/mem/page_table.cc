#include "mem/page_table.h"

#include <algorithm>

#include "common/check.h"

namespace meecc::mem {

void VirtualAddressSpace::map_page(VirtAddr page, PhysAddr frame_base) {
  MEECC_CHECK(page.page_offset() == 0);
  MEECC_CHECK(frame_base.page_offset() == 0);
  const auto [it, inserted] =
      table_.emplace(page.page_number(), frame_base.page_number());
  MEECC_CHECK_MSG(inserted, "virtual page 0x" << std::hex << page.raw
                                              << " is already mapped");
  (void)it;
}

PhysAddr VirtualAddressSpace::translate(VirtAddr addr) const {
  const auto result = try_translate(addr);
  MEECC_CHECK_MSG(result.has_value(),
                  "unmapped virtual address 0x" << std::hex << addr.raw);
  return *result;
}

std::optional<PhysAddr> VirtualAddressSpace::try_translate(
    VirtAddr addr) const {
  const auto it = table_.find(addr.page_number());
  if (it == table_.end()) return std::nullopt;
  return PhysAddr{it->second * kPageSize + addr.page_offset()};
}

bool VirtualAddressSpace::is_mapped(VirtAddr addr) const {
  return table_.contains(addr.page_number());
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
VirtualAddressSpace::sorted_pages() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pages(table_.begin(),
                                                             table_.end());
  std::sort(pages.begin(), pages.end());
  return pages;
}

void VirtualAddressSpace::import_pages(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& pages) {
  table_.clear();
  for (const auto& [vpn, pfn] : pages) table_.emplace(vpn, pfn);
}

}  // namespace meecc::mem
