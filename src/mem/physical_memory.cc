#include "mem/physical_memory.h"

#include <cstring>

#include "common/check.h"

namespace meecc::mem {

Line PhysicalMemory::read_line(PhysAddr addr) const {
  const Line* line = find_line(addr);
  if (line == nullptr) return Line{};  // zero-fill on first touch
  return *line;
}

const Line* PhysicalMemory::find_line(PhysAddr addr) const {
  const auto index = addr.line_index();
  if (const auto it = delta_.find(index); it != delta_.end())
    return &it->second;
  if (base_ != nullptr) {
    if (const auto it = base_->find(index); it != base_->end())
      return &it->second;
  }
  return nullptr;
}

void PhysicalMemory::write_line(PhysAddr addr, const Line& data) {
  delta_[addr.line_index()] = data;
}

std::uint64_t PhysicalMemory::read_u64(PhysAddr addr) const {
  MEECC_CHECK(addr.line_offset() + 8 <= kLineSize);
  const Line line = read_line(addr);
  std::uint64_t v = 0;
  std::memcpy(&v, line.data() + addr.line_offset(), 8);
  return v;
}

void PhysicalMemory::write_u64(PhysAddr addr, std::uint64_t value) {
  MEECC_CHECK(addr.line_offset() + 8 <= kLineSize);
  Line line = read_line(addr);
  std::memcpy(line.data() + addr.line_offset(), &value, 8);
  write_line(addr, line);
}

void PhysicalMemory::read_bytes(PhysAddr addr,
                                std::span<std::uint8_t> out) const {
  MEECC_CHECK(addr.line_offset() + out.size() <= kLineSize);
  const Line line = read_line(addr);
  std::memcpy(out.data(), line.data() + addr.line_offset(), out.size());
}

void PhysicalMemory::write_bytes(PhysAddr addr,
                                 std::span<const std::uint8_t> in) {
  MEECC_CHECK(addr.line_offset() + in.size() <= kLineSize);
  Line line = read_line(addr);
  std::memcpy(line.data() + addr.line_offset(), in.data(), in.size());
  write_line(addr, line);
}

std::size_t PhysicalMemory::resident_lines() const {
  std::size_t n = delta_.size();
  if (base_ != nullptr)
    for (const auto& [index, line] : *base_)
      if (delta_.find(index) == delta_.end()) ++n;
  return n;
}

PhysicalMemory::Image PhysicalMemory::snapshot() {
  if (!delta_.empty()) {
    auto merged = base_ != nullptr
                      ? std::make_shared<std::unordered_map<std::uint64_t, Line>>(
                            *base_)
                      : std::make_shared<std::unordered_map<std::uint64_t, Line>>();
    for (auto& [index, line] : delta_) (*merged)[index] = line;
    base_ = std::move(merged);
    delta_.clear();
  }
  if (base_ == nullptr)
    base_ = std::make_shared<std::unordered_map<std::uint64_t, Line>>();
  return base_;
}

void PhysicalMemory::restore(Image image) {
  base_ = std::move(image);
  delta_.clear();
}

}  // namespace meecc::mem
