#include "mem/physical_memory.h"

#include <cstring>

#include "common/check.h"

namespace meecc::mem {

Line PhysicalMemory::read_line(PhysAddr addr) const {
  const auto it = lines_.find(addr.line_index());
  if (it == lines_.end()) return Line{};  // zero-fill on first touch
  return it->second;
}

const Line* PhysicalMemory::find_line(PhysAddr addr) const {
  const auto it = lines_.find(addr.line_index());
  return it == lines_.end() ? nullptr : &it->second;
}

void PhysicalMemory::write_line(PhysAddr addr, const Line& data) {
  lines_[addr.line_index()] = data;
}

std::uint64_t PhysicalMemory::read_u64(PhysAddr addr) const {
  MEECC_CHECK(addr.line_offset() + 8 <= kLineSize);
  const Line line = read_line(addr);
  std::uint64_t v = 0;
  std::memcpy(&v, line.data() + addr.line_offset(), 8);
  return v;
}

void PhysicalMemory::write_u64(PhysAddr addr, std::uint64_t value) {
  MEECC_CHECK(addr.line_offset() + 8 <= kLineSize);
  Line line = read_line(addr);
  std::memcpy(line.data() + addr.line_offset(), &value, 8);
  write_line(addr, line);
}

void PhysicalMemory::read_bytes(PhysAddr addr,
                                std::span<std::uint8_t> out) const {
  MEECC_CHECK(addr.line_offset() + out.size() <= kLineSize);
  const Line line = read_line(addr);
  std::memcpy(out.data(), line.data() + addr.line_offset(), out.size());
}

void PhysicalMemory::write_bytes(PhysAddr addr,
                                 std::span<const std::uint8_t> in) {
  MEECC_CHECK(addr.line_offset() + in.size() <= kLineSize);
  Line line = read_line(addr);
  std::memcpy(line.data() + addr.line_offset(), in.data(), in.size());
  write_line(addr, line);
}

}  // namespace meecc::mem
