#include "crypto/mac.h"

#include <cstring>

#include "common/check.h"

namespace meecc::crypto {

MacFunction::MacFunction(const Key128& key, std::string_view aes_backend)
    : aes_(make_aes_backend(aes_backend, key)) {}

std::uint64_t MacFunction::tag(std::uint64_t address, std::uint64_t version,
                               std::span<const std::uint8_t> data) const {
  MEECC_CHECK(data.size() % 16 == 0);
  Block state{};
  // First block authenticates the context: address ‖ version.
  std::memcpy(state.data(), &address, 8);
  std::memcpy(state.data() + 8, &version, 8);
  state = aes_->encrypt(state);
  for (std::size_t off = 0; off < data.size(); off += 16) {
    for (std::size_t i = 0; i < 16; ++i) state[i] ^= data[off + i];
    state = aes_->encrypt(state);
  }
  std::uint64_t t = 0;
  std::memcpy(&t, state.data(), 8);
  return t & kMacMask;
}

bool MacFunction::verify(std::uint64_t address, std::uint64_t version,
                         std::span<const std::uint8_t> data,
                         std::uint64_t expected_tag) const {
  return tag(address, version, data) == (expected_tag & kMacMask);
}

}  // namespace meecc::crypto
