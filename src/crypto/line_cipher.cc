#include "crypto/line_cipher.h"

#include <cstring>

namespace meecc::crypto {

LineCipher::LineCipher(const Key128& key, std::string_view aes_backend)
    : aes_(make_aes_backend(aes_backend, key)) {}

LineData LineCipher::compute_keystream(std::uint64_t address,
                                       std::uint64_t version) const {
  // The four counter blocks are independent, so one multi-block call lets
  // hardware backends pipeline across them.
  std::array<Block, 4> counters{};
  for (std::uint32_t block = 0; block < 4; ++block) {
    std::memcpy(counters[block].data(), &address, 8);
    std::uint64_t v = (version << 8) | block;  // version ‖ block index
    std::memcpy(counters[block].data() + 8, &v, 8);
  }
  std::array<Block, 4> outs;
  aes_->encrypt_blocks(counters.data(), outs.data(), counters.size());
  LineData ks{};
  for (std::uint32_t block = 0; block < 4; ++block)
    std::memcpy(ks.data() + 16 * block, outs[block].data(), 16);
  return ks;
}

LineData LineCipher::encrypt(const LineData& plaintext, std::uint64_t address,
                             std::uint64_t version) const {
  const LineData* ks = cache_.find(address, version);
  LineData fresh;
  if (ks == nullptr) {
    fresh = compute_keystream(address, version);
    cache_.insert(address, version, fresh);
    ks = &fresh;
  }
  LineData out;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = plaintext[i] ^ (*ks)[i];
  return out;
}

LineData LineCipher::decrypt(const LineData& ciphertext, std::uint64_t address,
                             std::uint64_t version) const {
  return encrypt(ciphertext, address, version);  // CTR is symmetric
}

}  // namespace meecc::crypto
