// AES-CTR encryption of 64 B memory lines with a compound nonce, modelled on
// the MEE's confidentiality mode (Gueron, 2016): the keystream depends on the
// line's physical address and its current version counter, so rewriting the
// same plaintext at the same address with a bumped version yields fresh
// ciphertext (freshness), and moving ciphertext between addresses breaks
// decryption (spatial binding).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/aes128.h"

namespace meecc::crypto {

using LineData = std::array<std::uint8_t, 64>;

class LineCipher {
 public:
  explicit LineCipher(const Key128& key);

  /// Encrypts one 64 B line. `address` is the line's physical address,
  /// `version` the 56-bit freshness counter for the line.
  LineData encrypt(const LineData& plaintext, std::uint64_t address,
                   std::uint64_t version) const;

  /// CTR decryption (same keystream).
  LineData decrypt(const LineData& ciphertext, std::uint64_t address,
                   std::uint64_t version) const;

 private:
  LineData keystream(std::uint64_t address, std::uint64_t version) const;

  Aes128 aes_;
};

}  // namespace meecc::crypto
