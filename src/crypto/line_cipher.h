// AES-CTR encryption of 64 B memory lines with a compound nonce, modelled on
// the MEE's confidentiality mode (Gueron, 2016): the keystream depends on the
// line's physical address and its current version counter, so rewriting the
// same plaintext at the same address with a bumped version yields fresh
// ciphertext (freshness), and moving ciphertext between addresses breaks
// decryption (spatial binding).
//
// Hot path: the AES block function runs through a selectable backend
// (crypto/aes_backend.h), and computed keystreams are cached by their
// (address, version) nonce — repeated walks over the same hot lines (the
// prime+probe common case) skip AES entirely. A version bump changes the
// nonce, so the cache can never serve a stale keystream.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>

#include "crypto/aes_backend.h"
#include "crypto/pad_cache.h"

namespace meecc::crypto {

using LineData = std::array<std::uint8_t, 64>;

class LineCipher {
 public:
  explicit LineCipher(const Key128& key,
                      std::string_view aes_backend = kAutoBackend);

  /// Encrypts one 64 B line. `address` is the line's physical address,
  /// `version` the 56-bit freshness counter for the line.
  LineData encrypt(const LineData& plaintext, std::uint64_t address,
                   std::uint64_t version) const;

  /// CTR decryption (same keystream).
  LineData decrypt(const LineData& ciphertext, std::uint64_t address,
                   std::uint64_t version) const;

  /// The concrete AES backend in use ("auto" resolved at construction).
  std::string_view backend_name() const { return aes_->name(); }

  /// Keystream cache controls (on by default); see crypto/pad_cache.h.
  void set_pad_cache_enabled(bool enabled) { cache_.set_enabled(enabled); }
  void set_pad_counters(obs::Counter hit, obs::Counter miss) {
    cache_.set_counters(hit, miss);
  }

  /// Keystream-cache contents for snapshot/fork; import keeps this
  /// cipher's own counter handles.
  PadCache<LineData> export_pad_state() const { return cache_; }
  void import_pad_state(const PadCache<LineData>& state) {
    cache_.adopt_contents(state);
  }

  /// Serialized counterparts for the snapshot wire format.
  void encode_pad_state(io::Writer& w) const { cache_.encode_state(w); }
  void decode_pad_state(io::Reader& r) { cache_.decode_state(r); }

 private:
  LineData compute_keystream(std::uint64_t address,
                             std::uint64_t version) const;

  std::unique_ptr<const AesBackend> aes_;
  mutable PadCache<LineData> cache_;
};

}  // namespace meecc::crypto
