// Runtime-dispatched AES-128 block backends.
//
// The simulator's wall-clock is dominated by AES: every MEE walk pays real
// AES-128-CTR line crypto plus MAC pads, and figure experiments simulate
// hundreds of thousands of walks. All backends compute the identical
// FIPS-197 function — which one runs changes only how fast an experiment
// finishes, never its results (the timing MODEL is charged in simulated
// cycles, not host time).
//
// Registered backends:
//   reference  byte-wise FIPS-197 (crypto/aes128.h) — the validation oracle
//   ttable     precomputed 32-bit T-tables, ~1 lookup+xor per byte per round
//   aesni      hardware AES round instructions; registered only on CPUs
//              whose CPUID reports the AES extension
//   auto       alias: aesni when available, else ttable
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/aes128.h"

namespace meecc::crypto {

inline constexpr std::string_view kAutoBackend = "auto";

/// One AES-128 implementation holding its expanded key schedule.
class AesBackend {
 public:
  virtual ~AesBackend() = default;

  /// The concrete backend name ("reference", "ttable", "aesni").
  virtual std::string_view name() const = 0;

  virtual Block encrypt(const Block& plaintext) const = 0;
  virtual Block decrypt(const Block& ciphertext) const = 0;

  /// Encrypts `n` independent blocks: out[i] = AES_K(in[i]). Bit-identical
  /// to calling encrypt() in a loop — the point is host speed: hardware
  /// backends override this to keep several blocks in flight at once (the
  /// AES round instructions are pipelined, so 4-8 independent blocks cost
  /// barely more than one). `in` and `out` may alias element-wise
  /// (out == in) but must not partially overlap.
  virtual void encrypt_blocks(const Block* in, Block* out,
                              std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = encrypt(in[i]);
  }
};

/// Every selectable backend name, in registration order, "auto" last.
/// Includes names the current CPU cannot run (see aes_backend_available).
std::vector<std::string> aes_backend_names();

/// True when `name` is a registered backend or "auto".
bool is_aes_backend(std::string_view name);

/// True when the named backend can run on this CPU ("auto" always can).
bool aes_backend_available(std::string_view name);

/// The concrete backend "auto" resolves to on this machine; non-auto names
/// pass through unchanged.
std::string_view resolve_aes_backend(std::string_view name);

/// Keyed instance of the named backend (resolving "auto"). Throws
/// std::invalid_argument for unknown names and CheckFailure for backends
/// the CPU cannot run.
std::unique_ptr<const AesBackend> make_aes_backend(std::string_view name,
                                                   const Key128& key);

}  // namespace meecc::crypto
