// Software AES-128 (FIPS-197), encrypt and decrypt.
//
// The MEE model uses real cryptography — protected lines in simulated DRAM
// are genuinely ciphertext and tree MACs genuinely verify — so tampering
// tests exercise the same code paths a hardware MEE would. This is the
// straightforward table-free byte implementation: the "reference" entry in
// the backend registry (crypto/aes_backend.h) and the oracle the fast
// backends (ttable, aesni) are validated against.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace meecc::crypto {

using Block = std::array<std::uint8_t, 16>;
using Key128 = std::array<std::uint8_t, 16>;

class Aes128 {
 public:
  explicit Aes128(const Key128& key);

  Block encrypt(const Block& plaintext) const;
  Block decrypt(const Block& ciphertext) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::array<std::uint8_t, 16>, 11> round_keys_{};
};

}  // namespace meecc::crypto
