// Direct-mapped (address, version) → pad cache for AES-CTR keystreams and
// Carter–Wegman MAC pads.
//
// The MEE's per-line crypto is keyed by the compound nonce (address,
// version): a prime+probe loop re-walks the same hot lines at unchanged
// versions over and over, recomputing identical AES outputs each time.
// Caching the pad by its nonce skips that AES entirely — and because the
// version IS part of the key, a write's counter bump can never serve a
// stale pad: the new (address, version) pair simply misses and refills.
//
// Direct-mapped with a fixed slot count: O(1) lookup, bounded memory, and
// fully deterministic (no host-dependent eviction order), so cached and
// uncached runs produce byte-identical simulation results.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "obs/counters.h"

namespace meecc::crypto {

/// Pad wire codec — one overload per pad type the MEE uses (64-bit MAC pads
/// and 64-byte keystream lines).
inline void encode_pad(io::Writer& w, std::uint64_t pad) { w.u64(pad); }
inline void decode_pad(io::Reader& r, std::uint64_t& pad) { pad = r.u64(); }
template <std::size_t N>
void encode_pad(io::Writer& w, const std::array<std::uint8_t, N>& pad) {
  w.bytes(pad.data(), N);
}
template <std::size_t N>
void decode_pad(io::Reader& r, std::array<std::uint8_t, N>& pad) {
  r.bytes(pad.data(), N);
}

template <typename Pad>
class PadCache {
 public:
  static constexpr std::size_t kDefaultSlots = 4096;  // power of two

  explicit PadCache(std::size_t slots = kDefaultSlots) : slots_(slots) {
    MEECC_CHECK(slots != 0 && (slots & (slots - 1)) == 0);
  }

  bool enabled() const { return enabled_; }
  /// Disabling also drops residents, so re-enabling starts cold.
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    entries_.clear();
  }

  /// Counter handles for hit/miss accounting (typically crypto.pad.hit and
  /// crypto.pad.miss from the owning engine's registry). Several caches may
  /// share one pair; increments add.
  void set_counters(obs::Counter hit, obs::Counter miss) {
    hits_ = hit;
    misses_ = miss;
  }

  /// Resident pad for the nonce, or nullptr on a miss (counts either way).
  /// The pointer is valid until the next insert.
  const Pad* find(std::uint64_t address, std::uint64_t version) {
    if (!enabled_) return nullptr;
    if (entries_.empty()) entries_.resize(slots_);
    Entry& entry = entries_[slot(address, version)];
    if (entry.valid && entry.address == address && entry.version == version) {
      hits_.inc();
      return &entry.pad;
    }
    misses_.inc();
    return nullptr;
  }

  /// Copies another cache's residents (slot table, enabled flag) while
  /// keeping this cache's own counter handles — the snapshot/fork path,
  /// where the donor belongs to a different System whose counters are gone.
  void adopt_contents(const PadCache& other) {
    slots_ = other.slots_;
    enabled_ = other.enabled_;
    entries_ = other.entries_;
  }

  /// Snapshot wire format: residents + enabled flag + slot count. Counter
  /// handles stay local, mirroring adopt_contents(). Invalid entries are
  /// stored as one flag byte — a direct-mapped slot only ever transitions
  /// default → valid, so eliding them loses nothing.
  void encode_state(io::Writer& w) const {
    w.u64(slots_);
    w.u8(enabled_ ? 1 : 0);
    w.u8(entries_.empty() ? 0 : 1);
    for (const Entry& entry : entries_) {
      w.u8(entry.valid ? 1 : 0);
      if (!entry.valid) continue;
      w.u64(entry.address);
      w.u64(entry.version);
      encode_pad(w, entry.pad);
    }
  }

  void decode_state(io::Reader& r) {
    const std::uint64_t slots = r.u64();
    if (slots == 0 || (slots & (slots - 1)) != 0)
      throw io::DecodeError("pad-cache slot count is not a power of two");
    slots_ = static_cast<std::size_t>(slots);
    enabled_ = r.u8() != 0;
    entries_.clear();
    if (r.u8() == 0) return;  // donor never allocated its slot table
    entries_.resize(slots_);
    for (Entry& entry : entries_) {
      if (r.u8() == 0) continue;
      entry.address = r.u64();
      entry.version = r.u64();
      decode_pad(r, entry.pad);
      entry.valid = true;
    }
  }

  /// Installs the pad for the nonce (no-op when disabled).
  void insert(std::uint64_t address, std::uint64_t version, const Pad& pad) {
    if (!enabled_) return;
    if (entries_.empty()) entries_.resize(slots_);
    Entry& entry = entries_[slot(address, version)];
    entry.address = address;
    entry.version = version;
    entry.pad = pad;
    entry.valid = true;
  }

 private:
  struct Entry {
    std::uint64_t address = 0;
    std::uint64_t version = 0;
    Pad pad{};
    bool valid = false;
  };

  std::size_t slot(std::uint64_t address, std::uint64_t version) const {
    // Fibonacci hash over the mixed nonce; line addresses share low zero
    // bits, so mix before masking.
    const std::uint64_t mixed =
        (address ^ (version * 0x9e3779b97f4a7c15ull)) * 0xff51afd7ed558ccdull;
    return static_cast<std::size_t>(mixed >> 32) & (slots_ - 1);
  }

  std::size_t slots_;
  bool enabled_ = true;
  std::vector<Entry> entries_;  // allocated lazily on first use
  obs::Counter hits_;
  obs::Counter misses_;
};

}  // namespace meecc::crypto
