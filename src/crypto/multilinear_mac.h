// Carter–Wegman multilinear MAC, modelled on the construction the real MEE
// uses (Gueron, "A Memory Encryption Engine Suitable for General Purpose
// Processors", 2016): hardware computes an inner product of message words
// with secret key words — fully parallelizable — and masks the result with a
// per-(address, version) AES-derived pad, so the expensive AES runs off the
// critical path while the data words stream in.
//
//   tag = truncate56( Σ_i  m_i · k_i  (mod 2^64)  +  pad(address, version) )
//
// where m_i are the 32-bit message words (so the 64-bit products cannot
// overflow individually), k_i are 64-bit key words expanded from the MAC key
// via AES-CTR, and pad = AES_K(address ‖ version) truncated.
//
// Security intuition (as in Wegman–Carter): the inner product is a universal
// hash; the one-time pad per (address, version) hides it. The simulator uses
// it interchangeably with the CBC-MAC (crypto/mac.h) via the MacScheme
// interface.
//
// Hot path: the pad is the only AES in the tag, and it depends solely on
// the nonce — so it is cached by (address, version) (crypto/pad_cache.h);
// a version bump changes the nonce and naturally misses.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/aes_backend.h"
#include "crypto/pad_cache.h"

namespace meecc::crypto {

/// One element of a verify_batch() call.
struct MacRequest {
  std::uint64_t address = 0;
  std::uint64_t version = 0;
  std::span<const std::uint8_t> data;
  std::uint64_t expected_tag = 0;
};

/// Common interface for the MEE's line-authentication function.
class MacScheme {
 public:
  virtual ~MacScheme() = default;

  /// 56-bit tag over (address, version, data); data length must be a
  /// multiple of 16 bytes.
  virtual std::uint64_t tag(std::uint64_t address, std::uint64_t version,
                            std::span<const std::uint8_t> data) const = 0;

  bool verify(std::uint64_t address, std::uint64_t version,
              std::span<const std::uint8_t> data,
              std::uint64_t expected_tag) const;

  /// Verifies `n` independent requests and returns the index of the FIRST
  /// failing one in array order, or `n` when all pass — exactly the verdict
  /// a serial loop of verify() calls would reach. The base implementation
  /// IS that loop; schemes with a cacheable pad override it to derive every
  /// missing pad in one multi-block AES call. Results are always identical
  /// to serial verification. Precondition for identical pad hit/miss
  /// accounting: the requests carry pairwise-distinct (address, version)
  /// nonces (an MEE walk batch always does — one node per tree level).
  virtual std::size_t verify_batch(const MacRequest* requests,
                                   std::size_t n) const;

  /// Pad-cache hooks; no-ops for schemes without a cacheable pad (CBC-MAC
  /// feeds the data through AES, so there is nothing nonce-keyed to cache).
  virtual void set_pad_cache_enabled(bool) {}
  virtual void set_pad_counters(obs::Counter /*hit*/, obs::Counter /*miss*/) {}

  /// Opaque pad-cache contents for snapshot/fork. Schemes without a pad
  /// cache export nullptr and ignore imports; import keeps the scheme's
  /// own counter handles.
  virtual std::shared_ptr<const void> export_pad_state() const {
    return nullptr;
  }
  virtual void import_pad_state(const void* /*state*/) {}

  /// Serialized counterparts of export/import_pad_state for the snapshot
  /// wire format. Schemes without a pad cache write/read nothing — both
  /// sides of a round trip must agree on the scheme kind (the config hash
  /// guarantees it).
  virtual void encode_pad_state(io::Writer& /*w*/) const {}
  virtual void decode_pad_state(io::Reader& /*r*/) {}
};

enum class MacKind {
  kCbcMac,       ///< CBC-MAC construction (crypto/mac.h)
  kMultilinear,  ///< Gueron-style Carter–Wegman multilinear MAC
};

class MultilinearMac final : public MacScheme {
 public:
  /// `max_data_bytes` bounds the message length (key words are expanded
  /// once); the MEE authenticates single 64 B lines.
  explicit MultilinearMac(const Key128& key, std::size_t max_data_bytes = 64,
                          std::string_view aes_backend = kAutoBackend);

  std::uint64_t tag(std::uint64_t address, std::uint64_t version,
                    std::span<const std::uint8_t> data) const override;

  /// Batched verification: one pad-cache probe per request (in order), one
  /// encrypt_blocks() over all the misses, then the cheap inner products.
  std::size_t verify_batch(const MacRequest* requests,
                           std::size_t n) const override;

  void set_pad_cache_enabled(bool enabled) override {
    pad_cache_.set_enabled(enabled);
  }
  void set_pad_counters(obs::Counter hit, obs::Counter miss) override {
    pad_cache_.set_counters(hit, miss);
  }

  std::shared_ptr<const void> export_pad_state() const override {
    return std::make_shared<PadCache<std::uint64_t>>(pad_cache_);
  }
  void import_pad_state(const void* state) override {
    if (state != nullptr)
      pad_cache_.adopt_contents(
          *static_cast<const PadCache<std::uint64_t>*>(state));
  }

  void encode_pad_state(io::Writer& w) const override {
    pad_cache_.encode_state(w);
  }
  void decode_pad_state(io::Reader& r) override { pad_cache_.decode_state(r); }

 private:
  std::uint64_t pad(std::uint64_t address, std::uint64_t version) const;
  /// The universal-hash part of the tag (everything except the pad).
  std::uint64_t inner_product(std::span<const std::uint8_t> data) const;
  /// AES-CTR input block for the pad of (address, version).
  static Block pad_block(std::uint64_t address, std::uint64_t version);

  std::unique_ptr<const AesBackend> aes_;
  std::vector<std::uint64_t> key_words_;  // one 64-bit word per 32-bit m_i
  mutable PadCache<std::uint64_t> pad_cache_;
};

/// Factory used by the MEE engine.
std::unique_ptr<MacScheme> make_mac_scheme(
    MacKind kind, const Key128& key,
    std::string_view aes_backend = kAutoBackend);

}  // namespace meecc::crypto
