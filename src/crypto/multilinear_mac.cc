#include "crypto/multilinear_mac.h"

#include <cstring>

#include "common/check.h"
#include "crypto/mac.h"

namespace meecc::crypto {

bool MacScheme::verify(std::uint64_t address, std::uint64_t version,
                       std::span<const std::uint8_t> data,
                       std::uint64_t expected_tag) const {
  return tag(address, version, data) == (expected_tag & kMacMask);
}

MultilinearMac::MultilinearMac(const Key128& key, std::size_t max_data_bytes,
                               std::string_view aes_backend)
    : aes_(make_aes_backend(aes_backend, key)) {
  MEECC_CHECK(max_data_bytes % 16 == 0 && max_data_bytes > 0);
  // Expand key words with AES-CTR over a fixed label: two 64-bit words per
  // encrypted block, one key word per 32-bit message word.
  const std::size_t words = max_data_bytes / 4;
  key_words_.reserve(words);
  std::uint64_t counter = 0;
  while (key_words_.size() < words) {
    Block in{};
    in[0] = 0x4b;  // 'K' — domain separation from the pad inputs
    std::memcpy(in.data() + 8, &counter, 8);
    ++counter;
    const Block out = aes_->encrypt(in);
    for (int half = 0; half < 2 && key_words_.size() < words; ++half) {
      std::uint64_t w = 0;
      std::memcpy(&w, out.data() + 8 * half, 8);
      key_words_.push_back(w | 1);  // odd key words: injective in low bits
    }
  }
}

std::uint64_t MultilinearMac::pad(std::uint64_t address,
                                  std::uint64_t version) const {
  if (const std::uint64_t* cached = pad_cache_.find(address, version))
    return *cached;
  Block in{};
  in[0] = 0x50;  // 'P'
  std::memcpy(in.data() + 1, &address, 7);
  std::memcpy(in.data() + 8, &version, 8);
  const Block out = aes_->encrypt(in);
  std::uint64_t p = 0;
  std::memcpy(&p, out.data(), 8);
  pad_cache_.insert(address, version, p);
  return p;
}

std::uint64_t MultilinearMac::tag(std::uint64_t address, std::uint64_t version,
                                  std::span<const std::uint8_t> data) const {
  MEECC_CHECK(data.size() % 16 == 0);
  MEECC_CHECK_MSG(data.size() / 4 <= key_words_.size(),
                  "message longer than the expanded key");
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i * 4 < data.size(); ++i) {
    std::uint32_t word = 0;
    std::memcpy(&word, data.data() + 4 * i, 4);
    acc += static_cast<std::uint64_t>(word) * key_words_[i];  // mod 2^64
  }
  // Fold the message length in so equal-prefix messages of different
  // lengths cannot collide, then mask with the one-time pad.
  acc += static_cast<std::uint64_t>(data.size()) *
         key_words_[key_words_.size() - 1];
  return (acc + pad(address, version)) & kMacMask;
}

namespace {

/// Adapter presenting the CBC construction through the MacScheme interface.
class CbcMacScheme final : public MacScheme {
 public:
  explicit CbcMacScheme(const Key128& key, std::string_view aes_backend)
      : mac_(key, aes_backend) {}
  std::uint64_t tag(std::uint64_t address, std::uint64_t version,
                    std::span<const std::uint8_t> data) const override {
    return mac_.tag(address, version, data);
  }

 private:
  MacFunction mac_;
};

}  // namespace

std::unique_ptr<MacScheme> make_mac_scheme(MacKind kind, const Key128& key,
                                           std::string_view aes_backend) {
  switch (kind) {
    case MacKind::kCbcMac:
      return std::make_unique<CbcMacScheme>(key, aes_backend);
    case MacKind::kMultilinear:
      return std::make_unique<MultilinearMac>(key, /*max_data_bytes=*/64,
                                              aes_backend);
  }
  MEECC_CHECK_MSG(false, "unknown MAC kind");
  return nullptr;
}

}  // namespace meecc::crypto
